# Developer workflow for the gristgo reproduction. `make check` is the
# tier-1 gate plus vet, the domain linters, and a race-detector pass over
# the whole module (the SPMD runtime, exchange layer and drivers are all
# concurrent).

GO ?= go

.PHONY: check build vet lint lint-baseline lint-sarif test race race-serve bench bench-ml bench-halo chaos chaos-serve serve-smoke bench-serve bench-obs bench-check

check: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The domain analyzers (precisioncheck, hotpathalloc, sendownership,
# stencilsafety, determinism, epochsafety, durability, locksafety — see
# DESIGN.md "Statically enforced invariants"). gristlint exits nonzero
# on any unsuppressed diagnostic or when the tree holds more
# //lint:ignore suppressions than lint.baseline.json budgets, so `make
# check` fails when a finding appears OR when one is suppressed instead
# of fixed. To grow the budget deliberately: make lint-baseline, and
# justify the diff in review.
lint:
	$(GO) run ./cmd/gristlint -baseline lint.baseline.json ./...

lint-baseline:
	$(GO) run ./cmd/gristlint -write-baseline lint.baseline.json ./...

# SARIF artifact for code-hosting annotation (CI uploads this).
lint-sarif:
	$(GO) run ./cmd/gristlint -format sarif -o gristlint.sarif ./... || true
	@test -s gristlint.sarif

test:
	$(GO) test ./...

# -short skips the minutes-long model-integration tests, which the
# race detector's ~15x slowdown would push past the test timeout; the
# plain `test` target still runs them.
race:
	$(GO) test -race -short ./...

# The serve plane's full test set (including the HTTP tests that -short
# skips) under the race detector: the query handlers, snapshot store and
# poller are the most concurrency-dense code in the repo.
race-serve:
	$(GO) test -race -count=1 ./internal/serve/...

# The observability benchmark: a fully instrumented coupled run plus a
# distributed dynamics leg, emitting BENCH_telemetry.json (step latency
# percentiles, SYPD, comm share, load imbalance) and BENCH_trace.json
# (Chrome trace_event, open at https://ui.perfetto.dev).
bench:
	$(GO) run ./cmd/gristbench -exp telemetry

# Scalar vs batched-FP64 vs batched-FP32 inference throughput at the
# G5-scale column count (see EXPERIMENTS.md for recorded numbers).
bench-ml:
	$(GO) test -run xxx -bench BenchmarkMLInference -benchtime 3x .

# Blocking vs overlapped halo rounds, FP64 vs mixed wire precision (see
# EXPERIMENTS.md for recorded numbers).
bench-halo:
	$(GO) test -run xxx -bench BenchmarkHaloExchange ./internal/comm/

# The fault-injection suite under the race detector (deadline waits,
# rollback-and-replay, sentinel-driven degradation, elastic
# shrink/grow membership), then the chaos experiment, which writes
# CHAOS_recovery.json (recovery events, injected faults, bitwise
# verdicts) and CHAOS_sentinels.json (health sentinel trip history),
# and the elastic experiment, which writes CHAOS_elastic.json
# (shrinkgrow membership timeline, repartition costs, bitwise/gate
# verdicts, overlap-vs-blocking parity) for the CI artifact upload.
chaos:
	$(GO) test -race -count=1 \
		-run 'Fault|Barrier|Deadline|Halo|Resilient|RankDeath|BitFlip|Sentinel|Shard|LatestCommitted|Fallback|NaNOutput|DegradeFor|Restart|Elastic|Rebalanced|Redistribute|SwapLayout|SetOwned' \
		./internal/comm/ ./internal/fault/ ./internal/core/ ./internal/mlphysics/ ./internal/dycore/
	$(GO) run ./cmd/gristbench -exp chaos
	$(GO) run ./cmd/gristbench -exp elastic

# The storage-plane chaos suite under the race detector (the vfs seam,
# the fault-injecting filesystem, atomic shard writes under torn
# renames, quarantine/staleness/breaker behavior in the serve plane),
# then the chaosserve experiment: producer + poller + load replay per
# filesystem fault profile, writing CHAOS_serve.json (non-breaker-5xx /
# checksum / bounded-recovery verdicts) and gating it against the
# committed tolerance windows.
chaos-serve:
	$(GO) test -race -count=1 \
		-run 'FS|Vfs|OSRoundTrip|WriteOwnedFile|WriteShard|CommittedEpochs|Quarantine|Rederive|CrashRestart|Breaker|Backoff|Degraded|SnapshotStore' \
		./internal/vfs/ ./internal/fault/ ./internal/core/ ./internal/pario/ ./internal/serve/
	$(GO) run ./cmd/gristbench -exp chaosserve
	$(GO) run ./cmd/gristbench -check -check-files CHAOS_serve.json -baseline bench.baseline.json

# The serving-plane smoke: gristd self-generates a 3-epoch replay,
# fires 10k queries at its own HTTP listener, and exits nonzero unless
# the run had zero 5xx, cached p99 under the bound, and quota-throttled
# tenants answered with 429 (never errors).
serve-smoke:
	$(GO) run ./cmd/gristd -addr :0 -level 3 -layers 6 \
		-replay.epochs 3 -quota.rate 1000 -quota.burst 200 \
		-smoke.queries 10000 -smoke.p99 50ms

# The query-plane benchmark: a 1.2M-query in-process replay through the
# full admission pipeline (quota -> queue -> tile cache -> coalescing),
# emitting BENCH_serve.json (latency percentiles, hit rate, coalesce
# ratio, status breakdown) for the CI artifact upload.
bench-serve:
	$(GO) run ./cmd/gristbench -exp serve

# The cross-rank trace aggregation benchmark: two rebalanced runs from
# the same skewed decomposition (wall-weighted vs span-attributed cost
# feedback) plus a postmortem replay-identity check, emitting
# BENCH_obs.json, BENCH_obs_postmortem.json (per-step critical path,
# stragglers, phase attribution) and BENCH_obs_trace.json (merged
# multi-rank Chrome trace with the critical path marked).
bench-obs:
	$(GO) run ./cmd/gristbench -exp obs

# The benchmark regression gate: regenerate the obs artifacts and
# compare them against the committed per-metric tolerance windows
# (restricted to the obs artifact — the chaos-serve target gates
# CHAOS_serve.json). Widening a window is a reviewed diff on
# bench.baseline.json.
bench-check: bench-obs
	$(GO) run ./cmd/gristbench -check -check-files BENCH_obs.json -baseline bench.baseline.json
