# Developer workflow for the gristgo reproduction. `make check` is the
# tier-1 gate plus vet and the race-detector pass over the concurrent
# packages (the inference engine and the ML physics suite).

GO ?= go

.PHONY: check build vet test race bench-ml

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/infer/... ./internal/mlphysics/...

# Scalar vs batched-FP64 vs batched-FP32 inference throughput at the
# G5-scale column count (see EXPERIMENTS.md for recorded numbers).
bench-ml:
	$(GO) test -run xxx -bench BenchmarkMLInference -benchtime 3x .
