module gristgo

go 1.22
