module gristgo

go 1.22

// Pinned for the gristlint analyzers. The build environment is offline,
// so internal/lint ships a stdlib-only framework whose API mirrors
// golang.org/x/tools/go/analysis; nothing imports the module yet. The
// pin fixes the version the analyzers will port onto (swap the
// internal/lint imports for go/analysis + go/packages) once a module
// cache or vendor tree is available — run `go mod tidy && go mod vendor`
// at that point to materialize go.sum.
require golang.org/x/tools v0.24.0
