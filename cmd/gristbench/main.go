// Command gristbench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index):
//
//	gristbench -exp table1|table2|table3|fig2|fig7|fig8|fig9|fig10|fig11|all
//
// Fast experiments (tables, fig2, fig9-fig11) print immediately; fig7 and
// fig8 run real model integrations and take a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gristgo/internal/experiments"
	"gristgo/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, table2, table3, fig2, fig7, fig8, fig9, fig10, fig11, telemetry, chaos, chaosserve, elastic, serve, obs, all")
	fast := flag.Bool("fast", false, "skip the slow model-integration experiments (fig7, fig8) under -exp all")
	csvDir := flag.String("csv", "", "also write plot-ready CSV files for figs 2/9/10/11 into this directory")
	benchDir := flag.String("bench-out", ".", "directory for the telemetry/chaos experiments' JSON artifacts")
	faultSeed := flag.Int64("fault.seed", 7, "chaos experiment: fault-injection seed")
	check := flag.Bool("check", false, "compare the BENCH_*.json artifacts in -bench-out against -baseline and exit nonzero on drift")
	baseline := flag.String("baseline", "bench.baseline.json", "per-metric tolerance file for -check")
	checkFiles := flag.String("check-files", "", "comma-separated artifact names: restrict -check to baseline entries on these files")
	logFormat := flag.String("log.format", "text", "structured log format: text or json")
	flag.Parse()

	if err := telemetry.SetDefaultLogger(*logFormat, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *check {
		var files []string
		if *checkFiles != "" {
			files = strings.Split(*checkFiles, ",")
		}
		rows, ok, err := experiments.CheckBench(*benchDir, *baseline, files...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench check:", err)
			os.Exit(1)
		}
		for _, r := range rows {
			fmt.Println(r)
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "bench check: drift against", *baseline)
			os.Exit(1)
		}
		fmt.Printf("bench check: %d metrics within %s\n", len(rows), *baseline)
		return
	}

	if *csvDir != "" {
		if err := experiments.WriteScalingCSV(*csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "csv export:", err)
			os.Exit(1)
		}
		fmt.Printf("Wrote fig2/fig9/fig10/fig11 CSV files to %s\n", *csvDir)
	}

	run := func(name string, f func()) {
		fmt.Printf("=== %s ===\n", name)
		start := time.Now()
		f()
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}
	printRows := func(rows []string) {
		for _, r := range rows {
			fmt.Println(r)
		}
	}

	all := map[string]func(){
		"table1": func() { printRows(experiments.Table1Rows()) },
		"table2": func() { printRows(experiments.Table2Rows(6)) },
		"table3": func() { printRows(experiments.Table3Rows()) },
		"fig2":   func() { printRows(experiments.Fig2Rows()) },
		"fig7": func() {
			printRows(experiments.RunFig7(experiments.DefaultFig7Config()).Rows())
		},
		"fig8": func() {
			printRows(experiments.RunFig8(experiments.DefaultFig8Config()).Rows())
		},
		"fig9":  func() { printRows(experiments.RunFig9(4, 16).Rows()) },
		"fig10": func() { printRows(experiments.Fig10Rows()) },
		"fig11": func() { printRows(experiments.Fig11Rows()) },
		"telemetry": func() {
			res, err := experiments.WriteTelemetryBench(*benchDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "telemetry bench:", err)
				os.Exit(1)
			}
			printRows(res.Rows())
			fmt.Printf("Wrote BENCH_telemetry.json and BENCH_trace.json to %s\n", *benchDir)
		},
		"serve": func() {
			res, err := experiments.WriteServeBench(*benchDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "serve bench:", err)
				os.Exit(1)
			}
			printRows(res.Rows())
			fmt.Printf("Wrote BENCH_serve.json to %s\n", *benchDir)
		},
		"obs": func() {
			res, err := experiments.WriteObsBench(*benchDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "obs bench:", err)
				os.Exit(1)
			}
			printRows(res.Rows())
			fmt.Printf("Wrote BENCH_obs.json, BENCH_obs_postmortem.json and BENCH_obs_trace.json to %s\n", *benchDir)
		},
		"chaos": func() {
			cfg := experiments.DefaultChaosConfig()
			cfg.Seed = *faultSeed
			cfg.Dir = *benchDir
			res, err := experiments.WriteChaosConfig(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "chaos:", err)
				os.Exit(1)
			}
			printRows(res.Rows())
			fmt.Printf("Wrote CHAOS_recovery.json and CHAOS_sentinels.json to %s\n", *benchDir)
		},
		"chaosserve": func() {
			cfg := experiments.DefaultChaosServeConfig()
			cfg.Seed = *faultSeed
			cfg.Dir = *benchDir
			res, err := experiments.WriteChaosServeConfig(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "chaosserve:", err)
				os.Exit(1)
			}
			printRows(res.Rows())
			fmt.Printf("Wrote CHAOS_serve.json to %s\n", *benchDir)
		},
		"elastic": func() {
			cfg := experiments.DefaultElasticConfig()
			cfg.Seed = *faultSeed
			cfg.Dir = *benchDir
			res, err := experiments.WriteElasticConfig(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "elastic:", err)
				os.Exit(1)
			}
			printRows(res.Rows())
			fmt.Printf("Wrote CHAOS_elastic.json to %s\n", *benchDir)
		},
	}

	if *exp == "all" {
		order := []string{"table1", "table2", "table3", "fig2", "fig9", "fig10", "fig11"}
		if !*fast {
			order = append(order, "fig7", "fig8")
		}
		for _, name := range order {
			run(name, all[name])
		}
		return
	}
	f, ok := all[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	run(*exp, f)
}
