// Command gristlint is the multichecker of the repo's domain analyzers:
//
//	precisioncheck  §3.4 mixed-precision discipline (Real kernels, FP64 pins)
//	hotpathalloc    allocation-free //grist:hotpath steady state
//	sendownership   no buffer reuse while a comm round owns it
//	stencilsafety   adjacency-walking kernels registered against overlap.go
//
// Usage:
//
//	gristlint [-only name[,name]] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// Findings are suppressible per line with `//lint:ignore analyzer reason`
// (the reason is mandatory). Exit status 1 when any diagnostic survives.
//
// The loader type-checks the module and its stdlib imports from source,
// so gristlint needs no module cache, no network, and no go/packages —
// see internal/lint for the framework.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gristgo/internal/lint"
	"gristgo/internal/lint/hotpathalloc"
	"gristgo/internal/lint/precisioncheck"
	"gristgo/internal/lint/sendownership"
	"gristgo/internal/lint/stencilsafety"
)

var analyzers = []*lint.Analyzer{
	precisioncheck.Analyzer,
	hotpathalloc.Analyzer,
	sendownership.Analyzer,
	stencilsafety.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	active := analyzers
	if *only != "" {
		names := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			names[strings.TrimSpace(n)] = true
		}
		active = nil
		for _, a := range analyzers {
			if names[a.Name] {
				active = append(active, a)
				delete(names, a.Name)
			}
		}
		for n := range names {
			fmt.Fprintf(os.Stderr, "gristlint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gristlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gristlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, active)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gristlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := d.Position(loader.Fset())
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gristlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
