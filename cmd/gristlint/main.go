// Command gristlint is the multichecker of the repo's domain analyzers:
//
//	precisioncheck  §3.4 mixed-precision discipline (Real kernels, FP64 pins)
//	hotpathalloc    allocation-free //grist:hotpath steady state (cross-package facts)
//	sendownership   no buffer reuse while a comm round owns it
//	stencilsafety   adjacency-walking kernels registered against overlap.go
//	determinism     bitwise-reproducible //grist:bitwise paths (cross-package facts)
//	epochsafety     no stale layouts/plans after SwapLayout/SetPlan/Redistribute
//	durability      no dropped or shadowed errors on //grist:durable paths
//	locksafety      no blocking calls while a sync mutex is held
//
// Usage:
//
//	gristlint [-only name[,name]] [-format text|json|sarif] [-o file]
//	          [-baseline file] [-write-baseline file] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// Findings are suppressible per line with `//lint:ignore analyzer reason`
// (the reason is mandatory). -baseline enforces the suppression budget:
// the run fails if the tree holds more //lint:ignore directives per
// analyzer than the baseline records, so suppressions ratchet down, not
// up. -write-baseline records the current counts. -format sarif emits
// SARIF 2.1.0 for code-hosting annotation; -format json a flat array.
// Exit status 1 when any diagnostic or budget violation survives.
//
// The loader type-checks the module and its stdlib imports from source,
// so gristlint needs no module cache, no network, and no go/packages —
// see internal/lint for the framework.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gristgo/internal/lint"
	"gristgo/internal/lint/determinism"
	"gristgo/internal/lint/durability"
	"gristgo/internal/lint/epochsafety"
	"gristgo/internal/lint/hotpathalloc"
	"gristgo/internal/lint/locksafety"
	"gristgo/internal/lint/precisioncheck"
	"gristgo/internal/lint/sendownership"
	"gristgo/internal/lint/stencilsafety"
)

var analyzers = []*lint.Analyzer{
	precisioncheck.Analyzer,
	hotpathalloc.Analyzer,
	sendownership.Analyzer,
	stencilsafety.Analyzer,
	determinism.Analyzer,
	epochsafety.Analyzer,
	durability.Analyzer,
	locksafety.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	format := flag.String("format", "text", "output format: text, json or sarif")
	out := flag.String("o", "", "write output to file (default stdout)")
	baseline := flag.String("baseline", "", "enforce the //lint:ignore suppression budget recorded in this file")
	writeBaseline := flag.String("write-baseline", "", "record current //lint:ignore counts to this file and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	active := analyzers
	if *only != "" {
		names := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			names[strings.TrimSpace(n)] = true
		}
		active = nil
		for _, a := range analyzers {
			if names[a.Name] {
				active = append(active, a)
				delete(names, a.Name)
			}
		}
		for n := range names {
			fmt.Fprintf(os.Stderr, "gristlint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}

	if *writeBaseline != "" {
		counts := lint.CountIgnores(pkgs)
		if err := lint.WriteBaseline(*writeBaseline, counts); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gristlint: baseline recorded to %s\n", *writeBaseline)
		return
	}

	diags, err := lint.Run(pkgs, active)
	if err != nil {
		fatal(err)
	}

	failed := len(diags) > 0
	if *baseline != "" {
		b, err := lint.ReadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		violations, notes := b.Check(lint.CountIgnores(pkgs))
		for _, n := range notes {
			fmt.Fprintln(os.Stderr, "gristlint: note:", n)
		}
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "gristlint:", v)
		}
		if len(violations) > 0 {
			failed = true
		}
	}

	var rendered []byte
	switch *format {
	case "text":
		var sb strings.Builder
		for _, d := range diags {
			pos := d.Position(loader.Fset())
			fmt.Fprintf(&sb, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
		}
		rendered = []byte(sb.String())
	case "json":
		rendered, err = lint.EncodeJSON(diags, loader.Fset(), loader.ModuleRoot())
		if err == nil {
			rendered = append(rendered, '\n')
		}
	case "sarif":
		rendered, err = lint.EncodeSARIF(diags, loader.Fset(), loader.ModuleRoot(), active)
		if err == nil {
			rendered = append(rendered, '\n')
		}
	default:
		fmt.Fprintf(os.Stderr, "gristlint: unknown format %q (want text, json or sarif)\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		if err := os.WriteFile(*out, rendered, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(rendered)
	}

	if failed {
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "gristlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gristlint:", err)
	os.Exit(2)
}
