// Command meshgen generates and inspects icosahedral C-grid meshes: the
// Table 2 census for any level, real-mesh verification for small levels,
// and domain-decomposition statistics for a given process count.
//
//	meshgen -level 5 -parts 16
package main

import (
	"flag"
	"fmt"
	"math"

	"gristgo/internal/mesh"
	"gristgo/internal/partition"
)

func main() {
	level := flag.Int("level", 5, "icosahedral grid level to generate (<= 8 practical)")
	parts := flag.Int("parts", 0, "partition into N domains and report halo statistics")
	censusOnly := flag.Bool("census", false, "print the closed-form census for levels 0..12 and exit")
	flag.Parse()

	if *censusOnly {
		fmt.Printf("%-6s %12s %12s %12s %16s\n", "Level", "Cells", "Edges", "Vertices", "Res (km)")
		for l := 0; l <= 12; l++ {
			c := mesh.Census(l)
			fmt.Printf("G%-5d %12d %12d %12d %8.2f~%-8.2f\n", l, c.Cells, c.Edges, c.Verts, c.MinResKm, c.MaxResKm)
		}
		return
	}

	fmt.Printf("Generating G%d...\n", *level)
	m := mesh.New(*level).ReorderBFS()
	c := mesh.Census(*level)
	fmt.Printf("  cells=%d edges=%d verts=%d (census: %d/%d/%d)\n",
		m.NCells, m.NEdges, m.NVerts, c.Cells, c.Edges, c.Verts)

	minDc, maxDc := math.Inf(1), 0.0
	for e := 0; e < m.NEdges; e++ {
		if m.DcEdge[e] < minDc {
			minDc = m.DcEdge[e]
		}
		if m.DcEdge[e] > maxDc {
			maxDc = m.DcEdge[e]
		}
	}
	fmt.Printf("  cell spacing: %.1f to %.1f km\n", minDc/1e3, maxDc/1e3)

	var area float64
	for _, a := range m.CellArea {
		area += a
	}
	fmt.Printf("  total cell area / sphere area = %.12f\n", area/(4*math.Pi*m.Radius*m.Radius))

	if *parts > 1 {
		fmt.Printf("Partitioning into %d domains (METIS-substitute multilevel k-way)...\n", *parts)
		d, err := partition.Decompose(m, *parts, 1)
		if err != nil {
			fmt.Println("  ", err)
			return
		}
		g := partition.FromMesh(m)
		fmt.Printf("  edge cut: %d\n", g.EdgeCut(d.Part))
		fmt.Printf("  imbalance: %.3f\n", g.Imbalance(d.Part, *parts))
		fmt.Printf("  max halo cells: %d, max peers: %d\n", d.MaxHaloCells(), d.MaxPeers())
	}
}
