// Command gdfdump inspects a GDF history file written by cmd/grist:
// header mode lists dimensions and variables; -var prints statistics or
// values of one variable.
//
//	gdfdump history.gdf
//	gdfdump -var ps history.gdf
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"gristgo/internal/gdf"
)

func main() {
	varName := flag.String("var", "", "print statistics of this variable")
	values := flag.Bool("values", false, "with -var: dump raw values")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gdfdump [-var NAME [-values]] FILE")
		os.Exit(2)
	}
	fh, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer fh.Close()
	f, err := gdf.Read(fh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parsing:", err)
		os.Exit(1)
	}

	if *varName == "" {
		fmt.Println("dimensions:")
		for _, d := range f.Dims {
			fmt.Printf("  %-12s %d\n", d.Name, d.Size)
		}
		fmt.Println("variables:")
		for _, v := range f.Vars {
			fmt.Printf("  %-12s %v  %s (%s)\n", v.Name, v.Dims,
				v.Attrs["long_name"], v.Attrs["units"])
		}
		return
	}

	v := f.Var(*varName)
	if v == nil {
		fmt.Fprintf(os.Stderr, "no variable %q\n", *varName)
		os.Exit(1)
	}
	if *values {
		for _, x := range v.Data {
			fmt.Println(x)
		}
		return
	}
	lo, hi, sum := math.Inf(1), math.Inf(-1), 0.0
	for _, x := range v.Data {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
		sum += x
	}
	fmt.Printf("%s (%s): n=%d min=%.6g mean=%.6g max=%.6g\n",
		v.Name, v.Attrs["units"], len(v.Data), lo, sum/float64(len(v.Data)), hi)
}
