// Command gristtrain runs the ML-physics training pipeline of §3.2 end
// to end: a storm-resolving run at the fine level, coarse-graining to the
// training grid, residual-method Q1/Q2 targets, the paper's 7:1
// train/test split, training of the tendency CNN and the radiation
// diagnostic MLP, and serialization of the trained suite for cmd/grist.
//
//	gristtrain -fine 3 -coarse 2 -layers 8 -days 2 -out suite.bin
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"gristgo/internal/coarse"
	"gristgo/internal/mlphysics"
	"gristgo/internal/synthclim"
)

func main() {
	fine := flag.Int("fine", 3, "fine (GSRM-substitute) grid level")
	crs := flag.Int("coarse", 2, "coarse (training) grid level")
	layers := flag.Int("layers", 8, "vertical layers")
	days := flag.Int("days", 2, "simulated days per Table 1 period")
	stepsPerDay := flag.Int("steps", 4, "capture events per day")
	periods := flag.Int("periods", 1, "how many Table 1 periods to simulate (1-4)")
	epochs := flag.Int("epochs", 30, "training epochs")
	hidden := flag.Int("hidden", 16, "CNN hidden width (100 = paper scale)")
	out := flag.String("out", "suite.bin", "output weights file")
	flag.Parse()

	var samples []*coarse.Sample
	for pi := 0; pi < *periods && pi < 4; pi++ {
		p := synthclim.Table1()[pi]
		fmt.Printf("Generating training data: period %q, %d days x %d captures...\n",
			p.Label, *days, *stepsPerDay)
		gen := coarse.NewGenerator(coarse.GeneratorConfig{
			FineLevel: *fine, CoarseLevel: *crs, NLev: *layers,
			StepsPerDay: *stepsPerDay, Days: *days, Period: p,
		}, nil, nil)
		samples = append(samples, gen.Run()...)
	}
	fmt.Printf("Generated %d samples\n", len(samples))

	train, test := coarse.Split(samples, *stepsPerDay, rand.New(rand.NewSource(42)))
	fmt.Printf("Split: %d train, %d test (paper ratio 7:1 at 24 steps/day)\n", len(train), len(test))

	cfg := mlphysics.DefaultTrainConfig()
	cfg.Epochs = *epochs
	cfg.HiddenCNN = *hidden
	fmt.Printf("Training: %d epochs, CNN width %d...\n", cfg.Epochs, cfg.HiddenCNN)
	suite, lossT, lossR := mlphysics.Train(train, test, *layers, cfg)
	fmt.Printf("Held-out losses: tendency CNN %.4f, radiation MLP %.4f (normalized MSE)\n", lossT, lossR)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := suite.Save(f, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "saving:", err)
		os.Exit(1)
	}
	fmt.Printf("Saved trained suite to %s\n", *out)
}
