// Command gristd is the forecast-as-a-service daemon: it watches a
// directory of committed checkpoint epochs (written by a live run via
// `grist -serve.export`, a distributed run's ShardStore, or its own
// -replay generator), publishes each epoch as an immutable snapshot,
// and serves point/region/time-range queries over HTTP with per-tenant
// quotas and bounded-queue backpressure.
//
//	gristd -replay.epochs 3 -level 4 -layers 8 -addr :8080
//	curl 'localhost:8080/v1/point?lat=40.7&lon=-74.0&field=t_sfc'
//
// The query plane and the telemetry plane (/metrics, /metrics.json,
// /trace, /debug/pprof) share one mux and one port.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"gristgo/internal/core"
	"gristgo/internal/fault"
	"gristgo/internal/mesh"
	"gristgo/internal/obs"
	"gristgo/internal/physics"
	"gristgo/internal/serve"
	"gristgo/internal/synthclim"
	"gristgo/internal/telemetry"
	"gristgo/internal/vfs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address for the query + telemetry planes (:0 picks a free port)")
	data := flag.String("data", "", "checkpoint/snapshot directory to watch (required unless -replay.epochs)")
	level := flag.Int("level", 4, "icosahedral grid level of the producing run")
	layers := flag.Int("layers", 10, "vertical layers of the producing run")
	parts := flag.Int("parts", 1, "rank count of the producing run's shard layout")
	poll := flag.Duration("poll", 2*time.Second, "how often to poll -data for newly committed epochs")
	retain := flag.Int("retain", 8, "snapshot epochs retained for time-range queries")
	tiles := flag.Int("tiles", 48, "spatial tiles over the mesh (the cache granule)")
	cacheTiles := flag.Int("cache", 0, "tile-cache capacity in tiles (0 = 2x -tiles)")
	quotaRate := flag.Float64("quota.rate", 0, "per-tenant sustained queries/second (0 = unlimited)")
	quotaBurst := flag.Float64("quota.burst", 64, "per-tenant burst capacity in queries")
	queueDepth := flag.Int("queue", 256, "max in-flight queries before shedding with 429")
	replayEpochs := flag.Int("replay.epochs", 0, "self-generate N committed epochs by running the model (demo/smoke mode; -data optional)")
	replaySteps := flag.Int("replay.steps", 2, "physics steps between self-generated epochs")
	smokeQueries := flag.Int("smoke.queries", 0, "run a self-smoke: fire N queries over real HTTP, print the report, exit")
	smokeP99 := flag.Duration("smoke.p99", 50*time.Millisecond, "self-smoke failure bound on cached-query p99")
	logFormat := flag.String("log.format", "text", "structured log format: text or json")
	maxStale := flag.Int("serve.max-stale", 4, "degraded mode once serving lags this many committed epochs")
	faultProfile := flag.String("fault.profile", "off", "filesystem fault profile over -data ("+fault.FSProfiles()+")")
	faultSeed := flag.Int64("fault.seed", 1, "seed of the filesystem fault verdict stream")
	flag.Parse()

	if err := telemetry.SetDefaultLogger(*logFormat, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *data == "" && *replayEpochs <= 0 {
		fmt.Fprintln(os.Stderr, "gristd: need -data DIR to watch, or -replay.epochs N to self-generate one")
		os.Exit(2)
	}
	if *data == "" {
		dir, err := os.MkdirTemp("", "gristd-replay-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		*data = dir
	}

	fmt.Printf("Building G%d mesh...\n", *level)
	m := mesh.New(*level).ReorderBFS()

	if *replayEpochs > 0 {
		if err := generateReplay(m, *data, *level, *layers, *replayEpochs, *replaySteps); err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		*parts = 1
	}

	// The daemon reads -data through the vfs seam; a named fault profile
	// decorates it with seeded storage chaos (for drills and demos — the
	// plane must keep serving through it).
	fsys := vfs.OS
	prof, err := fault.ParseFSProfile(*faultProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if prof != (fault.FSProfile{Name: prof.Name}) {
		fmt.Printf("Storage chaos: profile %s seed %d over %s\n", prof.Name, *faultSeed, *data)
		fsys = fault.NewFS(vfs.OS, *faultSeed, prof)
	}

	pl := core.NewDistPlan(m, *layers, *parts, 12345)
	src, err := core.NewShardStoreFS(*data, pl, fsys)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(1 << 14)
	srv := serve.NewServer(m, serve.Config{
		Tiles:      *tiles,
		CacheTiles: *cacheTiles,
		Retain:     *retain,
		QueueDepth: *queueDepth,
		QuotaRate:  *quotaRate,
		QuotaBurst: *quotaBurst,
		MaxStale:   *maxStale,
	}, reg)
	poller := serve.NewShardPoller(src, srv.Engine.Store())
	poller.SetSeed(*faultSeed)
	poller.SetLogger(slog.Default())
	poller.SetMetrics(reg)

	// One mux: telemetry endpoints plus the query plane and the debug
	// plane (/debug/query traces, /debug/step postmortems over the
	// daemon's own flight ring).
	mux := telemetry.NewMux(reg, rec)
	srv.Register(mux)
	srv.RegisterDebug(mux)
	mux.Handle("/debug/step", obs.StepHandler(func() ([][]telemetry.Event, uint64) {
		return obs.Rings(rec)
	}))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: mux}
	go httpSrv.Serve(ln)
	fmt.Printf("gristd on http://%s/ (/v1/point /v1/region /v1/range /v1/epochs /healthz /metrics /debug/query /debug/step)\n", ln.Addr())
	fmt.Printf("  watching %s every %s (%d ranks, %d layers, retain %d epochs)\n",
		*data, *poll, *parts, *layers, *retain)

	// First poll before serving traffic so a pre-populated directory
	// (the replay case) is immediately queryable.
	pollErrors := reg.Counter("grist_serve_poll_errors_total")
	publishPoll := func() error {
		span := rec.Begin("poll", 0)
		n, err := poller.Poll()
		span.End()
		srv.SetStaleness(poller.Staleness())
		srv.SetQuarantine(poller.Quarantined())
		if err != nil {
			pollErrors.Inc()
			return err
		}
		if n > 0 {
			slog.Info("snapshots published",
				"count", n, "epoch", srv.Engine.Store().Latest().Epoch)
		}
		return nil
	}
	if err := publishPoll(); err != nil {
		slog.Warn("initial snapshot poll failed", "dir", *data, "err", err)
	}

	if *smokeQueries > 0 {
		code := runSmoke(ln.Addr().String(), srv, *smokeQueries, *smokeP99)
		httpSrv.Close()
		os.Exit(code)
	}

	// Persistent poll failures back off exponentially (capped, jittered)
	// instead of hammering a sick filesystem at the base interval, with
	// one log line per backoff step rather than one per tick.
	bo := serve.NewBackoff(*poll, time.Minute, *faultSeed)
	for {
		if err := publishPoll(); err != nil {
			wait := bo.Next()
			slog.Warn("snapshot poll failed; backing off",
				"dir", *data, "err", err, "consecutive", bo.Fails(), "retry_in", wait)
			time.Sleep(wait)
			continue
		}
		bo.Reset()
		time.Sleep(*poll)
	}
}

// generateReplay runs a small serial model and exports an epoch every
// few physics steps — a self-contained producer for demos and smoke
// tests, using exactly the wire format a real run exports.
func generateReplay(m *mesh.Mesh, dir string, level, layers, epochs, stepsPer int) error {
	fmt.Printf("Replay: generating %d epochs (%d steps apart) into %s\n", epochs, stepsPer, dir)
	mod := core.NewModelOnMesh(core.Config{GridLevel: level, NLev: layers}, physics.Null{}, m)
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod.InitializeClimate(cl)
	st, err := mod.NewSnapshotStore(dir)
	if err != nil {
		return err
	}
	for e := 0; e < epochs; e++ {
		if e > 0 {
			for i := 0; i < stepsPer; i++ {
				mod.StepPhysics(cl.Season)
			}
		}
		if err := mod.ExportSnapshot(st, e); err != nil {
			return err
		}
	}
	return nil
}

// runSmoke fires the standard workload at the daemon's own HTTP
// listener and enforces the serve-smoke gates: zero 5xx, cached p99
// under the bound, and quota pressure expressed as 429s (when a quota
// is configured). Returns the process exit code.
func runSmoke(addr string, srv *serve.Server, queries int, p99Bound time.Duration) int {
	fmt.Printf("Smoke: %d queries against http://%s/ (cached p99 bound %s)\n", queries, addr, p99Bound)
	// Wait for readiness (the first poll already ran, so this is quick).
	for i := 0; ; i++ {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		if i > 100 {
			fmt.Fprintln(os.Stderr, "smoke: daemon never became healthy")
			return 1
		}
		time.Sleep(50 * time.Millisecond)
	}
	rep := serve.RunLoadHTTP("http://"+addr, srv.Engine, nil, serve.LoadConfig{Queries: queries})
	for _, row := range rep.Rows() {
		fmt.Println("  " + row)
	}
	fail := false
	if rep.Server5xx > 0 {
		fmt.Fprintf(os.Stderr, "smoke FAIL: %d server 5xx (want 0)\n", rep.Server5xx)
		fail = true
	}
	if rep.Client4xx > 0 {
		fmt.Fprintf(os.Stderr, "smoke FAIL: %d client 4xx from the well-formed workload\n", rep.Client4xx)
		fail = true
	}
	if rep.OK == 0 {
		fmt.Fprintln(os.Stderr, "smoke FAIL: no query succeeded")
		fail = true
	}
	if rep.HitP99Sec > p99Bound.Seconds() {
		fmt.Fprintf(os.Stderr, "smoke FAIL: cached p99 %.3fms over bound %s\n", rep.HitP99Sec*1e3, p99Bound)
		fail = true
	}
	if srv.Quotas != nil && rep.Quota429 == 0 && quotaConfigured(srv) {
		fmt.Fprintln(os.Stderr, "smoke FAIL: quota configured but the greedy tenant was never throttled")
		fail = true
	}
	if fail {
		return 1
	}
	fmt.Println("Smoke: PASS")
	return 0
}

// quotaConfigured reports whether the daemon runs with a finite quota
// (the smoke only asserts throttling when there is one).
func quotaConfigured(srv *serve.Server) bool {
	// A quick probe: a tenant allowed thousands of times in a tight loop
	// means the limiter is disabled.
	for i := 0; i < 10000; i++ {
		if !srv.Quotas.Allow("smoke-probe") {
			return true
		}
	}
	return false
}
