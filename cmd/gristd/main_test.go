package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// buildGristd compiles the daemon once per test binary.
func buildGristd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gristd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building gristd: %v\n%s", err, out)
	}
	return bin
}

// startGristd launches the daemon and returns its base URL (parsed
// from the startup banner) and the running process handle.
func startGristd(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrRe := regexp.MustCompile(`gristd on http://([^/]+)/`)
	lines := bufio.NewScanner(stdout)
	var base string
	for lines.Scan() {
		if m := addrRe.FindStringSubmatch(lines.Text()); m != nil {
			base = "http://" + m[1]
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		t.Fatal("gristd never printed its listen address")
	}
	// Keep draining stdout so the daemon never blocks on a full pipe.
	go io.Copy(io.Discard, stdout)
	return cmd, base
}

// waitHealthy polls /healthz until it answers 200 or the deadline
// passes, returning the decoded body.
func waitHealthy(t *testing.T, base string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == 200 {
				var doc map[string]any
				if err := json.Unmarshal(body, &doc); err != nil {
					t.Fatalf("healthz body unparsable: %v: %s", err, body)
				}
				return doc
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
	return nil
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// kill -9 and restart: a gristd brought up over the shard directory of
// a killed predecessor must reconstruct the snapshot window purely
// from disk — including quarantining an epoch corrupted while it was
// down — and serve queries again.
func TestGristdSurvivesKillDashNine(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon twice")
	}
	bin := buildGristd(t)
	dir := t.TempDir()
	common := []string{"-addr", "127.0.0.1:0", "-level", "3", "-layers", "4",
		"-data", dir, "-poll", "100ms"}

	// First life: self-generate four epochs into -data and serve them.
	first, base := startGristd(t, bin, append([]string{"-replay.epochs", "4"}, common...)...)
	waitHealthy(t, base)
	var before struct {
		Epochs []int `json:"epochs"`
	}
	getJSON(t, base+"/v1/epochs", &before)
	if len(before.Epochs) != 4 {
		t.Fatalf("first life epochs = %v, want 4", before.Epochs)
	}
	resp, err := http.Get(base + "/v1/point?lat=40.7&lon=-74.0&field=t_sfc")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("first-life point query = (%v, %v)", resp, err)
	}
	resp.Body.Close()

	// SIGKILL: no shutdown path runs, the directory is whatever the
	// atomic write protocol left behind.
	if err := first.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	first.Wait()

	// While the daemon is dead, one epoch's shard rots on disk.
	shards, err := filepath.Glob(filepath.Join(dir, "shard-e000001-*.grist"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no epoch-1 shard to corrupt (%v, %v)", shards, err)
	}
	raw, err := os.ReadFile(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(shards[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Second life: same directory, no replay — state comes from disk.
	second, base2 := startGristd(t, bin, common...)
	defer func() {
		second.Process.Kill()
		second.Wait()
	}()
	hz := waitHealthy(t, base2)

	var after struct {
		Epochs []int `json:"epochs"`
	}
	getJSON(t, base2+"/v1/epochs", &after)
	want := []int{0, 2, 3} // epoch 1 is quarantined, the rest reconstruct
	if fmt.Sprint(after.Epochs) != fmt.Sprint(want) {
		t.Fatalf("restart epochs = %v, want %v", after.Epochs, want)
	}
	quarantined, _ := hz["quarantined"].([]any)
	if len(quarantined) != 1 || int(quarantined[0].(float64)) != 1 {
		t.Fatalf("restart healthz quarantined = %v, want [1]", hz["quarantined"])
	}
	// The corrupt epoch is older than the published head, so the plane
	// is behind by zero epochs: healthy, not degraded.
	if hz["status"] != "ok" {
		t.Fatalf("restart healthz status = %v, want ok", hz["status"])
	}

	// Queries serve from the reconstructed window, including history.
	resp, err = http.Get(base2 + "/v1/point?lat=40.7&lon=-74.0&field=t_sfc&epoch=2")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("restart point query = (%v, %v)", resp, err)
	}
	resp.Body.Close()
	// The quarantined epoch is not served.
	resp, err = http.Get(base2 + "/v1/point?lat=40.7&lon=-74.0&field=t_sfc&epoch=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("quarantined-epoch query = %d (%s), want 404", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "not retained") {
		t.Fatalf("quarantined-epoch error body = %s", body)
	}
}

// The daemon refuses to start with a bogus fault profile and names the
// known ones.
func TestGristdRejectsUnknownFaultProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon")
	}
	bin := buildGristd(t)
	cmd := exec.Command(bin, "-replay.epochs", "1", "-fault.profile", "fsbogus")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("daemon accepted -fault.profile fsbogus: %s", out)
	}
	if !strings.Contains(string(out), "fsflaky") {
		t.Fatalf("error does not name the known profiles: %s", out)
	}
}

// gristd under -fault.profile fsflaky over its own replay directory:
// the README quickstart scenario. The daemon must come up healthy and
// answer queries while every read of its shard directory is subject to
// injected EIO and bit flips.
func TestGristdServesUnderFaultProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon")
	}
	bin := buildGristd(t)
	dir := t.TempDir()
	cmd, base := startGristd(t, bin,
		"-addr", "127.0.0.1:0", "-level", "3", "-layers", "4",
		"-data", dir, "-poll", "100ms", "-replay.epochs", "3",
		"-fault.profile", "fsflaky", "-fault.seed", "11")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	waitHealthy(t, base)
	ok := 0
	for i := 0; i < 20; i++ {
		resp, err := http.Get(base + fmt.Sprintf("/v1/point?lat=%d&lon=%d&field=ps", -40+i*4, i*10))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == 200 {
			ok++
		} else if resp.StatusCode >= 500 && resp.Header.Get("X-Grist-Reject") != "breaker" {
			t.Fatalf("query %d: non-breaker %d under fsflaky", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if ok == 0 {
		t.Fatal("no query succeeded under fsflaky")
	}
}
