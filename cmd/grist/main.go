// Command grist runs the coupled model: a GRIST-style global simulation
// on an icosahedral grid with either the conventional or the ML physics
// suite, printing diagnostics and the achieved simulation speed (SDPD),
// mirroring the ParGRIST driver of the paper's artifact.
//
//	grist -level 4 -layers 10 -hours 24 -mode mix -physics conv
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"time"

	"gristgo/internal/core"
	"gristgo/internal/diag"
	"gristgo/internal/fault"
	"gristgo/internal/mlphysics"
	"gristgo/internal/physics"
	"gristgo/internal/precision"
	"gristgo/internal/serve"
	"gristgo/internal/synthclim"
	"gristgo/internal/telemetry"
)

func main() {
	level := flag.Int("level", 4, "icosahedral grid level (G-level)")
	layers := flag.Int("layers", 10, "vertical layers")
	hours := flag.Float64("hours", 24, "simulated hours")
	mode := flag.String("mode", "mix", "dycore precision: dp or mix")
	phys := flag.String("physics", "conv", "physics suite: conv, ml (requires -weights), none")
	weights := flag.String("weights", "", "trained ML suite weights (from gristtrain)")
	period := flag.Int("period", 2, "Table 1 period index 0-3 for the initial climate")
	terrain := flag.Bool("terrain", true, "include synthetic orography")
	timings := flag.Bool("timings", false, "print the per-component timing table")
	restartIn := flag.String("restart", "", "resume from a restart file")
	restartOut := flag.String("restart-out", "", "write a restart file at the end")
	remapEvery := flag.Int("remap", 0, "vertical remap every N physics steps (0 off)")
	workers := flag.Int("workers", -1, "host threads for the dycore loops (-1 = all CPUs)")
	output := flag.String("output", "", "write a GDF history file at the end")
	telAddr := flag.String("telemetry.addr", "", "serve the observability plane on this address (e.g. :9090; :0 picks a free port): /metrics and /metrics.json for scrapes, /trace for a live Chrome trace_event dump of the flight-recorder ring, /debug/pprof for profiles")
	telHold := flag.Duration("telemetry.hold", 0, "keep the telemetry server (including /trace and /debug/pprof) up this long after the run finishes, so the final ring can still be scraped")
	traceOut := flag.String("trace-out", "", "write the flight-recorder ring as Chrome trace_event JSON at the end (same payload as GET /trace; open in Perfetto)")
	serveAddr := flag.String("serve.addr", "", "serve the forecast query plane (/v1/point /v1/region /v1/range /v1/epochs /healthz) over the live run on this address; snapshots publish every -serve.every steps")
	serveExport := flag.String("serve.export", "", "export gristd-compatible snapshot epochs into this directory every -serve.every steps (watch it with gristd -data DIR -parts 1)")
	serveEvery := flag.Int("serve.every", 4, "physics steps between snapshot publications/exports for -serve.addr and -serve.export")
	faultProf := flag.String("fault.profile", "", "inject faults: "+fault.Profiles()+" (mlnan corrupts one ML inference output; transport profiles need the distributed chaos harness, see gristbench -exp chaos)")
	faultSeed := flag.Int64("fault.seed", 1, "fault-injection seed (deterministic per seed+profile)")
	logFormat := flag.String("log.format", "text", "structured log format: text or json")
	flag.Parse()

	if err := telemetry.SetDefaultLogger(*logFormat, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if _, err := fault.ParseProfile(*faultProf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	pm := precision.Mixed
	if *mode == "dp" {
		pm = precision.DP
	}

	var scheme physics.Scheme
	var mlSuite *mlphysics.Suite
	switch *phys {
	case "conv":
		scheme = physics.NewConventional(*layers)
	case "none":
		scheme = physics.Null{}
	case "ml":
		if *weights == "" {
			fmt.Fprintln(os.Stderr, "-physics ml requires -weights FILE (train with gristtrain)")
			os.Exit(2)
		}
		f, err := os.Open(*weights)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		suite, err := mlphysics.LoadSuite(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "loading weights:", err)
			os.Exit(1)
		}
		if suite.NLev != *layers {
			fmt.Fprintf(os.Stderr, "weights were trained for %d layers, run uses %d\n", suite.NLev, *layers)
			os.Exit(2)
		}
		scheme, mlSuite = suite, suite
	default:
		fmt.Fprintf(os.Stderr, "unknown physics %q\n", *phys)
		os.Exit(2)
	}

	fmt.Printf("Building G%d mesh...\n", *level)
	mod := core.NewModel(core.Config{GridLevel: *level, NLev: *layers, Mode: pm, HostWorkers: *workers}, scheme)
	fmt.Printf("  cells=%d edges=%d verts=%d layers=%d physics=%s dycore=%s\n",
		mod.Mesh.NCells, mod.Mesh.NEdges, mod.Mesh.NVerts, *layers, scheme.Name(), pm)

	cl := synthclim.ForPeriod(synthclim.Table1()[*period], 0)
	mod.InitializeClimate(cl)
	if *terrain {
		mod.SetTerrain(synthclim.Terrain)
	}
	mod.RemapEvery = *remapEvery
	if *restartIn != "" {
		if err := mod.ReadRestartFile(*restartIn); err != nil {
			fmt.Fprintln(os.Stderr, "restart:", err)
			os.Exit(1)
		}
		fmt.Printf("Resumed from %s at t=%.1fh\n", *restartIn, mod.TimeSec/3600)
	}

	if *faultProf == "mlnan" {
		if mlSuite == nil {
			fmt.Fprintln(os.Stderr, "-fault.profile mlnan requires -physics ml")
			os.Exit(2)
		}
		mlSuite.SetOutputFault(fault.MLOutputFault(*faultSeed, 0))
		fmt.Printf("Fault injection: mlnan (seed %d) — one inference batch will be corrupted\n", *faultSeed)
	}

	_, _, _, dtPhy := mod.EffectiveSteps()
	steps := int(math.Round(*hours * 3600 / dtPhy))
	if steps < 1 {
		steps = 1
	}
	fmt.Printf("Running %d physics steps of %.0fs (%.1f simulated hours)\n", steps, dtPhy, *hours)

	// Observability plane: one registry + flight recorder shared by the
	// HTTP endpoints, the trace file and the timing table.
	observing := *telAddr != "" || *traceOut != ""
	var reg *telemetry.Registry
	var rec *telemetry.Recorder
	tm := core.NewTimings()
	if observing {
		reg = telemetry.NewRegistry()
		rec = telemetry.NewRecorder(1 << 16)
		tm = core.NewTimingsOn(reg)
		mod.EnableTelemetry(reg, rec, func(ev diag.HealthEvent) {
			fmt.Fprintln(os.Stderr, ev.String())
		})
	}
	var srv interface{ Close() error }
	if *telAddr != "" {
		s, addr, err := telemetry.Serve(*telAddr, reg, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "telemetry:", err)
			os.Exit(1)
		}
		srv = s
		fmt.Printf("Telemetry on http://%s/ (/metrics, /trace, /debug/pprof)\n", addr)
	}

	// Serving-plane passthrough: -serve.addr answers queries over the
	// live run in process; -serve.export writes gristd-compatible
	// snapshot epochs (single-rank ShardStore wire format) for an
	// out-of-process gristd to watch.
	if *serveEvery < 1 {
		*serveEvery = 1
	}
	var queryPlane *serve.Server
	var querySrv *http.Server
	if *serveAddr != "" {
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		queryPlane = serve.NewServer(mod.Mesh, serve.Config{}, reg)
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		querySrv = &http.Server{Handler: queryPlane.Mux()}
		go querySrv.Serve(ln)
		fmt.Printf("Query plane on http://%s/ (/v1/point /v1/region /v1/range /v1/epochs /healthz), publishing every %d steps\n",
			ln.Addr(), *serveEvery)
	}
	var exportStore *core.ShardStore
	if *serveExport != "" {
		st, err := mod.NewSnapshotStore(*serveExport)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve.export:", err)
			os.Exit(1)
		}
		exportStore = st
		fmt.Printf("Exporting snapshot epochs to %s every %d steps (gristd -data %s -parts 1 -layers %d)\n",
			*serveExport, *serveEvery, *serveExport, *layers)
	}
	epoch := 0
	publishSnapshot := func() {
		if queryPlane != nil {
			queryPlane.Publish(serve.SnapshotFromState(epoch, epoch**serveEvery, mod.Engine.State()))
		}
		if exportStore != nil {
			if err := mod.ExportSnapshot(exportStore, epoch); err != nil {
				fmt.Fprintln(os.Stderr, "serve.export:", err)
				os.Exit(1)
			}
		}
		epoch++
	}
	serving := queryPlane != nil || exportStore != nil
	if serving {
		publishSnapshot() // epoch 0: the initial state, queryable immediately
	}

	start := time.Now()
	for i := 0; i < steps; i++ {
		if *timings || observing {
			mod.StepPhysicsTimed(cl.Season, tm)
		} else {
			mod.StepPhysics(cl.Season)
		}
		if serving && (i+1)%*serveEvery == 0 {
			publishSnapshot()
		}
		if (i+1)%max(1, steps/10) == 0 {
			ps := mod.Engine.State().SurfacePressure()
			var meanPs, maxP float64
			for _, p := range ps {
				meanPs += p
			}
			meanPs /= float64(len(ps))
			for _, p := range mod.PrecipRate() {
				if p > maxP {
					maxP = p
				}
			}
			fmt.Printf("  t=%6.1fh  mean ps=%8.1f Pa  max precip=%6.1f mm/day\n",
				mod.TimeSec/3600, meanPs, maxP)
		}
	}
	wall := time.Since(start).Seconds()
	simDays := mod.TimeSec / 86400
	fmt.Printf("Finished: %.2f simulated days in %.1fs wall -> %.2f SDPD on this host\n",
		simDays, wall, simDays/(wall/86400))
	if mlSuite != nil {
		if n := mlSuite.FallbackCount(); n > 0 {
			fmt.Printf("ML physics fell back to the scalar oracle on %d step(s) (grist_physics_fallback_total)\n", n)
		}
	}
	if *timings {
		fmt.Print(tm.Report())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "writing trace:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("Wrote Chrome trace to %s (open at https://ui.perfetto.dev)\n", *traceOut)
	}
	if srv != nil || querySrv != nil {
		if *telHold > 0 {
			fmt.Printf("Holding telemetry/query servers for %s...\n", *telHold)
			time.Sleep(*telHold)
		}
		if srv != nil {
			srv.Close()
		}
		if querySrv != nil {
			querySrv.Close()
		}
	}
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := mod.WriteHistory(f); err != nil {
			fmt.Fprintln(os.Stderr, "writing history:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("Wrote history to %s\n", *output)
	}
	if *restartOut != "" {
		if err := mod.WriteRestartFile(*restartOut); err != nil {
			fmt.Fprintln(os.Stderr, "writing restart:", err)
			os.Exit(1)
		}
		fmt.Printf("Wrote restart to %s (atomic, CRC-framed)\n", *restartOut)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
