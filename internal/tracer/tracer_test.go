package tracer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gristgo/internal/mesh"
	"gristgo/internal/precision"
)

// setup builds a mesh, a uniform mass field and a solid-body mass flux.
func setup(level, nlev int) (*mesh.Mesh, []float64, []float64) {
	m := mesh.New(level)
	dpi := make([]float64, m.NCells*nlev)
	for i := range dpi {
		dpi[i] = 1000.0 // Pa per layer
	}
	const u0 = 30.0
	flux := make([]float64, m.NEdges*nlev)
	for e := 0; e < m.NEdges; e++ {
		lat, _ := m.EdgePos[e].LatLon()
		east, _ := mesh.TangentBasis(m.EdgePos[e])
		un := east.Scale(u0 * math.Cos(lat)).Dot(m.EdgeNormal[e])
		for k := 0; k < nlev; k++ {
			flux[e*nlev+k] = 1000.0 * un
		}
	}
	return m, dpi, flux
}

// gaussianBlob initializes qv with a smooth blob.
func gaussianBlob(f *Field, lat0, lon0 float64) {
	center := mesh.FromLatLon(lat0, lon0)
	for c := 0; c < f.M.NCells; c++ {
		d := mesh.ArcLength(f.M.CellPos[c], center)
		q := 0.01 * math.Exp(-d*d/(0.3*0.3))
		for k := 0; k < f.NLev; k++ {
			f.SetMixingRatio(QV, c, k, q)
		}
	}
}

func TestTracerMassConservationDP(t *testing.T) {
	m, dpi, flux := setup(3, 3)
	f := NewField(m, 3, dpi)
	gaussianBlob(f, 0.2, 1.0)
	tr := New(m, 3, precision.DP)

	mass0 := f.GlobalTracerMass(QV)
	for i := 0; i < 20; i++ {
		tr.Step(f, flux, 300)
	}
	mass := f.GlobalTracerMass(QV)
	if rel := math.Abs(mass-mass0) / mass0; rel > 1e-12 {
		t.Errorf("tracer mass drifted by %g (DP)", rel)
	}
}

func TestTracerMassConservationMixed(t *testing.T) {
	m, dpi, flux := setup(3, 3)
	f := NewField(m, 3, dpi)
	gaussianBlob(f, 0.2, 1.0)
	tr := New(m, 3, precision.Mixed)

	mass0 := f.GlobalTracerMass(QV)
	for i := 0; i < 20; i++ {
		tr.Step(f, flux, 300)
	}
	mass := f.GlobalTracerMass(QV)
	// float32 work arrays: conservation to single-precision rounding.
	if rel := math.Abs(mass-mass0) / mass0; rel > 1e-4 {
		t.Errorf("tracer mass drifted by %g (Mixed)", rel)
	}
}

func TestFluxLimiterMonotone(t *testing.T) {
	// FCT property: no new extrema. Start with a step function in [0, 0.01].
	m, dpi, flux := setup(3, 4)
	f := NewField(m, 4, dpi)
	for c := 0; c < m.NCells; c++ {
		q := 0.0
		if m.CellLat[c] > 0 {
			q = 0.01
		}
		for k := 0; k < 4; k++ {
			f.SetMixingRatio(QV, c, k, q)
		}
	}
	tr := New(m, 4, precision.DP)
	for i := 0; i < 30; i++ {
		tr.Step(f, flux, 300)
	}
	const eps = 1e-10
	for c := 0; c < m.NCells; c++ {
		for k := 0; k < 4; k++ {
			q := f.MixingRatio(QV, c, k)
			if q < -eps || q > 0.01+eps {
				t.Fatalf("limiter violated bounds: q=%v at cell %d", q, c)
			}
		}
	}
}

func TestFreeStreamPreservation(t *testing.T) {
	// A spatially constant mixing ratio must remain constant under any
	// divergent mass flux (consistency of tracer mass with dry mass).
	m := mesh.New(3)
	nlev := 2
	dpi := make([]float64, m.NCells*nlev)
	for i := range dpi {
		dpi[i] = 800
	}
	rng := rand.New(rand.NewSource(4))
	flux := make([]float64, m.NEdges*nlev)
	for i := range flux {
		flux[i] = 800 * (rng.Float64()*10 - 5) // divergent random flow
	}
	f := NewField(m, nlev, dpi)
	const q0 = 0.0042
	for c := 0; c < m.NCells; c++ {
		for k := 0; k < nlev; k++ {
			f.SetMixingRatio(QV, c, k, q0)
		}
	}
	tr := New(m, nlev, precision.DP)
	for i := 0; i < 5; i++ {
		tr.Step(f, flux, 60)
	}
	for c := 0; c < m.NCells; c++ {
		for k := 0; k < nlev; k++ {
			if d := math.Abs(f.MixingRatio(QV, c, k) - q0); d > 1e-12 {
				t.Fatalf("free-stream violated: q=%v at cell %d lev %d", f.MixingRatio(QV, c, k), c, k)
			}
		}
	}
}

func TestPositivityUnderSharpGradients(t *testing.T) {
	m, dpi, flux := setup(3, 2)
	f := NewField(m, 2, dpi)
	// Delta-like spike.
	f.SetMixingRatio(QC, 100, 0, 0.02)
	f.SetMixingRatio(QC, 100, 1, 0.02)
	tr := New(m, 2, precision.DP)
	for i := 0; i < 40; i++ {
		tr.Step(f, flux, 300)
	}
	for c := 0; c < m.NCells; c++ {
		for k := 0; k < 2; k++ {
			if q := f.MixingRatio(QC, c, k); q < 0 {
				t.Fatalf("negative mixing ratio %v at cell %d", q, c)
			}
		}
	}
}

func TestMixedMatchesDPWithinThreshold(t *testing.T) {
	m, dpi, flux := setup(3, 2)
	run := func(mode precision.Mode) []float64 {
		f := NewField(m, 2, dpi)
		gaussianBlob(f, 0.0, 2.0)
		tr := New(m, 2, mode)
		for i := 0; i < 25; i++ {
			tr.Step(f, flux, 300)
		}
		out := make([]float64, m.NCells)
		for c := 0; c < m.NCells; c++ {
			out[c] = f.MixingRatio(QV, c, 0)
		}
		return out
	}
	qd := run(precision.DP)
	qm := run(precision.Mixed)
	if dev := precision.RelL2(qm, qd); dev > precision.ErrorThreshold {
		t.Errorf("mixed tracer deviates %g from DP", dev)
	}
}

func TestSpeciesNames(t *testing.T) {
	want := []string{"qv", "qc", "qr", "qi", "qs", "qg"}
	for i, w := range want {
		if Species(i).String() != w {
			t.Errorf("species %d = %q, want %q", i, Species(i), w)
		}
	}
	if int(NumSpecies) != 6 {
		t.Errorf("NumSpecies = %d", NumSpecies)
	}
}

func TestLimiterRatioProperties(t *testing.T) {
	// Property: ratio in [0, 1]; equals 1 when demand <= 0 or capacity >=
	// demand.
	fn := func(capacity, demand float64) bool {
		if math.IsNaN(capacity) || math.IsNaN(demand) {
			return true
		}
		r := limiterRatio(capacity, demand)
		if r < 0 || r > 1 {
			return false
		}
		if demand <= 0 && r != 1 {
			return false
		}
		if demand > 0 && capacity >= demand && r != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestBlobAdvectsDownstream(t *testing.T) {
	// After advection with eastward flow, the blob's center of mass
	// longitude must increase.
	m, dpi, flux := setup(4, 1)
	f := NewField(m, 1, dpi)
	gaussianBlob(f, 0.0, 0.0)
	tr := New(m, 1, precision.DP)

	centerLon := func() float64 {
		var sx, sy, tot float64
		for c := 0; c < m.NCells; c++ {
			w := f.Q[QV][c] * m.CellArea[c]
			sx += w * math.Cos(m.CellLon[c])
			sy += w * math.Sin(m.CellLon[c])
			tot += w
		}
		return math.Atan2(sy/tot, sx/tot)
	}
	lon0 := centerLon()
	for i := 0; i < 50; i++ {
		tr.Step(f, flux, 600)
	}
	lon := centerLon()
	// 50*600 s at 30 m/s = 900 km ~ 0.14 rad at equator.
	if lon-lon0 < 0.05 {
		t.Errorf("blob did not advect east: lon moved %g rad", lon-lon0)
	}
}
