// Package tracer implements the passive tracer transport equation of the
// dynamical core (bottom-left of the paper's Fig. 3): six prognostic
// tracer species advected by the time-averaged dry-mass flux with a
// monotone Zalesak flux-corrected-transport (FCT) horizontal limiter —
// the paper's tracer_transport_hori_flux_limiter kernel (Fig. 9).
//
// Per §3.4.2, this equation runs almost entirely in lowered precision;
// the sole double-precision input is the accumulated mass flux delta-pi*V
// taken from the dry-mass equation.
package tracer

import (
	"gristgo/internal/mesh"
	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// Species indexes the six prognostic tracers.
type Species int

const (
	QV Species = iota // water vapor
	QC                // cloud liquid
	QR                // rain
	QI                // cloud ice
	QS                // snow
	QG                // graupel
	NumSpecies
)

var speciesNames = [NumSpecies]string{"qv", "qc", "qr", "qi", "qs", "qg"}

func (s Species) String() string { return speciesNames[s] }

// Field holds the tracer state: mass-weighted mixing ratios
// Q[t][c*NLev+k] = delta-pi * q, plus the tracer-step dry mass the
// ratios are defined against (advanced with the same averaged flux for
// free-stream preservation).
type Field struct {
	M    *mesh.Mesh
	NLev int
	Q    [NumSpecies][]float64
	Mass []float64 // tracer-step delta-pi
}

// NewField allocates a tracer field; initial dry mass is copied from dpi.
func NewField(m *mesh.Mesh, nlev int, dpi []float64) *Field {
	f := &Field{M: m, NLev: nlev, Mass: append([]float64(nil), dpi...)}
	for t := range f.Q {
		f.Q[t] = make([]float64, m.NCells*nlev)
	}
	return f
}

// MixingRatio returns q of a species at (cell, level).
func (f *Field) MixingRatio(sp Species, c, k int) float64 {
	i := c*f.NLev + k
	return f.Q[sp][i] / f.Mass[i]
}

// SetMixingRatio sets q of a species at (cell, level).
func (f *Field) SetMixingRatio(sp Species, c, k int, q float64) {
	i := c*f.NLev + k
	f.Q[sp][i] = q * f.Mass[i]
}

// GlobalTracerMass returns the area-integrated mass of a species, a
// conserved invariant of the transport.
func (f *Field) GlobalTracerMass(sp Species) float64 {
	var total float64
	for c := 0; c < f.M.NCells; c++ {
		var col float64
		for k := 0; k < f.NLev; k++ {
			col += f.Q[sp][c*f.NLev+k]
		}
		total += col * f.M.CellArea[c]
	}
	return total
}

// Transport advances tracers with the accumulated mass flux.
type Transport interface {
	// Step advances all species by dt using the edge mass flux
	// (Pa m/s, double precision, already averaged over the dynamics
	// sub-steps).
	Step(f *Field, massFlux []float64, dt float64)
	Mode() precision.Mode
	// SetOwned restricts computation for distributed runs (nil resets):
	// Cells is the compute region (owned + two halo rings), Commit the
	// cells whose updated values are kept (owned), Edges the edges of
	// the compute region.
	SetOwned(o *OwnedSets)
	// SetTelemetry attaches a flight recorder: each Step emits a
	// tracer_step span attributed to rank (nil recorder detaches).
	SetTelemetry(rec *telemetry.Recorder, rank int32)
}

// OwnedSets is the distributed work description of a Transport.
type OwnedSets struct {
	Cells  []int32
	Commit []int32
	Edges  []int32
}

// New creates a Transport in the given precision mode.
func New(m *mesh.Mesh, nlev int, mode precision.Mode) Transport {
	if mode == precision.Mixed {
		return newTransport[float32](m, nlev, mode)
	}
	return newTransport[float64](m, nlev, mode)
}

type transport[T precision.Real] struct {
	m    *mesh.Mesh
	nlev int
	mode precision.Mode

	owned *OwnedSets

	// Work arrays in working precision T (§3.4.2: the tracer equation is
	// computed almost entirely in lowered precision).
	fluxLo  []T // low-order (upwind) tracer flux per edge
	fluxA   []T // antidiffusive flux per edge
	qtd     []T // transported-diffused provisional ratio
	qmin    []T
	qmax    []T
	rPlus   []T
	rMinus  []T
	newMass []float64 // updated delta-pi (double precision)

	// Optional flight recorder for Step spans (nil: disabled).
	rec     *telemetry.Recorder
	telRank int32
}

func newTransport[T precision.Real](m *mesh.Mesh, nlev int, mode precision.Mode) *transport[T] {
	n := m.NCells * nlev
	ne := m.NEdges * nlev
	return &transport[T]{
		m: m, nlev: nlev, mode: mode,
		fluxLo:  make([]T, ne),
		fluxA:   make([]T, ne),
		qtd:     make([]T, n),
		qmin:    make([]T, n),
		qmax:    make([]T, n),
		rPlus:   make([]T, n),
		rMinus:  make([]T, n),
		newMass: make([]float64, n),
	}
}

func (tr *transport[T]) Mode() precision.Mode { return tr.mode }

func (tr *transport[T]) SetOwned(o *OwnedSets) { tr.owned = o }

func (tr *transport[T]) SetTelemetry(rec *telemetry.Recorder, rank int32) {
	tr.rec = rec
	tr.telRank = rank
}

// eachCell iterates the compute cells.
func (tr *transport[T]) eachCell(f func(c int)) {
	if tr.owned == nil {
		for c := 0; c < tr.m.NCells; c++ {
			f(c)
		}
		return
	}
	for _, c := range tr.owned.Cells {
		f(int(c))
	}
}

// eachCommitCell iterates the cells whose results are kept.
func (tr *transport[T]) eachCommitCell(f func(c int)) {
	if tr.owned == nil {
		for c := 0; c < tr.m.NCells; c++ {
			f(c)
		}
		return
	}
	for _, c := range tr.owned.Commit {
		f(int(c))
	}
}

// eachEdge iterates the compute edges.
func (tr *transport[T]) eachEdge(f func(e int)) {
	if tr.owned == nil {
		for e := 0; e < tr.m.NEdges; e++ {
			f(e)
		}
		return
	}
	for _, e := range tr.owned.Edges {
		f(int(e))
	}
}

// Step advances every species: first the tracer-step dry mass with the
// divergence of the mass flux, then each species with FCT-limited fluxes.
//
//grist:hotpath
func (tr *transport[T]) Step(f *Field, massFlux []float64, dt float64) {
	sp := tr.rec.Begin("tracer_step", tr.telRank)
	m := tr.m
	nlev := tr.nlev

	// New tracer-step mass (double precision like the flux itself).
	tr.eachCell(func(c int) {
		inv := dt / m.CellArea[c]
		for k := 0; k < nlev; k++ {
			tr.newMass[c*nlev+k] = f.Mass[c*nlev+k]
		}
		for kk := m.CellOff[c]; kk < m.CellOff[c+1]; kk++ {
			ed := m.CellEdge[kk]
			s := float64(m.CellEdgeSign[kk]) * m.DvEdge[ed] * inv
			for k := 0; k < nlev; k++ {
				tr.newMass[c*nlev+k] -= s * massFlux[int(ed)*nlev+k]
			}
		}
	})

	for sp := range f.Q {
		tr.advectSpecies(f, Species(sp), massFlux, dt)
	}
	tr.eachCommitCell(func(c int) {
		copy(f.Mass[c*nlev:(c+1)*nlev], tr.newMass[c*nlev:(c+1)*nlev])
	})
	sp.End()
}

// advectSpecies performs one FCT-limited advection step of a species.
//
//grist:hotpath
func (tr *transport[T]) advectSpecies(f *Field, sp Species, massFlux []float64, dt float64) {
	m := tr.m
	nlev := tr.nlev
	q := f.Q[sp]

	// --- Low-order (upwind) and antidiffusive (centered minus upwind)
	// tracer fluxes: the HoriFluxLimiter kernel's first phase. ---
	tr.eachEdge(func(e int) {
		c0, c1 := int(m.EdgeCell[e][0]), int(m.EdgeCell[e][1])
		for k := 0; k < nlev; k++ {
			i := e*nlev + k
			mf := T(massFlux[i])
			q0 := T(q[c0*nlev+k]) / T(f.Mass[c0*nlev+k])
			q1 := T(q[c1*nlev+k]) / T(f.Mass[c1*nlev+k])
			var qUp T
			if mf >= 0 {
				qUp = q0
			} else {
				qUp = q1
			}
			lo := mf * qUp
			hi := mf * (q0 + q1) / 2
			tr.fluxLo[i] = lo
			tr.fluxA[i] = hi - lo
		}
	})

	// --- Provisional low-order update (monotone). ---
	tr.eachCell(func(c int) {
		invA := T(dt / m.CellArea[c])
		for k := 0; k < nlev; k++ {
			tr.qtd[c*nlev+k] = T(q[c*nlev+k])
		}
		for kk := m.CellOff[c]; kk < m.CellOff[c+1]; kk++ {
			ed := int(m.CellEdge[kk])
			s := T(m.CellEdgeSign[kk]) * T(m.DvEdge[ed]) * invA
			for k := 0; k < nlev; k++ {
				tr.qtd[c*nlev+k] -= s * tr.fluxLo[ed*nlev+k]
			}
		}
		// To mixing ratio against the new mass.
		for k := 0; k < nlev; k++ {
			tr.qtd[c*nlev+k] /= T(tr.newMass[c*nlev+k])
		}
	})

	// --- Zalesak bounds from the old ratios and neighbors. ---
	tr.eachCell(func(c int) {
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			qc := T(q[i]) / T(f.Mass[i])
			lo, hi := qc, qc
			if tr.qtd[i] < lo {
				lo = tr.qtd[i]
			}
			if tr.qtd[i] > hi {
				hi = tr.qtd[i]
			}
			for kk := m.CellOff[c]; kk < m.CellOff[c+1]; kk++ {
				nb := int(m.CellCell[kk])
				j := nb*nlev + k
				qn := T(q[j]) / T(f.Mass[j])
				if qn < lo {
					lo = qn
				}
				if qn > hi {
					hi = qn
				}
				if tr.qtd[j] < lo {
					lo = tr.qtd[j]
				}
				if tr.qtd[j] > hi {
					hi = tr.qtd[j]
				}
			}
			tr.qmin[i], tr.qmax[i] = lo, hi
		}
	})

	// --- Limiter coefficients R+/R- per cell. ---
	tr.eachCell(func(c int) {
		invA := T(dt / m.CellArea[c])
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			var pPlus, pMinus T // total anti-diffusive in/outflow
			for kk := m.CellOff[c]; kk < m.CellOff[c+1]; kk++ {
				ed := int(m.CellEdge[kk])
				a := T(m.CellEdgeSign[kk]) * T(m.DvEdge[ed]) * invA * tr.fluxA[ed*nlev+k]
				if a < 0 {
					pPlus -= a // inflow raises q
				} else {
					pMinus += a
				}
			}
			mass := T(tr.newMass[i])
			qPlus := (tr.qmax[i] - tr.qtd[i]) // available headroom
			qMinus := (tr.qtd[i] - tr.qmin[i])
			tr.rPlus[i] = limiterRatio(qPlus*mass, pPlus*mass)
			tr.rMinus[i] = limiterRatio(qMinus*mass, pMinus*mass)
		}
	})

	// --- Apply limited antidiffusive fluxes. ---
	tr.eachCommitCellOrAll(func(c int) {
		invA := T(dt / m.CellArea[c])
		for kk := m.CellOff[c]; kk < m.CellOff[c+1]; kk++ {
			ed := int(m.CellEdge[kk])
			nb := int(m.CellCell[kk])
			sgn := T(m.CellEdgeSign[kk])
			s := sgn * T(m.DvEdge[ed]) * invA
			for k := 0; k < nlev; k++ {
				i := c*nlev + k
				a := tr.fluxA[ed*nlev+k] * sgn // outflow positive for this cell
				var cLim T
				if a >= 0 { // outflow from c into nb
					cLim = minT(tr.rMinus[i], tr.rPlus[nb*nlev+k])
				} else { // inflow into c from nb
					cLim = minT(tr.rPlus[i], tr.rMinus[nb*nlev+k])
				}
				tr.qtd[i] -= s * cLim * tr.fluxA[ed*nlev+k] / T(tr.newMass[i])
			}
		}
	})

	// --- Commit: back to mass-weighted double-precision storage. ---
	tr.eachCommitCell(func(c int) {
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			v := float64(tr.qtd[i]) * tr.newMass[i]
			if v < 0 { // guard rounding
				v = 0
			}
			q[i] = v
		}
	})
}

// eachCommitCellOrAll applies the antidiffusive pass: in serial mode all
// cells; in distributed mode the commit cells only (the limited flux of
// boundary edges uses identical r coefficients on both owning ranks, so
// conservation holds across the cut).
func (tr *transport[T]) eachCommitCellOrAll(f func(c int)) {
	tr.eachCommitCell(f)
}

// limiterRatio returns min(1, capacity/demand) handling zero demand.
func limiterRatio[T precision.Real](capacity, demand T) T {
	if demand <= 0 {
		return 1
	}
	r := capacity / demand
	if r > 1 {
		return 1
	}
	if r < 0 {
		return 0
	}
	return r
}

func minT[T precision.Real](a, b T) T {
	if a < b {
		return a
	}
	return b
}
