package telemetry

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock installs a deterministic nanosecond clock on a recorder and
// returns the tick function: every call to now() advances by step.
func fakeClock(r *Recorder, step int64) {
	var t int64
	r.now = func() int64 {
		t += step
		return t
	}
}

// TestRecorderRing: events append in order, wrap overwrites the oldest,
// and Snapshot returns chronological order across the wrap.
func TestRecorderRing(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 20; i++ {
		r.SetStep(int64(i))
		sp := r.Begin("span", 3)
		sp.End()
	}
	if got := r.Len(); got != 16 {
		t.Fatalf("Len = %d, want 16 (ring capacity)", got)
	}
	if got := r.Dropped(); got != 4 {
		t.Fatalf("Dropped = %d, want 4", got)
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("snapshot has %d events, want 16", len(evs))
	}
	for i, ev := range evs {
		if want := int64(i + 4); ev.Step != want {
			t.Fatalf("event %d step = %d, want %d (oldest 4 overwritten)", i, ev.Step, want)
		}
		if ev.Rank != 3 || ev.Name != "span" {
			t.Fatalf("event %d attribution = (%q, rank %d)", i, ev.Name, ev.Rank)
		}
	}
}

// TestNilRecorderIsDisabled: a nil recorder must be safe to use from
// instrumented code paths with no nil checks at call sites.
func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	r.SetStep(5)
	sp := r.Begin("x", 0)
	sp.End()
	if r.Len() != 0 || r.Snapshot() != nil || r.Dropped() != 0 || r.CurrentStep() != 0 {
		t.Error("nil recorder leaked state")
	}
}

// TestSpanAllocFree: the hot-path contract — span begin/end performs
// zero heap allocations (the flight recorder writes into the
// preallocated ring).
func TestSpanAllocFree(t *testing.T) {
	r := NewRecorder(1024)
	allocs := testing.AllocsPerRun(200, func() {
		sp := r.Begin("dyn_interior", 1)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("span begin/end allocates %.1f times per op, want 0", allocs)
	}
}

// TestMetricOpsAllocFree: counter/gauge/histogram operations through
// pre-resolved handles are allocation-free too.
func TestMetricOpsAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("grist_test_total")
	g := reg.Gauge("grist_test_gauge")
	h := reg.Histogram("grist_test_seconds")
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(1.5)
		h.Observe(0.25)
	})
	if allocs != 0 {
		t.Errorf("metric ops allocate %.1f times per op, want 0", allocs)
	}
}

// TestRecorderConcurrent: many goroutines recording concurrently (run
// under -race by make race) neither race nor lose the ring invariants.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(rank int32) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := r.Begin("work", rank)
				sp.End()
			}
		}(int32(g))
	}
	done := make(chan struct{})
	go func() { // concurrent reader
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
			r.Len()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Len(); got != 256 {
		t.Fatalf("Len = %d, want full ring", got)
	}
	if total := r.Dropped() + 256; total != 8*500 {
		t.Fatalf("recorded %d events, want %d", total, 8*500)
	}
}

// TestHistogramQuantiles: the log-bucketed quantiles land within a
// factor of two of the true percentiles, and extremes are exact.
func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000) // uniform on (0, 1]
	}
	if got := h.Quantile(0); got != 0.001 {
		t.Errorf("q0 = %g, want exact min 0.001", got)
	}
	if got := h.Quantile(1); got != 1 {
		t.Errorf("q1 = %g, want exact max 1", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.25 || p50 > 1.0 {
		t.Errorf("p50 = %g, want within a factor of two of 0.5", p50)
	}
	if h.Count() != 1000 {
		t.Errorf("count = %d", h.Count())
	}
	if m := h.Mean(); m < 0.49 || m > 0.52 {
		t.Errorf("mean = %g, want ~0.5", m)
	}
	if e := h.EWMA(); e < 0.8 {
		t.Errorf("ewma = %g, want dominated by the recent (large) samples", e)
	}
}

// TestRegistrySharing: the same (name, labels) returns the same
// instrument; label order does not matter; kind mismatch panics.
func TestRegistrySharing(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("grist_x_total", "rank", "0", "comp", "dyn")
	b := reg.Counter("grist_x_total", "comp", "dyn", "rank", "0")
	if a != b {
		t.Error("label order created distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	reg.Gauge("grist_x_total", "rank", "0", "comp", "dyn")
}

// TestServeEndpoints: the HTTP plane serves all four endpoint families.
func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("grist_http_test_total").Add(7)
	rec := NewRecorder(64)
	sp := rec.Begin("served_span", 0)
	time.Sleep(time.Millisecond)
	sp.End()

	srv, addr, err := Serve("127.0.0.1:0", reg, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "grist_http_test_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/metrics.json"); !strings.Contains(body, `"grist_http_test_total"`) {
		t.Errorf("/metrics.json missing counter:\n%s", body)
	}
	if body := get("/trace"); !strings.Contains(body, `"served_span"`) {
		t.Errorf("/trace missing span:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
