package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteChromeTrace writes the recorder's held spans as Chrome
// trace_event JSON (the "X" complete-event form), loadable in
// chrome://tracing and https://ui.perfetto.dev. Mapping:
//
//   - pid 0 is the model process; tid is the MPI rank, so each rank gets
//     its own timeline row and nested spans (halo_start → interior →
//     halo_finish → boundary, inference batches, remap) stack within it;
//   - ts/dur are microseconds since the recorder epoch;
//   - args.step is the model step the span was attributed to.
//
// Events are emitted in (start, longer-first) order, which the viewers
// require for correct nesting of equal-start spans.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	evs := r.Snapshot()
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		return evs[i].Dur > evs[j].Dur
	})
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	for i, ev := range evs {
		sep := ""
		if i > 0 {
			sep = ","
		}
		if _, err := fmt.Fprintf(w,
			"%s\n{\"name\":%s,\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":{\"step\":%d}}",
			sep, strconv.Quote(ev.Name), ev.Rank, micros(ev.Start), micros(ev.Dur), ev.Step); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// micros renders nanoseconds as decimal microseconds with nanosecond
// resolution preserved (integer math; no float wobble in goldens).
func micros(ns int64) string {
	sign := ""
	if ns < 0 {
		sign = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%03d", sign, ns/1000, ns%1000)
}
