package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// NewMux builds the telemetry HTTP plane:
//
//	/metrics        Prometheus text exposition of reg
//	/metrics.json   the same registry as JSON
//	/trace          Chrome trace_event JSON of rec's current ring
//	/debug/pprof/*  the standard Go profiler endpoints
//
// reg and rec may each be nil; the corresponding endpoints then serve
// 404.
func NewMux(reg *Registry, rec *Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			reg.WriteJSON(w)
		})
	}
	if rec != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="grist-trace.json"`)
			rec.WriteChromeTrace(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the telemetry plane on addr in a background goroutine and
// returns the server and the bound address (useful with ":0"). The
// caller owns shutdown: srv.Close() when the run ends.
func Serve(addr string, reg *Registry, rec *Recorder) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewMux(reg, rec)}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
