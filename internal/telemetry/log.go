package telemetry

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the structured logger behind every driver's
// -log.format flag: "text" renders human-readable key=value lines,
// "json" renders one JSON object per line for log shippers. Components
// attach their coordinates (rank, step, epoch) as attrs rather than
// interpolating them into the message, so a straggler investigation can
// filter by rank the same way it slices the trace.
func NewLogger(format string, w io.Writer) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, nil)
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

// SetDefaultLogger installs the format's logger process-wide
// (slog.Default), which is what the library packages log through.
func SetDefaultLogger(format string, w io.Writer) error {
	l, err := NewLogger(format, w)
	if err != nil {
		return err
	}
	slog.SetDefault(l)
	return nil
}
