package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// buildGoldenTrace records a deterministic nested step timeline on two
// ranks with a fake nanosecond clock (each now() call advances 1000 ns,
// i.e. 1 µs).
func buildGoldenTrace() *Recorder {
	r := NewRecorder(64)
	fakeClock(r, 1000)
	r.SetStep(7)
	// Rank 0: outer step span enclosing the four phases.
	step := r.Begin("dyn_step", 0) // t=1µs
	hs := r.Begin("halo_start", 0) // t=2µs
	hs.End()                       // t=3µs -> dur 1µs
	in := r.Begin("interior", 0)   // t=4µs
	in.End()                       // t=5µs
	hf := r.Begin("halo_finish", 0)
	hf.End()
	bd := r.Begin("boundary", 0)
	bd.End()
	step.End() // closes at t=10µs -> dur 9µs
	// Rank 1: one inference batch on its own timeline row.
	r.SetStep(8)
	inf := r.Begin("infer_forward", 1)
	inf.End()
	return r
}

const goldenTrace = `{"displayTimeUnit":"ms","traceEvents":[
{"name":"dyn_step","ph":"X","pid":0,"tid":0,"ts":1.000,"dur":9.000,"args":{"step":7}},
{"name":"halo_start","ph":"X","pid":0,"tid":0,"ts":2.000,"dur":1.000,"args":{"step":7}},
{"name":"interior","ph":"X","pid":0,"tid":0,"ts":4.000,"dur":1.000,"args":{"step":7}},
{"name":"halo_finish","ph":"X","pid":0,"tid":0,"ts":6.000,"dur":1.000,"args":{"step":7}},
{"name":"boundary","ph":"X","pid":0,"tid":0,"ts":8.000,"dur":1.000,"args":{"step":7}},
{"name":"infer_forward","ph":"X","pid":0,"tid":1,"ts":11.000,"dur":1.000,"args":{"step":8}}
]}
`

// TestChromeTraceGolden: the exact trace_event serialization, including
// the start-time ordering that makes nested spans render correctly.
func TestChromeTraceGolden(t *testing.T) {
	var b strings.Builder
	if err := buildGoldenTrace().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != goldenTrace {
		t.Errorf("chrome trace drifted.\n--- got ---\n%s--- want ---\n%s", got, goldenTrace)
	}
}

// TestChromeTraceIsValidJSON: the export must parse as the trace_event
// container shape ({"traceEvents": [...]}) with the required fields.
func TestChromeTraceIsValidJSON(t *testing.T) {
	var b strings.Builder
	if err := buildGoldenTrace().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args struct {
				Step int64 `json:"step"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("parsed %d events, want 6", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur <= 0 {
			t.Errorf("event %q: ph=%q dur=%g", ev.Name, ev.Ph, ev.Dur)
		}
	}
	// The outer span must enclose the phases (nesting in the viewer).
	outer := doc.TraceEvents[0]
	inner := doc.TraceEvents[1]
	if outer.Name != "dyn_step" || inner.Ts < outer.Ts ||
		inner.Ts+inner.Dur > outer.Ts+outer.Dur {
		t.Errorf("phase span [%g,%g] not nested in step span [%g,%g]",
			inner.Ts, inner.Ts+inner.Dur, outer.Ts, outer.Ts+outer.Dur)
	}
}

// TestEmptyTrace: an empty recorder still writes a valid document.
func TestEmptyTrace(t *testing.T) {
	r := NewRecorder(16)
	var b strings.Builder
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
}
