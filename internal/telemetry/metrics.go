package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotone int64 counter. All operations are atomic.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
//
//grist:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//grist:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value float64 metric. All operations are atomic.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
//
//grist:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value (zero until first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of log2-spaced histogram buckets. Bucket i
// counts observations in [2^(i-histBias), 2^(i-histBias+1)); bucket 0
// additionally absorbs non-positive values. With bias 33 the resolved
// range spans ~0.1 ns to ~2e9 s — every latency this model produces.
const (
	histBuckets = 64
	histBias    = 33
)

// Histogram accumulates float64 observations into log2-spaced buckets
// and keeps count, sum, extrema and an exponentially weighted moving
// average (EWMA). Quantiles are approximate (one bucket of resolution,
// i.e. within a factor of two). Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	ewma    float64
	primed  bool
	alpha   float64
	buckets [histBuckets]int64

	// exemplars holds the most recent exemplar label (a trace id) per
	// bucket, so "what request landed in the p99 bucket?" has an answer
	// one can paste into /debug/query/{id}. Fixed storage; overwritten
	// in place, never allocated per observation.
	exemplars [histBuckets]string
}

// ewmaAlpha is the default EWMA smoothing factor: each observation
// contributes 10%, so the average reflects roughly the last ~20 samples.
const ewmaAlpha = 0.1

// Observe records one value.
//
//grist:hotpath
func (h *Histogram) Observe(v float64) { h.ObserveExemplar(v, "") }

// ObserveExemplar records one value and attaches an exemplar label (a
// trace id) to the bucket it lands in, replacing the bucket's previous
// exemplar. Allocation-free apart from the caller's label.
//
//grist:hotpath
func (h *Histogram) ObserveExemplar(v float64, exemplar string) {
	h.mu.Lock()
	if h.alpha == 0 {
		h.alpha = ewmaAlpha
	}
	h.count++
	h.sum += v
	if !h.primed {
		h.min, h.max, h.ewma = v, v, v
		h.primed = true
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
		h.ewma += h.alpha * (v - h.ewma)
	}
	b := bucketOf(v)
	h.buckets[b]++
	if exemplar != "" {
		h.exemplars[b] = exemplar
	}
	h.mu.Unlock()
}

// ExemplarNear returns the exemplar of the bucket holding the
// q-quantile observation, falling back to the nearest lower bucket
// carrying one ("" when no exemplar has been recorded at or below the
// quantile). The p99 exemplar is the usual question: which request was
// the slow one.
func (h *Histogram) ExemplarNear(q float64) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return ""
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	qb := histBuckets - 1
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i]
		if cum >= target {
			qb = i
			break
		}
	}
	for i := qb; i >= 0; i-- {
		if h.exemplars[i] != "" {
			return h.exemplars[i]
		}
	}
	return ""
}

// bucketOf maps a value to its log2 bucket index.
//
//grist:hotpath
func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	i := int(math.Floor(math.Log2(v))) + histBias
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketMid returns the representative value of bucket i (the geometric
// midpoint of its range).
func bucketMid(i int) float64 {
	if i == 0 {
		return 0
	}
	return math.Ldexp(1.5, i-histBias)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// EWMA returns the exponentially weighted moving average of the
// observations (zero before the first).
func (h *Histogram) EWMA() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ewma
}

// Mean returns the arithmetic mean of all observations.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the approximate q-quantile (0 <= q <= 1): the
// representative value of the bucket containing the q-th ranked
// observation. Exact min/max are returned at the extremes.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(math.Ceil(q * float64(h.count)))
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i]
		if cum >= target {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// metricKind tags a registry entry's type.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered instrument plus its identity.
type metric struct {
	name   string
	labels string // pre-rendered `{k="v",...}` or ""
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// key returns the unique registry key.
func (m *metric) key() string { return m.name + m.labels }

// Registry is a concurrency-safe collection of named metrics. Lookup is
// get-or-create: two callers asking for the same (name, labels) share
// one instrument, so component counters aggregate naturally. Handles
// returned by Counter/Gauge/Histogram are stable; hot paths resolve them
// once and then operate lock-free (atomics) or under a per-instrument
// mutex (histograms).
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*metric{}}
}

// renderLabels serializes k/v pairs into the canonical `{k="v",...}`
// form, sorted by key for deterministic export.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the metric under (name, labels), creating it with mk
// when absent; it panics when the existing entry has a different kind.
func (r *Registry) lookup(name string, labels []string, kind metricKind) *metric {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[name+ls]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %s%s registered as %v, requested as %v",
				name, ls, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, labels: ls, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = &Histogram{alpha: ewmaAlpha}
	}
	r.byKey[m.key()] = m
	return m
}

// Counter returns the counter under (name, labels...), creating it on
// first use. labels are alternating key/value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(name, labels, kindCounter).c
}

// Gauge returns the gauge under (name, labels...), creating it on first
// use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(name, labels, kindGauge).g
}

// Histogram returns the histogram under (name, labels...), creating it
// on first use.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.lookup(name, labels, kindHistogram).h
}

// sorted returns the registered metrics ordered by (name, labels) for
// deterministic export.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.byKey))
	for _, m := range r.byKey {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}
