package telemetry

import (
	"strings"
	"testing"
)

func TestBeginAtStampsExplicitStep(t *testing.T) {
	rec := NewRecorder(8)
	rec.SetStep(99) // recorder-wide value, must be overridden
	rec.BeginAt("interior", 3, 7).End()
	rec.Begin("boundary", 3).End()
	evs := rec.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Name != "interior" || evs[0].Rank != 3 || evs[0].Step != 7 {
		t.Fatalf("BeginAt span = %+v, want step 7 rank 3", evs[0])
	}
	if evs[1].Step != 99 {
		t.Fatalf("Begin span step = %d, want the recorder-wide 99", evs[1].Step)
	}
}

func TestDroppedCountsRingWrap(t *testing.T) {
	rec := NewRecorder(16) // 16 is the recorder's minimum capacity
	for i := 0; i < 16; i++ {
		rec.Begin("a", 0).End()
	}
	if d := rec.Dropped(); d != 0 {
		t.Fatalf("Dropped before wrap = %d, want 0", d)
	}
	for i := 0; i < 3; i++ {
		rec.Begin("b", 0).End()
	}
	if d := rec.Dropped(); d != 3 {
		t.Fatalf("Dropped after 3 overwrites = %d, want 3", d)
	}
}

func TestDropCounterPublishesDeltas(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(16)
	dc := NewDropCounter(reg, rec)
	c := reg.Counter("grist_trace_dropped_total")

	dc.Publish()
	if c.Value() != 0 {
		t.Fatalf("counter before any drop = %d", c.Value())
	}
	for i := 0; i < 19; i++ {
		rec.Begin("x", 0).End()
	}
	dc.Publish()
	dc.Publish() // second publish with no new drops must not double-count
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3 (19 events into a 16-slot ring)", c.Value())
	}
	rec.Begin("x", 0).End()
	dc.Publish()
	if c.Value() != 4 {
		t.Fatalf("counter after one more drop = %d, want 4", c.Value())
	}

	// Nil pieces yield an inert publisher, not a panic.
	NewDropCounter(nil, nil).Publish()
	var nilDC *DropCounter
	nilDC.Publish()
}

func TestExemplarSurvivesToExport(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("grist_serve_latency_seconds", "kind", "point")
	h.ObserveExemplar(0.004, "fast1")
	h.ObserveExemplar(0.250, "slow1")
	if ex := h.ExemplarNear(0.99); ex != "slow1" {
		t.Fatalf("p99 exemplar = %q, want the slow query's ID", ex)
	}
	var buf strings.Builder
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"exemplar_p99":"slow1"`) {
		t.Fatalf("JSON export missing exemplar: %s", buf.String())
	}
}
