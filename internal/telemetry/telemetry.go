// Package telemetry is the model's flight recorder and metrics plane.
//
// The paper's performance story rests on measurement — per-kernel runtime
// logs, the communication/computation split, SYPD scaling — and a run
// that is drifting numerically or load-imbalanced should be visible
// *while it runs*, not after it finishes. This package provides the three
// pieces every layer of the model reports into:
//
//   - Recorder: an allocation-free span tracer over a fixed-size ring
//     buffer. Span begin/end in the hot path performs zero heap
//     allocations (guarded by testing.AllocsPerRun); when the ring wraps,
//     the oldest spans are overwritten — a flight recorder keeps the
//     recent past, not the whole flight. Spans carry per-rank and
//     per-step attribution and export as Chrome trace_event JSON
//     (chrome://tracing, Perfetto) — see WriteChromeTrace.
//
//   - Registry: a concurrency-safe metrics registry of counters
//     (monotone, atomic), gauges (last-value, atomic) and histograms
//     (log-bucketed with an exponentially weighted moving average),
//     exported in Prometheus text format and JSON — see WritePrometheus
//     and WriteJSON.
//
//   - An HTTP plane (NewMux/Serve) publishing /metrics, /metrics.json,
//     /trace and net/http/pprof, wired into cmd/grist and cmd/gristbench
//     behind -telemetry.addr.
//
// The numerical-health sentinels (NaN scans, budget drift, the rolling
// ps/vor gate of §3.4) live in internal/diag and report into a Registry.
//
// A nil *Recorder is a valid, disabled recorder: Begin returns an inert
// Span and End is a no-op, so instrumented code paths need no branches
// at call sites and cost two predictable nil checks when telemetry is
// off.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event is one completed span in the ring: a named interval with rank
// and model-step attribution. Start is nanoseconds since the recorder's
// epoch; Dur is the span length in nanoseconds.
type Event struct {
	Name  string
	Rank  int32
	Step  int64
	Start int64
	Dur   int64
}

// Recorder is the fixed-size flight recorder. All methods are safe for
// concurrent use; a nil receiver is a disabled recorder.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	next   uint64 // monotone count of events ever recorded

	step atomic.Int64

	// now returns nanoseconds since the epoch. Replaceable by tests for
	// deterministic traces; the default reads the monotonic clock.
	now func() int64
}

// DefaultRingSize is the span capacity used by the CLI drivers: at ~8
// spans per dynamics step it keeps on the order of a thousand steps of
// history in a few MB.
const DefaultRingSize = 1 << 13

// NewRecorder creates a flight recorder holding the last capacity spans
// (minimum 16).
func NewRecorder(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	epoch := time.Now()
	return &Recorder{
		events: make([]Event, capacity),
		now:    func() int64 { return int64(time.Since(epoch)) },
	}
}

// SetStep sets the model step attributed to subsequently recorded spans.
// Drivers call it once per step; it is cheap and atomic.
func (r *Recorder) SetStep(step int64) {
	if r == nil {
		return
	}
	r.step.Store(step)
}

// CurrentStep returns the step most recently set with SetStep.
func (r *Recorder) CurrentStep() int64 {
	if r == nil {
		return 0
	}
	return r.step.Load()
}

// Span is an in-flight interval begun by Begin or BeginAt. The zero
// Span (and any Span from a nil Recorder) is inert: End does nothing.
type Span struct {
	rec   *Recorder
	name  string
	rank  int32
	step  int64 // explicit step when stepped is true (BeginAt)
	start int64
	// stepped selects the step source at End: the explicit step carried
	// by the span (BeginAt) or the recorder's shared SetStep value
	// (Begin). SPMD ranks advance their step counters independently, so
	// a shared atomic would misattribute a straggler's spans; BeginAt
	// lets each rank stamp its own step.
	stepped bool
}

// Begin starts a span attributed to rank. The span is recorded when End
// is called; Begin itself only reads the clock. Allocation-free.
//
//grist:hotpath
func (r *Recorder) Begin(name string, rank int32) Span {
	if r == nil {
		return Span{}
	}
	return Span{rec: r, name: name, rank: rank, start: r.now()}
}

// BeginAt starts a span attributed to rank with an explicit model step,
// overriding the recorder-wide SetStep value. Distributed runners use
// it because concurrently advancing ranks have no shared "current"
// step. Allocation-free.
//
//grist:hotpath
func (r *Recorder) BeginAt(name string, rank int32, step int64) Span {
	if r == nil {
		return Span{}
	}
	return Span{rec: r, name: name, rank: rank, step: step, stepped: true, start: r.now()}
}

// End completes the span and writes it into the ring, overwriting the
// oldest event when full. Allocation-free.
//
//grist:hotpath
func (s Span) End() {
	r := s.rec
	if r == nil {
		return
	}
	end := r.now()
	step := s.step
	if !s.stepped {
		step = r.step.Load()
	}
	r.mu.Lock()
	ev := &r.events[int(r.next%uint64(len(r.events)))]
	ev.Name = s.name
	ev.Rank = s.rank
	ev.Step = step
	ev.Start = s.start
	ev.Dur = end - s.start
	r.next++
	r.mu.Unlock()
}

// Len returns the number of events currently held (at most the ring
// capacity).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.events)) {
		return int(r.next)
	}
	return len(r.events)
}

// Dropped returns how many events have been overwritten by ring wrap.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next <= uint64(len(r.events)) {
		return 0
	}
	return r.next - uint64(len(r.events))
}

// Reset discards all recorded events (capacity is kept).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.next = 0
	r.mu.Unlock()
}

// DropCounter publishes a recorder's ring-wrap drop count into the
// monotone grist_trace_dropped_total counter. Dropped() is a cumulative
// high-water mark while counters only move forward, so the publisher
// tracks the last value it pushed and adds deltas; call Publish from
// any periodic point (a poll loop, the end of a run leg).
type DropCounter struct {
	rec  *Recorder
	c    *Counter
	mu   sync.Mutex
	last uint64
}

// NewDropCounter wires rec's drop count to grist_trace_dropped_total in
// reg. Either argument may be nil, yielding an inert publisher.
func NewDropCounter(reg *Registry, rec *Recorder) *DropCounter {
	d := &DropCounter{rec: rec}
	if reg != nil {
		d.c = reg.Counter("grist_trace_dropped_total")
	}
	return d
}

// Publish pushes the drops accrued since the previous Publish.
func (d *DropCounter) Publish() {
	if d == nil || d.c == nil || d.rec == nil {
		return
	}
	n := d.rec.Dropped()
	d.mu.Lock()
	if n > d.last {
		d.c.Add(int64(n - d.last))
		d.last = n
	}
	d.mu.Unlock()
}

// Snapshot returns the held events in chronological (recording) order.
// The returned slice is a copy; the recorder keeps running.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.events))
	if r.next <= n {
		return append([]Event(nil), r.events[:r.next]...)
	}
	// Ring has wrapped: oldest event sits at next % n.
	out := make([]Event, 0, n)
	head := int(r.next % n)
	out = append(out, r.events[head:]...)
	out = append(out, r.events[:head]...)
	return out
}
