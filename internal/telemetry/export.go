package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// exportQuantiles are the percentile points published for every
// histogram, in both exposition formats.
var exportQuantiles = [...]float64{0.5, 0.9, 0.99}

// formatFloat renders a float the way both exporters need it: shortest
// round-trip representation, "0" for zero, no exponent surprises for
// typical metric magnitudes.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelsWith merges a pre-rendered label set with one extra pair (used
// to add quantile="..." to histogram lines).
func labelsWith(rendered, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if rendered == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(rendered, "}") + "," + extra + "}"
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format. Counters and gauges emit one sample; histograms
// emit summary-style quantile samples plus _sum, _count and _ewma.
// Output order is deterministic: metrics sort by (name, labels).
func (r *Registry) WritePrometheus(w io.Writer) error {
	ms := r.sorted()
	lastName := ""
	for _, m := range ms {
		if m.name != lastName {
			typ := m.kind.String()
			if m.kind == kindHistogram {
				typ = "summary"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ); err != nil {
				return err
			}
			lastName = m.name
		}
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, m.labels, formatFloat(m.g.Value())); err != nil {
				return err
			}
		case kindHistogram:
			for _, q := range exportQuantiles {
				ql := labelsWith(m.labels, "quantile", formatFloat(q))
				if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, ql, formatFloat(m.h.Quantile(q))); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.name, m.labels, formatFloat(m.h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, m.h.Count()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_ewma%s %s\n", m.name, m.labels, formatFloat(m.h.EWMA())); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON writes every registered metric as one deterministic JSON
// object: {"counters":[...],"gauges":[...],"histograms":[...]}, each
// entry carrying name, labels (the rendered Prometheus form) and value
// fields. Hand-formatted so goldens are byte-stable across Go versions.
func (r *Registry) WriteJSON(w io.Writer) error {
	ms := r.sorted()
	var counters, gauges, hists []string
	for _, m := range ms {
		id := fmt.Sprintf("%q:%q", "name", m.name)
		if m.labels != "" {
			id += fmt.Sprintf(",%q:%q", "labels", m.labels)
		}
		switch m.kind {
		case kindCounter:
			counters = append(counters, fmt.Sprintf("{%s,\"value\":%d}", id, m.c.Value()))
		case kindGauge:
			gauges = append(gauges, fmt.Sprintf("{%s,\"value\":%s}", id, jsonFloat(m.g.Value())))
		case kindHistogram:
			h := m.h
			entry := fmt.Sprintf("{%s,\"count\":%d,\"sum\":%s,\"mean\":%s,\"ewma\":%s",
				id, h.Count(), jsonFloat(h.Sum()), jsonFloat(h.Mean()), jsonFloat(h.EWMA()))
			for _, q := range exportQuantiles {
				entry += fmt.Sprintf(",\"p%02.0f\":%s", q*100, jsonFloat(h.Quantile(q)))
			}
			if ex := h.ExemplarNear(0.99); ex != "" {
				entry += fmt.Sprintf(",\"exemplar_p99\":%q", ex)
			}
			hists = append(hists, entry+"}")
		}
	}
	_, err := fmt.Fprintf(w, "{\"counters\":[%s],\"gauges\":[%s],\"histograms\":[%s]}\n",
		strings.Join(counters, ","), strings.Join(gauges, ","), strings.Join(hists, ","))
	return err
}

// jsonFloat renders a float as valid JSON (NaN and infinities, which
// JSON cannot carry, become null).
func jsonFloat(v float64) string {
	s := formatFloat(v)
	if strings.ContainsAny(s, "NI") { // NaN, +Inf, -Inf
		return "null"
	}
	return s
}
