package telemetry

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestMuxEndpointsServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mux_test_total", "kind", "a").Add(3)
	reg.Gauge("mux_test_gauge").Set(1.5)
	reg.Histogram("mux_test_hist").Observe(0.25)
	rec := NewRecorder(64)
	rec.Begin("step", 0).End()

	mux := NewMux(reg, rec)
	prom := scrape(t, mux, "/metrics")
	if prom.Code != 200 || !strings.Contains(prom.Body.String(), "mux_test_total") {
		t.Fatalf("/metrics = %d: %q", prom.Code, prom.Body.String())
	}
	js := scrape(t, mux, "/metrics.json")
	if js.Code != 200 || !strings.Contains(js.Body.String(), "mux_test_gauge") {
		t.Fatalf("/metrics.json = %d", js.Code)
	}
	tr := scrape(t, mux, "/trace")
	if tr.Code != 200 || !strings.Contains(tr.Body.String(), "step") {
		t.Fatalf("/trace = %d: %q", tr.Code, tr.Body.String())
	}

	// Nil registry/recorder: the endpoints are simply absent (404).
	bare := NewMux(nil, nil)
	if got := scrape(t, bare, "/metrics"); got.Code != 404 {
		t.Fatalf("nil-registry /metrics = %d, want 404", got.Code)
	}
	if got := scrape(t, bare, "/trace"); got.Code != 404 {
		t.Fatalf("nil-recorder /trace = %d, want 404", got.Code)
	}
}

// Concurrent scrapes of every exposition endpoint while writers hammer
// counters, gauges, histograms, and spans. The assertion is the race
// detector's: `make check` runs this under -race, so any unsynchronized
// read in the exposition path fails the build.
func TestConcurrentScrapesWhilePublishing(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(256)
	mux := NewMux(reg, rec)
	// Seed both planes so a scraper that wins the race to the first
	// request still sees a non-empty exposition.
	reg.Counter("scrape_race_seed_total").Inc()
	rec.Begin("seed", 0).End()

	const writers, scrapers, rounds = 4, 4, 200
	var writeWG, scrapeWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			c := reg.Counter("scrape_race_total", "writer", fmt.Sprint(w))
			g := reg.Gauge("scrape_race_gauge")
			h := reg.Histogram("scrape_race_seconds", "writer", fmt.Sprint(w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%100) / 100)
				sp := rec.Begin("race_span", int32(w))
				sp.End()
				if i%50 == 0 {
					// Metric creation races against exposition too.
					reg.Counter("scrape_race_dynamic_total", "i", fmt.Sprint(i%8)).Inc()
				}
			}
		}(w)
	}

	for s := 0; s < scrapers; s++ {
		scrapeWG.Add(1)
		go func(s int) {
			defer scrapeWG.Done()
			paths := []string{"/metrics", "/metrics.json", "/trace"}
			for i := 0; i < rounds; i++ {
				got := scrape(t, mux, paths[(s+i)%len(paths)])
				if got.Code != 200 {
					t.Errorf("scrape %s = %d", paths[(s+i)%len(paths)], got.Code)
					return
				}
				if got.Body.Len() == 0 {
					t.Error("empty exposition body")
					return
				}
			}
		}(s)
	}

	// Writers keep publishing until every scraper has finished its
	// rounds, so each scrape races live mutation.
	scrapeWG.Wait()
	close(stop)
	writeWG.Wait()
}
