package telemetry

import (
	"strings"
	"testing"
)

// buildGoldenRegistry populates a registry with one of each instrument
// kind, deterministically.
func buildGoldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("grist_halo_bytes_total").Add(123456)
	reg.Counter("grist_component_calls_total", "component", "dynamics").Add(42)
	reg.Counter("grist_component_calls_total", "component", "halo_wait").Add(7)
	reg.Gauge("grist_sypd").Set(0.5)
	reg.Gauge("grist_comm_share").Set(0.125)
	h := reg.Histogram("grist_step_latency_seconds")
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(2)
	return reg
}

// The golden Prometheus exposition. 0.25 sits in the [0.25, 0.5) bucket
// (mid 0.375), 2 in [2, 4) (mid 3, clamped to the true max 2); p50/p90
// land in the first, p99 in the second. EWMA after 0.25,0.25,0.25,2 with
// alpha 0.1 is 0.42500000000000004 (exact IEEE double).
const goldenPrometheus = `# TYPE grist_comm_share gauge
grist_comm_share 0.125
# TYPE grist_component_calls_total counter
grist_component_calls_total{component="dynamics"} 42
grist_component_calls_total{component="halo_wait"} 7
# TYPE grist_halo_bytes_total counter
grist_halo_bytes_total 123456
# TYPE grist_step_latency_seconds summary
grist_step_latency_seconds{quantile="0.5"} 0.375
grist_step_latency_seconds{quantile="0.9"} 2
grist_step_latency_seconds{quantile="0.99"} 2
grist_step_latency_seconds_sum 2.75
grist_step_latency_seconds_count 4
grist_step_latency_seconds_ewma 0.42500000000000004
# TYPE grist_sypd gauge
grist_sypd 0.5
`

func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := buildGoldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != goldenPrometheus {
		t.Errorf("Prometheus exposition drifted.\n--- got ---\n%s--- want ---\n%s", got, goldenPrometheus)
	}
}

const goldenJSON = `{"counters":[{"name":"grist_component_calls_total","labels":"{component=\"dynamics\"}","value":42},{"name":"grist_component_calls_total","labels":"{component=\"halo_wait\"}","value":7},{"name":"grist_halo_bytes_total","value":123456}],"gauges":[{"name":"grist_comm_share","value":0.125},{"name":"grist_sypd","value":0.5}],"histograms":[{"name":"grist_step_latency_seconds","count":4,"sum":2.75,"mean":0.6875,"ewma":0.42500000000000004,"p50":0.375,"p90":2,"p99":2}]}
`

func TestJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := buildGoldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != goldenJSON {
		t.Errorf("JSON export drifted.\n--- got ---\n%s--- want ---\n%s", got, goldenJSON)
	}
}
