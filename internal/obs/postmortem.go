package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// RankAttribution is one rank's phase breakdown for one step. WallNS is
// the rank's dyn_step/physics_step container when present, else the sum
// of its leaves; Compute/Comm/Wait partition the leaf time by PhaseOf.
// Under lockstep synchronization per-rank walls equalize — peers absorb
// a straggler's excess as halo_wait — so ComputeNS (wall minus the
// waiting) is the number that localizes load, and is what the
// span-weighted rebalancer feeds back into the partitioner.
type RankAttribution struct {
	Rank      int32 `json:"rank"`
	WallNS    int64 `json:"wall_ns"`
	ComputeNS int64 `json:"compute_ns"`
	CommNS    int64 `json:"comm_ns"`
	WaitNS    int64 `json:"wait_ns"`
	Spans     int   `json:"spans"`
}

// Straggler is one of a step's top-k slowest ranks by wall time, with
// its excess over the step's mean rank wall.
type Straggler struct {
	Rank        int32 `json:"rank"`
	WallNS      int64 `json:"wall_ns"`
	AboveMeanNS int64 `json:"above_mean_ns"`
}

// StepReport is the postmortem of one model step: per-rank attribution,
// the critical path with its own phase split, the wall-time imbalance
// ratio (max/mean) and its delta against the previous step, and the
// straggler ranking.
type StepReport struct {
	Step           int64             `json:"step"`
	Ranks          []RankAttribution `json:"ranks"`
	CriticalNS     int64             `json:"critical_ns"`
	CritComputeNS  int64             `json:"critical_compute_ns"`
	CritCommNS     int64             `json:"critical_comm_ns"`
	CritWaitNS     int64             `json:"critical_wait_ns"`
	CriticalPath   []PathSpan        `json:"critical_path"`
	Imbalance      float64           `json:"imbalance"`
	ImbalanceDelta float64           `json:"imbalance_delta"`
	Stragglers     []Straggler       `json:"stragglers,omitempty"`

	// Incomplete marks a step whose data is partial — a rank's spans
	// were overwritten by ring wrap or never recorded — so attribution
	// undercounts and the critical path may be truncated.
	Incomplete bool `json:"incomplete,omitempty"`
}

// Postmortem is the full report over a merged timeline.
type Postmortem struct {
	Ranks    int          `json:"ranks"`
	Steps    []StepReport `json:"steps"`
	Dropped  uint64       `json:"dropped_spans"`
	Warnings []string     `json:"warnings,omitempty"`
}

// Build derives the postmortem from a merged timeline, keeping at most
// topK stragglers per step (only ranks above the mean wall qualify).
// Deterministic: a pure function of the timeline, so replays over the
// same rings encode byte-identically.
//
//grist:bitwise
func Build(t *Timeline, topK int) *Postmortem {
	pm := &Postmortem{Ranks: len(t.Ranks), Dropped: t.Dropped}
	prevImb := 0.0
	for si := range t.Steps {
		st := &t.Steps[si]
		rep := StepReport{Step: st.Step}
		var sumWall, maxWall int64
		for _, rs := range st.Ranks {
			a := RankAttribution{Rank: rs.Rank, Spans: len(rs.Spans)}
			var container, leafSum int64
			for _, sp := range rs.Spans {
				switch PhaseOf(sp.Name) {
				case PhaseCompute:
					a.ComputeNS += sp.Dur
				case PhaseComm:
					a.CommNS += sp.Dur
				case PhaseWait:
					a.WaitNS += sp.Dur
				case PhaseContainer:
					if sp.Name == "dyn_step" || sp.Name == "physics_step" {
						container += sp.Dur
					}
					continue
				}
				leafSum += sp.Dur
			}
			a.WallNS = container
			if a.WallNS == 0 {
				a.WallNS = leafSum
			}
			rep.Ranks = append(rep.Ranks, a)
			sumWall += a.WallNS
			if a.WallNS > maxWall {
				maxWall = a.WallNS
			}
		}
		if sumWall > 0 && len(rep.Ranks) > 0 {
			rep.Imbalance = float64(maxWall) * float64(len(rep.Ranks)) / float64(sumWall)
		}
		if si > 0 {
			rep.ImbalanceDelta = rep.Imbalance - prevImb
		}
		prevImb = rep.Imbalance

		// A step is suspect when a rank the timeline knows about has no
		// spans here, or when ring wrap ate the oldest history (the first
		// retained step is where truncation lands).
		if len(st.Ranks) < len(t.Ranks) || (t.Dropped > 0 && si == 0) {
			rep.Incomplete = true
		}

		if topK > 0 && len(rep.Ranks) > 1 {
			mean := sumWall / int64(len(rep.Ranks))
			order := make([]int, len(rep.Ranks))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(i, j int) bool {
				a, b := rep.Ranks[order[i]], rep.Ranks[order[j]]
				if a.WallNS != b.WallNS {
					return a.WallNS > b.WallNS
				}
				return a.Rank < b.Rank
			})
			for _, oi := range order {
				a := rep.Ranks[oi]
				if len(rep.Stragglers) >= topK || a.WallNS <= mean {
					break
				}
				rep.Stragglers = append(rep.Stragglers, Straggler{
					Rank: a.Rank, WallNS: a.WallNS, AboveMeanNS: a.WallNS - mean,
				})
			}
		}

		cp, total := CriticalPath(st)
		rep.CriticalPath = cp
		rep.CriticalNS = total
		for _, h := range cp {
			switch PhaseOf(h.Name) {
			case PhaseCompute:
				rep.CritComputeNS += h.DurNS
			case PhaseComm:
				rep.CritCommNS += h.DurNS
			case PhaseWait:
				rep.CritWaitNS += h.DurNS
			}
		}

		pm.Steps = append(pm.Steps, rep)
	}
	if t.Dropped > 0 {
		pm.Warnings = append(pm.Warnings, fmt.Sprintf(
			"flight recorder dropped %d spans to ring wrap; the oldest retained steps are truncated and their attribution undercounts", t.Dropped))
	}
	if t.Unstepped > 0 {
		pm.Warnings = append(pm.Warnings, fmt.Sprintf(
			"%d spans carried no step attribution and were excluded from the merge", t.Unstepped))
	}
	return pm
}

// ComputeWeights returns the per-rank compute-time shares (summed over
// every complete step, normalized to mean 1.0) in t.Ranks order — the
// measured-cost vector the span-weighted rebalancer feeds into the
// partitioner. Wall time is the wrong signal here: under lockstep
// synchronization every rank's wall converges to the straggler's, so
// walls say "all equal" while compute time localizes the actual load.
// Returns nil when the timeline has no complete attributed step.
//
//grist:bitwise
func (p *Postmortem) ComputeWeights(t *Timeline) []float64 {
	if len(t.Ranks) == 0 {
		return nil
	}
	idx := make(map[int32]int)
	for i, r := range t.Ranks {
		idx[r] = i
	}
	sums := make([]float64, len(t.Ranks))
	steps := 0
	for _, rep := range p.Steps {
		if rep.Incomplete {
			continue
		}
		steps++
		for _, a := range rep.Ranks {
			sums[idx[a.Rank]] += float64(a.ComputeNS)
		}
	}
	if steps == 0 {
		return nil
	}
	var total float64
	for _, s := range sums {
		total += s
	}
	if total <= 0 {
		return nil
	}
	mean := total / float64(len(sums))
	for i := range sums {
		sums[i] /= mean
	}
	return sums
}

// EncodeJSON writes the postmortem as indented JSON. Field order is
// struct order and every slice is deterministically ordered, so
// identical timelines encode byte-identically — the property the
// determinism experiment asserts.
func (p *Postmortem) EncodeJSON(w io.Writer) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
