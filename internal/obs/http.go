package obs

import (
	"net/http"
	"strconv"

	"gristgo/internal/telemetry"
)

// Source supplies the per-rank rings and summed drop count for a debug
// snapshot — typically a closure over Rings(recs...) for a distributed
// run, or over a single recorder for a serial one.
type Source func() ([][]telemetry.Event, uint64)

// StepHandler serves live step postmortems:
//
//	GET /debug/step               full postmortem JSON over retained steps
//	GET /debug/step?step=N        only step N
//	GET /debug/step?topk=K        top-K stragglers per step (default 3)
//	GET /debug/step?format=trace  merged multi-rank Chrome trace with
//	                              critical-path marks (load in Perfetto)
func StepHandler(src Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rings, dropped := src()
		t := Merge(rings, dropped)
		topk := 3
		if s := r.URL.Query().Get("topk"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				topk = v
			}
		}
		pm := Build(t, topk)
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "trace" {
			_ = t.WriteChromeTrace(w, pm)
			return
		}
		if s := r.URL.Query().Get("step"); s != "" {
			if v, err := strconv.ParseInt(s, 10, 64); err == nil {
				pm.Steps = filterStep(pm.Steps, v)
			}
		}
		_ = pm.EncodeJSON(w)
	})
}

// filterStep keeps only the reports for one step number.
func filterStep(steps []StepReport, step int64) []StepReport {
	var kept []StepReport
	for _, sr := range steps {
		if sr.Step == step {
			kept = append(kept, sr)
		}
	}
	return kept
}
