package obs

// Critical-path reconstruction over one step's merged timeline.
//
// The dependency model mirrors the dynamics step's actual structure:
//
//   - Intra-rank: a rank executes its leaf spans sequentially, so each
//     leaf depends on the previous leaf of the same rank (ring order is
//     completion order, which for sequential leaves is chronological).
//     Containers (dyn_step, halo_start, ...) are excluded — their time
//     is their leaves' time.
//
//   - Cross-rank: the k-th halo_wait of a rank cannot complete before
//     the k-th halo_pack of its peers has completed — the wait is, by
//     construction, the receiver blocking until senders have produced
//     and posted their halos. The merged ring carries no neighbor
//     topology, so the edge set is conservatively all-peers; for the
//     lat-band decomposition every rank really does exchange with its
//     neighbors each round, and the longest-path selection picks the
//     binding sender anyway.
//
// Path length is the sum of *work* along the chain — and crucially,
// wait spans contribute zero weight. A halo_wait is idle time whose
// duration is an effect of its dependencies, not a cause: under
// lockstep synchronization every rank's wall equalizes because the
// peers absorb a straggler's excess as wait, so a path metric that
// counted wait duration as work would rate the waiter's chain exactly
// as long as the straggler's and never localize the bottleneck. With
// waits weightless, the longest chain of actual work respecting the
// dependency edges is the straggler's compute chain — the spans that,
// if sped up, would actually speed up the step. Everything off the
// path had slack.

// PathSpan is one hop of a step's critical path, most-upstream first.
// (Rank, Name, Index) identifies the span in the merged timeline; Index
// is the occurrence number within the rank's step (see Span.Index).
// DurNS is the measured duration — for a halo_wait hop this is the
// observed idle time, which the path traverses but does not count as
// work (see the package comment on path length).
type PathSpan struct {
	Rank  int32  `json:"rank"`
	Name  string `json:"name"`
	Index int    `json:"index"`
	DurNS int64  `json:"dur_ns"`
}

// CriticalPath computes the deterministic longest work chain through
// one step and its total work (nanoseconds of non-wait span time on the
// path). Ties are broken toward the earliest (rank, ring-position)
// span, so replays over the same timeline return identical paths.
//
//grist:bitwise
func CriticalPath(st *StepTimeline) ([]PathSpan, int64) {
	type node struct {
		rank int // index into st.Ranks
		span Span
		prev int // same-rank predecessor node id, -1 for the first leaf
		wait int // k for the k-th halo_wait of this rank, else -1
	}
	var nodes []node
	packs := make([][]int, len(st.Ranks)) // packs[r][k] = node id of rank r's k-th halo_pack
	for ri, rs := range st.Ranks {
		last := -1
		nwait := 0
		for _, sp := range rs.Spans {
			if PhaseOf(sp.Name) == PhaseContainer {
				continue
			}
			n := node{rank: ri, span: sp, prev: last, wait: -1}
			if sp.Name == "halo_wait" {
				n.wait = nwait
				nwait++
			}
			if sp.Name == "halo_pack" {
				packs[ri] = append(packs[ri], len(nodes))
			}
			nodes = append(nodes, n)
			last = len(nodes) - 1
		}
	}
	if len(nodes) == 0 {
		return nil, 0
	}

	// Memoized longest-path DP. The graph is acyclic: prev edges point
	// backward within a rank, and pack nodes have only prev edges, so a
	// wait -> pack -> prev-chain recursion always terminates.
	dist := make([]int64, len(nodes))
	pred := make([]int, len(nodes))
	done := make([]bool, len(nodes))
	var longest func(i int) int64
	longest = func(i int) int64 {
		if done[i] {
			return dist[i]
		}
		n := &nodes[i]
		best, bp := int64(0), -1
		relax := func(j int) {
			// Strictly-greater keeps the first candidate on ties: the
			// same-rank predecessor, then peers in rank order.
			if d := longest(j); d > best {
				best, bp = d, j
			}
		}
		if n.prev >= 0 {
			relax(n.prev)
		}
		if n.wait >= 0 {
			for ri := range packs {
				if ri == n.rank || n.wait >= len(packs[ri]) {
					continue
				}
				relax(packs[ri][n.wait])
			}
		}
		work := n.span.Dur
		if n.wait >= 0 {
			work = 0 // waiting is not work; see the file comment
		}
		dist[i] = best + work
		pred[i] = bp
		done[i] = true
		return dist[i]
	}

	end, endDist := 0, int64(-1)
	for i := range nodes {
		// Node ids follow (rank, ring-position) order, so strictly-greater
		// keeps the earliest endpoint on ties.
		if d := longest(i); d > endDist {
			end, endDist = i, d
		}
	}

	var rev []PathSpan
	for i := end; i >= 0; i = pred[i] {
		sp := nodes[i].span
		rev = append(rev, PathSpan{Rank: sp.Rank, Name: sp.Name, Index: sp.Index, DurNS: sp.Dur})
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev, endDist
}
