// Package obs is the cross-rank trace aggregation layer: it merges the
// per-rank flight-recorder rings of a distributed run into one global
// per-step timeline, reconstructs the step's dependency structure from
// the halo pack/wait span pairs, and derives the artifacts a performance
// postmortem needs — the critical path through the step, per-rank
// compute/comm/wait attribution, straggler rankings, and a merged
// multi-rank Chrome trace.
//
// The split of labor with internal/telemetry is deliberate: the
// Recorder is the allocation-free hot-path sink (one ring per process,
// spans stamped with rank and step), while obs is the cold-path
// analysis that runs after (or beside) the step loop. Nothing here is
// called from a hot path, and nothing here feeds state back into the
// model — but the analysis itself is bitwise-deterministic: two replays
// over the same rings produce byte-identical postmortems, because the
// rebalance planner consumes the attributed costs and every rank must
// agree on the plan (see //grist:bitwise on Merge, CriticalPath, Build).
//
// Alignment model: spans from different rings come from different
// recorder epochs, so raw Start values are not comparable across rings.
// The merge aligns globally by *step number* (the SPMD loop index every
// rank stamps via Recorder.BeginAt) and normalizes Start per ring to
// the ring's first retained span, which is enough for human-readable
// merged traces; the critical path uses only durations and the
// pack/wait ordering, never cross-ring timestamps.
package obs

import (
	"sort"

	"gristgo/internal/telemetry"
)

// Phase classifies a span name into the postmortem's attribution
// buckets: compute, communication (pack/serialize work), wait (blocked
// on a peer's progress), or container (an enclosing span whose time is
// already covered by its leaves).
type Phase uint8

const (
	PhaseCompute Phase = iota
	PhaseComm
	PhaseWait
	PhaseContainer
)

// String names the phase for logs and JSON-adjacent output.
func (p Phase) String() string {
	switch p {
	case PhaseCompute:
		return "compute"
	case PhaseComm:
		return "comm"
	case PhaseWait:
		return "wait"
	case PhaseContainer:
		return "container"
	}
	return "unknown"
}

// PhaseOf maps the span taxonomy of the dynamics step to phases:
// halo_wait is pure wait (the receiver blocked on a peer), pack/unpack
// are communication work, the step/section wrappers are containers, and
// everything else — interior, boundary, implicit_vertical, kernels we
// have not met yet — counts as compute. Unknown names default to
// compute rather than container so a new leaf kernel is attributed
// (possibly coarsely) instead of silently dropped.
func PhaseOf(name string) Phase {
	switch name {
	case "halo_wait":
		return PhaseWait
	case "halo_pack", "halo_unpack":
		return PhaseComm
	case "dyn_step", "physics_step", "halo_start", "halo_finish":
		return PhaseContainer
	}
	return PhaseCompute
}

// Span is one completed span in the merged timeline. Start is
// nanoseconds since the source ring's first retained span (per-ring
// normalization; see the package comment for why cross-ring timestamps
// are never compared). Index is the k-th occurrence (0-based) of Name
// within this (rank, step) group in ring order — the occurrence number
// is what pairs a halo_wait with the matching halo_pack round.
type Span struct {
	Name  string
	Ring  int // index of the source ring passed to Merge
	Rank  int32
	Step  int64
	Start int64
	Dur   int64
	Index int
}

// RankStep is one rank's spans for one step, in ring (completion)
// order: a container's children precede it, and sibling leaves are
// chronological because a rank executes its step sequentially.
type RankStep struct {
	Rank  int32
	Spans []Span
}

// StepTimeline is one model step across all ranks, ranks ascending.
type StepTimeline struct {
	Step  int64
	Ranks []RankStep
}

// Timeline is the merged view over every ring: steps ascending, each
// holding per-rank span groups.
type Timeline struct {
	Steps []StepTimeline

	// Ranks is the sorted set of ranks seen anywhere in the timeline.
	Ranks []int32

	// Dropped sums the ring-wrap drop counts reported to Merge. Nonzero
	// means the oldest retained steps are partial: Build flags them
	// Incomplete and attaches a warning instead of reporting confident
	// attribution over truncated data.
	Dropped uint64

	// Unstepped counts events with step <= 0 — spans recorded outside
	// the stamped step loop (serial warmup, the serve poller) that carry
	// no step attribution and are excluded from the merge.
	Unstepped int
}

// Merge folds per-rank rings into the global per-step timeline. The
// result is a pure function of (rings, dropped): grouping uses
// collect-and-sort, never map order, so every rank replaying the same
// rings reconstructs the identical timeline.
//
//grist:bitwise
func Merge(rings [][]telemetry.Event, dropped uint64) *Timeline {
	type key struct {
		step int64
		rank int32
	}
	groups := make(map[key][]Span)
	var keys []key
	rankSeen := make(map[int32]bool)
	var ranks []int32
	unstepped := 0
	for ri, ring := range rings {
		// Normalize to the ring's own epoch: the earliest retained start.
		var off int64
		first := true
		for _, ev := range ring {
			if ev.Step > 0 && (first || ev.Start < off) {
				off, first = ev.Start, false
			}
		}
		for _, ev := range ring {
			if ev.Step <= 0 {
				unstepped++
				continue
			}
			k := key{ev.Step, ev.Rank}
			if _, ok := groups[k]; !ok {
				keys = append(keys, k)
			}
			groups[k] = append(groups[k], Span{
				Name:  ev.Name,
				Ring:  ri,
				Rank:  ev.Rank,
				Step:  ev.Step,
				Start: ev.Start - off,
				Dur:   ev.Dur,
			})
			if !rankSeen[ev.Rank] {
				rankSeen[ev.Rank] = true
				ranks = append(ranks, ev.Rank)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].step != keys[j].step {
			return keys[i].step < keys[j].step
		}
		return keys[i].rank < keys[j].rank
	})
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })

	t := &Timeline{Ranks: ranks, Dropped: dropped, Unstepped: unstepped}
	for _, k := range keys {
		spans := groups[k]
		counts := make(map[string]int)
		for i := range spans {
			spans[i].Index = counts[spans[i].Name]
			counts[spans[i].Name]++
		}
		n := len(t.Steps)
		if n == 0 || t.Steps[n-1].Step != k.step {
			t.Steps = append(t.Steps, StepTimeline{Step: k.step})
			n++
		}
		st := &t.Steps[n-1]
		st.Ranks = append(st.Ranks, RankStep{Rank: k.rank, Spans: spans})
	}
	return t
}

// Rings snapshots a set of per-rank recorders into the ring slices and
// summed drop count Merge consumes. Recorders keep running; the
// snapshot is a consistent copy per ring (not across rings — alignment
// is by step, as everywhere in this package).
func Rings(recs ...*telemetry.Recorder) ([][]telemetry.Event, uint64) {
	rings := make([][]telemetry.Event, len(recs))
	var dropped uint64
	for i, r := range recs {
		rings[i] = r.Snapshot()
		dropped += r.Dropped()
	}
	return rings, dropped
}
