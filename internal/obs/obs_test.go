package obs

import (
	"bytes"
	"testing"

	"gristgo/internal/telemetry"
)

// synthRings builds three single-rank rings (ranks 0..2) over two steps
// with hand-placed timestamps. Rank 1 is the straggler: its interior
// kernel runs 3x the peers', so its peers' halo_wait absorbs the excess
// and the critical path must route through rank 1's compute, exiting
// over a pack->wait edge into whichever rank ends the step.
//
// Per rank and step the ring holds, in end (ring) order:
//
//	halo_pack(5us) interior(C) halo_wait(W) halo_unpack(3us)
//	boundary(10us) dyn_step(container)
//
// with C=30us for ranks 0,2 and 90us for rank 1; W sized so every
// rank's dyn_step wall lands at 120us (lockstep: walls equalize, only
// the compute split localizes the straggler).
func synthRings() [][]telemetry.Event {
	mk := func(rank int32, compute, wait int64) []telemetry.Event {
		var ring []telemetry.Event
		base := int64(1000) // ring epoch offset, normalized away by Merge
		for step := int64(1); step <= 2; step++ {
			t := base + (step-1)*200_000
			at := func(name string, dur int64) {
				ring = append(ring, telemetry.Event{Name: name, Rank: rank, Step: step, Start: t, Dur: dur})
				t += dur
			}
			start := t
			at("halo_pack", 5_000)
			at("interior", compute)
			at("halo_wait", wait)
			at("halo_unpack", 3_000)
			at("boundary", 10_000)
			ring = append(ring, telemetry.Event{Name: "dyn_step", Rank: rank, Step: step, Start: start, Dur: t - start})
		}
		return ring
	}
	return [][]telemetry.Event{
		mk(0, 30_000, 72_000),
		mk(1, 90_000, 12_000),
		mk(2, 30_000, 72_000),
	}
}

func TestMergeShape(t *testing.T) {
	tl := Merge(synthRings(), 0)
	if got, want := len(tl.Steps), 2; got != want {
		t.Fatalf("steps = %d, want %d", got, want)
	}
	if got, want := len(tl.Ranks), 3; got != want {
		t.Fatalf("ranks = %d, want %d", got, want)
	}
	for _, st := range tl.Steps {
		if len(st.Ranks) != 3 {
			t.Fatalf("step %d has %d rank groups, want 3", st.Step, len(st.Ranks))
		}
		for _, rs := range st.Ranks {
			if len(rs.Spans) != 6 {
				t.Fatalf("step %d rank %d has %d spans, want 6", st.Step, rs.Rank, len(rs.Spans))
			}
			// Per-ring normalization: the first retained span starts at 0.
		}
		if st.Ranks[0].Spans[0].Start != (st.Step-1)*200_000 {
			t.Fatalf("step %d not normalized: first span starts at %d", st.Step, st.Ranks[0].Spans[0].Start)
		}
	}
}

func TestCriticalPathRoutesThroughStraggler(t *testing.T) {
	tl := Merge(synthRings(), 0)
	cp, total := CriticalPath(&tl.Steps[0])
	if len(cp) == 0 {
		t.Fatal("empty critical path")
	}
	// Waits are weightless on the path, so the longest work chain is the
	// straggler's: rank 1's pack(5)+interior(90)+unpack(3)+boundary(10)
	// = 108us of work, traversing its (short) wait. The peers' chains
	// carry only 48us of work — their 72us waits are slack, not work.
	if total != 108_000 {
		t.Errorf("critical total = %d, want 108000", total)
	}
	want := []PathSpan{
		{Rank: 1, Name: "halo_pack", Index: 0, DurNS: 5_000},
		{Rank: 1, Name: "interior", Index: 0, DurNS: 90_000},
		{Rank: 1, Name: "halo_wait", Index: 0, DurNS: 12_000},
		{Rank: 1, Name: "halo_unpack", Index: 0, DurNS: 3_000},
		{Rank: 1, Name: "boundary", Index: 0, DurNS: 10_000},
	}
	if len(cp) != len(want) {
		t.Fatalf("path = %+v, want %+v", cp, want)
	}
	for i := range want {
		if cp[i] != want[i] {
			t.Errorf("hop %d = %+v, want %+v", i, cp[i], want[i])
		}
	}
}

func TestPostmortemAttribution(t *testing.T) {
	tl := Merge(synthRings(), 0)
	pm := Build(tl, 2)
	if pm.Ranks != 3 || len(pm.Steps) != 2 {
		t.Fatalf("pm shape: ranks=%d steps=%d", pm.Ranks, len(pm.Steps))
	}
	rep := pm.Steps[0]
	// Lockstep walls: every rank's dyn_step is 120us, so imbalance is 1.
	for _, a := range rep.Ranks {
		if a.WallNS != 120_000 {
			t.Errorf("rank %d wall = %d, want 120000", a.Rank, a.WallNS)
		}
	}
	if rep.Imbalance != 1.0 {
		t.Errorf("imbalance = %v, want 1.0 (walls equalize under lockstep)", rep.Imbalance)
	}
	// ...but compute attribution localizes the straggler.
	if rep.Ranks[1].ComputeNS != 100_000 { // 90us interior + 10us boundary
		t.Errorf("straggler compute = %d, want 100000", rep.Ranks[1].ComputeNS)
	}
	if rep.Ranks[0].ComputeNS != 40_000 || rep.Ranks[2].ComputeNS != 40_000 {
		t.Errorf("peer compute = %d/%d, want 40000", rep.Ranks[0].ComputeNS, rep.Ranks[2].ComputeNS)
	}
	if rep.Ranks[0].WaitNS != 72_000 || rep.Ranks[1].WaitNS != 12_000 {
		t.Errorf("wait split = %d/%d, want 72000/12000", rep.Ranks[0].WaitNS, rep.Ranks[1].WaitNS)
	}
	// Weights: compute shares normalized to mean 1 -> straggler > peers.
	ws := pm.ComputeWeights(tl)
	if len(ws) != 3 {
		t.Fatalf("weights = %v", ws)
	}
	if !(ws[1] > ws[0] && ws[1] > ws[2]) {
		t.Errorf("straggler weight not dominant: %v", ws)
	}
}

func TestPostmortemDeterministic(t *testing.T) {
	rings := synthRings()
	var a, b bytes.Buffer
	if err := Build(Merge(rings, 0), 3).EncodeJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := Build(Merge(rings, 0), 3).EncodeJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("postmortem replay not byte-identical:\n--- a ---\n%s\n--- b ---\n%s", a.String(), b.String())
	}
	if a.Len() == 0 {
		t.Error("empty postmortem")
	}
}

func TestDroppedSpansFlagged(t *testing.T) {
	tl := Merge(synthRings(), 7)
	pm := Build(tl, 3)
	if pm.Dropped != 7 {
		t.Errorf("dropped = %d, want 7", pm.Dropped)
	}
	if len(pm.Warnings) == 0 {
		t.Error("no warning for dropped spans")
	}
	if !pm.Steps[0].Incomplete {
		t.Error("first retained step not flagged incomplete under drops")
	}
	if pm.Steps[1].Incomplete {
		t.Error("later step wrongly flagged incomplete")
	}
}

// goldenMergedTrace pins the merged multi-rank Chrome trace for the
// synthetic two-step fixture, first step only (keeps the golden
// readable). pid = ring, tid = rank, crit marks the critical path.
const goldenMergedTrace = `{"displayTimeUnit":"ms","traceEvents":[
{"name":"dyn_step","ph":"X","pid":0,"tid":0,"ts":0.000,"dur":120.000,"args":{"step":1}},
{"name":"halo_pack","ph":"X","pid":0,"tid":0,"ts":0.000,"dur":5.000,"args":{"step":1}},
{"name":"interior","ph":"X","pid":0,"tid":0,"ts":5.000,"dur":30.000,"args":{"step":1}},
{"name":"halo_wait","ph":"X","pid":0,"tid":0,"ts":35.000,"dur":72.000,"args":{"step":1}},
{"name":"halo_unpack","ph":"X","pid":0,"tid":0,"ts":107.000,"dur":3.000,"args":{"step":1}},
{"name":"boundary","ph":"X","pid":0,"tid":0,"ts":110.000,"dur":10.000,"args":{"step":1}},
{"name":"dyn_step","ph":"X","pid":1,"tid":1,"ts":0.000,"dur":120.000,"args":{"step":1}},
{"name":"halo_pack","ph":"X","pid":1,"tid":1,"ts":0.000,"dur":5.000,"args":{"step":1,"crit":1}},
{"name":"interior","ph":"X","pid":1,"tid":1,"ts":5.000,"dur":90.000,"args":{"step":1,"crit":1}},
{"name":"halo_wait","ph":"X","pid":1,"tid":1,"ts":95.000,"dur":12.000,"args":{"step":1,"crit":1}},
{"name":"halo_unpack","ph":"X","pid":1,"tid":1,"ts":107.000,"dur":3.000,"args":{"step":1,"crit":1}},
{"name":"boundary","ph":"X","pid":1,"tid":1,"ts":110.000,"dur":10.000,"args":{"step":1,"crit":1}},
{"name":"dyn_step","ph":"X","pid":2,"tid":2,"ts":0.000,"dur":120.000,"args":{"step":1}},
{"name":"halo_pack","ph":"X","pid":2,"tid":2,"ts":0.000,"dur":5.000,"args":{"step":1}},
{"name":"interior","ph":"X","pid":2,"tid":2,"ts":5.000,"dur":30.000,"args":{"step":1}},
{"name":"halo_wait","ph":"X","pid":2,"tid":2,"ts":35.000,"dur":72.000,"args":{"step":1}},
{"name":"halo_unpack","ph":"X","pid":2,"tid":2,"ts":107.000,"dur":3.000,"args":{"step":1}},
{"name":"boundary","ph":"X","pid":2,"tid":2,"ts":110.000,"dur":10.000,"args":{"step":1}}
]}
`

func TestMergedChromeTraceGolden(t *testing.T) {
	rings := synthRings()
	// Keep step 1 only so the golden stays reviewable.
	for i := range rings {
		var kept []telemetry.Event
		for _, ev := range rings[i] {
			if ev.Step == 1 {
				kept = append(kept, ev)
			}
		}
		rings[i] = kept
	}
	tl := Merge(rings, 0)
	pm := Build(tl, 3)
	var b bytes.Buffer
	if err := tl.WriteChromeTrace(&b, pm); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != goldenMergedTrace {
		t.Errorf("merged trace drifted.\n--- got ---\n%s--- want ---\n%s", got, goldenMergedTrace)
	}
	// And the trace itself is replay-stable.
	var b2 bytes.Buffer
	if err := Merge(rings, 0).WriteChromeTrace(&b2, Build(Merge(rings, 0), 3)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), b2.Bytes()) {
		t.Error("merged trace replay not byte-identical")
	}
}

func TestRingsHelper(t *testing.T) {
	r0 := telemetry.NewRecorder(16)
	r1 := telemetry.NewRecorder(16)
	r0.BeginAt("interior", 0, 1).End()
	r1.BeginAt("interior", 1, 1).End()
	rings, dropped := Rings(r0, r1)
	if len(rings) != 2 || dropped != 0 {
		t.Fatalf("rings=%d dropped=%d", len(rings), dropped)
	}
	if len(rings[0]) != 1 || rings[0][0].Name != "interior" {
		t.Fatalf("ring 0 = %+v", rings[0])
	}
	// Overflow a 16-slot ring to surface drops.
	for i := 0; i < 40; i++ {
		r0.BeginAt("interior", 0, int64(i+1)).End()
	}
	_, dropped = Rings(r0, r1)
	if dropped == 0 {
		t.Error("expected drops after ring wrap")
	}
}
