package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteChromeTrace writes the merged timeline as Chrome trace_event
// JSON (chrome://tracing, Perfetto). Mapping:
//
//   - pid is the source ring index (one process per ring), tid the
//     rank, so each rank gets its own row grouped under its process;
//   - ts/dur are microseconds since the ring's first retained span
//     (per-ring normalization — cross-ring horizontal alignment is
//     approximate; the step arg is the global alignment key);
//   - args.step is the model step; spans on their step's critical path
//     (per pm) additionally carry args.crit=1, so the binding chain can
//     be highlighted in the viewer. Pass a nil pm to skip marking.
//
// Output is deterministic for a given timeline: spans are ordered by
// (ring, rank, start, longer-first), the per-row order the viewers
// require for correct nesting.
func (t *Timeline) WriteChromeTrace(w io.Writer, pm *Postmortem) error {
	type critKey struct {
		step  int64
		rank  int32
		name  string
		index int
	}
	crit := make(map[critKey]bool)
	if pm != nil {
		for _, rep := range pm.Steps {
			for _, h := range rep.CriticalPath {
				crit[critKey{rep.Step, h.Rank, h.Name, h.Index}] = true
			}
		}
	}
	var evs []Span
	for _, st := range t.Steps {
		for _, rs := range st.Ranks {
			evs = append(evs, rs.Spans...)
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Ring != evs[j].Ring {
			return evs[i].Ring < evs[j].Ring
		}
		if evs[i].Rank != evs[j].Rank {
			return evs[i].Rank < evs[j].Rank
		}
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		return evs[i].Dur > evs[j].Dur
	})
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	for i, ev := range evs {
		sep := ""
		if i > 0 {
			sep = ","
		}
		mark := ""
		if crit[critKey{ev.Step, ev.Rank, ev.Name, ev.Index}] {
			mark = `,"crit":1`
		}
		if _, err := fmt.Fprintf(w,
			"%s\n{\"name\":%s,\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":{\"step\":%d%s}}",
			sep, strconv.Quote(ev.Name), ev.Ring, ev.Rank, micros(ev.Start), micros(ev.Dur), ev.Step, mark); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// micros renders nanoseconds as decimal microseconds with nanosecond
// resolution preserved (integer math; no float wobble in goldens).
func micros(ns int64) string {
	sign := ""
	if ns < 0 {
		sign = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%03d", sign, ns/1000, ns%1000)
}
