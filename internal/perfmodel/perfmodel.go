// Package perfmodel predicts the simulation speed (SDPD/SYPD) of the
// model on the next-generation Sunway supercomputer for any grid level,
// process count and scheme configuration — the machinery behind the
// paper's weak-scaling (Fig. 10) and strong-scaling (Fig. 11) studies,
// which cannot be run directly without the 34-million-core machine
// (repro substitution; see DESIGN.md).
//
// The model is mechanistic where the paper names a mechanism:
//   - per-element kernel costs and job-server launch overheads follow
//     the sunway/swgomp cost model;
//   - halo sizes follow the partitioner's surface/volume scaling, and
//     message costs follow the netsim fat tree, with the 16:3
//     oversubscription charged on cross-supernode traffic (the Fig. 10
//     knee at 32,768 CGs);
//   - an LDCache-residency term reproduces the cache-hit-ratio effects
//     the paper cites for the strong-scaling shapes (§4.8);
//   - the ML suite runs at 74-84% of peak FLOPS while RRTMG-style
//     radiation runs near 6% (§4.7), which is why MIX-ML outruns
//     MIX-PHY in Fig. 10.
//
// Free constants are calibrated once against the paper's two anchors:
// 491 SDPD (G11S) and 181 SDPD (G12) at 524,288 processes (§4.8).
package perfmodel

import (
	"math"

	"gristgo/internal/mesh"
	"gristgo/internal/netsim"
	"gristgo/internal/precision"
	"gristgo/internal/sunway"
)

// Scheme is a Table 3 configuration: dycore precision x physics suite.
type Scheme struct {
	Mode precision.Mode
	ML   bool
}

// Label renders the Table 3 name (DP-PHY, DP-ML, MIX-PHY, MIX-ML).
func (s Scheme) Label() string {
	l := s.Mode.String()
	if s.ML {
		return l + "-ML"
	}
	return l + "-PHY"
}

// AllSchemes lists the Table 3 configurations.
func AllSchemes() []Scheme {
	return []Scheme{
		{precision.DP, false},
		{precision.DP, true},
		{precision.Mixed, false},
		{precision.Mixed, true},
	}
}

// RunConfig describes one modeled run.
type RunConfig struct {
	Level  int
	Layers int
	NCG    int // processes; one process per core group (§4.1)
	Scheme Scheme
	Steps  mesh.TimestepConfig // zero value: the G12 step set (weak scaling)
}

// Result is the modeled performance of a run.
type Result struct {
	SDPD      float64
	SYPD      float64
	DaySec    float64 // wall seconds per simulated day
	CompSec   float64
	CommSec   float64
	CommShare float64
	CacheHit  float64 // modeled LDCache hit ratio of the dyn kernels
}

// WithMeasuredCommShare replaces the modeled communication fraction with
// a measured one (e.g. core.MeasuredCommShare from a timed distributed
// run): the modeled compute time is kept and the day length rescaled so
// that communication takes the given share of it. share must be in
// [0, 1); values outside are clamped to the modeled result.
func (r Result) WithMeasuredCommShare(share float64) Result {
	if share < 0 || share >= 1 || r.CompSec <= 0 {
		return r
	}
	day := r.CompSec / (1 - share)
	r.DaySec = day
	r.CommSec = day * share
	r.CommShare = share
	r.SDPD = 86400 / day
	r.SYPD = 86400 / day / 365
	return r
}

// Machine bundles the interconnect and calibrated cost constants.
type Machine struct {
	Net *netsim.Network

	// Kernel structure: parallel regions launched per step of each
	// component (every region pays the job-server spawn cost).
	KernelsPerDyn  int
	KernelsPerTrac int
	KernelsPerPhy  int
	SpawnSec       float64 // per parallel region (launch + join)

	// Per-element costs at perfect cache, FP64 (seconds per cell-level
	// per kernel pass).
	DynElemDP  float64
	TracElemDP float64
	PhyConvCol float64 // conventional non-radiation physics, per cell-level

	MixSpeedup float64 // FP32 work-array speedup of dyn/tracer kernels
	MissWeight float64 // cost multiplier weight of LDCache misses

	// Communication: per-message software latency grows with machine
	// size (runtime/progress overheads at hundreds of thousands of
	// ranks).
	MsgLatBase  float64
	MsgLatSlope float64 // per log2(nodes)
	ExchPerStep int     // halo exchanges per dynamics step (RK3 + implicit)

	MLEff   float64 // achieved peak fraction of the ML suite (§4.7: 74-84%)
	ConvEff float64 // achieved peak fraction of RRTMG-style code (~6%)
}

// NewMachine returns the calibrated machine model.
func NewMachine() *Machine {
	return &Machine{
		Net: netsim.New(),

		KernelsPerDyn:  45,
		KernelsPerTrac: 8,
		KernelsPerPhy:  6,
		SpawnSec:       25e-6,

		DynElemDP:  16.5e-9,
		TracElemDP: 5.0e-9,
		PhyConvCol: 60e-9,

		MixSpeedup: 1.55,
		MissWeight: 14,

		MsgLatBase:  50e-6,
		MsgLatSlope: 12e-6,
		ExchPerStep: 4,

		MLEff:   0.79,
		ConvEff: 0.06,
	}
}

// Working-set tiers for the LDCache residency model: the dynamical
// core's own arrays, and the full model working set.
const (
	dynArrays = 20
	allArrays = 60
)

// MLEffFromThroughput converts a measured tendency-CNN inference
// throughput (columns per second on hardware with the given peak FLOP
// rate) into the achieved-peak fraction the performance model uses as
// MLEff — closing the loop from the infer engine's DrainStats timings
// (columns / elapsed) to the §4.7 efficiency constant.
func MLEffFromThroughput(colsPerSec float64, layers int, hwPeakFlops float64) float64 {
	if colsPerSec <= 0 || hwPeakFlops <= 0 {
		return 0
	}
	return colsPerSec * CNNFlopsPerColumn(layers) / hwPeakFlops
}

// SetMLEfficiency overrides the ML-suite achieved-peak fraction with a
// measured value, clamped to (0, 1]. Values outside the paper's 74-84%
// band are accepted — the point of measurement is to replace the
// constant — but non-positive or >1 fractions are rejected as
// measurement errors and leave the calibrated default in place.
func (m *Machine) SetMLEfficiency(eff float64) {
	if eff <= 0 || eff > 1 {
		return
	}
	m.MLEff = eff
}

// CNNFlopsPerColumn returns the tendency-CNN cost of one column at the
// paper-scale architecture (hidden width 100, kernel 3, 5 ResUnits).
// Exported so measured inference throughput can be converted into an
// achieved peak fraction (see MLEffFromThroughput).
func CNNFlopsPerColumn(layers int) float64 {
	const hidden, kernel = 100.0, 3.0
	perLevel := 2 * (5*hidden*kernel + 10*hidden*hidden*kernel + hidden*2)
	return float64(layers) * perLevel
}

// rrtmgFlopsPerColumn models an RRTMG-class radiation column: 16 bands
// of multi-stream transfer with g-point quadrature over the column.
func rrtmgFlopsPerColumn(layers int) float64 {
	return float64(layers) * 16 * 42000
}

// mlRadFlopsPerColumn: the paper states the ML radiation diagnostic
// needs about twice the FLOPs of RRTMG (§4.7).
func mlRadFlopsPerColumn(layers int) float64 {
	return 2 * rrtmgFlopsPerColumn(layers)
}

// peakFlops is one CG's peak FLOP rate.
const peakFlops = float64(sunway.CPEsPerCG) * 8 * sunway.ClockHz

// haloCells estimates the one-ring halo of a subdomain with the
// partitioner's surface/volume scaling.
func haloCells(cellsPerCG float64) float64 {
	return 3.5*math.Sqrt(cellsPerCG) + 10
}

// cacheHit models the LDCache hit ratio of the dyn kernels. Three
// effects (§4.8):
//   - residency of the dyn working set (tier 1) and of the full model
//     working set (tier 2) per CPE;
//   - a capacity bonus once the full per-CPE share is small enough that
//     several whole arrays sit in the LDCache across kernels ("the
//     LDCache demonstrates the potential to accommodate several
//     arrays");
//   - a penalty proportional to the subdomain boundary fraction, whose
//     irregular indirect accesses miss more as domains shrink ("the
//     drop of cache hit ratio as the number of processes increases").
func (m *Machine) cacheHit(cellsPerCG float64, layers int) float64 {
	perCPE := cellsPerCG * float64(layers) * 8 / float64(sunway.CPEsPerCG)
	ws1 := perCPE * dynArrays
	ws2 := perCPE * allArrays
	res := func(ws float64) float64 {
		if ws <= sunway.LDCacheBytes {
			return 1
		}
		return sunway.LDCacheBytes / ws
	}
	fit3 := 0.0
	if ws2 < sunway.LDCacheBytes/4 {
		fit3 = 1
	}
	bf := haloCells(cellsPerCG) / cellsPerCG
	if bf > 1 {
		bf = 1
	}
	hit := 0.945 + 0.015*res(ws1) + 0.012*res(ws2) + 0.015*fit3 - 0.080*bf
	if hit > 0.998 {
		hit = 0.998
	}
	if hit < 0.5 {
		hit = 0.5
	}
	return hit
}

// msgTime returns the cost of one halo message at the given machine
// load: scale-dependent software latency, oversubscribed cross-supernode
// bandwidth, and congestion on the fabric once traffic leaves the
// supernode.
func (m *Machine) msgTime(bytes float64, nodes int) float64 {
	cross := netsim.CrossFraction(nodes)
	lat := m.MsgLatBase + m.MsgLatSlope*math.Log2(float64(nodes))
	lat *= 1 + 0.5*cross // fabric congestion inflates the software path
	bw := m.Net.LinkBandwidth
	eff := bytes * (1 + cross*(netsim.Oversubscription-1)) / bw
	return lat + eff
}

// Predict evaluates the model for a run configuration.
func (m *Machine) Predict(rc RunConfig) Result {
	if rc.Steps == (mesh.TimestepConfig{}) {
		rc.Steps = mesh.TimestepConfig{Dyn: 4, Trac: 30, Phy: 60, Rad: 180}
	}
	census := mesh.Census(rc.Level)
	cellsPerCG := float64(census.Cells) / float64(rc.NCG)
	layers := rc.Layers
	elems := cellsPerCG * float64(layers)

	hit := m.cacheHit(cellsPerCG, layers)
	cacheFactor := 1 + m.MissWeight*(1-hit)

	// Load imbalance: grows slowly with process count (§4.7) and
	// sharply once subdomains are too small for the partitioner to
	// balance (tens of cells per CG). Stragglers delay both compute and
	// the halo exchanges that wait on them.
	imb := 1.02 + 1.6/math.Sqrt(cellsPerCG)
	if rc.NCG > 128 {
		imb += 0.012 * math.Log2(float64(rc.NCG)/128)
	}

	mixFactor := 1.0
	if rc.Scheme.Mode == precision.Mixed {
		mixFactor = 1 / m.MixSpeedup
	}

	// --- Per-step compute (kernel launches + element work). ---
	dynStep := float64(m.KernelsPerDyn) *
		(m.SpawnSec + elems*m.DynElemDP*mixFactor*cacheFactor) * imb
	tracStep := float64(m.KernelsPerTrac) *
		(m.SpawnSec + elems*6*m.TracElemDP*mixFactor*cacheFactor) * imb

	var phyStep, radStep float64
	if rc.Scheme.ML {
		phyStep = cellsPerCG*CNNFlopsPerColumn(layers)/(m.MLEff*peakFlops)*imb +
			2*m.SpawnSec
		radStep = cellsPerCG*mlRadFlopsPerColumn(layers)/(m.MLEff*peakFlops)*imb +
			m.SpawnSec
	} else {
		phyStep = float64(m.KernelsPerPhy) *
			(m.SpawnSec + elems*m.PhyConvCol*cacheFactor) * imb
		radStep = cellsPerCG*rrtmgFlopsPerColumn(layers)/(m.ConvEff*peakFlops)*imb +
			m.SpawnSec
	}

	// --- Communication. ---
	nodes := rc.NCG / netsim.CGsPerNode
	if nodes < 1 {
		nodes = 1
	}
	halo := haloCells(cellsPerCG)
	word := float64(rc.Scheme.Mode.WordBytes())
	peers := 6.0
	dynBytes := halo * float64(layers) * 5 * word / peers
	tracBytes := halo * float64(layers) * 7 * word / peers

	dynComm := float64(m.ExchPerStep) * peers * m.msgTime(dynBytes, nodes) * imb
	tracComm := peers * m.msgTime(tracBytes, nodes) * imb
	phyComm := peers * m.msgTime(dynBytes, nodes) * imb

	// --- Steps per simulated day. ---
	nDyn := 86400 / rc.Steps.Dyn
	nTrac := 86400 / rc.Steps.Trac
	nPhy := 86400 / rc.Steps.Phy
	nRad := 86400 / rc.Steps.Rad

	comp := nDyn*dynStep + nTrac*tracStep + nPhy*phyStep + nRad*radStep
	comm := nDyn*dynComm + nTrac*tracComm + nPhy*phyComm

	day := comp + comm
	return Result{
		SDPD:      86400 / day,
		SYPD:      86400 / day / 365,
		DaySec:    day,
		CompSec:   comp,
		CommSec:   comm,
		CommShare: comm / day,
		CacheHit:  hit,
	}
}

// WeakScalingPoint returns the grid level that keeps ~320 cells per CG
// at the given process count (Fig. 10's setup: quadruple the processes
// per grid level).
func WeakScalingPoint(ncg int) (level int) {
	level = 6
	for n := 128; n < ncg; n *= 4 {
		level++
	}
	return level
}

// ScalePoint is one point of a scaling curve.
type ScalePoint struct {
	NCG    int
	Level  int
	R      Result
	EffPct float64
}

// WeakScaling evaluates Fig. 10: process counts 128..524288 (x4) with
// the matching grid per point, all at the G12 timesteps, for the given
// scheme. Efficiency follows the paper's Eq. (1): SDPD(N)/SDPD(128).
func (m *Machine) WeakScaling(s Scheme) []ScalePoint {
	var out []ScalePoint
	var base float64
	for ncg := 128; ncg <= 524288; ncg *= 4 {
		lvl := WeakScalingPoint(ncg)
		r := m.Predict(RunConfig{Level: lvl, Layers: 30, NCG: ncg, Scheme: s})
		if base == 0 {
			base = r.SDPD
		}
		out = append(out, ScalePoint{ncg, lvl, r, 100 * r.SDPD / base})
	}
	return out
}

// StrongScaling evaluates Fig. 11 for a grid over process counts
// 32768..524288 (x2). Efficiency follows the paper's Eq. (2):
// (SDPD(N)/N) / (SDPD(32768)/32768).
func (m *Machine) StrongScaling(level, layers int, steps mesh.TimestepConfig, s Scheme) []ScalePoint {
	var out []ScalePoint
	var base float64
	const baseN = 32768
	for ncg := baseN; ncg <= 524288; ncg *= 2 {
		r := m.Predict(RunConfig{Level: level, Layers: layers, NCG: ncg, Scheme: s, Steps: steps})
		if ncg == baseN {
			base = r.SDPD / float64(baseN)
		}
		out = append(out, ScalePoint{ncg, level, r, 100 * (r.SDPD / float64(ncg)) / base})
	}
	return out
}

// G11SSteps returns the Table 2 strong-scaling timesteps of G11S.
func G11SSteps() mesh.TimestepConfig {
	return mesh.TimestepConfig{Dyn: 8, Trac: 60, Phy: 120, Rad: 360}
}

// G12Steps returns the Table 2 timesteps of G12 (shared by all weak-
// scaling points).
func G12Steps() mesh.TimestepConfig {
	return mesh.TimestepConfig{Dyn: 4, Trac: 30, Phy: 60, Rad: 180}
}

// FullMachineCGs is the largest power-of-two CG count below the full
// next-generation Sunway system (107,520 nodes x 6 CGs = 645,120; the
// paper uses 524,288 = 2^19).
const FullMachineCGs = 524288

// ProjectOneSYPD reports the uniform speedup of the software path —
// per-element kernel cost, job-server launches, and per-message software
// latency — at which the G12 MIX-ML configuration reaches one simulated
// year per day on the full machine (the paper's "touching the bar of one
// SYPD"). Faster arithmetic alone cannot get there: at 524,288 processes
// the step time is floored by launch and message overheads, so the
// projection scales all three together. Returns the required factor
// (>1 means faster than today).
func (m *Machine) ProjectOneSYPD() float64 {
	target := 365.0 // SDPD
	rc := RunConfig{Level: 12, Layers: 30, NCG: FullMachineCGs,
		Scheme: Scheme{Mode: precision.Mixed, ML: true}, Steps: G12Steps()}
	baseDyn, baseTrac := m.DynElemDP, m.TracElemDP
	baseSpawn, baseLat, baseSlope := m.SpawnSec, m.MsgLatBase, m.MsgLatSlope
	defer func() {
		m.DynElemDP, m.TracElemDP = baseDyn, baseTrac
		m.SpawnSec, m.MsgLatBase, m.MsgLatSlope = baseSpawn, baseLat, baseSlope
	}()
	lo, hi := 1e-3, 1e3
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		m.DynElemDP, m.TracElemDP = baseDyn/mid, baseTrac/mid
		m.SpawnSec, m.MsgLatBase, m.MsgLatSlope = baseSpawn/mid, baseLat/mid, baseSlope/mid
		if m.Predict(rc).SDPD < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
