package perfmodel

import "gristgo/internal/precision"

// Effort is one GSRM modeling effort of the paper's Fig. 2 landscape:
// resolution vs simulation speed on a leading supercomputer.
type Effort struct {
	Model        string
	Machine      string
	Year         int
	ResolutionKm float64
	SYPD         float64
	Note         string
}

// Fig2Literature returns the published efforts the paper plots in its
// Fig. 2 survey (values from the paper's §2 narrative).
func Fig2Literature() []Effort {
	return []Effort{
		{"E3SM dycore", "Summit", 2020, 3.0, 0.97, "dycore only"},
		{"E3SM dycore", "Summit", 2020, 1.0, 0.049, "dycore only"},
		{"SCREAM", "Frontier", 2023, 3.5, 1.26, "2023 Gordon Bell climate prize"},
		{"CAM coupled", "Sunway (new)", 2023, 5.0, 1.0, "5km atm + 3km ocean"},
		{"NICAM", "Fugaku", 2020, 3.5, 0.027, "512 nodes; 0.36 projected full"},
		{"NICAM", "Fugaku", 2020, 14.0, 0.089, "512 nodes"},
		{"ICON-Sapphire", "Levante", 2023, 1.25, 4.0 / 365, "4 SDPD, reduced physics"},
		{"ICON-A", "JUWELS Booster", 2022, 5.0, 0.58, "256 nodes, GPU"},
		{"COSMO (regional)", "Piz Daint", 2018, 1.0, 0.043, "near-global, 4888 GPUs"},
		{"IFS hydrostatic", "Summit", 2020, 1.4, 0.3, "CPU, full machine"},
		{"IFS nonhydrostatic", "Piz Daint", 2020, 1.4, 0.09, ""},
		{"GRIST (CPU)", "EarthLab", 2022, 5.0, 0.07, "30,720 CPU cores"},
	}
}

// Fig2Ours returns this work's points: the paper's headline 1.35 SYPD at
// 3 km (G11S) and 0.5 SYPD at 1 km (G12) — regenerated here from the
// calibrated machine model rather than hardcoded.
func Fig2Ours(m *Machine) []Effort {
	g11 := m.Predict(RunConfig{Level: 11, Layers: 30, NCG: 524288,
		Scheme: Scheme{Mode: precision.Mixed, ML: true}, Steps: G11SSteps()})
	g12 := m.Predict(RunConfig{Level: 12, Layers: 30, NCG: 524288,
		Scheme: Scheme{Mode: precision.Mixed, ML: true}, Steps: G12Steps()})
	return []Effort{
		{"AI-enhanced GRIST (this work)", "Sunway (new)", 2025, 3.0, g11.SYPD, "G11S MIX-ML, 524288 CGs"},
		{"AI-enhanced GRIST (this work)", "Sunway (new)", 2025, 1.0, g12.SYPD, "G12 MIX-ML, 524288 CGs"},
	}
}
