package perfmodel

import (
	"math"
	"testing"

	"gristgo/internal/mesh"
	"gristgo/internal/partition"
	"gristgo/internal/precision"
)

var mixML = Scheme{Mode: precision.Mixed, ML: true}
var mixPHY = Scheme{Mode: precision.Mixed, ML: false}

func TestSchemeLabels(t *testing.T) {
	want := []string{"DP-PHY", "DP-ML", "MIX-PHY", "MIX-ML"}
	for i, s := range AllSchemes() {
		if s.Label() != want[i] {
			t.Errorf("scheme %d = %q, want %q", i, s.Label(), want[i])
		}
	}
}

// TestPaperAnchors checks the two headline numbers of §4.8: 181 SDPD for
// G12 and 491 SDPD for G11S at 524,288 processes under MIX-ML, and the
// derived ~0.5 SYPD at 1 km.
func TestPaperAnchors(t *testing.T) {
	m := NewMachine()
	g12 := m.Predict(RunConfig{Level: 12, Layers: 30, NCG: 524288, Scheme: mixML, Steps: G12Steps()})
	if g12.SDPD < 160 || g12.SDPD > 200 {
		t.Errorf("G12 MIX-ML SDPD = %.1f, paper reports 181", g12.SDPD)
	}
	if g12.SYPD < 0.42 || g12.SYPD > 0.58 {
		t.Errorf("G12 SYPD = %.3f, paper reports ~0.5", g12.SYPD)
	}
	g11 := m.Predict(RunConfig{Level: 11, Layers: 30, NCG: 524288, Scheme: mixML, Steps: G11SSteps()})
	if g11.SDPD < 440 || g11.SDPD > 560 {
		t.Errorf("G11S MIX-ML SDPD = %.1f, paper reports 491", g11.SDPD)
	}
	// 3km headline: 1.35 SYPD.
	if g11.SYPD < 1.15 || g11.SYPD > 1.6 {
		t.Errorf("G11S SYPD = %.3f, paper reports 1.35", g11.SYPD)
	}
}

// TestWeakScalingCommShare checks the §4.7 claim: the communication
// share rises from 19% at 128 processes to 37% at 524,288.
func TestWeakScalingCommShare(t *testing.T) {
	m := NewMachine()
	pts := m.WeakScaling(mixPHY)
	first, last := pts[0].R.CommShare, pts[len(pts)-1].R.CommShare
	if first < 0.13 || first > 0.25 {
		t.Errorf("comm share at 128 CGs = %.1f%%, paper reports 19%%", 100*first)
	}
	if last < 0.31 || last > 0.47 {
		t.Errorf("comm share at 524288 CGs = %.1f%%, paper reports 37%%", 100*last)
	}
	// Monotone growth.
	for i := 1; i < len(pts); i++ {
		if pts[i].R.CommShare < pts[i-1].R.CommShare {
			t.Errorf("comm share not monotone at %d CGs", pts[i].NCG)
		}
	}
}

// TestWeakScalingMLOutperformsConventional checks §4.7: MIX-ML
// outperforms MIX-PHY at every weak-scaling point.
func TestWeakScalingMLOutperformsConventional(t *testing.T) {
	m := NewMachine()
	ml := m.WeakScaling(mixML)
	phy := m.WeakScaling(mixPHY)
	for i := range ml {
		if ml[i].R.SDPD <= phy[i].R.SDPD {
			t.Errorf("NCG=%d: MIX-ML %.1f <= MIX-PHY %.1f", ml[i].NCG, ml[i].R.SDPD, phy[i].R.SDPD)
		}
	}
}

// TestWeakScalingKnee checks the §4.7 observation of a scalability drop
// around 32,768 CGs from fat-tree oversubscription: efficiency loss per
// step grows once the run spans many supernodes.
func TestWeakScalingKnee(t *testing.T) {
	m := NewMachine()
	pts := m.WeakScaling(mixPHY)
	// Efficiency decreasing throughout.
	for i := 1; i < len(pts); i++ {
		if pts[i].EffPct >= pts[i-1].EffPct {
			t.Errorf("weak efficiency not decreasing at %d", pts[i].NCG)
		}
	}
	// The drop from 8192 to 32768 exceeds the drop from 128 to 512
	// (the oversubscription effect compounds at scale).
	dEarly := pts[0].EffPct - pts[1].EffPct
	var dKnee float64
	for i := 1; i < len(pts); i++ {
		if pts[i].NCG == 32768 {
			dKnee = pts[i-1].EffPct - pts[i].EffPct
		}
	}
	if dKnee <= dEarly {
		t.Errorf("no knee: drop at 32768 (%.1f) <= early drop (%.1f)", dKnee, dEarly)
	}
}

// TestMixedPrecisionSpeedsUpAllGrids checks Table 3's point: MIX beats
// DP for both physics suites.
func TestMixedPrecisionSpeedsUpAllGrids(t *testing.T) {
	m := NewMachine()
	for _, ml := range []bool{false, true} {
		dp := m.Predict(RunConfig{Level: 12, Layers: 30, NCG: 262144, Scheme: Scheme{precision.DP, ml}})
		mx := m.Predict(RunConfig{Level: 12, Layers: 30, NCG: 262144, Scheme: Scheme{precision.Mixed, ml}})
		if mx.SDPD <= dp.SDPD {
			t.Errorf("ml=%v: MIX %.1f <= DP %.1f", ml, mx.SDPD, dp.SDPD)
		}
	}
}

// TestG12StrongScalingDeclines checks §4.8: G12 strong-scaling
// efficiency decreases continuously.
func TestG12StrongScalingDeclines(t *testing.T) {
	m := NewMachine()
	for _, s := range AllSchemes() {
		pts := m.StrongScaling(12, 30, G12Steps(), s)
		for i := 1; i < len(pts); i++ {
			if pts[i].EffPct > pts[i-1].EffPct+1e-9 {
				t.Errorf("%s: efficiency rose at %d CGs", s.Label(), pts[i].NCG)
			}
		}
		// But speed itself still improves with more processes.
		for i := 1; i < len(pts); i++ {
			if pts[i].R.SDPD <= pts[i-1].R.SDPD {
				t.Errorf("%s: SDPD fell at %d CGs", s.Label(), pts[i].NCG)
			}
		}
	}
}

// TestG11SLargeScaleIncrement checks §4.8: G11S keeps gaining speed to
// the full machine, with a cache-capacity increment at 524,288 where the
// per-CPE working set drops far below the LDCache.
func TestG11SLargeScaleIncrement(t *testing.T) {
	m := NewMachine()
	pts := m.StrongScaling(11, 30, G11SSteps(), mixML)
	last := pts[len(pts)-1]
	prev := pts[len(pts)-2]
	if last.R.SDPD <= prev.R.SDPD {
		t.Errorf("no increment at 524288: %.1f <= %.1f", last.R.SDPD, prev.R.SDPD)
	}
	// The capacity bonus shows in the hit ratio at the last point.
	if last.R.CacheHit <= prev.R.CacheHit {
		t.Errorf("no cache-capacity recovery at 524288: %.4f <= %.4f", last.R.CacheHit, prev.R.CacheHit)
	}
}

func TestCacheHitModelShape(t *testing.T) {
	m := NewMachine()
	// Huge domains: working set far exceeds LDCache -> lower hit.
	big := m.cacheHit(1e6, 30)
	mid := m.cacheHit(5120, 30)
	if big >= mid {
		t.Errorf("hit(1M cells)=%.4f >= hit(5120)=%.4f", big, mid)
	}
	// Bounded.
	for _, cells := range []float64{10, 100, 1000, 1e5, 1e7} {
		h := m.cacheHit(cells, 30)
		if h < 0.5 || h > 0.998 {
			t.Errorf("hit(%g) = %v out of range", cells, h)
		}
	}
}

func TestWeakScalingPointMapping(t *testing.T) {
	cases := map[int]int{128: 6, 512: 7, 2048: 8, 8192: 9, 32768: 10, 131072: 11, 524288: 12}
	for ncg, lvl := range cases {
		if got := WeakScalingPoint(ncg); got != lvl {
			t.Errorf("WeakScalingPoint(%d) = %d, want %d", ncg, got, lvl)
		}
	}
}

func TestFig2Dataset(t *testing.T) {
	lit := Fig2Literature()
	if len(lit) < 10 {
		t.Errorf("only %d literature points", len(lit))
	}
	for _, e := range lit {
		if e.SYPD <= 0 || e.ResolutionKm <= 0 {
			t.Errorf("bad entry: %+v", e)
		}
	}
	ours := Fig2Ours(NewMachine())
	if len(ours) != 2 {
		t.Fatalf("ours = %d points", len(ours))
	}
	// This work must beat every published full-model point at <= 1.5 km.
	for _, o := range ours {
		if o.ResolutionKm <= 1.5 {
			for _, l := range lit {
				if l.ResolutionKm <= 1.5 && l.SYPD >= o.SYPD {
					t.Errorf("literature %s at %.1f km (%.3f SYPD) beats ours (%.3f)",
						l.Model, l.ResolutionKm, l.SYPD, o.SYPD)
				}
			}
		}
	}
}

func TestPredictConsistency(t *testing.T) {
	m := NewMachine()
	r := m.Predict(RunConfig{Level: 10, Layers: 30, NCG: 8192, Scheme: mixML})
	if math.Abs(r.CompSec+r.CommSec-r.DaySec) > 1e-9*r.DaySec {
		t.Error("comp + comm != day")
	}
	if math.Abs(r.SDPD*r.DaySec-86400) > 1e-6*86400 {
		t.Error("SDPD inconsistent with DaySec")
	}
	if math.Abs(r.SYPD*365-r.SDPD) > 1e-9*r.SDPD {
		t.Error("SYPD inconsistent with SDPD")
	}
}

// TestProjectOneSYPD: the paper reaches ~0.5 SYPD at 1 km, so one SYPD
// should require roughly doubling the end-to-end software-path speed.
func TestProjectOneSYPD(t *testing.T) {
	m := NewMachine()
	f := m.ProjectOneSYPD()
	if f < 1.5 || f > 4 {
		t.Errorf("required software-path speedup for 1 SYPD = %.2f, expected ~2x", f)
	}
	// The solver must not have mutated the calibrated machine.
	fresh := NewMachine()
	if m.DynElemDP != fresh.DynElemDP || m.SpawnSec != fresh.SpawnSec || m.MsgLatBase != fresh.MsgLatBase {
		t.Error("projection mutated machine constants")
	}
}

// TestHaloFormulaMatchesPartitioner cross-validates the perf model's
// surface/volume halo estimate against the real partitioner on a real
// mesh: the analytic haloCells() must be within a factor of two of the
// measured mean halo for practical subdomain sizes.
func TestHaloFormulaMatchesPartitioner(t *testing.T) {
	m := mesh.New(5) // 10242 cells
	for _, nparts := range []int{8, 32, 64} {
		d := partition.MustDecompose(m, nparts, 4)
		var mean float64
		for p := 0; p < nparts; p++ {
			mean += float64(len(d.Halo[p]))
		}
		mean /= float64(nparts)
		pred := haloCells(float64(m.NCells) / float64(nparts))
		if pred < mean/2 || pred > mean*2 {
			t.Errorf("nparts=%d: predicted halo %.0f vs measured %.0f", nparts, pred, mean)
		}
	}
}

// TestMLEffFromThroughput: the round trip through the FLOP model must
// recover the efficiency that produced a given throughput, and bad
// measurements must be rejected.
func TestMLEffFromThroughput(t *testing.T) {
	const layers = 30
	// A column rate that corresponds to exactly 79% of some peak.
	peak := 1e12
	cols := 0.79 * peak / CNNFlopsPerColumn(layers)
	if eff := MLEffFromThroughput(cols, layers, peak); math.Abs(eff-0.79) > 1e-12 {
		t.Errorf("recovered eff %g, want 0.79", eff)
	}
	if MLEffFromThroughput(0, layers, peak) != 0 || MLEffFromThroughput(cols, layers, 0) != 0 {
		t.Error("degenerate inputs not rejected")
	}
}

// TestSetMLEfficiency: measured values replace the calibrated constant;
// garbage is ignored; the prediction responds in the right direction.
func TestSetMLEfficiency(t *testing.T) {
	m := NewMachine()
	rc := RunConfig{Level: 9, Layers: 30, NCG: 2048,
		Scheme: Scheme{Mode: precision.Mixed, ML: true}}
	base := m.Predict(rc).SDPD
	m.SetMLEfficiency(-1)
	m.SetMLEfficiency(0)
	m.SetMLEfficiency(1.5)
	if m.MLEff != NewMachine().MLEff {
		t.Errorf("invalid efficiency accepted: %g", m.MLEff)
	}
	m.SetMLEfficiency(0.40)
	if m.MLEff != 0.40 {
		t.Errorf("MLEff = %g, want 0.40", m.MLEff)
	}
	if slower := m.Predict(rc).SDPD; slower >= base {
		t.Errorf("halving ML efficiency did not slow the model: %g vs %g", slower, base)
	}
}

// TestWithMeasuredCommShare: substituting a measured communication
// fraction keeps the modeled compute time, rescales the day length so
// communication takes exactly that share, and keeps SDPD/SYPD
// consistent with it.
func TestWithMeasuredCommShare(t *testing.T) {
	m := NewMachine()
	r := m.Predict(RunConfig{Level: 8, Layers: 30, NCG: 2048, Scheme: mixPHY})
	for _, share := range []float64{0.05, 0.37, 0.6} {
		adj := r.WithMeasuredCommShare(share)
		if adj.CompSec != r.CompSec {
			t.Errorf("share %v: compute time changed", share)
		}
		if math.Abs(adj.CommShare-share) > 1e-12 {
			t.Errorf("share %v: CommShare=%v", share, adj.CommShare)
		}
		if math.Abs(adj.DaySec-(adj.CompSec+adj.CommSec)) > 1e-9*adj.DaySec {
			t.Errorf("share %v: day != comp+comm", share)
		}
		if math.Abs(adj.SDPD-86400/adj.DaySec) > 1e-9*adj.SDPD {
			t.Errorf("share %v: SDPD inconsistent", share)
		}
		if math.Abs(adj.SYPD-adj.SDPD/365) > 1e-12*adj.SYPD {
			t.Errorf("share %v: SYPD inconsistent", share)
		}
	}
	// A larger measured share must slow the model down.
	if r.WithMeasuredCommShare(0.6).SDPD >= r.WithMeasuredCommShare(0.1).SDPD {
		t.Error("higher comm share did not reduce SDPD")
	}
	// Out-of-range shares leave the result untouched.
	if r.WithMeasuredCommShare(-0.1) != r || r.WithMeasuredCommShare(1.0) != r {
		t.Error("out-of-range share modified the result")
	}
}
