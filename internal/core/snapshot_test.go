package core

import (
	"os"
	"path/filepath"
	"testing"

	"gristgo/internal/dycore"
	"gristgo/internal/physics"
)

// corruptFile flips one payload byte of the named file.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// LatestCommitted must verify each epoch's shards exactly once: after
// a successful scan, later calls are served from the memo (no re-read
// of shard payloads), which the test observes by corrupting a shard on
// disk AFTER verification — the memoized answer must survive. The memo
// retires on WriteShard (a rollback rewrites epochs) and on any failed
// shard read.
func TestLatestCommittedMemoizesVerification(t *testing.T) {
	m := sharedMesh3
	nlev, nparts := 3, 3
	pl := NewDistPlan(m, nlev, nparts, 12345)
	dir := t.TempDir()
	st, err := NewShardStore(dir, pl)
	if err != nil {
		t.Fatal(err)
	}
	src := dycore.NewState(m, nlev)
	resilientInit(src)
	for p := 0; p < nparts; p++ {
		if err := st.WriteShard(1, p, 5, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(1, 5); err != nil {
		t.Fatal(err)
	}
	if epoch, step, ok := st.LatestCommitted(); !ok || epoch != 1 || step != 5 {
		t.Fatalf("LatestCommitted = (%d, %d, %v), want (1, 5, true)", epoch, step, ok)
	}

	// Corrupt rank 1's shard. A store that re-verified per call would
	// now reject epoch 1; the memoized store must still serve it.
	shard1 := filepath.Join(dir, "shard-e000001-r0001.grist")
	corruptFile(t, shard1)
	if epoch, step, ok := st.LatestCommitted(); !ok || epoch != 1 || step != 5 {
		t.Fatalf("after on-disk corruption, memoized LatestCommitted = (%d, %d, %v), want (1, 5, true)", epoch, step, ok)
	}

	// A fresh store (no memo) sees the corruption.
	st2, err := NewShardStore(dir, pl)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st2.LatestCommitted(); ok {
		t.Fatal("fresh store accepted the corrupted epoch")
	}

	// WriteShard invalidates the memo: rewriting rank 0's shard forces
	// a re-verification, which trips over rank 1's corruption.
	if err := st.WriteShard(1, 0, 5, src); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.LatestCommitted(); ok {
		t.Fatal("memo survived WriteShard; corrupted epoch was served")
	}

	// A newer committed epoch is picked up and memoized independently.
	for p := 0; p < nparts; p++ {
		if err := st.WriteShard(2, p, 10, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(2, 10); err != nil {
		t.Fatal(err)
	}
	if epoch, step, ok := st.LatestCommitted(); !ok || epoch != 2 || step != 10 {
		t.Fatalf("after new epoch, LatestCommitted = (%d, %d, %v), want (2, 10, true)", epoch, step, ok)
	}
}

// LoadEpochState must reassemble every rank's shard into a full-mesh
// state bitwise equal to the source on every prognostic array.
func TestLoadEpochStateAssemblesFullState(t *testing.T) {
	m := sharedMesh3
	nlev, nparts := 3, 4
	pl := NewDistPlan(m, nlev, nparts, 12345)
	st, err := NewShardStore(t.TempDir(), pl)
	if err != nil {
		t.Fatal(err)
	}
	src := dycore.NewState(m, nlev)
	resilientInit(src)
	for p := 0; p < nparts; p++ {
		if err := st.WriteShard(1, p, 7, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(1, 7); err != nil {
		t.Fatal(err)
	}

	dst := dycore.NewState(m, nlev)
	step, err := st.LoadEpochState(1, dst)
	if err != nil {
		t.Fatal(err)
	}
	if step != 7 {
		t.Fatalf("assembled step %d, want 7", step)
	}
	arrays := []struct {
		name     string
		got, src []float64
	}{
		{"DryMass", dst.DryMass, src.DryMass},
		{"ThetaM", dst.ThetaM, src.ThetaM},
		{"U", dst.U, src.U},
		{"W", dst.W, src.W},
		{"Phi", dst.Phi, src.Phi},
	}
	for _, a := range arrays {
		for i := range a.src {
			if a.got[i] != a.src[i] {
				t.Fatalf("%s[%d] = %v, want %v", a.name, i, a.got[i], a.src[i])
			}
		}
	}

	// A missing epoch must fail, not half-assemble.
	if _, err := st.LoadEpochState(9, dycore.NewState(m, nlev)); err == nil {
		t.Fatal("LoadEpochState accepted a missing epoch")
	}
}

// A serial model's snapshot export must produce a gristd-readable
// single-rank epoch: committed, assemblable, bitwise-equal state.
func TestExportSnapshotRoundTrip(t *testing.T) {
	mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 4}, physics.Null{}, sharedMesh3)
	s := mod.Engine.State()
	resilientInit(s)

	dir := t.TempDir()
	st, err := mod.NewSnapshotStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.ExportSnapshot(st, 1); err != nil {
		t.Fatal(err)
	}

	// A consumer-side store over the same mesh reads it back.
	pl := NewDistPlan(mod.Mesh, 4, 1, 12345)
	rd, err := NewShardStore(dir, pl)
	if err != nil {
		t.Fatal(err)
	}
	epoch, _, ok := rd.LatestCommitted()
	if !ok || epoch != 1 {
		t.Fatalf("LatestCommitted = (%d, _, %v), want (1, true)", epoch, ok)
	}
	dst := dycore.NewState(mod.Mesh, 4)
	if _, err := rd.LoadEpochState(1, dst); err != nil {
		t.Fatal(err)
	}
	for i := range s.DryMass {
		if dst.DryMass[i] != s.DryMass[i] {
			t.Fatalf("DryMass[%d] differs after export round-trip", i)
		}
	}
	for i := range s.U {
		if dst.U[i] != s.U[i] {
			t.Fatalf("U[%d] differs after export round-trip", i)
		}
	}

	// A multi-rank store must refuse the export entry point.
	multi, err := NewShardStore(t.TempDir(), NewDistPlan(mod.Mesh, 4, 2, 12345))
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.ExportSnapshot(multi, 1); err == nil {
		t.Fatal("ExportSnapshot accepted a multi-rank store")
	}
}
