package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gristgo/internal/dycore"
	"gristgo/internal/telemetry"
)

// Timings accumulates wall time per model component, mirroring the
// per-kernel timing log the GRIST artifact prints ("you can obtain the
// runtime of this task and many kernels").
//
// It is a thin view over a telemetry.Registry: every component becomes a
// pair of counters, grist_component_time_ns_total{component=...} and
// grist_component_calls_total{component=...}, so anything accumulated
// here is also visible on the /metrics endpoint. Timings is safe for
// concurrent use — distributed runs drain per-rank exchanger stats into
// one accumulator.
type Timings struct {
	mu    sync.Mutex
	reg   *telemetry.Registry
	comps map[string]compCounters
}

type compCounters struct {
	ns    *telemetry.Counter
	calls *telemetry.Counter
}

// NewTimings returns an empty accumulator over a private registry.
func NewTimings() *Timings {
	return NewTimingsOn(telemetry.NewRegistry())
}

// NewTimingsOn returns an accumulator publishing into an existing
// registry, so component timings share the registry served over HTTP.
func NewTimingsOn(reg *telemetry.Registry) *Timings {
	return &Timings{reg: reg, comps: map[string]compCounters{}}
}

// Registry exposes the backing registry (for export alongside the other
// model metrics).
func (t *Timings) Registry() *telemetry.Registry { return t.reg }

// handles resolves (creating on first use) the counter pair for a
// component.
func (t *Timings) handles(name string) compCounters {
	t.mu.Lock()
	h, ok := t.comps[name]
	if !ok {
		h = compCounters{
			ns:    t.reg.Counter("grist_component_time_ns_total", "component", name),
			calls: t.reg.Counter("grist_component_calls_total", "component", name),
		}
		t.comps[name] = h
	}
	t.mu.Unlock()
	return h
}

// Add records one timed invocation of a component.
func (t *Timings) Add(name string, d time.Duration) {
	h := t.handles(name)
	h.ns.Add(d.Nanoseconds())
	h.calls.Inc()
}

// AddCalls records d spread over n invocations of a component, for
// components that report their own accumulated timings.
func (t *Timings) AddCalls(name string, d time.Duration, n int) {
	h := t.handles(name)
	h.ns.Add(d.Nanoseconds())
	h.calls.Add(int64(n))
}

// Get returns the accumulated duration and call count for a component.
func (t *Timings) Get(name string) (time.Duration, int) {
	t.mu.Lock()
	h, ok := t.comps[name]
	t.mu.Unlock()
	if !ok {
		return 0, 0
	}
	return time.Duration(h.ns.Value()), int(h.calls.Value())
}

// ComponentTimer is implemented by model components that keep their own
// fine-grained timing counters — notably the ML physics suite, whose
// inference engines time each batched Forward (the measurement feeding
// perfmodel's ML-suite cost). DrainTimings reports and resets them.
type ComponentTimer interface {
	DrainTimings(emit func(name string, d time.Duration, calls int))
}

// Time runs f and records its duration under name.
func (t *Timings) Time(name string, f func()) {
	start := time.Now()
	f()
	t.Add(name, time.Since(start))
}

// snapshot copies the component table (name -> duration, calls) under
// the lock, so Total and Report render a consistent view.
func (t *Timings) snapshot() (names []string, dur map[string]time.Duration, calls map[string]int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	dur = make(map[string]time.Duration, len(t.comps))
	calls = make(map[string]int, len(t.comps))
	for n, h := range t.comps {
		names = append(names, n)
		dur[n] = time.Duration(h.ns.Value())
		calls[n] = int(h.calls.Value())
	}
	return names, dur, calls
}

// Total returns the summed duration.
func (t *Timings) Total() time.Duration {
	_, dur, _ := t.snapshot()
	var sum time.Duration
	for _, d := range dur {
		sum += d
	}
	return sum
}

// Report renders a per-component table sorted by time share, in the
// style of the model's log file.
func (t *Timings) Report() string {
	names, dur, calls := t.snapshot()
	sort.Slice(names, func(i, j int) bool { return dur[names[i]] > dur[names[j]] })
	var total time.Duration
	for _, d := range dur {
		total += d
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %8s %8s\n", "component", "time", "calls", "share")
	for _, n := range names {
		share := 0.0
		if total > 0 {
			share = float64(dur[n]) / float64(total) * 100
		}
		fmt.Fprintf(&b, "%-24s %12s %8d %7.1f%%\n", n, dur[n].Round(time.Microsecond), calls[n], share)
	}
	return b.String()
}

// StepPhysicsTimed advances one physics step while attributing wall time
// to the dynamics, tracer transport, physics and coupling components.
func (mod *Model) StepPhysicsTimed(season float64, tm *Timings) {
	st := mod.Cfg.Steps
	nDyn, nTrac, dtTrac, dtPhy := mod.EffectiveSteps()
	sp, t0 := mod.tel.beginStep()

	for it := 0; it < nTrac; it++ {
		mod.Engine.ResetMassFluxAccum()
		tm.Time("dynamics", func() {
			for id := 0; id < nDyn; id++ {
				mod.Engine.Step(st.Dyn)
				mod.TimeSec += st.Dyn
			}
		})
		tm.Time("tracer_transport", func() {
			acc := mod.Engine.MassFluxAccum()
			n := float64(mod.Engine.AccumSteps())
			avg := make([]float64, len(acc))
			for i, a := range acc {
				avg[i] = a / n
			}
			mod.Transport.Step(mod.Tracers, avg, dtTrac)
		})
	}

	tm.Time("coupling_input", func() { mod.computePhysicsInput(season) })
	tm.Time("physics_"+strings.ReplaceAll(mod.Physics.Name(), " ", "_"), func() {
		mod.Physics.Compute(mod.In, mod.Out, dtPhy)
	})
	if ct, ok := mod.Physics.(ComponentTimer); ok {
		ct.DrainTimings(tm.AddCalls)
	}
	tm.Time("coupling_output", func() { mod.applyPhysicsOutput(dtPhy) })

	mod.stepCount++
	if mod.RemapEvery > 0 && mod.stepCount%mod.RemapEvery == 0 {
		tm.Time("vertical_remap", func() {
			verticalRemapModel(mod)
		})
	}
	mod.tel.endStep(mod, sp, t0, dtPhy)
}

// verticalRemapModel is split out so the timed and untimed paths share
// one call site (and one scratch-holding Remapper).
func verticalRemapModel(mod *Model) {
	if mod.remapper == nil {
		mod.remapper = dycore.NewRemapper(mod.Engine.State().NLev)
	}
	mod.remapper.Run(mod.Engine.State(), mod.Tracers)
}
