package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gristgo/internal/dycore"
)

// Timings accumulates wall time per model component, mirroring the
// per-kernel timing log the GRIST artifact prints ("you can obtain the
// runtime of this task and many kernels").
type Timings struct {
	byName map[string]time.Duration
	calls  map[string]int
}

// NewTimings returns an empty accumulator.
func NewTimings() *Timings {
	return &Timings{byName: map[string]time.Duration{}, calls: map[string]int{}}
}

// Add records one timed invocation of a component.
func (t *Timings) Add(name string, d time.Duration) {
	t.byName[name] += d
	t.calls[name]++
}

// AddCalls records d spread over n invocations of a component, for
// components that report their own accumulated timings.
func (t *Timings) AddCalls(name string, d time.Duration, n int) {
	t.byName[name] += d
	t.calls[name] += n
}

// Get returns the accumulated duration and call count for a component.
func (t *Timings) Get(name string) (time.Duration, int) {
	return t.byName[name], t.calls[name]
}

// ComponentTimer is implemented by model components that keep their own
// fine-grained timing counters — notably the ML physics suite, whose
// inference engines time each batched Forward (the measurement feeding
// perfmodel's ML-suite cost). DrainTimings reports and resets them.
type ComponentTimer interface {
	DrainTimings(emit func(name string, d time.Duration, calls int))
}

// Time runs f and records its duration under name.
func (t *Timings) Time(name string, f func()) {
	start := time.Now()
	f()
	t.Add(name, time.Since(start))
}

// Total returns the summed duration.
func (t *Timings) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.byName {
		sum += d
	}
	return sum
}

// Report renders a per-component table sorted by time share, in the
// style of the model's log file.
func (t *Timings) Report() string {
	names := make([]string, 0, len(t.byName))
	for n := range t.byName {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return t.byName[names[i]] > t.byName[names[j]] })
	total := t.Total()
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %8s %8s\n", "component", "time", "calls", "share")
	for _, n := range names {
		share := 0.0
		if total > 0 {
			share = float64(t.byName[n]) / float64(total) * 100
		}
		fmt.Fprintf(&b, "%-24s %12s %8d %7.1f%%\n", n, t.byName[n].Round(time.Microsecond), t.calls[n], share)
	}
	return b.String()
}

// StepPhysicsTimed advances one physics step while attributing wall time
// to the dynamics, tracer transport, physics and coupling components.
func (mod *Model) StepPhysicsTimed(season float64, tm *Timings) {
	st := mod.Cfg.Steps
	nDyn, nTrac, dtTrac, dtPhy := mod.EffectiveSteps()

	for it := 0; it < nTrac; it++ {
		mod.Engine.ResetMassFluxAccum()
		tm.Time("dynamics", func() {
			for id := 0; id < nDyn; id++ {
				mod.Engine.Step(st.Dyn)
				mod.TimeSec += st.Dyn
			}
		})
		tm.Time("tracer_transport", func() {
			acc := mod.Engine.MassFluxAccum()
			n := float64(mod.Engine.AccumSteps())
			avg := make([]float64, len(acc))
			for i, a := range acc {
				avg[i] = a / n
			}
			mod.Transport.Step(mod.Tracers, avg, dtTrac)
		})
	}

	tm.Time("coupling_input", func() { mod.computePhysicsInput(season) })
	tm.Time("physics_"+strings.ReplaceAll(mod.Physics.Name(), " ", "_"), func() {
		mod.Physics.Compute(mod.In, mod.Out, dtPhy)
	})
	if ct, ok := mod.Physics.(ComponentTimer); ok {
		ct.DrainTimings(tm.AddCalls)
	}
	tm.Time("coupling_output", func() { mod.applyPhysicsOutput(dtPhy) })

	mod.stepCount++
	if mod.RemapEvery > 0 && mod.stepCount%mod.RemapEvery == 0 {
		tm.Time("vertical_remap", func() {
			verticalRemapModel(mod)
		})
	}
}

// verticalRemapModel is split out so the timed and untimed paths share
// one call site (and one scratch-holding Remapper).
func verticalRemapModel(mod *Model) {
	if mod.remapper == nil {
		mod.remapper = dycore.NewRemapper(mod.Engine.State().NLev)
	}
	mod.remapper.Run(mod.Engine.State(), mod.Tracers)
}
