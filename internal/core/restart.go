package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"gristgo/internal/tracer"
	"gristgo/internal/vfs"
)

// Restart stream framing: a magic + format-version header so a foreign
// or stale file is rejected before gob sees it, and a CRC32-IEEE
// trailer over everything before it so silent corruption (truncation,
// bit rot, torn writes) surfaces as a precise error instead of a
// half-restored state. Version history: 1 = bare gob (pre-resilience),
// 2 = framed.
const (
	restartMagic   = "GRST"
	restartVersion = 2
)

// restartRecord is the serialized model state. Mesh topology is not
// stored (it is regenerated deterministically from the grid level);
// everything prognostic or slowly varying is.
type restartRecord struct {
	GridLevel, NLev int
	TimeSec         float64

	DryMass, ThetaM, U, W, Phi, PhiSurf []float64
	Tracers                             [tracer.NumSpecies][]float64
	TracerMass                          []float64

	Tskin, Land, SSTFix []float64
	PrecipAccum         []float64
	PrecipTime          float64
	StepCount           int
}

// WriteRestart serializes the full model state, so a run can resume
// bit-for-bit (the restart-reproducibility requirement of long climate
// integrations). The stream is framed with the versioned header and
// CRC32 trailer described above.
func (mod *Model) WriteRestart(w io.Writer) error {
	s := mod.Engine.State()
	rec := restartRecord{
		GridLevel: mod.Cfg.GridLevel,
		NLev:      mod.Cfg.NLev,
		TimeSec:   mod.TimeSec,

		DryMass: s.DryMass, ThetaM: s.ThetaM, U: s.U, W: s.W, Phi: s.Phi,
		PhiSurf:    s.PhiSurf,
		TracerMass: mod.Tracers.Mass,

		Tskin: mod.In.Tskin, Land: mod.Land, SSTFix: mod.SSTFix,
		PrecipAccum: mod.PrecipAccum,
		PrecipTime:  mod.precipTime,
		StepCount:   mod.stepCount,
	}
	rec.Tracers = mod.Tracers.Q

	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	var hdr [len(restartMagic) + 2]byte
	copy(hdr[:], restartMagic)
	binary.LittleEndian.PutUint16(hdr[len(restartMagic):], restartVersion)
	if _, err := mw.Write(hdr[:]); err != nil {
		return fmt.Errorf("core: writing restart header: %w", err)
	}
	if err := gob.NewEncoder(mw).Encode(&rec); err != nil {
		return fmt.Errorf("core: writing restart: %w", err)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("core: writing restart trailer: %w", err)
	}
	return nil
}

// ReadRestart restores a state written by WriteRestart into this model,
// verifying the header and checksum first. The grid level and layer
// count must match the model's configuration.
func (mod *Model) ReadRestart(r io.Reader) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("core: reading restart: %w", err)
	}
	const hdrLen = len(restartMagic) + 2
	if len(raw) < hdrLen+4 {
		return fmt.Errorf("core: restart file truncated (%d bytes, need at least %d)", len(raw), hdrLen+4)
	}
	if string(raw[:len(restartMagic)]) != restartMagic {
		return fmt.Errorf("core: not a restart file (magic %q, want %q)", raw[:len(restartMagic)], restartMagic)
	}
	if v := binary.LittleEndian.Uint16(raw[len(restartMagic):hdrLen]); v != restartVersion {
		return fmt.Errorf("core: unsupported restart format version %d (this build reads %d)", v, restartVersion)
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.ChecksumIEEE(body); got != want {
		return fmt.Errorf("core: restart file corrupt: CRC32 %08x, trailer says %08x", got, want)
	}
	var rec restartRecord
	if err := gob.NewDecoder(bytes.NewReader(body[hdrLen:])).Decode(&rec); err != nil {
		return fmt.Errorf("core: decoding restart: %w", err)
	}
	if rec.GridLevel != mod.Cfg.GridLevel || rec.NLev != mod.Cfg.NLev {
		return fmt.Errorf("core: restart is G%d/L%d, model is G%d/L%d",
			rec.GridLevel, rec.NLev, mod.Cfg.GridLevel, mod.Cfg.NLev)
	}
	s := mod.Engine.State()
	copy(s.DryMass, rec.DryMass)
	copy(s.ThetaM, rec.ThetaM)
	copy(s.U, rec.U)
	copy(s.W, rec.W)
	copy(s.Phi, rec.Phi)
	copy(s.PhiSurf, rec.PhiSurf)
	copy(mod.Tracers.Mass, rec.TracerMass)
	for t := range rec.Tracers {
		copy(mod.Tracers.Q[t], rec.Tracers[t])
	}
	copy(mod.In.Tskin, rec.Tskin)
	copy(mod.Land, rec.Land)
	copy(mod.In.Land, rec.Land)
	copy(mod.SSTFix, rec.SSTFix)
	copy(mod.PrecipAccum, rec.PrecipAccum)
	mod.precipTime = rec.PrecipTime
	mod.stepCount = rec.StepCount
	mod.TimeSec = rec.TimeSec
	return nil
}

// WriteRestartFile writes the restart record to path atomically: the
// framed stream lands in a temp file in the same directory and is
// renamed into place, so a crash mid-write never leaves a truncated
// file under the restart name.
//
//grist:durable
func (mod *Model) WriteRestartFile(path string) error {
	return mod.WriteRestartFileFS(vfs.OS, path)
}

// WriteRestartFileFS is WriteRestartFile over an injectable filesystem,
// so the storage-chaos layer can tear or starve the restart write the
// same way it does checkpoint shards.
//
//grist:durable
func (mod *Model) WriteRestartFileFS(fsys vfs.FS, path string) error {
	return atomicWriteFileFS(fsys, path, mod.WriteRestart)
}

// ReadRestartFile restores the model from a restart file written by
// WriteRestartFile (or any WriteRestart stream on disk).
func (mod *Model) ReadRestartFile(path string) error {
	return mod.ReadRestartFileFS(vfs.OS, path)
}

// ReadRestartFileFS is ReadRestartFile over an injectable filesystem.
func (mod *Model) ReadRestartFileFS(fsys vfs.FS, path string) error {
	f, err := fsys.Open(path)
	if err != nil {
		return fmt.Errorf("core: opening restart: %w", err)
	}
	defer f.Close()
	return mod.ReadRestart(f)
}
