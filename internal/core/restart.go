package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"gristgo/internal/tracer"
)

// restartRecord is the serialized model state. Mesh topology is not
// stored (it is regenerated deterministically from the grid level);
// everything prognostic or slowly varying is.
type restartRecord struct {
	GridLevel, NLev int
	TimeSec         float64

	DryMass, ThetaM, U, W, Phi, PhiSurf []float64
	Tracers                             [tracer.NumSpecies][]float64
	TracerMass                          []float64

	Tskin, Land, SSTFix []float64
	PrecipAccum         []float64
	PrecipTime          float64
	StepCount           int
}

// WriteRestart serializes the full model state, so a run can resume
// bit-for-bit (the restart-reproducibility requirement of long climate
// integrations).
func (mod *Model) WriteRestart(w io.Writer) error {
	s := mod.Engine.State()
	rec := restartRecord{
		GridLevel: mod.Cfg.GridLevel,
		NLev:      mod.Cfg.NLev,
		TimeSec:   mod.TimeSec,

		DryMass: s.DryMass, ThetaM: s.ThetaM, U: s.U, W: s.W, Phi: s.Phi,
		PhiSurf:    s.PhiSurf,
		TracerMass: mod.Tracers.Mass,

		Tskin: mod.In.Tskin, Land: mod.Land, SSTFix: mod.SSTFix,
		PrecipAccum: mod.PrecipAccum,
		PrecipTime:  mod.precipTime,
		StepCount:   mod.stepCount,
	}
	rec.Tracers = mod.Tracers.Q
	return gob.NewEncoder(w).Encode(&rec)
}

// ReadRestart restores a state written by WriteRestart into this model.
// The grid level and layer count must match the model's configuration.
func (mod *Model) ReadRestart(r io.Reader) error {
	var rec restartRecord
	if err := gob.NewDecoder(r).Decode(&rec); err != nil {
		return fmt.Errorf("core: reading restart: %w", err)
	}
	if rec.GridLevel != mod.Cfg.GridLevel || rec.NLev != mod.Cfg.NLev {
		return fmt.Errorf("core: restart is G%d/L%d, model is G%d/L%d",
			rec.GridLevel, rec.NLev, mod.Cfg.GridLevel, mod.Cfg.NLev)
	}
	s := mod.Engine.State()
	copy(s.DryMass, rec.DryMass)
	copy(s.ThetaM, rec.ThetaM)
	copy(s.U, rec.U)
	copy(s.W, rec.W)
	copy(s.Phi, rec.Phi)
	copy(s.PhiSurf, rec.PhiSurf)
	copy(mod.Tracers.Mass, rec.TracerMass)
	for t := range rec.Tracers {
		copy(mod.Tracers.Q[t], rec.Tracers[t])
	}
	copy(mod.In.Tskin, rec.Tskin)
	copy(mod.Land, rec.Land)
	copy(mod.In.Land, rec.Land)
	copy(mod.SSTFix, rec.SSTFix)
	copy(mod.PrecipAccum, rec.PrecipAccum)
	mod.precipTime = rec.PrecipTime
	mod.stepCount = rec.StepCount
	mod.TimeSec = rec.TimeSec
	return nil
}
