package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"gristgo/internal/physics"
	"gristgo/internal/precision"
	"gristgo/internal/synthclim"
	"gristgo/internal/telemetry"
)

// timedScheme is a stub physics scheme with its own component timers, as
// the ML suite's inference engines keep.
type timedScheme struct {
	nlev    int
	workers int
	drained int
}

func (s *timedScheme) Name() string { return "stub timed" }

func (s *timedScheme) Compute(in *physics.Input, out *physics.Output, dt float64) {
	out.Reset()
}

func (s *timedScheme) SetWorkers(n int) { s.workers = n }

func (s *timedScheme) DrainTimings(emit func(name string, d time.Duration, calls int)) {
	s.drained++
	emit("stub_infer", 3*time.Millisecond, 2)
}

// TestStepPhysicsTimedDrainsComponentTimers: schemes implementing
// ComponentTimer get their counters folded into the step's Timings.
func TestStepPhysicsTimedDrainsComponentTimers(t *testing.T) {
	sch := &timedScheme{nlev: 4}
	cfg := Config{GridLevel: 3, NLev: 4, Mode: precision.DP}
	mod := NewModelOnMesh(cfg, sch, sharedMesh3)
	mod.InitializeClimate(synthclim.ForPeriod(synthclim.Table1()[2], 0))

	tm := NewTimings()
	mod.StepPhysicsTimed(0, tm)
	if sch.drained != 1 {
		t.Fatalf("DrainTimings called %d times, want 1", sch.drained)
	}
	d, calls := tm.Get("stub_infer")
	if d != 3*time.Millisecond || calls != 2 {
		t.Errorf("stub_infer = (%v, %d), want (3ms, 2)", d, calls)
	}
	if !strings.Contains(tm.Report(), "stub_infer") {
		t.Error("report omits drained component")
	}
}

// TestHostWorkersReachScheme: core.Config.HostWorkers must propagate to
// physics schemes carrying their own worker pool.
func TestHostWorkersReachScheme(t *testing.T) {
	sch := &timedScheme{nlev: 4}
	cfg := Config{GridLevel: 3, NLev: 4, Mode: precision.DP, HostWorkers: 4}
	NewModelOnMesh(cfg, sch, sharedMesh3)
	if sch.workers != 4 {
		t.Errorf("scheme workers = %d, want 4", sch.workers)
	}
}

// TestAddCalls: the multi-invocation accumulator sums like repeated Add.
func TestAddCalls(t *testing.T) {
	tm := NewTimings()
	tm.AddCalls("x", 5*time.Millisecond, 3)
	tm.AddCalls("x", time.Millisecond, 1)
	d, calls := tm.Get("x")
	if d != 6*time.Millisecond || calls != 4 {
		t.Errorf("got (%v, %d), want (6ms, 4)", d, calls)
	}
}

// TestTimingsConcurrent: distributed runs drain per-rank stats into one
// accumulator from many goroutines; Timings must be race-free under
// concurrent Add/AddCalls/Get/Report (exercised by make race).
func TestTimingsConcurrent(t *testing.T) {
	tm := NewTimings()
	var wg sync.WaitGroup
	const workers, iters = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tm.Add("shared", time.Microsecond)
				tm.AddCalls("halo_wait", time.Microsecond, 2)
				tm.Get("shared")
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent reader
		defer close(done)
		for i := 0; i < 20; i++ {
			tm.Report()
			tm.Total()
		}
	}()
	wg.Wait()
	<-done
	if d, calls := tm.Get("shared"); d != workers*iters*time.Microsecond || calls != workers*iters {
		t.Errorf("shared = (%v, %d), want (%v, %d)", d, calls, workers*iters*time.Microsecond, workers*iters)
	}
	if _, calls := tm.Get("halo_wait"); calls != 2*workers*iters {
		t.Errorf("halo_wait calls = %d, want %d", calls, 2*workers*iters)
	}
}

// TestTimingsRegistryView: Timings is a view over a telemetry registry —
// the component counters must be visible as metrics.
func TestTimingsRegistryView(t *testing.T) {
	reg := telemetry.NewRegistry()
	tm := NewTimingsOn(reg)
	tm.Add("dynamics", 2*time.Millisecond)
	if tm.Registry() != reg {
		t.Fatal("Registry() does not return the backing registry")
	}
	if v := reg.Counter("grist_component_time_ns_total", "component", "dynamics").Value(); v != int64(2*time.Millisecond) {
		t.Errorf("time counter = %d ns, want %d", v, int64(2*time.Millisecond))
	}
	if v := reg.Counter("grist_component_calls_total", "component", "dynamics").Value(); v != 1 {
		t.Errorf("calls counter = %d, want 1", v)
	}
}
