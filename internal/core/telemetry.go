package core

// Model-level telemetry wiring: one EnableTelemetry call threads the
// flight recorder and metric registry through every instrumented
// component (dycore engine, tracer transport, ML physics suite) and
// attaches the numerical-health sentinels, so a driver gets the full
// Step timeline, the throughput metrics and the health gauges from a
// single switch.

import (
	"math"
	"time"

	"gristgo/internal/diag"
	"gristgo/internal/telemetry"
	"gristgo/internal/tracer"
)

// secondsPerYear converts simulated seconds to simulated years for the
// SYPD (simulated years per wall-clock day) gauge.
const secondsPerYear = 365.0 * 86400.0

// ModelTelemetry bundles a model's observability state: the registry
// and recorder shared with the HTTP plane, the health monitor, and the
// pre-resolved instrument handles the step loop updates.
type ModelTelemetry struct {
	Reg    *telemetry.Registry
	Rec    *telemetry.Recorder
	Health *diag.HealthMonitor

	// HealthEvery runs the sentinel scan every N physics steps
	// (default 1; sentinels are cheap relative to a physics step).
	HealthEvery int

	stepLatency *telemetry.Histogram
	sypd        *telemetry.Gauge
	simSeconds  *telemetry.Gauge
	steps       *telemetry.Counter
	drops       *telemetry.DropCounter
	stepNo      int64

	// Graceful degradation: when the physics suite supports DegradeFor
	// (the ML suite does), a sentinel trip benches its batched engine for
	// the next step. lastTrips remembers the monitor's trip count at the
	// previous scan so only new trips degrade.
	degrade   Degradable
	lastTrips int64
}

// Degradable is implemented by physics suites that can fall back to a
// trusted slow path for a number of steps (mlphysics.Suite.DegradeFor).
type Degradable interface{ DegradeFor(steps int) }

// EnableTelemetry attaches observability to the model: engine, tracer
// transport and (when supported) the physics suite report spans into
// rec, step latency/SYPD metrics land in reg, and the numerical-health
// sentinels watch the prognostic state, forwarding trips to warn (nil:
// trips are only counted). Either sink may be nil to disable that
// aspect. Returns the wiring handle now stored on the model.
func (mod *Model) EnableTelemetry(reg *telemetry.Registry, rec *telemetry.Recorder, warn func(diag.HealthEvent)) *ModelTelemetry {
	tel := &ModelTelemetry{Reg: reg, Rec: rec, HealthEvery: 1}
	if reg != nil {
		tel.Health = diag.NewHealthMonitor(reg, warn)
		tel.stepLatency = reg.Histogram("grist_step_latency_seconds")
		tel.sypd = reg.Gauge("grist_sypd")
		tel.simSeconds = reg.Gauge("grist_sim_seconds")
		tel.steps = reg.Counter("grist_physics_steps_total")
		tel.drops = telemetry.NewDropCounter(reg, rec)
		// A single-process run has no exchange and one rank: comm share
		// is genuinely 0 and the imbalance ratio 1. Registering the
		// degenerate values keeps the exposition schema identical between
		// serial and distributed runs; RunDistributedDynamicsObserved
		// overwrites both with measured values.
		reg.Gauge("grist_comm_share").Set(0)
		reg.Gauge("grist_load_imbalance").Set(1)
	}
	mod.Engine.SetTelemetry(rec, 0)
	mod.Transport.SetTelemetry(rec, 0)
	if ts, ok := mod.Physics.(interface {
		SetTelemetry(*telemetry.Recorder, *telemetry.Registry)
	}); ok {
		ts.SetTelemetry(rec, reg)
	}
	if d, ok := mod.Physics.(Degradable); ok {
		tel.degrade = d
	}
	mod.tel = tel
	return tel
}

// SetTracerTelemetry is the Transport leg of EnableTelemetry, exposed so
// drivers replacing mod.Transport after wiring can re-attach.
func (mod *Model) SetTracerTelemetry(tr tracer.Transport) {
	if mod.tel != nil {
		tr.SetTelemetry(mod.tel.Rec, 0)
	}
}

// beginStep stamps the recorder with the upcoming physics step index and
// opens the step span. Nil-safe: an unwired model pays two nil checks.
func (tel *ModelTelemetry) beginStep() (telemetry.Span, time.Time) {
	if tel == nil {
		return telemetry.Span{}, time.Time{}
	}
	tel.stepNo++
	tel.Rec.SetStep(tel.stepNo)
	return tel.Rec.Begin("physics_step", 0), time.Now()
}

// endStep closes the step span and updates the throughput metrics:
// the step-latency histogram (seconds, with EWMA and percentiles) and
// the SYPD gauge computed from this step's simulated/wall ratio.
func (tel *ModelTelemetry) endStep(mod *Model, sp telemetry.Span, start time.Time, dtPhy float64) {
	if tel == nil {
		return
	}
	sp.End()
	if tel.steps == nil {
		return
	}
	wall := time.Since(start).Seconds()
	tel.steps.Inc()
	tel.stepLatency.Observe(wall)
	tel.simSeconds.Set(mod.TimeSec)
	if wall > 0 {
		tel.sypd.Set(dtPhy / wall * 86400.0 / secondsPerYear)
	}
	tel.drops.Publish()
	if tel.Health != nil && tel.HealthEvery > 0 && tel.stepNo%int64(tel.HealthEvery) == 0 {
		tel.scanHealth(mod)
	}
}

// scanHealth runs the sentinel pass over the prognostic state: NaN/Inf
// scans of the dynamical fields, the global dry-mass budget (conserved
// to rounding by the continuity equation) and the total-energy budget.
func (tel *ModelTelemetry) scanHealth(mod *Model) {
	h := tel.Health
	s := mod.Engine.State()
	step := tel.stepNo
	h.CheckFinite(step, "dry_mass", s.DryMass)
	h.CheckFinite(step, "theta_m", s.ThetaM)
	h.CheckFinite(step, "u", s.U)
	h.CheckFinite(step, "w", s.W)
	h.ObserveMassBudget(step, globalDryMass(mod))
	h.ObserveEnergyBudget(step, s.TotalEnergy())
	// New trips since the last scan bench the suspect fast path: the next
	// physics step runs on the scalar oracle while the state recovers (or
	// the sentinel keeps tripping and keeps it benched).
	if trips := h.TotalTrips(); trips > tel.lastTrips {
		if tel.degrade != nil {
			tel.degrade.DegradeFor(1)
		}
		tel.lastTrips = trips
	}
}

// globalDryMass integrates the dry-air mass over the sphere (Pa m^2,
// i.e. proportional to total mass), the invariant of the continuity
// equation the mass sentinel watches.
func globalDryMass(mod *Model) float64 {
	m := mod.Mesh
	nlev := mod.Cfg.NLev
	s := mod.Engine.State()
	var total float64
	for c := 0; c < m.NCells; c++ {
		var col float64
		for k := 0; k < nlev; k++ {
			col += s.DryMass[c*nlev+k]
		}
		total += col * m.CellArea[c]
	}
	return total
}

// LoadImbalance returns max/mean of the per-rank wall times — 1.0 is a
// perfectly balanced step, 2.0 means the slowest rank took twice the
// average and half the machine idled waiting for it.
func LoadImbalance(rankWall []time.Duration) float64 {
	if len(rankWall) == 0 {
		return 0
	}
	var sum, max time.Duration
	for _, w := range rankWall {
		sum += w
		if w > max {
			max = w
		}
	}
	mean := float64(sum) / float64(len(rankWall))
	if mean <= 0 {
		return 0
	}
	r := float64(max) / mean
	if math.IsNaN(r) {
		return 0
	}
	return r
}
