package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gristgo/internal/diag"
	"gristgo/internal/dycore"
	"gristgo/internal/fault"
	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// newTestMonitor builds a health monitor with default tolerances whose
// trips are only counted.
func newTestMonitor(reg *telemetry.Registry) *diag.HealthMonitor {
	return diag.NewHealthMonitor(reg, nil)
}

// resilientInit is the shared initial condition of the recovery tests:
// a thermal bubble in a solid-body flow, structured enough that any
// replay divergence shows up in every field.
func resilientInit(s *dycore.State) {
	s.IsothermalRest(295)
	s.AddThermalBubble(0.4, 1.2, 0.25, 4)
	s.AddSolidBodyWind(18)
}

// testTimeouts returns deadlines generous against race-mode slowdowns
// but short enough that the failing legs stay cheap.
func testTimeouts() (halo, sync time.Duration) { return time.Second, time.Second }

// assertBitwise compares two states field by field, exactly.
func assertBitwise(t *testing.T, got, want *dycore.State, label string) {
	t.Helper()
	cmp := func(name string, a, b []float64) {
		if len(a) != len(b) {
			t.Fatalf("%s: %s length %d vs %d", label, name, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s: %s[%d] = %v, want %v (not bitwise identical)", label, name, i, a[i], b[i])
			}
		}
	}
	cmp("DryMass", got.DryMass, want.DryMass)
	cmp("ThetaM", got.ThetaM, want.ThetaM)
	cmp("U", got.U, want.U)
	cmp("W", got.W, want.W)
	cmp("Phi", got.Phi, want.Phi)
}

// Without faults, the resilient runner (deadlines, health checks,
// checkpoint epochs and all) must reproduce RunDistributedDynamics
// bitwise — resilience must be free on the failure-free path.
func TestResilientMatchesPlainWithoutFaults(t *testing.T) {
	m := sharedMesh3
	nlev, nparts, steps, dt := 4, 4, 6, 90.0
	plain := RunDistributedDynamics(m, nlev, nparts, precision.DP, resilientInit, steps, dt)

	halo, sync := testTimeouts()
	reg := telemetry.NewRegistry()
	got, rep, err := RunDistributedDynamicsResilient(m, nlev, nparts, resilientInit, steps, dt,
		ResilienceOpts{
			Mode: precision.DP, CheckpointEvery: 2, Dir: t.TempDir(),
			HaloTimeout: halo, SyncTimeout: sync, Reg: reg,
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 1 || rep.Recoveries != 0 {
		t.Fatalf("clean run report: %+v", rep)
	}
	assertBitwise(t, got, plain, "clean resilient run")
	if n := reg.Counter("grist_checkpoint_epochs_total").Value(); n != 2 {
		t.Fatalf("committed %d epochs, want 2", n)
	}
}

// The acceptance test of the tentpole: a rank death injected at a
// seeded step recovers via rollback-and-replay and produces bitwise-
// identical final ps and vor fields to an uninjected run, visible as
// grist_recovery_total.
func TestRankDeathRecoversBitwise(t *testing.T) {
	m := sharedMesh3
	nlev, nparts, steps, dt := 4, 4, 9, 90.0
	plain := RunDistributedDynamics(m, nlev, nparts, precision.DP, resilientInit, steps, dt)

	prof := fault.Profile{Name: "rankdeath", KillRank: 2, KillStep: 7}
	plan := fault.NewPlan(31, prof)
	halo, sync := testTimeouts()
	reg := telemetry.NewRegistry()
	got, rep, err := RunDistributedDynamicsResilient(m, nlev, nparts, resilientInit, steps, dt,
		ResilienceOpts{
			Mode: precision.DP, Injector: plan,
			CheckpointEvery: 3, Dir: t.TempDir(),
			HaloTimeout: halo, SyncTimeout: sync, Reg: reg,
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recoveries != 1 || len(rep.Events) != 1 {
		t.Fatalf("report: %+v", rep)
	}
	ev := rep.Events[0]
	if ev.ResumeStep != 6 || ev.ResumeEpoch != 2 {
		t.Fatalf("resumed at step %d epoch %d, want step 6 epoch 2 (kill at step 7, epochs every 3)",
			ev.ResumeStep, ev.ResumeEpoch)
	}
	killed := false
	for _, f := range ev.Failures {
		if f.Rank == 2 && f.Kind == "killed" {
			killed = true
		}
	}
	if !killed {
		t.Fatalf("failures do not record the killed rank: %+v", ev.Failures)
	}
	if n := reg.Counter("grist_recovery_total").Value(); n != 1 {
		t.Fatalf("grist_recovery_total = %d, want 1", n)
	}
	if n := reg.Counter("grist_rank_failures_total").Value(); n == 0 {
		t.Fatal("grist_rank_failures_total = 0")
	}

	assertBitwise(t, got, plain, "recovered run")
	// The acceptance criterion names ps and vor explicitly.
	psGot, psWant := got.SurfacePressure(), plain.SurfacePressure()
	for i := range psGot {
		if math.Float64bits(psGot[i]) != math.Float64bits(psWant[i]) {
			t.Fatalf("ps[%d] not bitwise identical after recovery", i)
		}
	}
	vorGot := dycore.NewFromState(got, precision.DP).VorticityAtLevel(2)
	vorWant := dycore.NewFromState(plain, precision.DP).VorticityAtLevel(2)
	for i := range vorGot {
		if math.Float64bits(vorGot[i]) != math.Float64bits(vorWant[i]) {
			t.Fatalf("vor[%d] not bitwise identical after recovery", i)
		}
	}
}

// A rank death with no checkpoint directory still recovers — by
// replaying from the initial state.
func TestRankDeathRecoversWithoutCheckpoints(t *testing.T) {
	m := sharedMesh3
	nlev, nparts, steps, dt := 2, 3, 4, 60.0
	plain := RunDistributedDynamics(m, nlev, nparts, precision.DP, resilientInit, steps, dt)
	plan := fault.NewPlan(5, fault.Profile{Name: "rankdeath", KillRank: 1, KillStep: 2})
	halo, sync := testTimeouts()
	got, rep, err := RunDistributedDynamicsResilient(m, nlev, nparts, resilientInit, steps, dt,
		ResilienceOpts{Mode: precision.DP, Injector: plan, HaloTimeout: halo, SyncTimeout: sync})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recoveries != 1 || rep.Events[0].ResumeStep != 0 || rep.Events[0].ResumeEpoch != -1 {
		t.Fatalf("report: %+v, events %+v", rep, rep.Events)
	}
	assertBitwise(t, got, plain, "checkpoint-free recovery")
}

// The satellite property test: injected FP32 bit-flips on the halo wire
// must trip a diag sentinel within one step, across seeds. Mixed mode
// puts FP32 words on the wire; FlipProb 1 corrupts from the very first
// exchange of step 1, and the step-1 health check must catch it.
func TestBitFlipTripsSentinelWithinOneStep(t *testing.T) {
	m := sharedMesh3
	halo, sync := testTimeouts()
	for seed := int64(1); seed <= 8; seed++ {
		plan := fault.NewPlan(seed, fault.Profile{Name: "bitflip", FlipProb: 1})
		reg := telemetry.NewRegistry()
		mon := newTestMonitor(reg)
		_, _, err := RunDistributedDynamicsResilient(m, 4, 4, resilientInit, 2, 90,
			ResilienceOpts{
				Mode: precision.Mixed, Injector: plan,
				HaloTimeout: halo, SyncTimeout: sync,
				Monitor: mon, MaxRecoveries: 1, Reg: reg,
			})
		if err == nil {
			t.Fatalf("seed %d: unbounded corruption did not fail the run", seed)
		}
		trips := mon.Trips()
		if len(trips) == 0 {
			t.Fatalf("seed %d: no sentinel tripped under FP32 bit-flips", seed)
		}
		if trips[0].Step != 1 {
			t.Fatalf("seed %d: first trip at step %d, want 1 (within one step of corruption)",
				seed, trips[0].Step)
		}
	}
}

// A transient (one-shot) corruption trips the sentinel, rolls back, and
// the replay — with the fault spent — finishes bitwise identical to a
// clean run: detection has become survival.
func TestSentinelTripRollsBackAndReplays(t *testing.T) {
	m := sharedMesh3
	nlev, nparts, steps, dt := 4, 4, 6, 90.0
	plain := RunDistributedDynamics(m, nlev, nparts, precision.Mixed, resilientInit, steps, dt)

	plan := fault.NewPlan(17, fault.Profile{Name: "bitflip", FlipProb: 1, MaxFlips: 1})
	halo, sync := testTimeouts()
	reg := telemetry.NewRegistry()
	mon := newTestMonitor(reg)
	got, rep, err := RunDistributedDynamicsResilient(m, nlev, nparts, resilientInit, steps, dt,
		ResilienceOpts{
			Mode: precision.Mixed, Injector: plan,
			CheckpointEvery: 3, Dir: t.TempDir(),
			HaloTimeout: halo, SyncTimeout: sync,
			Monitor: mon, Reg: reg,
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recoveries == 0 {
		t.Fatal("one-shot corruption caused no rollback — the sentinel path was not exercised")
	}
	sentinel := false
	for _, f := range rep.Events[0].Failures {
		if f.Kind == "sentinel" {
			sentinel = true
		}
	}
	if !sentinel {
		t.Fatalf("leg 0 failures are not sentinel trips: %+v", rep.Events[0].Failures)
	}
	if plan.Flips() != 1 {
		t.Fatalf("plan fired %d flips, want exactly 1", plan.Flips())
	}
	assertBitwise(t, got, plain, "post-rollback replay")
}

// A fault that replays into the same failure forever must exhaust
// MaxRecoveries and return an error, not loop.
func TestUnrecoverableFaultGivesUp(t *testing.T) {
	m := sharedMesh3
	halo, sync := testTimeouts()
	reg := telemetry.NewRegistry()
	plan := fault.NewPlan(3, fault.Profile{Name: "bitflip", FlipProb: 1}) // unlimited flips
	_, rep, err := RunDistributedDynamicsResilient(m, 2, 3, resilientInit, 3, 60,
		ResilienceOpts{
			Mode: precision.Mixed, Injector: plan,
			HaloTimeout: halo, SyncTimeout: sync,
			Monitor: newTestMonitor(reg), MaxRecoveries: 2, Reg: reg,
		})
	if err == nil {
		t.Fatal("permanently corrupted run reported success")
	}
	if rep.Recoveries != 2 {
		t.Fatalf("performed %d recoveries, want MaxRecoveries=2", rep.Recoveries)
	}
}

// Shard round-trip: write, read into a fresh state, bitwise equality on
// the rank's region; and the committed-epoch scan must skip an epoch
// whose shard was corrupted on disk.
func TestShardStoreRoundTripAndCorruption(t *testing.T) {
	m := sharedMesh3
	nlev, nparts := 3, 4
	pl := NewDistPlan(m, nlev, nparts, 12345)
	dir := t.TempDir()
	st, err := NewShardStore(dir, pl)
	if err != nil {
		t.Fatal(err)
	}
	src := dycore.NewState(m, nlev)
	resilientInit(src)
	for p := 0; p < nparts; p++ {
		if err := st.WriteShard(1, p, 5, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(1, 5); err != nil {
		t.Fatal(err)
	}
	epoch, step, ok := st.LatestCommitted()
	if !ok || epoch != 1 || step != 5 {
		t.Fatalf("LatestCommitted = (%d, %d, %v), want (1, 5, true)", epoch, step, ok)
	}

	for p := 0; p < nparts; p++ {
		dst := dycore.NewState(m, nlev)
		gotStep, err := st.ReadShard(1, p, dst)
		if err != nil {
			t.Fatal(err)
		}
		if gotStep != 5 {
			t.Fatalf("shard step %d, want 5", gotStep)
		}
		ni := nlev + 1
		for _, c := range pl.DiagCells[p] {
			for k := 0; k < nlev; k++ {
				if dst.DryMass[int(c)*nlev+k] != src.DryMass[int(c)*nlev+k] {
					t.Fatalf("rank %d cell %d DryMass mismatch", p, c)
				}
			}
			for k := 0; k < ni; k++ {
				if dst.Phi[int(c)*ni+k] != src.Phi[int(c)*ni+k] {
					t.Fatalf("rank %d cell %d Phi mismatch", p, c)
				}
			}
		}
	}

	// Flip one payload byte of rank 2's shard: ReadShard must refuse,
	// and the epoch must stop being recoverable.
	path := filepath.Join(dir, "shard-e000001-r0002.grist")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadShard(1, 2, dycore.NewState(m, nlev)); err == nil {
		t.Fatal("corrupted shard was accepted")
	}
	if _, _, ok := st.LatestCommitted(); ok {
		t.Fatal("LatestCommitted offered an epoch with a corrupt shard")
	}
}

// An interrupted epoch (shards present, manifest missing) must not be
// recoverable, while the previous committed epoch still is.
func TestLatestCommittedIgnoresUncommittedEpoch(t *testing.T) {
	m := sharedMesh3
	pl := NewDistPlan(m, 2, 3, 12345)
	st, err := NewShardStore(t.TempDir(), pl)
	if err != nil {
		t.Fatal(err)
	}
	src := dycore.NewState(m, 2)
	resilientInit(src)
	for p := 0; p < 3; p++ {
		if err := st.WriteShard(1, p, 4, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(1, 4); err != nil {
		t.Fatal(err)
	}
	// Epoch 2: only two of three shards land before the "crash".
	for p := 0; p < 2; p++ {
		if err := st.WriteShard(2, p, 8, src); err != nil {
			t.Fatal(err)
		}
	}
	epoch, step, ok := st.LatestCommitted()
	if !ok || epoch != 1 || step != 4 {
		t.Fatalf("LatestCommitted = (%d, %d, %v), want the committed epoch (1, 4, true)", epoch, step, ok)
	}
}
