package core

import (
	"math"
	"testing"

	"gristgo/internal/physics"
	"gristgo/internal/synthclim"
	"gristgo/internal/tracer"
)

// TestCloudChainPopulatesSpecies: after a few hours of moist physics,
// the prognostic condensate species must all be active somewhere — cloud
// water in the warm tropics, ice/snow in cold columns, rain below.
func TestCloudChainPopulatesSpecies(t *testing.T) {
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 8}, physics.NewConventional(8), sharedMesh3)
	mod.InitializeClimate(cl)
	mod.RunHours(8, cl.Season)

	mass := map[tracer.Species]float64{}
	for _, sp := range []tracer.Species{tracer.QC, tracer.QR, tracer.QI, tracer.QS} {
		mass[sp] = mod.Tracers.GlobalTracerMass(sp)
		if math.IsNaN(mass[sp]) || mass[sp] < 0 {
			t.Fatalf("%v mass = %v", sp, mass[sp])
		}
	}
	if mass[tracer.QC] == 0 {
		t.Error("no cloud water formed")
	}
	if mass[tracer.QR] == 0 {
		t.Error("no rain water formed by autoconversion")
	}
}

// TestCloudChainRouting drives stepCloudChain directly with synthetic
// condensate production and checks the species routing: warm layers make
// cloud water then rain; cold layers make ice then snow; supercooled
// rain over ice rimes to graupel; everything melts above freezing.
func TestCloudChainRouting(t *testing.T) {
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 8}, physics.NewConventional(8), sharedMesh3)
	mod.InitializeClimate(cl)
	mod.StepPhysics(cl.Season) // populate In.T

	nlev := 8
	// Pick a warm layer and a cold layer in cell 0's column.
	warmK, coldK := -1, -1
	for k := 0; k < nlev; k++ {
		tK := mod.In.T[0*nlev+k]
		if tK > 275 && warmK < 0 {
			warmK = k
		}
		if tK < 250 && coldK < 0 {
			coldK = k
		}
	}
	if warmK < 0 || coldK < 0 {
		t.Skip("column lacks required temperature range")
	}
	for i := range mod.Out.Cond {
		mod.Out.Cond[i] = 0
	}
	mod.Out.Cond[0*nlev+warmK] = 2e-7 // kg/kg/s
	mod.Out.Cond[0*nlev+coldK] = 2e-7

	var totalPrecip float64
	for i := 0; i < 20; i++ {
		p := mod.stepCloudChain(1800)
		totalPrecip += p[0]
	}
	qc := mod.Tracers.MixingRatio(tracer.QC, 0, warmK)
	qi := mod.Tracers.MixingRatio(tracer.QI, 0, coldK)
	qr := mod.Tracers.MixingRatio(tracer.QR, 0, warmK)
	qs := mod.Tracers.MixingRatio(tracer.QS, 0, coldK)
	if qc <= 0 {
		t.Error("warm layer holds no cloud water")
	}
	if qi <= 0 {
		t.Error("cold layer holds no cloud ice")
	}
	if qr <= 0 {
		t.Error("no autoconverted rain in the warm layer")
	}
	if qs <= 0 {
		t.Error("no aggregated snow in the cold layer")
	}
	if totalPrecip <= 0 {
		t.Error("no fallout precipitation")
	}
}

// TestCloudChainWaterBudget: total water (vapor + all condensate +
// accumulated surface precipitation) is conserved by the chain up to the
// moisture sources (evaporation, nudging). We check the one-step budget
// with sources disabled.
func TestCloudChainWaterBudget(t *testing.T) {
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 8}, physics.NewConventional(8), sharedMesh3)
	mod.MoistureNudgeTau = 0 // disable the external source
	mod.InitializeClimate(cl)

	total := func() float64 {
		var s float64
		for sp := tracer.QV; sp < tracer.NumSpecies; sp++ {
			s += mod.Tracers.GlobalTracerMass(sp)
		}
		// Add accumulated precipitation (mm * area -> kg).
		for c := 0; c < mod.Mesh.NCells; c++ {
			s += mod.PrecipAccum[c] * mod.Mesh.CellArea[c] // 1 mm = 1 kg/m^2
		}
		return s
	}
	// A couple of steps so convection/condensation engage.
	mod.StepPhysics(cl.Season)
	t0 := total()
	mod.StepPhysics(cl.Season)
	t1 := total()
	// Surface evaporation still adds vapor; the budget may grow but the
	// condensate chain itself must not create or destroy water wildly.
	growth := (t1 - t0) / t0
	if growth < -0.02 || growth > 0.05 {
		t.Errorf("water budget changed by %.2f%% in one step", 100*growth)
	}
}

// TestCloudChainColdColumnsMakeIceNotWater verifies the temperature
// routing of fresh condensate.
func TestCloudChainColdColumnsMakeIceNotWater(t *testing.T) {
	cl := synthclim.ForPeriod(synthclim.Table1()[0], 0) // January
	mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 8}, physics.NewConventional(8), sharedMesh3)
	mod.InitializeClimate(cl)
	mod.RunHours(6, cl.Season)

	// In polar columns, upper-level condensate should be ice, not liquid.
	var iceAloft, liqAloft float64
	for c := 0; c < mod.Mesh.NCells; c++ {
		if mod.Mesh.CellLat[c] > 1.2 { // ~69N+
			for k := 0; k < 4; k++ {
				iceAloft += mod.Tracers.Q[tracer.QI][c*8+k]
				liqAloft += mod.Tracers.Q[tracer.QC][c*8+k]
			}
		}
	}
	if liqAloft > iceAloft {
		t.Errorf("polar upper-level condensate is liquid (%g) not ice (%g)", liqAloft, iceAloft)
	}
}
