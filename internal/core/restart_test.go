package core

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"

	"gristgo/internal/gdf"
	"gristgo/internal/physics"
	"gristgo/internal/precision"
	"gristgo/internal/synthclim"
)

// TestRestartReproducibility: run A->B->C; restart from B and re-run to
// C; the two C states must be bitwise identical (the long-integration
// requirement real climate models enforce).
func TestRestartReproducibility(t *testing.T) {
	cl := synthclim.ForPeriod(synthclim.Table1()[1], 0)

	mk := func() *Model {
		mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 6, Mode: precision.Mixed},
			physics.NewConventional(6), sharedMesh3)
		mod.InitializeClimate(cl)
		mod.SetTerrain(synthclim.Terrain)
		return mod
	}

	ref := mk()
	for i := 0; i < 3; i++ {
		ref.StepPhysics(cl.Season)
	}
	var snap bytes.Buffer
	if err := ref.WriteRestart(&snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ref.StepPhysics(cl.Season)
	}

	resumed := mk()
	if err := resumed.ReadRestart(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		resumed.StepPhysics(cl.Season)
	}

	cmp := func(name string, a, b []float64) {
		t.Helper()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] differs after restart: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
	sa, sb := ref.Engine.State(), resumed.Engine.State()
	cmp("DryMass", sa.DryMass, sb.DryMass)
	cmp("ThetaM", sa.ThetaM, sb.ThetaM)
	cmp("U", sa.U, sb.U)
	cmp("W", sa.W, sb.W)
	cmp("Phi", sa.Phi, sb.Phi)
	cmp("qv", ref.Tracers.Q[0], resumed.Tracers.Q[0])
	cmp("Tskin", ref.In.Tskin, resumed.In.Tskin)
	cmp("PrecipAccum", ref.PrecipAccum, resumed.PrecipAccum)
	if ref.TimeSec != resumed.TimeSec {
		t.Fatalf("TimeSec differs: %v vs %v", ref.TimeSec, resumed.TimeSec)
	}
}

// TestRestartRejectsCorruption: the framed restart format (magic +
// version header, CRC32 trailer) must reject every flavor of damage
// with a precise error rather than half-restoring a state.
func TestRestartRejectsCorruption(t *testing.T) {
	cl := synthclim.ForPeriod(synthclim.Table1()[0], 0)
	mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 6}, physics.Null{}, sharedMesh3)
	mod.InitializeClimate(cl)
	var buf bytes.Buffer
	if err := mod.WriteRestart(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	read := func(raw []byte) error {
		fresh := NewModelOnMesh(Config{GridLevel: 3, NLev: 6}, physics.Null{}, sharedMesh3)
		return fresh.ReadRestart(bytes.NewReader(raw))
	}
	expect := func(name string, raw []byte, wantSub string) {
		t.Helper()
		err := read(raw)
		if err == nil {
			t.Fatalf("%s: corrupt restart accepted", name)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}

	if err := read(good); err != nil {
		t.Fatalf("pristine restart rejected: %v", err)
	}
	expect("truncated", good[:5], "truncated")
	expect("truncated-payload", good[:len(good)/2], "corrupt")
	magic := append([]byte(nil), good...)
	copy(magic, "GDFX")
	expect("bad-magic", magic, "not a restart file")
	ver := append([]byte(nil), good...)
	ver[4] ^= 0xff // version bytes follow the 4-byte magic
	expect("bad-version", ver, "version")
	flip := append([]byte(nil), good...)
	flip[len(flip)/2] ^= 0x01
	expect("bit-rot", flip, "CRC32")
}

// TestRestartFileAtomicRoundTrip: WriteRestartFile lands the framed
// stream via temp+rename and ReadRestartFile restores it bitwise.
func TestRestartFileAtomicRoundTrip(t *testing.T) {
	cl := synthclim.ForPeriod(synthclim.Table1()[1], 0)
	mk := func() *Model {
		mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 6}, physics.NewConventional(6), sharedMesh3)
		mod.InitializeClimate(cl)
		return mod
	}
	ref := mk()
	ref.StepPhysics(cl.Season)
	dir := t.TempDir()
	path := dir + "/restart.grist"
	if err := ref.WriteRestartFile(path); err != nil {
		t.Fatal(err)
	}
	resumed := mk()
	if err := resumed.ReadRestartFile(path); err != nil {
		t.Fatal(err)
	}
	sa, sb := ref.Engine.State(), resumed.Engine.State()
	for i := range sa.DryMass {
		if sa.DryMass[i] != sb.DryMass[i] {
			t.Fatalf("DryMass[%d] differs after file round-trip", i)
		}
	}
	if ref.TimeSec != resumed.TimeSec {
		t.Fatalf("TimeSec differs: %v vs %v", ref.TimeSec, resumed.TimeSec)
	}
	// No temp litter left behind by the atomic write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".restart") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
	if err := resumed.ReadRestartFile(path + ".missing"); err == nil {
		t.Fatal("missing restart file accepted")
	}
}

func TestRestartRejectsMismatchedGrid(t *testing.T) {
	cl := synthclim.ForPeriod(synthclim.Table1()[0], 0)
	a := NewModelOnMesh(Config{GridLevel: 3, NLev: 6}, physics.Null{}, sharedMesh3)
	a.InitializeClimate(cl)
	var buf bytes.Buffer
	if err := a.WriteRestart(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewModelOnMesh(Config{GridLevel: 3, NLev: 8}, physics.Null{}, sharedMesh3)
	if err := b.ReadRestart(&buf); err == nil {
		t.Fatal("mismatched layer count accepted")
	}
}

func TestOrographicPrecipUpslopeOnly(t *testing.T) {
	mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 6}, physics.NewConventional(6), sharedMesh3)
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod.InitializeClimate(cl)
	mod.SetTerrain(synthclim.Terrain)
	mod.StepPhysics(cl.Season) // populate In

	oro := mod.OrographicPrecip()
	var pos, neg int
	for _, p := range oro {
		if p > 0 {
			pos++
		}
		if p < 0 {
			neg++
		}
	}
	if neg != 0 {
		t.Errorf("%d cells with negative orographic precip", neg)
	}
	if pos == 0 {
		t.Error("no upslope precipitation anywhere despite terrain and wind")
	}
	// Flat terrain: no orographic precipitation at all.
	flat := NewModelOnMesh(Config{GridLevel: 3, NLev: 6}, physics.NewConventional(6), sharedMesh3)
	flat.InitializeClimate(cl)
	flat.StepPhysics(cl.Season)
	for c, p := range flat.OrographicPrecip() {
		if p != 0 {
			t.Fatalf("flat terrain produced oro precip %v at cell %d", p, c)
		}
	}
}

func TestSetTerrainBarometricConsistency(t *testing.T) {
	mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 6}, physics.Null{}, sharedMesh3)
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod.InitializeClimate(cl)
	mod.SetTerrain(synthclim.Terrain)

	s := mod.Engine.State()
	ps := s.SurfacePressure()
	for c := 0; c < mod.Mesh.NCells; c++ {
		h := synthclim.Terrain(mod.Mesh.CellLat[c], mod.Mesh.CellLon[c])
		if h > 2000 && ps[c] > 85000 {
			t.Errorf("cell %d at %v m has surface pressure %v Pa", c, h, ps[c])
		}
		if h < 10 && math.Abs(ps[c]-1e5) > 500 {
			t.Errorf("sea-level cell %d has ps %v", c, ps[c])
		}
	}
}

func TestMoistureNudgeKeepsTropicsMoist(t *testing.T) {
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	run := func(tau float64) float64 {
		mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 6}, physics.NewConventional(6), sharedMesh3)
		mod.MoistureNudgeTau = tau
		mod.InitializeClimate(cl)
		mod.RunHours(12, cl.Season)
		// Mean low-level vapor in the tropics.
		var q float64
		n := 0
		for c := 0; c < mod.Mesh.NCells; c++ {
			if math.Abs(mod.Mesh.CellLat[c]) < 0.25 {
				q += mod.Tracers.MixingRatio(0, c, 5)
				n++
			}
		}
		return q / float64(n)
	}
	withNudge := run(6 * 3600)
	without := run(0)
	if withNudge <= without {
		t.Errorf("nudge did not maintain moisture: %g vs %g", withNudge, without)
	}
}

func TestModelWithVerticalRemap(t *testing.T) {
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 6}, physics.NewConventional(6), sharedMesh3)
	mod.RemapEvery = 2
	mod.InitializeClimate(cl)
	mass0 := mod.Engine.State().GlobalDryMass()
	mod.RunHours(4, cl.Season)
	s := mod.Engine.State()
	if rel := math.Abs(s.GlobalDryMass()-mass0) / mass0; rel > 1e-10 {
		t.Errorf("remap violated dry-mass conservation: %g", rel)
	}
	// Layers are near-uniform right after a remap-divisible step count.
	for c := 0; c < 10; c++ {
		base := c * 6
		for k := 1; k < 6; k++ {
			if d := math.Abs(s.DryMass[base+k]-s.DryMass[base]) / s.DryMass[base]; d > 0.2 {
				t.Fatalf("layers strongly non-uniform despite remap (cell %d: %g)", c, d)
			}
		}
	}
}

func TestStepPhysicsTimedMatchesUntimed(t *testing.T) {
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mk := func() *Model {
		mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 6}, physics.NewConventional(6), sharedMesh3)
		mod.InitializeClimate(cl)
		return mod
	}
	a, b := mk(), mk()
	tm := NewTimings()
	for i := 0; i < 2; i++ {
		a.StepPhysics(cl.Season)
		b.StepPhysicsTimed(cl.Season, tm)
	}
	sa, sb := a.Engine.State(), b.Engine.State()
	for i := range sa.DryMass {
		if sa.DryMass[i] != sb.DryMass[i] {
			t.Fatalf("timed path diverged at %d", i)
		}
	}
	// Timing report contains the expected components with nonzero time.
	rep := tm.Report()
	for _, want := range []string{"dynamics", "tracer_transport", "physics_Conventional", "coupling_input"} {
		if !contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if tm.Total() <= 0 {
		t.Error("no time recorded")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

func TestAquaplanetAllOcean(t *testing.T) {
	cl := synthclim.ForPeriod(synthclim.Table1()[1], 0)
	mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 6}, physics.NewConventional(6), sharedMesh3)
	mod.InitializeAquaplanet(cl)
	for c := 0; c < mod.Mesh.NCells; c++ {
		if mod.Land[c] != 0 {
			t.Fatalf("cell %d has land on the aquaplanet", c)
		}
		if math.IsNaN(mod.SSTFix[c]) {
			t.Fatalf("cell %d has no prescribed SST", c)
		}
		if mod.Engine.State().PhiSurf[c] != 0 {
			t.Fatalf("cell %d has terrain", c)
		}
	}
	// Zonal symmetry of the initial state: cells at the same latitude
	// share SST.
	type key int
	seen := map[int]float64{}
	for c := 0; c < mod.Mesh.NCells; c++ {
		b := int((mod.Mesh.CellLat[c] + 2) * 1e6)
		if v, ok := seen[b]; ok {
			if math.Abs(v-mod.SSTFix[c]) > 1e-9 {
				t.Fatalf("SST not zonally symmetric")
			}
		}
		seen[b] = mod.SSTFix[c]
	}
	// Runs stably.
	mod.RunHours(3, cl.Season)
	for _, u := range mod.Engine.State().U {
		if math.IsNaN(u) {
			t.Fatal("aquaplanet run produced NaN")
		}
	}
}

func TestWriteHistoryRoundTrip(t *testing.T) {
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 6}, physics.NewConventional(6), sharedMesh3)
	mod.InitializeClimate(cl)
	mod.RunHours(1, cl.Season)

	var buf bytes.Buffer
	if err := mod.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := gdf.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.DimSize("cell") != mod.Mesh.NCells || f.DimSize("lev") != 6 {
		t.Fatalf("dims: %+v", f.Dims)
	}
	for _, name := range []string{"lat", "lon", "ps", "tskin", "precip", "cwv", "theta", "qv"} {
		v := f.Var(name)
		if v == nil {
			t.Fatalf("missing variable %q", name)
		}
		if v.Attrs["units"] == "" {
			t.Errorf("%s has no units attribute", name)
		}
	}
	ps := f.Var("ps").Data
	want := mod.Engine.State().SurfacePressure()
	for i := range ps {
		if ps[i] != want[i] {
			t.Fatalf("ps[%d] mismatch", i)
		}
	}
	// Column water vapor is physically plausible (earth range 0-80).
	for _, v := range f.Var("cwv").Data {
		if v < 0 || v > 120 {
			t.Fatalf("cwv = %v", v)
		}
	}
}
