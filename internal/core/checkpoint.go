package core

// Distributed sharded checkpointing. Every rank of a resilient run
// periodically serializes its region of the dynamics state into a
// per-rank shard file — versioned header, raw FP64 payload, CRC32-IEEE
// trailer, written atomically (temp + rename) — and the ranks
// rendezvous on a checkpoint epoch: only after every shard of an epoch
// is durable does rank 0 commit the epoch manifest. Recovery scans
// manifests newest-first and resumes from the first epoch whose shards
// all verify, so a crash at any point (mid-shard, mid-epoch, mid-
// manifest) leaves either the previous committed epoch or a complete
// new one, never a torn mixture.
//
// A shard stores the rank's owned cells AND halo mirrors (DiagCells),
// plus its owned and ghost edges: the dycore step reads halo values
// before its first exchange of a step, so resuming bitwise requires the
// mirrors exactly as they were, not just the owned region.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"sort"
	"sync"

	"gristgo/internal/dycore"
	"gristgo/internal/vfs"
)

const (
	shardMagic   = "GRSHARD\x01"
	shardVersion = 1
)

// atomicWriteFile streams write into a temp file in path's directory,
// syncs it, and renames it over path — the canonical crash-safe
// replace on the real filesystem.
//
//grist:durable
func atomicWriteFile(path string, write func(io.Writer) error) error {
	return atomicWriteFileFS(vfs.OS, path, write)
}

// atomicWriteFileFS is atomicWriteFile over an injectable filesystem:
// every durable write path routes through here so the chaos layer can
// interpose torn writes, ENOSPC and rename reordering on exactly the
// operations a real storage failure hits. The payload is buffered so
// the file sees syscall-sized writes (a shard serializer emitting one
// row at a time would otherwise pay ~2500 write calls per shard, and
// hand the fault layer ~2500 chances per file instead of a handful).
// On any error the temp file is removed and path is untouched.
//
//grist:durable
func atomicWriteFileFS(fsys vfs.FS, path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		fsys.Remove(tmp)
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := write(bw); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return nil
}

// ShardStore reads and writes the checkpoint shards of one distributed
// plan under a directory. Methods are safe for concurrent use by
// different ranks (each rank touches only its own shard files).
type ShardStore struct {
	dir string
	pl  *DistPlan
	fs  vfs.FS

	// shardEdges[p]: the U columns rank p's kernels read — owned edges
	// plus ghost (received) edges — sorted for a stable file layout.
	shardEdges [][]int32

	// verified memoizes epochs whose every shard has passed a full
	// header+CRC verification (epoch -> step), so the serve poller's
	// per-tick LatestCommitted is O(1) after the first scan instead of
	// re-hashing every shard. WriteShard invalidates the written epoch.
	verifiedMu sync.Mutex
	verified   map[int]int
}

// NewShardStore creates (if needed) the checkpoint directory and
// precomputes each rank's shard layout from the plan.
func NewShardStore(dir string, pl *DistPlan) (*ShardStore, error) {
	return NewShardStoreFS(dir, pl, vfs.OS)
}

// NewShardStoreFS is NewShardStore over an injectable filesystem —
// the seam the storage-chaos layer decorates. Every read and write
// the store performs goes through fsys.
func NewShardStoreFS(dir string, pl *DistPlan, fsys vfs.FS) (*ShardStore, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating checkpoint dir: %w", err)
	}
	st := &ShardStore{dir: dir, pl: pl, fs: fsys, shardEdges: shardEdgeLists(pl), verified: map[int]int{}}
	return st, nil
}

// shardEdgeLists computes each rank's shard edge layout under a plan:
// owned plus ghost (received) edges, sorted for a stable file order.
func shardEdgeLists(pl *DistPlan) [][]int32 {
	lists := make([][]int32, pl.NParts)
	for p := 0; p < pl.NParts; p++ {
		edges := append([]int32(nil), pl.UEdges[p]...)
		for _, ghost := range pl.edgeRecv[p] {
			edges = append(edges, ghost...)
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
		lists[p] = edges
	}
	return lists
}

// SetPlan rebinds the store to a new distributed plan (an elastic
// repartition): shard layouts are recomputed and the verified-epoch memo
// is dropped wholesale, since shard/plan matching is plan-relative. Call
// between legs only — never while ranks are writing shards.
func (st *ShardStore) SetPlan(pl *DistPlan) {
	st.verifiedMu.Lock()
	st.verified = map[int]int{}
	st.verifiedMu.Unlock()
	st.pl = pl
	st.shardEdges = shardEdgeLists(pl)
}

// planGen returns the decomposition epoch the store's plan derives from
// (0 for static plans) — the generation stamp of committed manifests.
func (st *ShardStore) planGen() int {
	if st.pl.Decomp != nil {
		return st.pl.Decomp.Epoch
	}
	return 0
}

// Dir returns the checkpoint directory.
func (st *ShardStore) Dir() string { return st.dir }

func (st *ShardStore) shardPath(epoch, rank int) string {
	return filepath.Join(st.dir, fmt.Sprintf("shard-e%06d-r%04d.grist", epoch, rank))
}

func (st *ShardStore) manifestPath(epoch int) string {
	return filepath.Join(st.dir, fmt.Sprintf("epoch-%06d.json", epoch))
}

// shardHeader is the fixed-size preamble of a shard file, after the
// 8-byte magic: six little-endian uint32 fields.
type shardHeader struct {
	version, rank, epoch, step, ncells, nedges uint32
}

// WriteShard atomically writes rank's region of the state after `step`
// completed steps as epoch's shard.
//
//grist:bitwise
//grist:durable
func (st *ShardStore) WriteShard(epoch, rank, step int, s *dycore.State) error {
	// A rewrite (rollback-and-replay revisits epochs) invalidates any
	// memoized verification of this epoch.
	st.verifiedMu.Lock()
	delete(st.verified, epoch)
	st.verifiedMu.Unlock()
	pl := st.pl
	nlev := pl.NLev
	ni := nlev + 1
	cells := pl.DiagCells[rank]
	edges := st.shardEdges[rank]
	return atomicWriteFileFS(st.fs, st.shardPath(epoch, rank), func(w io.Writer) error {
		crc := crc32.NewIEEE()
		mw := io.MultiWriter(w, crc)
		hdr := make([]byte, len(shardMagic)+6*4)
		copy(hdr, shardMagic)
		for i, v := range []uint32{shardVersion, uint32(rank), uint32(epoch), uint32(step), uint32(len(cells)), uint32(len(edges))} {
			binary.LittleEndian.PutUint32(hdr[len(shardMagic)+4*i:], v)
		}
		if _, err := mw.Write(hdr); err != nil {
			return err
		}
		// Payload: per cell DryMass|ThetaM (nlev each) then W|Phi (nlev+1
		// each), then per edge U (nlev) — raw FP64 bits, bitwise-exact.
		buf := make([]byte, 8*(2*nlev+2*ni))
		for _, c := range cells {
			off := 0
			base, ibase := int(c)*nlev, int(c)*ni
			for k := 0; k < nlev; k++ {
				binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(s.DryMass[base+k]))
				off += 8
			}
			for k := 0; k < nlev; k++ {
				binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(s.ThetaM[base+k]))
				off += 8
			}
			for k := 0; k < ni; k++ {
				binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(s.W[ibase+k]))
				off += 8
			}
			for k := 0; k < ni; k++ {
				binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(s.Phi[ibase+k]))
				off += 8
			}
			if _, err := mw.Write(buf[:off]); err != nil {
				return err
			}
		}
		for _, e := range edges {
			base := int(e) * nlev
			for k := 0; k < nlev; k++ {
				binary.LittleEndian.PutUint64(buf[8*k:], math.Float64bits(s.U[base+k]))
			}
			if _, err := mw.Write(buf[:8*nlev]); err != nil {
				return err
			}
		}
		var trailer [4]byte
		binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
		_, err := w.Write(trailer[:])
		return err
	})
}

// loadShard reads and fully verifies one shard file, returning the raw
// payload (after the header, before the trailer) and the parsed header.
func (st *ShardStore) loadShard(epoch, rank int) (shardHeader, []byte, error) {
	var h shardHeader
	path := st.shardPath(epoch, rank)
	raw, err := st.fs.ReadFile(path)
	if err != nil {
		return h, nil, err
	}
	hdrLen := len(shardMagic) + 6*4
	if len(raw) < hdrLen+4 {
		return h, nil, fmt.Errorf("core: shard %s truncated (%d bytes)", filepath.Base(path), len(raw))
	}
	if string(raw[:len(shardMagic)]) != shardMagic {
		return h, nil, fmt.Errorf("core: %s is not a shard file (bad magic)", filepath.Base(path))
	}
	fields := [6]*uint32{&h.version, &h.rank, &h.epoch, &h.step, &h.ncells, &h.nedges}
	for i, f := range fields {
		*f = binary.LittleEndian.Uint32(raw[len(shardMagic)+4*i:])
	}
	if h.version != shardVersion {
		return h, nil, fmt.Errorf("core: shard %s has format version %d (this build reads %d)", filepath.Base(path), h.version, shardVersion)
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return h, nil, fmt.Errorf("core: shard %s corrupt: CRC32 %08x, trailer says %08x", filepath.Base(path), got, want)
	}
	pl := st.pl
	nlev := pl.NLev
	ni := nlev + 1
	if int(h.rank) != rank || int(h.epoch) != epoch ||
		int(h.ncells) != len(pl.DiagCells[rank]) || int(h.nedges) != len(st.shardEdges[rank]) {
		return h, nil, fmt.Errorf("core: shard %s does not match the plan (rank %d epoch %d, %d cells, %d edges)",
			filepath.Base(path), h.rank, h.epoch, h.ncells, h.nedges)
	}
	wantPayload := 8 * (int(h.ncells)*(2*nlev+2*ni) + int(h.nedges)*nlev)
	payload := body[hdrLen:]
	if len(payload) != wantPayload {
		return h, nil, fmt.Errorf("core: shard %s payload is %d bytes, want %d", filepath.Base(path), len(payload), wantPayload)
	}
	return h, payload, nil
}

// ReadShard restores rank's region of epoch's shard into s and returns
// the step count the shard was taken at.
func (st *ShardStore) ReadShard(epoch, rank int, s *dycore.State) (int, error) {
	h, payload, err := st.loadShard(epoch, rank)
	if err != nil {
		// A shard that no longer verifies retires any memoized
		// verification of its epoch.
		st.verifiedMu.Lock()
		delete(st.verified, epoch)
		st.verifiedMu.Unlock()
		return 0, err
	}
	pl := st.pl
	nlev := pl.NLev
	ni := nlev + 1
	off := 0
	get := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
		return v
	}
	for _, c := range pl.DiagCells[rank] {
		base, ibase := int(c)*nlev, int(c)*ni
		for k := 0; k < nlev; k++ {
			s.DryMass[base+k] = get()
		}
		for k := 0; k < nlev; k++ {
			s.ThetaM[base+k] = get()
		}
		for k := 0; k < ni; k++ {
			s.W[ibase+k] = get()
		}
		for k := 0; k < ni; k++ {
			s.Phi[ibase+k] = get()
		}
	}
	for _, e := range st.shardEdges[rank] {
		base := int(e) * nlev
		for k := 0; k < nlev; k++ {
			s.U[base+k] = get()
		}
	}
	return int(h.step), nil
}

// epochManifest is the commit record of a checkpoint epoch, written by
// rank 0 only after every rank's shard is durable. Gen is the
// decomposition epoch the shards were laid out under (absent/0 for
// static runs — the PR 5 format reads unchanged): recovery only accepts
// manifests from the current decomposition, so an elastic run that
// shrank and later grew back to an old part count cannot resurrect a
// pre-shrink epoch whose shard layout no longer matches.
type epochManifest struct {
	Epoch  int `json:"epoch"`
	Step   int `json:"step"`
	NParts int `json:"nparts"`
	Gen    int `json:"gen,omitempty"`
}

// Commit atomically writes epoch's manifest, marking it recoverable.
//
//grist:bitwise
//grist:durable
func (st *ShardStore) Commit(epoch, step int) error {
	m := epochManifest{Epoch: epoch, Step: step, NParts: st.pl.NParts, Gen: st.planGen()}
	return atomicWriteFileFS(st.fs, st.manifestPath(epoch), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(&m)
	})
}

// Redistribute re-shards a committed epoch for a new plan: the old
// plan's shards are read back and assembled owner-truth (each entity
// taken from the rank that owned it, never from a halo mirror, so the
// assembly is bitwise-faithful in any precision mode), the store is
// rebound to newPl, every new rank's shard is written, shards of
// retired ranks are pruned, and the epoch is re-committed under the new
// generation. After it returns, LatestCommitted under the new plan
// resumes from exactly this epoch.
//
//grist:bitwise
//grist:durable
func (st *ShardStore) Redistribute(epoch, step int, newPl *DistPlan) error {
	old := st.pl
	nlev := old.NLev
	ni := nlev + 1
	s := dycore.NewState(old.Mesh, nlev)
	tmp := dycore.NewState(old.Mesh, nlev)
	for p := 0; p < old.NParts; p++ {
		if _, err := st.ReadShard(epoch, p, tmp); err != nil {
			return fmt.Errorf("core: redistributing epoch %d: %w", epoch, err)
		}
		for _, c := range old.TendCells[p] {
			base, ibase := int(c)*nlev, int(c)*ni
			copy(s.DryMass[base:base+nlev], tmp.DryMass[base:base+nlev])
			copy(s.ThetaM[base:base+nlev], tmp.ThetaM[base:base+nlev])
			copy(s.W[ibase:ibase+ni], tmp.W[ibase:ibase+ni])
			copy(s.Phi[ibase:ibase+ni], tmp.Phi[ibase:ibase+ni])
		}
		for _, e := range old.UEdges[p] {
			base := int(e) * nlev
			copy(s.U[base:base+nlev], tmp.U[base:base+nlev])
		}
	}
	// Captured before SetPlan retires the old plan: only the part count
	// survives the generation change, for pruning below.
	oldParts := old.NParts
	st.SetPlan(newPl)
	for p := 0; p < newPl.NParts; p++ {
		if err := st.WriteShard(epoch, p, step, s); err != nil {
			return fmt.Errorf("core: redistributing epoch %d: %w", epoch, err)
		}
	}
	// A shrink leaves the retired ranks' shard files behind; drop them so
	// the directory holds exactly the live epoch layout.
	for p := newPl.NParts; p < oldParts; p++ {
		st.fs.Remove(st.shardPath(epoch, p))
	}
	return st.Commit(epoch, step)
}

// LatestCommitted returns the newest committed epoch whose every shard
// verifies (header, CRC, plan match), with the step it was taken at.
// ok is false when no usable epoch exists — recovery then replays from
// the initial state. Only manifests of the current plan count: part
// count and decomposition generation must both match, so epochs
// sharded under a retired membership are never resumed. Full shard
// verification runs once per epoch: an epoch that has already verified
// is served from the memo after a cheap existence check of its shard
// files, so a poller calling this every tick pays one manifest listing
// plus stats, not a re-hash of every shard (WriteShard invalidates the
// memo for rewritten epochs; a shard file disappearing — a shrink
// pruned it, an operator removed it — drops the memo too).
func (st *ShardStore) LatestCommitted() (epoch, step int, ok bool) {
	names, err := st.fs.Glob(filepath.Join(st.dir, "epoch-*.json"))
	if err != nil || len(names) == 0 {
		return 0, 0, false
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		raw, err := st.fs.ReadFile(name)
		if err != nil {
			continue
		}
		var m epochManifest
		if json.Unmarshal(raw, &m) != nil || m.NParts != st.pl.NParts || m.Gen != st.planGen() {
			continue
		}
		st.verifiedMu.Lock()
		memoStep, memoized := st.verified[m.Epoch]
		st.verifiedMu.Unlock()
		if memoized {
			if memoStep != m.Step {
				continue // manifest rewritten since verification
			}
			if st.shardsPresent(m.Epoch, m.NParts) {
				return m.Epoch, m.Step, true
			}
			// A verified shard no longer exists on disk: retire the memo
			// and fall through to the full re-verification, which will
			// reject the epoch and move on to an older one.
			st.verifiedMu.Lock()
			delete(st.verified, m.Epoch)
			st.verifiedMu.Unlock()
		}
		usable := true
		for p := 0; p < m.NParts; p++ {
			h, _, err := st.loadShard(m.Epoch, p)
			if err != nil || int(h.step) != m.Step {
				usable = false
				break
			}
		}
		if usable {
			st.verifiedMu.Lock()
			st.verified[m.Epoch] = m.Step
			st.verifiedMu.Unlock()
			return m.Epoch, m.Step, true
		}
	}
	return 0, 0, false
}

// shardsPresent reports whether every shard file of an epoch exists —
// the cheap liveness check behind the verified-epoch memo.
func (st *ShardStore) shardsPresent(epoch, nparts int) bool {
	for p := 0; p < nparts; p++ {
		if _, err := st.fs.Stat(st.shardPath(epoch, p)); err != nil {
			return false
		}
	}
	return true
}

// EpochInfo identifies one committed checkpoint epoch: its number and
// the step count it was taken at.
type EpochInfo struct {
	Epoch int
	Step  int
}

// CommittedEpochs lists every manifest-committed epoch of the current
// plan, ascending, WITHOUT verifying shard contents. This is the serve
// poller's view of what the producer claims exists: a corrupt epoch
// still appears here (its manifest committed fine) so the poller can
// attempt it, fail verification, and quarantine it — whereas
// LatestCommitted silently skips non-verifying epochs and would hide
// the corruption entirely. The error return distinguishes "directory
// unreadable" (IO fault, worth backoff) from "no epochs yet" (empty
// slice, nil error).
func (st *ShardStore) CommittedEpochs() ([]EpochInfo, error) {
	names, err := st.fs.Glob(filepath.Join(st.dir, "epoch-*.json"))
	if err != nil {
		return nil, fmt.Errorf("core: listing epoch manifests: %w", err)
	}
	var out []EpochInfo
	for _, name := range names {
		raw, err := st.fs.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("core: reading manifest %s: %w", filepath.Base(name), err)
		}
		var m epochManifest
		if json.Unmarshal(raw, &m) != nil || m.NParts != st.pl.NParts || m.Gen != st.planGen() {
			continue
		}
		out = append(out, EpochInfo{Epoch: m.Epoch, Step: m.Step})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out, nil
}
