package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gristgo/internal/dycore"
	"gristgo/internal/fault"
	"gristgo/internal/vfs"
)

// CommittedEpochs must list manifests ascending without verifying
// shards — a corrupt epoch stays visible (that is the whole point: the
// serve poller needs to see it to quarantine it) while manifests from
// another plan are filtered out.
func TestCommittedEpochs(t *testing.T) {
	m := sharedMesh3
	nlev, nparts := 3, 2
	pl := NewDistPlan(m, nlev, nparts, 12345)
	dir := t.TempDir()
	st, err := NewShardStore(dir, pl)
	if err != nil {
		t.Fatal(err)
	}
	if eps, err := st.CommittedEpochs(); err != nil || len(eps) != 0 {
		t.Fatalf("empty dir CommittedEpochs = (%v, %v), want ([], nil)", eps, err)
	}
	src := dycore.NewState(m, nlev)
	resilientInit(src)
	for _, e := range []struct{ epoch, step int }{{3, 15}, {1, 5}, {2, 10}} {
		for p := 0; p < nparts; p++ {
			if err := st.WriteShard(e.epoch, p, e.step, src); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Commit(e.epoch, e.step); err != nil {
			t.Fatal(err)
		}
	}
	// A manifest from a different plan (wrong part count) must not appear.
	if err := os.WriteFile(filepath.Join(dir, "epoch-000009.json"),
		[]byte(`{"epoch":9,"step":45,"nparts":7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Corrupt epoch 2's shard: it must STILL be listed.
	corruptFile(t, filepath.Join(dir, "shard-e000002-r0000.grist"))

	eps, err := st.CommittedEpochs()
	if err != nil {
		t.Fatal(err)
	}
	want := []EpochInfo{{1, 5}, {2, 10}, {3, 15}}
	if len(eps) != len(want) {
		t.Fatalf("CommittedEpochs = %v, want %v", eps, want)
	}
	for i := range want {
		if eps[i] != want[i] {
			t.Fatalf("CommittedEpochs[%d] = %v, want %v", i, eps[i], want[i])
		}
	}
}

// A torn write through the fault layer must fail WriteShard cleanly:
// error surfaced, no shard file under the final name, no temp litter.
func TestWriteShardTornWriteIsAtomic(t *testing.T) {
	m := sharedMesh3
	nlev, nparts := 3, 2
	pl := NewDistPlan(m, nlev, nparts, 12345)
	dir := t.TempDir()
	ffs := fault.NewFS(vfs.OS, 7, fault.FSProfile{WriteTornProb: 1})
	st, err := NewShardStoreFS(dir, pl, ffs)
	if err != nil {
		t.Fatal(err)
	}
	src := dycore.NewState(m, nlev)
	resilientInit(src)
	if err := st.WriteShard(1, 0, 5, src); err == nil {
		t.Fatal("WriteShard succeeded under WriteTornProb=1")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "shard-") || strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("torn WriteShard left %q behind", e.Name())
		}
	}
	if _, _, counts := ffs.FSEvents(); counts["fstorn"] == 0 {
		t.Fatal("no fstorn event recorded")
	}
}

// Rename-before-sync reordering is the silent one: WriteShard reports
// success, the shard file exists under its final name, but its data
// pages were lost — ReadShard must catch it via CRC, LatestCommitted
// must skip the epoch, and CommittedEpochs must still list it.
func TestWriteShardRenameTornIsDetected(t *testing.T) {
	m := sharedMesh3
	nlev, nparts := 3, 2
	pl := NewDistPlan(m, nlev, nparts, 12345)
	dir := t.TempDir()

	// Epoch 1 lands clean (decorator inactive), epoch 2 through the tear.
	ffs := fault.NewFS(vfs.OS, 9, fault.FSProfile{RenameTornProb: 1})
	ffs.SetActive(false)
	st, err := NewShardStoreFS(dir, pl, ffs)
	if err != nil {
		t.Fatal(err)
	}
	src := dycore.NewState(m, nlev)
	resilientInit(src)
	for p := 0; p < nparts; p++ {
		if err := st.WriteShard(1, p, 5, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(1, 5); err != nil {
		t.Fatal(err)
	}

	ffs.SetActive(true)
	for p := 0; p < nparts; p++ {
		if err := st.WriteShard(2, p, 10, src); err != nil {
			t.Fatalf("rename-torn WriteShard must lie about success, got %v", err)
		}
	}
	ffs.SetActive(false)
	if err := st.Commit(2, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, counts := ffs.FSEvents(); counts["fsrenametorn"] == 0 {
		t.Fatal("no fsrenametorn event recorded")
	}

	got := dycore.NewState(m, nlev)
	if _, err := st.ReadShard(2, 0, got); err == nil {
		t.Fatal("ReadShard verified a rename-torn shard")
	}
	if epoch, step, ok := st.LatestCommitted(); !ok || epoch != 1 || step != 5 {
		t.Fatalf("LatestCommitted = (%d, %d, %v), want the clean epoch (1, 5, true)", epoch, step, ok)
	}
	eps, err := st.CommittedEpochs()
	if err != nil || len(eps) != 2 || eps[1].Epoch != 2 {
		t.Fatalf("CommittedEpochs = (%v, %v), want both epochs listed", eps, err)
	}
}
