package core

import (
	"io"
	"math"

	"gristgo/internal/dycore"
	"gristgo/internal/gdf"
	"gristgo/internal/tracer"
)

// WriteHistory emits a GDF history record of the current model state:
// grid coordinates, surface pressure, skin and lowest-layer temperature,
// column water vapor, accumulated precipitation rate, and 3-D potential
// temperature and vapor — the standard contents of a model history file.
func (mod *Model) WriteHistory(w io.Writer) error {
	m := mod.Mesh
	nlev := mod.Cfg.NLev
	s := mod.Engine.State()

	f := &gdf.File{}
	f.AddDim("cell", m.NCells)
	f.AddDim("lev", nlev)

	add := func(name, units, long string, dims []string, data []float64) error {
		return f.AddVar(gdf.Variable{
			Name:  name,
			Attrs: map[string]string{"units": units, "long_name": long},
			Dims:  dims, Data: data,
		})
	}

	latDeg := make([]float64, m.NCells)
	lonDeg := make([]float64, m.NCells)
	for c := 0; c < m.NCells; c++ {
		latDeg[c] = m.CellLat[c] * 180 / math.Pi
		lonDeg[c] = m.CellLon[c] * 180 / math.Pi
	}
	cell := []string{"cell"}
	if err := add("lat", "degrees_north", "cell center latitude", cell, latDeg); err != nil {
		return err
	}
	if err := add("lon", "degrees_east", "cell center longitude", cell, lonDeg); err != nil {
		return err
	}
	if err := add("ps", "Pa", "dry surface pressure", cell, s.SurfacePressure()); err != nil {
		return err
	}
	if err := add("tskin", "K", "surface skin temperature", cell,
		append([]float64(nil), mod.In.Tskin...)); err != nil {
		return err
	}
	if err := add("precip", "mm/day", "mean precipitation rate", cell, mod.PrecipRate()); err != nil {
		return err
	}

	cwv := make([]float64, m.NCells)
	theta := make([]float64, m.NCells*nlev)
	qv := make([]float64, m.NCells*nlev)
	for c := 0; c < m.NCells; c++ {
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			theta[i] = s.ThetaM[i] / s.DryMass[i]
			qv[i] = mod.Tracers.MixingRatio(tracer.QV, c, k)
			cwv[c] += qv[i] * s.DryMass[i] / dycore.Gravity
		}
	}
	if err := add("cwv", "kg/m2", "column water vapor", cell, cwv); err != nil {
		return err
	}
	col := []string{"cell", "lev"}
	if err := add("theta", "K", "potential temperature", col, theta); err != nil {
		return err
	}
	if err := add("qv", "kg/kg", "water vapor mixing ratio", col, qv); err != nil {
		return err
	}
	return f.Write(w)
}
