package core

import (
	"math"
	"testing"
	"time"

	"gristgo/internal/diag"
	"gristgo/internal/dycore"
	"gristgo/internal/physics"
	"gristgo/internal/precision"
	"gristgo/internal/synthclim"
	"gristgo/internal/telemetry"
)

// spanNames collects the set of span names present in a recorder.
func spanNames(rec *telemetry.Recorder) map[string]int {
	out := map[string]int{}
	for _, ev := range rec.Snapshot() {
		out[ev.Name]++
	}
	return out
}

func TestEnableTelemetryStepMetricsAndSpans(t *testing.T) {
	mod := newTestModel(t, 8, precision.DP)
	mod.Cfg.Steps = scaledSteps(3)
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod.InitializeClimate(cl)
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(1 << 12)
	var trips []diag.HealthEvent
	mod.EnableTelemetry(reg, rec, func(ev diag.HealthEvent) { trips = append(trips, ev) })

	const steps = 3
	for i := 0; i < steps; i++ {
		mod.StepPhysics(cl.Season)
	}

	if got := reg.Counter("grist_physics_steps_total").Value(); got != steps {
		t.Errorf("grist_physics_steps_total = %d, want %d", got, steps)
	}
	if sypd := reg.Gauge("grist_sypd").Value(); sypd <= 0 {
		t.Errorf("grist_sypd = %v, want > 0", sypd)
	}
	if sim := reg.Gauge("grist_sim_seconds").Value(); sim <= 0 {
		t.Errorf("grist_sim_seconds = %v, want > 0", sim)
	}
	if n := reg.Histogram("grist_step_latency_seconds").Count(); n != steps {
		t.Errorf("step latency count = %d, want %d", n, steps)
	}

	names := spanNames(rec)
	for _, want := range []string{"physics_step", "dyn_step", "interior", "tracer_step"} {
		if names[want] == 0 {
			t.Errorf("no %q spans recorded (got %v)", want, names)
		}
	}
	// A stable idealized run must not trip any sentinel.
	if len(trips) != 0 {
		t.Errorf("unexpected sentinel trips on clean run: %+v", trips)
	}
	// Step attribution: the last recorded physics_step carries the final
	// step index.
	var lastStep int64
	for _, ev := range rec.Snapshot() {
		if ev.Name == "physics_step" && ev.Step > lastStep {
			lastStep = ev.Step
		}
	}
	if lastStep != steps {
		t.Errorf("last physics_step attributed to step %d, want %d", lastStep, steps)
	}
}

func TestEnableTelemetryTimedPath(t *testing.T) {
	mod := newTestModel(t, 8, precision.DP)
	mod.Cfg.Steps = scaledSteps(3)
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod.InitializeClimate(cl)
	reg := telemetry.NewRegistry()
	tm := NewTimingsOn(reg)
	mod.EnableTelemetry(reg, nil, nil)
	mod.StepPhysicsTimed(cl.Season, tm)
	if got := reg.Counter("grist_physics_steps_total").Value(); got != 1 {
		t.Errorf("grist_physics_steps_total = %d, want 1 after StepPhysicsTimed", got)
	}
	if d, _ := tm.Get("dynamics"); d <= 0 {
		t.Error("timed path lost component attribution")
	}
}

func TestRunDistributedDynamicsObserved(t *testing.T) {
	const nlev, nparts, steps = 4, 4, 2
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(1 << 14)
	tm := NewTimingsOn(reg)
	init := func(s *dycore.State) {
		s.IsothermalRest(290)
		s.AddSolidBodyWind(15)
	}

	_, st := RunDistributedDynamicsObserved(sharedMesh3, nlev, nparts, precision.DP,
		init, steps, 60.0, tm, reg, rec)

	if st.Rounds == 0 || st.BytesSent == 0 {
		t.Fatalf("no exchange traffic recorded: %+v", st)
	}
	share := reg.Gauge("grist_comm_share").Value()
	if share <= 0 || share >= 1 {
		t.Errorf("grist_comm_share = %v, want in (0,1)", share)
	}
	if li := reg.Gauge("grist_load_imbalance").Value(); li < 1 {
		t.Errorf("grist_load_imbalance = %v, want >= 1", li)
	}
	if bps := reg.Gauge("grist_halo_bytes_per_step").Value(); bps != float64(st.BytesSent)/steps {
		t.Errorf("grist_halo_bytes_per_step = %v, want %v", bps, float64(st.BytesSent)/steps)
	}

	// Spans must be attributed across all ranks.
	ranks := map[int32]bool{}
	names := map[string]int{}
	for _, ev := range rec.Snapshot() {
		ranks[ev.Rank] = true
		names[ev.Name]++
	}
	if len(ranks) != nparts {
		t.Errorf("spans from %d ranks, want %d", len(ranks), nparts)
	}
	for _, want := range []string{"dyn_step", "halo_pack", "halo_wait", "halo_unpack"} {
		if names[want] == 0 {
			t.Errorf("no %q spans in distributed run (got %v)", want, names)
		}
	}
}

// degradeStub is a physics scheme that records DegradeFor calls, so the
// sentinel→degradation wiring can be tested without training a suite.
type degradeStub struct {
	physics.Null
	benched []int
}

func (d *degradeStub) DegradeFor(n int) { d.benched = append(d.benched, n) }

// TestSentinelTripDegradesPhysics: a health-sentinel trip must bench a
// Degradable physics suite for the following step; clean steps must not.
func TestSentinelTripDegradesPhysics(t *testing.T) {
	stub := &degradeStub{}
	mod := NewModelOnMesh(Config{GridLevel: 3, NLev: 6}, stub, sharedMesh3)
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod.InitializeClimate(cl)
	reg := telemetry.NewRegistry()
	mod.EnableTelemetry(reg, nil, nil)

	mod.StepPhysics(cl.Season)
	if len(stub.benched) != 0 {
		t.Fatalf("clean step degraded physics: %v", stub.benched)
	}

	mod.Engine.State().W[0] = math.NaN()
	mod.StepPhysics(cl.Season)
	if len(stub.benched) != 1 || stub.benched[0] != 1 {
		t.Fatalf("sentinel trip did not bench physics for one step: %v", stub.benched)
	}
	if mod.tel.Health.TotalTrips() == 0 {
		t.Fatal("no sentinel trip recorded despite NaN in state")
	}
}

func TestLoadImbalance(t *testing.T) {
	if got := LoadImbalance(nil); got != 0 {
		t.Errorf("LoadImbalance(nil) = %v", got)
	}
	if got := LoadImbalance([]time.Duration{0, 0}); got != 0 {
		t.Errorf("LoadImbalance(zeros) = %v", got)
	}
	even := []time.Duration{time.Second, time.Second}
	if got := LoadImbalance(even); got != 1 {
		t.Errorf("LoadImbalance(even) = %v, want 1", got)
	}
	skew := []time.Duration{time.Second, 3 * time.Second}
	if got := LoadImbalance(skew); got != 1.5 {
		t.Errorf("LoadImbalance(skewed) = %v, want 1.5", got)
	}
}
