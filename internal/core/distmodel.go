package core

import (
	"sort"

	"gristgo/internal/comm"
	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
	"gristgo/internal/precision"
	"gristgo/internal/tracer"
)

// ModelPlan extends the dynamics plan with the tracer-transport work and
// exchange sets. The FCT limiter's dependency chain (limited flux at an
// owned cell needs the limiter coefficients of ring-1 neighbors, which
// need provisional ratios at ring-2, which need tracer values at ring-3)
// sets the halo depths.
type ModelPlan struct {
	*DistPlan

	TracCells [][]int32 // per rank: owned + rings 1-2 (compute region)
	TracEdges [][]int32 // per rank: edges of the compute region

	// Tracer cell exchange (rings 1-3) and mass-flux edge exchange
	// (ghost edges of the compute region), per rank keyed by peer.
	qSend, qRecv       []map[int][]int32
	fluxSend, fluxRecv []map[int][]int32
}

// NewModelPlan builds the combined plan.
func NewModelPlan(m *mesh.Mesh, nlev, nparts int, seed int64) *ModelPlan {
	base := NewDistPlan(m, nlev, nparts, seed)
	pl := &ModelPlan{
		DistPlan:  base,
		TracCells: make([][]int32, nparts),
		TracEdges: make([][]int32, nparts),
		qSend:     make([]map[int][]int32, nparts),
		qRecv:     make([]map[int][]int32, nparts),
		fluxSend:  make([]map[int][]int32, nparts),
		fluxRecv:  make([]map[int][]int32, nparts),
	}
	part := base.Decomp.Part
	for p := 0; p < nparts; p++ {
		pl.qSend[p] = map[int][]int32{}
		pl.qRecv[p] = map[int][]int32{}
		pl.fluxSend[p] = map[int][]int32{}
		pl.fluxRecv[p] = map[int][]int32{}
	}

	edgeOwner := func(e int32) int { return int(part[m.EdgeCell[e][0]]) }

	for p := 0; p < nparts; p++ {
		ring2 := base.Decomp.HaloRings(m, p, 2)
		pl.TracCells[p] = append(append([]int32(nil), base.Decomp.Owned[p]...), ring2...)

		// Compute-region edges, deduplicated.
		seen := map[int32]bool{}
		for _, c := range pl.TracCells[p] {
			for _, e := range m.CellEdges(c) {
				if !seen[e] {
					seen[e] = true
					pl.TracEdges[p] = append(pl.TracEdges[p], e)
				}
			}
		}
		sort.Slice(pl.TracEdges[p], func(i, j int) bool { return pl.TracEdges[p][i] < pl.TracEdges[p][j] })

		// Tracer value halo: rings 1-3 grouped by owner.
		for _, c := range base.Decomp.HaloRings(m, p, 3) {
			pl.qRecv[p][int(part[c])] = append(pl.qRecv[p][int(part[c])], c)
		}
		// Mass-flux ghosts: compute-region edges owned elsewhere.
		for _, e := range pl.TracEdges[p] {
			if o := edgeOwner(e); o != p {
				pl.fluxRecv[p][o] = append(pl.fluxRecv[p][o], e)
			}
		}
	}
	// Mirror receive lists into send lists.
	for p := 0; p < nparts; p++ {
		for o, cells := range pl.qRecv[p] {
			pl.qSend[o][p] = cells
		}
		for o, edges := range pl.fluxRecv[p] {
			pl.fluxSend[o][p] = edges
		}
	}
	return pl
}

// tracerPeers returns the sorted peer set of rank p for the tracer
// exchange.
func (pl *ModelPlan) tracerPeers(p int) []int {
	set := map[int]bool{}
	for q := range pl.qSend[p] {
		set[q] = true
	}
	for q := range pl.qRecv[p] {
		set[q] = true
	}
	for q := range pl.fluxSend[p] {
		set[q] = true
	}
	for q := range pl.fluxRecv[p] {
		set[q] = true
	}
	peers := make([]int, 0, len(set))
	for q := range set {
		peers = append(peers, q)
	}
	sort.Ints(peers)
	return peers
}

// exchangeTracers refreshes tracer values + tracer mass (rings 1-3) and
// the averaged mass flux (ghost edges) before a tracer step.
func (pl *ModelPlan) exchangeTracers(r *comm.Rank, f *tracer.Field, flux []float64, tag int) {
	p := r.ID()
	nlev := f.NLev
	peers := pl.tracerPeers(p)
	for _, q := range peers {
		var buf []float64
		for _, c := range pl.qSend[p][q] {
			base := int(c) * nlev
			buf = append(buf, f.Mass[base:base+nlev]...)
			for t := range f.Q {
				buf = append(buf, f.Q[t][base:base+nlev]...)
			}
		}
		for _, e := range pl.fluxSend[p][q] {
			base := int(e) * nlev
			buf = append(buf, flux[base:base+nlev]...)
		}
		r.Send(q, tag, buf)
	}
	for _, q := range peers {
		buf := r.Recv(q, tag)
		pos := 0
		for _, c := range pl.qRecv[p][q] {
			base := int(c) * nlev
			pos += copy(f.Mass[base:base+nlev], buf[pos:])
			for t := range f.Q {
				pos += copy(f.Q[t][base:base+nlev], buf[pos:])
			}
		}
		for _, e := range pl.fluxRecv[p][q] {
			base := int(e) * nlev
			pos += copy(flux[base:base+nlev], buf[pos:])
		}
		if pos != len(buf) {
			panic("core: tracer exchange size mismatch")
		}
	}
}

// RunDistributedModel integrates dynamics plus tracer transport across
// nparts ranks: nTrac tracer rounds, each sub-cycling nDyn dynamics
// steps of dtDyn and advecting tracers over the elapsed interval with
// the rank-locally accumulated, halo-completed mass flux. The merged
// final state and tracer field are returned; results match the serial
// model to rounding.
func RunDistributedModel(m *mesh.Mesh, nlev, nparts int, mode precision.Mode,
	initFn func(*dycore.State, *tracer.Field), nTrac, nDyn int, dtDyn float64) (*dycore.State, *tracer.Field) {

	pl := NewModelPlan(m, nlev, nparts, 12345)
	finalS := dycore.NewState(m, nlev)
	finalT := tracer.NewField(m, nlev, finalS.DryMass)

	comm.Run(nparts, func(r *comm.Rank) {
		p := r.ID()
		eng := dycore.New(m, nlev, mode)
		trans := tracer.New(m, nlev, mode)
		field := tracer.NewField(m, nlev, eng.State().DryMass)
		initFn(eng.State(), field)

		ex := &exchanger{pl: pl.DistPlan, rank: r, state: eng.State(), peers: pl.peersOf(p), tag: 1000}
		eng.SetOwned(&dycore.OwnedSets{
			TendCells: pl.TendCells[p],
			DiagCells: pl.DiagCells[p],
			FluxEdges: pl.FluxEdges[p],
			UEdges:    pl.UEdges[p],
			Hook:      ex.exchange,
		})
		trans.SetOwned(&tracer.OwnedSets{
			Cells:  pl.TracCells[p],
			Commit: pl.TendCells[p],
			Edges:  pl.TracEdges[p],
		})

		tracTag := 5_000_000
		for it := 0; it < nTrac; it++ {
			eng.ResetMassFluxAccum()
			for id := 0; id < nDyn; id++ {
				eng.Step(dtDyn)
			}
			acc := eng.MassFluxAccum()
			n := float64(eng.AccumSteps())
			avg := make([]float64, len(acc))
			for i, a := range acc {
				avg[i] = a / n
			}
			pl.exchangeTracers(r, field, avg, tracTag)
			tracTag++
			trans.Step(field, avg, float64(nDyn)*dtDyn)
		}

		// Gather owned regions to rank 0.
		const gatherTag = 9_500_000
		if p == 0 {
			mergeOwned(finalS, eng.State(), pl.DistPlan, 0)
			mergeTracers(finalT, field, pl.TendCells[0], nlev)
			for q := 1; q < nparts; q++ {
				buf := r.Recv(q, gatherTag)
				pos := 0
				for _, c := range pl.TendCells[q] {
					base := int(c) * nlev
					pos += copy(finalT.Mass[base:base+nlev], buf[pos:])
					for t := range finalT.Q {
						pos += copy(finalT.Q[t][base:base+nlev], buf[pos:])
					}
					pos += copy(finalS.DryMass[base:base+nlev], buf[pos:])
					pos += copy(finalS.ThetaM[base:base+nlev], buf[pos:])
				}
			}
		} else {
			var buf []float64
			for _, c := range pl.TendCells[p] {
				base := int(c) * nlev
				buf = append(buf, field.Mass[base:base+nlev]...)
				for t := range field.Q {
					buf = append(buf, field.Q[t][base:base+nlev]...)
				}
				buf = append(buf, eng.State().DryMass[base:base+nlev]...)
				buf = append(buf, eng.State().ThetaM[base:base+nlev]...)
			}
			r.Send(0, gatherTag, buf)
		}
	})
	return finalS, finalT
}

// mergeTracers copies the owned tracer columns of src into dst.
func mergeTracers(dst, src *tracer.Field, cells []int32, nlev int) {
	for _, c := range cells {
		base := int(c) * nlev
		copy(dst.Mass[base:base+nlev], src.Mass[base:base+nlev])
		for t := range dst.Q {
			copy(dst.Q[t][base:base+nlev], src.Q[t][base:base+nlev])
		}
	}
}
