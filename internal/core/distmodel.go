package core

import (
	"fmt"
	"sort"

	"gristgo/internal/comm"
	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
	"gristgo/internal/precision"
	"gristgo/internal/tracer"
)

// ModelPlan extends the dynamics plan with the tracer-transport work and
// exchange sets. The FCT limiter's dependency chain (limited flux at an
// owned cell needs the limiter coefficients of ring-1 neighbors, which
// need provisional ratios at ring-2, which need tracer values at ring-3)
// sets the halo depths.
type ModelPlan struct {
	*DistPlan

	TracCells [][]int32 // per rank: owned + rings 1-2 (compute region)
	TracEdges [][]int32 // per rank: edges of the compute region

	// Tracer cell exchange (rings 1-3) and mass-flux edge exchange
	// (ghost edges of the compute region), per rank keyed by peer.
	qSend, qRecv       []map[int][]int32
	fluxSend, fluxRecv []map[int][]int32
}

// NewModelPlan builds the combined plan.
func NewModelPlan(m *mesh.Mesh, nlev, nparts int, seed int64) *ModelPlan {
	base := NewDistPlan(m, nlev, nparts, seed)
	pl := &ModelPlan{
		DistPlan:  base,
		TracCells: make([][]int32, nparts),
		TracEdges: make([][]int32, nparts),
		qSend:     make([]map[int][]int32, nparts),
		qRecv:     make([]map[int][]int32, nparts),
		fluxSend:  make([]map[int][]int32, nparts),
		fluxRecv:  make([]map[int][]int32, nparts),
	}
	part := base.Decomp.Part
	for p := 0; p < nparts; p++ {
		pl.qSend[p] = map[int][]int32{}
		pl.qRecv[p] = map[int][]int32{}
		pl.fluxSend[p] = map[int][]int32{}
		pl.fluxRecv[p] = map[int][]int32{}
	}

	edgeOwner := func(e int32) int { return int(part[m.EdgeCell[e][0]]) }

	for p := 0; p < nparts; p++ {
		ring2 := base.Decomp.HaloRings(m, p, 2)
		pl.TracCells[p] = append(append([]int32(nil), base.Decomp.Owned[p]...), ring2...)

		// Compute-region edges, deduplicated.
		seen := map[int32]bool{}
		for _, c := range pl.TracCells[p] {
			for _, e := range m.CellEdges(c) {
				if !seen[e] {
					seen[e] = true
					pl.TracEdges[p] = append(pl.TracEdges[p], e)
				}
			}
		}
		sort.Slice(pl.TracEdges[p], func(i, j int) bool { return pl.TracEdges[p][i] < pl.TracEdges[p][j] })

		// Tracer value halo: rings 1-3 grouped by owner.
		for _, c := range base.Decomp.HaloRings(m, p, 3) {
			pl.qRecv[p][int(part[c])] = append(pl.qRecv[p][int(part[c])], c)
		}
		// Mass-flux ghosts: compute-region edges owned elsewhere.
		for _, e := range pl.TracEdges[p] {
			if o := edgeOwner(e); o != p {
				pl.fluxRecv[p][o] = append(pl.fluxRecv[p][o], e)
			}
		}
	}
	// Mirror receive lists into send lists.
	for p := 0; p < nparts; p++ {
		for o, cells := range pl.qRecv[p] {
			pl.qSend[o][p] = cells
		}
		for o, edges := range pl.fluxRecv[p] {
			pl.fluxSend[o][p] = edges
		}
	}
	return pl
}

// tracerPeers returns the sorted peer set of rank p for the tracer
// exchange.
func (pl *ModelPlan) tracerPeers(p int) []int {
	set := map[int]bool{}
	for q := range pl.qSend[p] {
		set[q] = true
	}
	for q := range pl.qRecv[p] {
		set[q] = true
	}
	for q := range pl.fluxSend[p] {
		set[q] = true
	}
	for q := range pl.fluxRecv[p] {
		set[q] = true
	}
	peers := make([]int, 0, len(set))
	for q := range set {
		peers = append(peers, q)
	}
	sort.Ints(peers)
	return peers
}

// newTracerExchanger builds the unified exchanger of the tracer
// transport: tracer mass and mixing ratios over the rings-1-3 cell halo,
// plus the averaged mass flux over the compute-region ghost edges. The
// accumulated mass flux is the one tracer-equation term that must stay
// FP64 under every mode (§3.4.2); tracer values travel FP32 under
// precision.Mixed. flux must be the caller's persistent buffer — the
// registration captures the slice.
func newTracerExchanger(pl *ModelPlan, r *comm.Rank, f *tracer.Field, flux []float64, mode precision.Mode) *comm.HaloExchanger {
	p := r.ID()
	peers := pl.tracerPeers(p)
	ex := comm.NewExchanger(r, mode, peers)
	cellSet := ex.AddIndexSet(peerLists(pl.qSend[p], peers), peerLists(pl.qRecv[p], peers))
	edgeSet := ex.AddIndexSet(peerLists(pl.fluxSend[p], peers), peerLists(pl.fluxRecv[p], peers))
	nlev := f.NLev
	ex.RegisterSlice("tracer_mass", f.Mass, nlev, cellSet, false)
	for t := range f.Q {
		ex.RegisterSlice(fmt.Sprintf("q%d", t), f.Q[t], nlev, cellSet, false)
	}
	ex.RegisterSlice("mass_flux_avg", flux, nlev, edgeSet, true)
	return ex
}

// RunDistributedModel integrates dynamics plus tracer transport across
// nparts ranks: nTrac tracer rounds, each sub-cycling nDyn dynamics
// steps of dtDyn and advecting tracers over the elapsed interval with
// the rank-locally accumulated, halo-completed mass flux. The merged
// final state and tracer field are returned; results match the serial
// model to rounding.
func RunDistributedModel(m *mesh.Mesh, nlev, nparts int, mode precision.Mode,
	initFn func(*dycore.State, *tracer.Field), nTrac, nDyn int, dtDyn float64) (*dycore.State, *tracer.Field) {

	pl := NewModelPlan(m, nlev, nparts, 12345)
	finalS := dycore.NewState(m, nlev)
	finalT := tracer.NewField(m, nlev, finalS.DryMass)

	comm.Run(nparts, func(r *comm.Rank) {
		p := r.ID()
		eng := dycore.New(m, nlev, mode)
		trans := tracer.New(m, nlev, mode)
		field := tracer.NewField(m, nlev, eng.State().DryMass)
		initFn(eng.State(), field)

		ex := newStateExchanger(pl.DistPlan, r, eng.State(), mode)
		eng.SetOwned(&dycore.OwnedSets{
			TendCells: pl.TendCells[p],
			DiagCells: pl.DiagCells[p],
			FluxEdges: pl.FluxEdges[p],
			UEdges:    pl.UEdges[p],
			Start:     ex.Start,
			Finish:    ex.Finish,
		})
		trans.SetOwned(&tracer.OwnedSets{
			Cells:  pl.TracCells[p],
			Commit: pl.TendCells[p],
			Edges:  pl.TracEdges[p],
		})

		// avg is persistent: the tracer exchanger's registration captures
		// it, and a stable buffer keeps the steady state allocation-free.
		avg := make([]float64, len(eng.MassFluxAccum()))
		tex := newTracerExchanger(pl, r, field, avg, mode)

		for it := 0; it < nTrac; it++ {
			eng.ResetMassFluxAccum()
			for id := 0; id < nDyn; id++ {
				eng.Step(dtDyn)
			}
			acc := eng.MassFluxAccum()
			n := float64(eng.AccumSteps())
			for i, a := range acc {
				avg[i] = a / n
			}
			tex.Exchange()
			trans.Step(field, avg, float64(nDyn)*dtDyn)
		}

		// Gather owned regions to rank 0.
		parts := r.Gather(0, packOwnedModel(eng.State(), field, pl, p))
		if p == 0 {
			for q, buf := range parts {
				unpackOwnedModel(finalS, finalT, pl, q, buf)
			}
		}
	})
	return finalS, finalT
}

// packOwnedModel serializes rank p's owned tracer columns and prognostic
// thermodynamic state into one flat buffer.
func packOwnedModel(s *dycore.State, f *tracer.Field, pl *ModelPlan, p int) []float64 {
	nlev := pl.NLev
	buf := make([]float64, 0, len(pl.TendCells[p])*(len(f.Q)+3)*nlev)
	for _, c := range pl.TendCells[p] {
		base := int(c) * nlev
		buf = append(buf, f.Mass[base:base+nlev]...)
		for t := range f.Q {
			buf = append(buf, f.Q[t][base:base+nlev]...)
		}
		buf = append(buf, s.DryMass[base:base+nlev]...)
		buf = append(buf, s.ThetaM[base:base+nlev]...)
	}
	return buf
}

// unpackOwnedModel writes rank p's packed region into the merged state
// and tracer field.
func unpackOwnedModel(dst *dycore.State, dt *tracer.Field, pl *ModelPlan, p int, buf []float64) {
	nlev := pl.NLev
	pos := 0
	for _, c := range pl.TendCells[p] {
		base := int(c) * nlev
		pos += copy(dt.Mass[base:base+nlev], buf[pos:])
		for t := range dt.Q {
			pos += copy(dt.Q[t][base:base+nlev], buf[pos:])
		}
		pos += copy(dst.DryMass[base:base+nlev], buf[pos:])
		pos += copy(dst.ThetaM[base:base+nlev], buf[pos:])
	}
	if pos != len(buf) {
		panic("core: model gather size mismatch")
	}
}
