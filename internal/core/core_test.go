package core

import (
	"math"
	"testing"

	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
	"gristgo/internal/physics"
	"gristgo/internal/precision"
	"gristgo/internal/synthclim"
	"gristgo/internal/tracer"
)

var sharedMesh3 = mesh.New(3).ReorderBFS()

func newTestModel(t testing.TB, nlev int, mode precision.Mode) *Model {
	t.Helper()
	cfg := Config{GridLevel: 3, NLev: nlev, Mode: mode}
	return NewModelOnMesh(cfg, physics.NewConventional(nlev), sharedMesh3)
}

func TestScaledStepsConsistent(t *testing.T) {
	// G12 must reproduce Table 2 (whose ratios are deliberately
	// non-integral: trac/dyn = 7.5).
	st := scaledSteps(12)
	if st.Dyn != 4 || st.Trac != 30 || st.Phy != 60 || st.Rad != 180 {
		t.Errorf("G12 steps: %+v", st)
	}
	// Effective sub-cycling must be exactly nested at every level.
	for level := 3; level <= 12; level++ {
		cfg := Config{GridLevel: level, NLev: 4, Steps: scaledSteps(level)}
		mod := &Model{Cfg: cfg}
		nDyn, nTrac, dtTrac, dtPhy := mod.EffectiveSteps()
		if nDyn < 1 || nTrac < 1 {
			t.Fatalf("level %d: zero sub-cycles", level)
		}
		if math.Abs(dtTrac-float64(nDyn)*cfg.Steps.Dyn) > 1e-9 {
			t.Errorf("level %d: tracer step not a whole number of dyn steps", level)
		}
		if math.Abs(dtPhy-float64(nTrac)*dtTrac) > 1e-9 {
			t.Errorf("level %d: physics step not a whole number of tracer steps", level)
		}
	}
}

func TestModelInitializeClimatePhysical(t *testing.T) {
	mod := newTestModel(t, 8, precision.DP)
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod.InitializeClimate(cl)

	s := mod.Engine.State()
	for c := 0; c < mod.Mesh.NCells; c++ {
		for k := 0; k < 8; k++ {
			th := s.Theta(c, k)
			if th < 150 || th > 2500 {
				t.Fatalf("theta out of range at (%d,%d): %v", c, k, th)
			}
		}
	}
	// Tropics moister than poles.
	var qTrop, qPole float64
	var nTrop, nPole int
	for c := 0; c < mod.Mesh.NCells; c++ {
		q := mod.In.Qv[c*8+7]
		_ = q
		qv := mod.Tracers.MixingRatio(0, c, 7)
		switch {
		case math.Abs(mod.Mesh.CellLat[c]) < 0.2:
			qTrop += qv
			nTrop++
		case math.Abs(mod.Mesh.CellLat[c]) > 1.2:
			qPole += qv
			nPole++
		}
	}
	if qTrop/float64(nTrop) <= qPole/float64(nPole) {
		t.Error("tropics not moister than poles")
	}
}

func TestModelShortRunStableAndRains(t *testing.T) {
	mod := newTestModel(t, 8, precision.DP)
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod.InitializeClimate(cl)

	mass0 := mod.Engine.State().GlobalDryMass()
	mod.RunHours(6, cl.Season)
	s := mod.Engine.State()

	// Stability.
	for i, d := range s.DryMass {
		if d <= 0 || math.IsNaN(d) {
			t.Fatalf("bad dry mass at %d: %v", i, d)
		}
	}
	for _, u := range s.U {
		if math.IsNaN(u) || math.Abs(u) > 300 {
			t.Fatalf("wind blew up: %v", u)
		}
	}
	// Dry mass conserved (physics does not add dry air).
	if rel := math.Abs(s.GlobalDryMass()-mass0) / mass0; rel > 1e-10 {
		t.Errorf("dry mass drifted %g", rel)
	}
	// Some precipitation somewhere in 6 h on a moist planet.
	var total float64
	for _, p := range mod.PrecipRate() {
		total += p
	}
	if total <= 0 {
		t.Error("no precipitation anywhere after 6 hours")
	}
}

func TestCosZenithDayNight(t *testing.T) {
	mod := newTestModel(t, 4, precision.DP)
	season := 0.0
	day := 0
	night := 0
	for c := 0; c < mod.Mesh.NCells; c++ {
		cz := mod.CosZenith(c, season)
		if cz < 0 || cz > 1 {
			t.Fatalf("cos zenith out of range: %v", cz)
		}
		if cz > 0 {
			day++
		} else {
			night++
		}
	}
	// Roughly half the planet lit.
	frac := float64(day) / float64(day+night)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("lit fraction %v", frac)
	}
}

func TestCellWindsRecoverUniformFlow(t *testing.T) {
	m := sharedMesh3
	nlev := 2
	u := make([]float64, m.NEdges*nlev)
	// A constant 3-space vector field (its tangential projection is a
	// smooth flow well-defined everywhere, including at the poles).
	vel := mesh.Vec3{X: 9, Y: -5, Z: 3}
	for e := 0; e < m.NEdges; e++ {
		for k := 0; k < nlev; k++ {
			u[e*nlev+k] = vel.Dot(m.EdgeNormal[e])
		}
	}
	uc, vc := CellWinds(m, u, nlev)
	for c := int32(0); c < int32(m.NCells); c++ {
		east, north := mesh.TangentBasis(m.CellPos[c])
		wantU := vel.Dot(east)
		wantV := vel.Dot(north)
		i := int(c) * nlev
		if math.Abs(uc[i]-wantU) > 0.8 || math.Abs(vc[i]-wantV) > 0.8 {
			t.Fatalf("cell %d winds (%.2f, %.2f), want (%.2f, %.2f)", c, uc[i], vc[i], wantU, wantV)
		}
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	m := sharedMesh3
	nlev := 6
	init := func(s *dycore.State) {
		s.IsothermalRest(295)
		s.AddThermalBubble(0.4, 1.2, 0.25, 6)
		s.AddSolidBodyWind(18)
	}
	steps := 5
	dt := 90.0

	serialEng := dycore.New(m, nlev, precision.DP)
	init(serialEng.State())
	for i := 0; i < steps; i++ {
		serialEng.Step(dt)
	}
	serial := serialEng.State()

	for _, nparts := range []int{2, 4, 7} {
		dist := RunDistributedDynamics(m, nlev, nparts, precision.DP, init, steps, dt)
		cmp := func(name string, a, b []float64, scale float64) {
			for i := range a {
				if d := math.Abs(a[i] - b[i]); d > 1e-9*scale {
					t.Fatalf("nparts=%d: %s[%d] differs: %g vs %g", nparts, name, i, a[i], b[i])
				}
			}
		}
		cmp("DryMass", dist.DryMass, serial.DryMass, 1e4)
		cmp("ThetaM", dist.ThetaM, serial.ThetaM, 1e6)
		cmp("U", dist.U, serial.U, 10)
		cmp("W", dist.W, serial.W, 1)
		cmp("Phi", dist.Phi, serial.Phi, 1e5)
	}
}

func TestDistributedMixedPrecision(t *testing.T) {
	m := sharedMesh3
	nlev := 4
	init := func(s *dycore.State) {
		s.IsothermalRest(290)
		s.AddSolidBodyWind(20)
	}
	dist := RunDistributedDynamics(m, nlev, 3, precision.Mixed, init, 3, 60)
	for _, d := range dist.DryMass {
		if d <= 0 || math.IsNaN(d) {
			t.Fatal("mixed-precision distributed run produced bad mass")
		}
	}
}

func TestDistPlanCoversMesh(t *testing.T) {
	m := sharedMesh3
	pl := NewDistPlan(m, 4, 5, 7)
	cellCount := 0
	for p := 0; p < 5; p++ {
		cellCount += len(pl.TendCells[p])
	}
	if cellCount != m.NCells {
		t.Errorf("owned cells cover %d of %d", cellCount, m.NCells)
	}
	edgeSeen := make(map[int32]int)
	for p := 0; p < 5; p++ {
		for _, e := range pl.UEdges[p] {
			edgeSeen[e]++
		}
	}
	if len(edgeSeen) != m.NEdges {
		t.Errorf("owned edges cover %d of %d", len(edgeSeen), m.NEdges)
	}
	for e, n := range edgeSeen {
		if n != 1 {
			t.Fatalf("edge %d owned by %d ranks", e, n)
		}
	}
}

// TestDistributedModelMatchesSerial validates the distributed dynamics +
// tracer transport against the serial pipeline: tracer fields and dry
// mass agree to rounding across rank counts.
func TestDistributedModelMatchesSerial(t *testing.T) {
	m := sharedMesh3
	nlev := 4
	init := func(s *dycore.State, f *tracer.Field) {
		s.IsothermalRest(295)
		s.AddSolidBodyWind(25)
		s.AddThermalBubble(0.3, 1.0, 0.25, 4)
		copy(f.Mass, s.DryMass)
		for c := 0; c < m.NCells; c++ {
			for k := 0; k < nlev; k++ {
				f.SetMixingRatio(tracer.QV, c, k, 0.01*math.Exp(-5*math.Pow(m.CellLat[c]-0.2, 2)))
				f.SetMixingRatio(tracer.QC, c, k, 1e-4)
			}
		}
	}
	nTrac, nDyn, dt := 3, 4, 90.0

	// Serial reference.
	engS := dycore.New(m, nlev, precision.DP)
	transS := tracer.New(m, nlev, precision.DP)
	fieldS := tracer.NewField(m, nlev, engS.State().DryMass)
	init(engS.State(), fieldS)
	for it := 0; it < nTrac; it++ {
		engS.ResetMassFluxAccum()
		for id := 0; id < nDyn; id++ {
			engS.Step(dt)
		}
		acc := engS.MassFluxAccum()
		avg := make([]float64, len(acc))
		for i, a := range acc {
			avg[i] = a / float64(engS.AccumSteps())
		}
		transS.Step(fieldS, avg, float64(nDyn)*dt)
	}

	for _, nparts := range []int{2, 5} {
		stateD, fieldD := RunDistributedModel(m, nlev, nparts, precision.DP, init, nTrac, nDyn, dt)
		for i := range fieldS.Q[tracer.QV] {
			if d := math.Abs(fieldD.Q[tracer.QV][i] - fieldS.Q[tracer.QV][i]); d > 1e-9 {
				t.Fatalf("nparts=%d: qv[%d] differs by %g", nparts, i, d)
			}
			if d := math.Abs(fieldD.Q[tracer.QC][i] - fieldS.Q[tracer.QC][i]); d > 1e-9 {
				t.Fatalf("nparts=%d: qc[%d] differs by %g", nparts, i, d)
			}
		}
		for i := range fieldS.Mass {
			if d := math.Abs(fieldD.Mass[i] - fieldS.Mass[i]); d > 1e-8 {
				t.Fatalf("nparts=%d: tracer mass[%d] differs by %g", nparts, i, d)
			}
		}
		for i := range stateD.DryMass {
			if d := math.Abs(stateD.DryMass[i] - engS.State().DryMass[i]); d > 1e-8 {
				t.Fatalf("nparts=%d: dry mass[%d] differs by %g", nparts, i, d)
			}
		}
	}
}
