package core

import (
	"sort"
	"sync"
	"time"

	"gristgo/internal/comm"
	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
	"gristgo/internal/partition"
	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// DistPlan is the precomputed exchange plan of a distributed dynamics
// run: per-rank ownership sets and the per-peer cell/edge lists moved on
// every halo exchange. The mesh topology is shared read-only across
// ranks; each rank advances only its owned cells and edges.
type DistPlan struct {
	Mesh   *mesh.Mesh
	NLev   int
	NParts int
	Decomp *partition.Decomposition

	TendCells [][]int32 // per rank: owned cells
	DiagCells [][]int32 // per rank: owned + one-ring halo
	UEdges    [][]int32 // per rank: owned edges (owner = part of EdgeCell[0])
	FluxEdges [][]int32 // per rank: edges of owned cells

	// Exchange lists: for rank p and peer q,
	// cellSend[p][q] = owned cells of p that q mirrors;
	// edgeSend[p][q] = owned edges of p that q mirrors.
	cellSend []map[int][]int32
	edgeSend []map[int][]int32
	cellRecv []map[int][]int32
	edgeRecv []map[int][]int32
}

// NewDistPlan partitions the mesh into nparts domains and derives all
// ownership and exchange lists. It panics when the partitioner cannot
// fill nparts non-empty parts; elastic callers that must handle that
// case decompose first and use NewDistPlanFromDecomp.
func NewDistPlan(m *mesh.Mesh, nlev, nparts int, seed int64) *DistPlan {
	return NewDistPlanFromDecomp(m, nlev, partition.MustDecompose(m, nparts, seed))
}

// NewDistPlanFromDecomp derives a distributed plan from an existing
// decomposition — the run-time path: an elastic run recomputes the
// decomposition over the surviving/joined member set and rebuilds the
// plan from it, keeping the mesh and state arrays shared.
func NewDistPlanFromDecomp(m *mesh.Mesh, nlev int, d *partition.Decomposition) *DistPlan {
	nparts := d.NParts
	pl := &DistPlan{
		Mesh: m, NLev: nlev, NParts: nparts, Decomp: d,
		TendCells: make([][]int32, nparts),
		DiagCells: make([][]int32, nparts),
		UEdges:    make([][]int32, nparts),
		FluxEdges: make([][]int32, nparts),
		cellSend:  make([]map[int][]int32, nparts),
		edgeSend:  make([]map[int][]int32, nparts),
		cellRecv:  make([]map[int][]int32, nparts),
		edgeRecv:  make([]map[int][]int32, nparts),
	}
	part := d.Part

	edgeOwner := func(e int32) int32 { return part[m.EdgeCell[e][0]] }

	for p := 0; p < nparts; p++ {
		pl.TendCells[p] = d.Owned[p]
		pl.DiagCells[p] = append(append([]int32(nil), d.Owned[p]...), d.Halo[p]...)
		pl.cellSend[p] = map[int][]int32{}
		pl.edgeSend[p] = map[int][]int32{}
		pl.cellRecv[p] = map[int][]int32{}
		pl.edgeRecv[p] = map[int][]int32{}
	}

	// Cell exchange: q receives its halo cells from their owners.
	for q := 0; q < nparts; q++ {
		for owner, cells := range d.Peers[q] {
			pl.cellRecv[q][int(owner)] = cells
			pl.cellSend[owner][q] = cells
		}
	}

	// Edge ownership and ghost-edge exchange.
	for p := 0; p < nparts; p++ {
		seen := make(map[int32]bool)
		var fluxEdges []int32
		for _, c := range d.Owned[p] {
			for _, e := range m.CellEdges(c) {
				if !seen[e] {
					seen[e] = true
					fluxEdges = append(fluxEdges, e)
				}
			}
		}
		// Ghost edges additionally include edges of halo cells (needed
		// for kinetic energy at halo cells and vorticity at boundary
		// vertices).
		ghostSeen := make(map[int32]bool)
		for _, c := range pl.DiagCells[p] {
			for _, e := range m.CellEdges(c) {
				if ghostSeen[e] {
					continue
				}
				ghostSeen[e] = true
				owner := int(edgeOwner(e))
				if owner == p {
					pl.UEdges[p] = append(pl.UEdges[p], e)
				} else {
					pl.edgeRecv[p][owner] = append(pl.edgeRecv[p][owner], e)
				}
			}
		}
		sort.Slice(fluxEdges, func(i, j int) bool { return fluxEdges[i] < fluxEdges[j] })
		pl.FluxEdges[p] = fluxEdges
		sort.Slice(pl.UEdges[p], func(i, j int) bool { return pl.UEdges[p][i] < pl.UEdges[p][j] })
	}
	// Mirror edge receive lists into the owners' send lists (sorted for
	// a deterministic wire order).
	for p := 0; p < nparts; p++ {
		for owner, edges := range pl.edgeRecv[p] {
			es := append([]int32(nil), edges...)
			sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })
			pl.edgeRecv[p][owner] = es
			pl.edgeSend[owner][p] = es
		}
	}
	return pl
}

// peersOf returns the sorted union of cell/edge exchange peers of rank p.
func (pl *DistPlan) peersOf(p int) []int {
	set := map[int]bool{}
	for q := range pl.cellSend[p] {
		set[q] = true
	}
	for q := range pl.cellRecv[p] {
		set[q] = true
	}
	for q := range pl.edgeSend[p] {
		set[q] = true
	}
	for q := range pl.edgeRecv[p] {
		set[q] = true
	}
	peers := make([]int, 0, len(set))
	for q := range set {
		peers = append(peers, q)
	}
	sort.Ints(peers)
	return peers
}

// peerLists converts a per-peer map of entity lists into per-position
// lists aligned with the sorted peer order (nil where a peer exchanges
// nothing for this set).
func peerLists(m map[int][]int32, peers []int) [][]int32 {
	out := make([][]int32, len(peers))
	for i, q := range peers {
		out[i] = m[q]
	}
	return out
}

// Layout returns rank p's halo-exchange layout under this plan: the
// sorted peer list, the cell index set (set id 0) and the edge index
// set (set id 1). The layout is the decomposition handle an exchanger
// consumes — build with comm.NewExchangerWithLayout, swap after a
// repartition with HaloExchanger.SwapLayout (set ids are stable across
// epochs because every plan emits the same two sets in the same order).
func (pl *DistPlan) Layout(p int) *comm.Layout {
	peers := pl.peersOf(p)
	return &comm.Layout{Peers: peers, Sets: []comm.IndexSet{
		{Send: peerLists(pl.cellSend[p], peers), Recv: peerLists(pl.cellRecv[p], peers)},
		{Send: peerLists(pl.edgeSend[p], peers), Recv: peerLists(pl.edgeRecv[p], peers)},
	}}
}

// Set ids of the state exchanger layout (see Layout).
const (
	stateCellSet = 0
	stateEdgeSet = 1
)

// OwnedSets returns rank p's dycore entity sets under this plan (Start/
// Finish hooks unset — the caller binds them to its exchanger). After a
// repartition, passing the new plan's sets to Engine.SetOwned rebuilds
// the interior/boundary split (overlap.go taint sets) for the new
// ownership.
func (pl *DistPlan) OwnedSets(p int) *dycore.OwnedSets {
	return &dycore.OwnedSets{
		TendCells: pl.TendCells[p],
		DiagCells: pl.DiagCells[p],
		FluxEdges: pl.FluxEdges[p],
		UEdges:    pl.UEdges[p],
	}
}

// newStateExchanger builds the unified halo exchanger of the dynamics
// state: one message per peer carries the cell halo (DryMass, ThetaM, W,
// Phi) and the ghost edges (U) — the linked-list aggregation of §3.1.3.
// Sensitivity follows §3.4.2: Phi feeds the FP64 pressure-gradient
// force and stays double on the wire; the advective state and winds
// travel FP32 under precision.Mixed.
func newStateExchanger(pl *DistPlan, r *comm.Rank, s *dycore.State, mode precision.Mode) *comm.HaloExchanger {
	ex := comm.NewExchangerWithLayout(r, mode, pl.Layout(r.ID()))
	nlev := pl.NLev
	ni := nlev + 1
	ex.RegisterSlice("dry_mass", s.DryMass, nlev, stateCellSet, false)
	ex.RegisterSlice("theta_m", s.ThetaM, nlev, stateCellSet, false)
	ex.RegisterSlice("w", s.W, ni, stateCellSet, false)
	ex.RegisterSlice("phi", s.Phi, ni, stateCellSet, true)
	ex.RegisterSlice("u", s.U, nlev, stateEdgeSet, false)
	return ex
}

// distOpts selects driver variants shared by the public entry points.
type distOpts struct {
	blocking bool                // force blocking rounds (no overlap)
	tim      *Timings            // drain per-rank halo wait times
	stats    *comm.ExchangeStats // aggregate rounds/bytes/wait
	reg      *telemetry.Registry // publish comm share / imbalance gauges
	rec      *telemetry.Recorder // per-rank halo + dynamics spans (one shared ring)
	recs     []*telemetry.Recorder
	// recs, when non-nil (length nparts), gives every rank its OWN ring
	// — the multi-node model, where each node records locally and a
	// postmortem merges the rings (internal/obs). Spans are then stamped
	// with the rank's own step counter, so cross-rank alignment by step
	// survives ranks drifting apart.
}

// RunDistributedDynamics integrates the dry dynamics for the given number
// of steps across nparts ranks (goroutines), each owning one domain of
// the decomposition, with halo exchanges after every internal stage
// overlapped with interior compute. The initial state is produced by
// initFn on every rank identically; the merged final state is returned.
// The result matches a serial run of the same configuration to rounding.
func RunDistributedDynamics(m *mesh.Mesh, nlev, nparts int, mode precision.Mode,
	initFn func(*dycore.State), steps int, dt float64) *dycore.State {
	return runDistributedDynamics(m, nlev, nparts, mode, initFn, steps, dt, distOpts{})
}

// RunDistributedDynamicsTimed is RunDistributedDynamics with measured
// communication accounting: every rank's dynamics wall time accumulates
// under "dynamics" and its exchanger wait under "halo_wait" in tm, and
// the aggregate exchange statistics are returned. MeasuredCommShare(tm)
// turns the two counters into the measured communication fraction that
// replaces the modeled one in perfmodel.
func RunDistributedDynamicsTimed(m *mesh.Mesh, nlev, nparts int, mode precision.Mode,
	initFn func(*dycore.State), steps int, dt float64, tm *Timings) (*dycore.State, comm.ExchangeStats) {
	var st comm.ExchangeStats
	s := runDistributedDynamics(m, nlev, nparts, mode, initFn, steps, dt, distOpts{tim: tm, stats: &st})
	return s, st
}

// RunDistributedDynamicsObserved is the fully instrumented variant: in
// addition to the Timed accounting it attributes per-rank halo and
// dynamics spans to rec (rank = partition index) and publishes the
// run-level gauges into reg — grist_comm_share (measured wait/compute
// fraction), grist_load_imbalance (max/mean per-rank wall time) and
// grist_halo_bytes_per_step. Either sink may be nil.
func RunDistributedDynamicsObserved(m *mesh.Mesh, nlev, nparts int, mode precision.Mode,
	initFn func(*dycore.State), steps int, dt float64, tm *Timings,
	reg *telemetry.Registry, rec *telemetry.Recorder) (*dycore.State, comm.ExchangeStats) {
	var st comm.ExchangeStats
	s := runDistributedDynamics(m, nlev, nparts, mode, initFn, steps, dt,
		distOpts{tim: tm, stats: &st, reg: reg, rec: rec})
	return s, st
}

// RunDistributedDynamicsTraced is the cross-rank observability variant:
// every rank records into its own flight-recorder ring (recs[p], length
// nparts), with spans stamped by the rank's own step counter — the
// input shape internal/obs merges into a global per-step timeline and
// critical path. reg (may be nil) additionally receives the Observed
// gauges plus grist_trace_dropped_total summed over the rings.
func RunDistributedDynamicsTraced(m *mesh.Mesh, nlev, nparts int, mode precision.Mode,
	initFn func(*dycore.State), steps int, dt float64,
	recs []*telemetry.Recorder, reg *telemetry.Registry) (*dycore.State, comm.ExchangeStats) {
	if len(recs) != nparts {
		panic("core: RunDistributedDynamicsTraced needs one recorder per rank")
	}
	var st comm.ExchangeStats
	s := runDistributedDynamics(m, nlev, nparts, mode, initFn, steps, dt,
		distOpts{stats: &st, reg: reg, recs: recs})
	return s, st
}

// MeasuredCommShare returns the measured communication fraction of a
// timed distributed run: summed halo wait over summed dynamics wall time
// across ranks.
func MeasuredCommShare(tm *Timings) float64 {
	wait, _ := tm.Get("halo_wait")
	total, _ := tm.Get("dynamics")
	if total <= 0 {
		return 0
	}
	return float64(wait) / float64(total)
}

func runDistributedDynamics(m *mesh.Mesh, nlev, nparts int, mode precision.Mode,
	initFn func(*dycore.State), steps int, dt float64, opt distOpts) *dycore.State {

	pl := NewDistPlan(m, nlev, nparts, 12345)
	final := dycore.NewState(m, nlev)
	var mu sync.Mutex
	rankWall := make([]time.Duration, nparts)
	var agg comm.ExchangeStats

	comm.Run(nparts, func(r *comm.Rank) {
		p := r.ID()
		eng := dycore.New(m, nlev, mode)
		initFn(eng.State())
		ex := newStateExchanger(pl, r, eng.State(), mode)
		rec := opt.rec
		if opt.recs != nil {
			rec = opt.recs[p]
		}
		if rec != nil {
			ex.SetTelemetry(rec, int32(p))
			eng.SetTelemetry(rec, int32(p))
		}
		o := pl.OwnedSets(p)
		if opt.blocking {
			o.Start = ex.Exchange
		} else {
			o.Start, o.Finish = ex.Start, ex.Finish
		}
		eng.SetOwned(o)
		t0 := time.Now()
		for i := 0; i < steps; i++ {
			if rec != nil {
				// Stamp this rank's spans with ITS step counter (1-based):
				// the recorder-wide SetStep cannot attribute concurrently
				// advancing ranks.
				eng.SetTelemetryStep(int64(i + 1))
				ex.SetTelemetryStep(int64(i + 1))
			}
			eng.Step(dt)
		}
		wall := time.Since(t0)
		rankWall[p] = wall

		if opt.stats != nil || opt.tim != nil || opt.reg != nil {
			// One DrainStats yields the rank's whole window, so the
			// aggregate stats and the timing counters describe the same
			// rounds (a Stats read plus a separate reset could lose rounds
			// completed in between).
			st := ex.DrainStats()
			mu.Lock()
			agg.Rounds += st.Rounds
			agg.BytesSent += st.BytesSent
			agg.Wait += st.Wait
			if opt.tim != nil {
				opt.tim.Add("dynamics", wall)
				if st.Rounds > 0 {
					opt.tim.AddCalls("halo_wait", st.Wait, st.Rounds)
				}
			}
			mu.Unlock()
		}

		gatherState(r, final, eng.State(), pl)
	})
	if opt.stats != nil {
		opt.stats.Rounds += agg.Rounds
		opt.stats.BytesSent += agg.BytesSent
		opt.stats.Wait += agg.Wait
	}
	if opt.reg != nil {
		var wallSum time.Duration
		for _, w := range rankWall {
			wallSum += w
		}
		if wallSum > 0 {
			opt.reg.Gauge("grist_comm_share").Set(float64(agg.Wait) / float64(wallSum))
		}
		opt.reg.Gauge("grist_load_imbalance").Set(LoadImbalance(rankWall))
		if steps > 0 {
			opt.reg.Gauge("grist_halo_bytes_per_step").Set(float64(agg.BytesSent) / float64(steps))
		}
		// Ring-wrap drops poison postmortem attribution silently; surface
		// them as a counter so a scrape (or the obs report) can warn.
		telemetry.NewDropCounter(opt.reg, opt.rec).Publish()
		for _, rec := range opt.recs {
			telemetry.NewDropCounter(opt.reg, rec).Publish()
		}
	}
	return final
}

// gatherState collects every rank's owned region into dst on rank 0 via
// the Gather collective (ranks other than 0 leave dst untouched).
func gatherState(r *comm.Rank, dst, src *dycore.State, pl *DistPlan) {
	parts := r.Gather(0, packOwnedState(src, pl, r.ID()))
	if r.ID() != 0 {
		return
	}
	for q, buf := range parts {
		unpackOwnedState(dst, pl, q, buf)
	}
}

// packOwnedState serializes rank p's owned prognostic region (cells:
// DryMass, ThetaM, W, Phi; edges: U) into one flat buffer.
func packOwnedState(s *dycore.State, pl *DistPlan, p int) []float64 {
	nlev := pl.NLev
	ni := nlev + 1
	buf := make([]float64, 0, len(pl.TendCells[p])*2*(nlev+ni)+len(pl.UEdges[p])*nlev)
	for _, c := range pl.TendCells[p] {
		base := int(c) * nlev
		ibase := int(c) * ni
		buf = append(buf, s.DryMass[base:base+nlev]...)
		buf = append(buf, s.ThetaM[base:base+nlev]...)
		buf = append(buf, s.W[ibase:ibase+ni]...)
		buf = append(buf, s.Phi[ibase:ibase+ni]...)
	}
	for _, e := range pl.UEdges[p] {
		base := int(e) * nlev
		buf = append(buf, s.U[base:base+nlev]...)
	}
	return buf
}

// unpackOwnedState writes rank p's packed region into dst.
func unpackOwnedState(dst *dycore.State, pl *DistPlan, p int, buf []float64) {
	nlev := pl.NLev
	ni := nlev + 1
	pos := 0
	for _, c := range pl.TendCells[p] {
		base := int(c) * nlev
		ibase := int(c) * ni
		pos += copy(dst.DryMass[base:base+nlev], buf[pos:])
		pos += copy(dst.ThetaM[base:base+nlev], buf[pos:])
		pos += copy(dst.W[ibase:ibase+ni], buf[pos:])
		pos += copy(dst.Phi[ibase:ibase+ni], buf[pos:])
	}
	for _, e := range pl.UEdges[p] {
		base := int(e) * nlev
		pos += copy(dst.U[base:base+nlev], buf[pos:])
	}
	if pos != len(buf) {
		panic("core: distributed gather size mismatch")
	}
}
