package core

import (
	"sort"

	"gristgo/internal/comm"
	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
	"gristgo/internal/partition"
	"gristgo/internal/precision"
)

// DistPlan is the precomputed exchange plan of a distributed dynamics
// run: per-rank ownership sets and the per-peer cell/edge lists moved on
// every halo exchange. The mesh topology is shared read-only across
// ranks; each rank advances only its owned cells and edges.
type DistPlan struct {
	Mesh   *mesh.Mesh
	NLev   int
	NParts int
	Decomp *partition.Decomposition

	TendCells [][]int32 // per rank: owned cells
	DiagCells [][]int32 // per rank: owned + one-ring halo
	UEdges    [][]int32 // per rank: owned edges (owner = part of EdgeCell[0])
	FluxEdges [][]int32 // per rank: edges of owned cells

	// Exchange lists: for rank p and peer q,
	// cellSend[p][q] = owned cells of p that q mirrors;
	// edgeSend[p][q] = owned edges of p that q mirrors.
	cellSend []map[int][]int32
	edgeSend []map[int][]int32
	cellRecv []map[int][]int32
	edgeRecv []map[int][]int32
}

// NewDistPlan partitions the mesh into nparts domains and derives all
// ownership and exchange lists.
func NewDistPlan(m *mesh.Mesh, nlev, nparts int, seed int64) *DistPlan {
	d := partition.Decompose(m, nparts, seed)
	pl := &DistPlan{
		Mesh: m, NLev: nlev, NParts: nparts, Decomp: d,
		TendCells: make([][]int32, nparts),
		DiagCells: make([][]int32, nparts),
		UEdges:    make([][]int32, nparts),
		FluxEdges: make([][]int32, nparts),
		cellSend:  make([]map[int][]int32, nparts),
		edgeSend:  make([]map[int][]int32, nparts),
		cellRecv:  make([]map[int][]int32, nparts),
		edgeRecv:  make([]map[int][]int32, nparts),
	}
	part := d.Part

	edgeOwner := func(e int32) int32 { return part[m.EdgeCell[e][0]] }

	for p := 0; p < nparts; p++ {
		pl.TendCells[p] = d.Owned[p]
		pl.DiagCells[p] = append(append([]int32(nil), d.Owned[p]...), d.Halo[p]...)
		pl.cellSend[p] = map[int][]int32{}
		pl.edgeSend[p] = map[int][]int32{}
		pl.cellRecv[p] = map[int][]int32{}
		pl.edgeRecv[p] = map[int][]int32{}
	}

	// Cell exchange: q receives its halo cells from their owners.
	for q := 0; q < nparts; q++ {
		for owner, cells := range d.Peers[q] {
			pl.cellRecv[q][int(owner)] = cells
			pl.cellSend[owner][q] = cells
		}
	}

	// Edge ownership and ghost-edge exchange.
	for p := 0; p < nparts; p++ {
		seen := make(map[int32]bool)
		var fluxEdges []int32
		for _, c := range d.Owned[p] {
			for _, e := range m.CellEdges(c) {
				if !seen[e] {
					seen[e] = true
					fluxEdges = append(fluxEdges, e)
				}
			}
		}
		// Ghost edges additionally include edges of halo cells (needed
		// for kinetic energy at halo cells and vorticity at boundary
		// vertices).
		ghostSeen := make(map[int32]bool)
		for _, c := range pl.DiagCells[p] {
			for _, e := range m.CellEdges(c) {
				if ghostSeen[e] {
					continue
				}
				ghostSeen[e] = true
				owner := int(edgeOwner(e))
				if owner == p {
					pl.UEdges[p] = append(pl.UEdges[p], e)
				} else {
					pl.edgeRecv[p][owner] = append(pl.edgeRecv[p][owner], e)
				}
			}
		}
		sort.Slice(fluxEdges, func(i, j int) bool { return fluxEdges[i] < fluxEdges[j] })
		pl.FluxEdges[p] = fluxEdges
		sort.Slice(pl.UEdges[p], func(i, j int) bool { return pl.UEdges[p][i] < pl.UEdges[p][j] })
	}
	// Mirror edge receive lists into the owners' send lists (sorted for
	// a deterministic wire order).
	for p := 0; p < nparts; p++ {
		for owner, edges := range pl.edgeRecv[p] {
			es := append([]int32(nil), edges...)
			sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })
			pl.edgeRecv[p][owner] = es
			pl.edgeSend[owner][p] = es
		}
	}
	return pl
}

// peersOf returns the sorted union of cell/edge exchange peers of rank p.
func (pl *DistPlan) peersOf(p int) []int {
	set := map[int]bool{}
	for q := range pl.cellSend[p] {
		set[q] = true
	}
	for q := range pl.cellRecv[p] {
		set[q] = true
	}
	for q := range pl.edgeSend[p] {
		set[q] = true
	}
	for q := range pl.edgeRecv[p] {
		set[q] = true
	}
	peers := make([]int, 0, len(set))
	for q := range set {
		peers = append(peers, q)
	}
	sort.Ints(peers)
	return peers
}

// exchanger performs the per-stage halo refresh for one rank.
type exchanger struct {
	pl    *DistPlan
	rank  *comm.Rank
	state *dycore.State
	peers []int
	tag   int
}

// exchange refreshes halo cells (DryMass, ThetaM, W, Phi) and ghost
// edges (U) from their owners, one message per peer (the linked-list
// aggregation of §3.1.3 applied to the distributed dycore).
func (ex *exchanger) exchange() {
	pl := ex.pl
	p := ex.rank.ID()
	nlev := pl.NLev
	ni := nlev + 1
	s := ex.state
	tag := ex.tag
	ex.tag++

	for _, q := range ex.peers {
		var buf []float64
		for _, c := range pl.cellSend[p][q] {
			base := int(c) * nlev
			ibase := int(c) * ni
			buf = append(buf, s.DryMass[base:base+nlev]...)
			buf = append(buf, s.ThetaM[base:base+nlev]...)
			buf = append(buf, s.W[ibase:ibase+ni]...)
			buf = append(buf, s.Phi[ibase:ibase+ni]...)
		}
		for _, e := range pl.edgeSend[p][q] {
			base := int(e) * nlev
			buf = append(buf, s.U[base:base+nlev]...)
		}
		ex.rank.Send(q, tag, buf)
	}
	for _, q := range ex.peers {
		buf := ex.rank.Recv(q, tag)
		pos := 0
		for _, c := range pl.cellRecv[p][q] {
			base := int(c) * nlev
			ibase := int(c) * ni
			pos += copy(s.DryMass[base:base+nlev], buf[pos:])
			pos += copy(s.ThetaM[base:base+nlev], buf[pos:])
			pos += copy(s.W[ibase:ibase+ni], buf[pos:])
			pos += copy(s.Phi[ibase:ibase+ni], buf[pos:])
		}
		for _, e := range pl.edgeRecv[p][q] {
			base := int(e) * nlev
			pos += copy(s.U[base:base+nlev], buf[pos:])
		}
		if pos != len(buf) {
			panic("core: distributed exchange size mismatch")
		}
	}
}

// RunDistributedDynamics integrates the dry dynamics for the given number
// of steps across nparts ranks (goroutines), each owning one domain of
// the decomposition, with halo exchanges after every internal stage. The
// initial state is produced by initFn on every rank identically; the
// merged final state is returned. The result matches a serial run of the
// same configuration to rounding.
func RunDistributedDynamics(m *mesh.Mesh, nlev, nparts int, mode precision.Mode,
	initFn func(*dycore.State), steps int, dt float64) *dycore.State {

	pl := NewDistPlan(m, nlev, nparts, 12345)
	final := dycore.NewState(m, nlev)

	comm.Run(nparts, func(r *comm.Rank) {
		p := r.ID()
		eng := dycore.New(m, nlev, mode)
		initFn(eng.State())
		ex := &exchanger{pl: pl, rank: r, state: eng.State(), peers: pl.peersOf(p), tag: 1000}
		eng.SetOwned(&dycore.OwnedSets{
			TendCells: pl.TendCells[p],
			DiagCells: pl.DiagCells[p],
			FluxEdges: pl.FluxEdges[p],
			UEdges:    pl.UEdges[p],
			Hook:      ex.exchange,
		})
		for i := 0; i < steps; i++ {
			eng.Step(dt)
		}

		// Gather owned regions to rank 0.
		const gatherTag = 9_000_000
		s := eng.State()
		ni := nlev + 1
		if p == 0 {
			// Copy own region.
			mergeOwned(final, s, pl, 0)
			for q := 1; q < nparts; q++ {
				buf := r.Recv(q, gatherTag)
				pos := 0
				for _, c := range pl.TendCells[q] {
					base := int(c) * nlev
					ibase := int(c) * ni
					pos += copy(final.DryMass[base:base+nlev], buf[pos:])
					pos += copy(final.ThetaM[base:base+nlev], buf[pos:])
					pos += copy(final.W[ibase:ibase+ni], buf[pos:])
					pos += copy(final.Phi[ibase:ibase+ni], buf[pos:])
				}
				for _, e := range pl.UEdges[q] {
					base := int(e) * nlev
					pos += copy(final.U[base:base+nlev], buf[pos:])
				}
			}
		} else {
			var buf []float64
			for _, c := range pl.TendCells[p] {
				base := int(c) * nlev
				ibase := int(c) * ni
				buf = append(buf, s.DryMass[base:base+nlev]...)
				buf = append(buf, s.ThetaM[base:base+nlev]...)
				buf = append(buf, s.W[ibase:ibase+ni]...)
				buf = append(buf, s.Phi[ibase:ibase+ni]...)
			}
			for _, e := range pl.UEdges[p] {
				base := int(e) * nlev
				buf = append(buf, s.U[base:base+nlev]...)
			}
			r.Send(0, gatherTag, buf)
		}
	})
	return final
}

// mergeOwned copies rank p's owned region from src into dst.
func mergeOwned(dst, src *dycore.State, pl *DistPlan, p int) {
	nlev := pl.NLev
	ni := nlev + 1
	for _, c := range pl.TendCells[p] {
		base := int(c) * nlev
		ibase := int(c) * ni
		copy(dst.DryMass[base:base+nlev], src.DryMass[base:base+nlev])
		copy(dst.ThetaM[base:base+nlev], src.ThetaM[base:base+nlev])
		copy(dst.W[ibase:ibase+ni], src.W[ibase:ibase+ni])
		copy(dst.Phi[ibase:ibase+ni], src.Phi[ibase:ibase+ni])
	}
	for _, e := range pl.UEdges[p] {
		base := int(e) * nlev
		copy(dst.U[base:base+nlev], src.U[base:base+nlev])
	}
}
