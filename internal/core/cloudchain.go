package core

import (
	"math"

	"gristgo/internal/tracer"
)

// Cloud-chain parameters: bulk conversion timescales and thresholds of
// the prognostic condensate species (qc, qi -> qr, qs, qg -> surface).
const (
	qcAutoThreshold = 2.0e-5 // kg/kg of cloud water before autoconversion
	qiAutoThreshold = 1.0e-5 // kg/kg of cloud ice before aggregation
	tauAuto         = 900.0  // s, autoconversion/aggregation
	tauFall         = 1800.0 // s, precipitation fallout
	tauRime         = 3600.0 // s, riming of rain onto ice -> graupel
	tIce            = 258.15 // K, condensate forms as ice below this
	tMelt           = 273.15 // K, snow/graupel melt to rain above this
)

// stepCloudChain advances the prognostic condensate species with the
// condensate production diagnosed by the physics suite (Out.Cond) and
// returns the surface precipitation rate added by fallout (mm/day per
// cell). The chain is a bulk single-moment scheme:
//
//	vapor --Cond--> qc (T > tIce) or qi (T <= tIce)
//	qc --auto--> qr,  qi --agg--> qs,  qr+qi --rime--> qg
//	qr, qs, qg --fallout--> surface precipitation
//	qs, qg --melt--> qr above freezing
func (mod *Model) stepCloudChain(dt float64) []float64 {
	m := mod.Mesh
	nlev := mod.Cfg.NLev
	tr := mod.Tracers
	precip := make([]float64, m.NCells)

	for c := 0; c < m.NCells; c++ {
		var fallout float64 // Pa * kg/kg removed from the column
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			tK := mod.In.T[i]
			dpi := mod.In.Dpi[i]

			qc := tr.MixingRatio(tracer.QC, c, k)
			qi := tr.MixingRatio(tracer.QI, c, k)
			qr := tr.MixingRatio(tracer.QR, c, k)
			qs := tr.MixingRatio(tracer.QS, c, k)
			qg := tr.MixingRatio(tracer.QG, c, k)

			// Condensate production from the physics suite.
			cond := mod.Out.Cond[i] * dt
			if cond > 0 {
				if tK <= tIce {
					qi += cond
				} else {
					qc += cond
				}
			}

			// Bounded conversion factors (exponential-decay form): the
			// bulk timescales can be shorter than the physics step, so
			// raw dt/tau rates would overshoot and drive species
			// negative.
			fAuto := 1 - math.Exp(-dt/tauAuto)
			fRime := 1 - math.Exp(-dt/tauRime)
			fFall := 1 - math.Exp(-dt/tauFall)

			// Autoconversion / aggregation above thresholds.
			if qc > qcAutoThreshold {
				x := (qc - qcAutoThreshold) * fAuto
				qc -= x
				qr += x
			}
			if qi > qiAutoThreshold {
				x := (qi - qiAutoThreshold) * fAuto
				qi -= x
				qs += x
			}

			// Riming: supercooled rain freezing onto ice makes graupel.
			if tK < tMelt && qr > 0 && qi > 0 {
				x := minF(qr, qi) * fRime
				qr -= x
				qg += x
			}

			// Melting above freezing.
			if tK > tMelt {
				qr += qs + qg
				qs, qg = 0, 0
			}

			// Fallout of precipitating species.
			fall := (qr + qs + qg) * fFall
			qr -= qr * fFall
			qs -= qs * fFall
			qg -= qg * fFall
			fallout += fall * dpi

			tr.SetMixingRatio(tracer.QC, c, k, qc)
			tr.SetMixingRatio(tracer.QI, c, k, qi)
			tr.SetMixingRatio(tracer.QR, c, k, qr)
			tr.SetMixingRatio(tracer.QS, c, k, qs)
			tr.SetMixingRatio(tracer.QG, c, k, qg)
		}
		precip[c] = fallout / 9.80616 / dt * 86400 // mm/day
	}
	return precip
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
