// Package core assembles the full AI-enhanced GRIST-style model (Fig. 3
// of the paper): the nonhydrostatic dynamical core, the sub-cycled
// passive tracer transport driven by the double-precision accumulated
// mass flux, and a pluggable physics suite (conventional or ML-based)
// coupled through the physics-dynamics interface, with prescribed
// SST/sea-ice, an active slab land surface and ERA5-like initial fields
// from the synthetic climatology.
package core

import (
	"math"

	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
	"gristgo/internal/physics"
	"gristgo/internal/precision"
	"gristgo/internal/synthclim"
	"gristgo/internal/tracer"
)

// Config selects a model configuration: a grid level and layer count
// (Table 2), a precision mode and a physics suite (Table 3), and the
// sub-cycled timesteps. When Steps is zero-valued, timesteps are scaled
// from the Table 2 G12 configuration by the grid spacing ratio so that
// coarse test grids run with stable, proportionally larger steps.
type Config struct {
	GridLevel int
	NLev      int
	Mode      precision.Mode
	Steps     mesh.TimestepConfig
	// HostWorkers runs the dycore loops across this many host threads
	// (the shared-memory OpenMP analog; 0/1 serial, negative = all CPUs).
	HostWorkers int
}

// scaledSteps returns timesteps scaled from the paper's G12 settings
// (dyn 4 s at ~1.5 km) linearly with cell spacing, preserving the Table 2
// ratios 4:30:60:180. The scale factor is capped so that physics steps on
// very coarse test grids stay within the validity of the process schemes
// (slab surface, adjustment convection).
func scaledSteps(level int) mesh.TimestepConfig {
	factor := math.Pow(2, float64(12-level))
	if factor > 30 {
		factor = 30
	}
	return mesh.TimestepConfig{
		Dyn:  4 * factor,
		Trac: 30 * factor,
		Phy:  60 * factor,
		Rad:  180 * factor,
	}
}

// Model is the coupled atmosphere + land model on one mesh.
type Model struct {
	Cfg    Config
	Mesh   *mesh.Mesh
	Engine dycore.Engine

	Tracers   *tracer.Field
	Transport tracer.Transport

	Physics physics.Scheme
	In      *physics.Input
	Out     *physics.Output

	// Boundary conditions (prescribed SST/sea ice enter through the skin
	// temperature of ocean cells).
	Land   []float64
	SSTFix []float64 // prescribed skin temperature over ocean; NaN over land

	// Climate state captured at initialization, used for the marine
	// boundary-layer moisture forcing.
	Clim synthclim.Climate

	// MoistureNudgeTau is the relaxation timescale (seconds) of the
	// lowest layers' humidity toward the climatological value — the
	// substitute for unresolved moisture convergence that maintains a
	// raining tropics at coarse reproduction grids (0 disables).
	MoistureNudgeTau float64

	// RemapEvery triggers the conservative vertical remap after every N
	// physics steps, restoring uniform-sigma layers of the vertically
	// Lagrangian integration (0 disables). remapper holds the column
	// scratch so the periodic remap stays allocation-free.
	RemapEvery int
	stepCount  int
	remapper   *dycore.Remapper

	// Accumulated diagnostics.
	PrecipAccum []float64 // mm since last ResetDiagnostics
	TimeSec     float64   // model time since initialization
	precipTime  float64   // seconds accumulated into PrecipAccum

	// Observability wiring installed by EnableTelemetry (nil: disabled).
	tel *ModelTelemetry
}

// NewModel constructs a model on a freshly generated, BFS-reordered mesh.
func NewModel(cfg Config, scheme physics.Scheme) *Model {
	m := mesh.New(cfg.GridLevel).ReorderBFS()
	return NewModelOnMesh(cfg, scheme, m)
}

// NewModelOnMesh constructs a model over an existing mesh (meshes are
// expensive to build; tests and experiment harnesses share them).
func NewModelOnMesh(cfg Config, scheme physics.Scheme, m *mesh.Mesh) *Model {
	if cfg.Steps == (mesh.TimestepConfig{}) {
		cfg.Steps = scaledSteps(cfg.GridLevel)
	}
	eng := dycore.New(m, cfg.NLev, cfg.Mode)
	if cfg.HostWorkers != 0 {
		eng.SetHostParallelism(cfg.HostWorkers)
		// Physics suites with their own worker pools (the ML inference
		// engine) share the host-parallelism knob.
		if ws, ok := scheme.(interface{ SetWorkers(int) }); ok {
			ws.SetWorkers(cfg.HostWorkers)
		}
	}
	mod := &Model{
		Cfg:    cfg,
		Mesh:   m,
		Engine: eng,

		Tracers:   tracer.NewField(m, cfg.NLev, eng.State().DryMass),
		Transport: tracer.New(m, cfg.NLev, cfg.Mode),

		Physics: scheme,
		In:      physics.NewInput(m.NCells, cfg.NLev),
		Out:     physics.NewOutput(m.NCells, cfg.NLev),

		Land:        make([]float64, m.NCells),
		SSTFix:      make([]float64, m.NCells),
		PrecipAccum: make([]float64, m.NCells),

		MoistureNudgeTau: 6 * 3600,
	}
	return mod
}

// InitializeClimate sets the initial condition from the synthetic
// climatology (the ERA5 substitute): hydrostatically balanced columns
// under the climatological surface temperature, humidity scaled into the
// vapor tracer, the climatological zonal wind, prescribed SST/sea-ice
// over ocean and an interactive land surface elsewhere.
func (mod *Model) InitializeClimate(cl synthclim.Climate) {
	m := mod.Mesh
	nlev := mod.Cfg.NLev
	s := mod.Engine.State()

	const psfc = 1.0e5
	dpi := (psfc - dycore.PTop) / float64(nlev)
	for c := 0; c < m.NCells; c++ {
		lat, lon := m.CellLat[c], m.CellLon[c]
		tSfc := cl.SurfaceTemperature(lat, lon)
		rhSfc := cl.SurfaceHumidity(lat, lon)
		mod.Land[c] = synthclim.LandFraction(lat, lon)
		mod.In.Land[c] = mod.Land[c]
		ice := cl.SeaIce(lat)
		sst := cl.SST(lat, lon)
		if ice > 0 {
			sst = math.Min(sst, 271.35)
		}
		if mod.Land[c] < 0.5 {
			mod.SSTFix[c] = sst
			mod.In.Tskin[c] = sst
		} else {
			mod.SSTFix[c] = math.NaN()
			mod.In.Tskin[c] = tSfc
		}

		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			p := dycore.PTop + (float64(k)+0.5)*dpi
			// Temperature: 6.5 K/km tropospheric lapse expressed in
			// log-pressure with a 7.5 km scale height, over an isothermal
			// 200 K stratosphere.
			tK := tSfc - 6.5e-3*7500*math.Log(psfc/p)
			if tK < 200 {
				tK = 200
			}
			s.DryMass[i] = dpi
			theta := tK * math.Pow(dycore.P0/p, dycore.Rd/dycore.Cp)
			s.ThetaM[i] = dpi * theta
			// Moisture decays sharply upward; the lowest mid-layer gets
			// the full surface relative humidity.
			pBot := psfc - 0.5*dpi
			sig := p / pBot
			q := rhSfc * sig * sig * sig * physics.SatMixingRatio(tK, p)
			mod.Tracers.Mass[i] = dpi
			mod.Tracers.SetMixingRatio(tracer.QV, c, k, q)
		}
	}
	dycore.HydrostaticRebalance(s)

	// Climatological zonal wind on edges.
	for e := 0; e < m.NEdges; e++ {
		lat, _ := m.EdgePos[e].LatLon()
		east, _ := mesh.TangentBasis(m.EdgePos[e])
		for k := 0; k < nlev; k++ {
			sigma := (float64(k) + 0.5) / float64(nlev)
			u := cl.ZonalWind(lat, sigma)
			s.U[e*nlev+k] = east.Scale(u).Dot(m.EdgeNormal[e])
		}
	}
	mod.TimeSec = 0
}

// CosZenith returns the cosine of the solar zenith angle at a cell for
// the current model time (daily cycle plus seasonal declination).
func (mod *Model) CosZenith(c int, season float64) float64 {
	lat := mod.Mesh.CellLat[c]
	lon := mod.Mesh.CellLon[c]
	decl := 0.409 * math.Sin(season-1.39) // solar declination
	hour := 2*math.Pi*mod.TimeSec/86400 + lon
	cosz := math.Sin(lat)*math.Sin(decl) + math.Cos(lat)*math.Cos(decl)*math.Cos(hour)
	if cosz < 0 {
		return 0
	}
	return cosz
}

// EffectiveSteps returns the sub-cycle counts and effective step lengths
// actually integrated. Table 2's nominal ratios are not all integral
// (trac/dyn = 7.5 at G12), so the tracer step rounds up to a whole number
// of dynamics steps and uses the exactly elapsed time, keeping tracer
// mass consistent with dry mass.
func (mod *Model) EffectiveSteps() (nDyn, nTrac int, dtTrac, dtPhy float64) {
	st := mod.Cfg.Steps
	nDyn = int(math.Ceil(st.Trac/st.Dyn - 1e-9))
	if nDyn < 1 {
		nDyn = 1
	}
	dtTrac = float64(nDyn) * st.Dyn
	nTrac = int(math.Round(st.Phy / dtTrac))
	if nTrac < 1 {
		nTrac = 1
	}
	dtPhy = float64(nTrac) * dtTrac
	return nDyn, nTrac, dtTrac, dtPhy
}

// StepPhysics advances the model by one physics step: the dynamics
// sub-cycles at Steps.Dyn, tracers sub-cycle on the accumulated
// double-precision mass flux, then the physics suite runs once and its
// Q1/Q2 feed back through the coupling interface.
func (mod *Model) StepPhysics(season float64) {
	st := mod.Cfg.Steps
	nDyn, nTrac, dtTrac, dtPhy := mod.EffectiveSteps()
	sp, t0 := mod.tel.beginStep()

	for it := 0; it < nTrac; it++ {
		mod.Engine.ResetMassFluxAccum()
		for id := 0; id < nDyn; id++ {
			mod.Engine.Step(st.Dyn)
			mod.TimeSec += st.Dyn
		}
		// Average the accumulated flux over the dynamics sub-steps.
		acc := mod.Engine.MassFluxAccum()
		n := float64(mod.Engine.AccumSteps())
		avg := make([]float64, len(acc))
		for i, a := range acc {
			avg[i] = a / n
		}
		mod.Transport.Step(mod.Tracers, avg, dtTrac)
	}

	mod.computePhysicsInput(season)
	mod.Physics.Compute(mod.In, mod.Out, dtPhy)
	mod.applyPhysicsOutput(dtPhy)

	mod.stepCount++
	if mod.RemapEvery > 0 && mod.stepCount%mod.RemapEvery == 0 {
		if mod.remapper == nil {
			mod.remapper = dycore.NewRemapper(mod.Engine.State().NLev)
		}
		mod.remapper.Run(mod.Engine.State(), mod.Tracers)
	}
	mod.tel.endStep(mod, sp, t0, dtPhy)
}

// computePhysicsInput fills the coupling Input (U, V, T, Q, P, tskin,
// coszr — §3.2.4) from the dynamical state.
func (mod *Model) computePhysicsInput(season float64) {
	m := mod.Mesh
	nlev := mod.Cfg.NLev
	s := mod.Engine.State()
	in := mod.In

	uc, vc := CellWinds(m, s.U, nlev)
	copy(in.U, uc)
	copy(in.V, vc)

	for c := 0; c < m.NCells; c++ {
		pIface := dycore.PTop
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			dpi := s.DryMass[i]
			p := pIface + 0.5*dpi
			pIface += dpi
			theta := s.ThetaM[i] / dpi
			in.P[i] = p
			in.Dpi[i] = dpi
			in.T[i] = theta * math.Pow(p/dycore.P0, dycore.Rd/dycore.Cp)
			in.Qv[i] = mod.Tracers.MixingRatio(tracer.QV, c, k)
		}
		in.CosZ[c] = mod.CosZenith(c, season)
		in.Land[c] = mod.Land[c]
		// Prescribed SST: reset ocean skin temperature each step.
		if !math.IsNaN(mod.SSTFix[c]) {
			in.Tskin[c] = mod.SSTFix[c]
		}
	}
}

// applyPhysicsOutput feeds Q1 into the potential-temperature equation,
// Q2 into the vapor tracer, and accumulates precipitation.
func (mod *Model) applyPhysicsOutput(dt float64) {
	m := mod.Mesh
	nlev := mod.Cfg.NLev

	mod.Engine.ApplyHeating(mod.Out.Q1, dt)
	for c := 0; c < m.NCells; c++ {
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			q := mod.Tracers.MixingRatio(tracer.QV, c, k) + dt*mod.Out.Q2[i]
			if q < 0 {
				q = 0
			}
			mod.Tracers.SetMixingRatio(tracer.QV, c, k, q)
		}
		mod.PrecipAccum[c] += mod.Out.Precip[c] * dt / 86400 // mm
	}
	// Prognostic condensate chain: cloud water/ice from Out.Cond,
	// autoconversion to rain/snow/graupel, fallout to the surface.
	for c, p := range mod.stepCloudChain(dt) {
		mod.PrecipAccum[c] += p * dt / 86400
	}
	mod.precipTime += dt

	// Marine boundary-layer moisture forcing: relax the lowest three
	// layers toward the climatological humidity. This substitutes for
	// the unresolved moisture convergence that keeps the real tropics
	// convecting (repro substitution; see DESIGN.md).
	if mod.MoistureNudgeTau > 0 {
		w := dt / mod.MoistureNudgeTau
		if w > 1 {
			w = 1
		}
		for c := 0; c < m.NCells; c++ {
			rhClim := mod.Clim.SurfaceHumidity(m.CellLat[c], m.CellLon[c])
			for k := nlev - 3; k < nlev; k++ {
				if k < 0 {
					continue
				}
				i := c*nlev + k
				qTarget := rhClim * physics.SatMixingRatio(mod.In.T[i], mod.In.P[i])
				if mod.In.T[i] == 0 {
					continue // physics input not yet populated
				}
				q := mod.Tracers.MixingRatio(tracer.QV, c, k)
				if qTarget > q {
					mod.Tracers.SetMixingRatio(tracer.QV, c, k, q+w*(qTarget-q))
				}
			}
		}
	}
}

// PrecipRate returns the mean precipitation rate (mm/day) since the last
// ResetDiagnostics.
func (mod *Model) PrecipRate() []float64 {
	out := make([]float64, len(mod.PrecipAccum))
	if mod.precipTime == 0 {
		return out
	}
	for c, p := range mod.PrecipAccum {
		out[c] = p / mod.precipTime * 86400
	}
	return out
}

// ResetDiagnostics zeroes the accumulated diagnostics.
func (mod *Model) ResetDiagnostics() {
	for i := range mod.PrecipAccum {
		mod.PrecipAccum[i] = 0
	}
	mod.precipTime = 0
}

// RunHours advances the model by (approximately) the given number of
// simulated hours, in whole physics steps.
func (mod *Model) RunHours(h, season float64) {
	_, _, _, dtPhy := mod.EffectiveSteps()
	steps := int(math.Round(h * 3600 / dtPhy))
	if steps < 1 {
		steps = 1
	}
	for i := 0; i < steps; i++ {
		mod.StepPhysics(season)
	}
}

// CellWinds reconstructs cell-centered (east, north) wind components
// from edge-normal velocities by per-cell least squares — exact for
// uniform flow over the cell's edge normals.
func CellWinds(m *mesh.Mesh, u []float64, nlev int) (uc, vc []float64) {
	uc = make([]float64, m.NCells*nlev)
	vc = make([]float64, m.NCells*nlev)
	for c := int32(0); c < int32(m.NCells); c++ {
		east, north := mesh.TangentBasis(m.CellPos[c])
		// Normal matrix of the 2x2 least-squares system.
		var a11, a12, a22 float64
		type proj struct{ ne, nn float64 }
		deg := m.CellDegree(c)
		projs := make([]proj, deg)
		for j := 0; j < deg; j++ {
			ed := m.CellEdge[m.CellOff[c]+int32(j)]
			n := m.EdgeNormal[ed]
			pe, pn := n.Dot(east), n.Dot(north)
			projs[j] = proj{pe, pn}
			a11 += pe * pe
			a12 += pe * pn
			a22 += pn * pn
		}
		det := a11*a22 - a12*a12
		if det == 0 {
			continue
		}
		for k := 0; k < nlev; k++ {
			var b1, b2 float64
			for j := 0; j < deg; j++ {
				ed := m.CellEdge[m.CellOff[c]+int32(j)]
				ue := u[int(ed)*nlev+k]
				b1 += projs[j].ne * ue
				b2 += projs[j].nn * ue
			}
			uc[int(c)*nlev+k] = (a22*b1 - a12*b2) / det
			vc[int(c)*nlev+k] = (a11*b2 - a12*b1) / det
		}
	}
	return uc, vc
}

// SetTerrain installs a surface-geopotential field from an elevation
// function (meters), thins the overlying dry-air columns with the
// barometric factor exp(-g h / (Rd T0)) so surface pressure is
// consistent with the elevation, and rebalances the columns
// hydrostatically.
func (mod *Model) SetTerrain(elev func(lat, lon float64) float64) {
	m := mod.Mesh
	nlev := mod.Cfg.NLev
	s := mod.Engine.State()
	const t0 = 288.0
	for c := 0; c < m.NCells; c++ {
		h := elev(m.CellLat[c], m.CellLon[c])
		s.PhiSurf[c] = dycore.Gravity * h
		scale := math.Exp(-dycore.Gravity * h / (dycore.Rd * t0))
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			theta := s.ThetaM[i] / s.DryMass[i]
			q := mod.Tracers.MixingRatio(tracer.QV, c, k)
			s.DryMass[i] *= scale
			s.ThetaM[i] = s.DryMass[i] * theta
			mod.Tracers.Mass[i] = s.DryMass[i]
			mod.Tracers.SetMixingRatio(tracer.QV, c, k, q)
		}
	}
	dycore.HydrostaticRebalance(s)
}

// OrographicPrecip diagnoses upslope precipitation enhancement (a
// Smith-type linear upslope model): where the low-level wind blows up
// the resolved terrain gradient, moisture is lifted and rained out.
// Returns mm/day per cell. Finer meshes resolve steeper slopes, which is
// the resolution sensitivity at the heart of the Fig. 7 comparison.
func (mod *Model) OrographicPrecip() []float64 {
	m := mod.Mesh
	nlev := mod.Cfg.NLev
	s := mod.Engine.State()
	out := make([]float64, m.NCells)

	// Low-level cell winds.
	uc, vc := CellWinds(m, s.U, nlev)
	k := nlev - 1
	for c := int32(0); c < int32(m.NCells); c++ {
		// Resolved terrain gradient by least squares over neighbors.
		east, north := mesh.TangentBasis(m.CellPos[c])
		var a11, a12, a22, b1, b2 float64
		h0 := s.PhiSurf[c] / dycore.Gravity
		for kk := m.CellOff[c]; kk < m.CellOff[c+1]; kk++ {
			nb := m.CellCell[kk]
			d := m.CellPos[nb].Sub(m.CellPos[c])
			dx := d.Dot(east) * m.Radius
			dy := d.Dot(north) * m.Radius
			dh := s.PhiSurf[nb]/dycore.Gravity - h0
			a11 += dx * dx
			a12 += dx * dy
			a22 += dy * dy
			b1 += dx * dh
			b2 += dy * dh
		}
		det := a11*a22 - a12*a12
		if det == 0 {
			continue
		}
		gx := (a22*b1 - a12*b2) / det
		gy := (a11*b2 - a12*b1) / det

		i := int(c)*nlev + k
		wOro := uc[i]*gx + vc[i]*gy // upslope vertical motion, m/s
		if wOro <= 0 {
			continue
		}
		qv := mod.Tracers.MixingRatio(tracer.QV, int(c), k)
		rho := mod.In.P[i] / (dycore.Rd * math.Max(mod.In.T[i], 150))
		// Condensation efficiency ~0.7; kg/m^2/s -> mm/day.
		out[c] = 0.7 * rho * wOro * qv * 86400
	}
	return out
}

// InitializeAquaplanet sets the artifact's demo configuration
// (demo-g6-aqua): an all-ocean planet with the zonally symmetric SST of
// the synthetic climatology, no sea ice, no terrain. Aquaplanets are the
// standard configuration for physics-dynamics coupling studies because
// every zonal asymmetry that develops is generated by the model itself.
func (mod *Model) InitializeAquaplanet(cl synthclim.Climate) {
	mod.InitializeClimate(cl)
	m := mod.Mesh
	nlev := mod.Cfg.NLev
	s := mod.Engine.State()
	for c := 0; c < m.NCells; c++ {
		lat := m.CellLat[c]
		// Zonally symmetric SST: drop the ENSO/MJO longitude structure.
		sst := 300.5 - 30*math.Pow(math.Sin(lat), 2)
		mod.Land[c] = 0
		mod.In.Land[c] = 0
		mod.SSTFix[c] = sst
		mod.In.Tskin[c] = sst
		s.PhiSurf[c] = 0
		// Re-derive the column from the zonal-mean surface temperature.
		const psfc = 1.0e5
		dpi := (psfc - dycore.PTop) / float64(nlev)
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			p := dycore.PTop + (float64(k)+0.5)*dpi
			tK := sst - 6.5e-3*7500*math.Log(psfc/p)
			if tK < 200 {
				tK = 200
			}
			s.DryMass[i] = dpi
			s.ThetaM[i] = dpi * tK * math.Pow(dycore.P0/p, dycore.Rd/dycore.Cp)
			rh := cl.SurfaceHumidity(lat, 0) // zonal mean
			pBot := psfc - 0.5*dpi
			sig := p / pBot
			mod.Tracers.Mass[i] = dpi
			mod.Tracers.SetMixingRatio(tracer.QV, c, k,
				rh*sig*sig*sig*physics.SatMixingRatio(tK, p))
		}
	}
	dycore.HydrostaticRebalance(s)
}
