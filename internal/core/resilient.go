package core

// The resilient distributed runner: RunDistributedDynamics plus failure
// detection and rollback-and-replay recovery. Every blocking wait is
// deadline-bounded (halo Finish panics with the rank dump, collectives
// are preceded by BarrierTimeout), so a dead or stalled rank surfaces
// as a typed failure within about one step instead of a hang; every
// CheckpointEvery steps the ranks write CRC-protected shards and
// rendezvous on a committed epoch; and when a leg fails — rank death,
// halo timeout, sentinel trip — the run rolls back to the latest
// committed epoch and replays. Replay is bitwise-faithful: shards store
// the full owned+halo region each rank's kernels read, and one-shot
// injected faults (internal/fault) stay spent across legs.

import (
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"gristgo/internal/comm"
	"gristgo/internal/diag"
	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// StepGate lets a fault plan veto a rank's next step: PermitStep
// returning false makes the rank exit before step (0-based, global),
// simulating a node death. Peers detect the death through halo and
// barrier deadlines.
type StepGate interface {
	PermitStep(rank, step int) bool
}

// ResilienceOpts configures RunDistributedDynamicsResilient. The zero
// value disables fault injection and sentinels and uses the defaults
// noted per field.
type ResilienceOpts struct {
	Mode precision.Mode

	// Injector is installed on each leg's world (nil: no fault
	// injection). If it also implements StepGate it can kill ranks.
	Injector comm.Injector

	// CheckpointEvery writes a shard epoch every N steps (default 0: no
	// checkpoints, recovery replays from the initial state). Dir is the
	// shard directory, required when CheckpointEvery > 0.
	CheckpointEvery int
	Dir             string

	// HaloTimeout bounds every halo Finish; SyncTimeout bounds the
	// barrier rendezvous around collectives and commits (default: both
	// 2s — generous against scheduler noise, instant against a real
	// death, and irrelevant on the failure-free path). Choose them well
	// above one step's compute time: a rank that is merely slow must
	// never straddle the deadline, only a dead one.
	HaloTimeout time.Duration
	SyncTimeout time.Duration

	// MaxRecoveries bounds rollback attempts (default 3). A fault that
	// replays deterministically into the same failure gives up here.
	MaxRecoveries int

	// Monitor enables the in-loop sentinel checks (nil: disabled): every
	// HealthEvery steps (default 1) the ranks agree on the global dry
	// mass and their local NaN/Inf counts, and a trip aborts the leg for
	// rollback. Keep HealthEvery <= CheckpointEvery so no corrupt state
	// is ever committed.
	Monitor     *diag.HealthMonitor
	HealthEvery int

	// Reg receives the recovery metrics: grist_recovery_total,
	// grist_rank_failures_total, grist_checkpoint_epochs_total.
	Reg *telemetry.Registry
}

// RankFailure describes one rank's death during a leg.
type RankFailure struct {
	Rank   int    `json:"rank"`
	Kind   string `json:"kind"` // "killed", "timeout", "sentinel", "panic"
	Reason string `json:"reason"`
}

// RecoveryEvent records one rollback: the failures that triggered it
// and where the replay resumed.
type RecoveryEvent struct {
	Attempt     int           `json:"attempt"` // the leg that failed (0-based)
	Failures    []RankFailure `json:"failures"`
	ResumeEpoch int           `json:"resume_epoch"` // -1: from initial state
	ResumeStep  int           `json:"resume_step"`
}

// RecoveryReport summarizes a resilient run's recovery activity.
type RecoveryReport struct {
	Attempts   int             `json:"attempts"` // legs run, including the successful one
	Recoveries int             `json:"recoveries"`
	Events     []RecoveryEvent `json:"events,omitempty"`
}

// Abort panic values raised inside a leg, classified by the recover.
type rankKilled struct{ step int }
type sentinelAbort struct{ step int }

func (k rankKilled) String() string    { return fmt.Sprintf("killed before step %d", k.step) }
func (a sentinelAbort) String() string { return fmt.Sprintf("sentinel trip at step %d", a.step) }

// RunDistributedDynamicsResilient integrates the dry dynamics like
// RunDistributedDynamics but survives rank death, message loss and
// numerical corruption: failures detected through deadlines and
// sentinels roll the run back to the latest committed checkpoint epoch
// and replay. Returns the merged final state (bitwise identical to an
// undisturbed run when every injected fault is transient) and the
// recovery report; the error is non-nil when MaxRecoveries consecutive
// legs failed.
func RunDistributedDynamicsResilient(m *mesh.Mesh, nlev, nparts int,
	initFn func(*dycore.State), steps int, dt float64, opts ResilienceOpts) (*dycore.State, *RecoveryReport, error) {

	if opts.HaloTimeout <= 0 {
		opts.HaloTimeout = 2 * time.Second
	}
	if opts.SyncTimeout <= 0 {
		opts.SyncTimeout = 2 * time.Second
	}
	if opts.MaxRecoveries == 0 {
		opts.MaxRecoveries = 3
	}
	if opts.HealthEvery <= 0 {
		opts.HealthEvery = 1
	}

	pl := NewDistPlan(m, nlev, nparts, 12345)
	var store *ShardStore
	if opts.CheckpointEvery > 0 {
		if opts.Dir == "" {
			return nil, nil, fmt.Errorf("core: ResilienceOpts.Dir is required when CheckpointEvery > 0")
		}
		var err error
		store, err = NewShardStore(opts.Dir, pl)
		if err != nil {
			return nil, nil, err
		}
	}

	rep := &RecoveryReport{}
	for attempt := 0; ; attempt++ {
		resumeEpoch, resumeStep := -1, 0
		if store != nil {
			if e, s0, ok := store.LatestCommitted(); ok {
				resumeEpoch, resumeStep = e, s0
			}
		}
		if attempt > 0 {
			rep.Events[len(rep.Events)-1].ResumeEpoch = resumeEpoch
			rep.Events[len(rep.Events)-1].ResumeStep = resumeStep
			rep.Recoveries++
			if opts.Reg != nil {
				opts.Reg.Counter("grist_recovery_total").Inc()
			}
		}
		rep.Attempts++
		final, fails := runResilientLeg(m, pl, store, nlev, nparts, initFn, steps, dt, resumeEpoch, resumeStep, opts)
		if len(fails) == 0 {
			return final, rep, nil
		}
		if opts.Reg != nil {
			opts.Reg.Counter("grist_rank_failures_total").Add(int64(len(fails)))
		}
		rep.Events = append(rep.Events, RecoveryEvent{Attempt: attempt, Failures: fails, ResumeEpoch: -1})
		slog.Warn("resilient leg aborted; rolling back",
			"attempt", attempt, "failures", len(fails),
			"rank", fails[0].Rank, "kind", fails[0].Kind, "reason", fails[0].Reason)
		if rep.Recoveries >= opts.MaxRecoveries {
			return nil, rep, fmt.Errorf("core: resilient run failed after %d recoveries: rank %d (%s): %s",
				rep.Recoveries, fails[0].Rank, fails[0].Kind, fails[0].Reason)
		}
	}
}

// runResilientLeg runs one attempt on a fresh world: resume from the
// given epoch (or the initial state), step to completion with gated
// steps, sentinel checks and checkpoint epochs, and gather the final
// state. Returns the failures that aborted the leg (empty on success).
func runResilientLeg(m *mesh.Mesh, pl *DistPlan, store *ShardStore, nlev, nparts int,
	initFn func(*dycore.State), steps int, dt float64, resumeEpoch, resumeStep int,
	opts ResilienceOpts) (*dycore.State, []RankFailure) {

	w := comm.NewWorld(nparts)
	if opts.Injector != nil {
		w.SetInjector(opts.Injector)
	}
	gate, _ := opts.Injector.(StepGate)

	final := dycore.NewState(m, nlev)
	var mu sync.Mutex
	var fails []RankFailure

	comm.RunOn(w, func(r *comm.Rank) {
		p := r.ID()
		defer func() {
			if e := recover(); e != nil {
				f := RankFailure{Rank: p, Reason: fmt.Sprint(e)}
				switch e.(type) {
				case rankKilled:
					f.Kind = "killed"
				case sentinelAbort:
					f.Kind = "sentinel"
				case *comm.TimeoutError:
					f.Kind = "timeout"
				default:
					f.Kind = "panic"
				}
				mu.Lock()
				fails = append(fails, f)
				mu.Unlock()
			}
		}()

		eng := dycore.New(m, nlev, opts.Mode)
		s := eng.State()
		initFn(s)
		if resumeEpoch >= 0 {
			if _, err := store.ReadShard(resumeEpoch, p, s); err != nil {
				panic(fmt.Sprintf("loading shard of epoch %d: %v", resumeEpoch, err))
			}
		}
		ex := newStateExchanger(pl, r, s, opts.Mode)
		ex.SetDeadline(opts.HaloTimeout)
		o := pl.OwnedSets(p)
		o.Start, o.Finish = ex.Start, ex.Finish
		eng.SetOwned(o)

		// The mass-conservation baseline is the initial global mass,
		// observed once per monitor lifetime (initFn writes the full
		// identical state on every rank, so rank 0's serial integral is
		// the global one). Resumed legs keep the original baseline.
		if opts.Monitor != nil && p == 0 && resumeStep == 0 {
			opts.Monitor.ObserveMassBudget(0, stateDryMass(s, m, nlev))
		}

		for i := resumeStep; i < steps; i++ {
			if gate != nil && !gate.PermitStep(p, i) {
				panic(rankKilled{step: i})
			}
			eng.Step(dt)
			step := i + 1

			if opts.Monitor != nil && step%opts.HealthEvery == 0 {
				if err := r.BarrierTimeout(opts.SyncTimeout); err != nil {
					panic(err)
				}
				// Two agreement rounds: first the global mass and the
				// summed local NaN/Inf counts, then the verdict (rank 0
				// owns the budget judgement), so every rank aborts — or
				// none does — and nobody is left behind in a collective.
				bad := float64(scanOwnedHealth(opts.Monitor, int64(step), s))
				sums := r.AllReduceSum([]float64{ownedDryMass(s, pl, p, m), bad})
				verdict := 0.0
				if p == 0 {
					drift := opts.Monitor.ObserveMassBudget(int64(step), sums[0])
					if math.IsNaN(drift) || drift > opts.Monitor.MassTol {
						verdict = 1
					}
				}
				if sums[1] > 0 {
					verdict = 1
				}
				if r.AllReduceSum([]float64{verdict})[0] > 0 {
					panic(sentinelAbort{step: step})
				}
			}

			if store != nil && step%opts.CheckpointEvery == 0 && step < steps {
				epoch := step / opts.CheckpointEvery
				if err := store.WriteShard(epoch, p, step, s); err != nil {
					panic(fmt.Sprintf("writing shard of epoch %d: %v", epoch, err))
				}
				// Commit only after every shard of the epoch is durable.
				if err := r.BarrierTimeout(opts.SyncTimeout); err != nil {
					panic(err)
				}
				if p == 0 {
					if err := store.Commit(epoch, step); err != nil {
						panic(fmt.Sprintf("committing epoch %d: %v", epoch, err))
					}
					if opts.Reg != nil {
						opts.Reg.Counter("grist_checkpoint_epochs_total").Inc()
					}
				}
			}
		}

		// All ranks alive and done: safe to enter the blocking gather.
		if err := r.BarrierTimeout(opts.SyncTimeout); err != nil {
			panic(err)
		}
		gatherState(r, final, s, pl)
	})
	return final, fails
}

// scanOwnedHealth counts this rank's non-finite prognostic values,
// recording trips through the shared monitor.
func scanOwnedHealth(h *diag.HealthMonitor, step int64, s *dycore.State) int {
	n := h.CheckFinite(step, "dry_mass", s.DryMass)
	n += h.CheckFinite(step, "theta_m", s.ThetaM)
	n += h.CheckFinite(step, "u", s.U)
	n += h.CheckFinite(step, "w", s.W)
	return n
}

// ownedDryMass integrates dry mass over rank p's owned cells; the
// AllReduce of these partials is the global budget integral.
func ownedDryMass(s *dycore.State, pl *DistPlan, p int, m *mesh.Mesh) float64 {
	nlev := pl.NLev
	var total float64
	for _, c := range pl.TendCells[p] {
		var col float64
		base := int(c) * nlev
		for k := 0; k < nlev; k++ {
			col += s.DryMass[base+k]
		}
		total += col * m.CellArea[c]
	}
	return total
}

// stateDryMass integrates dry mass over the full mesh of one state.
func stateDryMass(s *dycore.State, m *mesh.Mesh, nlev int) float64 {
	var total float64
	for c := 0; c < m.NCells; c++ {
		var col float64
		for k := 0; k < nlev; k++ {
			col += s.DryMass[c*nlev+k]
		}
		total += col * m.CellArea[c]
	}
	return total
}
