package core

// Elastic membership: the distributed runner whose decomposition is a
// run-time object. Where RunDistributedDynamicsResilient rolls every
// rank back and replays on the SAME world shape, the elastic runner
// changes shape: a classified rank death shrinks the membership,
// repartitions the mesh over the survivors (partition.Elastic, seeded
// per epoch), redistributes the last committed checkpoint shards to
// their new owners (ShardStore.Redistribute, owner-truth assembly) and
// continues — and a scheduled grow event symmetrically absorbs fresh
// ranks mid-run, shrinking the capacity-relative load imbalance back
// toward 1.
//
// Membership agreement is two-phase (DESIGN.md §11): phase one collects
// the typed per-rank failures of the aborted leg and derives the
// surviving node set; phase two needs no communication at all — every
// participant recomputes the identical decomposition from (mesh, sorted
// member list, base seed, epoch), because partition.Elastic derives the
// partitioner seed deterministically from the epoch.
//
// RunDistributedDynamicsRebalanced is the second consumer of the
// run-time decomposition: a single world that repartitions live between
// steps — measured per-rank wall times are agreed by AllGather, fed
// back as cell weights to the multilevel partitioner, and the ranks
// swap their halo layouts (HaloExchanger.SwapLayout) and ownership sets
// (Engine.SetOwned) without tearing anything down. In DP mode the final
// state is bitwise identical to the never-rebalanced run: per-entity
// kernels have decomposition-independent stencil order and halo mirrors
// are exact at step boundaries.

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"gristgo/internal/comm"
	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
	"gristgo/internal/partition"
	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// GrowEvent schedules a deliberate mid-run scale-up: when the run
// reaches the given step boundary it checkpoints, absorbs Add fresh
// nodes (the lowest free node ids — a previously failed node re-joins
// under its old id), repartitions and continues.
type GrowEvent struct {
	Step int
	Add  int
}

// ElasticOpts configures RunDistributedDynamicsElastic.
type ElasticOpts struct {
	Mode precision.Mode

	// Injector is installed on each leg's world (nil: none). If it also
	// implements StepGate it can kill ranks; the gate is addressed by
	// stable NODE id, not leg rank, so a kill stays aimed at the same
	// node across reshapes.
	Injector comm.Injector

	// CheckpointEvery (> 0, required) writes a shard epoch every N
	// steps into Dir (required). Shrink recovery resumes from the last
	// committed epoch; the shards are what gets redistributed.
	CheckpointEvery int
	Dir             string

	// Grow schedules deliberate scale-ups at step boundaries.
	Grow []GrowEvent

	// HaloTimeout bounds halo Finish, SyncTimeout the barriers (default
	// 2s each — see ResilienceOpts).
	HaloTimeout time.Duration
	SyncTimeout time.Duration

	// MaxReshapes bounds membership changes plus rollbacks (default 6).
	MaxReshapes int

	// Blocking forces blocking halo rounds instead of overlapped ones —
	// the parity leg of the overlap-vs-blocking bitwise check.
	Blocking bool

	// Seed drives the epoch-seeded partitioner (default 12345, the
	// static runners' seed).
	Seed int64

	// Capacity is the node-slot count behind the capacity-relative load
	// imbalance gauge (default: initial members plus every scheduled
	// grow). Running on fewer nodes than capacity reads as imbalance
	// even when the survivors are perfectly balanced among themselves —
	// the signal that re-absorbing a node will help.
	Capacity int

	// Reg receives grist_world_size, grist_load_imbalance,
	// grist_repartition_total, grist_repartition_cost_ms,
	// grist_checkpoint_epochs_total and grist_rank_failures_total.
	Reg *telemetry.Registry
}

// ReshapeEvent records one membership change or rollback.
type ReshapeEvent struct {
	Kind        string        `json:"kind"` // "shrink", "grow", "rollback"
	Members     []int         `json:"members"`
	Epoch       int           `json:"epoch"` // decomposition epoch after the reshape
	ResumeStep  int           `json:"resume_step"`
	Failures    []RankFailure `json:"failures,omitempty"`
	RepartMS    float64       `json:"repartition_ms"`
	RedistribMS float64       `json:"redistribute_ms"`
}

// ElasticReport summarizes an elastic run: one entry per leg plus the
// reshapes between them.
type ElasticReport struct {
	Legs         int            `json:"legs"`
	Reshapes     []ReshapeEvent `json:"reshapes,omitempty"`
	FinalMembers []int          `json:"final_members"`
	FinalEpoch   int            `json:"final_epoch"`

	// Per leg: world size and the capacity-relative cell-load imbalance
	// (max owned cells * capacity / total cells — deterministic, the
	// elastic feed of the PR 4 grist_load_imbalance gauge).
	WorldSizes   []int     `json:"world_sizes"`
	LegImbalance []float64 `json:"leg_imbalance"`
}

// cellImbalance is the capacity-relative load imbalance of a plan: the
// busiest rank's owned-cell count over the per-slot ideal share. On a
// full world this is the ordinary max/mean cell imbalance (~1); a world
// missing nodes reads > 1 even when perfectly balanced internally,
// quantifying how much a grow would recover.
func cellImbalance(pl *DistPlan, capacity int) float64 {
	maxOwned := 0
	for p := 0; p < pl.NParts; p++ {
		if n := len(pl.TendCells[p]); n > maxOwned {
			maxOwned = n
		}
	}
	return float64(maxOwned) * float64(capacity) / float64(pl.Mesh.NCells)
}

// growMembers extends the member set by add fresh nodes, reusing the
// lowest free node ids first (a dead node's id is the first to return).
func growMembers(members []int, add int) []int {
	in := make(map[int]bool, len(members))
	for _, n := range members {
		in[n] = true
	}
	out := append([]int(nil), members...)
	for id := 0; add > 0; id++ {
		if !in[id] {
			out = append(out, id)
			in[id] = true
			add--
		}
	}
	return out
}

// RunDistributedDynamicsElastic integrates the dry dynamics over an
// elastic membership: starting from nparts nodes, classified rank
// deaths shrink the world (repartition + shard redistribution +
// continue on the survivors) and scheduled GrowEvents expand it. The
// returned state is the merged final state of whatever membership
// finished the run; the error is non-nil when MaxReshapes is exhausted
// or the membership would drop to zero.
func RunDistributedDynamicsElastic(m *mesh.Mesh, nlev, nparts int,
	initFn func(*dycore.State), steps int, dt float64, opts ElasticOpts) (*dycore.State, *ElasticReport, error) {

	if opts.CheckpointEvery <= 0 || opts.Dir == "" {
		return nil, nil, fmt.Errorf("core: ElasticOpts requires CheckpointEvery > 0 and Dir (shard redistribution needs checkpoints)")
	}
	if opts.HaloTimeout <= 0 {
		opts.HaloTimeout = 2 * time.Second
	}
	if opts.SyncTimeout <= 0 {
		opts.SyncTimeout = 2 * time.Second
	}
	if opts.MaxReshapes == 0 {
		opts.MaxReshapes = 6
	}
	if opts.Seed == 0 {
		opts.Seed = 12345
	}
	if opts.Capacity == 0 {
		opts.Capacity = nparts
		for _, g := range opts.Grow {
			opts.Capacity += g.Add
		}
	}

	members := make([]int, nparts)
	for i := range members {
		members[i] = i
	}
	el, err := partition.NewElastic(m, opts.Seed, members)
	if err != nil {
		return nil, nil, err
	}
	pl := NewDistPlanFromDecomp(m, nlev, el.Decomposition())
	store, err := NewShardStore(opts.Dir, pl)
	if err != nil {
		return nil, nil, err
	}

	grows := append([]GrowEvent(nil), opts.Grow...)
	gi := 0
	rep := &ElasticReport{}
	gauge := func() {
		if opts.Reg == nil {
			return
		}
		opts.Reg.Gauge("grist_world_size").Set(float64(pl.NParts))
		opts.Reg.Gauge("grist_load_imbalance").Set(cellImbalance(pl, opts.Capacity))
	}

	for {
		resumeEpoch, resumeStep := -1, 0
		if e, s0, ok := store.LatestCommitted(); ok {
			resumeEpoch, resumeStep = e, s0
		}
		// The next scheduled grow bounds this leg: the ranks pause there
		// on a forced checkpoint so the reshape sees a committed epoch.
		for gi < len(grows) && (grows[gi].Step <= resumeStep || grows[gi].Add <= 0) {
			gi++
		}
		stopStep := steps
		if gi < len(grows) && grows[gi].Step < steps {
			stopStep = grows[gi].Step
		}

		rep.Legs++
		rep.WorldSizes = append(rep.WorldSizes, pl.NParts)
		rep.LegImbalance = append(rep.LegImbalance, cellImbalance(pl, opts.Capacity))
		gauge()

		final, fails := runElasticLeg(m, pl, store, nlev, el.Members(), initFn,
			stopStep, steps, dt, resumeEpoch, resumeStep, opts)

		if len(fails) == 0 {
			if stopStep == steps {
				rep.FinalMembers, rep.FinalEpoch = el.Members(), el.Epoch()
				return final, rep, nil
			}
			// Cooperative pause: the leg committed a checkpoint at
			// stopStep; absorb the scheduled nodes and continue.
			newMembers := growMembers(el.Members(), grows[gi].Add)
			gi++
			if err := reshape(el, newMembers, &pl, store, m, nlev, stopStep, "grow", nil, rep, opts); err != nil {
				return nil, rep, err
			}
			continue
		}

		if opts.Reg != nil {
			opts.Reg.Counter("grist_rank_failures_total").Add(int64(len(fails)))
		}
		if len(rep.Reshapes) >= opts.MaxReshapes {
			return nil, rep, fmt.Errorf("core: elastic run exceeded %d reshapes: node %d (%s): %s",
				opts.MaxReshapes, fails[0].Rank, fails[0].Kind, fails[0].Reason)
		}

		// Phase one of the membership agreement: derive the surviving
		// node set from the classified failures. Only a positively
		// classified death ("killed") removes a node — a timeout
		// witnessed by peers of a killed node is collateral, and a
		// timeout with no death at all rolls back on the same shape.
		dead := map[int]bool{}
		for _, f := range fails {
			if f.Kind == "killed" {
				dead[f.Rank] = true
			}
		}
		if len(dead) == 0 {
			rep.Reshapes = append(rep.Reshapes, ReshapeEvent{
				Kind: "rollback", Members: el.Members(), Epoch: el.Epoch(),
				ResumeStep: resumeStep, Failures: fails,
			})
			slog.Warn("elastic rollback on same shape",
				"epoch", el.Epoch(), "resume_step", resumeStep, "failures", len(fails))
			continue
		}
		var survivors []int
		for _, n := range el.Members() {
			if !dead[n] {
				survivors = append(survivors, n)
			}
		}
		if len(survivors) == 0 {
			return nil, rep, fmt.Errorf("core: every node died")
		}
		// The failed leg may have committed epochs after resumeStep
		// before dying; redistribute the newest committed one.
		_, srcStep, ok := store.LatestCommitted()
		if !ok {
			srcStep = 0
		}
		if err := reshape(el, survivors, &pl, store, m, nlev, srcStep, "shrink", fails, rep, opts); err != nil {
			return nil, rep, err
		}
	}
}

// reshape applies a membership change: recompute the decomposition over
// the new members (epoch bump, deterministic seed), rebuild the plan,
// and redistribute the committed checkpoint at resumeStep — when one
// exists — to the new owners. pl is updated in place.
func reshape(el *partition.Elastic, newMembers []int, pl **DistPlan, store *ShardStore,
	m *mesh.Mesh, nlev, resumeStep int, kind string, fails []RankFailure,
	rep *ElasticReport, opts ElasticOpts) error {

	t0 := time.Now()
	d, err := el.Resize(newMembers)
	if err != nil {
		return fmt.Errorf("core: reshape to %d nodes: %w", len(newMembers), err)
	}
	newPl := NewDistPlanFromDecomp(m, nlev, d)
	repart := time.Since(t0)

	t1 := time.Now()
	if epoch, step, ok := store.LatestCommitted(); ok {
		if err := store.Redistribute(epoch, step, newPl); err != nil {
			return err
		}
	} else {
		// Nothing committed yet: the next leg replays from the initial
		// state, which initFn produces identically on any membership.
		store.SetPlan(newPl)
	}
	redist := time.Since(t1)

	*pl = newPl
	rep.Reshapes = append(rep.Reshapes, ReshapeEvent{
		Kind: kind, Members: el.Members(), Epoch: el.Epoch(), ResumeStep: resumeStep,
		Failures:    fails,
		RepartMS:    float64(repart) / float64(time.Millisecond),
		RedistribMS: float64(redist) / float64(time.Millisecond),
	})
	if opts.Reg != nil {
		opts.Reg.Counter("grist_repartition_total").Inc()
		opts.Reg.Gauge("grist_repartition_cost_ms").Set(float64(repart+redist) / float64(time.Millisecond))
	}
	slog.Info("membership reshape",
		"kind", kind, "members", len(el.Members()), "epoch", el.Epoch(),
		"resume_step", resumeStep, "failures", len(fails),
		"repart_ms", float64(repart)/float64(time.Millisecond),
		"redistribute_ms", float64(redist)/float64(time.Millisecond))
	return nil
}

// runElasticLeg runs one membership's leg on a fresh world: resume from
// the given epoch (or the initial state), step to stopStep with gated
// steps and step-stamped checkpoint epochs, and gather the final state
// when stopStep is the end of the run. A leg that pauses for a grow
// (stopStep < steps) takes a forced checkpoint at stopStep and returns
// without gathering. Checkpoint epochs are stamped with the step number
// itself, so epochs stay unique and monotone across reshapes.
func runElasticLeg(m *mesh.Mesh, pl *DistPlan, store *ShardStore, nlev int, members []int,
	initFn func(*dycore.State), stopStep, steps int, dt float64, resumeEpoch, resumeStep int,
	opts ElasticOpts) (*dycore.State, []RankFailure) {

	w := comm.NewWorld(pl.NParts)
	if opts.Injector != nil {
		w.SetInjector(opts.Injector)
	}
	gate, _ := opts.Injector.(StepGate)

	final := dycore.NewState(m, nlev)
	var mu sync.Mutex
	var fails []RankFailure

	comm.RunOn(w, func(r *comm.Rank) {
		p := r.ID()
		node := members[p]
		defer func() {
			if e := recover(); e != nil {
				f := RankFailure{Rank: node, Reason: fmt.Sprint(e)}
				switch e.(type) {
				case rankKilled:
					f.Kind = "killed"
				case sentinelAbort:
					f.Kind = "sentinel"
				case *comm.TimeoutError:
					f.Kind = "timeout"
				default:
					f.Kind = "panic"
				}
				mu.Lock()
				fails = append(fails, f)
				mu.Unlock()
			}
		}()

		eng := dycore.New(m, nlev, opts.Mode)
		s := eng.State()
		initFn(s)
		if resumeEpoch >= 0 {
			if _, err := store.ReadShard(resumeEpoch, p, s); err != nil {
				panic(fmt.Sprintf("loading shard of epoch %d: %v", resumeEpoch, err))
			}
		}
		ex := newStateExchanger(pl, r, s, opts.Mode)
		ex.SetDeadline(opts.HaloTimeout)
		o := pl.OwnedSets(p)
		if opts.Blocking {
			o.Start = ex.Exchange
		} else {
			o.Start, o.Finish = ex.Start, ex.Finish
		}
		eng.SetOwned(o)

		for i := resumeStep; i < stopStep; i++ {
			if gate != nil && !gate.PermitStep(node, i) {
				panic(rankKilled{step: i})
			}
			eng.Step(dt)
			step := i + 1

			periodic := step%opts.CheckpointEvery == 0
			forced := step == stopStep && stopStep < steps
			if (periodic || forced) && step < steps {
				if err := store.WriteShard(step, p, step, s); err != nil {
					panic(fmt.Sprintf("writing shard of epoch %d: %v", step, err))
				}
				if err := r.BarrierTimeout(opts.SyncTimeout); err != nil {
					panic(err)
				}
				if p == 0 {
					if err := store.Commit(step, step); err != nil {
						panic(fmt.Sprintf("committing epoch %d: %v", step, err))
					}
					if opts.Reg != nil {
						opts.Reg.Counter("grist_checkpoint_epochs_total").Inc()
					}
				}
			}
		}

		if stopStep < steps {
			return // cooperative pause for a grow; the reshape takes over
		}
		if err := r.BarrierTimeout(opts.SyncTimeout); err != nil {
			panic(err)
		}
		gatherState(r, final, s, pl)
	})
	return final, fails
}

// RebalanceOpts configures RunDistributedDynamicsRebalancedOpts.
type RebalanceOpts struct {
	// RebalanceAt lists the step boundaries (1-based, exclusive of the
	// final step) where the world repartitions.
	RebalanceAt []int

	// Seed keys the deterministic partitioner (default 12345).
	Seed int64

	// Attributed selects the cost signal fed back to the partitioner.
	// False uses per-rank leg wall time — the raw imbalance-gauge
	// signal. True uses span-attributed compute time (wall minus the
	// measured halo wait): under lockstep synchronization per-rank
	// walls equalize because peers absorb a straggler's excess as
	// halo_wait, so wall-based weights misattribute — an under-loaded
	// rank reports the same wall over fewer cells and looks expensive —
	// while compute = wall − wait localizes the real load.
	Attributed bool

	// InitialWeights, when non-nil, seeds the first decomposition with
	// explicit per-cell weights (the obs experiment starts from a
	// deliberately skewed partition to measure convergence).
	InitialWeights []int32

	// Reg receives grist_repartition_total and the final
	// grist_load_imbalance (max/mean of per-rank attributed compute
	// over the last leg). Optional.
	Reg *telemetry.Registry

	// Recs, when non-nil, must hold one flight recorder per rank;
	// engine and exchanger spans land in the rank's own ring with
	// per-rank step stamps, ready for obs.Merge.
	Recs []*telemetry.Recorder
}

// RebalanceReport summarizes a rebalanced run: how many repartitions
// applied and the final leg's per-rank attribution, the numbers the
// gauge-vs-attributed comparison is judged on.
type RebalanceReport struct {
	Applied int

	// FinalComputeSec / FinalWaitSec are the last leg's per-rank
	// attributed compute (wall − halo wait) and halo wait, seconds.
	FinalComputeSec []float64
	FinalWaitSec    []float64

	// FinalImbalance is max/mean of FinalComputeSec: 1.0 is perfectly
	// balanced load. Walls cannot measure this — under lockstep they
	// equalize regardless of the split.
	FinalImbalance float64
}

// RunDistributedDynamicsRebalanced integrates like RunDistributedDynamics
// but repartitions live at the given step boundaries from measured
// per-rank wall time. Kept as the stable wall-driven entry point;
// RunDistributedDynamicsRebalancedOpts adds span-attributed weighting,
// per-rank tracing and the full report.
func RunDistributedDynamicsRebalanced(m *mesh.Mesh, nlev, nparts int, mode precision.Mode,
	initFn func(*dycore.State), steps int, dt float64, rebalanceAt []int, seed int64,
	reg *telemetry.Registry) (*dycore.State, int) {
	final, rep := RunDistributedDynamicsRebalancedOpts(m, nlev, nparts, mode, initFn, steps, dt,
		RebalanceOpts{RebalanceAt: rebalanceAt, Seed: seed, Reg: reg})
	return final, rep.Applied
}

// RunDistributedDynamicsRebalancedOpts integrates with live repartition
// inside one world: at each boundary the ranks agree on measured
// per-rank cost (AllGather), feed it back as per-cell weights to the
// multilevel partitioner, and rebind their exchanger layouts and
// ownership sets in place. Every rank derives the identical weighted
// decomposition from the agreed inputs, so no part map is communicated.
// In DP mode the result is bitwise identical to RunDistributedDynamics
// of the same configuration.
func RunDistributedDynamicsRebalancedOpts(m *mesh.Mesh, nlev, nparts int, mode precision.Mode,
	initFn func(*dycore.State), steps int, dt float64, opts RebalanceOpts) (*dycore.State, RebalanceReport) {

	seed := opts.Seed
	if seed == 0 {
		seed = 12345
	}
	rebal := map[int]bool{}
	for _, s := range opts.RebalanceAt {
		if s > 0 && s < steps {
			rebal[s] = true
		}
	}
	var pl0 *DistPlan
	if opts.InitialWeights != nil {
		if d, err := partition.DecomposeWeighted(m, nparts, seed, opts.InitialWeights); err == nil {
			pl0 = NewDistPlanFromDecomp(m, nlev, d)
		}
	}
	if pl0 == nil {
		pl0 = NewDistPlan(m, nlev, nparts, seed)
	}
	final := dycore.NewState(m, nlev)
	var rep RebalanceReport

	comm.Run(nparts, func(r *comm.Rank) {
		p := r.ID()
		pl := pl0
		eng := dycore.New(m, nlev, mode)
		s := eng.State()
		initFn(s)
		ex := newStateExchanger(pl, r, s, mode)
		if opts.Recs != nil {
			rec := opts.Recs[p]
			eng.SetTelemetry(rec, int32(p))
			ex.SetTelemetry(rec, int32(p))
		}
		bind := func() {
			o := pl.OwnedSets(p)
			o.Start, o.Finish = ex.Start, ex.Finish
			eng.SetOwned(o)
		}
		bind()

		// legCost returns the leg's (cost, wait) per the configured
		// signal, draining the exchanger stats so each leg measures
		// itself. The wait side of the drain is the same quantity the
		// halo_wait spans record.
		legStart := time.Now()
		legCost := func() (float64, float64) {
			wall := time.Since(legStart).Seconds()
			wait := ex.DrainStats().Wait.Seconds()
			compute := wall - wait
			if compute < 0 {
				compute = 0
			}
			if opts.Attributed {
				return compute, wait
			}
			return wall, wait
		}

		epoch := 0
		for i := 0; i < steps; i++ {
			if opts.Recs != nil {
				// Stamp this rank's spans with ITS step counter; the
				// recorder-wide SetStep cannot attribute concurrently
				// advancing ranks.
				eng.SetTelemetryStep(int64(i + 1))
				ex.SetTelemetryStep(int64(i + 1))
			}
			eng.Step(dt)
			step := i + 1
			if !rebal[step] {
				continue
			}
			cost, _ := legCost()

			// Agree on the measured load, then make every rank's state
			// owner-truth everywhere: after this exchange each rank holds
			// the exact owned values of all ranks, so any re-ownership is
			// safe (mirror values never leak into a new owner's region).
			costs := r.AllGather([]float64{cost})
			regions := r.AllGather(packOwnedState(s, pl, p))
			for q := 0; q < nparts; q++ {
				if q != p {
					unpackOwnedState(s, pl, q, regions[q])
				}
			}

			epoch++
			flat := make([]float64, nparts)
			for q := 0; q < nparts; q++ {
				flat[q] = costs[q][0]
			}
			d, err := partition.DecomposeWeighted(m, nparts, partition.EpochSeed(seed, epoch),
				partition.CostWeights(pl.Decomp.Part, nparts, flat))
			if err != nil {
				continue // keep the current decomposition
			}
			d.Epoch = epoch
			pl = NewDistPlanFromDecomp(m, nlev, d)
			ex.SwapLayout(pl.Layout(p))
			bind()
			legStart = time.Now()
			if p == 0 {
				rep.Applied++
				if opts.Reg != nil {
					opts.Reg.Counter("grist_repartition_total").Inc()
				}
				slog.Debug("repartition applied",
					"step", step, "epoch", epoch, "parts", nparts, "attributed", opts.Attributed)
			}
		}

		// Final-leg attribution: agree on (compute, wait) so rank 0 can
		// report the converged balance.
		wall := time.Since(legStart).Seconds()
		wait := ex.DrainStats().Wait.Seconds()
		compute := wall - wait
		if compute < 0 {
			compute = 0
		}
		finals := r.AllGather([]float64{compute, wait})
		if p == 0 {
			rep.FinalComputeSec = make([]float64, nparts)
			rep.FinalWaitSec = make([]float64, nparts)
			var sum, max float64
			for q := 0; q < nparts; q++ {
				rep.FinalComputeSec[q] = finals[q][0]
				rep.FinalWaitSec[q] = finals[q][1]
				sum += finals[q][0]
				if finals[q][0] > max {
					max = finals[q][0]
				}
			}
			if sum > 0 {
				rep.FinalImbalance = max * float64(nparts) / sum
			}
			if opts.Reg != nil {
				opts.Reg.Gauge("grist_load_imbalance").Set(rep.FinalImbalance)
			}
		}
		if err := r.BarrierTimeout(10 * time.Second); err != nil {
			panic(err)
		}
		gatherState(r, final, s, pl)
	})
	return final, rep
}
