package core

// Snapshot export hooks: the bridge between a running (or checkpointed)
// model and the serving plane (internal/serve). A committed checkpoint
// epoch doubles as an immutable state snapshot — LoadEpochState
// assembles every rank's shard back into one full-mesh state for the
// snapshot builder, and a serial model exports gristd-compatible epochs
// through a single-rank ShardStore, so the wire format between producer
// and server is exactly the PR 5 recovery format.

import (
	"fmt"

	"gristgo/internal/dycore"
)

// Plan returns the distributed plan the store's shard layout was derived
// from (the serving side needs the mesh and rank count to reassemble).
func (st *ShardStore) Plan() *DistPlan { return st.pl }

// LoadEpochState assembles every rank's shard of a committed epoch into
// s, which must span the plan's full mesh. Owned regions overlap halo
// mirrors with identical values, so assembly order does not matter. It
// returns the step count the epoch was taken at and fails if any shard
// is missing, corrupt, or disagrees on the step.
func (st *ShardStore) LoadEpochState(epoch int, s *dycore.State) (int, error) {
	step := -1
	for p := 0; p < st.pl.NParts; p++ {
		sp, err := st.ReadShard(epoch, p, s)
		if err != nil {
			return 0, fmt.Errorf("core: assembling epoch %d: %w", epoch, err)
		}
		if step >= 0 && sp != step {
			return 0, fmt.Errorf("core: epoch %d is torn: rank %d at step %d, rank 0 at step %d", epoch, p, sp, step)
		}
		step = sp
	}
	return step, nil
}

// NewSnapshotStore creates a single-rank ShardStore over the model's
// mesh: the snapshot-export target of a serial run. Epochs written
// through ExportSnapshot are readable by any ShardStore built with the
// same mesh, layer count and nparts=1 (what `gristd -parts 1` builds).
func (mod *Model) NewSnapshotStore(dir string) (*ShardStore, error) {
	pl := NewDistPlan(mod.Mesh, mod.Cfg.NLev, 1, 12345)
	return NewShardStore(dir, pl)
}

// ExportSnapshot writes the model's current dynamics state as the given
// committed epoch of a single-rank store: one shard, then the manifest.
// The store must come from NewSnapshotStore (or an equivalent 1-part
// plan over the same mesh).
func (mod *Model) ExportSnapshot(st *ShardStore, epoch int) error {
	if st.pl.NParts != 1 {
		return fmt.Errorf("core: ExportSnapshot needs a single-rank store, got %d parts", st.pl.NParts)
	}
	if err := st.WriteShard(epoch, 0, mod.stepCount, mod.Engine.State()); err != nil {
		return err
	}
	return st.Commit(epoch, mod.stepCount)
}
