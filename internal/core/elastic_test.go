package core

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"gristgo/internal/dycore"
	"gristgo/internal/fault"
	"gristgo/internal/partition"
	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// assertNoLeakedGoroutines waits for the goroutine count to settle back
// to the pre-run level (plus test-harness slack); elastic worlds that
// leak ranks across reshapes fail here under -race.
func assertNoLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across elastic reshapes: %d before, %d after settle", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Without kills or grows the elastic runner is a resilient run under a
// different decomposition — and DP results are decomposition-invariant
// (per-entity kernels, mesh-ordered stencils, exact mirrors at step
// boundaries), so it must match the plain runner bitwise even though
// the epoch-seeded part map differs from the static one.
func TestElasticCleanMatchesPlainBitwise(t *testing.T) {
	m := sharedMesh3
	nlev, nparts, steps, dt := 4, 4, 6, 90.0
	plain := RunDistributedDynamics(m, nlev, nparts, precision.DP, resilientInit, steps, dt)

	halo, sync := testTimeouts()
	got, rep, err := RunDistributedDynamicsElastic(m, nlev, nparts, resilientInit, steps, dt,
		ElasticOpts{
			Mode: precision.DP, CheckpointEvery: 2, Dir: t.TempDir(),
			HaloTimeout: halo, SyncTimeout: sync,
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Legs != 1 || len(rep.Reshapes) != 0 || rep.FinalEpoch != 0 {
		t.Fatalf("clean elastic report: %+v", rep)
	}
	assertBitwise(t, got, plain, "clean elastic run")
}

// The tentpole acceptance scenario ("shrinkgrow"): node 1 is killed at
// step 4, the run repartitions over the three survivors and continues
// from the redistributed epoch-4 shards; at step 8 a scheduled grow
// re-absorbs a fourth node (node 1's id is reused) and the run
// finishes on the full world. The world is never restarted from step 0.
// In DP the final state is bitwise identical to an uninjected plain
// run — strictly stronger than the 5% ps/vor gate, which is asserted
// explicitly as well. The goroutine count must settle afterwards.
func TestElasticShrinkGrowBitwiseDP(t *testing.T) {
	before := runtime.NumGoroutine()
	m := sharedMesh3
	nlev, nparts, steps, dt := 4, 4, 12, 90.0
	plain := RunDistributedDynamics(m, nlev, nparts, precision.DP, resilientInit, steps, dt)

	plan := fault.NewPlan(7, fault.Profile{Name: "shrinkgrow", KillRank: 1, KillStep: 4})
	halo, sync := testTimeouts()
	reg := telemetry.NewRegistry()
	got, rep, err := RunDistributedDynamicsElastic(m, nlev, nparts, resilientInit, steps, dt,
		ElasticOpts{
			Mode: precision.DP, Injector: plan,
			CheckpointEvery: 2, Dir: t.TempDir(),
			Grow:        []GrowEvent{{Step: 8, Add: 1}},
			HaloTimeout: halo, SyncTimeout: sync,
			Capacity: nparts, Reg: reg,
		})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Legs != 3 || len(rep.Reshapes) != 2 {
		t.Fatalf("legs %d, reshapes %d, want 3 and 2: %+v", rep.Legs, len(rep.Reshapes), rep)
	}
	shrink, grow := rep.Reshapes[0], rep.Reshapes[1]
	if shrink.Kind != "shrink" || fmt.Sprint(shrink.Members) != "[0 2 3]" || shrink.Epoch != 1 {
		t.Fatalf("shrink event: %+v", shrink)
	}
	killed := false
	for _, f := range shrink.Failures {
		if f.Rank == 1 && f.Kind == "killed" {
			killed = true
		}
	}
	if !killed {
		t.Fatalf("shrink does not record node 1 as killed: %+v", shrink.Failures)
	}
	if shrink.ResumeStep != 4 {
		t.Fatalf("shrink resumed at step %d, want 4 (kill at step 4, epochs every 2)", shrink.ResumeStep)
	}
	if grow.Kind != "grow" || fmt.Sprint(grow.Members) != "[0 1 2 3]" || grow.Epoch != 2 || grow.ResumeStep != 8 {
		t.Fatalf("grow event: %+v", grow)
	}
	if fmt.Sprint(rep.WorldSizes) != "[4 3 4]" {
		t.Fatalf("world sizes %v, want [4 3 4]", rep.WorldSizes)
	}
	if fmt.Sprint(rep.FinalMembers) != "[0 1 2 3]" || rep.FinalEpoch != 2 {
		t.Fatalf("final membership %v epoch %d", rep.FinalMembers, rep.FinalEpoch)
	}

	// The grow must measurably reduce the capacity-relative load
	// imbalance: the shrunk leg idles one node slot (~4/3), the grown
	// leg uses all four (~1).
	if rep.LegImbalance[1] < rep.LegImbalance[2]+0.2 {
		t.Fatalf("grow did not reduce imbalance: shrunk %.3f, grown %.3f",
			rep.LegImbalance[1], rep.LegImbalance[2])
	}
	if g := reg.Gauge("grist_load_imbalance").Value(); g != rep.LegImbalance[2] {
		t.Fatalf("grist_load_imbalance = %v, want %v (last leg)", g, rep.LegImbalance[2])
	}
	if n := reg.Counter("grist_repartition_total").Value(); n != 2 {
		t.Fatalf("grist_repartition_total = %d, want 2", n)
	}
	if n := reg.Counter("grist_rank_failures_total").Value(); n == 0 {
		t.Fatal("grist_rank_failures_total = 0")
	}

	assertBitwise(t, got, plain, "shrink/grow run")
	psGot, psWant := got.SurfacePressure(), plain.SurfacePressure()
	if e := relL2(psGot, psWant); e > 0.05 {
		t.Fatalf("ps relative error %.2e exceeds the 5%% gate", e)
	}
	vorGot := dycore.NewFromState(got, precision.DP).VorticityAtLevel(2)
	vorWant := dycore.NewFromState(plain, precision.DP).VorticityAtLevel(2)
	if e := relL2(vorGot, vorWant); e > 0.05 {
		t.Fatalf("vor relative error %.2e exceeds the 5%% gate", e)
	}

	assertNoLeakedGoroutines(t, before)
}

// The same scenario in mixed precision: FP32 wire rounding makes the
// mirror sets decomposition-dependent, so bitwise identity is not
// expected — but the §3.4 5% ps/vor gate must hold against an
// uninjected mixed-precision run.
func TestElasticShrinkGrowMixedWithinGate(t *testing.T) {
	m := sharedMesh3
	nlev, nparts, steps, dt := 4, 4, 12, 90.0
	plain := RunDistributedDynamics(m, nlev, nparts, precision.Mixed, resilientInit, steps, dt)

	plan := fault.NewPlan(7, fault.Profile{Name: "shrinkgrow", KillRank: 1, KillStep: 4})
	halo, sync := testTimeouts()
	got, rep, err := RunDistributedDynamicsElastic(m, nlev, nparts, resilientInit, steps, dt,
		ElasticOpts{
			Mode: precision.Mixed, Injector: plan,
			CheckpointEvery: 2, Dir: t.TempDir(),
			Grow:        []GrowEvent{{Step: 8, Add: 1}},
			HaloTimeout: halo, SyncTimeout: sync,
		})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rep.WorldSizes) != "[4 3 4]" {
		t.Fatalf("world sizes %v, want [4 3 4]", rep.WorldSizes)
	}
	if e := relL2(got.SurfacePressure(), plain.SurfacePressure()); e > 0.05 {
		t.Fatalf("mixed ps relative error %.2e exceeds the 5%% gate", e)
	}
	vorGot := dycore.NewFromState(got, precision.DP).VorticityAtLevel(2)
	vorWant := dycore.NewFromState(plain, precision.DP).VorticityAtLevel(2)
	if e := relL2(vorGot, vorWant); e > 0.05 {
		t.Fatalf("mixed vor relative error %.2e exceeds the 5%% gate", e)
	}
}

// haloStallInjector delays exactly one positive-tag halo message far
// past the receiver's deadline: a transient stall with no dead node,
// which the elastic runner must classify as "timeout" (rollback), never
// "killed" (shrink). One-shot, so the replay leg does not re-suffer it.
type haloStallInjector struct {
	mu    sync.Mutex
	after int // let this many messages through first
	n     int
	done  bool
}

func (h *haloStallInjector) OnSend(from, to, tag, attempt int, data []byte) (bool, time.Duration) {
	if tag < 0 {
		return false, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n++
	if !h.done && h.n > h.after {
		h.done = true
		return false, 600 * time.Millisecond
	}
	return false, 0
}

// A timeout with no classified death must roll back on the SAME
// membership, not shrink: dropping a live node on a transient would
// shed capacity permanently.
func TestElasticTimeoutRollsBackWithoutShrinking(t *testing.T) {
	m := sharedMesh3
	nlev, nparts, steps, dt := 2, 3, 4, 60.0
	plain := RunDistributedDynamics(m, nlev, nparts, precision.DP, resilientInit, steps, dt)

	inj := &haloStallInjector{after: 20} // stalls one message long past the deadline, once
	halo := 150 * time.Millisecond
	got, rep, err := RunDistributedDynamicsElastic(m, nlev, nparts, resilientInit, steps, dt,
		ElasticOpts{
			Mode: precision.DP, Injector: inj,
			CheckpointEvery: 2, Dir: t.TempDir(),
			HaloTimeout: halo, SyncTimeout: time.Second,
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reshapes) == 0 {
		t.Fatal("the stalled leg left no trace in the report")
	}
	for _, ev := range rep.Reshapes {
		if ev.Kind != "rollback" {
			t.Fatalf("membership changed on an unclassified timeout: %+v", ev)
		}
	}
	if rep.WorldSizes[len(rep.WorldSizes)-1] != nparts {
		t.Fatalf("world shrank to %d on a timeout", rep.WorldSizes[len(rep.WorldSizes)-1])
	}
	assertBitwise(t, got, plain, "rollback run")
}

// Live rebalancing inside one world: SwapLayout + SetOwned between
// steps, weighted repartition from agreed wall times. DP result must be
// bitwise identical to the never-rebalanced run.
func TestRebalancedMatchesPlainBitwiseDP(t *testing.T) {
	m := sharedMesh3
	nlev, nparts, steps, dt := 4, 4, 9, 90.0
	plain := RunDistributedDynamics(m, nlev, nparts, precision.DP, resilientInit, steps, dt)

	reg := telemetry.NewRegistry()
	got, applied := RunDistributedDynamicsRebalanced(m, nlev, nparts, precision.DP,
		resilientInit, steps, dt, []int{3, 6}, 12345, reg)
	if applied != 2 {
		t.Fatalf("applied %d repartitions, want 2", applied)
	}
	if n := reg.Counter("grist_repartition_total").Value(); n != 2 {
		t.Fatalf("grist_repartition_total = %d, want 2", n)
	}
	assertBitwise(t, got, plain, "rebalanced run")
}

// Redistribute must assemble owner-truth: every entity of the reshared
// epoch comes from the rank that owned it under the old plan, the
// retired rank's shard file is pruned, and the epoch re-verifies (and
// resumes) under the new plan and generation.
func TestRedistributePreservesOwnerTruth(t *testing.T) {
	m := sharedMesh3
	nlev := 4
	s := RunDistributedDynamics(m, nlev, 4, precision.DP, resilientInit, 3, 90.0)

	dir := t.TempDir()
	plA := NewDistPlan(m, nlev, 4, 12345)
	store, err := NewShardStore(dir, plA)
	if err != nil {
		t.Fatal(err)
	}
	const epoch, step = 5, 3
	for p := 0; p < 4; p++ {
		if err := store.WriteShard(epoch, p, step, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Commit(epoch, step); err != nil {
		t.Fatal(err)
	}

	el, err := partition.NewElastic(m, 12345, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	d, err := el.Resize([]int{0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	plB := NewDistPlanFromDecomp(m, nlev, d)
	if err := store.Redistribute(epoch, step, plB); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-e%06d-r%04d.grist", epoch, 3))); !os.IsNotExist(err) {
		t.Fatalf("retired rank 3's shard was not pruned: %v", err)
	}
	if e, st0, ok := store.LatestCommitted(); !ok || e != epoch || st0 != step {
		t.Fatalf("LatestCommitted after redistribution = (%d, %d, %v), want (%d, %d, true)", e, st0, ok, epoch, step)
	}

	got := dycore.NewState(m, nlev)
	for p := 0; p < plB.NParts; p++ {
		if _, err := store.ReadShard(epoch, p, got); err != nil {
			t.Fatal(err)
		}
	}
	assertBitwise(t, got, s, "redistributed epoch")
}

// Satellite regression: the verified-epoch memo must notice a shard
// file disappearing from disk. Memoize an epoch, delete one of its
// shards, and LatestCommitted must fall back to the older epoch rather
// than serving the stale memo.
func TestLatestCommittedDropsMemoOnMissingShard(t *testing.T) {
	m := sharedMesh3
	nlev := 2
	dir := t.TempDir()
	pl := NewDistPlan(m, nlev, 2, 1)
	store, err := NewShardStore(dir, pl)
	if err != nil {
		t.Fatal(err)
	}
	s := dycore.NewState(m, nlev)
	resilientInit(s)
	for _, epoch := range []int{2, 4} {
		for p := 0; p < 2; p++ {
			if err := store.WriteShard(epoch, p, epoch, s); err != nil {
				t.Fatal(err)
			}
		}
		if err := store.Commit(epoch, epoch); err != nil {
			t.Fatal(err)
		}
	}
	if e, _, ok := store.LatestCommitted(); !ok || e != 4 {
		t.Fatalf("LatestCommitted = (%d, %v), want epoch 4", e, ok)
	}
	// Both epochs are now memoized. Remove one epoch-4 shard behind the
	// store's back — the next call must NOT serve epoch 4 from the memo.
	if err := os.Remove(filepath.Join(dir, fmt.Sprintf("shard-e%06d-r%04d.grist", 4, 1))); err != nil {
		t.Fatal(err)
	}
	if e, _, ok := store.LatestCommitted(); !ok || e != 4 {
		if !ok || e != 2 {
			t.Fatalf("after shard removal LatestCommitted = (%d, %v), want epoch 2", e, ok)
		}
	} else {
		t.Fatal("LatestCommitted served epoch 4 from the memo after its shard disappeared")
	}
	// And it stays retired on subsequent polls.
	if e, _, ok := store.LatestCommitted(); !ok || e != 2 {
		t.Fatalf("second poll after shard removal = (%d, %v), want epoch 2", e, ok)
	}
}
