package core

import (
	"math"
	"testing"

	"gristgo/internal/dycore"
	"gristgo/internal/precision"
)

// TestOverlapBitIdenticalToBlocking: the Start/interior/Finish/boundary
// schedule must produce exactly the same bits as running every exchange
// as a blocking round — the payload is sealed at Start and the interior
// partition reads no halo data, so overlap is free of rounding cost.
func TestOverlapBitIdenticalToBlocking(t *testing.T) {
	m := sharedMesh3
	nlev := 5
	init := func(s *dycore.State) {
		s.IsothermalRest(292)
		s.AddThermalBubble(0.5, 1.0, 0.3, 5)
		s.AddSolidBodyWind(22)
	}
	steps := 4
	dt := 90.0
	for _, mode := range []precision.Mode{precision.DP, precision.Mixed} {
		for _, nparts := range []int{3, 6} {
			blocking := runDistributedDynamics(m, nlev, nparts, mode, init, steps, dt,
				distOpts{blocking: true})
			overlap := runDistributedDynamics(m, nlev, nparts, mode, init, steps, dt,
				distOpts{})
			cmp := func(name string, a, b []float64) {
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("mode=%v nparts=%d: %s[%d] differs bitwise: %g vs %g",
							mode, nparts, name, i, a[i], b[i])
					}
				}
			}
			cmp("DryMass", overlap.DryMass, blocking.DryMass)
			cmp("ThetaM", overlap.ThetaM, blocking.ThetaM)
			cmp("U", overlap.U, blocking.U)
			cmp("W", overlap.W, blocking.W)
			cmp("Phi", overlap.Phi, blocking.Phi)
		}
	}
}

// TestMixedExchangeBytesBudget: the measured bytes enqueued per run under
// precision.Mixed must be at most 60% of the FP64 payload (§3.4: the
// halved insensitive words are where the communication saving comes
// from).
func TestMixedExchangeBytesBudget(t *testing.T) {
	m := sharedMesh3
	nlev := 6
	init := func(s *dycore.State) {
		s.IsothermalRest(290)
		s.AddSolidBodyWind(15)
	}
	steps, dt := 2, 60.0
	nparts := 4
	bytesOf := func(mode precision.Mode) int64 {
		tm := NewTimings()
		_, st := RunDistributedDynamicsTimed(m, nlev, nparts, mode, init, steps, dt, tm)
		if st.Rounds == 0 || st.BytesSent == 0 {
			t.Fatalf("mode %v: no exchange traffic measured", mode)
		}
		return st.BytesSent
	}
	dp := bytesOf(precision.DP)
	mixed := bytesOf(precision.Mixed)
	if ratio := float64(mixed) / float64(dp); ratio > 0.60 {
		t.Errorf("Mixed payload is %.1f%% of DP (%d vs %d bytes), want <= 60%%",
			ratio*100, mixed, dp)
	}
}

// relL2 is the paper's accuracy metric (§3.4.1): the L2 norm of the
// difference relative to the reference norm.
func relL2(a, ref []float64) float64 {
	var num, den float64
	for i := range a {
		d := a[i] - ref[i]
		num += d * d
		den += ref[i] * ref[i]
	}
	return math.Sqrt(num / den)
}

// TestMixedDistributedAccuracyGate validates the distributed mixed-
// precision path against the paper's acceptance criterion: relative L2
// errors of surface pressure and relative vorticity under 5% of the
// double-precision reference (§3.4.1, ErrorThreshold = 0.05).
func TestMixedDistributedAccuracyGate(t *testing.T) {
	m := sharedMesh3
	nlev := 6
	init := func(s *dycore.State) {
		s.IsothermalRest(295)
		s.AddThermalBubble(0.4, 1.2, 0.25, 6)
		s.AddSolidBodyWind(18)
	}
	steps, dt := 10, 90.0

	serialEng := dycore.New(m, nlev, precision.DP)
	init(serialEng.State())
	for i := 0; i < steps; i++ {
		serialEng.Step(dt)
	}
	refPs := serialEng.State().SurfacePressure()
	refVor := serialEng.VorticityAtLevel(nlev / 2)

	mixed := RunDistributedDynamics(m, nlev, 4, precision.Mixed, init, steps, dt)
	ps := mixed.SurfacePressure()
	vor := dycore.NewFromState(mixed, precision.DP).VorticityAtLevel(nlev / 2)

	if e := relL2(ps, refPs); e >= 0.05 {
		t.Errorf("surface pressure RelL2 = %g, want < 0.05", e)
	}
	if e := relL2(vor, refVor); e >= 0.05 {
		t.Errorf("vorticity RelL2 = %g, want < 0.05", e)
	}
}

// TestMeasuredCommShare: the timed driver must surface nonzero dynamics
// wall time and halo wait, and the derived share must be a sane
// fraction.
func TestMeasuredCommShare(t *testing.T) {
	m := sharedMesh3
	init := func(s *dycore.State) {
		s.IsothermalRest(290)
		s.AddSolidBodyWind(10)
	}
	tm := NewTimings()
	_, st := RunDistributedDynamicsTimed(m, 4, 3, precision.DP, init, 3, 60, tm)
	if st.Rounds == 0 {
		t.Fatal("no exchange rounds recorded")
	}
	wait, calls := tm.Get("halo_wait")
	if calls != st.Rounds || wait != st.Wait {
		t.Errorf("drained (%v, %d), stats (%v, %d)", wait, calls, st.Wait, st.Rounds)
	}
	share := MeasuredCommShare(tm)
	if share < 0 || share >= 1 {
		t.Errorf("measured comm share %g out of range", share)
	}
}
