// Package vfs is the injectable filesystem seam under every durable
// path: checkpoint shards, epoch manifests, restart files and grouped
// parallel-IO streams all go through an FS value instead of calling
// the os package directly, so the chaos layer (internal/fault.FS) can
// decorate one interface with torn writes, read bit-flips, ENOSPC,
// EIO, latency and rename reordering — and the production default
// (vfs.OS) stays a zero-cost passthrough.
//
// The interface is deliberately the small set the durable paths use:
// open/create/temp, whole-file read, rename/remove/stat, directory
// creation and globbing. Anything not needed by a //grist:durable
// call site stays off the interface so a fault decorator cannot fall
// out of sync with a path it never sees.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is one open file on an FS. The method set is what the durable
// writers need: streaming writes, positional and streaming reads, an
// explicit Sync (the durability point — rename-before-sync is the
// classic torn-commit bug) and the name for error messages.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.Closer
	Sync() error
	Name() string
}

// FS is the filesystem operations surface of the durable paths.
// Implementations must be safe for concurrent use by multiple
// goroutines (ranks write their shards in parallel).
type FS interface {
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Create truncates-or-creates a file for writing.
	Create(name string) (File, error)
	// CreateTemp creates a uniquely named temp file in dir (see
	// os.CreateTemp for the pattern contract).
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat describes a file.
	Stat(name string) (fs.FileInfo, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
	// Glob lists the names matching a shell pattern.
	Glob(pattern string) ([]string, error)
}

// osFS is the passthrough production implementation.
type osFS struct{}

// OS is the real filesystem: every method delegates to the os package.
var OS FS = osFS{}

func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) ReadFile(name string) ([]byte, error)  { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error  { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error              { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }
