package vfs

import (
	"io"
	"path/filepath"
	"testing"
)

// The OS passthrough must behave exactly like the os package for the
// operation mix the durable paths use: temp-write-sync-rename-read.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "record.bin")

	f, err := OS.CreateTemp(dir, ".record.bin.tmp-")
	if err != nil {
		t.Fatal(err)
	}
	tmp := f.Name()
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}

	raw, err := OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "payload" {
		t.Fatalf("read back %q, want %q", raw, "payload")
	}

	info, err := OS.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(len("payload")) {
		t.Fatalf("Stat size %d, want %d", info.Size(), len("payload"))
	}

	names, err := OS.Glob(filepath.Join(dir, "record.*"))
	if err != nil || len(names) != 1 {
		t.Fatalf("Glob = (%v, %v), want one match", names, err)
	}

	rd, err := OS.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := rd.ReadAt(buf, 3); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "loa" {
		t.Fatalf("ReadAt = %q, want %q", buf, "loa")
	}
	all, err := io.ReadAll(rd)
	if err != nil || string(all) != "payload" {
		t.Fatalf("sequential read after ReadAt = (%q, %v)", all, err)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}

	if err := OS.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Stat(path); err == nil {
		t.Fatal("Stat succeeded after Remove")
	}

	sub := filepath.Join(dir, "a", "b")
	if err := OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if info, err := OS.Stat(sub); err != nil || !info.IsDir() {
		t.Fatalf("MkdirAll result = (%v, %v), want directory", info, err)
	}
}
