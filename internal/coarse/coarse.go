// Package coarse implements the training-data pipeline of §3.2.1–3.2.2:
// coarse-graining of storm-resolving model output onto a lower-resolution
// mesh, the residual-method computation of the apparent heat source Q1
// and apparent moisture sink Q2, and the paper's train/test split (three
// randomly selected test steps per day, the rest training — a 7:1 ratio
// on hourly data).
package coarse

import (
	"math/rand"

	"gristgo/internal/mesh"
)

// Regridder maps cell fields from a fine mesh to a coarse mesh by
// area-weighted aggregation: every fine cell contributes to its nearest
// coarse cell (for icosahedral meshes of different levels this is the
// containing coarse region up to boundary rounding).
type Regridder struct {
	Fine, Coarse *mesh.Mesh
	assign       []int32   // fine cell -> coarse cell
	weight       []float64 // total fine area per coarse cell
}

// NewRegridder builds the fine-to-coarse assignment. Cost is
// O(fineCells * log-ish) using a greedy walk on the coarse mesh from a
// warm-start neighbor, which is fast because consecutive fine cells are
// spatially close after BFS ordering.
func NewRegridder(fine, coarse *mesh.Mesh) *Regridder {
	r := &Regridder{
		Fine:   fine,
		Coarse: coarse,
		assign: make([]int32, fine.NCells),
		weight: make([]float64, coarse.NCells),
	}
	guess := int32(0)
	for c := 0; c < fine.NCells; c++ {
		guess = nearestCoarse(coarse, fine.CellPos[c], guess)
		r.assign[c] = guess
		r.weight[guess] += fine.CellArea[c]
	}
	return r
}

// nearestCoarse walks the coarse cell graph downhill in distance from the
// starting guess — exact for convex (spherical Voronoi) regions.
func nearestCoarse(coarse *mesh.Mesh, p mesh.Vec3, start int32) int32 {
	cur := start
	dcur := mesh.ArcLength(coarse.CellPos[cur], p)
	for {
		improved := false
		for _, nb := range coarse.CellCells(cur) {
			if d := mesh.ArcLength(coarse.CellPos[nb], p); d < dcur {
				cur, dcur = nb, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// Assignment returns the fine->coarse cell map.
func (r *Regridder) Assignment() []int32 { return r.assign }

// CellField coarse-grains a per-cell field (area-weighted mean).
func (r *Regridder) CellField(fine []float64) []float64 {
	out := make([]float64, r.Coarse.NCells)
	for c, cc := range r.assign {
		out[cc] += fine[c] * r.Fine.CellArea[c]
	}
	for cc := range out {
		out[cc] /= r.weight[cc]
	}
	return out
}

// ColumnField coarse-grains a column-major per-cell field [c*nlev+k].
func (r *Regridder) ColumnField(fine []float64, nlev int) []float64 {
	out := make([]float64, r.Coarse.NCells*nlev)
	for c, cc := range r.assign {
		w := r.Fine.CellArea[c]
		for k := 0; k < nlev; k++ {
			out[int(cc)*nlev+k] += fine[c*nlev+k] * w
		}
	}
	for cc := 0; cc < r.Coarse.NCells; cc++ {
		inv := 1.0 / r.weight[cc]
		for k := 0; k < nlev; k++ {
			out[cc*nlev+k] *= inv
		}
	}
	return out
}

// Sample is one training example of the ML physics suite: the
// coarse-grained column state (the CNN input channels U, V, T, Q, P) and
// the residual-method targets Q1 (K/s) and Q2 (kg/kg/s), plus the
// radiation-module quantities.
type Sample struct {
	// Column inputs, [k] per level.
	U, V, T, Q, P []float64
	// Surface scalars.
	Tskin, CosZ float64
	// Targets.
	Q1, Q2   []float64 // per level
	Gsw, Glw float64
	Precip   float64 // surface precipitation rate, mm/day
	// Bookkeeping for the split.
	Day, StepOfDay int
}

// ResidualQ1Q2 computes the apparent heat source and moisture sink by the
// residual method (§3.2.2, citing Zhang et al. 2022): the total
// coarse-grained tendency of T (or q) minus the tendency produced by the
// resolved coarse dynamics alone:
//
//	Q1 = (T_cg(t+dt) - T_dyn(t+dt)) / dt
//	Q2 = (q_cg(t+dt) - q_dyn(t+dt)) / dt
//
// where T_cg is the coarse-grained truth and T_dyn the result of a
// dynamics-only step started from the coarse-grained state at t. All
// arrays are column-major over the coarse mesh.
func ResidualQ1Q2(tCG, tDyn, qCG, qDyn []float64, dt float64) (q1, q2 []float64) {
	q1 = make([]float64, len(tCG))
	q2 = make([]float64, len(qCG))
	inv := 1.0 / dt
	for i := range tCG {
		q1[i] = (tCG[i] - tDyn[i]) * inv
		q2[i] = (qCG[i] - qDyn[i]) * inv
	}
	return q1, q2
}

// Split divides samples into training and testing sets following the
// paper: for each simulated day, three randomly chosen steps go to the
// test set and the remainder to training (7:1 with hourly snapshots and
// 24 steps/day). The RNG makes the split reproducible.
func Split(samples []*Sample, stepsPerDay int, rng *rand.Rand) (train, test []*Sample) {
	// Group indices by day (iterated in sorted order so a fixed seed
	// yields a reproducible split).
	byDay := map[int][]int{}
	maxDay := 0
	for i, s := range samples {
		byDay[s.Day] = append(byDay[s.Day], i)
		if s.Day > maxDay {
			maxDay = s.Day
		}
	}
	testIdx := map[int]bool{}
	for day := 0; day <= maxDay; day++ {
		idxs := byDay[day]
		if len(idxs) == 0 {
			continue
		}
		perm := rng.Perm(len(idxs))
		nTest := 3
		if nTest > len(idxs) {
			nTest = len(idxs)
		}
		for _, j := range perm[:nTest] {
			testIdx[idxs[j]] = true
		}
	}
	for i, s := range samples {
		if testIdx[i] {
			test = append(test, s)
		} else {
			train = append(train, s)
		}
	}
	return train, test
}
