package coarse

import (
	"math"
	"math/rand"
	"testing"

	"gristgo/internal/mesh"
	"gristgo/internal/synthclim"
)

func TestRegridderConservesMean(t *testing.T) {
	fine := mesh.New(4)
	crs := mesh.New(2)
	r := NewRegridder(fine, crs)

	field := make([]float64, fine.NCells)
	var fineMean, fineArea float64
	for c := 0; c < fine.NCells; c++ {
		field[c] = math.Sin(2*fine.CellLat[c]) + 0.3*math.Cos(fine.CellLon[c])
		fineMean += field[c] * fine.CellArea[c]
		fineArea += fine.CellArea[c]
	}
	fineMean /= fineArea

	out := r.CellField(field)
	var crsMean, crsArea float64
	for cc := 0; cc < crs.NCells; cc++ {
		// Weight by aggregated fine area, the measure the regridder uses.
		crsMean += out[cc] * r.weight[cc]
		crsArea += r.weight[cc]
	}
	crsMean /= crsArea
	if d := math.Abs(crsMean - fineMean); d > 1e-12 {
		t.Errorf("global mean not conserved: %g vs %g", crsMean, fineMean)
	}
}

func TestRegridderConstantField(t *testing.T) {
	fine := mesh.New(3)
	crs := mesh.New(1)
	r := NewRegridder(fine, crs)
	field := make([]float64, fine.NCells)
	for c := range field {
		field[c] = 7.25
	}
	for _, v := range r.CellField(field) {
		if math.Abs(v-7.25) > 1e-12 {
			t.Fatalf("constant field not preserved: %v", v)
		}
	}
}

func TestRegridderAssignmentIsNearest(t *testing.T) {
	fine := mesh.New(3)
	crs := mesh.New(1)
	r := NewRegridder(fine, crs)
	for c := 0; c < fine.NCells; c += 37 {
		got := r.assign[c]
		// Brute-force nearest.
		best, bd := int32(-1), math.Inf(1)
		for cc := 0; cc < crs.NCells; cc++ {
			if d := mesh.ArcLength(crs.CellPos[cc], fine.CellPos[c]); d < bd {
				best, bd = int32(cc), d
			}
		}
		if got != best {
			// The walk is exact for Voronoi regions; allow ties only.
			dGot := mesh.ArcLength(crs.CellPos[got], fine.CellPos[c])
			if dGot > bd+1e-12 {
				t.Fatalf("fine cell %d assigned to %d (d=%g), nearest is %d (d=%g)", c, got, dGot, best, bd)
			}
		}
	}
}

func TestColumnFieldSmoothsFineStructure(t *testing.T) {
	fine := mesh.New(4)
	crs := mesh.New(2)
	r := NewRegridder(fine, crs)
	nlev := 3
	field := make([]float64, fine.NCells*nlev)
	for c := 0; c < fine.NCells; c++ {
		for k := 0; k < nlev; k++ {
			field[c*nlev+k] = math.Sin(20*fine.CellLat[c]) * math.Cos(15*fine.CellLon[c])
		}
	}
	out := r.ColumnField(field, nlev)
	variance := func(xs []float64) float64 {
		var m float64
		for _, x := range xs {
			m += x
		}
		m /= float64(len(xs))
		var v float64
		for _, x := range xs {
			v += (x - m) * (x - m)
		}
		return v / float64(len(xs))
	}
	if variance(out) >= variance(field) {
		t.Error("coarse-graining did not reduce variance of fine-scale field")
	}
}

func TestResidualQ1Q2(t *testing.T) {
	tCG := []float64{280, 281}
	tDyn := []float64{279.5, 281.5}
	qCG := []float64{0.010, 0.009}
	qDyn := []float64{0.011, 0.009}
	q1, q2 := ResidualQ1Q2(tCG, tDyn, qCG, qDyn, 100)
	if math.Abs(q1[0]-0.005) > 1e-12 || math.Abs(q1[1]+0.005) > 1e-12 {
		t.Errorf("q1 = %v", q1)
	}
	if math.Abs(q2[0]+1e-5) > 1e-12 || q2[1] != 0 {
		t.Errorf("q2 = %v", q2)
	}
}

func TestSplitRatio(t *testing.T) {
	// 24 hourly steps per day over 5 days: 3 test steps/day -> 7:1.
	var samples []*Sample
	for day := 0; day < 5; day++ {
		for step := 0; step < 24; step++ {
			// Two cells per step to mimic multiple columns.
			samples = append(samples, &Sample{Day: day, StepOfDay: step})
		}
	}
	rng := rand.New(rand.NewSource(3))
	train, test := Split(samples, 24, rng)
	if len(train)+len(test) != len(samples) {
		t.Fatal("split lost samples")
	}
	wantTest := 5 * 3
	if len(test) != wantTest {
		t.Errorf("test set %d, want %d", len(test), wantTest)
	}
	if ratio := float64(len(train)) / float64(len(test)); math.Abs(ratio-7) > 1e-9 {
		t.Errorf("train:test = %v, want 7", ratio)
	}
}

func TestSplitDeterministicPerSeed(t *testing.T) {
	var samples []*Sample
	for day := 0; day < 3; day++ {
		for step := 0; step < 24; step++ {
			samples = append(samples, &Sample{Day: day, StepOfDay: step})
		}
	}
	_, t1 := Split(samples, 24, rand.New(rand.NewSource(9)))
	_, t2 := Split(samples, 24, rand.New(rand.NewSource(9)))
	if len(t1) != len(t2) {
		t.Fatal("split not deterministic")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestGeneratorProducesPhysicalSamples(t *testing.T) {
	if testing.Short() {
		t.Skip("generator run is slow")
	}
	cfg := GeneratorConfig{
		FineLevel: 3, CoarseLevel: 2, NLev: 6,
		StepsPerDay: 2, Days: 1,
		Period: synthclim.Table1()[2],
	}
	g := NewGenerator(cfg, nil, nil)
	samples := g.Run()
	wantN := 2 * g.CoarseM.NCells
	if len(samples) != wantN {
		t.Fatalf("samples = %d, want %d", len(samples), wantN)
	}
	for _, s := range samples[:50] {
		for k := 0; k < cfg.NLev; k++ {
			if s.T[k] < 150 || s.T[k] > 350 || math.IsNaN(s.T[k]) {
				t.Fatalf("unphysical T: %v", s.T[k])
			}
			if math.IsNaN(s.Q1[k]) || math.Abs(s.Q1[k]) > 0.1 {
				t.Fatalf("unphysical Q1: %v", s.Q1[k])
			}
			if math.IsNaN(s.Q2[k]) {
				t.Fatalf("NaN Q2")
			}
		}
		if s.Glw < 0 || s.Glw > 800 {
			t.Fatalf("unphysical glw: %v", s.Glw)
		}
	}
}
