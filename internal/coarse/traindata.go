package coarse

import (
	"math"

	"gristgo/internal/core"
	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
	"gristgo/internal/physics"
	"gristgo/internal/synthclim"
	"gristgo/internal/tracer"
)

// GeneratorConfig drives the training-data pipeline: a storm-resolving
// run at FineLevel is coarse-grained to CoarseLevel (the paper's 5 km ->
// 30 km), and Q1/Q2 targets come from the residual method against a
// dynamics-only coarse step.
type GeneratorConfig struct {
	FineLevel   int
	CoarseLevel int
	NLev        int
	// StepsPerDay capture events per simulated day (hourly in the paper).
	StepsPerDay int
	// Days of simulation per period.
	Days int
	// Period supplies the synthetic climate (ENSO/MJO) forcing.
	Period synthclim.Period
}

// Generator runs the fine "GSRM" and the coarse dynamics-only companion
// model and emits training samples.
type Generator struct {
	Cfg     GeneratorConfig
	Fine    *core.Model
	Regrid  *Regridder
	CoarseM *mesh.Mesh
}

// NewGenerator builds the fine model, the coarse mesh and the regridder.
// Meshes can be shared via the optional arguments (pass nil to generate).
func NewGenerator(cfg GeneratorConfig, fineMesh, coarseMesh *mesh.Mesh) *Generator {
	if fineMesh == nil {
		fineMesh = mesh.New(cfg.FineLevel).ReorderBFS()
	}
	if coarseMesh == nil {
		coarseMesh = mesh.New(cfg.CoarseLevel).ReorderBFS()
	}
	fine := core.NewModelOnMesh(core.Config{
		GridLevel: cfg.FineLevel, NLev: cfg.NLev,
	}, physics.NewConventional(cfg.NLev), fineMesh)
	return &Generator{
		Cfg:     cfg,
		Fine:    fine,
		Regrid:  NewRegridder(fineMesh, coarseMesh),
		CoarseM: coarseMesh,
	}
}

// snapshot captures the coarse-grained (T, qv) columns plus the CNN input
// channels from the fine model's physics-coupling state.
type snapshot struct {
	T, Q, U, V, P []float64 // coarse columns
	Tskin, CosZ   []float64 // coarse scalars
	Gsw, Glw      []float64
	Precip        []float64
}

func (g *Generator) takeSnapshot() *snapshot {
	nlev := g.Cfg.NLev
	in := g.Fine.In
	return &snapshot{
		T:      g.Regrid.ColumnField(in.T, nlev),
		Q:      g.Regrid.ColumnField(in.Qv, nlev),
		U:      g.Regrid.ColumnField(in.U, nlev),
		V:      g.Regrid.ColumnField(in.V, nlev),
		P:      g.Regrid.ColumnField(in.P, nlev),
		Tskin:  g.Regrid.CellField(in.Tskin),
		CosZ:   g.Regrid.CellField(in.CosZ),
		Gsw:    g.Regrid.CellField(g.Fine.Out.Gsw),
		Glw:    g.Regrid.CellField(g.Fine.Out.Glw),
		Precip: g.Regrid.CellField(g.Fine.PrecipRate()),
	}
}

// dynOnlyStep advances a dynamics-only coarse model initialized from the
// coarse-grained state for the capture interval and returns its (T, qv).
func (g *Generator) dynOnlyStep(s0 *snapshot, dtCapture float64) (tDyn, qDyn []float64) {
	nlev := g.Cfg.NLev
	cm := core.NewModelOnMesh(core.Config{
		GridLevel: g.Cfg.CoarseLevel, NLev: nlev,
	}, physics.Null{}, g.CoarseM)

	st := cm.Engine.State()
	nc := g.CoarseM.NCells
	for c := 0; c < nc; c++ {
		pIface := dycore.PTop
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			// Reconstruct layer thickness from the coarse-grained
			// pressure profile (uniform sigma in the fine model).
			var dpi float64
			if k < nlev-1 {
				dpi = s0.P[i+1] - s0.P[i]
			} else {
				dpi = 2 * (s0.P[i] - pIface)
			}
			if k == 0 {
				dpi = 2 * (s0.P[i] - dycore.PTop)
			}
			st.DryMass[i] = dpi
			theta := s0.T[i] * math.Pow(dycore.P0/s0.P[i], dycore.Rd/dycore.Cp)
			st.ThetaM[i] = dpi * theta
			cm.Tracers.Mass[i] = dpi
			cm.Tracers.SetMixingRatio(tracer.QV, c, k, s0.Q[i])
			pIface += dpi
		}
	}
	dycore.HydrostaticRebalance(st)

	// Winds: project the coarse-grained cell vectors onto coarse edges.
	for e := 0; e < g.CoarseM.NEdges; e++ {
		c0 := int(g.CoarseM.EdgeCell[e][0])
		c1 := int(g.CoarseM.EdgeCell[e][1])
		for k := 0; k < nlev; k++ {
			ue := 0.5 * (s0.U[c0*nlev+k] + s0.U[c1*nlev+k])
			ve := 0.5 * (s0.V[c0*nlev+k] + s0.V[c1*nlev+k])
			east, north := mesh.TangentBasis(g.CoarseM.EdgePos[e])
			vel := east.Scale(ue).Add(north.Scale(ve))
			st.U[e*nlev+k] = vel.Dot(g.CoarseM.EdgeNormal[e])
		}
	}

	// Advance dynamics only for the capture interval.
	_, _, _, dtPhy := cm.EffectiveSteps()
	steps := int(math.Round(dtCapture / dtPhy))
	if steps < 1 {
		steps = 1
	}
	for i := 0; i < steps; i++ {
		cm.StepPhysics(0)
	}

	// Extract (T, qv).
	tDyn = make([]float64, nc*nlev)
	qDyn = make([]float64, nc*nlev)
	for c := 0; c < nc; c++ {
		pIface := dycore.PTop
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			dpi := st.DryMass[i]
			p := pIface + 0.5*dpi
			pIface += dpi
			theta := st.ThetaM[i] / dpi
			tDyn[i] = theta * math.Pow(p/dycore.P0, dycore.Rd/dycore.Cp)
			qDyn[i] = cm.Tracers.MixingRatio(tracer.QV, c, k)
		}
	}
	return tDyn, qDyn
}

// Run simulates the configured period with the fine model and returns one
// Sample per (capture step, coarse cell).
func (g *Generator) Run() []*Sample {
	cfg := g.Cfg
	nlev := cfg.NLev
	cl0 := synthclim.ForPeriod(cfg.Period, 0)
	g.Fine.InitializeClimate(cl0)

	captureDt := 86400.0 / float64(cfg.StepsPerDay)
	var samples []*Sample

	for day := 0; day < cfg.Days; day++ {
		cl := synthclim.ForPeriod(cfg.Period, day)
		for step := 0; step < cfg.StepsPerDay; step++ {
			// State before the interval.
			g.Fine.StepPhysics(cl.Season) // ensures In/Out are fresh
			s0 := g.takeSnapshot()

			// Fine truth after the interval; the precipitation target is
			// the interval-mean rate (convection is intermittent, so an
			// instantaneous rate would mostly sample zeros).
			g.Fine.ResetDiagnostics()
			g.Fine.RunHours(captureDt/3600, cl.Season)
			s1 := g.takeSnapshot()

			// Dynamics-only coarse companion.
			tDyn, qDyn := g.dynOnlyStep(s0, captureDt)

			q1, q2 := ResidualQ1Q2(s1.T, tDyn, s1.Q, qDyn, captureDt)

			nc := g.CoarseM.NCells
			for c := 0; c < nc; c++ {
				smp := &Sample{
					U: sliceCol(s0.U, c, nlev), V: sliceCol(s0.V, c, nlev),
					T: sliceCol(s0.T, c, nlev), Q: sliceCol(s0.Q, c, nlev),
					P:     sliceCol(s0.P, c, nlev),
					Tskin: s0.Tskin[c], CosZ: s0.CosZ[c],
					Q1: sliceCol(q1, c, nlev), Q2: sliceCol(q2, c, nlev),
					Gsw: s1.Gsw[c], Glw: s1.Glw[c], Precip: s1.Precip[c],
					Day: day, StepOfDay: step,
				}
				samples = append(samples, smp)
			}
		}
	}
	return samples
}

func sliceCol(x []float64, c, nlev int) []float64 {
	out := make([]float64, nlev)
	copy(out, x[c*nlev:(c+1)*nlev])
	return out
}
