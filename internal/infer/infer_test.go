package infer

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"gristgo/internal/nn"
	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// randSpec builds a normalizer spec with nonzero stds and a sprinkle of
// dead features, as mlphysics produces.
func randSpec(dim int, rng *rand.Rand) *NormSpec {
	s := &NormSpec{
		Mean: make([]float64, dim),
		Std:  make([]float64, dim),
		Dead: make([]bool, dim),
	}
	for i := 0; i < dim; i++ {
		s.Mean[i] = rng.NormFloat64()
		s.Std[i] = 0.2 + rng.Float64()
		if rng.Intn(8) == 0 {
			s.Dead[i] = true
			s.Std[i] = 1
		}
	}
	return s
}

// scalarReference reproduces the oracle path for one column: normalizer
// apply with the ±clip envelope, nn.Module.Forward, the raw-output
// clamp, and the normalizer inversion — exactly what
// mlphysics.Suite.Compute does per column.
func scalarReference(m nn.Module, opt Options, x []float64) []float64 {
	z := append([]float64(nil), x...)
	if opt.In != nil {
		for i, v := range x {
			if opt.In.Dead[i] {
				z[i] = 0
				continue
			}
			zi := (v - opt.In.Mean[i]) / opt.In.Std[i]
			if opt.InClip > 0 {
				if zi > opt.InClip {
					zi = opt.InClip
				} else if zi < -opt.InClip {
					zi = -opt.InClip
				}
			}
			z[i] = zi
		}
	}
	raw := m.Forward(z)
	out := make([]float64, len(raw))
	for i, v := range raw {
		if opt.OutClamp > 0 {
			if v > opt.OutClamp {
				v = opt.OutClamp
			} else if v < -opt.OutClamp {
				v = -opt.OutClamp
			}
		}
		if opt.Out != nil {
			if opt.Out.Dead[i] {
				out[i] = opt.Out.Mean[i]
				continue
			}
			v = v*opt.Out.Std[i] + opt.Out.Mean[i]
		}
		out[i] = v
	}
	return out
}

// checkBitwise runs ncol random columns through the engine (with the
// given worker count) and demands bit-identical agreement with the
// scalar reference on every output.
func checkBitwise(t *testing.T, m nn.Module, opt Options, inDim int, ncol, workers int, rng *rand.Rand) bool {
	t.Helper()
	plan, err := Compile[float64](m, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	eng := NewEngine(plan, workers)
	src := make([]float64, ncol*plan.InDim)
	for i := range src {
		src[i] = 3 * rng.NormFloat64()
	}
	dst := make([]float64, ncol*plan.OutDim)
	eng.Forward(dst, src, ncol)
	for c := 0; c < ncol; c++ {
		want := scalarReference(m, opt, src[c*plan.InDim:(c+1)*plan.InDim])
		got := dst[c*plan.OutDim : (c+1)*plan.OutDim]
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("col %d out %d: engine %v != scalar %v", c, i, got[i], want[i])
				return false
			}
		}
	}
	return true
}

// TestFP64PlanBitwiseParityCNN: property-based check that the FP64 plan
// reproduces nn.Forward bit-for-bit on random ResUnit-CNN configs.
func TestFP64PlanBitwiseParityCNN(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inCh := 1 + rng.Intn(4)
		hidden := 1 + rng.Intn(9)
		outCh := 1 + rng.Intn(3)
		levels := 1 + rng.Intn(14)
		units := rng.Intn(3)
		kernel := 1 + 2*rng.Intn(3)
		m := nn.NewResUnitCNN(inCh, hidden, outCh, levels, units, kernel, rng)
		// Random biases: the init zeroes them, which under-exercises the
		// bias-first accumulation order.
		for _, p := range m.Params() {
			for i := range p.W {
				if p.W[i] == 0 {
					p.W[i] = 0.1 * rng.NormFloat64()
				}
			}
		}
		opt := Options{
			In: randSpec(inCh*levels, rng), InClip: 5,
			Out: randSpec(outCh*levels, rng), OutClamp: 6,
		}
		return checkBitwise(t, m, opt, inCh*levels, 1+rng.Intn(40), 1+rng.Intn(4), rng)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestFP64PlanBitwiseParityMLP: same property for random residual MLPs,
// without fused normalizers on some runs.
func TestFP64PlanBitwiseParityMLP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := 1 + rng.Intn(12)
		hidden := 1 + rng.Intn(24)
		out := 1 + rng.Intn(4)
		layers := 3 + rng.Intn(5)
		m := nn.NewResMLP(in, hidden, out, layers, rng)
		for _, p := range m.Params() {
			for i := range p.W {
				if p.W[i] == 0 {
					p.W[i] = 0.1 * rng.NormFloat64()
				}
			}
		}
		var opt Options
		if rng.Intn(2) == 0 {
			opt = Options{In: randSpec(in, rng), InClip: 5, Out: randSpec(out, rng)}
		}
		return checkBitwise(t, m, opt, in, 1+rng.Intn(50), 1+rng.Intn(5), rng)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestFP32PlanCloseToFP64 quantizes a network to FP32 and checks the
// relative-L2 deviation from the FP64 plan stays far inside the 5%
// dycore acceptance threshold on smooth random inputs.
func TestFP32PlanCloseToFP64(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := nn.NewResUnitCNN(3, 8, 2, 12, 3, 3, rng)
	opt := Options{In: randSpec(36, rng), InClip: 5, Out: randSpec(24, rng), OutClamp: 6}
	p64 := MustCompile[float64](m, opt)
	p32 := MustCompile[float32](m, opt)
	e64 := NewEngine(p64, 1)
	e32 := NewEngine(p32, 2)
	const ncol = 64
	src := make([]float64, ncol*p64.InDim)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	d64 := make([]float64, ncol*p64.OutDim)
	d32 := make([]float64, ncol*p64.OutDim)
	e64.Forward(d64, src, ncol)
	e32.Forward(d32, src, ncol)
	if dev := precision.RelL2(d32, d64); dev > precision.ErrorThreshold {
		t.Errorf("FP32 plan deviates %g > %g", dev, precision.ErrorThreshold)
	}
	// And it must actually be a different (quantized) computation.
	same := true
	for i := range d64 {
		if d32[i] != d64[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("FP32 plan is bitwise identical to FP64 — quantization not happening")
	}
}

// TestConcurrentForwardRaceClean drives one engine from many goroutines
// with internal worker sharding enabled; run under -race this validates
// the arena pool and stats locking.
func TestConcurrentForwardRaceClean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := nn.NewResUnitCNN(2, 6, 2, 10, 2, 3, rng)
	opt := Options{In: randSpec(20, rng), InClip: 5, Out: randSpec(20, rng), OutClamp: 6}
	eng := NewEngine(MustCompile[float64](m, opt), 4)
	const ncol = 50
	src := make([]float64, ncol*eng.Plan().InDim)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	ref := make([]float64, ncol*eng.Plan().OutDim)
	eng.Forward(ref, src, ncol)

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]float64, ncol*eng.Plan().OutDim)
			for it := 0; it < 5; it++ {
				eng.Forward(dst, src, ncol)
			}
			for i := range ref {
				if dst[i] != ref[i] {
					t.Errorf("concurrent run diverged at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := eng.DrainStats()
	if st.Calls != 31 || st.Columns != 31*ncol {
		t.Errorf("stats = %+v, want 31 calls / %d columns", st, 31*ncol)
	}
	if st.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
	if again := eng.DrainStats(); again.Calls != 0 {
		t.Errorf("drain did not reset: %+v", again)
	}
}

// TestCompileRejectsUnsupported covers the compile-time error paths.
func TestCompileRejectsUnsupported(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := Compile[float64](&nn.Sequential{Layers: []nn.Module{&nn.ReLU{}}}, Options{}); err == nil {
		t.Error("ReLU-first plan accepted without a width")
	}
	type alien struct{ nn.Module }
	if _, err := Compile[float64](&nn.Sequential{Layers: []nn.Module{alien{}}}, Options{}); err == nil {
		t.Error("unsupported module accepted")
	}
	// Width mismatch between normalizer and first layer.
	d := nn.NewDense(4, 2, rng)
	if _, err := Compile[float64](&nn.Sequential{Layers: []nn.Module{d}},
		Options{In: randSpec(5, rng)}); err == nil {
		t.Error("input-normalizer width mismatch accepted")
	}
	if _, err := Compile[float64](&nn.Sequential{Layers: []nn.Module{d}},
		Options{Out: randSpec(5, rng)}); err == nil {
		t.Error("output-normalizer width mismatch accepted")
	}
	// Residual whose body changes width.
	bad := &nn.Sequential{Layers: []nn.Module{
		nn.NewDense(4, 4, rng),
		&nn.Residual{Body: nn.NewDense(4, 3, rng)},
	}}
	if _, err := Compile[float64](bad, Options{}); err == nil {
		t.Error("width-changing residual body accepted")
	}
}

// TestForwardValidatesShapes covers the runtime panics.
func TestForwardValidatesShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	eng := NewEngine(MustCompile[float64](nn.NewDense(3, 2, rng), Options{}), 1)
	defer func() {
		if recover() == nil {
			t.Error("short src accepted")
		}
	}()
	eng.Forward(make([]float64, 4), make([]float64, 5), 2)
}

// TestEmptyBatchIsNoop: ncol = 0 must not touch buffers or stats' column
// count.
func TestEmptyBatchIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	eng := NewEngine(MustCompile[float64](nn.NewDense(3, 2, rng), Options{}), 2)
	eng.Forward(nil, nil, 0)
	if st := eng.DrainStats(); st.Calls != 0 || st.Columns != 0 {
		t.Errorf("empty batch recorded stats: %+v", st)
	}
}

// TestQuantizationError sanity-checks toT rounding behaviour.
func TestQuantizationError(t *testing.T) {
	xs := []float64{1.0000000001, math.Pi, -2.5}
	q := toT[float32](xs)
	for i, x := range xs {
		if math.Abs(float64(q[i])-x) > 1e-6*math.Abs(x) {
			t.Errorf("quantized %v -> %v", x, q[i])
		}
	}
	exact := toT[float64](xs)
	for i, x := range xs {
		if exact[i] != x {
			t.Errorf("float64 copy changed %v", x)
		}
	}
}

// TestEngineTelemetry: a wired engine must emit one infer_forward span
// per Forward, count columns/calls under its model label, and report the
// batch occupancy of the last call (ncol over the padded block columns).
func TestEngineTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := nn.NewResMLP(6, 8, 4, 3, rng)
	eng := NewEngine(MustCompile[float64](m, Options{}), 2)
	rec := telemetry.NewRecorder(64)
	reg := telemetry.NewRegistry()
	eng.SetTelemetry(rec, reg, "tendency")

	const ncol = blockCols + 3 // forces one partially filled block
	src := make([]float64, ncol*6)
	dst := make([]float64, ncol*4)
	eng.Forward(dst, src, ncol)
	eng.Forward(dst, src, ncol)

	spans := 0
	for _, ev := range rec.Snapshot() {
		if ev.Name == "infer_forward" {
			spans++
		}
	}
	if spans != 2 {
		t.Errorf("infer_forward spans = %d, want 2", spans)
	}
	if got := reg.Counter("grist_infer_calls_total", "model", "tendency").Value(); got != 2 {
		t.Errorf("calls counter = %d, want 2", got)
	}
	if got := reg.Counter("grist_infer_columns_total", "model", "tendency").Value(); got != 2*ncol {
		t.Errorf("columns counter = %d, want %d", got, 2*ncol)
	}
	want := float64(ncol) / float64(2*blockCols)
	if got := reg.Gauge("grist_infer_batch_occupancy", "model", "tendency").Value(); math.Abs(got-want) > 1e-12 {
		t.Errorf("occupancy = %v, want %v", got, want)
	}
}
