// Package infer is the batched ML inference engine behind the physics
// suite's hot path. The paper's headline performance result rests on the
// ML physics suite running at 74-84% of peak while RRTMG-style code sits
// near 6% (§4.7); reaching that regime requires exactly the machinery a
// production inference stack carries, and this package provides it:
//
//   - Compile flattens an nn.Sequential (Conv1D / Dense / ReLU /
//     Residual) into a linear execution plan with the normalizer apply,
//     output clamp and inversion fused in as plan stages;
//   - the plan is generic over precision.Real, so the same compilation
//     path emits an FP64 reference plan and an FP32 plan whose weights
//     are quantized once at compile time — the §3.4 mixed-precision
//     theme extended from the dycore into the NN stack;
//   - Engine executes a plan over many columns at once: im2col +
//     register-blocked GEMM for the convolutions, arena-style
//     preallocated activation buffers reused across steps, and a worker
//     pool that shards the column batch across host goroutines.
//
// The FP64 plan is bit-identical to the scalar nn.Module.Forward path
// (same accumulation order everywhere), so the scalar path remains the
// parity oracle; the FP32 plan is validated like the mixed-precision
// dycore, by relative-L2 deviation under the 5% threshold.
package infer

import (
	"fmt"

	"gristgo/internal/nn"
	"gristgo/internal/precision"
)

// NormSpec carries per-feature normalization statistics into the plan
// (the mlphysics.Normalizer contract: dead features normalize to zero
// and invert to their training mean).
type NormSpec struct {
	Mean, Std []float64
	Dead      []bool
}

// opKind enumerates the fused stage types of a compiled plan.
type opKind uint8

const (
	opInput   opKind = iota // convert float64 rows to T, optional normalize+clip
	opConv                  // 1-D same-padded convolution (im2col + GEMM)
	opDense                 // fully-connected GEMM
	opReLU                  // elementwise, in place
	opResPush               // save activations for a pending skip connection
	opResAdd                // add the saved activations back in
	opOutput                // optional clamp + inversion, convert T to float64
)

// stage is one node of the flat execution plan.
type stage[T precision.Real] struct {
	kind          opKind
	inDim, outDim int
	inCh, outCh   int // opConv
	k, l          int // opConv kernel width / column length
	w, b          []T // opConv / opDense parameters (quantized at compile)
	mean, std     []T // opInput / opOutput normalization
	dead          []bool
	clip, clamp   T // opInput z-clip; opOutput raw clamp (0 disables)
}

// Plan is a compiled, immutable execution plan. Plans hold quantized
// copies of the network weights and are safe for concurrent use by any
// number of engines and workers.
type Plan[T precision.Real] struct {
	stages []stage[T]

	// InDim and OutDim are the per-column feature widths of the plan's
	// float64 input and output rows.
	InDim, OutDim int

	maxDim   int // widest activation vector across stages
	maxColSz int // largest per-column im2col buffer (L*inCh*K) of any conv
	resDepth int // deepest residual nesting
}

// Options configures plan compilation.
type Options struct {
	// In, when set, fuses the input normalization (z = (x-mean)/std,
	// clipped to +/-InClip, dead features pinned to zero) into the plan.
	In *NormSpec
	// InClip bounds the normalized inputs (0 disables clipping).
	InClip float64
	// Out, when set, fuses the output inversion (y = z*std + mean, dead
	// features pinned to their mean) into the plan.
	Out *NormSpec
	// OutClamp bounds the raw network outputs before inversion
	// (0 disables) — the ±6σ stability clamp of §3.2.3.
	OutClamp float64
}

// toT quantizes a float64 slice to the plan precision. For T = float64
// this is an exact copy; for T = float32 it is the one-time weight
// quantization of the compiled plan.
func toT[T precision.Real](xs []float64) []T {
	out := make([]T, len(xs))
	for i, x := range xs {
		out[i] = T(x)
	}
	return out
}

// Compile flattens a module tree into an execution plan at precision T.
// Supported modules: nn.Sequential, nn.Conv1D, nn.Dense, nn.ReLU and
// nn.Residual (with any supported body). The module's weights are copied
// (and quantized, for T = float32), so the plan stays valid if the
// module trains on.
func Compile[T precision.Real](m nn.Module, opt Options) (*Plan[T], error) {
	p := &Plan[T]{InDim: -1}
	cur := -1 // current feature width; -1 until known
	if opt.In != nil {
		cur = len(opt.In.Mean)
		p.stages = append(p.stages, stage[T]{
			kind: opInput, inDim: cur, outDim: cur,
			mean: toT[T](opt.In.Mean), std: toT[T](opt.In.Std),
			dead: append([]bool(nil), opt.In.Dead...),
			clip: T(opt.InClip),
		})
	}
	depth := 0
	var flatten func(mod nn.Module) error
	flatten = func(mod nn.Module) error {
		switch v := mod.(type) {
		case *nn.Sequential:
			for _, l := range v.Layers {
				if err := flatten(l); err != nil {
					return err
				}
			}
		case *nn.Residual:
			if cur < 0 {
				return fmt.Errorf("infer: Residual before any width-defining layer")
			}
			p.stages = append(p.stages, stage[T]{kind: opResPush, inDim: cur, outDim: cur})
			depth++
			if depth > p.resDepth {
				p.resDepth = depth
			}
			saved := cur
			if err := flatten(v.Body); err != nil {
				return err
			}
			if cur != saved {
				return fmt.Errorf("infer: Residual body changed width %d -> %d", saved, cur)
			}
			depth--
			p.stages = append(p.stages, stage[T]{kind: opResAdd, inDim: cur, outDim: cur})
		case *nn.Conv1D:
			in, out := v.InCh*v.L, v.OutCh*v.L
			if cur >= 0 && cur != in {
				return fmt.Errorf("infer: Conv1D expects width %d, plan carries %d", in, cur)
			}
			if sz := v.L * v.InCh * v.K; sz > p.maxColSz {
				p.maxColSz = sz
			}
			p.stages = append(p.stages, stage[T]{
				kind: opConv, inDim: in, outDim: out,
				inCh: v.InCh, outCh: v.OutCh, k: v.K, l: v.L,
				w: toT[T](v.Weight.W), b: toT[T](v.Bias.W),
			})
			cur = out
		case *nn.Dense:
			if cur >= 0 && cur != v.In {
				return fmt.Errorf("infer: Dense expects width %d, plan carries %d", v.In, cur)
			}
			p.stages = append(p.stages, stage[T]{
				kind: opDense, inDim: v.In, outDim: v.Out,
				w: toT[T](v.Weight.W), b: toT[T](v.Bias.W),
			})
			cur = v.Out
		case *nn.ReLU:
			if cur < 0 {
				return fmt.Errorf("infer: ReLU before any width-defining layer")
			}
			p.stages = append(p.stages, stage[T]{kind: opReLU, inDim: cur, outDim: cur})
		default:
			return fmt.Errorf("infer: unsupported module type %T", mod)
		}
		return nil
	}
	if err := flatten(m); err != nil {
		return nil, err
	}
	if cur < 0 {
		return nil, fmt.Errorf("infer: plan has no width-defining layer")
	}
	if opt.In == nil {
		// No fused normalizer: still need the float64 -> T load stage.
		first := p.stages[0].inDim
		p.stages = append([]stage[T]{{kind: opInput, inDim: first, outDim: first}}, p.stages...)
	}
	out := stage[T]{kind: opOutput, inDim: cur, outDim: cur, clamp: T(opt.OutClamp)}
	if opt.Out != nil {
		if len(opt.Out.Mean) != cur {
			return nil, fmt.Errorf("infer: output normalizer width %d != plan output %d",
				len(opt.Out.Mean), cur)
		}
		out.mean, out.std = toT[T](opt.Out.Mean), toT[T](opt.Out.Std)
		out.dead = append([]bool(nil), opt.Out.Dead...)
	}
	p.stages = append(p.stages, out)
	// Resolve the plan's I/O widths and the widest activation buffer.
	p.InDim = p.stages[0].inDim
	p.OutDim = cur
	for _, st := range p.stages {
		if st.inDim > p.maxDim {
			p.maxDim = st.inDim
		}
		if st.outDim > p.maxDim {
			p.maxDim = st.outDim
		}
	}
	return p, nil
}

// MustCompile is Compile panicking on error, for architectures known to
// be supported (the mlphysics CNN and MLP).
func MustCompile[T precision.Real](m nn.Module, opt Options) *Plan[T] {
	p, err := Compile[T](m, opt)
	if err != nil {
		panic(err)
	}
	return p
}

// NumStages reports the length of the flat plan (for tests/diagnostics).
func (p *Plan[T]) NumStages() int { return len(p.stages) }
