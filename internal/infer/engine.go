package infer

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// blockCols is the number of columns a worker pushes through the plan at
// once: large enough to amortize the im2col gather and keep the GEMM
// weight rows hot, small enough that a block's activations stay cache
// resident.
const blockCols = 16

// Stats accumulates the engine's observability counters: how many
// Forward calls ran, how many columns they processed, and the wall time
// they took (the per-step inference timing fed to core's timing report
// and to perfmodel's measured ML-suite cost).
type Stats struct {
	Calls   int
	Columns int
	Elapsed time.Duration
}

// arena holds one worker's preallocated scratch: ping-pong activation
// buffers, the im2col patch matrix, and one save buffer per residual
// nesting level. Arenas are recycled through a pool, so steady-state
// inference is allocation-free.
type arena[T precision.Real] struct {
	a, b []T
	col  []T
	res  [][]T
}

func newArena[T precision.Real](p *Plan[T]) *arena[T] {
	ar := &arena[T]{
		a:   make([]T, blockCols*p.maxDim),
		b:   make([]T, blockCols*p.maxDim),
		col: make([]T, blockCols*p.maxColSz),
	}
	for d := 0; d < p.resDepth; d++ {
		ar.res = append(ar.res, make([]T, blockCols*p.maxDim))
	}
	return ar
}

// Engine executes a compiled plan over batches of columns. An Engine is
// safe for concurrent use: each Forward call draws worker arenas from a
// pool, and the plan itself is immutable.
type Engine[T precision.Real] struct {
	plan    *Plan[T]
	workers int

	pool sync.Pool

	mu    sync.Mutex
	stats Stats

	// Optional telemetry (guarded by mu): a flight-recorder span per
	// Forward plus batch counters and the block-occupancy gauge.
	rec      *telemetry.Recorder
	telRank  int32
	colsCtr  *telemetry.Counter
	callsCtr *telemetry.Counter
	occGauge *telemetry.Gauge
}

// NewEngine wraps a plan with a worker pool of the given width
// (0 or 1 serial, negative = GOMAXPROCS), mirroring the semantics of
// dycore.SetHostParallelism.
func NewEngine[T precision.Real](p *Plan[T], workers int) *Engine[T] {
	e := &Engine[T]{plan: p}
	e.pool.New = func() any { return newArena[T](p) }
	e.SetWorkers(workers)
	return e
}

// Plan returns the engine's compiled plan.
func (e *Engine[T]) Plan() *Plan[T] { return e.plan }

// SetWorkers reconfigures the worker-pool width (0 or 1 serial,
// negative = GOMAXPROCS).
func (e *Engine[T]) SetWorkers(n int) {
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	e.workers = n
	e.mu.Unlock()
}

// SetTelemetry attaches observability to the engine: each Forward emits
// an infer_forward span into rec (nil disables spans) and, when reg is
// non-nil, maintains grist_infer_columns_total, grist_infer_calls_total
// and the grist_infer_batch_occupancy gauge — the processed-columns
// share of the blockCols-padded batch, a direct read on how well batch
// sizes fill the GEMM blocks — all labeled model=name.
func (e *Engine[T]) SetTelemetry(rec *telemetry.Recorder, reg *telemetry.Registry, name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rec = rec
	if reg == nil {
		e.colsCtr, e.callsCtr, e.occGauge = nil, nil, nil
		return
	}
	e.colsCtr = reg.Counter("grist_infer_columns_total", "model", name)
	e.callsCtr = reg.Counter("grist_infer_calls_total", "model", name)
	e.occGauge = reg.Gauge("grist_infer_batch_occupancy", "model", name)
}

// DrainStats returns the accumulated counters and resets them.
func (e *Engine[T]) DrainStats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	e.stats = Stats{}
	return s
}

// Forward runs ncol columns through the plan: src holds ncol rows of
// InDim float64 features, dst receives ncol rows of OutDim float64
// outputs. The batch is sharded into contiguous chunks across the
// configured workers; each worker streams its chunk through the plan in
// blocks of blockCols columns using a pooled arena.
func (e *Engine[T]) Forward(dst, src []float64, ncol int) {
	p := e.plan
	if len(src) < ncol*p.InDim {
		panic(fmt.Sprintf("infer: src has %d values, need %d", len(src), ncol*p.InDim))
	}
	if len(dst) < ncol*p.OutDim {
		panic(fmt.Sprintf("infer: dst has %d values, need %d", len(dst), ncol*p.OutDim))
	}
	if ncol == 0 {
		return
	}
	start := time.Now()

	e.mu.Lock()
	w := e.workers
	rec, rank := e.rec, e.telRank
	colsCtr, callsCtr, occGauge := e.colsCtr, e.callsCtr, e.occGauge
	e.mu.Unlock()
	sp := rec.Begin("infer_forward", rank)
	if w > ncol {
		w = ncol
	}
	if w <= 1 {
		ar := e.pool.Get().(*arena[T])
		e.runChunk(ar, dst, src, 0, ncol)
		e.pool.Put(ar)
	} else {
		chunk := (ncol + w - 1) / w
		var wg sync.WaitGroup
		for lo := 0; lo < ncol; lo += chunk {
			hi := lo + chunk
			if hi > ncol {
				hi = ncol
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				ar := e.pool.Get().(*arena[T])
				e.runChunk(ar, dst, src, lo, hi)
				e.pool.Put(ar)
			}(lo, hi)
		}
		wg.Wait()
	}

	sp.End()
	if callsCtr != nil {
		callsCtr.Inc()
		colsCtr.Add(int64(ncol))
		padded := (ncol + blockCols - 1) / blockCols * blockCols
		occGauge.Set(float64(ncol) / float64(padded))
	}

	d := time.Since(start)
	e.mu.Lock()
	e.stats.Calls++
	e.stats.Columns += ncol
	e.stats.Elapsed += d
	e.mu.Unlock()
}

// runChunk streams columns [lo, hi) through the plan in blocks.
//
//grist:hotpath
func (e *Engine[T]) runChunk(ar *arena[T], dst, src []float64, lo, hi int) {
	for b0 := lo; b0 < hi; b0 += blockCols {
		b1 := b0 + blockCols
		if b1 > hi {
			b1 = hi
		}
		e.runBlock(ar, dst, src, b0, b1)
	}
}

// runBlock pushes columns [lo, hi) (at most blockCols of them) through
// every stage of the plan. Activations live row-major in the arena's
// ping-pong buffers: cur[b*width + f] for block-local column b.
func (e *Engine[T]) runBlock(ar *arena[T], dst, src []float64, lo, hi int) {
	p := e.plan
	nb := hi - lo
	cur, nxt := ar.a, ar.b
	depth := 0
	for si := range p.stages {
		st := &p.stages[si]
		switch st.kind {
		case opInput:
			inputStage(st, cur, src, lo, nb)
		case opConv:
			convStage(st, ar.col, cur, nxt, nb)
			cur, nxt = nxt, cur
		case opDense:
			denseStage(st, cur, nxt, nb)
			cur, nxt = nxt, cur
		case opReLU:
			n := nb * st.inDim
			x := cur[:n]
			// Mirror nn.ReLU exactly: anything not strictly positive
			// (including -0.0) becomes +0.0.
			for i, v := range x {
				if !(v > 0) {
					x[i] = 0
				}
			}
		case opResPush:
			copy(ar.res[depth][:nb*st.inDim], cur[:nb*st.inDim])
			depth++
		case opResAdd:
			depth--
			save := ar.res[depth][:nb*st.inDim]
			x := cur[:nb*st.inDim]
			// y = saved + body(saved): the saved input comes first, as in
			// nn.Residual.Forward, so FP64 plans stay bit-identical.
			for i := range x {
				x[i] = save[i] + x[i]
			}
		case opOutput:
			outputStage(st, dst, cur, lo, nb)
		}
	}
}

// inputStage converts float64 source rows to the plan precision with the
// fused normalizer apply: z = (x-mean)/std clipped to +/-clip, dead
// features pinned to zero (mlphysics.Normalizer.Apply semantics).
func inputStage[T precision.Real](st *stage[T], cur []T, src []float64, lo, nb int) {
	dim := st.inDim
	for b := 0; b < nb; b++ {
		row := src[(lo+b)*dim : (lo+b+1)*dim]
		out := cur[b*dim : (b+1)*dim]
		if st.mean == nil {
			for i, v := range row {
				out[i] = T(v)
			}
			continue
		}
		for i, v := range row {
			if st.dead[i] {
				out[i] = 0
				continue
			}
			z := (T(v) - st.mean[i]) / st.std[i]
			if st.clip > 0 {
				if z > st.clip {
					z = st.clip
				} else if z < -st.clip {
					z = -st.clip
				}
			}
			out[i] = z
		}
	}
}

// outputStage applies the fused raw-output clamp and normalizer
// inversion, converting back to float64 destination rows.
func outputStage[T precision.Real](st *stage[T], dst []float64, cur []T, lo, nb int) {
	dim := st.inDim
	for b := 0; b < nb; b++ {
		x := cur[b*dim : (b+1)*dim]
		out := dst[(lo+b)*dim : (lo+b+1)*dim]
		for i, v := range x {
			if st.clamp > 0 {
				if v > st.clamp {
					v = st.clamp
				} else if v < -st.clamp {
					v = -st.clamp
				}
			}
			if st.mean != nil {
				if st.dead[i] {
					out[i] = float64(st.mean[i])
					continue
				}
				v = v*st.std[i] + st.mean[i]
			}
			out[i] = float64(v)
		}
	}
}

// convStage runs a same-padded 1-D convolution over a block: an im2col
// gather into the arena's patch matrix, then a register-blocked GEMM
// against the (compile-time quantized) weight matrix. The per-output
// accumulation order matches nn.Conv1D.Forward exactly (bias first, then
// j = i*K+k ascending), which keeps the FP64 plan bit-identical to the
// scalar oracle; padding taps contribute an exact ±0 and cannot perturb
// the sum.
func convStage[T precision.Real](st *stage[T], col, x, y []T, nb int) {
	l, k, inCh, outCh := st.l, st.k, st.inCh, st.outCh
	ck := inCh * k
	half := k / 2
	// im2col: col[(b*l+p)*ck + i*k+kk] = x[b][i*l + p+kk-half], 0 outside.
	for b := 0; b < nb; b++ {
		xb := x[b*st.inDim : (b+1)*st.inDim]
		for p := 0; p < l; p++ {
			row := col[(b*l+p)*ck : (b*l+p+1)*ck]
			for i := 0; i < inCh; i++ {
				xi := xb[i*l : (i+1)*l]
				for kk := 0; kk < k; kk++ {
					q := p + kk - half
					if q < 0 || q >= l {
						row[i*k+kk] = 0
					} else {
						row[i*k+kk] = xi[q]
					}
				}
			}
		}
	}
	// GEMM: y[b][o*l+p] = bias[o] + col[(b,p)] . w[o]. Output channels
	// are register-blocked four wide so each streamed patch row feeds
	// four accumulators; per-accumulator order stays sequential in j.
	for b := 0; b < nb; b++ {
		yb := y[b*st.outDim : (b+1)*st.outDim]
		colb := col[b*l*ck : (b+1)*l*ck]
		o := 0
		for ; o+4 <= outCh; o += 4 {
			w0 := st.w[o*ck : (o+1)*ck]
			w1 := st.w[(o+1)*ck : (o+2)*ck]
			w2 := st.w[(o+2)*ck : (o+3)*ck]
			w3 := st.w[(o+3)*ck : (o+4)*ck]
			for p := 0; p < l; p++ {
				row := colb[p*ck : (p+1)*ck]
				s0, s1, s2, s3 := st.b[o], st.b[o+1], st.b[o+2], st.b[o+3]
				for j, cv := range row {
					s0 += cv * w0[j]
					s1 += cv * w1[j]
					s2 += cv * w2[j]
					s3 += cv * w3[j]
				}
				yb[o*l+p] = s0
				yb[(o+1)*l+p] = s1
				yb[(o+2)*l+p] = s2
				yb[(o+3)*l+p] = s3
			}
		}
		for ; o < outCh; o++ {
			wo := st.w[o*ck : (o+1)*ck]
			for p := 0; p < l; p++ {
				row := colb[p*ck : (p+1)*ck]
				s := st.b[o]
				for j, cv := range row {
					s += cv * wo[j]
				}
				yb[o*l+p] = s
			}
		}
	}
}

// denseStage runs a fully-connected layer over a block with the same
// four-wide output register blocking as convStage. Accumulation order
// per output matches nn.Dense.Forward (bias first, inputs ascending).
func denseStage[T precision.Real](st *stage[T], x, y []T, nb int) {
	in, out := st.inDim, st.outDim
	for b := 0; b < nb; b++ {
		xb := x[b*in : (b+1)*in]
		yb := y[b*out : (b+1)*out]
		o := 0
		for ; o+4 <= out; o += 4 {
			w0 := st.w[o*in : (o+1)*in]
			w1 := st.w[(o+1)*in : (o+2)*in]
			w2 := st.w[(o+2)*in : (o+3)*in]
			w3 := st.w[(o+3)*in : (o+4)*in]
			s0, s1, s2, s3 := st.b[o], st.b[o+1], st.b[o+2], st.b[o+3]
			for j, xv := range xb {
				s0 += xv * w0[j]
				s1 += xv * w1[j]
				s2 += xv * w2[j]
				s3 += xv * w3[j]
			}
			yb[o], yb[o+1], yb[o+2], yb[o+3] = s0, s1, s2, s3
		}
		for ; o < out; o++ {
			wo := st.w[o*in : (o+1)*in]
			s := st.b[o]
			for j, xv := range xb {
				s += xv * wo[j]
			}
			yb[o] = s
		}
	}
}
