package pario

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"

	"gristgo/internal/comm"
	"gristgo/internal/fault"
	"gristgo/internal/mesh"
	"gristgo/internal/partition"
	"gristgo/internal/vfs"
)

// WriteOwnedFile must land each leader's framed stream durably on the
// filesystem and round-trip through ReadAll.
func TestWriteOwnedFileRoundTrip(t *testing.T) {
	m := mesh.New(3)
	nparts, groupSize := 8, 4
	d := partition.MustDecompose(m, nparts, 21)
	dir := t.TempDir()

	truth := make([]float64, m.NCells)
	for c := range truth {
		truth[c] = float64(c)*1.5 + 0.25
	}
	leaderPath := func(rank int) string {
		return filepath.Join(dir, fmt.Sprintf("field-g%02d.pario", GroupOf(rank, groupSize)))
	}

	var firstErr error
	var mu sync.Mutex
	comm.Run(nparts, func(r *comm.Rank) {
		owned := d.Owned[r.ID()]
		vals := make([]float64, len(owned))
		for i, c := range owned {
			vals[i] = truth[c]
		}
		if err := WriteOwnedFile(vfs.OS, leaderPath(r.ID()), r, groupSize, owned, vals, 600); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	})
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	var readers []*os.File
	for g := 0; g < NumGroups(nparts, groupSize); g++ {
		f, err := os.Open(filepath.Join(dir, fmt.Sprintf("field-g%02d.pario", g)))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		readers = append(readers, f)
	}
	got, err := ReadAll(m.NCells, readers[0], readers[1])
	if err != nil {
		t.Fatal(err)
	}
	for c := range truth {
		if got[c] != truth[c] {
			t.Fatalf("cell %d: read %v, want %v", c, got[c], truth[c])
		}
	}
}

// A torn write through the fault layer must fail WriteOwnedFile and
// leave neither the final file nor temp litter behind.
func TestWriteOwnedFileTornWriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	ffs := fault.NewFS(vfs.OS, 11, fault.FSProfile{WriteTornProb: 1})
	path := filepath.Join(dir, "field.pario")
	var gotErr error
	comm.Run(1, func(r *comm.Rank) {
		gotErr = WriteOwnedFile(ffs, path, r, 1, []int32{0, 1}, []float64{1, 2}, 601)
	})
	if gotErr == nil {
		t.Fatal("WriteOwnedFile succeeded under WriteTornProb=1")
	}
	if !errors.Is(gotErr, syscall.ENOSPC) {
		t.Fatalf("error = %v, want ENOSPC in chain", gotErr)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == "field.pario" || strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("torn WriteOwnedFile left %q behind", e.Name())
		}
	}
}
