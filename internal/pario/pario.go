// Package pario implements the grouped parallel I/O strategy of §3.1.3:
// with hundreds of thousands of MPI processes, letting every rank open
// the filesystem collapses it, so ranks are organized into I/O groups;
// members gather their owned data to a group leader, and only the
// leaders stream framed records to storage.
package pario

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"sync/atomic"

	"gristgo/internal/comm"
	"gristgo/internal/telemetry"
	"gristgo/internal/vfs"
)

// GroupSize is the default number of ranks per I/O group.
const GroupSize = 64

// Package-level telemetry: grouped writes happen on many ranks at once,
// so the sinks are shared and swapped atomically. A nil recorder/registry
// disables the corresponding output.
var (
	telRec   atomic.Pointer[telemetry.Recorder]
	bytesCtr atomic.Pointer[telemetry.Counter]
)

// SetTelemetry attaches observability to the package: every WriteOwned
// emits a pario_write span attributed to the calling rank into rec and
// accumulates the framed bytes leaders emit into reg's
// grist_pario_bytes_total counter. Nil detaches either sink.
func SetTelemetry(rec *telemetry.Recorder, reg *telemetry.Registry) {
	telRec.Store(rec)
	if reg == nil {
		bytesCtr.Store(nil)
		return
	}
	bytesCtr.Store(reg.Counter("grist_pario_bytes_total"))
}

// GroupOf returns the I/O group index of a rank.
func GroupOf(rank, groupSize int) int { return rank / groupSize }

// LeaderOf returns the leader rank of the group containing rank.
func LeaderOf(rank, groupSize int) int { return rank / groupSize * groupSize }

// NumGroups returns how many groups n ranks form.
func NumGroups(n, groupSize int) int { return (n + groupSize - 1) / groupSize }

// record framing: [globalIndex uint32][value float64], little-endian,
// preceded by a per-leader header [magic uint32][count uint32].
const magic = 0x47525354 // "GRST"

// WriteOwned performs the grouped write of a distributed field: every
// rank contributes (globalIndex, value) pairs for the cells it owns;
// members send their pairs to the group leader with one message, and
// leaders emit framed records to w. Only leaders may receive a non-nil
// writer; non-leader ranks pass w == nil. The tag namespace must be
// unique per call site.
//
//grist:durable
func WriteOwned(r *comm.Rank, groupSize int, owned []int32, values []float64, w io.Writer, tag int) error {
	sp := telRec.Load().Begin("pario_write", int32(r.ID()))
	defer sp.End()
	if len(owned) != len(values) {
		return errors.New("pario: owned/values length mismatch")
	}
	leader := LeaderOf(r.ID(), groupSize)

	// Pack local pairs as float64 pairs (index, value) for transport.
	buf := make([]float64, 0, 2*len(owned))
	for i, c := range owned {
		buf = append(buf, float64(c), values[i])
	}

	if r.ID() != leader {
		r.Send(leader, tag, buf)
		return nil
	}

	if w == nil {
		return errors.New("pario: leader rank needs a writer")
	}
	// Gather group members (they follow the leader in rank order).
	groupEnd := leader + groupSize
	if groupEnd > r.Size() {
		groupEnd = r.Size()
	}
	all := [][]float64{buf}
	for src := leader + 1; src < groupEnd; src++ {
		all = append(all, r.Recv(src, tag))
	}
	count := 0
	for _, b := range all {
		count += len(b) / 2
	}
	head := make([]byte, 8)
	binary.LittleEndian.PutUint32(head[0:], magic)
	binary.LittleEndian.PutUint32(head[4:], uint32(count))
	if _, err := w.Write(head); err != nil {
		return err
	}
	rec := make([]byte, 12)
	for _, b := range all {
		for i := 0; i+1 < len(b); i += 2 {
			binary.LittleEndian.PutUint32(rec[0:], uint32(b[i]))
			binary.LittleEndian.PutUint64(rec[4:], math.Float64bits(b[i+1]))
			if _, err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	if c := bytesCtr.Load(); c != nil {
		c.Add(int64(8 + 12*count))
	}
	return nil
}

// WriteOwnedFile is WriteOwned with the leader stream landing durably
// at path on an injectable filesystem: the leader writes the framed
// records into a temp file in path's directory, syncs, closes, then
// renames into place — so a fault mid-write (torn write, ENOSPC, a
// crash) never leaves a partial file under the output name. Non-leader
// ranks participate in the gather exactly as in WriteOwned and never
// touch the filesystem.
//
//grist:durable
func WriteOwnedFile(fsys vfs.FS, path string, r *comm.Rank, groupSize int, owned []int32, values []float64, tag int) error {
	leader := LeaderOf(r.ID(), groupSize)
	if r.ID() != leader {
		return WriteOwned(r, groupSize, owned, values, nil, tag)
	}
	f, err := fsys.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("pario: creating temp for %s: %w", filepath.Base(path), err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		fsys.Remove(tmp)
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := WriteOwned(r, groupSize, owned, values, bw, tag); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return nil
}

// ReadAll parses one or more leader streams and scatters the records
// into a dense field of length n. Missing indices stay zero; duplicate
// indices are an error.
func ReadAll(n int, readers ...io.Reader) ([]float64, error) {
	out := make([]float64, n)
	seen := make([]bool, n)
	for ri, rd := range readers {
		head := make([]byte, 8)
		if _, err := io.ReadFull(rd, head); err != nil {
			return nil, fmt.Errorf("pario: reader %d header: %w", ri, err)
		}
		if binary.LittleEndian.Uint32(head[0:]) != magic {
			return nil, fmt.Errorf("pario: reader %d bad magic", ri)
		}
		count := binary.LittleEndian.Uint32(head[4:])
		rec := make([]byte, 12)
		for i := uint32(0); i < count; i++ {
			if _, err := io.ReadFull(rd, rec); err != nil {
				return nil, fmt.Errorf("pario: reader %d record %d: %w", ri, i, err)
			}
			idx := binary.LittleEndian.Uint32(rec[0:])
			if int(idx) >= n {
				return nil, fmt.Errorf("pario: index %d out of range %d", idx, n)
			}
			if seen[idx] {
				return nil, fmt.Errorf("pario: duplicate index %d", idx)
			}
			seen[idx] = true
			out[idx] = math.Float64frombits(binary.LittleEndian.Uint64(rec[4:]))
		}
	}
	return out, nil
}
