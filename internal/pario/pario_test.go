package pario

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"

	"gristgo/internal/comm"
	"gristgo/internal/mesh"
	"gristgo/internal/partition"
)

func TestGroupArithmetic(t *testing.T) {
	if GroupOf(0, 64) != 0 || GroupOf(63, 64) != 0 || GroupOf(64, 64) != 1 {
		t.Error("GroupOf wrong")
	}
	if LeaderOf(70, 64) != 64 {
		t.Error("LeaderOf wrong")
	}
	if NumGroups(128, 64) != 2 || NumGroups(129, 64) != 3 {
		t.Error("NumGroups wrong")
	}
}

func TestGroupedWriteReadRoundTrip(t *testing.T) {
	m := mesh.New(3)
	nparts := 8
	groupSize := 4
	d := partition.MustDecompose(m, nparts, 21)

	truth := make([]float64, m.NCells)
	for c := range truth {
		truth[c] = rand.New(rand.NewSource(int64(c))).Float64() * 100
	}

	nGroups := NumGroups(nparts, groupSize)
	buffers := make([]*bytes.Buffer, nGroups)
	for i := range buffers {
		buffers[i] = &bytes.Buffer{}
	}
	var mu sync.Mutex

	comm.Run(nparts, func(r *comm.Rank) {
		owned := d.Owned[r.ID()]
		vals := make([]float64, len(owned))
		for i, c := range owned {
			vals[i] = truth[c]
		}
		var w *bytes.Buffer
		if r.ID() == LeaderOf(r.ID(), groupSize) {
			w = buffers[GroupOf(r.ID(), groupSize)]
		}
		mu.Lock() // serialize leader writes for the test buffers
		err := func() error {
			mu.Unlock()
			var e error
			if w != nil {
				e = WriteOwned(r, groupSize, owned, vals, w, 500)
			} else {
				e = WriteOwned(r, groupSize, owned, vals, nil, 500)
			}
			mu.Lock()
			return e
		}()
		mu.Unlock()
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
	})

	got, err := ReadAll(m.NCells, toReaders(buffers)...)
	if err != nil {
		t.Fatal(err)
	}
	for c := range truth {
		if got[c] != truth[c] {
			t.Fatalf("cell %d: %v != %v", c, got[c], truth[c])
		}
	}
}

func toReaders(bufs []*bytes.Buffer) []io.Reader {
	rs := make([]io.Reader, len(bufs))
	for i, b := range bufs {
		rs[i] = b
	}
	return rs
}

func TestReadAllRejectsDuplicates(t *testing.T) {
	var buf bytes.Buffer
	comm.Run(1, func(r *comm.Rank) {
		owned := []int32{1, 1}
		vals := []float64{2, 3}
		if err := WriteOwned(r, 1, owned, vals, &buf, 7); err != nil {
			t.Error(err)
		}
	})
	if _, err := ReadAll(4, &buf); err == nil {
		t.Error("duplicate index accepted")
	}
}

func TestReadAllRejectsBadMagic(t *testing.T) {
	buf := bytes.NewBuffer([]byte{1, 2, 3, 4, 0, 0, 0, 0})
	if _, err := ReadAll(4, buf); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestWriteOwnedErrors(t *testing.T) {
	comm.Run(1, func(r *comm.Rank) {
		// Length mismatch.
		if err := WriteOwned(r, 1, []int32{1, 2}, []float64{1}, &bytes.Buffer{}, 9); err == nil {
			t.Error("length mismatch accepted")
		}
		// Leader without a writer.
		if err := WriteOwned(r, 1, []int32{1}, []float64{1}, nil, 10); err == nil {
			t.Error("nil writer accepted for leader")
		}
	})
}

func TestReadAllOutOfRangeIndex(t *testing.T) {
	var buf bytes.Buffer
	comm.Run(1, func(r *comm.Rank) {
		_ = WriteOwned(r, 1, []int32{9}, []float64{1}, &buf, 11)
	})
	if _, err := ReadAll(4, &buf); err == nil {
		t.Error("out-of-range index accepted")
	}
}
