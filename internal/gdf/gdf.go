// Package gdf implements the GRIST Data Format: a minimal
// self-describing binary container for model output — named dimensions,
// attributed variables, float64 payloads — standing in for the NetCDF
// history files the paper's model writes (stdlib-only substitution).
//
// Layout (little-endian):
//
//	magic "GDF1" | ndims | {nameLen name size}* | nvars |
//	{nameLen name nattrs {keyLen key valLen val}* ndims {dimIdx}* data}*
package gdf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

const magic = "GDF1"

// Dimension is a named axis length.
type Dimension struct {
	Name string
	Size int
}

// Variable is a data array over an ordered list of dimensions.
type Variable struct {
	Name  string
	Attrs map[string]string
	Dims  []string  // dimension names, slowest-varying first
	Data  []float64 // len = product of dimension sizes
}

// File is an in-memory GDF dataset.
type File struct {
	Dims []Dimension
	Vars []Variable
}

// AddDim registers a dimension and returns its index.
func (f *File) AddDim(name string, size int) int {
	f.Dims = append(f.Dims, Dimension{Name: name, Size: size})
	return len(f.Dims) - 1
}

// DimSize returns the size of a named dimension, or -1.
func (f *File) DimSize(name string) int {
	for _, d := range f.Dims {
		if d.Name == name {
			return d.Size
		}
	}
	return -1
}

// AddVar appends a variable after validating its shape against the
// registered dimensions.
func (f *File) AddVar(v Variable) error {
	want := 1
	for _, dn := range v.Dims {
		s := f.DimSize(dn)
		if s < 0 {
			return fmt.Errorf("gdf: variable %q uses unknown dimension %q", v.Name, dn)
		}
		want *= s
	}
	if len(v.Data) != want {
		return fmt.Errorf("gdf: variable %q has %d values, dims imply %d", v.Name, len(v.Data), want)
	}
	f.Vars = append(f.Vars, v)
	return nil
}

// Var returns the named variable, or nil.
func (f *File) Var(name string) *Variable {
	for i := range f.Vars {
		if f.Vars[i].Name == name {
			return &f.Vars[i]
		}
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", errors.New("gdf: unreasonable string length")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Write serializes the dataset.
func (f *File) Write(w io.Writer) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(f.Dims))); err != nil {
		return err
	}
	dimIdx := map[string]uint32{}
	for i, d := range f.Dims {
		if err := writeString(w, d.Name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(d.Size)); err != nil {
			return err
		}
		dimIdx[d.Name] = uint32(i)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(f.Vars))); err != nil {
		return err
	}
	for _, v := range f.Vars {
		if err := writeString(w, v.Name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(v.Attrs))); err != nil {
			return err
		}
		// Deterministic attribute order.
		keys := make([]string, 0, len(v.Attrs))
		for k := range v.Attrs {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			if err := writeString(w, k); err != nil {
				return err
			}
			if err := writeString(w, v.Attrs[k]); err != nil {
				return err
			}
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(v.Dims))); err != nil {
			return err
		}
		for _, dn := range v.Dims {
			idx, ok := dimIdx[dn]
			if !ok {
				return fmt.Errorf("gdf: variable %q references unknown dimension %q", v.Name, dn)
			}
			if err := binary.Write(w, binary.LittleEndian, idx); err != nil {
				return err
			}
		}
		bits := make([]uint64, len(v.Data))
		for i, x := range v.Data {
			bits[i] = math.Float64bits(x)
		}
		if err := binary.Write(w, binary.LittleEndian, bits); err != nil {
			return err
		}
	}
	return nil
}

// Read parses a dataset written by Write.
func Read(r io.Reader) (*File, error) {
	head := make([]byte, 4)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, err
	}
	if string(head) != magic {
		return nil, errors.New("gdf: bad magic")
	}
	var f File
	var ndims uint32
	if err := binary.Read(r, binary.LittleEndian, &ndims); err != nil {
		return nil, err
	}
	for i := uint32(0); i < ndims; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, err
		}
		var size uint64
		if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
			return nil, err
		}
		f.Dims = append(f.Dims, Dimension{Name: name, Size: int(size)})
	}
	var nvars uint32
	if err := binary.Read(r, binary.LittleEndian, &nvars); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nvars; i++ {
		var v Variable
		var err error
		if v.Name, err = readString(r); err != nil {
			return nil, err
		}
		var nattrs uint32
		if err := binary.Read(r, binary.LittleEndian, &nattrs); err != nil {
			return nil, err
		}
		v.Attrs = map[string]string{}
		for a := uint32(0); a < nattrs; a++ {
			k, err := readString(r)
			if err != nil {
				return nil, err
			}
			val, err := readString(r)
			if err != nil {
				return nil, err
			}
			v.Attrs[k] = val
		}
		var nd uint32
		if err := binary.Read(r, binary.LittleEndian, &nd); err != nil {
			return nil, err
		}
		size := 1
		for d := uint32(0); d < nd; d++ {
			var idx uint32
			if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
				return nil, err
			}
			if int(idx) >= len(f.Dims) {
				return nil, errors.New("gdf: dimension index out of range")
			}
			v.Dims = append(v.Dims, f.Dims[idx].Name)
			size *= f.Dims[idx].Size
		}
		bits := make([]uint64, size)
		if err := binary.Read(r, binary.LittleEndian, bits); err != nil {
			return nil, err
		}
		v.Data = make([]float64, size)
		for j, b := range bits {
			v.Data[j] = math.Float64frombits(b)
		}
		f.Vars = append(f.Vars, v)
	}
	return &f, nil
}

// sortStrings is a dependency-free insertion sort (attribute lists are
// tiny).
func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
