package gdf

import (
	"bytes"
	"math"
	"testing"
)

func sample() *File {
	f := &File{}
	f.AddDim("cell", 4)
	f.AddDim("lev", 3)
	_ = f.AddVar(Variable{
		Name:  "ps",
		Attrs: map[string]string{"units": "Pa", "long_name": "surface pressure"},
		Dims:  []string{"cell"},
		Data:  []float64{1e5, 99000, math.Pi, -0},
	})
	_ = f.AddVar(Variable{
		Name: "theta",
		Dims: []string{"cell", "lev"},
		Data: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		Attrs: map[string]string{
			"units": "K",
		},
	})
	return f
}

func TestRoundTrip(t *testing.T) {
	f := sample()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Dims) != 2 || g.DimSize("cell") != 4 || g.DimSize("lev") != 3 {
		t.Fatalf("dims: %+v", g.Dims)
	}
	ps := g.Var("ps")
	if ps == nil || ps.Attrs["units"] != "Pa" {
		t.Fatalf("ps: %+v", ps)
	}
	for i, want := range f.Vars[0].Data {
		if ps.Data[i] != want {
			t.Fatalf("ps[%d] = %v", i, ps.Data[i])
		}
	}
	th := g.Var("theta")
	if th == nil || len(th.Data) != 12 || th.Dims[1] != "lev" {
		t.Fatalf("theta: %+v", th)
	}
}

func TestAddVarValidatesShape(t *testing.T) {
	f := &File{}
	f.AddDim("cell", 4)
	if err := f.AddVar(Variable{Name: "x", Dims: []string{"cell"}, Data: make([]float64, 3)}); err == nil {
		t.Error("wrong length accepted")
	}
	if err := f.AddVar(Variable{Name: "x", Dims: []string{"nope"}, Data: make([]float64, 3)}); err == nil {
		t.Error("unknown dimension accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE----"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated file.
	f := sample()
	var buf bytes.Buffer
	_ = f.Write(&buf)
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	var a, b bytes.Buffer
	_ = sample().Write(&a)
	_ = sample().Write(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("encoding not deterministic (attribute order?)")
	}
}

func TestMissingVar(t *testing.T) {
	if sample().Var("absent") != nil {
		t.Error("missing variable found")
	}
}
