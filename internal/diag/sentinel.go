package diag

// Numerical-health sentinels: the continuous stability monitoring a
// hybrid physics-AI model needs to be trusted for long simulations
// (NeuralGCM and AERIS both stress this). A run that has gone bad — a
// NaN seeded by an unstable column, a mass or energy budget walking
// away, a mixed-precision configuration breaching the paper's §3.4
// ps/vor acceptance gate — should trip a structured warning within a
// step or two, not burn hours to a garbage history file.
//
// A HealthMonitor aggregates the sentinels, publishes their state into a
// telemetry.Registry (gauges for the current values, a trip counter per
// sentinel) and hands every trip to a caller-provided warn callback.
// Sentinels are cheap enough to run every few physics steps.

import (
	"fmt"
	"math"
	"sync"

	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// HealthEvent is one structured sentinel trip.
type HealthEvent struct {
	Sentinel  string  // "nonfinite", "mass_budget", "energy_budget", "psvor"
	Step      int64   // model step the observation belongs to
	Value     float64 // the measured quantity (count, relative drift, deviation)
	Threshold float64 // the limit it crossed
	Detail    string  // human-readable context (field name, observation point)
}

// String renders the event the way drivers log it.
func (e HealthEvent) String() string {
	return fmt.Sprintf("HEALTH[%s] step=%d %s: %.4g exceeds %.4g",
		e.Sentinel, e.Step, e.Detail, e.Value, e.Threshold)
}

// Default sentinel thresholds.
const (
	// DefaultMassTol is the relative dry-mass drift tolerance. The
	// continuity equation and FCT transport conserve mass to rounding,
	// so any drift beyond accumulated roundoff marks a defect.
	DefaultMassTol = 1e-6
	// DefaultEnergyTol is the relative total-energy drift tolerance.
	// Physics legitimately injects and removes energy (radiation,
	// surface fluxes), so the default is loose; adiabatic tests tighten
	// it.
	DefaultEnergyTol = 0.10
)

// HealthMonitor runs the sentinels and publishes their state. The zero
// value is not usable; construct with NewHealthMonitor. A nil monitor is
// disabled: every Observe/Check method is a no-op.
type HealthMonitor struct {
	mu   sync.Mutex
	warn func(HealthEvent)

	// Tolerances, settable before the first observation.
	MassTol   float64
	EnergyTol float64
	PsVorTol  float64

	massBase   float64
	massSet    bool
	energyBase float64
	energySet  bool

	// Rolling ps/vor deviation (EWMA over observations, alpha 0.3: the
	// gate should react within a few samples but not flap on one).
	psEWMA, vorEWMA float64
	psvorPrimed     bool

	// Recent trips, newest last (bounded), and the monotonic count of
	// every trip ever recorded (not bounded by the history window).
	trips     []HealthEvent
	tripCount int64

	// Published metrics.
	nonfinite  *telemetry.Counter
	tripsTotal map[string]*telemetry.Counter
	massDrift  *telemetry.Gauge
	enerDrift  *telemetry.Gauge
	psDev      *telemetry.Gauge
	vorDev     *telemetry.Gauge
}

// maxTrips bounds the retained trip history.
const maxTrips = 64

// psvorAlpha is the EWMA weight of the rolling deviation monitor.
const psvorAlpha = 0.3

// NewHealthMonitor builds a monitor publishing into reg (required) and
// forwarding trips to warn (nil: trips are only counted and retained).
func NewHealthMonitor(reg *telemetry.Registry, warn func(HealthEvent)) *HealthMonitor {
	h := &HealthMonitor{
		warn:      warn,
		MassTol:   DefaultMassTol,
		EnergyTol: DefaultEnergyTol,
		PsVorTol:  precision.ErrorThreshold,

		nonfinite: reg.Counter("grist_nonfinite_values_total"),
		tripsTotal: map[string]*telemetry.Counter{
			"nonfinite":     reg.Counter("grist_sentinel_trips_total", "sentinel", "nonfinite"),
			"mass_budget":   reg.Counter("grist_sentinel_trips_total", "sentinel", "mass_budget"),
			"energy_budget": reg.Counter("grist_sentinel_trips_total", "sentinel", "energy_budget"),
			"psvor":         reg.Counter("grist_sentinel_trips_total", "sentinel", "psvor"),
		},
		massDrift: reg.Gauge("grist_mass_budget_drift"),
		enerDrift: reg.Gauge("grist_energy_budget_drift"),
		psDev:     reg.Gauge("grist_psvor_deviation", "point", "ps"),
		vorDev:    reg.Gauge("grist_psvor_deviation", "point", "vor"),
	}
	return h
}

// trip records a sentinel firing: counter, retained history, callback.
// Callers hold h.mu.
func (h *HealthMonitor) trip(ev HealthEvent) {
	h.tripCount++
	h.tripsTotal[ev.Sentinel].Inc()
	if len(h.trips) == maxTrips {
		copy(h.trips, h.trips[1:])
		h.trips = h.trips[:maxTrips-1]
	}
	h.trips = append(h.trips, ev)
	if h.warn != nil {
		h.warn(ev)
	}
}

// TotalTrips returns the monotonic count of every sentinel trip ever
// recorded, letting a caller detect "tripped since I last looked"
// without diffing the bounded history.
func (h *HealthMonitor) TotalTrips() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tripCount
}

// Trips returns a copy of the retained trip history, oldest first.
func (h *HealthMonitor) Trips() []HealthEvent {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]HealthEvent(nil), h.trips...)
}

// NonFiniteCount returns the number of NaN or Inf values in xs.
func NonFiniteCount(xs []float64) int {
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			n++
		}
	}
	return n
}

// CheckFinite scans a named field for NaN/Inf and trips on any hit.
// Returns the non-finite count.
func (h *HealthMonitor) CheckFinite(step int64, name string, xs []float64) int {
	if h == nil {
		return 0
	}
	n := NonFiniteCount(xs)
	if n == 0 {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nonfinite.Add(int64(n))
	h.trip(HealthEvent{
		Sentinel: "nonfinite", Step: step,
		Value: float64(n), Threshold: 0,
		Detail: fmt.Sprintf("field %s has %d non-finite values", name, n),
	})
	return n
}

// relDrift returns |x-base| / |base| (0 when base is 0 and x is 0,
// +Inf when only base is 0).
func relDrift(x, base float64) float64 {
	if base == 0 {
		if x == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(x-base) / math.Abs(base)
}

// ObserveMassBudget feeds the current global dry-mass integral. The
// first observation becomes the conservation baseline; later ones trip
// when the relative drift exceeds MassTol. Returns the drift.
func (h *HealthMonitor) ObserveMassBudget(step int64, total float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.massSet {
		h.massBase, h.massSet = total, true
		h.massDrift.Set(0)
		return 0
	}
	d := relDrift(total, h.massBase)
	h.massDrift.Set(d)
	if d > h.MassTol || math.IsNaN(total) {
		h.trip(HealthEvent{
			Sentinel: "mass_budget", Step: step,
			Value: d, Threshold: h.MassTol,
			Detail: fmt.Sprintf("global dry mass %.6e vs baseline %.6e", total, h.massBase),
		})
	}
	return d
}

// ObserveEnergyBudget feeds the current total-energy integral; same
// baseline-and-drift contract as ObserveMassBudget against EnergyTol.
func (h *HealthMonitor) ObserveEnergyBudget(step int64, total float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.energySet {
		h.energyBase, h.energySet = total, true
		h.enerDrift.Set(0)
		return 0
	}
	d := relDrift(total, h.energyBase)
	h.enerDrift.Set(d)
	if d > h.EnergyTol || math.IsNaN(total) {
		h.trip(HealthEvent{
			Sentinel: "energy_budget", Step: step,
			Value: d, Threshold: h.EnergyTol,
			Detail: fmt.Sprintf("total energy %.6e vs baseline %.6e", total, h.energyBase),
		})
	}
	return d
}

// ObservePsVor feeds one sample of the paper's two mixed-precision
// observation points (§3.4.1): candidate and reference surface pressure
// and relative vorticity fields. The monitor keeps a rolling (EWMA)
// relative-L2 deviation per point and trips when either rolling value
// breaches PsVorTol — the same 5% gate the acceptance harness applies,
// applied continuously so a drifting run is caught mid-flight. Returns
// the instantaneous deviation.
func (h *HealthMonitor) ObservePsVor(step int64, psGot, psWant, vorGot, vorWant []float64) precision.Deviation {
	if h == nil {
		return precision.Deviation{}
	}
	dev := precision.Measure(psGot, psWant, vorGot, vorWant)
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.psvorPrimed {
		h.psEWMA, h.vorEWMA = dev.Ps, dev.Vor
		h.psvorPrimed = true
	} else {
		h.psEWMA += psvorAlpha * (dev.Ps - h.psEWMA)
		h.vorEWMA += psvorAlpha * (dev.Vor - h.vorEWMA)
	}
	h.psDev.Set(h.psEWMA)
	h.vorDev.Set(h.vorEWMA)
	if h.psEWMA > h.PsVorTol || h.vorEWMA > h.PsVorTol {
		h.trip(HealthEvent{
			Sentinel: "psvor", Step: step,
			Value: math.Max(h.psEWMA, h.vorEWMA), Threshold: h.PsVorTol,
			Detail: fmt.Sprintf("rolling deviation ps=%.4f vor=%.4f (§3.4 gate)", h.psEWMA, h.vorEWMA),
		})
	}
	return dev
}
