package diag

import (
	"math"
	"strings"
	"testing"

	"gristgo/internal/mesh"
)

var m3 = mesh.New(3)

func TestGlobalMeanConstantField(t *testing.T) {
	x := make([]float64, m3.NCells)
	for i := range x {
		x[i] = 42
	}
	if got := GlobalMean(m3, x); math.Abs(got-42) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
}

func TestGlobalMeanWeighting(t *testing.T) {
	// sin(lat) integrates to zero over the sphere with area weights.
	x := make([]float64, m3.NCells)
	for c := range x {
		x[c] = math.Sin(m3.CellLat[c])
	}
	if got := GlobalMean(m3, x); math.Abs(got) > 1e-3 {
		t.Errorf("area-weighted mean of sin(lat) = %v, want ~0", got)
	}
}

func TestZonalMeanRecoversLatFunction(t *testing.T) {
	x := make([]float64, m3.NCells)
	for c := range x {
		x[c] = 3 * m3.CellLat[c]
	}
	lat, mean := ZonalMean(m3, x, 18)
	for b := range lat {
		if math.IsNaN(mean[b]) {
			continue
		}
		if math.Abs(mean[b]-3*lat[b]) > 0.2 {
			t.Errorf("bin %d: mean %v at lat %v", b, mean[b], lat[b])
		}
	}
}

func TestZonalProfileASCII(t *testing.T) {
	lat, mean := ZonalMean(m3, m3.CellLat, 10)
	art := ZonalProfileASCII(lat, mean, 20, "rad")
	if len(strings.Split(strings.TrimSpace(art), "\n")) != 10 {
		t.Errorf("profile lines wrong:\n%s", art)
	}
	if !strings.Contains(art, "#") {
		t.Error("no bars rendered")
	}
}

func TestAreaWeightedRMS(t *testing.T) {
	x := make([]float64, m3.NCells)
	for i := range x {
		x[i] = -2
	}
	if got := AreaWeightedRMS(m3, x); math.Abs(got-2) > 1e-12 {
		t.Errorf("rms = %v", got)
	}
}

func TestPatternCorrelation(t *testing.T) {
	a := make([]float64, m3.NCells)
	b := make([]float64, m3.NCells)
	for c := range a {
		a[c] = math.Sin(2 * m3.CellLat[c])
		b[c] = -a[c]
	}
	if r := PatternCorrelation(m3, a, a); math.Abs(r-1) > 1e-12 {
		t.Errorf("self corr %v", r)
	}
	if r := PatternCorrelation(m3, a, b); math.Abs(r+1) > 1e-12 {
		t.Errorf("anti corr %v", r)
	}
}

func TestGlobalMinMax(t *testing.T) {
	lo, hi := GlobalMinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("minmax = %v %v", lo, hi)
	}
}
