package diag

import (
	"math"
	"strings"
	"testing"

	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

func newTestMonitor() (*HealthMonitor, *telemetry.Registry, *[]HealthEvent) {
	reg := telemetry.NewRegistry()
	var got []HealthEvent
	h := NewHealthMonitor(reg, func(ev HealthEvent) { got = append(got, ev) })
	return h, reg, &got
}

// TestPsVorSentinelGate: the rolling ps/vor monitor must stay silent on
// a clean run (deviations well under the 5% gate) and demonstrably fire
// once an injected perturbation pushes the deviation past the gate —
// the continuous version of the §3.4.1 acceptance harness.
func TestPsVorSentinelGate(t *testing.T) {
	h, reg, events := newTestMonitor()

	n := 256
	psRef := make([]float64, n)
	vorRef := make([]float64, n)
	ps := make([]float64, n)
	vor := make([]float64, n)
	for i := 0; i < n; i++ {
		psRef[i] = 1.0e5 + 200*math.Sin(float64(i)/7)
		vorRef[i] = 1e-5 * math.Cos(float64(i)/5)
	}

	// Clean phase: candidate within float32-rounding distance of the
	// reference, far below the gate.
	for step := int64(0); step < 20; step++ {
		for i := range ps {
			ps[i] = precision.Round32(psRef[i])
			vor[i] = precision.Round32(vorRef[i])
		}
		dev := h.ObservePsVor(step, ps, psRef, vor, vorRef)
		if !dev.Acceptable() {
			t.Fatalf("clean sample at step %d outside gate: %+v", step, dev)
		}
	}
	if len(*events) != 0 {
		t.Fatalf("sentinel tripped on a clean run: %v", (*events)[0])
	}

	// Inject a perturbation exceeding the 5% gate on surface pressure.
	for step := int64(20); step < 30; step++ {
		for i := range ps {
			ps[i] = psRef[i] * 1.2 // 20% relative error
			vor[i] = vorRef[i]
		}
		h.ObservePsVor(step, ps, psRef, vor, vorRef)
	}
	if len(*events) == 0 {
		t.Fatal("sentinel did not fire on a 20% ps perturbation")
	}
	ev := (*events)[0]
	if ev.Sentinel != "psvor" || ev.Threshold != precision.ErrorThreshold {
		t.Errorf("unexpected trip: %+v", ev)
	}
	// The rolling EWMA should take a couple of samples to cross, not
	// fire on the very first perturbed observation... unless the jump is
	// huge; with alpha 0.3 and a 0.2 deviation the first EWMA is 0.06 >
	// 0.05, so it may fire at step 20 — assert only that it fired during
	// the perturbed window with the right attribution.
	if ev.Step < 20 {
		t.Errorf("trip attributed to clean step %d", ev.Step)
	}
	if !strings.Contains(ev.String(), "psvor") {
		t.Errorf("String() = %q", ev.String())
	}

	// Published metrics: trip counter and deviation gauges.
	if v := reg.Counter("grist_sentinel_trips_total", "sentinel", "psvor").Value(); v == 0 {
		t.Error("psvor trip counter not incremented")
	}
	if v := reg.Gauge("grist_psvor_deviation", "point", "ps").Value(); v <= precision.ErrorThreshold {
		t.Errorf("ps deviation gauge = %g, want above the gate", v)
	}
}

// TestMassBudgetSentinel: baseline on first observation, silent within
// tolerance, trips beyond it.
func TestMassBudgetSentinel(t *testing.T) {
	h, reg, events := newTestMonitor()
	if d := h.ObserveMassBudget(0, 5.0e18); d != 0 {
		t.Errorf("baseline observation drift = %g", d)
	}
	h.ObserveMassBudget(1, 5.0e18*(1+1e-9)) // rounding-level wiggle
	if len(*events) != 0 {
		t.Fatal("mass sentinel tripped within tolerance")
	}
	d := h.ObserveMassBudget(2, 5.0e18*(1+1e-3))
	if d < 0.9e-3 || d > 1.1e-3 {
		t.Errorf("drift = %g, want ~1e-3", d)
	}
	if len(*events) != 1 || (*events)[0].Sentinel != "mass_budget" {
		t.Fatalf("expected one mass_budget trip, got %v", *events)
	}
	if v := reg.Gauge("grist_mass_budget_drift").Value(); v != d {
		t.Errorf("drift gauge = %g, want %g", v, d)
	}
}

// TestEnergyBudgetSentinel: the loose default tolerates physics-driven
// change; a blow-up trips.
func TestEnergyBudgetSentinel(t *testing.T) {
	h, _, events := newTestMonitor()
	h.ObserveEnergyBudget(0, 1.0e23)
	h.ObserveEnergyBudget(1, 1.05e23) // 5%: within the 10% default
	if len(*events) != 0 {
		t.Fatal("energy sentinel tripped within tolerance")
	}
	h.ObserveEnergyBudget(2, 1.5e23) // 50%: a blow-up
	if len(*events) != 1 || (*events)[0].Sentinel != "energy_budget" {
		t.Fatalf("expected one energy_budget trip, got %v", *events)
	}
}

// TestCheckFinite: NaN/Inf scanning counts, trips and publishes.
func TestCheckFinite(t *testing.T) {
	h, reg, events := newTestMonitor()
	clean := []float64{1, 2, 3}
	if n := h.CheckFinite(0, "theta_m", clean); n != 0 || len(*events) != 0 {
		t.Fatal("clean field tripped the nonfinite sentinel")
	}
	bad := []float64{1, math.NaN(), math.Inf(1), 4, math.Inf(-1)}
	if n := h.CheckFinite(3, "w", bad); n != 3 {
		t.Errorf("NonFinite = %d, want 3", n)
	}
	if len(*events) != 1 {
		t.Fatalf("expected one trip, got %d", len(*events))
	}
	ev := (*events)[0]
	if ev.Sentinel != "nonfinite" || ev.Step != 3 || !strings.Contains(ev.Detail, "w") {
		t.Errorf("trip = %+v", ev)
	}
	if v := reg.Counter("grist_nonfinite_values_total").Value(); v != 3 {
		t.Errorf("nonfinite counter = %d, want 3", v)
	}
}

// TestNilMonitorDisabled: a nil monitor is a no-op so instrumented
// drivers need no branches.
func TestNilMonitorDisabled(t *testing.T) {
	var h *HealthMonitor
	h.CheckFinite(0, "x", []float64{math.NaN()})
	h.ObserveMassBudget(0, 1)
	h.ObserveEnergyBudget(0, 1)
	h.ObservePsVor(0, nil, nil, nil, nil)
	if h.Trips() != nil {
		t.Error("nil monitor returned trips")
	}
}

// TestTripHistoryBounded: the retained history must not grow without
// bound on a persistently bad run.
func TestTripHistoryBounded(t *testing.T) {
	h, _, _ := newTestMonitor()
	h.ObserveMassBudget(0, 1)
	for i := int64(1); i <= 200; i++ {
		h.ObserveMassBudget(i, 2) // 100% drift every step
	}
	trips := h.Trips()
	if len(trips) != maxTrips {
		t.Fatalf("retained %d trips, want %d", len(trips), maxTrips)
	}
	if trips[len(trips)-1].Step != 200 {
		t.Errorf("newest trip step = %d, want 200", trips[len(trips)-1].Step)
	}
}
