// Package diag provides the global diagnostics a climate modeler expects
// from a run: area-weighted global means, zonal-mean profiles, budgets,
// and simple text rendering. The examples and cmd/grist use it to print
// the summary statistics the paper's log files report.
package diag

import (
	"fmt"
	"math"
	"strings"

	"gristgo/internal/mesh"
)

// GlobalMean returns the area-weighted mean of a cell field.
func GlobalMean(m *mesh.Mesh, x []float64) float64 {
	var s, w float64
	for c := 0; c < m.NCells; c++ {
		s += x[c] * m.CellArea[c]
		w += m.CellArea[c]
	}
	return s / w
}

// GlobalMinMax returns the extrema of a cell field.
func GlobalMinMax(x []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// ZonalMean bins a cell field into nBins latitude bands and returns the
// band centers (radians) and area-weighted means. Empty bands return NaN.
func ZonalMean(m *mesh.Mesh, x []float64, nBins int) (lat, mean []float64) {
	lat = make([]float64, nBins)
	mean = make([]float64, nBins)
	w := make([]float64, nBins)
	for b := 0; b < nBins; b++ {
		lat[b] = -math.Pi/2 + (float64(b)+0.5)*math.Pi/float64(nBins)
	}
	for c := 0; c < m.NCells; c++ {
		b := int((m.CellLat[c] + math.Pi/2) / math.Pi * float64(nBins))
		if b < 0 {
			b = 0
		}
		if b >= nBins {
			b = nBins - 1
		}
		mean[b] += x[c] * m.CellArea[c]
		w[b] += m.CellArea[c]
	}
	for b := 0; b < nBins; b++ {
		if w[b] > 0 {
			mean[b] /= w[b]
		} else {
			mean[b] = math.NaN()
		}
	}
	return lat, mean
}

// ZonalProfileASCII renders a zonal-mean profile as a sideways bar chart
// (south pole at the top), for terminal inspection.
func ZonalProfileASCII(latRad, mean []float64, width int, unit string) string {
	lo, hi := GlobalMinMax(finite(mean))
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	for i := range mean {
		deg := latRad[i] * 180 / math.Pi
		if math.IsNaN(mean[i]) {
			fmt.Fprintf(&b, "%+6.1f |\n", deg)
			continue
		}
		n := int(float64(width) * (mean[i] - lo) / span)
		fmt.Fprintf(&b, "%+6.1f |%s %.3g %s\n", deg, strings.Repeat("#", n), mean[i], unit)
	}
	return b.String()
}

func finite(xs []float64) []float64 {
	out := xs[:0:0]
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		return []float64{0}
	}
	return out
}

// AreaWeightedRMS returns the area-weighted root-mean-square of a field.
func AreaWeightedRMS(m *mesh.Mesh, x []float64) float64 {
	var s, w float64
	for c := 0; c < m.NCells; c++ {
		s += x[c] * x[c] * m.CellArea[c]
		w += m.CellArea[c]
	}
	return math.Sqrt(s / w)
}

// PatternCorrelation is the area-weighted Pearson correlation of two
// fields (convenience re-export used by examples; the experiments use
// synthclim.SpatialCorrelation which also supports masks).
func PatternCorrelation(m *mesh.Mesh, a, b []float64) float64 {
	am, bm := GlobalMean(m, a), GlobalMean(m, b)
	var cov, va, vb float64
	for c := 0; c < m.NCells; c++ {
		w := m.CellArea[c]
		cov += w * (a[c] - am) * (b[c] - bm)
		va += w * (a[c] - am) * (a[c] - am)
		vb += w * (b[c] - bm) * (b[c] - bm)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
