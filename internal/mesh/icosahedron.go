package mesh

// Triangulation is the primal icosahedral triangulation of the sphere from
// which the hexagonal C-grid (its Voronoi dual) is built. Vertices of the
// triangulation become cell centers of the C-grid; triangles become the
// dual vertices.
type Triangulation struct {
	Level int        // number of bisection refinements applied
	Verts []Vec3     // unit-sphere vertex positions
	Tris  [][3]int32 // corner indices, counterclockwise seen from outside
}

// baseIcosahedron returns the unrefined icosahedron (12 vertices,
// 20 faces) with counterclockwise faces.
func baseIcosahedron() *Triangulation {
	// Golden-ratio construction.
	const phi = 1.618033988749894848204586834365638118
	raw := [][3]float64{
		{-1, phi, 0}, {1, phi, 0}, {-1, -phi, 0}, {1, -phi, 0},
		{0, -1, phi}, {0, 1, phi}, {0, -1, -phi}, {0, 1, -phi},
		{phi, 0, -1}, {phi, 0, 1}, {-phi, 0, -1}, {-phi, 0, 1},
	}
	verts := make([]Vec3, len(raw))
	for i, r := range raw {
		verts[i] = Vec3{r[0], r[1], r[2]}.Normalize()
	}
	tris := [][3]int32{
		{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
		{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
		{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
		{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
	}
	t := &Triangulation{Level: 0, Verts: verts, Tris: tris}
	t.orientCCW()
	return t
}

// orientCCW flips any triangle whose corners are clockwise when seen from
// outside the sphere, so all faces share a consistent orientation.
func (t *Triangulation) orientCCW() {
	for i, tr := range t.Tris {
		a, b, c := t.Verts[tr[0]], t.Verts[tr[1]], t.Verts[tr[2]]
		// CCW from outside <=> (b-a)x(c-a) points outward.
		if b.Sub(a).Cross(c.Sub(a)).Dot(a.Add(b).Add(c)) < 0 {
			t.Tris[i][1], t.Tris[i][2] = tr[2], tr[1]
		}
	}
}

// Refine returns a new triangulation with every triangle split into four,
// with edge midpoints projected onto the sphere. The refinement level
// increases by one.
func (t *Triangulation) Refine() *Triangulation {
	type edgeKey struct{ a, b int32 }
	mid := make(map[edgeKey]int32, len(t.Tris)*3/2)
	verts := make([]Vec3, len(t.Verts), len(t.Verts)+3*len(t.Tris)/2)
	copy(verts, t.Verts)

	midpoint := func(a, b int32) int32 {
		k := edgeKey{a, b}
		if a > b {
			k = edgeKey{b, a}
		}
		if idx, ok := mid[k]; ok {
			return idx
		}
		idx := int32(len(verts))
		verts = append(verts, Midpoint(t.Verts[a], t.Verts[b]))
		mid[k] = idx
		return idx
	}

	tris := make([][3]int32, 0, 4*len(t.Tris))
	for _, tr := range t.Tris {
		a, b, c := tr[0], tr[1], tr[2]
		ab := midpoint(a, b)
		bc := midpoint(b, c)
		ca := midpoint(c, a)
		tris = append(tris,
			[3]int32{a, ab, ca},
			[3]int32{b, bc, ab},
			[3]int32{c, ca, bc},
			[3]int32{ab, bc, ca},
		)
	}
	return &Triangulation{Level: t.Level + 1, Verts: verts, Tris: tris}
}

// NewTriangulation builds the icosahedral triangulation at the given
// refinement level (level 0 is the raw icosahedron).
func NewTriangulation(level int) *Triangulation {
	t := baseIcosahedron()
	for i := 0; i < level; i++ {
		t = t.Refine()
	}
	return t
}
