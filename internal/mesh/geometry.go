package mesh

import "math"

// Vec3 is a point or direction in 3-space. Mesh geometry is computed on the
// unit sphere and scaled by the planetary radius where physical lengths are
// needed.
type Vec3 struct{ X, Y, Z float64 }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s * a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{s * a.X, s * a.Y, s * a.Z} }

// Dot returns the scalar product a . b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the vector product a x b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm returns the Euclidean length of a.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Normalize returns a scaled to unit length. The zero vector is returned
// unchanged.
func (a Vec3) Normalize() Vec3 {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// LatLon returns the latitude and longitude (radians) of a point on the
// sphere.
func (a Vec3) LatLon() (lat, lon float64) {
	u := a.Normalize()
	return math.Asin(clamp(u.Z, -1, 1)), math.Atan2(u.Y, u.X)
}

// FromLatLon returns the unit-sphere point at the given latitude and
// longitude (radians).
func FromLatLon(lat, lon float64) Vec3 {
	c := math.Cos(lat)
	return Vec3{c * math.Cos(lon), c * math.Sin(lon), math.Sin(lat)}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ArcLength returns the great-circle distance between two unit-sphere
// points, in radians (multiply by the sphere radius for physical length).
func ArcLength(a, b Vec3) float64 {
	// atan2 formulation is accurate for both small and large separations.
	cross := a.Cross(b).Norm()
	dot := a.Dot(b)
	return math.Atan2(cross, dot)
}

// SphericalTriangleArea returns the area of the spherical triangle with
// unit-sphere corners a, b, c, on the unit sphere (steradians). The result
// is always non-negative.
func SphericalTriangleArea(a, b, c Vec3) float64 {
	// L'Huilier-free formulation via the spherical excess using
	// the Eriksson / van Oosterom-Strackee solid-angle formula:
	// tan(E/2) = |a.(b x c)| / (1 + a.b + b.c + c.a)
	num := math.Abs(a.Dot(b.Cross(c)))
	den := 1 + a.Dot(b) + b.Dot(c) + c.Dot(a)
	e := 2 * math.Atan2(num, den)
	return math.Abs(e)
}

// SphericalPolygonArea returns the area (steradians) of the spherical
// polygon with the given unit-sphere corners, traversed in order. The
// polygon is fanned from its (normalized) centroid, so it must be
// star-shaped about the centroid — true for all cells and kites on an
// icosahedral mesh.
func SphericalPolygonArea(pts []Vec3) float64 {
	if len(pts) < 3 {
		return 0
	}
	var centroid Vec3
	for _, p := range pts {
		centroid = centroid.Add(p)
	}
	centroid = centroid.Normalize()
	var area float64
	for i := range pts {
		j := (i + 1) % len(pts)
		area += SphericalTriangleArea(centroid, pts[i], pts[j])
	}
	return area
}

// Circumcenter returns the circumcenter of the spherical triangle (a, b, c)
// projected onto the unit sphere, oriented to lie on the same hemisphere as
// the triangle.
func Circumcenter(a, b, c Vec3) Vec3 {
	cc := b.Sub(a).Cross(c.Sub(a))
	cc = cc.Normalize()
	// Orient toward the triangle.
	if cc.Dot(a.Add(b).Add(c)) < 0 {
		cc = cc.Scale(-1)
	}
	return cc
}

// Midpoint returns the normalized midpoint of two unit-sphere points.
func Midpoint(a, b Vec3) Vec3 { return a.Add(b).Normalize() }

// LocalVertical returns the outward unit normal of the sphere at p (which
// is simply p normalized).
func LocalVertical(p Vec3) Vec3 { return p.Normalize() }

// TangentBasis returns the local east and north unit vectors at unit-sphere
// point p. At the poles the basis is chosen along the x-axis meridian.
func TangentBasis(p Vec3) (east, north Vec3) {
	up := p.Normalize()
	zAxis := Vec3{0, 0, 1}
	east = zAxis.Cross(up)
	if east.Norm() < 1e-12 {
		east = Vec3{0, 1, 0}
	} else {
		east = east.Normalize()
	}
	north = up.Cross(east)
	return east, north
}
