package mesh

import (
	"math"
	"testing"
)

func TestCensusCounts(t *testing.T) {
	want := []struct {
		level               int
		cells, edges, verts int64
	}{
		{6, 40962, 122880, 81920},
		{8, 655362, 1966080, 1310720},
		{9, 2621442, 7864320, 5242880},
		{10, 10485762, 31457280, 20971520},
		{11, 41943042, 125829120, 83886080},
		{12, 167772162, 503316480, 335544320},
	}
	for _, w := range want {
		c := Census(w.level)
		if c.Cells != w.cells || c.Edges != w.edges || c.Verts != w.verts {
			t.Errorf("G%d: got (%d,%d,%d), want (%d,%d,%d)",
				w.level, c.Cells, c.Edges, c.Verts, w.cells, w.edges, w.verts)
		}
	}
}

func TestGeneratedMeshMatchesCensus(t *testing.T) {
	for level := 0; level <= 4; level++ {
		m := New(level)
		c := Census(level)
		if int64(m.NCells) != c.Cells {
			t.Errorf("level %d: NCells=%d want %d", level, m.NCells, c.Cells)
		}
		if int64(m.NEdges) != c.Edges {
			t.Errorf("level %d: NEdges=%d want %d", level, m.NEdges, c.Edges)
		}
		if int64(m.NVerts) != c.Verts {
			t.Errorf("level %d: NVerts=%d want %d", level, m.NVerts, c.Verts)
		}
	}
}

func TestEulerCharacteristic(t *testing.T) {
	m := New(3)
	// V - E + F = 2 for the sphere (cells are faces of the dual).
	if got := m.NCells - m.NEdges + m.NVerts; got != 2 {
		t.Errorf("Euler characteristic = %d, want 2", got)
	}
}

func TestCellDegrees(t *testing.T) {
	m := New(3)
	pentagons := 0
	for c := int32(0); c < int32(m.NCells); c++ {
		switch m.CellDegree(c) {
		case 5:
			pentagons++
		case 6:
		default:
			t.Fatalf("cell %d has degree %d", c, m.CellDegree(c))
		}
	}
	if pentagons != 12 {
		t.Errorf("pentagon count = %d, want 12", pentagons)
	}
}

func TestAreasTileSphere(t *testing.T) {
	m := New(4)
	total := 4 * math.Pi * m.Radius * m.Radius
	var cells, verts float64
	for _, a := range m.CellArea {
		cells += a
	}
	for _, a := range m.VertArea {
		verts += a
	}
	if rel := math.Abs(cells-total) / total; rel > 1e-9 {
		t.Errorf("cell areas cover %.12f of sphere (rel err %g)", cells/total, rel)
	}
	if rel := math.Abs(verts-total) / total; rel > 1e-9 {
		t.Errorf("vertex areas cover %.12f of sphere (rel err %g)", verts/total, rel)
	}
}

func TestKiteFractionsSumToOne(t *testing.T) {
	m := New(3)
	for c := int32(0); c < int32(m.NCells); c++ {
		var s float64
		for k := m.CellOff[c]; k < m.CellOff[c+1]; k++ {
			s += m.KiteFrac[k]
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("cell %d kite fractions sum to %v", c, s)
		}
	}
}

func TestEdgeOrientationConventions(t *testing.T) {
	m := New(3)
	for e := 0; e < m.NEdges; e++ {
		up := LocalVertical(m.EdgePos[e])
		tangent := up.Cross(m.EdgeNormal[e])
		if tangent.Sub(m.EdgeTangent[e]).Norm() > 1e-12 {
			t.Fatalf("edge %d: tangent != up x normal", e)
		}
		// Dual vertices ordered along the tangent.
		d := m.VertPos[m.EdgeVert[e][1]].Sub(m.VertPos[m.EdgeVert[e][0]])
		if d.Dot(m.EdgeTangent[e]) <= 0 {
			t.Fatalf("edge %d: EdgeVert not ordered along tangent", e)
		}
		// Normal points from cell 0 to cell 1.
		d = m.CellPos[m.EdgeCell[e][1]].Sub(m.CellPos[m.EdgeCell[e][0]])
		if d.Dot(m.EdgeNormal[e]) <= 0 {
			t.Fatalf("edge %d: normal does not point from cell0 to cell1", e)
		}
	}
}

// divergence computes the C-grid divergence of an edge-normal field for
// test purposes.
func divergence(m *Mesh, u []float64) []float64 {
	div := make([]float64, m.NCells)
	for c := int32(0); c < int32(m.NCells); c++ {
		var s float64
		for k := m.CellOff[c]; k < m.CellOff[c+1]; k++ {
			e := m.CellEdge[k]
			s += float64(m.CellEdgeSign[k]) * u[e] * m.DvEdge[e]
		}
		div[c] = s / m.CellArea[c]
	}
	return div
}

// gradient computes the C-grid edge-normal gradient of a cell field.
func gradient(m *Mesh, psi []float64) []float64 {
	g := make([]float64, m.NEdges)
	for e := 0; e < m.NEdges; e++ {
		g[e] = (psi[m.EdgeCell[e][1]] - psi[m.EdgeCell[e][0]]) / m.DcEdge[e]
	}
	return g
}

// curl computes the C-grid relative vorticity at dual vertices.
func curl(m *Mesh, u []float64) []float64 {
	z := make([]float64, m.NVerts)
	for v := 0; v < m.NVerts; v++ {
		var s float64
		for k := 0; k < 3; k++ {
			e := m.VertEdge[v][k]
			s += float64(m.VertEdgeSign[v][k]) * u[e] * m.DcEdge[e]
		}
		z[v] = s / m.VertArea[v]
	}
	return z
}

func TestCurlOfGradientIsZero(t *testing.T) {
	m := New(3)
	psi := make([]float64, m.NCells)
	for c := 0; c < m.NCells; c++ {
		psi[c] = math.Sin(3*m.CellLat[c]) * math.Cos(2*m.CellLon[c]) * 1e3
	}
	z := curl(m, gradient(m, psi))
	for v, zz := range z {
		if math.Abs(zz) > 1e-12 {
			t.Fatalf("curl(grad) at vertex %d = %g, want ~0", v, zz)
		}
	}
}

func TestDivergenceTheoremGlobalSum(t *testing.T) {
	m := New(3)
	u := make([]float64, m.NEdges)
	for e := range u {
		u[e] = math.Sin(float64(e)) // arbitrary field
	}
	div := divergence(m, u)
	var s float64
	for c := 0; c < m.NCells; c++ {
		s += div[c] * m.CellArea[c]
	}
	// Every edge flux appears twice with opposite signs.
	if math.Abs(s) > 1e-3 { // absolute: fluxes are O(1e6 m * 1) each
		t.Errorf("global divergence integral = %g, want ~0", s)
	}
}

// solidBodyU returns the edge-normal velocities of solid-body rotation
// about the z-axis with equatorial speed u0.
func solidBodyU(m *Mesh, u0 float64) []float64 {
	u := make([]float64, m.NEdges)
	for e := 0; e < m.NEdges; e++ {
		lat, _ := m.EdgePos[e].LatLon()
		east, _ := TangentBasis(m.EdgePos[e])
		vel := east.Scale(u0 * math.Cos(lat))
		u[e] = vel.Dot(m.EdgeNormal[e])
	}
	return u
}

func TestSolidBodyRotationDivergenceFree(t *testing.T) {
	m := New(4)
	const u0 = 40.0
	div := divergence(m, solidBodyU(m, u0))
	scale := u0 / m.Radius // natural divergence scale of the flow
	for c, d := range div {
		// Discretization (truncation) error only: |div| << u0/R.
		if math.Abs(d) > 0.01*scale {
			t.Fatalf("cell %d: div = %g (%.2f%% of u0/R)", c, d, 100*math.Abs(d)/scale)
		}
	}
}

func TestSolidBodyRotationVorticity(t *testing.T) {
	m := New(4)
	const u0 = 40.0
	z := curl(m, solidBodyU(m, u0))
	// Analytic: zeta = 2*u0/R * sin(lat).
	var worst float64
	for v := 0; v < m.NVerts; v++ {
		lat, _ := m.VertPos[v].LatLon()
		want := 2 * u0 / m.Radius * math.Sin(lat)
		diff := math.Abs(z[v] - want)
		if diff > worst {
			worst = diff
		}
	}
	scale := 2 * u0 / m.Radius
	if worst > 0.05*scale {
		t.Errorf("max vorticity error %g (%.1f%% of 2u0/R)", worst, 100*worst/scale)
	}
}

func TestTangentialReconstruction(t *testing.T) {
	m := New(4)
	const u0 = 40.0
	u := solidBodyU(m, u0)
	v := make([]float64, m.NEdges)
	m.TangentialVelocity(v, u)
	var worst, sum float64
	for e := 0; e < m.NEdges; e++ {
		lat, _ := m.EdgePos[e].LatLon()
		east, _ := TangentBasis(m.EdgePos[e])
		want := east.Scale(u0 * math.Cos(lat)).Dot(m.EdgeTangent[e])
		diff := math.Abs(v[e] - want)
		sum += diff * diff
		if diff > worst {
			worst = diff
		}
	}
	rms := math.Sqrt(sum / float64(m.NEdges))
	// The TRiSK reconstruction is low-order near the 12 pentagons on raw
	// bisection meshes (max error does not converge there), but the bulk
	// error does converge.
	if worst > 0.15*u0 {
		t.Errorf("max tangential reconstruction error %.3f m/s (u0=%v)", worst, u0)
	}
	if rms > 0.03*u0 {
		t.Errorf("rms tangential reconstruction error %.3f m/s (u0=%v)", rms, u0)
	}
}

// TestTrskEnergyAntisymmetry verifies the defining conservation property
// of the TRiSK weights (Ringler et al. 2010, eq. 25): with
// v_e = sum W_{e,e'} u_{e'}, the rescaled weights
// w_{e,e'} = W_{e,e'} * Dc_e / Dv_{e'} satisfy w_{e,e'} = -w_{e',e},
// which makes the Coriolis term energy-neutral.
func TestTrskEnergyAntisymmetry(t *testing.T) {
	m := New(3)
	type pair struct{ a, b int32 }
	W := make(map[pair]float64)
	for e := int32(0); e < int32(m.NEdges); e++ {
		for k := m.TrskOff[e]; k < m.TrskOff[e+1]; k++ {
			W[pair{e, m.TrskEdge[k]}] += m.TrskWeight[k]
		}
	}
	for p, w := range W {
		a := w * m.DcEdge[p.a] / m.DvEdge[p.b]
		b := W[pair{p.b, p.a}] * m.DcEdge[p.b] / m.DvEdge[p.a]
		if math.Abs(a+b) > 1e-12 {
			t.Fatalf("edges (%d,%d): w=%g mirror=%g, sum=%g", p.a, p.b, a, b, a+b)
		}
	}
}

func TestReorderPreservesOperators(t *testing.T) {
	m := New(3)
	r := m.ReorderBFS()
	if r.NCells != m.NCells || r.NEdges != m.NEdges || r.NVerts != m.NVerts {
		t.Fatal("reorder changed entity counts")
	}
	// Divergence of solid-body rotation must be identical up to
	// permutation; compare global L2 norms of div and curl fields.
	norm := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x * x
		}
		return math.Sqrt(s)
	}
	u1 := solidBodyU(m, 40)
	u2 := solidBodyU(r, 40)
	if d := math.Abs(norm(curl(m, u1)) - norm(curl(r, u2))); d > 1e-15 {
		t.Errorf("curl norm changed by %g after reorder", d)
	}
	v1 := make([]float64, m.NEdges)
	v2 := make([]float64, r.NEdges)
	m.TangentialVelocity(v1, u1)
	r.TangentialVelocity(v2, u2)
	if d := math.Abs(norm(v1) - norm(v2)); d > 1e-9 {
		t.Errorf("tangential reconstruction norm changed by %g after reorder", d)
	}
}

func TestBFSOrderIsPermutation(t *testing.T) {
	m := New(3)
	perm := m.BFSOrder(0)
	if len(perm) != m.NCells {
		t.Fatalf("perm length %d != %d", len(perm), m.NCells)
	}
	seen := make([]bool, m.NCells)
	for _, p := range perm {
		if seen[p] {
			t.Fatalf("duplicate %d in permutation", p)
		}
		seen[p] = true
	}
}

func TestBFSImprovesLocality(t *testing.T) {
	m := New(5)
	r := m.ReorderBFS()
	spread := func(mm *Mesh) float64 {
		var s float64
		for c := int32(0); c < int32(mm.NCells); c++ {
			for _, nb := range mm.CellCells(c) {
				s += math.Abs(float64(nb - c))
			}
		}
		return s
	}
	if spread(r) >= spread(m) {
		t.Errorf("BFS reorder did not reduce neighbor index spread: %g >= %g", spread(r), spread(m))
	}
}

// TestCGridOrthogonality: on a Voronoi-dual C-grid the primal edge (arc
// between the two dual vertices) should be nearly perpendicular to the
// dual edge (arc between the two cell centers) — the property the
// staggered divergence/gradient operators rely on.
func TestCGridOrthogonality(t *testing.T) {
	m := New(4)
	var worst, mean float64
	for e := 0; e < m.NEdges; e++ {
		cellDir := m.CellPos[m.EdgeCell[e][1]].Sub(m.CellPos[m.EdgeCell[e][0]]).Normalize()
		vertDir := m.VertPos[m.EdgeVert[e][1]].Sub(m.VertPos[m.EdgeVert[e][0]]).Normalize()
		dot := math.Abs(cellDir.Dot(vertDir))
		mean += dot
		if dot > worst {
			worst = dot
		}
	}
	mean /= float64(m.NEdges)
	// Raw bisection meshes are not SCVT-optimized, so perpendicularity
	// is approximate; the mean deviation must still be small.
	if mean > 0.05 {
		t.Errorf("mean |cos| between primal and dual edges = %.4f", mean)
	}
	if worst > 0.25 {
		t.Errorf("worst |cos| = %.4f", worst)
	}
}

// TestEdgeMidpointNearArcCrossing: the edge position used for flux
// sampling should sit close to both arcs.
func TestEdgeMidpointNearArcCrossing(t *testing.T) {
	m := New(3)
	for e := 0; e < m.NEdges; e++ {
		dC := ArcLength(m.EdgePos[e], m.CellPos[m.EdgeCell[e][0]]) +
			ArcLength(m.EdgePos[e], m.CellPos[m.EdgeCell[e][1]])
		// Detour ratio along the cell-cell arc.
		if direct := ArcLength(m.CellPos[m.EdgeCell[e][0]], m.CellPos[m.EdgeCell[e][1]]); dC > 1.0001*direct {
			t.Fatalf("edge %d midpoint off the cell-cell arc (detour %.6f)", e, dC/direct)
		}
	}
}
