// Package mesh implements the unstructured icosahedral hexagonal C-grid on
// the sphere used by the GRIST dynamical core: an icosahedral triangulation
// refined by edge bisection, with model cells at the triangulation vertices
// (Voronoi hexagons plus 12 pentagons), dual vertices at the triangle
// circumcenters, and edges carrying the staggered normal velocities.
//
// The connectivity layout follows the paper's parallelization facilitation
// layer: indirect addressing through flat CSR-style index arrays, with an
// optional breadth-first-search renumbering that improves cache locality
// (§3.1.3 of the paper).
package mesh

import (
	"fmt"
	"math"
	"sort"
)

// EarthRadius is the mean Earth radius in meters ("rearth" in GRIST).
const EarthRadius = 6.37122e6

// Mesh is the hexagonal C-grid: cells (mass points), edges (normal
// velocity points), and dual vertices (vorticity points).
//
// Conventions:
//   - EdgeNormal[e] points from EdgeCell[e][0] toward EdgeCell[e][1].
//   - EdgeTangent[e] = LocalVertical x EdgeNormal (90° counterclockwise
//     from the normal, seen from outside the sphere); EdgeVert[e] is
//     ordered so the dual vertex displacement aligns with the tangent.
//   - Cell edge/vertex lists are counterclockwise; CellVert[c][k] lies
//     between CellEdge[c][k] and CellEdge[c][k+1].
type Mesh struct {
	Level  int     // icosahedral refinement level (G-level)
	Radius float64 // sphere radius in meters

	NCells, NEdges, NVerts int

	// Cell (hexagon/pentagon) data.
	CellPos  []Vec3    // unit-sphere cell centers
	CellLat  []float64 // radians
	CellLon  []float64 // radians
	CellArea []float64 // m^2

	// CSR connectivity around cells. Offsets have length NCells+1; the
	// k-th item of cell c lives at index CellOff[c]+k.
	CellOff      []int32
	CellEdge     []int32   // edges CCW around the cell
	CellCell     []int32   // neighbor across CellEdge at same position
	CellVert     []int32   // dual vertices CCW; item k between edges k, k+1
	CellEdgeSign []int8    // +1 where the edge normal is outward of the cell
	KiteFrac     []float64 // kite-area fraction R_{c,v}, aligned with CellVert

	// Edge data.
	EdgeCell    [][2]int32
	EdgeVert    [][2]int32
	EdgePos     []Vec3    // unit-sphere edge midpoints (between cell centers)
	EdgeLat     []float64 // radians, for the Coriolis parameter
	EdgeNormal  []Vec3
	EdgeTangent []Vec3
	DcEdge      []float64 // distance between the two cell centers (m)
	DvEdge      []float64 // distance between the two dual vertices (m)

	// Dual-vertex (triangle) data.
	VertPos      []Vec3
	VertArea     []float64
	VertCell     [][3]int32 // CCW corner cells
	VertEdge     [][3]int32 // VertEdge[v][k] joins VertCell[v][k] and [k+1]
	VertEdgeSign [][3]int8  // +1 where v == EdgeVert[edge][1]

	// TRiSK tangential-reconstruction stencil, CSR over edges:
	// tangential(e) = sum over k in [TrskOff[e], TrskOff[e+1]) of
	// TrskWeight[k] * normalVelocity[TrskEdge[k]].
	TrskOff    []int32
	TrskEdge   []int32
	TrskWeight []float64
}

// CellEdges returns the CCW edge list of cell c.
func (m *Mesh) CellEdges(c int32) []int32 { return m.CellEdge[m.CellOff[c]:m.CellOff[c+1]] }

// CellCells returns the CCW neighbor list of cell c.
func (m *Mesh) CellCells(c int32) []int32 { return m.CellCell[m.CellOff[c]:m.CellOff[c+1]] }

// CellVerts returns the CCW dual-vertex list of cell c.
func (m *Mesh) CellVerts(c int32) []int32 { return m.CellVert[m.CellOff[c]:m.CellOff[c+1]] }

// CellDegree returns the number of edges of cell c (5 or 6).
func (m *Mesh) CellDegree(c int32) int { return int(m.CellOff[c+1] - m.CellOff[c]) }

// New builds the hexagonal C-grid at the given icosahedral level on a
// sphere of radius EarthRadius. Levels up to about 8 are practical in
// memory; use Census for the closed-form grid statistics of larger levels.
func New(level int) *Mesh {
	return NewWithRadius(level, EarthRadius)
}

// NewWithRadius builds the C-grid at the given level and sphere radius.
func NewWithRadius(level int, radius float64) *Mesh {
	tri := NewTriangulation(level)
	return FromTriangulation(tri, radius)
}

// FromTriangulation constructs the C-grid dual of an icosahedral
// triangulation.
func FromTriangulation(tri *Triangulation, radius float64) *Mesh {
	nc := len(tri.Verts)
	nv := len(tri.Tris)

	m := &Mesh{
		Level:   tri.Level,
		Radius:  radius,
		NCells:  nc,
		NVerts:  nv,
		CellPos: tri.Verts,
	}

	// --- Dual vertices: triangle circumcenters. ---
	m.VertPos = make([]Vec3, nv)
	m.VertCell = make([][3]int32, nv)
	for t, tr := range tri.Tris {
		m.VertPos[t] = Circumcenter(tri.Verts[tr[0]], tri.Verts[tr[1]], tri.Verts[tr[2]])
		m.VertCell[t] = tr
	}

	// --- Edges: unique vertex pairs of the triangulation. ---
	type edgeKey struct{ a, b int32 }
	edgeID := make(map[edgeKey]int32, 3*nv/2)
	var edgeCell [][2]int32
	var edgeTris [][2]int32
	for t, tr := range tri.Tris {
		for k := 0; k < 3; k++ {
			a, b := tr[k], tr[(k+1)%3]
			key := edgeKey{a, b}
			if a > b {
				key = edgeKey{b, a}
			}
			id, ok := edgeID[key]
			if !ok {
				id = int32(len(edgeCell))
				edgeID[key] = id
				edgeCell = append(edgeCell, [2]int32{key.a, key.b})
				edgeTris = append(edgeTris, [2]int32{-1, -1})
			}
			if edgeTris[id][0] < 0 {
				edgeTris[id][0] = int32(t)
			} else {
				edgeTris[id][1] = int32(t)
			}
		}
	}
	ne := len(edgeCell)
	m.NEdges = ne
	m.EdgeCell = edgeCell
	m.EdgeVert = edgeTris

	// --- Edge geometry and orientation. ---
	m.EdgePos = make([]Vec3, ne)
	m.EdgeLat = make([]float64, ne)
	m.EdgeNormal = make([]Vec3, ne)
	m.EdgeTangent = make([]Vec3, ne)
	m.DcEdge = make([]float64, ne)
	m.DvEdge = make([]float64, ne)
	for e := 0; e < ne; e++ {
		c0 := m.CellPos[m.EdgeCell[e][0]]
		c1 := m.CellPos[m.EdgeCell[e][1]]
		pos := Midpoint(c0, c1)
		m.EdgePos[e] = pos
		m.EdgeLat[e], _ = pos.LatLon()
		up := LocalVertical(pos)
		n := c1.Sub(c0)
		n = n.Sub(up.Scale(n.Dot(up))).Normalize()
		m.EdgeNormal[e] = n
		m.EdgeTangent[e] = up.Cross(n)
		m.DcEdge[e] = radius * ArcLength(c0, c1)

		v0, v1 := m.EdgeVert[e][0], m.EdgeVert[e][1]
		if v1 < 0 {
			panic(fmt.Sprintf("mesh: edge %d has a single adjacent triangle", e))
		}
		// Order dual vertices along the tangent.
		if m.VertPos[v1].Sub(m.VertPos[v0]).Dot(m.EdgeTangent[e]) < 0 {
			m.EdgeVert[e][0], m.EdgeVert[e][1] = v1, v0
		}
		m.DvEdge[e] = radius * ArcLength(m.VertPos[m.EdgeVert[e][0]], m.VertPos[m.EdgeVert[e][1]])
	}

	// --- Cell connectivity: collect incident edges, sort CCW. ---
	incident := make([][]int32, nc)
	for e := 0; e < ne; e++ {
		incident[m.EdgeCell[e][0]] = append(incident[m.EdgeCell[e][0]], int32(e))
		incident[m.EdgeCell[e][1]] = append(incident[m.EdgeCell[e][1]], int32(e))
	}
	vincident := make([][]int32, nc)
	for v := 0; v < nv; v++ {
		for _, c := range m.VertCell[v] {
			vincident[c] = append(vincident[c], int32(v))
		}
	}

	m.CellOff = make([]int32, nc+1)
	for c := 0; c < nc; c++ {
		m.CellOff[c+1] = m.CellOff[c] + int32(len(incident[c]))
	}
	total := int(m.CellOff[nc])
	m.CellEdge = make([]int32, total)
	m.CellCell = make([]int32, total)
	m.CellVert = make([]int32, total)
	m.CellEdgeSign = make([]int8, total)
	m.CellLat = make([]float64, nc)
	m.CellLon = make([]float64, nc)
	m.CellArea = make([]float64, nc)

	for c := int32(0); c < int32(nc); c++ {
		center := m.CellPos[c]
		m.CellLat[c], m.CellLon[c] = center.LatLon()
		east, north := TangentBasis(center)
		angleOf := func(p Vec3) float64 {
			d := p.Sub(center)
			return math.Atan2(d.Dot(north), d.Dot(east))
		}
		edges := incident[c]
		sort.Slice(edges, func(i, j int) bool {
			return angleOf(m.EdgePos[edges[i]]) < angleOf(m.EdgePos[edges[j]])
		})
		verts := vincident[c]
		sort.Slice(verts, func(i, j int) bool {
			return angleOf(m.VertPos[verts[i]]) < angleOf(m.VertPos[verts[j]])
		})
		// Rotate the vertex list so vertex k sits between edges k and k+1:
		// vertex 0 is the first vertex CCW after edge 0.
		ref := angleOf(m.EdgePos[edges[0]])
		rot, best := 0, math.MaxFloat64
		for i, v := range verts {
			a := angleOf(m.VertPos[v]) - ref
			for a < 0 {
				a += 2 * math.Pi
			}
			if a < best {
				best, rot = a, i
			}
		}
		base := m.CellOff[c]
		deg := len(edges)
		for k := 0; k < deg; k++ {
			e := edges[k]
			m.CellEdge[base+int32(k)] = e
			if m.EdgeCell[e][0] == c {
				m.CellCell[base+int32(k)] = m.EdgeCell[e][1]
				m.CellEdgeSign[base+int32(k)] = 1
			} else {
				m.CellCell[base+int32(k)] = m.EdgeCell[e][0]
				m.CellEdgeSign[base+int32(k)] = -1
			}
			m.CellVert[base+int32(k)] = verts[(rot+k)%deg]
		}
		// Cell area from the CCW dual-vertex polygon.
		poly := make([]Vec3, deg)
		for k := 0; k < deg; k++ {
			poly[k] = m.VertPos[m.CellVert[base+int32(k)]]
		}
		m.CellArea[c] = radius * radius * SphericalPolygonArea(poly)
	}

	// --- Dual-vertex connectivity and areas. ---
	m.VertArea = make([]float64, nv)
	m.VertEdge = make([][3]int32, nv)
	m.VertEdgeSign = make([][3]int8, nv)
	for v := 0; v < nv; v++ {
		tr := m.VertCell[v]
		m.VertArea[v] = radius * radius * SphericalTriangleArea(
			m.CellPos[tr[0]], m.CellPos[tr[1]], m.CellPos[tr[2]])
		for k := 0; k < 3; k++ {
			a, b := tr[k], tr[(k+1)%3]
			key := edgeKey{a, b}
			if a > b {
				key = edgeKey{b, a}
			}
			e := edgeID[key]
			m.VertEdge[v][k] = e
			if m.EdgeVert[e][1] == int32(v) {
				m.VertEdgeSign[v][k] = 1
			} else {
				m.VertEdgeSign[v][k] = -1
			}
		}
	}

	m.computeKites()
	m.computeTrskWeights()
	return m
}

// computeKites fills KiteFrac: for each cell corner (cell c, dual vertex v
// between edges eA and eB), the spherical area of the kite
// (cell center, midpoint of eA, v, midpoint of eB) divided by the cell
// area. The fractions of each cell sum to ~1.
func (m *Mesh) computeKites() {
	m.KiteFrac = make([]float64, len(m.CellVert))
	for c := int32(0); c < int32(m.NCells); c++ {
		base := m.CellOff[c]
		deg := m.CellDegree(c)
		var sum float64
		for k := 0; k < deg; k++ {
			eA := m.CellEdge[base+int32(k)]
			eB := m.CellEdge[base+int32((k+1)%deg)]
			v := m.CellVert[base+int32(k)]
			area := m.Radius * m.Radius * SphericalPolygonArea([]Vec3{
				m.CellPos[c], m.EdgePos[eA], m.VertPos[v], m.EdgePos[eB],
			})
			m.KiteFrac[base+int32(k)] = area
			sum += area
		}
		for k := 0; k < deg; k++ {
			m.KiteFrac[base+int32(k)] /= sum
		}
	}
}

// computeTrskWeights builds the TRiSK tangential-velocity reconstruction
// stencil (Thuburn et al. 2009; Ringler et al. 2010). For edge e the
// tangential velocity is reconstructed from the normal velocities of the
// edges of the two cells sharing e:
//
//	v_e = sum_{c in EdgeCell[e]} sum_{j=1..deg(c)-1}
//	      t(e,c) * (sum_{i<j} R_{c,v_i} - 1/2) * (Dv_{f_j}/Dc_e) * n(f_j,c) * u_{f_j}
//
// where f_j is the j-th edge counterclockwise from e around c, R are the
// kite fractions, n(f,c) = +1 if f's normal is outward of c, and
// t(e,c) = +1 if the CCW traversal of c crosses e along its tangent
// (true for c == EdgeCell[e][0]).
func (m *Mesh) computeTrskWeights() {
	ne := m.NEdges
	m.TrskOff = make([]int32, ne+1)
	// Count stencil sizes first: (deg(c0)-1) + (deg(c1)-1).
	for e := 0; e < ne; e++ {
		n := m.CellDegree(m.EdgeCell[e][0]) + m.CellDegree(m.EdgeCell[e][1]) - 2
		m.TrskOff[e+1] = m.TrskOff[e] + int32(n)
	}
	m.TrskEdge = make([]int32, m.TrskOff[ne])
	m.TrskWeight = make([]float64, m.TrskOff[ne])

	for e := int32(0); e < int32(ne); e++ {
		pos := m.TrskOff[e]
		for side := 0; side < 2; side++ {
			c := m.EdgeCell[e][side]
			tsign := 1.0
			if side == 1 {
				tsign = -1.0
			}
			base := m.CellOff[c]
			deg := m.CellDegree(c)
			// Locate e within the cell's CCW edge list.
			k0 := -1
			for k := 0; k < deg; k++ {
				if m.CellEdge[base+int32(k)] == e {
					k0 = k
					break
				}
			}
			if k0 < 0 {
				panic("mesh: edge not found in its cell's edge list")
			}
			accum := 0.0
			for j := 1; j < deg; j++ {
				accum += m.KiteFrac[base+int32((k0+j-1)%deg)]
				f := m.CellEdge[base+int32((k0+j)%deg)]
				nsign := float64(m.CellEdgeSign[base+int32((k0+j)%deg)])
				w := tsign * (0.5 - accum) * (m.DvEdge[f] / m.DcEdge[e]) * nsign
				m.TrskEdge[pos] = f
				m.TrskWeight[pos] = w
				pos++
			}
		}
	}
}

// TangentialVelocity reconstructs the tangential velocity at every edge
// from the edge-normal velocity field using the TRiSK stencil. dst and u
// must each have length NEdges; dst may alias a scratch buffer but not u.
func (m *Mesh) TangentialVelocity(dst, u []float64) {
	for e := 0; e < m.NEdges; e++ {
		var s float64
		for k := m.TrskOff[e]; k < m.TrskOff[e+1]; k++ {
			s += m.TrskWeight[k] * u[m.TrskEdge[k]]
		}
		dst[e] = s
	}
}
