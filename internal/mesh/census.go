package mesh

import "fmt"

// GridCensus holds the closed-form statistics of an icosahedral grid
// level, matching Table 2 of the paper.
type GridCensus struct {
	Label    string
	Level    int
	Cells    int64
	Edges    int64
	Verts    int64
	MinResKm float64 // minimum cell-center spacing
	MaxResKm float64 // maximum cell-center spacing
}

// Census returns the exact cell/edge/vertex counts of icosahedral level L:
// cells = 10*4^L + 2, edges = 30*4^L, vertices = 20*4^L. The resolution
// range is the min/max cell-center spacing; it is derived from the
// measured G6 extremes (the paper's 92.5–113 km) halved per level.
func Census(level int) GridCensus {
	p := int64(1) << (2 * uint(level)) // 4^level
	scale := 1.0
	if level >= 6 {
		scale = 1.0 / float64(int64(1)<<uint(level-6))
	} else {
		scale = float64(int64(1) << uint(6-level))
	}
	return GridCensus{
		Label:    fmt.Sprintf("G%d", level),
		Level:    level,
		Cells:    10*p + 2,
		Edges:    30 * p,
		Verts:    20 * p,
		MinResKm: 92.5 * scale,
		MaxResKm: 113.0 * scale,
	}
}

// TimestepConfig carries the sub-cycled timesteps (seconds) of a model
// configuration, per Table 2: dynamics, tracer transport, physics, and
// radiation.
type TimestepConfig struct {
	Dyn, Trac, Phy, Rad float64
}

// GridConfig is a named grid + timestep configuration from Table 2 of the
// paper.
type GridConfig struct {
	Label  string
	Level  int
	Layers int
	Steps  TimestepConfig
}

// Table2 returns the paper's Table 2 grid/timestep configurations. G11 has
// two entries: G11W shares the G12 timestep for weak scaling; G11S uses
// its largest stable timestep for strong scaling.
func Table2() []GridConfig {
	w := TimestepConfig{Dyn: 4, Trac: 30, Phy: 60, Rad: 180}
	return []GridConfig{
		{Label: "G12", Level: 12, Layers: 30, Steps: w},
		{Label: "G11W", Level: 11, Layers: 30, Steps: w},
		{Label: "G11S", Level: 11, Layers: 30, Steps: TimestepConfig{Dyn: 8, Trac: 60, Phy: 120, Rad: 360}},
		{Label: "G10", Level: 10, Layers: 30, Steps: w},
		{Label: "G9", Level: 9, Layers: 30, Steps: w},
		{Label: "G8", Level: 8, Layers: 30, Steps: w},
		{Label: "G6", Level: 6, Layers: 30, Steps: w},
	}
}

// ConfigByLabel returns the Table 2 configuration with the given label.
func ConfigByLabel(label string) (GridConfig, bool) {
	for _, c := range Table2() {
		if c.Label == label {
			return c, true
		}
	}
	return GridConfig{}, false
}
