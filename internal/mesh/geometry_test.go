package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randUnit(rng *rand.Rand) Vec3 {
	for {
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if n := v.Norm(); n > 1e-6 {
			return v.Scale(1 / n)
		}
	}
}

func TestVec3AlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randUnit(r), randUnit(r), randUnit(r)
		// Cross product antisymmetry and orthogonality.
		ab := a.Cross(b)
		ba := b.Cross(a)
		if ab.Add(ba).Norm() > 1e-12 {
			return false
		}
		if math.Abs(ab.Dot(a)) > 1e-12 || math.Abs(ab.Dot(b)) > 1e-12 {
			return false
		}
		// Scalar triple product is cyclic.
		t1 := a.Dot(b.Cross(c))
		t2 := b.Dot(c.Cross(a))
		if math.Abs(t1-t2) > 1e-12 {
			return false
		}
		// Lagrange identity: |a x b|^2 = |a|^2|b|^2 - (a.b)^2.
		lhs := ab.Dot(ab)
		rhs := 1 - math.Pow(a.Dot(b), 2)
		return math.Abs(lhs-rhs) < 1e-12
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLatLonRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lat := (r.Float64() - 0.5) * math.Pi * 0.999
		lon := (r.Float64() - 0.5) * 2 * math.Pi * 0.999
		p := FromLatLon(lat, lon)
		la, lo := p.LatLon()
		return math.Abs(la-lat) < 1e-12 && math.Abs(lo-lon) < 1e-12
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestArcLengthProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randUnit(r), randUnit(r), randUnit(r)
		dab := ArcLength(a, b)
		// Symmetry, bounds, identity.
		if math.Abs(dab-ArcLength(b, a)) > 1e-12 {
			return false
		}
		if dab < 0 || dab > math.Pi+1e-12 {
			return false
		}
		if ArcLength(a, a) > 1e-7 {
			return false
		}
		// Triangle inequality on the sphere.
		return ArcLength(a, c) <= dab+ArcLength(b, c)+1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSphericalTriangleAreaKnownValues(t *testing.T) {
	// Octant triangle: area = 4*pi/8 = pi/2.
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	c := Vec3{0, 0, 1}
	if got := SphericalTriangleArea(a, b, c); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("octant area = %v, want pi/2", got)
	}
	// Degenerate triangle has ~zero area.
	if got := SphericalTriangleArea(a, a, b); got > 1e-12 {
		t.Errorf("degenerate area = %v", got)
	}
}

func TestSphericalPolygonAreaMatchesTriangleSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// A convex spherical quad around the north pole.
	for trial := 0; trial < 20; trial++ {
		lat := 0.6 + 0.5*rng.Float64()
		pts := make([]Vec3, 4)
		for i := range pts {
			lon := float64(i)/4*2*math.Pi + 0.2*rng.Float64()
			pts[i] = FromLatLon(lat, lon)
		}
		quad := SphericalPolygonArea(pts)
		tris := SphericalTriangleArea(pts[0], pts[1], pts[2]) +
			SphericalTriangleArea(pts[0], pts[2], pts[3])
		if math.Abs(quad-tris) > 1e-9*(1+tris) {
			t.Fatalf("quad area %v != triangle sum %v", quad, tris)
		}
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Three nearby points (a well-conditioned spherical triangle).
		base := randUnit(r)
		perturb := func() Vec3 {
			return base.Add(Vec3{0.1 * r.NormFloat64(), 0.1 * r.NormFloat64(), 0.1 * r.NormFloat64()}).Normalize()
		}
		a, b, c := perturb(), perturb(), perturb()
		if a.Sub(b).Norm() < 1e-3 || b.Sub(c).Norm() < 1e-3 || a.Sub(c).Norm() < 1e-3 {
			return true // skip degenerate draws
		}
		cc := Circumcenter(a, b, c)
		da, db, dc := ArcLength(cc, a), ArcLength(cc, b), ArcLength(cc, c)
		return math.Abs(da-db) < 1e-9 && math.Abs(db-dc) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTangentBasisOrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randUnit(r)
		east, north := TangentBasis(p)
		up := p.Normalize()
		return math.Abs(east.Norm()-1) < 1e-12 &&
			math.Abs(north.Norm()-1) < 1e-12 &&
			math.Abs(east.Dot(north)) < 1e-12 &&
			math.Abs(east.Dot(up)) < 1e-12 &&
			math.Abs(north.Dot(up)) < 1e-12 &&
			// Right-handed: east x north = up.
			east.Cross(north).Sub(up).Norm() < 1e-12
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// Poles are well-defined too.
	for _, p := range []Vec3{{0, 0, 1}, {0, 0, -1}} {
		east, north := TangentBasis(p)
		if east.Norm() == 0 || north.Norm() == 0 {
			t.Error("degenerate basis at pole")
		}
	}
}

func TestMidpointBisects(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		a, b := randUnit(rng), randUnit(rng)
		if a.Add(b).Norm() < 1e-3 {
			continue // antipodal: midpoint ill-defined
		}
		m := Midpoint(a, b)
		if math.Abs(ArcLength(a, m)-ArcLength(m, b)) > 1e-9 {
			t.Fatalf("midpoint not equidistant")
		}
	}
}
