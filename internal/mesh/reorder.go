package mesh

// BFSOrder returns a breadth-first-search permutation of the cells
// starting from the given seed: perm[newIndex] = oldIndex. Renumbering
// cells in BFS order keeps topological neighbors close in memory, which
// raises cache hit rates for the indirectly-addressed kernels (§3.1.3 of
// the paper).
func (m *Mesh) BFSOrder(seed int32) []int32 {
	perm := make([]int32, 0, m.NCells)
	seen := make([]bool, m.NCells)
	queue := []int32{seed}
	seen[seed] = true
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		perm = append(perm, c)
		for _, nb := range m.CellCells(c) {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	// Disconnected cells (impossible on a sphere, but keep the
	// permutation total regardless).
	for c := int32(0); c < int32(m.NCells); c++ {
		if !seen[c] {
			perm = append(perm, c)
		}
	}
	return perm
}

// Reorder returns a new mesh with cells renumbered by the permutation
// perm (perm[new] = old), and edges and dual vertices renumbered by first
// touch from the new cell order. All connectivity, signs, kite fractions
// and TRiSK stencils are rebuilt in the new numbering.
func (m *Mesh) Reorder(perm []int32) *Mesh {
	if len(perm) != m.NCells {
		panic("mesh: permutation length does not match cell count")
	}
	cellNew := make([]int32, m.NCells) // old -> new
	for newID, oldID := range perm {
		cellNew[oldID] = int32(newID)
	}

	// First-touch renumbering for edges and vertices: walk cells in the
	// new order and number each edge/vertex when first encountered.
	edgeNew := make([]int32, m.NEdges)
	vertNew := make([]int32, m.NVerts)
	for i := range edgeNew {
		edgeNew[i] = -1
	}
	for i := range vertNew {
		vertNew[i] = -1
	}
	var ec, vc int32
	for _, oldCell := range perm {
		for _, e := range m.CellEdges(oldCell) {
			if edgeNew[e] < 0 {
				edgeNew[e] = ec
				ec++
			}
		}
		for _, v := range m.CellVerts(oldCell) {
			if vertNew[v] < 0 {
				vertNew[v] = vc
				vc++
			}
		}
	}

	r := &Mesh{
		Level:  m.Level,
		Radius: m.Radius,
		NCells: m.NCells, NEdges: m.NEdges, NVerts: m.NVerts,
		CellPos:  make([]Vec3, m.NCells),
		CellLat:  make([]float64, m.NCells),
		CellLon:  make([]float64, m.NCells),
		CellArea: make([]float64, m.NCells),

		CellOff:      make([]int32, m.NCells+1),
		CellEdge:     make([]int32, len(m.CellEdge)),
		CellCell:     make([]int32, len(m.CellCell)),
		CellVert:     make([]int32, len(m.CellVert)),
		CellEdgeSign: make([]int8, len(m.CellEdgeSign)),
		KiteFrac:     make([]float64, len(m.KiteFrac)),

		EdgeCell:    make([][2]int32, m.NEdges),
		EdgeVert:    make([][2]int32, m.NEdges),
		EdgePos:     make([]Vec3, m.NEdges),
		EdgeLat:     make([]float64, m.NEdges),
		EdgeNormal:  make([]Vec3, m.NEdges),
		EdgeTangent: make([]Vec3, m.NEdges),
		DcEdge:      make([]float64, m.NEdges),
		DvEdge:      make([]float64, m.NEdges),

		VertPos:      make([]Vec3, m.NVerts),
		VertArea:     make([]float64, m.NVerts),
		VertCell:     make([][3]int32, m.NVerts),
		VertEdge:     make([][3]int32, m.NVerts),
		VertEdgeSign: make([][3]int8, m.NVerts),

		TrskOff:    make([]int32, m.NEdges+1),
		TrskEdge:   make([]int32, len(m.TrskEdge)),
		TrskWeight: make([]float64, len(m.TrskWeight)),
	}

	// Cells.
	for newID, oldID := range perm {
		r.CellPos[newID] = m.CellPos[oldID]
		r.CellLat[newID] = m.CellLat[oldID]
		r.CellLon[newID] = m.CellLon[oldID]
		r.CellArea[newID] = m.CellArea[oldID]
		r.CellOff[newID+1] = int32(m.CellDegree(oldID))
	}
	for c := 0; c < m.NCells; c++ {
		r.CellOff[c+1] += r.CellOff[c]
	}
	for newID, oldID := range perm {
		src := m.CellOff[oldID]
		dst := r.CellOff[newID]
		deg := m.CellDegree(oldID)
		for k := 0; k < deg; k++ {
			r.CellEdge[dst+int32(k)] = edgeNew[m.CellEdge[src+int32(k)]]
			r.CellCell[dst+int32(k)] = cellNew[m.CellCell[src+int32(k)]]
			r.CellVert[dst+int32(k)] = vertNew[m.CellVert[src+int32(k)]]
			r.CellEdgeSign[dst+int32(k)] = m.CellEdgeSign[src+int32(k)]
			r.KiteFrac[dst+int32(k)] = m.KiteFrac[src+int32(k)]
		}
	}

	// Edges.
	for oldE := 0; oldE < m.NEdges; oldE++ {
		e := edgeNew[oldE]
		r.EdgeCell[e] = [2]int32{cellNew[m.EdgeCell[oldE][0]], cellNew[m.EdgeCell[oldE][1]]}
		r.EdgeVert[e] = [2]int32{vertNew[m.EdgeVert[oldE][0]], vertNew[m.EdgeVert[oldE][1]]}
		r.EdgePos[e] = m.EdgePos[oldE]
		r.EdgeLat[e] = m.EdgeLat[oldE]
		r.EdgeNormal[e] = m.EdgeNormal[oldE]
		r.EdgeTangent[e] = m.EdgeTangent[oldE]
		r.DcEdge[e] = m.DcEdge[oldE]
		r.DvEdge[e] = m.DvEdge[oldE]
	}

	// Dual vertices.
	for oldV := 0; oldV < m.NVerts; oldV++ {
		v := vertNew[oldV]
		r.VertPos[v] = m.VertPos[oldV]
		r.VertArea[v] = m.VertArea[oldV]
		for k := 0; k < 3; k++ {
			r.VertCell[v][k] = cellNew[m.VertCell[oldV][k]]
			r.VertEdge[v][k] = edgeNew[m.VertEdge[oldV][k]]
			r.VertEdgeSign[v][k] = m.VertEdgeSign[oldV][k]
		}
	}

	// TRiSK stencil, regrouped by the new edge numbering.
	for oldE := 0; oldE < m.NEdges; oldE++ {
		r.TrskOff[edgeNew[oldE]+1] = m.TrskOff[oldE+1] - m.TrskOff[oldE]
	}
	for e := 0; e < m.NEdges; e++ {
		r.TrskOff[e+1] += r.TrskOff[e]
	}
	for oldE := 0; oldE < m.NEdges; oldE++ {
		dst := r.TrskOff[edgeNew[oldE]]
		for k := m.TrskOff[oldE]; k < m.TrskOff[oldE+1]; k++ {
			r.TrskEdge[dst] = edgeNew[m.TrskEdge[k]]
			r.TrskWeight[dst] = m.TrskWeight[k]
			dst++
		}
	}
	return r
}

// ReorderBFS is shorthand for Reorder(BFSOrder(0)).
func (m *Mesh) ReorderBFS() *Mesh { return m.Reorder(m.BFSOrder(0)) }
