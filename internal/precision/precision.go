// Package precision provides the mixed-precision machinery of §3.4: a
// switchable working precision for the precision-insensitive terms of the
// dynamical core (the paper's custom Fortran kind "ns"), the relative L2
// deviation metric used to gauge precision loss, and the ps/vor
// sensitivity harness with its 5% acceptance threshold.
package precision

import "math"

// Real is the switchable solver precision: instantiating a kernel with
// float32 reproduces the paper's lowered-precision ("ns") build, float64
// the reference build. Precision-sensitive terms (pressure gradient,
// gravity, accumulated mass fluxes) stay float64 regardless.
type Real interface {
	~float32 | ~float64
}

// Mode names a dynamical-core precision configuration (Table 3).
type Mode int

const (
	// DP runs the entire dynamical core in double precision.
	DP Mode = iota
	// Mixed demotes precision-insensitive terms to single precision
	// while keeping pressure-gradient/gravity terms and accumulated mass
	// fluxes in double precision.
	Mixed
)

func (m Mode) String() string {
	if m == Mixed {
		return "MIX"
	}
	return "DP"
}

// WordBytes returns the dominant word size moved by memory-bound kernels
// under the mode: 8 for DP, 4 for Mixed.
func (m Mode) WordBytes() int {
	if m == Mixed {
		return 4
	}
	return 8
}

// ErrorThreshold is the paper's acceptance threshold for the relative L2
// deviation of the mixed-precision dynamical core from the
// double-precision gold standard (§3.4.1).
const ErrorThreshold = 0.05

// RelL2 returns the relative L2 norm of (got - want):
// ||got-want||_2 / ||want||_2. A zero reference with a nonzero deviation
// returns +Inf; two zero fields return 0.
func RelL2(got, want []float64) float64 {
	if len(got) != len(want) {
		panic("precision: RelL2 length mismatch")
	}
	var num, den float64
	for i := range want {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}

// Deviation reports the ps/vor observation-point deviations of a
// candidate run against the double-precision gold standard (§3.4.1):
// surface pressure tracks the mass field, relative vorticity the
// regional dynamics.
type Deviation struct {
	Ps  float64 // relative L2 of surface pressure
	Vor float64 // relative L2 of relative vorticity
}

// Acceptable reports whether both observation points are within the 5%
// threshold.
func (d Deviation) Acceptable() bool {
	return d.Ps <= ErrorThreshold && d.Vor <= ErrorThreshold
}

// Measure computes the Deviation of candidate (ps, vor) fields against
// the reference.
func Measure(psGot, psWant, vorGot, vorWant []float64) Deviation {
	return Deviation{Ps: RelL2(psGot, psWant), Vor: RelL2(vorGot, vorWant)}
}

// Round32 converts a float64 through float32, modelling the storage
// rounding a demoted variable undergoes.
func Round32(x float64) float64 { return float64(float32(x)) }

// Round32Slice rounds a whole field through float32 in place, as happens
// when the solver converts initialization output to its working
// precision (§3.4.3).
func Round32Slice(xs []float64) {
	for i, x := range xs {
		xs[i] = float64(float32(x))
	}
}
