package precision

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRelL2Basics(t *testing.T) {
	if got := RelL2([]float64{1, 1}, []float64{1, 1}); got != 0 {
		t.Errorf("identical fields: %v", got)
	}
	if got := RelL2([]float64{2, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-15 {
		t.Errorf("got %v want 1", got)
	}
	if got := RelL2([]float64{1}, []float64{0}); !math.IsInf(got, 1) {
		t.Errorf("zero reference: %v", got)
	}
	if got := RelL2([]float64{0}, []float64{0}); got != 0 {
		t.Errorf("both zero: %v", got)
	}
}

func TestRelL2ScaleInvariance(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Clamp magnitudes to avoid overflow in squares.
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		if b == 0 {
			return true
		}
		got := []float64{a + b, 2 * b}
		want := []float64{b, 2 * b}
		r1 := RelL2(got, want)
		// Scaling both fields by 7 must not change the relative norm.
		got7 := []float64{7 * (a + b), 14 * b}
		want7 := []float64{7 * b, 14 * b}
		r2 := RelL2(got7, want7)
		return math.Abs(r1-r2) <= 1e-12*(1+r1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeviationThreshold(t *testing.T) {
	d := Deviation{Ps: 0.049, Vor: 0.049}
	if !d.Acceptable() {
		t.Error("deviation under threshold rejected")
	}
	d = Deviation{Ps: 0.051, Vor: 0.01}
	if d.Acceptable() {
		t.Error("ps over threshold accepted")
	}
	d = Deviation{Ps: 0.01, Vor: 0.06}
	if d.Acceptable() {
		t.Error("vor over threshold accepted")
	}
}

func TestModeWordBytes(t *testing.T) {
	if DP.WordBytes() != 8 || Mixed.WordBytes() != 4 {
		t.Error("word sizes wrong")
	}
	if DP.String() != "DP" || Mixed.String() != "MIX" {
		t.Error("mode names wrong")
	}
}

func TestRound32IntroducesBoundedError(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 1e30 || x == 0 {
			return true
		}
		r := Round32(x)
		// float32 has ~7 decimal digits: relative error < 2^-23 ~ 1.2e-7.
		return math.Abs(r-x)/math.Abs(x) < 1.2e-7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRound32SliceMatchesScalar(t *testing.T) {
	xs := []float64{1.0000001, math.Pi, -2.718281828459045, 1e-20}
	ys := append([]float64(nil), xs...)
	Round32Slice(ys)
	for i := range xs {
		if ys[i] != Round32(xs[i]) {
			t.Errorf("index %d: %v != %v", i, ys[i], Round32(xs[i]))
		}
	}
}

func TestMeasure(t *testing.T) {
	ps := []float64{1000, 1010}
	vor := []float64{1e-5, -2e-5}
	d := Measure(ps, ps, vor, vor)
	if d.Ps != 0 || d.Vor != 0 {
		t.Errorf("self-measure nonzero: %+v", d)
	}
}
