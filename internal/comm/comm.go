// Package comm provides the message-passing runtime of the model: an
// MPI-like world of SPMD ranks (goroutines in this in-process
// reproduction), point-to-point sends/receives, collectives, and the
// paper's parallelization facilitation layer — halo exchange in which all
// registered variables are gathered through a linked list and exchanged
// with a single call per peer (§3.1.3).
package comm

import (
	"fmt"
	"sync"
)

// message is a tagged payload between two ranks.
type message struct {
	tag  int
	data []float64
}

// World is a communicator connecting n SPMD ranks.
type World struct {
	n     int
	boxes [][]chan message // boxes[to][from]

	barrier *barrier

	reduceMu  sync.Mutex
	reduceBuf []float64
	reduceN   int
	reduceGen int
	reduceC   *sync.Cond
}

// NewWorld creates a communicator for n ranks.
func NewWorld(n int) *World {
	w := &World{n: n, boxes: make([][]chan message, n), barrier: newBarrier(n)}
	for to := 0; to < n; to++ {
		w.boxes[to] = make([]chan message, n)
		for from := 0; from < n; from++ {
			w.boxes[to][from] = make(chan message, 16)
		}
	}
	w.reduceC = sync.NewCond(&w.reduceMu)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Run executes body once per rank, concurrently, and waits for all ranks
// to return.
func Run(n int, body func(r *Rank)) {
	w := NewWorld(n)
	var wg sync.WaitGroup
	wg.Add(n)
	for id := 0; id < n; id++ {
		go func(id int) {
			defer wg.Done()
			body(&Rank{id: id, w: w})
		}(id)
	}
	wg.Wait()
}

// Rank is one SPMD process within a World.
type Rank struct {
	id int
	w  *World
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.n }

// Send delivers data to the destination rank under the given tag. The
// slice is handed over; the caller must not modify it afterwards.
func (r *Rank) Send(to, tag int, data []float64) {
	r.w.boxes[to][r.id] <- message{tag: tag, data: data}
}

// Recv receives the next message from the source rank and checks its tag.
// Our exchange protocols are deterministic, so a tag mismatch is a
// program error and panics.
func (r *Rank) Recv(from, tag int) []float64 {
	m := <-r.w.boxes[r.id][from]
	if m.tag != tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d", r.id, tag, from, m.tag))
	}
	return m.data
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() { r.w.barrier.await() }

// barrier is a reusable n-party barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// AllReduceSum sums x element-wise across all ranks; every rank receives
// the same result (a new slice).
func (r *Rank) AllReduceSum(x []float64) []float64 {
	w := r.w
	w.reduceMu.Lock()
	if w.reduceBuf == nil {
		w.reduceBuf = make([]float64, len(x))
	}
	if len(w.reduceBuf) != len(x) {
		panic("comm: AllReduceSum length mismatch across ranks")
	}
	for i, v := range x {
		w.reduceBuf[i] += v
	}
	w.reduceN++
	gen := w.reduceGen
	if w.reduceN == w.n {
		w.reduceGen++
		w.reduceC.Broadcast()
	} else {
		for gen == w.reduceGen {
			w.reduceC.Wait()
		}
	}
	out := make([]float64, len(x))
	copy(out, w.reduceBuf)
	w.reduceN--
	if w.reduceN == 0 {
		w.reduceBuf = nil
	}
	w.reduceMu.Unlock()
	// Keep ranks in lockstep so the next reduction cannot overlap.
	r.Barrier()
	return out
}

// AllReduceMax returns the maximum of v across all ranks.
func (r *Rank) AllReduceMax(v float64) float64 {
	// Two-phase: gather to rank 0, broadcast the result.
	const tag = -7771
	if r.id == 0 {
		m := v
		for src := 1; src < r.w.n; src++ {
			x := r.Recv(src, tag)
			if x[0] > m {
				m = x[0]
			}
		}
		for dst := 1; dst < r.w.n; dst++ {
			r.Send(dst, tag, []float64{m})
		}
		return m
	}
	r.Send(0, tag, []float64{v})
	return r.Recv(0, tag)[0]
}
