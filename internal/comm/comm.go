// Package comm provides the message-passing runtime of the model: an
// MPI-like world of SPMD ranks (goroutines in this in-process
// reproduction), point-to-point sends/receives, collectives, and the
// paper's parallelization facilitation layer — halo exchange in which all
// registered variables are gathered through a linked list and exchanged
// with a single call per peer (§3.1.3).
//
// The transport moves raw bytes: word size is a property of the packer
// (the halo layer ships FP32 payloads for precision-insensitive fields
// under the Mixed mode), not of the channel. Payload buffers are owned
// by the transport — a send copies the caller's data into a recycled
// per-channel buffer, so callers may reuse their pack buffers
// immediately — and recycled buffers make the steady state of a
// repeated exchange allocation-free.
package comm

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"
)

// message is a tagged payload between two ranks. data is transport-owned
// and returns to the channel's free list once the receiver copies it out.
type message struct {
	tag  int
	data []byte
}

// World is a communicator connecting n SPMD ranks.
type World struct {
	n     int
	boxes [][]chan message // boxes[to][from]
	free  [][]chan []byte  // recycled payload buffers per (to, from)

	inj Injector // nil outside fault-injection runs

	barrier *barrier

	reduceMu  sync.Mutex
	reduceBuf []float64
	reduceN   int
	reduceGen int
	reduceC   *sync.Cond
}

// Injector intercepts every delivery attempt of a World for seeded,
// deterministic fault injection (see internal/fault). OnSend may mutate
// data in place (bit-flip corruption), delay the sender (the returned
// duration is slept before delivery, preserving per-channel FIFO order),
// or drop the attempt. A dropped attempt models a lossy link, not a
// guaranteed loss: the transport retries with bounded exponential
// backoff and only discards the message after maxSendAttempts drops.
// Implementations must be safe for concurrent use by all ranks.
type Injector interface {
	OnSend(from, to, tag, attempt int, data []byte) (drop bool, delay time.Duration)
}

// SetInjector installs (or, with nil, removes) the world's fault
// injector. Call before the ranks start communicating; the delivery path
// reads the field without synchronization.
func (w *World) SetInjector(inj Injector) { w.inj = inj }

// Delivery-retry policy for messages an injector reports as dropped:
// the first redelivery waits retryBackoffBase and each further one
// doubles it up to retryBackoffCap; after maxSendAttempts verdicts the
// message is discarded for good.
const (
	maxSendAttempts  = 7
	retryBackoffBase = 50 * time.Microsecond
	retryBackoffCap  = 5 * time.Millisecond
)

// post delivers a transport-owned buffer to boxes[to][from], consulting
// the injector when one is installed. The buffer of a message lost after
// all retries is recycled. Blocking the sender in-line for delays and
// retries keeps each (to, from) channel strictly FIFO, which the
// tag-matched Wait protocol requires.
func (w *World) post(to, from, tag int, buf []byte) {
	if w.inj != nil && !w.admit(to, from, tag, buf) {
		w.putBuf(to, from, buf)
		return
	}
	w.boxes[to][from] <- message{tag: tag, data: buf}
}

// admit runs the injector's verdicts for one message, sleeping through
// injected delays and retry backoff. Returns false when every attempt
// was dropped and the message is lost.
func (w *World) admit(to, from, tag int, buf []byte) bool {
	backoff := retryBackoffBase
	for attempt := 0; attempt < maxSendAttempts; attempt++ {
		drop, delay := w.inj.OnSend(from, to, tag, attempt, buf)
		if delay > 0 {
			time.Sleep(delay)
		}
		if !drop {
			return true
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > retryBackoffCap {
			backoff = retryBackoffCap
		}
	}
	return false
}

// NewWorld creates a communicator for n ranks.
func NewWorld(n int) *World {
	w := &World{n: n, boxes: make([][]chan message, n), free: make([][]chan []byte, n), barrier: newBarrier(n)}
	for to := 0; to < n; to++ {
		w.boxes[to] = make([]chan message, n)
		w.free[to] = make([]chan []byte, n)
		for from := 0; from < n; from++ {
			w.boxes[to][from] = make(chan message, 16)
			w.free[to][from] = make(chan []byte, 16)
		}
	}
	w.reduceC = sync.NewCond(&w.reduceMu)
	return w
}

// getBuf returns a transport-owned buffer of length n for the (to, from)
// channel, recycling a previously delivered one when possible. Message
// sizes on a channel are stable across exchange rounds, so the steady
// state allocates nothing.
func (w *World) getBuf(to, from, n int) []byte {
	select {
	case buf := <-w.free[to][from]:
		if cap(buf) >= n {
			return buf[:n]
		}
	default:
	}
	//lint:ignore hotpathalloc cold start and size-growth only; recycled via putBuf every steady-state round
	return make([]byte, n)
}

// putBuf returns a delivered buffer to its channel's free list (dropped
// if the list is full).
func (w *World) putBuf(to, from int, buf []byte) {
	select {
	case w.free[to][from] <- buf:
	default:
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Run executes body once per rank, concurrently, and waits for all ranks
// to return.
func Run(n int, body func(r *Rank)) {
	RunOn(NewWorld(n), body)
}

// RunOn executes body once per rank of an existing world, concurrently,
// and waits for all ranks to return. Use it when the world needs
// pre-run configuration (SetInjector) that must be in place before the
// first message. Each rank goroutine carries a pprof label
// (grist_rank), so CPU profiles of a distributed run segment by rank —
// the profiler-side counterpart of the flight recorder's per-rank span
// attribution.
func RunOn(w *World, body func(r *Rank)) {
	var wg sync.WaitGroup
	wg.Add(w.n)
	for id := 0; id < w.n; id++ {
		go func(id int) {
			defer wg.Done()
			labels := pprof.Labels("grist_rank", strconv.Itoa(id), "grist_phase", "distributed_run")
			pprof.Do(context.Background(), labels, func(context.Context) {
				body(&Rank{id: id, w: w})
			})
		}(id)
	}
	wg.Wait()
}

// Rank is one SPMD process within a World.
type Rank struct {
	id int
	w  *World
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.n }

// Request is the handle of a nonblocking operation. Sends complete at
// post time (the payload is copied into a transport-owned buffer);
// receives complete in Wait, which drains the channel and copies the
// payload into the destination buffer.
type Request struct {
	rank    *Rank
	from    int
	tag     int
	dst     []byte
	pending bool
}

// ISend posts data to the destination rank under the given tag. The
// payload is copied into a transport-owned buffer before the call
// returns, so the caller keeps ownership of data and may overwrite it
// immediately (no aliasing with in-flight messages). The returned
// request is already complete.
//
//grist:hotpath
func (r *Rank) ISend(to, tag int, data []byte) Request {
	buf := r.w.getBuf(to, r.id, len(data))
	copy(buf, data)
	r.w.post(to, r.id, tag, buf)
	return Request{}
}

// IRecv posts a receive of the next message from the source rank into
// dst. The matching message may arrive (and sit buffered in the channel)
// while the caller computes; Wait completes the transfer. dst must be
// exactly the message length.
func (r *Rank) IRecv(from, tag int, dst []byte) Request {
	return Request{rank: r, from: from, tag: tag, dst: dst, pending: true}
}

// Wait completes the request. Our exchange protocols are deterministic,
// so a tag or size mismatch is a program error and panics.
func (q *Request) Wait() {
	if !q.pending {
		return
	}
	r := q.rank
	q.complete(<-r.w.boxes[r.id][q.from])
}

// complete validates a delivered message against the posted receive and
// copies the payload out, returning the transport buffer to the free
// list.
func (q *Request) complete(m message) {
	r := q.rank
	if m.tag != q.tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d", r.id, q.tag, q.from, m.tag))
	}
	if len(m.data) != len(q.dst) {
		panic(fmt.Sprintf("comm: rank %d expected %d bytes from %d, got %d", r.id, len(q.dst), q.from, len(m.data)))
	}
	copy(q.dst, m.data)
	r.w.putBuf(r.id, q.from, m.data)
	q.pending = false
}

// WaitAll completes every request in the slice.
func (r *Rank) WaitAll(reqs []Request) {
	for i := range reqs {
		reqs[i].Wait()
	}
}

// Send delivers float64 data to the destination rank under the given
// tag. The data is copied into a transport-owned buffer; the caller
// keeps ownership of the slice.
func (r *Rank) Send(to, tag int, data []float64) {
	buf := r.w.getBuf(to, r.id, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	r.w.post(to, r.id, tag, buf)
}

// Recv receives the next message from the source rank, checks its tag,
// and returns a fresh float64 decode of the payload.
func (r *Rank) Recv(from, tag int) []float64 {
	m := <-r.w.boxes[r.id][from]
	if m.tag != tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d", r.id, tag, from, m.tag))
	}
	out := make([]float64, len(m.data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(m.data[8*i:]))
	}
	r.w.putBuf(r.id, from, m.data)
	return out
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() { r.w.barrier.await(r.id, 0) }

// BarrierTimeout enters the barrier but gives up after d, returning a
// *TimeoutError naming the ranks that had arrived and the ranks still
// missing — the diagnostic a hung collective needs instead of a
// deadlocked binary. A nil return means the barrier completed normally.
func (r *Rank) BarrierTimeout(d time.Duration) error {
	if err := r.w.barrier.await(r.id, d); err != nil {
		return err // typed-nil guard: only wrap a real timeout in the interface
	}
	return nil
}

// barrier is a reusable n-party barrier that tracks which ranks have
// arrived in the current generation, so a timed-out waiter can report
// exactly who is missing.
type barrier struct {
	mu      sync.Mutex
	n       int
	count   int
	arrived []bool
	done    chan struct{} // closed when the current generation completes
}

func newBarrier(n int) *barrier {
	return &barrier{n: n, arrived: make([]bool, n), done: make(chan struct{})}
}

// await enters the barrier as rank id. With d <= 0 it blocks until the
// generation completes; otherwise it gives up after d and returns a
// timeout error snapshotting the arrival set. A rank that timed out has
// still arrived: if the stragglers eventually show up the generation
// completes without it.
func (b *barrier) await(id int, d time.Duration) *TimeoutError {
	b.mu.Lock()
	b.arrived[id] = true
	b.count++
	if b.count == b.n {
		b.count = 0
		for i := range b.arrived {
			b.arrived[i] = false
		}
		close(b.done)
		b.done = make(chan struct{})
		b.mu.Unlock()
		return nil
	}
	done := b.done
	b.mu.Unlock()
	if d <= 0 {
		<-done
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return nil
	case <-t.C:
	}
	// Timed out: re-check under the lock (the generation may have
	// completed while the timer fired) and snapshot the arrival set.
	select {
	case <-done:
		return nil
	default:
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if done != b.done {
		return nil // generation completed between the timer and the lock
	}
	err := &TimeoutError{Op: "barrier", Rank: id, Wait: d}
	for i, a := range b.arrived {
		if a {
			err.Arrived = append(err.Arrived, i)
		} else {
			err.Missing = append(err.Missing, i)
		}
	}
	return err
}

// AllReduceSum sums x element-wise across all ranks; every rank receives
// the same result (a new slice).
func (r *Rank) AllReduceSum(x []float64) []float64 {
	w := r.w
	w.reduceMu.Lock()
	if w.reduceBuf == nil {
		w.reduceBuf = make([]float64, len(x))
	}
	if len(w.reduceBuf) != len(x) {
		panic("comm: AllReduceSum length mismatch across ranks")
	}
	for i, v := range x {
		w.reduceBuf[i] += v
	}
	w.reduceN++
	gen := w.reduceGen
	if w.reduceN == w.n {
		w.reduceGen++
		w.reduceC.Broadcast()
	} else {
		for gen == w.reduceGen {
			w.reduceC.Wait()
		}
	}
	out := make([]float64, len(x))
	copy(out, w.reduceBuf)
	w.reduceN--
	if w.reduceN == 0 {
		w.reduceBuf = nil
	}
	w.reduceMu.Unlock()
	// Keep ranks in lockstep so the next reduction cannot overlap.
	r.Barrier()
	return out
}

// AllReduceMax returns the maximum of v across all ranks.
func (r *Rank) AllReduceMax(v float64) float64 {
	// Two-phase: gather to rank 0, broadcast the result.
	const tag = -7771
	if r.id == 0 {
		m := v
		for src := 1; src < r.w.n; src++ {
			x := r.Recv(src, tag)
			if x[0] > m {
				m = x[0]
			}
		}
		for dst := 1; dst < r.w.n; dst++ {
			r.Send(dst, tag, []float64{m})
		}
		return m
	}
	r.Send(0, tag, []float64{v})
	return r.Recv(0, tag)[0]
}
