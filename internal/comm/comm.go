// Package comm provides the message-passing runtime of the model: an
// MPI-like world of SPMD ranks (goroutines in this in-process
// reproduction), point-to-point sends/receives, collectives, and the
// paper's parallelization facilitation layer — halo exchange in which all
// registered variables are gathered through a linked list and exchanged
// with a single call per peer (§3.1.3).
//
// The transport moves raw bytes: word size is a property of the packer
// (the halo layer ships FP32 payloads for precision-insensitive fields
// under the Mixed mode), not of the channel. Payload buffers are owned
// by the transport — a send copies the caller's data into a recycled
// per-channel buffer, so callers may reuse their pack buffers
// immediately — and recycled buffers make the steady state of a
// repeated exchange allocation-free.
package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// message is a tagged payload between two ranks. data is transport-owned
// and returns to the channel's free list once the receiver copies it out.
type message struct {
	tag  int
	data []byte
}

// World is a communicator connecting n SPMD ranks.
type World struct {
	n     int
	boxes [][]chan message // boxes[to][from]
	free  [][]chan []byte  // recycled payload buffers per (to, from)

	barrier *barrier

	reduceMu  sync.Mutex
	reduceBuf []float64
	reduceN   int
	reduceGen int
	reduceC   *sync.Cond
}

// NewWorld creates a communicator for n ranks.
func NewWorld(n int) *World {
	w := &World{n: n, boxes: make([][]chan message, n), free: make([][]chan []byte, n), barrier: newBarrier(n)}
	for to := 0; to < n; to++ {
		w.boxes[to] = make([]chan message, n)
		w.free[to] = make([]chan []byte, n)
		for from := 0; from < n; from++ {
			w.boxes[to][from] = make(chan message, 16)
			w.free[to][from] = make(chan []byte, 16)
		}
	}
	w.reduceC = sync.NewCond(&w.reduceMu)
	return w
}

// getBuf returns a transport-owned buffer of length n for the (to, from)
// channel, recycling a previously delivered one when possible. Message
// sizes on a channel are stable across exchange rounds, so the steady
// state allocates nothing.
func (w *World) getBuf(to, from, n int) []byte {
	select {
	case buf := <-w.free[to][from]:
		if cap(buf) >= n {
			return buf[:n]
		}
	default:
	}
	//lint:ignore hotpathalloc cold start and size-growth only; recycled via putBuf every steady-state round
	return make([]byte, n)
}

// putBuf returns a delivered buffer to its channel's free list (dropped
// if the list is full).
func (w *World) putBuf(to, from int, buf []byte) {
	select {
	case w.free[to][from] <- buf:
	default:
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Run executes body once per rank, concurrently, and waits for all ranks
// to return.
func Run(n int, body func(r *Rank)) {
	w := NewWorld(n)
	var wg sync.WaitGroup
	wg.Add(n)
	for id := 0; id < n; id++ {
		go func(id int) {
			defer wg.Done()
			body(&Rank{id: id, w: w})
		}(id)
	}
	wg.Wait()
}

// Rank is one SPMD process within a World.
type Rank struct {
	id int
	w  *World
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.n }

// Request is the handle of a nonblocking operation. Sends complete at
// post time (the payload is copied into a transport-owned buffer);
// receives complete in Wait, which drains the channel and copies the
// payload into the destination buffer.
type Request struct {
	rank    *Rank
	from    int
	tag     int
	dst     []byte
	pending bool
}

// ISend posts data to the destination rank under the given tag. The
// payload is copied into a transport-owned buffer before the call
// returns, so the caller keeps ownership of data and may overwrite it
// immediately (no aliasing with in-flight messages). The returned
// request is already complete.
//
//grist:hotpath
func (r *Rank) ISend(to, tag int, data []byte) Request {
	buf := r.w.getBuf(to, r.id, len(data))
	copy(buf, data)
	r.w.boxes[to][r.id] <- message{tag: tag, data: buf}
	return Request{}
}

// IRecv posts a receive of the next message from the source rank into
// dst. The matching message may arrive (and sit buffered in the channel)
// while the caller computes; Wait completes the transfer. dst must be
// exactly the message length.
func (r *Rank) IRecv(from, tag int, dst []byte) Request {
	return Request{rank: r, from: from, tag: tag, dst: dst, pending: true}
}

// Wait completes the request. Our exchange protocols are deterministic,
// so a tag or size mismatch is a program error and panics.
func (q *Request) Wait() {
	if !q.pending {
		return
	}
	r := q.rank
	m := <-r.w.boxes[r.id][q.from]
	if m.tag != q.tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d", r.id, q.tag, q.from, m.tag))
	}
	if len(m.data) != len(q.dst) {
		panic(fmt.Sprintf("comm: rank %d expected %d bytes from %d, got %d", r.id, len(q.dst), q.from, len(m.data)))
	}
	copy(q.dst, m.data)
	r.w.putBuf(r.id, q.from, m.data)
	q.pending = false
}

// WaitAll completes every request in the slice.
func (r *Rank) WaitAll(reqs []Request) {
	for i := range reqs {
		reqs[i].Wait()
	}
}

// Send delivers float64 data to the destination rank under the given
// tag. The data is copied into a transport-owned buffer; the caller
// keeps ownership of the slice.
func (r *Rank) Send(to, tag int, data []float64) {
	buf := r.w.getBuf(to, r.id, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	r.w.boxes[to][r.id] <- message{tag: tag, data: buf}
}

// Recv receives the next message from the source rank, checks its tag,
// and returns a fresh float64 decode of the payload.
func (r *Rank) Recv(from, tag int) []float64 {
	m := <-r.w.boxes[r.id][from]
	if m.tag != tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d", r.id, tag, from, m.tag))
	}
	out := make([]float64, len(m.data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(m.data[8*i:]))
	}
	r.w.putBuf(r.id, from, m.data)
	return out
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() { r.w.barrier.await() }

// barrier is a reusable n-party barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// AllReduceSum sums x element-wise across all ranks; every rank receives
// the same result (a new slice).
func (r *Rank) AllReduceSum(x []float64) []float64 {
	w := r.w
	w.reduceMu.Lock()
	if w.reduceBuf == nil {
		w.reduceBuf = make([]float64, len(x))
	}
	if len(w.reduceBuf) != len(x) {
		panic("comm: AllReduceSum length mismatch across ranks")
	}
	for i, v := range x {
		w.reduceBuf[i] += v
	}
	w.reduceN++
	gen := w.reduceGen
	if w.reduceN == w.n {
		w.reduceGen++
		w.reduceC.Broadcast()
	} else {
		for gen == w.reduceGen {
			w.reduceC.Wait()
		}
	}
	out := make([]float64, len(x))
	copy(out, w.reduceBuf)
	w.reduceN--
	if w.reduceN == 0 {
		w.reduceBuf = nil
	}
	w.reduceMu.Unlock()
	// Keep ranks in lockstep so the next reduction cannot overlap.
	r.Barrier()
	return out
}

// AllReduceMax returns the maximum of v across all ranks.
func (r *Rank) AllReduceMax(v float64) float64 {
	// Two-phase: gather to rank 0, broadcast the result.
	const tag = -7771
	if r.id == 0 {
		m := v
		for src := 1; src < r.w.n; src++ {
			x := r.Recv(src, tag)
			if x[0] > m {
				m = x[0]
			}
		}
		for dst := 1; dst < r.w.n; dst++ {
			r.Send(dst, tag, []float64{m})
		}
		return m
	}
	r.Send(0, tag, []float64{v})
	return r.Recv(0, tag)[0]
}
