package comm

import (
	"sort"
	"testing"

	"gristgo/internal/mesh"
	"gristgo/internal/partition"
	"gristgo/internal/precision"
)

// cellLayout builds rank p's single-set halo layout from a decomposition
// with global cell ids as the entity indices (the elastic runners'
// convention: fields are full-mesh arrays, so no local renumbering is
// needed when the decomposition changes).
func cellLayout(d *partition.Decomposition, p int) *Layout {
	var peers []int
	for q := range d.Peers[p] {
		peers = append(peers, int(q))
	}
	sort.Ints(peers)
	set := IndexSet{Send: make([][]int32, len(peers)), Recv: make([][]int32, len(peers))}
	for i, q := range peers {
		set.Recv[i] = d.Peers[p][int32(q)]
		set.Send[i] = d.Peers[q][int32(p)]
	}
	return &Layout{Peers: peers, Sets: []IndexSet{set}}
}

// TestSwapLayoutRebindsDecomposition drives one exchanger through two
// decomposition epochs: rounds under the epoch-0 layout must mirror the
// epoch-0 owners, and after SwapLayout (new peers, new index sets, same
// registered field) rounds must mirror the epoch-1 owners — without
// rebuilding the exchanger or re-registering anything.
func TestSwapLayoutRebindsDecomposition(t *testing.T) {
	m := mesh.New(3)
	const nparts, nlev = 3, 2
	e, err := partition.NewElastic(m, 11, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	d0 := e.Decomposition()
	d1, err := e.Resize([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}

	check := func(r *Rank, d *partition.Decomposition, q []float64, round int) {
		t.Helper()
		p := r.ID()
		for _, h := range d.Halo[p] {
			owner := d.Part[h]
			for k := 0; k < nlev; k++ {
				want := float64(h)*100 + float64(owner)*10 + float64(k) + float64(round)
				if got := q[int(h)*nlev+k]; got != want {
					t.Errorf("rank %d epoch %d: halo cell %d lev %d = %v, want %v", p, d.Epoch, h, k, got, want)
					return
				}
			}
		}
	}
	fill := func(d *partition.Decomposition, p int, q []float64, round int) {
		for _, c := range d.Owned[p] {
			for k := 0; k < nlev; k++ {
				q[int(c)*nlev+k] = float64(c)*100 + float64(p)*10 + float64(k) + float64(round)
			}
		}
	}

	Run(nparts, func(r *Rank) {
		p := r.ID()
		q := make([]float64, m.NCells*nlev)
		ex := NewExchangerWithLayout(r, precision.DP, cellLayout(d0, p))
		ex.RegisterSlice("q", q, nlev, 0, true)

		for round := 0; round < 2; round++ {
			fill(d0, p, q, round)
			ex.Exchange()
			check(r, d0, q, round)
		}

		// Epoch switch: every rank swaps between rounds, then the same
		// field exchanges under the new ownership.
		ex.SwapLayout(cellLayout(d1, p))
		for round := 2; round < 4; round++ {
			fill(d1, p, q, round)
			ex.Start()
			ex.Finish()
			check(r, d1, q, round)
		}
		if st := ex.Stats(); st.Rounds != 4 {
			t.Errorf("rank %d: %d rounds survived the swap, want 4", p, st.Rounds)
		}
	})
}

// TestSwapLayoutGuards: swapping mid-round or with a different set count
// is a programming error and must panic before corrupting a round.
func TestSwapLayoutGuards(t *testing.T) {
	m := mesh.New(2)
	d := partition.MustDecompose(m, 2, 1)
	Run(2, func(r *Rank) {
		p := r.ID()
		q := make([]float64, m.NCells)
		l := cellLayout(d, p)
		ex := NewExchangerWithLayout(r, precision.DP, l)
		ex.RegisterSlice("q", q, 1, 0, true)

		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rank %d: set-count mismatch did not panic", p)
				}
			}()
			ex.SwapLayout(&Layout{Peers: l.Peers, Sets: append(l.Sets, l.Sets[0])})
		}()

		ex.Start()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rank %d: in-flight swap did not panic", p)
				}
			}()
			ex.SwapLayout(l)
		}()
		ex.Finish()
	})
}
