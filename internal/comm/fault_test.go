package comm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gristgo/internal/fault"
	"gristgo/internal/mesh"
	"gristgo/internal/partition"
)

// BarrierTimeout on a barrier a rank never enters must report exactly
// which ranks arrived and which are missing, instead of hanging.
func TestBarrierTimeoutReportsMissing(t *testing.T) {
	w := NewWorld(3)
	var mu sync.Mutex
	var errs []error
	RunOn(w, func(r *Rank) {
		if r.ID() == 2 {
			return // the dead rank
		}
		err := r.BarrierTimeout(30 * time.Millisecond)
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	})
	if len(errs) != 2 {
		t.Fatalf("got %d results, want 2", len(errs))
	}
	for _, err := range errs {
		var te *TimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("got %v, want *TimeoutError", err)
		}
		if len(te.Missing) != 1 || te.Missing[0] != 2 {
			t.Fatalf("Missing = %v, want [2]", te.Missing)
		}
		if len(te.Arrived) != 2 {
			t.Fatalf("Arrived = %v, want both live ranks", te.Arrived)
		}
	}
}

// When everyone shows up, BarrierTimeout behaves exactly like Barrier
// and keeps working across generations.
func TestBarrierTimeoutCompletes(t *testing.T) {
	Run(4, func(r *Rank) {
		for round := 0; round < 5; round++ {
			if err := r.BarrierTimeout(time.Second); err != nil {
				t.Errorf("rank %d round %d: %v", r.ID(), round, err)
			}
		}
	})
}

// WaitAllDeadline must complete arrived messages, report the sources
// that never delivered, and leave their requests pending.
func TestWaitAllDeadlineReportsMissing(t *testing.T) {
	w := NewWorld(3)
	RunOn(w, func(r *Rank) {
		switch r.ID() {
		case 0:
			dst1 := make([]byte, 4)
			dst2 := make([]byte, 4)
			reqs := []Request{
				r.IRecv(1, 7, dst1),
				r.IRecv(2, 7, dst2),
			}
			err := r.WaitAllDeadline(reqs, 30*time.Millisecond)
			var te *TimeoutError
			if !errors.As(err, &te) {
				t.Errorf("got %v, want *TimeoutError", err)
				return
			}
			if len(te.Arrived) != 1 || te.Arrived[0] != 1 {
				t.Errorf("Arrived = %v, want [1]", te.Arrived)
			}
			if len(te.Missing) != 1 || te.Missing[0] != 2 {
				t.Errorf("Missing = %v, want [2]", te.Missing)
			}
			if dst1[0] != 9 {
				t.Errorf("arrived payload not unpacked: %v", dst1)
			}
		case 1:
			r.ISend(0, 7, []byte{9, 9, 9, 9})
		case 2:
			// Dead rank: sends nothing.
		}
	})
}

// With every peer delivering, WaitAllDeadline returns nil.
func TestWaitAllDeadlineCompletes(t *testing.T) {
	Run(4, func(r *Rank) {
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() + r.Size() - 1) % r.Size()
		r.ISend(next, 3, []byte{byte(r.ID())})
		dst := make([]byte, 1)
		reqs := []Request{r.IRecv(prev, 3, dst)}
		if err := r.WaitAllDeadline(reqs, time.Second); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
		if dst[0] != byte(prev) {
			t.Errorf("rank %d: got %d from %d", r.ID(), dst[0], prev)
		}
	})
}

// A halo Finish whose peer died must panic with the rank dump rather
// than hang. Rank 1 starts its round (so rank 0's sends are absorbed)
// and then disappears without sending.
func TestHaloFinishDeadlinePanics(t *testing.T) {
	w := NewWorld(2)
	var caught error
	RunOn(w, func(r *Rank) {
		vals := []float64{1, 2, 3, 4}
		send := [][]int32{{0, 1}}
		recv := [][]int32{{2, 3}}
		if r.ID() == 1 {
			return // dies before its Start
		}
		h := NewExchanger(r, 0, []int{1})
		h.AddIndexSet(send, recv)
		h.RegisterSlice("q", vals, 1, 0, true)
		h.SetDeadline(30 * time.Millisecond)
		defer func() {
			if e := recover(); e != nil {
				if te, ok := e.(*TimeoutError); ok {
					caught = te
				} else {
					t.Errorf("panic value %v, want *TimeoutError", e)
				}
			}
		}()
		h.Exchange()
		t.Error("Finish returned despite a dead peer")
	})
	var te *TimeoutError
	if !errors.As(caught, &te) {
		t.Fatalf("caught %v, want *TimeoutError", caught)
	}
	if te.Op != "halo_finish" || len(te.Missing) != 1 || te.Missing[0] != 1 {
		t.Fatalf("bad dump: %v", te)
	}
}

// haloRun drives nrounds halo exchanges of one field over a G3 mesh and
// returns rank 0's final field data. Used to compare a fault-injected
// run against a clean one.
func haloRun(t *testing.T, nparts, nrounds int, inj Injector, deadline time.Duration) []float64 {
	t.Helper()
	m := mesh.New(3)
	d := partition.MustDecompose(m, nparts, 3)
	w := NewWorld(nparts)
	if inj != nil {
		w.SetInjector(inj)
	}
	var out []float64
	RunOn(w, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		f := dom.NewField("q", 3)
		for i, c := range dom.Owned {
			for lev := 0; lev < 3; lev++ {
				f.Set(lev, int32(i), float64(c)*10+float64(lev))
			}
		}
		h := NewHaloExchanger(dom, r)
		h.Register(f)
		if deadline > 0 {
			h.SetDeadline(deadline)
		}
		for round := 0; round < nrounds; round++ {
			h.Start()
			// Owners keep evolving their cells between rounds.
			for i := range dom.Owned {
				for lev := 0; lev < 3; lev++ {
					f.Set(lev, int32(i), f.At(lev, int32(i))+1)
				}
			}
			h.Finish()
		}
		if r.ID() == 0 {
			out = append([]float64(nil), f.Data...)
		}
	})
	return out
}

// The satellite race-mode test: a HaloExchanger under injected delays
// (run this file with -race; make chaos does) must deliver bitwise the
// same halos as an undisturbed run — delays reorder wall-clock time,
// never data.
func TestHaloExchangeUnderInjectedDelays(t *testing.T) {
	prof, err := fault.ParseProfile("delay")
	if err != nil {
		t.Fatal(err)
	}
	clean := haloRun(t, 4, 6, nil, 0)
	delayed := haloRun(t, 4, 6, fault.NewPlan(11, prof), 2*time.Second)
	if len(clean) != len(delayed) {
		t.Fatalf("length mismatch %d vs %d", len(clean), len(delayed))
	}
	for i := range clean {
		if clean[i] != delayed[i] {
			t.Fatalf("value %d diverged under injected delays: %v vs %v", i, clean[i], delayed[i])
		}
	}
}

// Dropped attempts are retried with backoff: a lossy profile still
// delivers every message, and the plan records the drops it injected.
func TestInjectedDropsAreRetried(t *testing.T) {
	prof, err := fault.ParseProfile("drop")
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(23, prof)
	clean := haloRun(t, 4, 6, nil, 0)
	lossy := haloRun(t, 4, 6, plan, 2*time.Second)
	for i := range clean {
		if clean[i] != lossy[i] {
			t.Fatalf("value %d diverged under drops: %v vs %v", i, clean[i], lossy[i])
		}
	}
	events, _ := plan.Events()
	drops := 0
	for _, e := range events {
		if e.Kind == "drop" {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("drop profile injected no drops — the retry path was not exercised")
	}
}
