package comm

import (
	"testing"
	"time"

	"gristgo/internal/mesh"
	"gristgo/internal/partition"
	"gristgo/internal/telemetry"
)

// TestDrainStatsReturnsAndResets: draining must hand back everything
// accumulated since the previous drain and leave the counters at zero —
// read-then-reset as one atom, so a periodic sampler accounts every
// round exactly once.
func TestDrainStatsReturnsAndResets(t *testing.T) {
	m := mesh.New(3)
	d := partition.MustDecompose(m, 2, 1)
	Run(2, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		f := dom.NewField("x", 2)
		h := NewHaloExchanger(dom, r)
		h.Register(f)

		h.Exchange()
		h.Exchange()
		h.Exchange()
		perRound := h.BytesPerExchange()

		st := h.DrainStats()
		if st.Rounds != 3 {
			t.Errorf("drained Rounds = %d, want 3", st.Rounds)
		}
		if st.BytesSent != 3*perRound {
			t.Errorf("drained BytesSent = %d, want %d", st.BytesSent, 3*perRound)
		}
		if st.Wait < 0 {
			t.Errorf("drained Wait = %v", st.Wait)
		}
		if again := h.DrainStats(); again != (ExchangeStats{}) {
			t.Errorf("second drain not empty: %+v", again)
		}

		// A round after the drain accumulates into a fresh window: the
		// drain boundary loses nothing and double-counts nothing.
		h.Exchange()
		if st2 := h.DrainStats(); st2.Rounds != 1 || st2.BytesSent != perRound {
			t.Errorf("post-drain window = %+v, want 1 round / %d bytes", st2, perRound)
		}
	})
}

// TestDrainTimingsUsesOneWindow: the ComponentTimer view reports the
// same wait/rounds a DrainStats of the identical window would, and
// resets byte counters with it.
func TestDrainTimingsUsesOneWindow(t *testing.T) {
	m := mesh.New(3)
	d := partition.MustDecompose(m, 2, 1)
	Run(2, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		f := dom.NewField("x", 1)
		h := NewHaloExchanger(dom, r)
		h.Register(f)
		h.Exchange()
		h.Exchange()

		var gotD time.Duration
		var gotCalls int
		h.DrainTimings(func(name string, dur time.Duration, calls int) {
			if name != "halo_wait" {
				t.Errorf("emitted %q, want halo_wait", name)
			}
			gotD, gotCalls = dur, calls
		})
		if gotCalls != 2 {
			t.Errorf("emitted %d calls, want 2", gotCalls)
		}
		if gotD < 0 {
			t.Errorf("emitted wait %v", gotD)
		}
		if st := h.Stats(); st != (ExchangeStats{}) {
			t.Errorf("DrainTimings left residue: %+v", st)
		}
		// Nothing accumulated: no emission at all.
		h.DrainTimings(func(string, time.Duration, int) {
			t.Error("empty window emitted a sample")
		})
	})
}

// TestExchangerTelemetrySpans: with a recorder attached, each round
// leaves pack, wait and unpack spans attributed to the given rank.
func TestExchangerTelemetrySpans(t *testing.T) {
	m := mesh.New(3)
	d := partition.MustDecompose(m, 2, 1)
	recs := [2]*telemetry.Recorder{telemetry.NewRecorder(64), telemetry.NewRecorder(64)}
	Run(2, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		f := dom.NewField("x", 1)
		h := NewHaloExchanger(dom, r)
		h.Register(f)
		h.SetTelemetry(recs[r.ID()], int32(r.ID()))
		h.Exchange()
	})
	for rank, rec := range recs {
		seen := map[string]int{}
		for _, ev := range rec.Snapshot() {
			if ev.Rank != int32(rank) {
				t.Errorf("rank %d recorder holds span for rank %d", rank, ev.Rank)
			}
			seen[ev.Name]++
		}
		for _, want := range []string{"halo_pack", "halo_wait", "halo_unpack"} {
			if seen[want] != 1 {
				t.Errorf("rank %d: span %q recorded %d times, want 1", rank, want, seen[want])
			}
		}
	}
}
