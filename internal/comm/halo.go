package comm

import (
	"sort"

	"gristgo/internal/mesh"
	"gristgo/internal/partition"
)

// Domain is one rank's view of a decomposed mesh: the owned cells, the
// halo cells it mirrors from peers, and local index translation. Local
// cell storage is [owned..., halo...]; LocalIndex maps a global cell id
// to its local slot.
type Domain struct {
	Rank   int
	Mesh   *mesh.Mesh
	Owned  []int32 // global ids, local slots [0, len(Owned))
	Halo   []int32 // global ids, local slots [len(Owned), ...)
	NLocal int

	LocalIndex map[int32]int32

	// For each peer (sorted): cells we send (our owned cells the peer
	// mirrors) and cells we receive (our halo cells owned by the peer),
	// both as local indices.
	PeerRanks []int
	SendIdx   [][]int32
	RecvIdx   [][]int32
}

// NewDomain builds rank p's domain view from a decomposition.
func NewDomain(m *mesh.Mesh, d *partition.Decomposition, p int) *Domain {
	dom := &Domain{
		Rank:  p,
		Mesh:  m,
		Owned: d.Owned[p],
		Halo:  d.Halo[p],
	}
	dom.NLocal = len(dom.Owned) + len(dom.Halo)
	dom.LocalIndex = make(map[int32]int32, dom.NLocal)
	for i, c := range dom.Owned {
		dom.LocalIndex[c] = int32(i)
	}
	for i, c := range dom.Halo {
		dom.LocalIndex[c] = int32(len(dom.Owned) + i)
	}

	// Receive lists come straight from the decomposition (halo cells per
	// peer). Send lists are the mirror image: the cells that peer q
	// mirrors from us are exactly the cells in q's halo owned by us.
	for q := range d.Peers[p] {
		dom.PeerRanks = append(dom.PeerRanks, int(q))
	}
	sort.Ints(dom.PeerRanks)
	for _, q := range dom.PeerRanks {
		recvCells := d.Peers[p][int32(q)]
		recv := make([]int32, len(recvCells))
		for i, c := range recvCells {
			recv[i] = dom.LocalIndex[c]
		}
		dom.RecvIdx = append(dom.RecvIdx, recv)

		sendCells := d.Peers[q][int32(p)] // cells q needs from us
		send := make([]int32, len(sendCells))
		for i, c := range sendCells {
			send[i] = dom.LocalIndex[c]
		}
		dom.SendIdx = append(dom.SendIdx, send)
	}
	return dom
}

// Field is a per-cell, per-level variable stored level-major:
// Data[lev*NLocal + localCell]. NLev==1 gives a surface field.
type Field struct {
	Name string
	NLev int
	Data []float64
	dom  *Domain
}

// NewField allocates a field over the domain.
func (d *Domain) NewField(name string, nlev int) *Field {
	return &Field{Name: name, NLev: nlev, Data: make([]float64, nlev*d.NLocal), dom: d}
}

// At returns the value at (level, local cell).
func (f *Field) At(lev int, cell int32) float64 { return f.Data[lev*f.dom.NLocal+int(cell)] }

// Set stores the value at (level, local cell).
func (f *Field) Set(lev int, cell int32, v float64) { f.Data[lev*f.dom.NLocal+int(cell)] = v }

// varNode is one entry of the exchange list. The paper gathers the
// variables to exchange in a linked list so that a single communication
// call moves all of them (§3.1.3); we mirror that structure.
type varNode struct {
	field *Field
	next  *varNode
}

// HaloExchanger aggregates registered fields and exchanges all of their
// halos with one message per peer.
type HaloExchanger struct {
	dom  *Domain
	rank *Rank
	head *varNode // linked list of registered variables
	tag  int
}

// NewHaloExchanger creates an exchanger for the domain bound to an MPI
// rank.
func NewHaloExchanger(dom *Domain, r *Rank) *HaloExchanger {
	return &HaloExchanger{dom: dom, rank: r, tag: 100}
}

// Register appends a field to the exchange list. Registration order must
// match across ranks (SPMD).
func (h *HaloExchanger) Register(f *Field) {
	node := &varNode{field: f}
	if h.head == nil {
		h.head = node
		return
	}
	cur := h.head
	for cur.next != nil {
		cur = cur.next
	}
	cur.next = node
}

// NumRegistered returns the number of fields on the exchange list.
func (h *HaloExchanger) NumRegistered() int {
	n := 0
	for cur := h.head; cur != nil; cur = cur.next {
		n++
	}
	return n
}

// Exchange updates the halo region of every registered field, packing all
// variables and levels into a single message per peer.
func (h *HaloExchanger) Exchange() {
	dom := h.dom
	tag := h.tag
	h.tag++ // unique tag per exchange round

	// Pack and send to each peer.
	for pi, q := range dom.PeerRanks {
		send := dom.SendIdx[pi]
		var buf []float64
		for cur := h.head; cur != nil; cur = cur.next {
			f := cur.field
			for lev := 0; lev < f.NLev; lev++ {
				base := lev * dom.NLocal
				for _, li := range send {
					buf = append(buf, f.Data[base+int(li)])
				}
			}
		}
		h.rank.Send(q, tag, buf)
	}
	// Receive and unpack.
	for pi, q := range dom.PeerRanks {
		recv := dom.RecvIdx[pi]
		buf := h.rank.Recv(q, tag)
		pos := 0
		for cur := h.head; cur != nil; cur = cur.next {
			f := cur.field
			for lev := 0; lev < f.NLev; lev++ {
				base := lev * dom.NLocal
				for _, li := range recv {
					f.Data[base+int(li)] = buf[pos]
					pos++
				}
			}
		}
		if pos != len(buf) {
			panic("comm: halo exchange size mismatch")
		}
	}
}

// BytesPerExchange returns the number of bytes this rank sends in one
// Exchange call at the given word size — the input to the communication
// performance model.
func (h *HaloExchanger) BytesPerExchange(wordBytes int) int64 {
	var words int64
	for pi := range h.dom.PeerRanks {
		n := int64(len(h.dom.SendIdx[pi]))
		for cur := h.head; cur != nil; cur = cur.next {
			words += n * int64(cur.field.NLev)
		}
	}
	return words * int64(wordBytes)
}
