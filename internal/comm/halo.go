package comm

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"time"

	"gristgo/internal/mesh"
	"gristgo/internal/partition"
	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// Domain is one rank's view of a decomposed mesh: the owned cells, the
// halo cells it mirrors from peers, and local index translation. Local
// cell storage is [owned..., halo...]; LocalIndex maps a global cell id
// to its local slot.
type Domain struct {
	Rank   int
	Mesh   *mesh.Mesh
	Owned  []int32 // global ids, local slots [0, len(Owned))
	Halo   []int32 // global ids, local slots [len(Owned), ...)
	NLocal int

	LocalIndex map[int32]int32

	// For each peer (sorted): cells we send (our owned cells the peer
	// mirrors) and cells we receive (our halo cells owned by the peer),
	// both as local indices.
	PeerRanks []int
	SendIdx   [][]int32
	RecvIdx   [][]int32
}

// NewDomain builds rank p's domain view from a decomposition.
func NewDomain(m *mesh.Mesh, d *partition.Decomposition, p int) *Domain {
	dom := &Domain{
		Rank:  p,
		Mesh:  m,
		Owned: d.Owned[p],
		Halo:  d.Halo[p],
	}
	dom.NLocal = len(dom.Owned) + len(dom.Halo)
	dom.LocalIndex = make(map[int32]int32, dom.NLocal)
	for i, c := range dom.Owned {
		dom.LocalIndex[c] = int32(i)
	}
	for i, c := range dom.Halo {
		dom.LocalIndex[c] = int32(len(dom.Owned) + i)
	}

	// Receive lists come straight from the decomposition (halo cells per
	// peer). Send lists are the mirror image: the cells that peer q
	// mirrors from us are exactly the cells in q's halo owned by us.
	for q := range d.Peers[p] {
		dom.PeerRanks = append(dom.PeerRanks, int(q))
	}
	sort.Ints(dom.PeerRanks)
	for _, q := range dom.PeerRanks {
		recvCells := d.Peers[p][int32(q)]
		recv := make([]int32, len(recvCells))
		for i, c := range recvCells {
			recv[i] = dom.LocalIndex[c]
		}
		dom.RecvIdx = append(dom.RecvIdx, recv)

		sendCells := d.Peers[q][int32(p)] // cells q needs from us
		send := make([]int32, len(sendCells))
		for i, c := range sendCells {
			send[i] = dom.LocalIndex[c]
		}
		dom.SendIdx = append(dom.SendIdx, send)
	}
	return dom
}

// Field is a per-cell, per-level variable stored cell-major:
// Data[localCell*NLev + lev], so one cell's column is a contiguous
// block — the layout the exchange packer moves. NLev==1 gives a surface
// field.
type Field struct {
	Name string
	NLev int
	Data []float64
	dom  *Domain
}

// NewField allocates a field over the domain.
func (d *Domain) NewField(name string, nlev int) *Field {
	return &Field{Name: name, NLev: nlev, Data: make([]float64, nlev*d.NLocal), dom: d}
}

// At returns the value at (level, local cell).
func (f *Field) At(lev int, cell int32) float64 { return f.Data[int(cell)*f.NLev+lev] }

// Set stores the value at (level, local cell).
func (f *Field) Set(lev int, cell int32, v float64) { f.Data[int(cell)*f.NLev+lev] = v }

// varNode is one entry of the exchange list. The paper gathers the
// variables to exchange in a linked list so that a single communication
// call moves all of them (§3.1.3); we mirror that structure. Each node
// names the backing array, the per-entity stride, the index set its
// entities come from, and whether the variable is precision-sensitive
// (sensitive variables travel FP64 under every mode; insensitive ones
// travel FP32 under precision.Mixed — §3.4).
type varNode struct {
	name      string
	data      []float64
	stride    int
	set       int
	sensitive bool
	next      *varNode
}

// indexSet is one family of exchanged entities (e.g. cells, edges): the
// per-peer entity indices to pack and unpack, aligned with the
// exchanger's peer order. Indices address entity blocks
// data[idx*stride : (idx+1)*stride] of every field registered on the
// set.
type indexSet struct {
	send [][]int32
	recv [][]int32
}

// IndexSet is the exported form of one exchanged entity family: per-peer
// send and receive entity indices, aligned with the Layout's peer order.
type IndexSet struct {
	Send [][]int32
	Recv [][]int32
}

// Layout is a complete halo-exchange layout — the peer list and every
// index set — derived from one decomposition epoch. It is the swappable
// decomposition handle of an elastic run: an exchanger built from a
// Layout keeps its registered fields and statistics across SwapLayout,
// and rebuilds per-peer byte plans (including the mixed wire-precision
// word sizes) from the new layout on the next round.
type Layout struct {
	Peers []int
	Sets  []IndexSet
}

// ExchangeStats reports the measured activity of an exchanger: completed
// rounds, bytes enqueued to peers, and time spent waiting for inbound
// messages in Finish — the inputs to the measured communication
// fraction of the performance model.
type ExchangeStats struct {
	Rounds    int
	BytesSent int64
	Wait      time.Duration
}

// HaloExchanger aggregates registered fields and exchanges all of their
// halos with one message per peer. Message layouts (per-peer offsets,
// word sizes, total bytes) are precomputed when registration settles,
// and pack/unpack run through persistent per-peer buffers, so a steady
// exchange round performs zero heap allocations.
//
// Exchange is the blocking round. The split Start/Finish pair overlaps
// communication with computation: Start packs a snapshot of the
// registered fields and posts all sends and receives; the caller then
// computes anything that does not read halo entities; Finish completes
// the receives and unpacks. Start/interior/Finish is bit-identical to
// the blocking Exchange because the outbound payload is sealed at Start.
type HaloExchanger struct {
	rank  *Rank
	mode  precision.Mode
	peers []int
	sets  []indexSet
	head  *varNode // linked list of registered variables
	tag   int

	built     bool
	sendBytes []int64 // per peer
	recvBytes []int64
	sendBuf   [][]byte
	recvBuf   [][]byte
	recvReqs  []Request
	inFlight  bool

	// Deadline-bounded Finish (see SetDeadline): the reusable timer and
	// the timeout escalation hook.
	deadline  time.Duration
	dlTimer   *time.Timer
	onTimeout func()

	// statsMu guards stats: the owning rank updates them from Start and
	// Finish while a telemetry sampler may read or drain them from
	// another goroutine.
	statsMu sync.Mutex
	stats   ExchangeStats

	// Optional flight recorder: when set, Start/Finish emit pack, wait
	// and unpack spans attributed to telRank. telStep > 0 stamps spans
	// with an explicit per-rank step (see SetTelemetryStep).
	rec     *telemetry.Recorder
	telRank int32
	telStep int64
}

// NewExchanger creates an exchanger bound to a rank with an explicit
// peer list (sorted order must match across ranks) and precision mode.
// Index sets and fields are added with AddIndexSet and RegisterSlice.
func NewExchanger(r *Rank, mode precision.Mode, peers []int) *HaloExchanger {
	return &HaloExchanger{rank: r, mode: mode, peers: peers, tag: 100}
}

// NewExchangerWithLayout creates an exchanger whose peers and index sets
// come from a decomposition-derived Layout. The layout can later be
// replaced wholesale with SwapLayout.
func NewExchangerWithLayout(r *Rank, mode precision.Mode, l *Layout) *HaloExchanger {
	h := NewExchanger(r, mode, l.Peers)
	for _, s := range l.Sets {
		h.AddIndexSet(s.Send, s.Recv)
	}
	return h
}

// NewHaloExchanger creates an exchanger for the domain bound to an MPI
// rank, with the domain's cell halo as index set 0 (DP mode; see
// SetMode).
func NewHaloExchanger(dom *Domain, r *Rank) *HaloExchanger {
	return NewExchangerWithLayout(r, precision.DP, dom.Layout())
}

// Layout returns the domain's halo layout: the peer list and the cell
// index set (set id 0).
func (d *Domain) Layout() *Layout {
	return &Layout{Peers: d.PeerRanks, Sets: []IndexSet{{Send: d.SendIdx, Recv: d.RecvIdx}}}
}

// SwapLayout rebinds the exchanger to a new decomposition epoch's layout:
// new peers, new per-peer index sets, same registered fields. The set
// count must match the layout the exchanger was built with (set ids are
// baked into the registered fields), and no round may be in flight. Byte
// plans, wire-precision word layouts and persistent buffers are rebuilt
// lazily on the next Start; the round tag keeps counting monotonically
// so pre- and post-swap rounds can never collide.
func (h *HaloExchanger) SwapLayout(l *Layout) {
	if h.inFlight {
		panic("comm: SwapLayout while a round is in flight")
	}
	if len(l.Sets) != len(h.sets) {
		panic("comm: SwapLayout set count does not match the registered layout")
	}
	h.peers = l.Peers
	for i, s := range l.Sets {
		if len(s.Send) != len(l.Peers) || len(s.Recv) != len(l.Peers) {
			panic("comm: SwapLayout index set lists must align with the peer list")
		}
		h.sets[i] = indexSet{send: s.Send, recv: s.Recv}
	}
	h.built = false
}

// SetMode switches the payload precision mode: under precision.Mixed,
// insensitive fields travel FP32.
func (h *HaloExchanger) SetMode(mode precision.Mode) {
	h.mode = mode
	h.built = false
}

// SetTelemetry attaches a flight recorder: every subsequent round emits
// halo_pack, halo_wait and halo_unpack spans attributed to rank. A nil
// recorder detaches.
func (h *HaloExchanger) SetTelemetry(rec *telemetry.Recorder, rank int32) {
	h.rec = rec
	h.telRank = rank
}

// SetTelemetryStep stamps subsequent round spans with an explicit model
// step (> 0) — SPMD ranks advance independently, so the driver bumps
// each rank's exchanger alongside its engine. Zero restores the
// recorder-wide shared step.
func (h *HaloExchanger) SetTelemetryStep(step int64) { h.telStep = step }

// span opens a round-phase span on the stamped per-rank step when one
// is set, else on the recorder's shared step.
//
//grist:hotpath
func (h *HaloExchanger) span(name string) telemetry.Span {
	if h.telStep > 0 {
		return h.rec.BeginAt(name, h.telRank, h.telStep)
	}
	return h.rec.Begin(name, h.telRank)
}

// AddIndexSet registers a family of exchanged entities and returns its
// id for RegisterSlice. send and recv hold one index list per peer, in
// the exchanger's peer order; a nil list means no traffic with that
// peer for this set.
func (h *HaloExchanger) AddIndexSet(send, recv [][]int32) int {
	if len(send) != len(h.peers) || len(recv) != len(h.peers) {
		panic("comm: index set lists must align with the peer list")
	}
	h.sets = append(h.sets, indexSet{send: send, recv: recv})
	h.built = false
	return len(h.sets) - 1
}

// RegisterSlice appends a raw entity-major array to the exchange list:
// data holds stride values per entity, indexed by the given set's
// entity ids. Sensitive variables always travel FP64; insensitive ones
// travel FP32 under precision.Mixed. Registration order must match
// across ranks (SPMD).
func (h *HaloExchanger) RegisterSlice(name string, data []float64, stride, set int, sensitive bool) {
	if set < 0 || set >= len(h.sets) {
		panic("comm: RegisterSlice on unknown index set")
	}
	node := &varNode{name: name, data: data, stride: stride, set: set, sensitive: sensitive}
	if h.head == nil {
		h.head = node
	} else {
		cur := h.head
		for cur.next != nil {
			cur = cur.next
		}
		cur.next = node
	}
	h.built = false
}

// Register appends a field to the exchange list as precision-sensitive
// (always FP64 on the wire).
func (h *HaloExchanger) Register(f *Field) {
	h.RegisterSlice(f.Name, f.Data, f.NLev, 0, true)
}

// RegisterInsensitive appends a field that travels FP32 under the Mixed
// mode.
func (h *HaloExchanger) RegisterInsensitive(f *Field) {
	h.RegisterSlice(f.Name, f.Data, f.NLev, 0, false)
}

// NumRegistered returns the number of fields on the exchange list.
func (h *HaloExchanger) NumRegistered() int {
	n := 0
	for cur := h.head; cur != nil; cur = cur.next {
		n++
	}
	return n
}

// wordBytes returns the wire word size of a registered variable under
// the exchanger's mode.
func (h *HaloExchanger) wordBytes(n *varNode) int {
	if n.sensitive || h.mode != precision.Mixed {
		return 8
	}
	return 4
}

// build precomputes the per-peer message layout and sizes the
// persistent buffers. Runs once per registration change.
func (h *HaloExchanger) build() {
	np := len(h.peers)
	h.sendBytes = make([]int64, np)
	h.recvBytes = make([]int64, np)
	for pi := range h.peers {
		var sb, rb int64
		for cur := h.head; cur != nil; cur = cur.next {
			wb := int64(h.wordBytes(cur)) * int64(cur.stride)
			sb += wb * int64(len(h.sets[cur.set].send[pi]))
			rb += wb * int64(len(h.sets[cur.set].recv[pi]))
		}
		h.sendBytes[pi] = sb
		h.recvBytes[pi] = rb
	}
	h.sendBuf = make([][]byte, np)
	h.recvBuf = make([][]byte, np)
	for pi := range h.peers {
		h.sendBuf[pi] = make([]byte, h.sendBytes[pi])
		h.recvBuf[pi] = make([]byte, h.recvBytes[pi])
	}
	h.recvReqs = make([]Request, np)
	h.built = true
}

// pack serializes every registered variable's send entities for peer pi
// into the persistent send buffer.
//
//grist:hotpath
func (h *HaloExchanger) pack(pi int) []byte {
	buf := h.sendBuf[pi]
	off := 0
	for cur := h.head; cur != nil; cur = cur.next {
		idx := h.sets[cur.set].send[pi]
		stride := cur.stride
		if h.wordBytes(cur) == 8 {
			for _, e := range idx {
				base := int(e) * stride
				for k := 0; k < stride; k++ {
					binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(cur.data[base+k]))
					off += 8
				}
			}
		} else {
			for _, e := range idx {
				base := int(e) * stride
				for k := 0; k < stride; k++ {
					binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(cur.data[base+k])))
					off += 4
				}
			}
		}
	}
	if off != len(buf) {
		panic("comm: halo pack size mismatch")
	}
	return buf
}

// unpack deserializes peer pi's message into the registered variables'
// receive entities.
//
//grist:hotpath
func (h *HaloExchanger) unpack(pi int) {
	buf := h.recvBuf[pi]
	off := 0
	for cur := h.head; cur != nil; cur = cur.next {
		idx := h.sets[cur.set].recv[pi]
		stride := cur.stride
		if h.wordBytes(cur) == 8 {
			for _, e := range idx {
				base := int(e) * stride
				for k := 0; k < stride; k++ {
					cur.data[base+k] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
					off += 8
				}
			}
		} else {
			for _, e := range idx {
				base := int(e) * stride
				for k := 0; k < stride; k++ {
					cur.data[base+k] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:])))
					off += 4
				}
			}
		}
	}
	if off != len(buf) {
		panic("comm: halo unpack size mismatch")
	}
}

// Start begins an exchange round: packs a snapshot of every registered
// variable and posts one send and one receive per peer. The caller may
// overwrite registered arrays freely until Finish, which completes the
// receives and unpacks into the halo entities.
func (h *HaloExchanger) Start() {
	if h.inFlight {
		panic("comm: HaloExchanger.Start while a round is in flight")
	}
	if !h.built {
		h.build()
	}
	tag := h.tag
	h.tag++ // unique tag per exchange round
	sp := h.span("halo_pack")
	var bytes int64
	for pi, q := range h.peers {
		h.rank.ISend(q, tag, h.pack(pi))
		bytes += h.sendBytes[pi]
	}
	for pi, q := range h.peers {
		h.recvReqs[pi] = h.rank.IRecv(q, tag, h.recvBuf[pi])
	}
	sp.End()
	h.statsMu.Lock()
	h.stats.BytesSent += bytes
	h.statsMu.Unlock()
	h.inFlight = true
}

// Finish completes the round begun by Start: waits for every peer's
// message and unpacks the halo entities.
//
//grist:hotpath
func (h *HaloExchanger) Finish() {
	if !h.inFlight {
		panic("comm: HaloExchanger.Finish without Start")
	}
	wsp := h.span("halo_wait")
	t0 := time.Now()
	if h.deadline > 0 {
		h.waitAllDeadline()
	} else {
		h.rank.WaitAll(h.recvReqs)
	}
	wait := time.Since(t0)
	wsp.End()
	usp := h.span("halo_unpack")
	for pi := range h.peers {
		h.unpack(pi)
	}
	usp.End()
	h.inFlight = false
	h.statsMu.Lock()
	h.stats.Wait += wait
	h.stats.Rounds++
	h.statsMu.Unlock()
}

// Exchange performs one blocking round: Start immediately followed by
// Finish.
func (h *HaloExchanger) Exchange() {
	h.Start()
	h.Finish()
}

// BytesPerExchange returns the number of bytes this rank sends in one
// exchange round, honoring each field's wire word size under the
// current mode — the input to the communication performance model and
// exactly the byte count enqueued by Start.
func (h *HaloExchanger) BytesPerExchange() int64 {
	if !h.built {
		h.build()
	}
	var total int64
	for pi := range h.peers {
		total += h.sendBytes[pi]
	}
	return total
}

// Stats returns a copy of the accumulated exchange statistics without
// resetting them.
func (h *HaloExchanger) Stats() ExchangeStats {
	h.statsMu.Lock()
	defer h.statsMu.Unlock()
	return h.stats
}

// DrainStats atomically returns the accumulated statistics and resets
// them. Read-then-reset is one critical section, so a sampler draining
// periodically accounts every round and byte exactly once — no window
// is lost between a Stats read and a separate reset.
func (h *HaloExchanger) DrainStats() ExchangeStats {
	h.statsMu.Lock()
	defer h.statsMu.Unlock()
	st := h.stats
	h.stats = ExchangeStats{}
	return st
}

// DrainTimings reports the accumulated wait time under "halo_wait" and
// resets the counters (the core.ComponentTimer contract). Callers that
// also need the byte and round counts should use DrainStats directly —
// one drain yields every counter from the same atomic window.
func (h *HaloExchanger) DrainTimings(emit func(name string, d time.Duration, calls int)) {
	st := h.DrainStats()
	if st.Rounds > 0 {
		emit("halo_wait", st.Wait, st.Rounds)
	}
}
