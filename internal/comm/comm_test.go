package comm

import (
	"math"
	"sync/atomic"
	"testing"

	"gristgo/internal/mesh"
	"gristgo/internal/partition"
)

func TestSendRecv(t *testing.T) {
	Run(4, func(r *Rank) {
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() + r.Size() - 1) % r.Size()
		r.Send(next, 1, []float64{float64(r.ID())})
		got := r.Recv(prev, 1)
		if got[0] != float64(prev) {
			t.Errorf("rank %d: got %v from %d", r.ID(), got[0], prev)
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	var before, after int64
	Run(8, func(r *Rank) {
		atomic.AddInt64(&before, 1)
		r.Barrier()
		if n := atomic.LoadInt64(&before); n != 8 {
			t.Errorf("rank %d passed barrier with only %d arrivals", r.ID(), n)
		}
		atomic.AddInt64(&after, 1)
	})
	if after != 8 {
		t.Fatalf("after=%d", after)
	}
}

func TestAllReduceSum(t *testing.T) {
	n := 6
	Run(n, func(r *Rank) {
		x := []float64{float64(r.ID()), 1}
		got := r.AllReduceSum(x)
		wantFirst := float64(n * (n - 1) / 2)
		if got[0] != wantFirst || got[1] != float64(n) {
			t.Errorf("rank %d: got %v", r.ID(), got)
		}
		// Twice in a row must work (buffer lifecycle).
		got2 := r.AllReduceSum([]float64{2, 2})
		if got2[0] != float64(2*n) {
			t.Errorf("rank %d: second reduce got %v", r.ID(), got2)
		}
	})
}

func TestAllReduceMax(t *testing.T) {
	Run(5, func(r *Rank) {
		got := r.AllReduceMax(float64(r.ID() * r.ID()))
		if got != 16 {
			t.Errorf("rank %d: max=%v", r.ID(), got)
		}
	})
}

func TestHaloExchangeMirrorsOwners(t *testing.T) {
	m := mesh.New(3)
	nparts := 4
	d := partition.Decompose(m, nparts, 3)
	Run(nparts, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		f := dom.NewField("q", 3)
		// Owner writes a value derived from the global cell id and level.
		for i, c := range dom.Owned {
			for lev := 0; lev < 3; lev++ {
				f.Set(lev, int32(i), float64(c)*10+float64(lev))
			}
		}
		h := NewHaloExchanger(dom, r)
		h.Register(f)
		h.Exchange()
		// Halo cells must now hold the owner's values.
		for i, c := range dom.Halo {
			li := int32(len(dom.Owned) + i)
			for lev := 0; lev < 3; lev++ {
				want := float64(c)*10 + float64(lev)
				if got := f.At(lev, li); got != want {
					t.Errorf("rank %d: halo cell %d lev %d = %v, want %v", r.ID(), c, lev, got, want)
				}
			}
		}
	})
}

func TestHaloExchangeMultipleVariablesOneCall(t *testing.T) {
	m := mesh.New(3)
	nparts := 3
	d := partition.Decompose(m, nparts, 9)
	Run(nparts, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		h := NewHaloExchanger(dom, r)
		fields := make([]*Field, 5)
		for fi := range fields {
			fields[fi] = dom.NewField("v", 2)
			for i, c := range dom.Owned {
				for lev := 0; lev < 2; lev++ {
					fields[fi].Set(lev, int32(i), float64(c)+1000*float64(fi)+0.5*float64(lev))
				}
			}
			h.Register(fields[fi])
		}
		if h.NumRegistered() != 5 {
			t.Errorf("registered %d", h.NumRegistered())
		}
		h.Exchange()
		for fi, f := range fields {
			for i, c := range dom.Halo {
				li := int32(len(dom.Owned) + i)
				for lev := 0; lev < 2; lev++ {
					want := float64(c) + 1000*float64(fi) + 0.5*float64(lev)
					if f.At(lev, li) != want {
						t.Fatalf("rank %d field %d halo mismatch", r.ID(), fi)
					}
				}
			}
		}
	})
}

func TestHaloExchangeRepeatedRounds(t *testing.T) {
	m := mesh.New(3)
	nparts := 4
	d := partition.Decompose(m, nparts, 5)
	Run(nparts, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		f := dom.NewField("x", 1)
		h := NewHaloExchanger(dom, r)
		h.Register(f)
		for round := 0; round < 10; round++ {
			for i := range dom.Owned {
				f.Set(0, int32(i), float64(round))
			}
			h.Exchange()
			for i := range dom.Halo {
				li := int32(len(dom.Owned) + i)
				if f.At(0, li) != float64(round) {
					t.Fatalf("round %d: halo stale", round)
				}
			}
		}
	})
}

func TestBytesPerExchange(t *testing.T) {
	m := mesh.New(3)
	d := partition.Decompose(m, 2, 1)
	Run(2, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		h := NewHaloExchanger(dom, r)
		f := dom.NewField("a", 4)
		h.Register(f)
		var sendCells int64
		for pi := range dom.PeerRanks {
			sendCells += int64(len(dom.SendIdx[pi]))
		}
		if got, want := h.BytesPerExchange(8), sendCells*4*8; got != want {
			t.Errorf("BytesPerExchange=%d want %d", got, want)
		}
		if got, want := h.BytesPerExchange(4), sendCells*4*4; got != want {
			t.Errorf("BytesPerExchange fp32=%d want %d", got, want)
		}
	})
}

// TestDistributedSumMatchesSerial computes a global integral two ways.
func TestDistributedSumMatchesSerial(t *testing.T) {
	m := mesh.New(4)
	var serial float64
	for c := 0; c < m.NCells; c++ {
		serial += m.CellArea[c] * math.Sin(m.CellLat[c]+1)
	}
	nparts := 8
	d := partition.Decompose(m, nparts, 17)
	Run(nparts, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		var local float64
		for _, c := range dom.Owned {
			local += m.CellArea[c] * math.Sin(m.CellLat[c]+1)
		}
		global := r.AllReduceSum([]float64{local})[0]
		if rel := math.Abs(global-serial) / math.Abs(serial); rel > 1e-12 {
			t.Errorf("rank %d: distributed sum off by %g", r.ID(), rel)
		}
	})
}

func TestRecvTagMismatchPanics(t *testing.T) {
	Run(2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, []float64{1})
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("tag mismatch did not panic")
			}
		}()
		r.Recv(0, 8)
	})
}

func TestWorldSize(t *testing.T) {
	if NewWorld(5).Size() != 5 {
		t.Error("world size")
	}
	Run(3, func(r *Rank) {
		if r.Size() != 3 {
			t.Error("rank's world size")
		}
	})
}
