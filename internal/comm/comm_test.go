package comm

import (
	"math"
	"sync/atomic"
	"testing"

	"gristgo/internal/mesh"
	"gristgo/internal/partition"
	"gristgo/internal/precision"
)

func TestSendRecv(t *testing.T) {
	Run(4, func(r *Rank) {
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() + r.Size() - 1) % r.Size()
		r.Send(next, 1, []float64{float64(r.ID())})
		got := r.Recv(prev, 1)
		if got[0] != float64(prev) {
			t.Errorf("rank %d: got %v from %d", r.ID(), got[0], prev)
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	var before, after int64
	Run(8, func(r *Rank) {
		atomic.AddInt64(&before, 1)
		r.Barrier()
		if n := atomic.LoadInt64(&before); n != 8 {
			t.Errorf("rank %d passed barrier with only %d arrivals", r.ID(), n)
		}
		atomic.AddInt64(&after, 1)
	})
	if after != 8 {
		t.Fatalf("after=%d", after)
	}
}

func TestAllReduceSum(t *testing.T) {
	n := 6
	Run(n, func(r *Rank) {
		x := []float64{float64(r.ID()), 1}
		got := r.AllReduceSum(x)
		wantFirst := float64(n * (n - 1) / 2)
		if got[0] != wantFirst || got[1] != float64(n) {
			t.Errorf("rank %d: got %v", r.ID(), got)
		}
		// Twice in a row must work (buffer lifecycle).
		got2 := r.AllReduceSum([]float64{2, 2})
		if got2[0] != float64(2*n) {
			t.Errorf("rank %d: second reduce got %v", r.ID(), got2)
		}
	})
}

func TestAllReduceMax(t *testing.T) {
	Run(5, func(r *Rank) {
		got := r.AllReduceMax(float64(r.ID() * r.ID()))
		if got != 16 {
			t.Errorf("rank %d: max=%v", r.ID(), got)
		}
	})
}

func TestHaloExchangeMirrorsOwners(t *testing.T) {
	m := mesh.New(3)
	nparts := 4
	d := partition.MustDecompose(m, nparts, 3)
	Run(nparts, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		f := dom.NewField("q", 3)
		// Owner writes a value derived from the global cell id and level.
		for i, c := range dom.Owned {
			for lev := 0; lev < 3; lev++ {
				f.Set(lev, int32(i), float64(c)*10+float64(lev))
			}
		}
		h := NewHaloExchanger(dom, r)
		h.Register(f)
		h.Exchange()
		// Halo cells must now hold the owner's values.
		for i, c := range dom.Halo {
			li := int32(len(dom.Owned) + i)
			for lev := 0; lev < 3; lev++ {
				want := float64(c)*10 + float64(lev)
				if got := f.At(lev, li); got != want {
					t.Errorf("rank %d: halo cell %d lev %d = %v, want %v", r.ID(), c, lev, got, want)
				}
			}
		}
	})
}

func TestHaloExchangeMultipleVariablesOneCall(t *testing.T) {
	m := mesh.New(3)
	nparts := 3
	d := partition.MustDecompose(m, nparts, 9)
	Run(nparts, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		h := NewHaloExchanger(dom, r)
		fields := make([]*Field, 5)
		for fi := range fields {
			fields[fi] = dom.NewField("v", 2)
			for i, c := range dom.Owned {
				for lev := 0; lev < 2; lev++ {
					fields[fi].Set(lev, int32(i), float64(c)+1000*float64(fi)+0.5*float64(lev))
				}
			}
			h.Register(fields[fi])
		}
		if h.NumRegistered() != 5 {
			t.Errorf("registered %d", h.NumRegistered())
		}
		h.Exchange()
		for fi, f := range fields {
			for i, c := range dom.Halo {
				li := int32(len(dom.Owned) + i)
				for lev := 0; lev < 2; lev++ {
					want := float64(c) + 1000*float64(fi) + 0.5*float64(lev)
					if f.At(lev, li) != want {
						t.Fatalf("rank %d field %d halo mismatch", r.ID(), fi)
					}
				}
			}
		}
	})
}

func TestHaloExchangeRepeatedRounds(t *testing.T) {
	m := mesh.New(3)
	nparts := 4
	d := partition.MustDecompose(m, nparts, 5)
	Run(nparts, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		f := dom.NewField("x", 1)
		h := NewHaloExchanger(dom, r)
		h.Register(f)
		for round := 0; round < 10; round++ {
			for i := range dom.Owned {
				f.Set(0, int32(i), float64(round))
			}
			h.Exchange()
			for i := range dom.Halo {
				li := int32(len(dom.Owned) + i)
				if f.At(0, li) != float64(round) {
					t.Fatalf("round %d: halo stale", round)
				}
			}
		}
	})
}

// TestBytesPerExchange checks the reported per-round byte count honors
// each field's wire word size and equals the bytes actually enqueued.
func TestBytesPerExchange(t *testing.T) {
	m := mesh.New(3)
	d := partition.MustDecompose(m, 2, 1)
	Run(2, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		h := NewHaloExchanger(dom, r)
		sens := dom.NewField("a", 4)
		insens := dom.NewField("b", 3)
		h.Register(sens)
		h.RegisterInsensitive(insens)
		var sendCells int64
		for pi := range dom.PeerRanks {
			sendCells += int64(len(dom.SendIdx[pi]))
		}
		wantDP := sendCells * (4*8 + 3*8)
		if got := h.BytesPerExchange(); got != wantDP {
			t.Errorf("BytesPerExchange=%d want %d", got, wantDP)
		}
		h.Exchange()
		if got := h.Stats().BytesSent; got != wantDP {
			t.Errorf("enqueued %d bytes, reported %d", got, wantDP)
		}

		// Under Mixed the insensitive field travels FP32.
		h.SetMode(precision.Mixed)
		wantMixed := sendCells * (4*8 + 3*4)
		if got := h.BytesPerExchange(); got != wantMixed {
			t.Errorf("Mixed BytesPerExchange=%d want %d", got, wantMixed)
		}
		h.Exchange()
		if got := h.Stats().BytesSent - wantDP; got != wantMixed {
			t.Errorf("Mixed round enqueued %d bytes, reported %d", got, wantMixed)
		}
	})
}

// TestSendCopiesData: Send must copy the payload into a transport-owned
// buffer, so a caller overwriting its slice right after Send cannot
// corrupt the in-flight message.
func TestSendCopiesData(t *testing.T) {
	Run(2, func(r *Rank) {
		if r.ID() == 0 {
			buf := []float64{1, 2, 3}
			r.Send(1, 5, buf)
			buf[0], buf[1], buf[2] = -9, -9, -9
			r.Barrier()
			return
		}
		r.Barrier() // receive only after the sender scribbled over its slice
		got := r.Recv(0, 5)
		for i, want := range []float64{1, 2, 3} {
			if got[i] != want {
				t.Errorf("got[%d]=%v want %v (in-flight message aliased sender's buffer)", i, got[i], want)
			}
		}
	})
}

// TestStartSealsPayload: the outbound payload of a round is snapshotted
// at Start, so overlapped compute overwriting the registered arrays
// before Finish cannot change what peers receive — the property that
// makes Start/interior/Finish bit-identical to a blocking Exchange.
func TestStartSealsPayload(t *testing.T) {
	m := mesh.New(3)
	nparts := 4
	d := partition.MustDecompose(m, nparts, 3)
	Run(nparts, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		f := dom.NewField("q", 2)
		h := NewHaloExchanger(dom, r)
		h.Register(f)
		for round := 0; round < 5; round++ {
			for i, c := range dom.Owned {
				for lev := 0; lev < 2; lev++ {
					f.Set(lev, int32(i), float64(c)*100+float64(round)*10+float64(lev))
				}
			}
			h.Start()
			// Overlapped "compute": scribble over every owned value while
			// the round is in flight.
			for i := range dom.Owned {
				f.Set(0, int32(i), -1)
				f.Set(1, int32(i), -1)
			}
			h.Finish()
			for i, c := range dom.Halo {
				li := int32(len(dom.Owned) + i)
				for lev := 0; lev < 2; lev++ {
					want := float64(c)*100 + float64(round)*10 + float64(lev)
					if got := f.At(lev, li); got != want {
						t.Fatalf("rank %d round %d: halo cell %d lev %d = %v, want %v",
							r.ID(), round, c, lev, got, want)
					}
				}
			}
		}
	})
}

// TestHaloExchangeSteadyStateAllocFree: after warmup, a full exchange
// round performs zero heap allocations on every rank (AllocsPerRun
// counts mallocs process-wide, so the peer rank's round is measured
// too).
func TestHaloExchangeSteadyStateAllocFree(t *testing.T) {
	m := mesh.New(3)
	d := partition.MustDecompose(m, 2, 1)
	w := NewWorld(2)
	start := make(chan struct{})
	done := make(chan struct{})
	go func() {
		r := &Rank{id: 1, w: w}
		dom := NewDomain(m, d, 1)
		f := dom.NewField("x", 3)
		h := NewHaloExchanger(dom, r)
		h.Register(f)
		for range start {
			h.Exchange()
			done <- struct{}{}
		}
	}()
	r := &Rank{id: 0, w: w}
	dom := NewDomain(m, d, 0)
	f := dom.NewField("x", 3)
	h := NewHaloExchanger(dom, r)
	h.Register(f)
	round := func() {
		start <- struct{}{}
		h.Exchange()
		<-done
	}
	// Warm up: build layouts and populate the transport free lists.
	for i := 0; i < 3; i++ {
		round()
	}
	avg := testing.AllocsPerRun(20, round)
	close(start)
	if avg != 0 {
		t.Errorf("steady-state exchange allocates %.1f objects/round, want 0", avg)
	}
}

// TestDistributedSumMatchesSerial computes a global integral two ways.
func TestDistributedSumMatchesSerial(t *testing.T) {
	m := mesh.New(4)
	var serial float64
	for c := 0; c < m.NCells; c++ {
		serial += m.CellArea[c] * math.Sin(m.CellLat[c]+1)
	}
	nparts := 8
	d := partition.MustDecompose(m, nparts, 17)
	Run(nparts, func(r *Rank) {
		dom := NewDomain(m, d, r.ID())
		var local float64
		for _, c := range dom.Owned {
			local += m.CellArea[c] * math.Sin(m.CellLat[c]+1)
		}
		global := r.AllReduceSum([]float64{local})[0]
		if rel := math.Abs(global-serial) / math.Abs(serial); rel > 1e-12 {
			t.Errorf("rank %d: distributed sum off by %g", r.ID(), rel)
		}
	})
}

func TestRecvTagMismatchPanics(t *testing.T) {
	Run(2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, []float64{1})
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("tag mismatch did not panic")
			}
		}()
		r.Recv(0, 8)
	})
}

func TestWorldSize(t *testing.T) {
	if NewWorld(5).Size() != 5 {
		t.Error("world size")
	}
	Run(3, func(r *Rank) {
		if r.Size() != 3 {
			t.Error("rank's world size")
		}
	})
}
