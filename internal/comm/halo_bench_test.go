package comm

import (
	"sync"
	"testing"

	"gristgo/internal/mesh"
	"gristgo/internal/partition"
	"gristgo/internal/precision"
)

var (
	benchMeshOnce sync.Once
	benchMesh     *mesh.Mesh
	benchDecomp   *partition.Decomposition
	benchSink     float64
)

// runHaloBench drives b.N exchange rounds between two ranks, each round
// carrying a dycore-like variable set (one sensitive interface field,
// four insensitive layer fields, 30 levels) plus a fixed slab of
// "interior" compute. The overlap variant hides the round behind that
// compute via Start/Finish; the blocking variant runs them back to back.
func runHaloBench(b *testing.B, mode precision.Mode, overlap bool) {
	benchMeshOnce.Do(func() {
		benchMesh = mesh.New(4)
		benchDecomp = partition.MustDecompose(benchMesh, 2, 1)
	})
	w := NewWorld(2)
	var wg sync.WaitGroup
	body := func(id int) {
		defer wg.Done()
		r := &Rank{id: id, w: w}
		dom := NewDomain(benchMesh, benchDecomp, id)
		h := NewHaloExchanger(dom, r)
		const nlev = 30
		sens := dom.NewField("phi", nlev+1)
		h.Register(sens)
		for _, name := range []string{"mass", "theta", "w", "u"} {
			h.RegisterInsensitive(dom.NewField(name, nlev))
		}
		h.SetMode(mode)
		interior := func() float64 {
			var s float64
			for i := range sens.Data {
				s += sens.Data[i]*1.0000001 + float64(i%7)
			}
			return s
		}
		if id == 0 {
			b.SetBytes(h.BytesPerExchange())
			b.ResetTimer()
		}
		var sink float64
		for n := 0; n < b.N; n++ {
			if overlap {
				h.Start()
				sink += interior()
				h.Finish()
			} else {
				h.Exchange()
				sink += interior()
			}
		}
		benchSink = sink
	}
	wg.Add(2)
	go body(1)
	body(0)
	wg.Wait()
}

func BenchmarkHaloExchange(b *testing.B) {
	cases := []struct {
		name    string
		mode    precision.Mode
		overlap bool
	}{
		{"blocking/fp64", precision.DP, false},
		{"overlap/fp64", precision.DP, true},
		{"blocking/mixed", precision.Mixed, false},
		{"overlap/mixed", precision.Mixed, true},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) { runHaloBench(b, bc.mode, bc.overlap) })
	}
}
