package comm

import (
	"testing"
)

func TestBroadcast(t *testing.T) {
	Run(5, func(r *Rank) {
		var payload []float64
		if r.ID() == 2 {
			payload = []float64{3, 1, 4, 1, 5}
		}
		got := r.Broadcast(2, payload)
		want := []float64{3, 1, 4, 1, 5}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("rank %d: got %v", r.ID(), got)
				return
			}
		}
	})
}

func TestGather(t *testing.T) {
	Run(4, func(r *Rank) {
		data := []float64{float64(r.ID()), float64(r.ID() * 10)}
		parts := r.Gather(0, data)
		if r.ID() != 0 {
			if parts != nil {
				t.Errorf("rank %d: non-root got parts", r.ID())
			}
			return
		}
		for src := 0; src < 4; src++ {
			if parts[src][0] != float64(src) || parts[src][1] != float64(src*10) {
				t.Errorf("root: parts[%d] = %v", src, parts[src])
			}
		}
	})
}

func TestAllGatherVariableLengths(t *testing.T) {
	Run(4, func(r *Rank) {
		data := make([]float64, r.ID()+1) // ragged payloads
		for i := range data {
			data[i] = float64(r.ID()*100 + i)
		}
		parts := r.AllGather(data)
		if len(parts) != 4 {
			t.Fatalf("rank %d: %d parts", r.ID(), len(parts))
		}
		for src := 0; src < 4; src++ {
			if len(parts[src]) != src+1 {
				t.Fatalf("rank %d: parts[%d] has len %d", r.ID(), src, len(parts[src]))
			}
			for i, v := range parts[src] {
				if v != float64(src*100+i) {
					t.Fatalf("rank %d: parts[%d][%d] = %v", r.ID(), src, i, v)
				}
			}
		}
	})
}

func TestScatter(t *testing.T) {
	Run(3, func(r *Rank) {
		var parts [][]float64
		if r.ID() == 1 {
			parts = [][]float64{{0, 0}, {1, 11}, {2, 22}}
		}
		got := r.Scatter(1, parts)
		if got[0] != float64(r.ID()) || got[1] != float64(r.ID()*11) {
			t.Errorf("rank %d: got %v", r.ID(), got)
		}
	})
}

func TestCollectivesCompose(t *testing.T) {
	// Scatter + local work + gather round-trips a dataset.
	Run(4, func(r *Rank) {
		var parts [][]float64
		if r.ID() == 0 {
			parts = [][]float64{{1}, {2}, {3}, {4}}
		}
		x := r.Scatter(0, parts)
		x[0] *= 2
		back := r.Gather(0, x)
		if r.ID() == 0 {
			for i, p := range back {
				if p[0] != float64((i+1)*2) {
					t.Errorf("back[%d] = %v", i, p)
				}
			}
		}
	})
}
