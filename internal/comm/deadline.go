package comm

// Deadline-bounded waits. Every blocking primitive of the transport has
// a timeout variant here, so a dead or stalled rank surfaces as a typed
// error naming exactly which peers delivered and which never arrived,
// instead of hanging the binary. The resilient distributed runner
// (core.RunDistributedDynamicsResilient) treats these errors as
// rank-failure detections and rolls back to the last checkpoint epoch.

import (
	"fmt"
	"time"
)

// TimeoutError reports a deadline-bounded wait that expired: the
// operation, the waiting rank, and the split of peers into those whose
// messages (or barrier arrivals) were observed and those still missing.
type TimeoutError struct {
	Op      string // "barrier", "wait_all", "halo_finish"
	Rank    int
	Wait    time.Duration
	Arrived []int
	Missing []int
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("comm: rank %d %s timed out after %v: arrived %v, missing %v",
		e.Rank, e.Op, e.Wait, e.Arrived, e.Missing)
}

// waitTimer completes the request like Wait but gives up at deadline,
// reporting whether the message arrived. t must be a stopped/drained
// timer owned by the caller; it is reset here and left stopped, so one
// timer serves a whole request slice without per-wait allocations.
func (q *Request) waitTimer(t *time.Timer, deadline time.Time) bool {
	if !q.pending {
		return true
	}
	r := q.rank
	d := time.Until(deadline)
	if d <= 0 {
		return false
	}
	t.Reset(d)
	select {
	case m := <-r.w.boxes[r.id][q.from]:
		if !t.Stop() {
			<-t.C
		}
		q.complete(m)
		return true
	case <-t.C:
		return false
	}
}

// newWaitTimer returns a stopped, drained timer for waitTimer. Cold
// path: call once and reuse.
func newWaitTimer() *time.Timer {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return t
}

// WaitAllDeadline completes every request in the slice but gives up d
// after the call, returning a *TimeoutError naming the source ranks
// whose messages arrived and those that never delivered. Requests still
// pending after an error may be completed later with Wait; the
// resilience layer instead abandons the whole world.
func (r *Rank) WaitAllDeadline(reqs []Request, d time.Duration) error {
	t := newWaitTimer()
	defer t.Stop()
	deadline := time.Now().Add(d)
	timedOut := false
	for i := range reqs {
		if !reqs[i].waitTimer(t, deadline) {
			timedOut = true
		}
	}
	if !timedOut {
		return nil
	}
	return waitAllTimeoutError(r.id, "wait_all", d, reqs)
}

// waitAllTimeoutError snapshots the arrival state of a request slice
// into a TimeoutError.
func waitAllTimeoutError(rank int, op string, d time.Duration, reqs []Request) *TimeoutError {
	err := &TimeoutError{Op: op, Rank: rank, Wait: d}
	for i := range reqs {
		if reqs[i].rank == nil {
			continue // completed-at-post send handles carry no source
		}
		if reqs[i].pending {
			err.Missing = append(err.Missing, reqs[i].from)
		} else {
			err.Arrived = append(err.Arrived, reqs[i].from)
		}
	}
	return err
}

// SetDeadline bounds every subsequent Finish: if a peer's halo message
// has not arrived d after the wait begins, Finish panics with a
// *TimeoutError naming the peers that delivered and those that did not.
// The resilient runner recovers the panic and turns it into a rollback;
// an unattended run gets the rank dump in the crash report instead of a
// silent hang. d <= 0 restores unbounded waits.
func (h *HaloExchanger) SetDeadline(d time.Duration) {
	if d <= 0 {
		h.deadline = 0
		return
	}
	h.deadline = d
	if h.dlTimer == nil {
		h.dlTimer = newWaitTimer()
	}
	// Timeout escalation lives behind a function value so the hot-path
	// allocation lint does not charge the (cold, terminal) error
	// construction to Finish.
	h.onTimeout = func() {
		panic(waitAllTimeoutError(h.rank.id, "halo_finish", h.deadline, h.recvReqs))
	}
}

// waitAllDeadline is Finish's deadline-bounded wait leg: completes the
// posted receives, escalating through onTimeout when a peer never
// delivers within the configured deadline.
func (h *HaloExchanger) waitAllDeadline() {
	deadline := time.Now().Add(h.deadline)
	for i := range h.recvReqs {
		if !h.recvReqs[i].waitTimer(h.dlTimer, deadline) {
			h.onTimeout()
		}
	}
}
