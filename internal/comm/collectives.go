package comm

// Collective operations beyond the reductions in comm.go. The solver
// itself needs no global communication (§3.1.2), but initialization,
// diagnostics and the grouped I/O layer use gather/broadcast patterns.

// Broadcast distributes root's data to every rank and returns it (the
// root passes its payload; other ranks pass nil).
func (r *Rank) Broadcast(root int, data []float64) []float64 {
	const tag = -7801
	if r.id == root {
		for dst := 0; dst < r.w.n; dst++ {
			if dst == root {
				continue
			}
			// Send copies into a transport-owned buffer; receivers own
			// the slice Recv returns.
			r.Send(dst, tag, data)
		}
		return data
	}
	return r.Recv(root, tag)
}

// Gather collects every rank's payload at the root, ordered by rank.
// Non-root ranks receive nil.
func (r *Rank) Gather(root int, data []float64) [][]float64 {
	const tag = -7802
	if r.id != root {
		r.Send(root, tag, data)
		return nil
	}
	out := make([][]float64, r.w.n)
	out[root] = append([]float64(nil), data...)
	for src := 0; src < r.w.n; src++ {
		if src == root {
			continue
		}
		out[src] = r.Recv(src, tag)
	}
	return out
}

// AllGather gathers every rank's payload everywhere (gather + broadcast
// of the concatenation; payload lengths may differ per rank).
func (r *Rank) AllGather(data []float64) [][]float64 {
	const root = 0
	parts := r.Gather(root, data)
	// Root flattens with a length prefix per rank, then broadcasts.
	var flat []float64
	if r.id == root {
		flat = append(flat, float64(len(parts)))
		for _, p := range parts {
			flat = append(flat, float64(len(p)))
			flat = append(flat, p...)
		}
	}
	flat = r.Broadcast(root, flat)
	n := int(flat[0])
	out := make([][]float64, n)
	pos := 1
	for i := 0; i < n; i++ {
		l := int(flat[pos])
		pos++
		out[i] = flat[pos : pos+l]
		pos += l
	}
	return out
}

// Scatter distributes per-rank payloads from the root; every rank
// receives its slice (the root passes parts with one entry per rank).
func (r *Rank) Scatter(root int, parts [][]float64) []float64 {
	const tag = -7803
	if r.id == root {
		for dst := 0; dst < r.w.n; dst++ {
			if dst == root {
				continue
			}
			r.Send(dst, tag, parts[dst])
		}
		return parts[root]
	}
	return r.Recv(root, tag)
}
