package partition

import (
	"math/rand"
	"sort"
)

// KWay partitions the graph into nparts parts of near-equal vertex weight
// with small edge cut, by multilevel recursive bisection. The result maps
// each vertex to its part in [0, nparts). The seed makes the (randomized)
// matching and growing deterministic.
func KWay(g *Graph, nparts int, seed int64) []int32 {
	part := make([]int32, g.NumVertices())
	if nparts <= 1 {
		return part
	}
	verts := make([]int32, g.NumVertices())
	for i := range verts {
		verts[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(seed))
	recursiveBisect(g, verts, 0, nparts, part, rng)
	return part
}

// recursiveBisect splits the induced subgraph over verts into parts
// [base, base+nparts), writing assignments into part.
func recursiveBisect(g *Graph, verts []int32, base int32, nparts int, part []int32, rng *rand.Rand) {
	if nparts == 1 {
		for _, v := range verts {
			part[v] = base
		}
		return
	}
	leftParts := nparts / 2
	rightParts := nparts - leftParts
	// Split vertex weight proportionally to the part counts.
	sub := induced(g, verts)
	side := bisect(sub, float64(leftParts)/float64(nparts), rng)
	var left, right []int32
	for i, v := range verts {
		if side[i] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	recursiveBisect(g, left, base, leftParts, part, rng)
	recursiveBisect(g, right, base+int32(leftParts), rightParts, part, rng)
}

// induced extracts the subgraph over verts (renumbered 0..len-1),
// dropping edges that leave the subset.
func induced(g *Graph, verts []int32) *Graph {
	local := make(map[int32]int32, len(verts))
	for i, v := range verts {
		local[v] = int32(i)
	}
	xadj := make([]int32, len(verts)+1)
	var adjncy, edgew []int32
	vertw := make([]int32, len(verts))
	for i, v := range verts {
		vertw[i] = g.vertWeight(v)
		for k := g.Xadj[v]; k < g.Xadj[v+1]; k++ {
			if lu, ok := local[g.Adjncy[k]]; ok {
				adjncy = append(adjncy, lu)
				edgew = append(edgew, g.edgeWeight(k))
			}
		}
		xadj[i+1] = int32(len(adjncy))
	}
	return &Graph{Xadj: xadj, Adjncy: adjncy, EdgeW: edgew, VertW: vertw}
}

// coarse holds one level of the multilevel hierarchy.
type coarse struct {
	g     *Graph
	cmap  []int32 // fine vertex -> coarse vertex
	finer *coarse
}

// bisect partitions g into two sides with the given target weight
// fraction on side 0, using multilevel coarsening + greedy growing + FM
// refinement. It returns a 0/1 side per vertex.
func bisect(g *Graph, frac float64, rng *rand.Rand) []int8 {
	// Build the coarsening hierarchy.
	level := &coarse{g: g}
	for level.g.NumVertices() > 64 {
		next := coarsen(level.g, rng)
		if next.g.NumVertices() >= level.g.NumVertices() {
			break // matching stalled (e.g. star graphs)
		}
		next.finer = level
		level = next
	}

	side := growBisection(level.g, frac, rng)
	refineFM(level.g, side, frac, 8)

	// Uncoarsen with refinement at each level.
	for level.finer != nil {
		finer := level.finer
		fineSide := make([]int8, finer.g.NumVertices())
		for v := range fineSide {
			fineSide[v] = side[level.cmap[v]]
		}
		side = fineSide
		refineFM(finer.g, side, frac, 8)
		level = finer
	}
	return side
}

// coarsen contracts a heavy-edge matching of g.
func coarsen(g *Graph, rng *rand.Rand) *coarse {
	n := g.NumVertices()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	var nc int32
	cmap := make([]int32, n)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		// Heaviest unmatched neighbor.
		best, bestW := int32(-1), int32(-1)
		for k := g.Xadj[v]; k < g.Xadj[v+1]; k++ {
			u := g.Adjncy[k]
			if u != v && match[u] < 0 && g.edgeWeight(k) > bestW {
				best, bestW = u, g.edgeWeight(k)
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
			cmap[v] = nc
			cmap[best] = nc
		} else {
			match[v] = v
			cmap[v] = nc
		}
		nc++
	}

	// Build the contracted graph with summed weights.
	vertw := make([]int32, nc)
	type edge struct{ u, w int32 }
	adj := make([][]edge, nc)
	for v := int32(0); v < int32(n); v++ {
		cv := cmap[v]
		vertw[cv] += g.vertWeight(v)
		for k := g.Xadj[v]; k < g.Xadj[v+1]; k++ {
			cu := cmap[g.Adjncy[k]]
			if cu == cv {
				continue
			}
			merged := false
			for i := range adj[cv] {
				if adj[cv][i].u == cu {
					adj[cv][i].w += g.edgeWeight(k)
					merged = true
					break
				}
			}
			if !merged {
				adj[cv] = append(adj[cv], edge{cu, g.edgeWeight(k)})
			}
		}
	}
	xadj := make([]int32, nc+1)
	var adjncy, edgew []int32
	for v := int32(0); v < nc; v++ {
		for _, e := range adj[v] {
			adjncy = append(adjncy, e.u)
			edgew = append(edgew, e.w)
		}
		xadj[v+1] = int32(len(adjncy))
	}
	return &coarse{
		g:    &Graph{Xadj: xadj, Adjncy: adjncy, EdgeW: edgew, VertW: vertw},
		cmap: cmap,
	}
}

// growBisection seeds a region at a random vertex and grows it by BFS
// until it holds the target weight fraction.
func growBisection(g *Graph, frac float64, rng *rand.Rand) []int8 {
	n := g.NumVertices()
	side := make([]int8, n)
	for i := range side {
		side[i] = 1
	}
	target := int64(frac * float64(g.TotalVertWeight()))
	if n == 0 {
		return side
	}
	var bestSide []int8
	bestCut := int64(-1)
	// A few random restarts keep the greedy pass from a bad seed.
	for try := 0; try < 4; try++ {
		s := make([]int8, n)
		for i := range s {
			s[i] = 1
		}
		seed := int32(rng.Intn(n))
		var grown int64
		queue := []int32{seed}
		inQueue := make([]bool, n)
		inQueue[seed] = true
		for len(queue) > 0 && grown < target {
			v := queue[0]
			queue = queue[1:]
			if s[v] == 0 {
				continue
			}
			s[v] = 0
			grown += int64(g.vertWeight(v))
			for k := g.Xadj[v]; k < g.Xadj[v+1]; k++ {
				u := g.Adjncy[k]
				if s[u] == 1 && !inQueue[u] {
					inQueue[u] = true
					queue = append(queue, u)
				}
			}
		}
		cut := edgeCut2(g, s)
		if bestCut < 0 || cut < bestCut {
			bestCut, bestSide = cut, s
		}
	}
	copy(side, bestSide)
	return side
}

func edgeCut2(g *Graph, side []int8) int64 {
	var cut int64
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for k := g.Xadj[v]; k < g.Xadj[v+1]; k++ {
			if side[g.Adjncy[k]] != side[v] {
				cut += int64(g.edgeWeight(k))
			}
		}
	}
	return cut / 2
}

// refineFM runs Fiduccia–Mattheyses-style passes: repeatedly move the
// boundary vertex with the best gain that keeps balance within tolerance,
// accepting the best prefix of moves in each pass.
func refineFM(g *Graph, side []int8, frac float64, maxPasses int) {
	n := g.NumVertices()
	total := g.TotalVertWeight()
	target0 := int64(frac * float64(total))
	// Tight tolerance: 1% of total weight or the heaviest vertex,
	// whichever is larger (a single vertex must always be movable).
	var maxVW int64 = 1
	if g.VertW != nil {
		for _, w := range g.VertW {
			if int64(w) > maxVW {
				maxVW = int64(w)
			}
		}
	}
	tol := total/100 + 1
	if maxVW > tol {
		tol = maxVW
	}

	weight0 := int64(0)
	for v := int32(0); v < int32(n); v++ {
		if side[v] == 0 {
			weight0 += int64(g.vertWeight(v))
		}
	}

	gain := func(v int32) int64 {
		var ext, intl int64
		for k := g.Xadj[v]; k < g.Xadj[v+1]; k++ {
			if side[g.Adjncy[k]] != side[v] {
				ext += int64(g.edgeWeight(k))
			} else {
				intl += int64(g.edgeWeight(k))
			}
		}
		return ext - intl
	}

	// Rebalance first: while one side is too heavy, move the
	// least-damaging boundary vertex off it, regardless of gain sign.
	for iter := 0; iter < n; iter++ {
		var heavy int8
		if weight0 > target0+tol {
			heavy = 0
		} else if weight0 < target0-tol {
			heavy = 1
		} else {
			break
		}
		best, bestGain := int32(-1), int64(-1<<62)
		for v := int32(0); v < int32(n); v++ {
			if side[v] != heavy {
				continue
			}
			onBoundary := false
			for k := g.Xadj[v]; k < g.Xadj[v+1]; k++ {
				if side[g.Adjncy[k]] != heavy {
					onBoundary = true
					break
				}
			}
			if !onBoundary {
				continue
			}
			if gv := gain(v); gv > bestGain {
				best, bestGain = v, gv
			}
		}
		if best < 0 {
			break
		}
		w := int64(g.vertWeight(best))
		if heavy == 0 {
			weight0 -= w
		} else {
			weight0 += w
		}
		side[best] = 1 - side[best]
	}

	for pass := 0; pass < maxPasses; pass++ {
		// Collect boundary vertices sorted by gain.
		var boundary []int32
		for v := int32(0); v < int32(n); v++ {
			for k := g.Xadj[v]; k < g.Xadj[v+1]; k++ {
				if side[g.Adjncy[k]] != side[v] {
					boundary = append(boundary, v)
					break
				}
			}
		}
		if len(boundary) == 0 {
			return
		}
		sort.Slice(boundary, func(i, j int) bool {
			return gain(boundary[i]) > gain(boundary[j])
		})
		improved := false
		for _, v := range boundary {
			gv := gain(v)
			if gv <= 0 {
				break
			}
			w := int64(g.vertWeight(v))
			var newW0 int64
			if side[v] == 0 {
				newW0 = weight0 - w
			} else {
				newW0 = weight0 + w
			}
			if newW0 < target0-tol || newW0 > target0+tol {
				continue
			}
			side[v] = 1 - side[v]
			weight0 = newW0
			improved = true
		}
		if !improved {
			return
		}
	}
}
