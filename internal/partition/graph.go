// Package partition provides the horizontal domain decomposition used by
// the model: a multilevel graph partitioner in the style of METIS
// (Karypis & Kumar 1998), which the paper uses to balance load and
// minimize halo communication across MPI processes (§3.1.2).
//
// The partitioner follows the classic multilevel scheme: heavy-edge
// matching coarsens the graph, a greedy region-growing pass bisects the
// coarsest graph, and Fiduccia–Mattheyses-style boundary refinement runs
// at every level of the uncoarsening. K-way partitions are produced by
// recursive bisection.
package partition

// Graph is an undirected graph in compressed adjacency (CSR) form, the
// same layout METIS uses. Vertex v's neighbors are
// Adjncy[Xadj[v]:Xadj[v+1]]; EdgeW carries the matching edge weights and
// VertW the vertex weights (both default to 1 when nil).
type Graph struct {
	Xadj   []int32
	Adjncy []int32
	EdgeW  []int32 // parallel to Adjncy; nil means all 1
	VertW  []int32 // per vertex; nil means all 1
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Xadj) - 1 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int32 { return g.Xadj[v+1] - g.Xadj[v] }

// vertWeight returns the weight of vertex v (1 when VertW is nil).
func (g *Graph) vertWeight(v int32) int32 {
	if g.VertW == nil {
		return 1
	}
	return g.VertW[v]
}

// edgeWeight returns the weight of adjacency slot k (1 when EdgeW is nil).
func (g *Graph) edgeWeight(k int32) int32 {
	if g.EdgeW == nil {
		return 1
	}
	return g.EdgeW[k]
}

// TotalVertWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertWeight() int64 {
	if g.VertW == nil {
		return int64(g.NumVertices())
	}
	var s int64
	for _, w := range g.VertW {
		s += int64(w)
	}
	return s
}

// NewGraph builds a graph from an adjacency-list representation.
func NewGraph(adj [][]int32) *Graph {
	n := len(adj)
	xadj := make([]int32, n+1)
	for v, nbrs := range adj {
		xadj[v+1] = xadj[v] + int32(len(nbrs))
	}
	adjncy := make([]int32, xadj[n])
	for v, nbrs := range adj {
		copy(adjncy[xadj[v]:], nbrs)
	}
	return &Graph{Xadj: xadj, Adjncy: adjncy}
}

// EdgeCut returns the total weight of edges crossing between parts.
func (g *Graph) EdgeCut(part []int32) int64 {
	var cut int64
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for k := g.Xadj[v]; k < g.Xadj[v+1]; k++ {
			u := g.Adjncy[k]
			if part[u] != part[v] {
				cut += int64(g.edgeWeight(k))
			}
		}
	}
	return cut / 2
}

// PartWeights returns the total vertex weight of each part.
func (g *Graph) PartWeights(part []int32, nparts int) []int64 {
	w := make([]int64, nparts)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		w[part[v]] += int64(g.vertWeight(v))
	}
	return w
}

// Imbalance returns max(partWeight)/idealWeight; 1.0 is perfect balance.
func (g *Graph) Imbalance(part []int32, nparts int) float64 {
	w := g.PartWeights(part, nparts)
	var maxW int64
	for _, x := range w {
		if x > maxW {
			maxW = x
		}
	}
	ideal := float64(g.TotalVertWeight()) / float64(nparts)
	return float64(maxW) / ideal
}
