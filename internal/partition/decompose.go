package partition

import (
	"errors"
	"fmt"

	"gristgo/internal/mesh"
)

// FromMesh builds the cell-adjacency graph of a C-grid mesh, the input to
// the domain decomposition.
func FromMesh(m *mesh.Mesh) *Graph {
	return &Graph{
		Xadj:   m.CellOff,
		Adjncy: m.CellCell,
	}
}

// Decomposition describes one part (MPI process / core group) of a
// partitioned mesh: the cells it owns, the halo cells it reads from
// neighbors, and the neighbor parts it exchanges with.
type Decomposition struct {
	NParts int
	Part   []int32 // cell -> part

	// Epoch versions successive decompositions of one elastic run: 0 for
	// a static decomposition, incremented by Elastic.Resize. Exchange
	// plans and checkpoint manifests derived from a decomposition carry
	// its epoch so stale layouts are detectable.
	Epoch int

	Owned []([]int32)         // per part: owned cell ids
	Halo  []([]int32)         // per part: remote cells needed (one ring)
	Peers []map[int32][]int32 // per part: peer part -> cells received from it
}

// ErrEmptyParts reports that a requested decomposition left at least one
// part with no owned cells — the multilevel bisection cannot cut that
// many well-connected regions out of the mesh. Callers that can shrink
// (elastic membership) should retry with fewer parts.
var ErrEmptyParts = errors.New("partition: decomposition has empty parts")

// Decompose partitions the mesh cells into nparts domains and derives the
// one-ring halos each domain needs for the C-grid stencils. Every part is
// guaranteed non-empty; when nparts exceeds what the mesh supports (tiny
// meshes, nparts > NCells) the error wraps ErrEmptyParts instead of
// returning a decomposition with silent zero-cell ranks.
func Decompose(m *mesh.Mesh, nparts int, seed int64) (*Decomposition, error) {
	return DecomposeWeighted(m, nparts, seed, nil)
}

// DecomposeWeighted is Decompose with per-cell load weights (nil: uniform).
// The multilevel partitioner balances summed cell weight per part, so a
// rebalance pass can feed measured per-cell cost back into the cut.
func DecomposeWeighted(m *mesh.Mesh, nparts int, seed int64, cellW []int32) (*Decomposition, error) {
	if nparts < 1 {
		return nil, fmt.Errorf("partition: nparts = %d, need at least 1", nparts)
	}
	if nparts > m.NCells {
		return nil, fmt.Errorf("partition: %d parts over %d cells: %w", nparts, m.NCells, ErrEmptyParts)
	}
	g := FromMesh(m)
	if cellW != nil {
		if len(cellW) != m.NCells {
			return nil, fmt.Errorf("partition: %d cell weights for %d cells", len(cellW), m.NCells)
		}
		g.VertW = cellW
	}
	part := KWay(g, nparts, seed)
	d := NewDecomposition(m, part, nparts)
	for p := 0; p < nparts; p++ {
		if len(d.Owned[p]) == 0 {
			return nil, fmt.Errorf("partition: %d-way split of %d cells left part %d empty (seed %d): %w",
				nparts, m.NCells, p, seed, ErrEmptyParts)
		}
	}
	return d, nil
}

// MustDecompose is Decompose for static configurations whose part count
// is known to fit the mesh; it panics on the empty-part error.
func MustDecompose(m *mesh.Mesh, nparts int, seed int64) *Decomposition {
	d, err := Decompose(m, nparts, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// NewDecomposition derives halo structure from an existing cell->part map.
func NewDecomposition(m *mesh.Mesh, part []int32, nparts int) *Decomposition {
	d := &Decomposition{
		NParts: nparts,
		Part:   part,
		Owned:  make([][]int32, nparts),
		Halo:   make([][]int32, nparts),
		Peers:  make([]map[int32][]int32, nparts),
	}
	for p := 0; p < nparts; p++ {
		d.Peers[p] = make(map[int32][]int32)
	}
	for c := int32(0); c < int32(m.NCells); c++ {
		d.Owned[part[c]] = append(d.Owned[part[c]], c)
	}
	// Halo discovery runs one part at a time so the dedup stamp cannot
	// be clobbered by interleaved parts (a cell bordering one part
	// through several owned cells must appear in that part's halo
	// exactly once).
	seen := make([]int32, m.NCells)
	for i := range seen {
		seen[i] = -1
	}
	for p := int32(0); p < int32(nparts); p++ {
		for _, c := range d.Owned[p] {
			for _, nb := range m.CellCells(c) {
				q := part[nb]
				if q != p && seen[nb] != p {
					seen[nb] = p
					d.Halo[p] = append(d.Halo[p], nb)
					d.Peers[p][q] = append(d.Peers[p][q], nb)
				}
			}
		}
	}
	return d
}

// HaloCells returns the halo size of part p.
func (d *Decomposition) HaloCells(p int) int { return len(d.Halo[p]) }

// MaxHaloCells returns the largest halo over all parts.
func (d *Decomposition) MaxHaloCells() int {
	maxH := 0
	for p := 0; p < d.NParts; p++ {
		if h := len(d.Halo[p]); h > maxH {
			maxH = h
		}
	}
	return maxH
}

// MaxPeers returns the largest number of exchange peers over all parts.
func (d *Decomposition) MaxPeers() int {
	maxP := 0
	for p := 0; p < d.NParts; p++ {
		if n := len(d.Peers[p]); n > maxP {
			maxP = n
		}
	}
	return maxP
}

// HaloRings returns the cells within the given number of topological
// rings outside part p (ring 1 = Halo[p]). The FCT tracer limiter needs
// ring-2 data: the provisional ratios of a neighbor depend on that
// neighbor's own neighbors.
func (d *Decomposition) HaloRings(m *mesh.Mesh, p int, rings int) []int32 {
	inSet := make(map[int32]int8, len(d.Owned[p])*2)
	for _, c := range d.Owned[p] {
		inSet[c] = 0
	}
	frontier := d.Owned[p]
	var halo []int32
	for r := 1; r <= rings; r++ {
		var next []int32
		for _, c := range frontier {
			for _, nb := range m.CellCells(c) {
				if _, ok := inSet[nb]; ok {
					continue
				}
				inSet[nb] = int8(r)
				next = append(next, nb)
				halo = append(halo, nb)
			}
		}
		frontier = next
	}
	return halo
}
