package partition

import "gristgo/internal/mesh"

// FromMesh builds the cell-adjacency graph of a C-grid mesh, the input to
// the domain decomposition.
func FromMesh(m *mesh.Mesh) *Graph {
	return &Graph{
		Xadj:   m.CellOff,
		Adjncy: m.CellCell,
	}
}

// Decomposition describes one part (MPI process / core group) of a
// partitioned mesh: the cells it owns, the halo cells it reads from
// neighbors, and the neighbor parts it exchanges with.
type Decomposition struct {
	NParts int
	Part   []int32 // cell -> part

	Owned []([]int32)         // per part: owned cell ids
	Halo  []([]int32)         // per part: remote cells needed (one ring)
	Peers []map[int32][]int32 // per part: peer part -> cells received from it
}

// Decompose partitions the mesh cells into nparts domains and derives the
// one-ring halos each domain needs for the C-grid stencils.
func Decompose(m *mesh.Mesh, nparts int, seed int64) *Decomposition {
	g := FromMesh(m)
	part := KWay(g, nparts, seed)
	return NewDecomposition(m, part, nparts)
}

// NewDecomposition derives halo structure from an existing cell->part map.
func NewDecomposition(m *mesh.Mesh, part []int32, nparts int) *Decomposition {
	d := &Decomposition{
		NParts: nparts,
		Part:   part,
		Owned:  make([][]int32, nparts),
		Halo:   make([][]int32, nparts),
		Peers:  make([]map[int32][]int32, nparts),
	}
	for p := 0; p < nparts; p++ {
		d.Peers[p] = make(map[int32][]int32)
	}
	for c := int32(0); c < int32(m.NCells); c++ {
		d.Owned[part[c]] = append(d.Owned[part[c]], c)
	}
	// Halo discovery runs one part at a time so the dedup stamp cannot
	// be clobbered by interleaved parts (a cell bordering one part
	// through several owned cells must appear in that part's halo
	// exactly once).
	seen := make([]int32, m.NCells)
	for i := range seen {
		seen[i] = -1
	}
	for p := int32(0); p < int32(nparts); p++ {
		for _, c := range d.Owned[p] {
			for _, nb := range m.CellCells(c) {
				q := part[nb]
				if q != p && seen[nb] != p {
					seen[nb] = p
					d.Halo[p] = append(d.Halo[p], nb)
					d.Peers[p][q] = append(d.Peers[p][q], nb)
				}
			}
		}
	}
	return d
}

// HaloCells returns the halo size of part p.
func (d *Decomposition) HaloCells(p int) int { return len(d.Halo[p]) }

// MaxHaloCells returns the largest halo over all parts.
func (d *Decomposition) MaxHaloCells() int {
	maxH := 0
	for p := 0; p < d.NParts; p++ {
		if h := len(d.Halo[p]); h > maxH {
			maxH = h
		}
	}
	return maxH
}

// MaxPeers returns the largest number of exchange peers over all parts.
func (d *Decomposition) MaxPeers() int {
	maxP := 0
	for p := 0; p < d.NParts; p++ {
		if n := len(d.Peers[p]); n > maxP {
			maxP = n
		}
	}
	return maxP
}

// HaloRings returns the cells within the given number of topological
// rings outside part p (ring 1 = Halo[p]). The FCT tracer limiter needs
// ring-2 data: the provisional ratios of a neighbor depend on that
// neighbor's own neighbors.
func (d *Decomposition) HaloRings(m *mesh.Mesh, p int, rings int) []int32 {
	inSet := make(map[int32]int8, len(d.Owned[p])*2)
	for _, c := range d.Owned[p] {
		inSet[c] = 0
	}
	frontier := d.Owned[p]
	var halo []int32
	for r := 1; r <= rings; r++ {
		var next []int32
		for _, c := range frontier {
			for _, nb := range m.CellCells(c) {
				if _, ok := inSet[nb]; ok {
					continue
				}
				inSet[nb] = int8(r)
				next = append(next, nb)
				halo = append(halo, nb)
			}
		}
		frontier = next
	}
	return halo
}
