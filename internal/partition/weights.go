package partition

// CostWeights converts agreed per-part costs (arbitrary nonnegative
// units: seconds of leg wall time, seconds of span-attributed compute)
// into the per-cell integer load weights DecomposeWeighted consumes.
// Each part's cost is spread uniformly over its current cells and the
// per-cell rates are normalized to [1, 1000], so the next decomposition
// shrinks the regions that measured expensive and grows the cheap ones.
//
// Pure function of (part map, costs): every rank holding the same
// agreed inputs computes the identical weight vector, which keeps the
// weighted repartition agreement-free — the property the elastic
// membership protocol relies on.
//
//grist:bitwise
func CostWeights(part []int32, nparts int, cost []float64) []int32 {
	ncells := make([]int, nparts)
	for _, p := range part {
		if int(p) < nparts {
			ncells[p]++
		}
	}
	perCell := make([]float64, nparts)
	maxW := 0.0
	for p := 0; p < nparts; p++ {
		if ncells[p] == 0 || p >= len(cost) || cost[p] <= 0 {
			continue
		}
		w := cost[p] / float64(ncells[p])
		perCell[p] = w
		if w > maxW {
			maxW = w
		}
	}
	out := make([]int32, len(part))
	for c := range out {
		w := int32(1)
		if maxW > 0 {
			w = 1 + int32(perCell[part[c]]/maxW*999)
		}
		out[c] = w
	}
	return out
}
