package partition

// Elastic membership: the decomposition as a run-time object. A static
// run fixes the part count at construction; an elastic run holds an
// Elastic handle whose Resize recomputes the decomposition over an
// arbitrary surviving/joined member set — shrink after a classified rank
// death, grow when capacity returns — reusing the same multilevel path
// as the initial Decompose. Every resize bumps the decomposition epoch
// and derives its partitioner seed deterministically from (base seed,
// epoch), so any process that knows the member list and the epoch
// reproduces the identical cell->part map without communication: that
// is the second phase of the membership agreement (see DESIGN.md §11).

import (
	"fmt"
	"sort"

	"gristgo/internal/detrand"
	"gristgo/internal/mesh"
)

// Elastic tracks the current decomposition of a mesh over a mutable
// member set. Members are stable global node ids (they survive
// renumbering of parts); part p of the current decomposition is executed
// by Members()[p]. Not safe for concurrent mutation: Resize between
// legs/steps, never during an exchange round.
type Elastic struct {
	m       *mesh.Mesh
	seed    int64
	epoch   int
	members []int
	d       *Decomposition
}

// NewElastic builds the epoch-0 decomposition over the initial members.
// The member list must be non-empty and duplicate-free; it is kept in
// sorted order so every holder of the same set derives the same
// part->node mapping.
func NewElastic(m *mesh.Mesh, seed int64, members []int) (*Elastic, error) {
	e := &Elastic{m: m, seed: seed, epoch: -1}
	if _, err := e.Resize(members); err != nil {
		return nil, err
	}
	return e, nil
}

// Epoch returns the current decomposition epoch (0 after NewElastic,
// incremented by every successful Resize).
func (e *Elastic) Epoch() int { return e.epoch }

// Members returns a copy of the current sorted member node ids.
func (e *Elastic) Members() []int { return append([]int(nil), e.members...) }

// Decomposition returns the current decomposition. Its Epoch field
// matches Epoch().
func (e *Elastic) Decomposition() *Decomposition { return e.d }

// NodeOf returns the global node id executing part p.
func (e *Elastic) NodeOf(p int) int { return e.members[p] }

// PartOf returns the part executed by node id, or -1 when the node is
// not a member.
func (e *Elastic) PartOf(node int) int {
	i := sort.SearchInts(e.members, node)
	if i < len(e.members) && e.members[i] == node {
		return i
	}
	return -1
}

// Resize recomputes the decomposition over a new member set (shrink,
// grow, or plain rebalance with the same members), bumps the epoch, and
// returns the new decomposition. On error (empty member list, duplicate
// ids, more members than cells) the handle is left unchanged.
func (e *Elastic) Resize(members []int) (*Decomposition, error) {
	return e.ResizeWeighted(members, nil)
}

// ResizeWeighted is Resize with per-cell load weights forwarded to the
// partitioner (nil: uniform), for rebalancing from measured cost.
//
//grist:bitwise
func (e *Elastic) ResizeWeighted(members []int, cellW []int32) (*Decomposition, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("partition: Resize to zero members")
	}
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	for i := 1; i < len(ms); i++ {
		if ms[i] == ms[i-1] {
			return nil, fmt.Errorf("partition: Resize with duplicate member %d", ms[i])
		}
	}
	epoch := e.epoch + 1
	d, err := DecomposeWeighted(e.m, len(ms), EpochSeed(e.seed, epoch), cellW)
	if err != nil {
		return nil, err
	}
	d.Epoch = epoch
	e.epoch, e.members, e.d = epoch, ms, d
	return d, nil
}

// EpochSeed derives the partitioner seed of a decomposition epoch from
// the run's base seed — a splitmix64 step (detrand.SeedAt), so
// successive epochs explore independent cut refinements while staying
// reproducible from (seed, epoch) alone.
//
//grist:bitwise
func EpochSeed(seed int64, epoch int) int64 {
	return detrand.SeedAt(seed, epoch)
}
