package partition

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"gristgo/internal/mesh"
)

// ring builds a cycle graph of n vertices.
func ring(n int) *Graph {
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		adj[i] = []int32{int32((i + 1) % n), int32((i - 1 + n) % n)}
	}
	return NewGraph(adj)
}

// grid2d builds an w x h 4-neighbor grid graph.
func grid2d(w, h int) *Graph {
	adj := make([][]int32, w*h)
	id := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var nb []int32
			if x > 0 {
				nb = append(nb, id(x-1, y))
			}
			if x < w-1 {
				nb = append(nb, id(x+1, y))
			}
			if y > 0 {
				nb = append(nb, id(x, y-1))
			}
			if y < h-1 {
				nb = append(nb, id(x, y+1))
			}
			adj[id(x, y)] = nb
		}
	}
	return NewGraph(adj)
}

func TestKWayIsPartition(t *testing.T) {
	g := grid2d(20, 20)
	for _, k := range []int{2, 3, 4, 7, 16} {
		part := KWay(g, k, 1)
		if len(part) != g.NumVertices() {
			t.Fatalf("k=%d: wrong length", k)
		}
		counts := make([]int, k)
		for _, p := range part {
			if p < 0 || int(p) >= k {
				t.Fatalf("k=%d: part id %d out of range", k, p)
			}
			counts[p]++
		}
		for p, c := range counts {
			if c == 0 {
				t.Errorf("k=%d: part %d is empty", k, p)
			}
		}
	}
}

func TestKWayBalance(t *testing.T) {
	g := grid2d(32, 32)
	for _, k := range []int{2, 4, 8, 16} {
		part := KWay(g, k, 7)
		if imb := g.Imbalance(part, k); imb > 1.15 {
			t.Errorf("k=%d: imbalance %.3f > 1.15", k, imb)
		}
	}
}

func TestKWayCutQuality(t *testing.T) {
	// A 32x32 grid split in 4 should have a cut near 2*32 = 64; accept
	// anything under 3x the ideal.
	g := grid2d(32, 32)
	part := KWay(g, 4, 3)
	if cut := g.EdgeCut(part); cut > 192 {
		t.Errorf("4-way cut of 32x32 grid = %d, want < 192", cut)
	}
}

func TestRingBisection(t *testing.T) {
	g := ring(64)
	part := KWay(g, 2, 5)
	// A cycle's optimal bisection cut is 2.
	if cut := g.EdgeCut(part); cut > 6 {
		t.Errorf("ring bisection cut = %d, want <= 6", cut)
	}
	if imb := g.Imbalance(part, 2); imb > 1.15 {
		t.Errorf("ring imbalance %.3f", imb)
	}
}

func TestKWayDeterministicForSeed(t *testing.T) {
	g := grid2d(16, 16)
	a := KWay(g, 4, 42)
	b := KWay(g, 4, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("KWay is not deterministic for a fixed seed")
		}
	}
}

func TestKWayPropertyRandomGraphs(t *testing.T) {
	// Property: for random connected graphs, KWay always yields a valid,
	// reasonably balanced partition.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Keep parts large enough that +-1-vertex rounding cannot
		// dominate the imbalance bound.
		n := 100 + rng.Intn(200)
		adj := make([][]int32, n)
		// Random spanning path plus random chords keeps it connected.
		for i := 1; i < n; i++ {
			j := int32(i - 1)
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], int32(i))
		}
		for e := 0; e < n; e++ {
			a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
			if a == b {
				continue
			}
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		g := NewGraph(adj)
		k := 2 + rng.Intn(6)
		part := KWay(g, k, seed)
		for _, p := range part {
			if p < 0 || int(p) >= k {
				return false
			}
		}
		return g.Imbalance(part, k) < 1.6
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecomposeMesh(t *testing.T) {
	m := mesh.New(4)
	nparts := 16
	d, err := Decompose(m, nparts, 11)
	if err != nil {
		t.Fatal(err)
	}

	// Owned sets are a disjoint cover.
	total := 0
	for p := 0; p < nparts; p++ {
		total += len(d.Owned[p])
	}
	if total != m.NCells {
		t.Fatalf("owned cells cover %d of %d", total, m.NCells)
	}

	// Every halo cell of p is (a) not owned by p, (b) adjacent to an
	// owned cell of p.
	for p := 0; p < nparts; p++ {
		ownedSet := make(map[int32]bool, len(d.Owned[p]))
		for _, c := range d.Owned[p] {
			ownedSet[c] = true
		}
		for _, h := range d.Halo[p] {
			if ownedSet[h] {
				t.Fatalf("part %d: halo cell %d is owned", p, h)
			}
			adjacent := false
			for _, nb := range m.CellCells(h) {
				if ownedSet[nb] {
					adjacent = true
					break
				}
			}
			if !adjacent {
				t.Fatalf("part %d: halo cell %d not adjacent to domain", p, h)
			}
		}
	}

	// Peer lists partition the halo.
	for p := 0; p < nparts; p++ {
		n := 0
		for _, cells := range d.Peers[p] {
			n += len(cells)
		}
		if n != len(d.Halo[p]) {
			t.Fatalf("part %d: peers carry %d cells, halo %d", p, n, len(d.Halo[p]))
		}
	}
}

func TestMeshPartitionSurfaceToVolume(t *testing.T) {
	// Halo should scale like the perimeter: for G5 (10242 cells) into 16
	// parts (~640 cells each), the halo should be well under the domain
	// size.
	m := mesh.New(5)
	d, err := Decompose(m, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 16; p++ {
		if h, o := len(d.Halo[p]), len(d.Owned[p]); h > o {
			t.Errorf("part %d: halo %d exceeds owned %d", p, h, o)
		}
	}
}

// TestHaloListsHaveNoDuplicates is a regression test: a halo cell
// bordering one part through several of its owned cells must appear in
// that part's halo exactly once (duplicates silently corrupt local
// indexing in the halo exchange).
func TestHaloListsHaveNoDuplicates(t *testing.T) {
	m := mesh.New(3)
	for _, seed := range []int64{1, 2, 3, 5, 11} {
		for _, nparts := range []int{2, 3, 4, 8} {
			d, err := Decompose(m, nparts, seed)
			if err != nil {
				t.Fatal(err)
			}
			for p := 0; p < nparts; p++ {
				seen := map[int32]bool{}
				for _, c := range d.Halo[p] {
					if seen[c] {
						t.Fatalf("seed %d, %d parts: part %d has duplicate halo cell %d",
							seed, nparts, p, c)
					}
					seen[c] = true
				}
				for q, cells := range d.Peers[p] {
					seenQ := map[int32]bool{}
					for _, c := range cells {
						if seenQ[c] {
							t.Fatalf("duplicate %d in Peers[%d][%d]", c, p, q)
						}
						seenQ[c] = true
						if d.Part[c] != q {
							t.Fatalf("Peers[%d][%d] holds cell %d owned by %d", p, q, c, d.Part[c])
						}
					}
				}
			}
		}
	}
}

func TestHaloRings(t *testing.T) {
	m := mesh.New(3)
	d, err := Decompose(m, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		ring1 := d.HaloRings(m, p, 1)
		if len(ring1) != len(d.Halo[p]) {
			t.Fatalf("part %d: ring-1 %d != halo %d", p, len(ring1), len(d.Halo[p]))
		}
		ring2 := d.HaloRings(m, p, 2)
		if len(ring2) <= len(ring1) {
			t.Fatalf("part %d: ring-2 adds nothing", p)
		}
		// Every ring-2 cell is adjacent to the owned+ring1 set.
		set := map[int32]bool{}
		for _, c := range d.Owned[p] {
			set[c] = true
		}
		for _, c := range ring1 {
			set[c] = true
		}
		for _, c := range ring2[len(ring1):] {
			adjacent := false
			for _, nb := range m.CellCells(c) {
				if set[nb] {
					adjacent = true
					break
				}
			}
			if !adjacent {
				t.Fatalf("part %d: outer ring cell %d detached", p, c)
			}
		}
	}
}

// TestDecomposeRejectsEmptyParts is the regression test for the silent
// empty-part failure mode: asking for more parts than a tiny mesh can
// support must be a typed error, not a decomposition with zero-cell
// ranks that later wedges a distributed run.
func TestDecomposeRejectsEmptyParts(t *testing.T) {
	m := mesh.New(0) // 12 cells
	if _, err := Decompose(m, m.NCells+1, 1); !errors.Is(err, ErrEmptyParts) {
		t.Fatalf("nparts > NCells: got err %v, want ErrEmptyParts", err)
	}
	// Over-partitioning a tiny mesh: every requested count that the
	// bisection cannot fill must error rather than return empty parts.
	for nparts := 2; nparts <= m.NCells; nparts++ {
		d, err := Decompose(m, nparts, 1)
		if err != nil {
			if !errors.Is(err, ErrEmptyParts) {
				t.Fatalf("nparts=%d: unexpected error %v", nparts, err)
			}
			continue
		}
		for p := 0; p < nparts; p++ {
			if len(d.Owned[p]) == 0 {
				t.Fatalf("nparts=%d: part %d empty but Decompose returned no error", nparts, p)
			}
		}
	}
	if _, err := Decompose(m, 0, 1); err == nil {
		t.Fatal("nparts=0 accepted")
	}
}

func TestDecomposeWeightedBalancesWeight(t *testing.T) {
	m := mesh.New(3)
	// Tenfold weight on the first quarter of the cells: the weighted cut
	// must shift cells away from the heavy region.
	w := make([]int32, m.NCells)
	for c := range w {
		if c < m.NCells/4 {
			w[c] = 10
		} else {
			w[c] = 1
		}
	}
	d, err := DecomposeWeighted(m, 4, 5, w)
	if err != nil {
		t.Fatal(err)
	}
	var loads [4]int64
	total := int64(0)
	for c, p := range d.Part {
		loads[p] += int64(w[c])
		total += int64(w[c])
	}
	ideal := float64(total) / 4
	for p, l := range loads {
		if float64(l) > 1.3*ideal {
			t.Errorf("part %d carries weight %d, ideal %.0f", p, l, ideal)
		}
	}
}

func TestElasticResizeDeterministicEpochs(t *testing.T) {
	m := mesh.New(3)
	e1, err := NewElastic(m, 42, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if e1.Epoch() != 0 || e1.Decomposition().Epoch != 0 || e1.Decomposition().NParts != 4 {
		t.Fatalf("fresh elastic: epoch %d, nparts %d", e1.Epoch(), e1.Decomposition().NParts)
	}
	// Two handles replaying the same membership history agree bit-for-bit
	// at every epoch — the property the two-phase membership agreement
	// relies on (no part map is ever communicated, only the member list).
	e2, _ := NewElastic(m, 42, []int{0, 1, 2, 3})
	history := [][]int{{0, 2, 3}, {0, 2, 3, 4}, {0, 2, 3, 4}}
	for step, members := range history {
		d1, err1 := e1.Resize(members)
		d2, err2 := e2.Resize(members)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if d1.Epoch != step+1 || e1.Epoch() != step+1 {
			t.Fatalf("resize %d: epoch %d", step, d1.Epoch)
		}
		for c := range d1.Part {
			if d1.Part[c] != d2.Part[c] {
				t.Fatalf("resize %d: replayed handles disagree at cell %d", step, c)
			}
		}
		for p := 0; p < d1.NParts; p++ {
			if len(d1.Owned[p]) == 0 {
				t.Fatalf("resize %d: part %d empty", step, p)
			}
		}
	}
	// Same member count, different epoch: the seed moved, and the
	// mapping part -> node tracks the sorted member list.
	if got := e1.NodeOf(3); got != 4 {
		t.Fatalf("NodeOf(3) = %d, want 4", got)
	}
	if e1.PartOf(1) != -1 || e1.PartOf(2) != 1 {
		t.Fatalf("PartOf: node1=%d node2=%d", e1.PartOf(1), e1.PartOf(2))
	}
}

func TestElasticResizeRejectsBadMembership(t *testing.T) {
	m := mesh.New(0)
	e, err := NewElastic(m, 1, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Epoch()
	if _, err := e.Resize(nil); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := e.Resize([]int{0, 1, 1}); err == nil {
		t.Fatal("duplicate member accepted")
	}
	members := make([]int, m.NCells+1)
	for i := range members {
		members[i] = i
	}
	if _, err := e.Resize(members); !errors.Is(err, ErrEmptyParts) {
		t.Fatalf("oversized membership: got %v, want ErrEmptyParts", err)
	}
	if e.Epoch() != before {
		t.Fatal("failed Resize mutated the handle")
	}
}
