package swgomp

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"gristgo/internal/mesh"
	"gristgo/internal/sunway"
)

func TestTargetParallelDoComputesGradKE(t *testing.T) {
	// The Fig. 4 example: compute the kinetic-energy gradient tendency
	// on CPEs and compare against the serial MPE-style loop.
	m := mesh.New(3)
	nlev := 5
	ke := make([]float64, m.NCells*nlev)
	for i := range ke {
		ke[i] = math.Sin(float64(i) * 0.17)
	}
	serial := make([]float64, m.NEdges*nlev)
	for e := 0; e < m.NEdges; e++ {
		c0, c1 := int(m.EdgeCell[e][0]), int(m.EdgeCell[e][1])
		for k := 0; k < nlev; k++ {
			serial[e*nlev+k] = -(ke[c1*nlev+k] - ke[c0*nlev+k]) / (6.371e6 * m.DcEdge[e])
		}
	}

	rt := New()
	defer rt.Shutdown()
	par := make([]float64, m.NEdges*nlev)
	rt.Target(func(team *Team) {
		team.ParallelDo(m.NEdges, func(e, _ int) {
			c0, c1 := int(m.EdgeCell[e][0]), int(m.EdgeCell[e][1])
			for k := 0; k < nlev; k++ {
				par[e*nlev+k] = -(ke[c1*nlev+k] - ke[c0*nlev+k]) / (6.371e6 * m.DcEdge[e])
			}
		})
	})
	for i := range serial {
		if par[i] != serial[i] {
			t.Fatalf("parallel result differs at %d: %v vs %v", i, par[i], serial[i])
		}
	}
}

func TestParallelDoUsesManyCPEs(t *testing.T) {
	rt := New()
	defer rt.Shutdown()
	var mu sync.Mutex
	seen := map[int]bool{}
	rt.Target(func(team *Team) {
		team.ParallelDo(sunway.CPEsPerCG*4, func(_, cpeID int) {
			mu.Lock()
			seen[cpeID] = true
			mu.Unlock()
		})
	})
	if len(seen) < sunway.CPEsPerCG/2 {
		t.Errorf("only %d CPEs participated", len(seen))
	}
}

func TestParallelDoCoversAllIterationsOnce(t *testing.T) {
	rt := New()
	defer rt.Shutdown()
	const n = 1000
	counts := make([]int64, n)
	rt.Target(func(team *Team) {
		team.ParallelDo(n, func(i, _ int) {
			atomic.AddInt64(&counts[i], 1)
		})
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

func TestWorkshare(t *testing.T) {
	rt := New()
	defer rt.Shutdown()
	x := make([]float64, 12345)
	for i := range x {
		x[i] = float64(i)
	}
	rt.Target(func(team *Team) {
		team.Workshare(x, 0) // kinetic_energy(:,:) = 0 from Fig. 4
	})
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}
}

func TestNestedSpawnFromTeamHead(t *testing.T) {
	// The job server allows a CPE (team head) to submit jobs to other
	// CPEs — the two-level hierarchy of Fig. 5.
	rt := New()
	defer rt.Shutdown()
	var ran atomic.Int64
	rt.Target(func(team *Team) {
		if team.Head() != 0 {
			t.Errorf("head = %d", team.Head())
		}
		// Two nested parallel regions in sequence.
		team.ParallelDo(100, func(i, _ int) { ran.Add(1) })
		team.ParallelDo(50, func(i, _ int) { ran.Add(1) })
	})
	if ran.Load() != 150 {
		t.Errorf("ran = %d", ran.Load())
	}
}

func TestSequentialTargetsReuseWorkers(t *testing.T) {
	rt := New()
	defer rt.Shutdown()
	total := 0
	for round := 0; round < 5; round++ {
		var c atomic.Int64
		rt.Target(func(team *Team) {
			team.ParallelDo(64, func(i, _ int) { c.Add(1) })
		})
		total += int(c.Load())
	}
	if total != 5*64 {
		t.Errorf("total = %d", total)
	}
}

func TestLDMAllocFreeAccounting(t *testing.T) {
	l := &LDM{}
	buf := l.Alloc(1024)
	if len(buf) != 1024 || l.Used() != 8192 {
		t.Fatalf("alloc: len=%d used=%d", len(buf), l.Used())
	}
	l.Free(1024)
	if l.Used() != 0 {
		t.Errorf("used = %d after free", l.Used())
	}
}

func TestLDMOverflowPanics(t *testing.T) {
	l := &LDM{}
	defer func() {
		if recover() == nil {
			t.Error("no panic on LDM overflow")
		}
	}()
	l.Alloc(LDMScratchBytes/8 + 1)
}

func TestOmnicopySemantics(t *testing.T) {
	src := []float64{1, 2, 3}
	dst := make([]float64, 3)
	if n := Omnicopy(dst, src); n != 3 {
		t.Fatalf("copied %d", n)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatal("omnicopy mismatch")
		}
	}
	// LDM staging path.
	l := &LDM{}
	buf := OmnicopyToLDM(l, src)
	if buf[2] != 3 || l.Used() != 24 {
		t.Errorf("ldm staging: %v used=%d", buf, l.Used())
	}
}

func TestOmnicopyEliminatesThrashingPattern(t *testing.T) {
	// §3.3.4: for loops identified with cache thrashing, variables are
	// copied onto the CPE stack with omnicopy until the thrashing is
	// eliminated. Model: 8 aliased streams thrash a 4-way LDCache; after
	// staging 5 of them into LDM, only 3 remain in the cache and hit.
	al := sunway.NewAllocator(false)
	arrays := make([]*sunway.Array, 8)
	for i := range arrays {
		arrays[i] = al.Alloc("s", 2048, sunway.FP64)
	}
	hitRate := func(nCached int) float64 {
		var c sunway.LDCache
		for i := 0; i < 2048; i++ {
			for s := 0; s < nCached; s++ {
				c.Access(arrays[s].Base + uint64(i*8))
			}
		}
		return float64(c.Hits) / float64(c.Hits+c.Misses)
	}
	all := hitRate(8) // all through the cache: thrash
	few := hitRate(3) // 5 staged to LDM, 3 through the cache
	if few <= all+0.3 {
		t.Errorf("staging did not eliminate thrashing: %.3f -> %.3f", all, few)
	}
}

func TestParallelReduceSum(t *testing.T) {
	rt := New()
	defer rt.Shutdown()
	var got float64
	rt.Target(func(team *Team) {
		got = team.ParallelReduceSum(1000, func(i, _ int) float64 {
			return float64(i)
		})
	})
	if want := 999.0 * 1000 / 2; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestParallelReduceMax(t *testing.T) {
	rt := New()
	defer rt.Shutdown()
	var got float64
	rt.Target(func(team *Team) {
		got = team.ParallelReduceMax(500, func(i, _ int) float64 {
			return -math.Abs(float64(i - 250))
		})
	})
	if got != 0 {
		t.Errorf("max = %v, want 0 (at i=250)", got)
	}
}
