// Package swgomp reproduces the programming model of the paper's SWGOMP
// compatibility layer (§3.3): OpenMP-offload-style regions mapped onto
// the 64 CPEs of a Sunway core group through a job server (Fig. 5).
//
//   - Target corresponds to "!$omp target": it launches a team-head CPE
//     through the job server.
//   - Team.ParallelDo corresponds to "!$omp parallel do": the team head
//     spawns the team members, which execute loop chunks concurrently.
//   - Team.Workshare corresponds to "!$omp workshare" for Fortran array
//     operations (Fig. 4's kinetic_energy(:,:) = 0 example).
//   - Omnicopy is the cross-platform memcpy replacement of §3.3.2: on
//     the simulated Sunway side it stages data into the CPE's LDM
//     scratch half via DMA; "on non-Sunway platforms [it] functions
//     identically to memcpy".
//
// The runtime uses real goroutines as CPEs, so parallel regions actually
// execute concurrently; the unified shared memory of the SW26010P
// (§3.3) corresponds naturally to Go's shared address space.
package swgomp

import (
	"fmt"
	"sync"

	"gristgo/internal/sunway"
)

// LDMScratchBytes is the user-programmable half of the 256 KB LDM (the
// other half is the LDCache — §3.3.2).
const LDMScratchBytes = sunway.LDMBytes / 2

// job is one unit of work dispatched by the job server.
type job struct {
	run  func(cpeID int)
	done *sync.WaitGroup
}

// Runtime is a simulated core group: a job server feeding 64 CPE
// workers. New tasks may be submitted by the MPE or by another CPE
// (team heads spawning team members), matching Fig. 5.
type Runtime struct {
	queues []chan job // one queue per CPE for targeted dispatch
	wg     sync.WaitGroup
	closed bool
	mu     sync.Mutex

	ldm []*LDM // per-CPE scratch
}

// New starts the job server with one worker goroutine per CPE (the
// Athread-initialized job servers of §3.3.1).
func New() *Runtime {
	rt := &Runtime{
		queues: make([]chan job, sunway.CPEsPerCG),
		ldm:    make([]*LDM, sunway.CPEsPerCG),
	}
	for i := range rt.queues {
		rt.queues[i] = make(chan job, 8)
		rt.ldm[i] = &LDM{}
		rt.wg.Add(1)
		go func(id int) {
			defer rt.wg.Done()
			for j := range rt.queues[id] {
				j.run(id)
				j.done.Done()
			}
		}(i)
	}
	return rt
}

// Shutdown stops the workers. The runtime must not be used afterwards.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	if !rt.closed {
		rt.closed = true
		for _, q := range rt.queues {
			close(q)
		}
	}
	rt.mu.Unlock()
	rt.wg.Wait()
}

// submit dispatches a job to a specific CPE and returns a wait handle.
func (rt *Runtime) submit(cpe int, run func(cpeID int)) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(1)
	rt.queues[cpe] <- job{run: run, done: &wg}
	return &wg
}

// Team is the handle a target region body receives; it can distribute
// parallel work to the team members.
type Team struct {
	rt   *Runtime
	head int
}

// Head returns the team-head CPE id.
func (t *Team) Head() int { return t.head }

// Target runs body on a team-head CPE via the job server and blocks
// until the region completes — the "!$omp target" entry point invoked
// from the MPE.
func (rt *Runtime) Target(body func(t *Team)) {
	const headCPE = 0
	rt.submit(headCPE, func(cpeID int) {
		body(&Team{rt: rt, head: cpeID})
	}).Wait()
}

// ParallelDo distributes iterations [0, n) over all CPEs with a static
// schedule ("!$omp parallel do"). The team head spawns the other team
// members through the job server and takes its own chunk, then waits.
func (t *Team) ParallelDo(n int, body func(iter, cpeID int)) {
	ncpe := sunway.CPEsPerCG
	chunk := (n + ncpe - 1) / ncpe
	var waits []*sync.WaitGroup
	for cpe := 0; cpe < ncpe; cpe++ {
		lo := cpe * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		if cpe == t.head {
			continue // head runs its own chunk inline below
		}
		waits = append(waits, t.rt.submit(cpe, func(cpeID int) {
			for i := lo; i < hi; i++ {
				body(i, cpeID)
			}
		}))
	}
	// Head's chunk.
	lo := t.head * chunk
	hi := lo + chunk
	if hi > n {
		hi = n
	}
	for i := lo; i < hi; i++ {
		body(i, t.head)
	}
	for _, w := range waits {
		w.Wait()
	}
}

// Workshare distributes an array assignment over the team
// ("!$omp workshare" for Fortran array operations).
func (t *Team) Workshare(dst []float64, value float64) {
	t.ParallelDo(len(dst), func(i, _ int) {
		dst[i] = value
	})
}

// LDM is one CPE's user-programmable scratch half of the local device
// memory. Allocations are stack-like (the paper's device-clause stack
// and private variables, §3.3.2).
type LDM struct {
	used int
	mu   sync.Mutex
}

// Alloc reserves n float64 slots in the LDM scratch and returns the
// buffer. It panics when the 128 KB scratch would overflow — the model's
// analog of an LDM allocation failure.
func (l *LDM) Alloc(n int) []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	bytes := n * 8
	if l.used+bytes > LDMScratchBytes {
		panic(fmt.Sprintf("swgomp: LDM scratch overflow (%d + %d > %d bytes)",
			l.used, bytes, LDMScratchBytes))
	}
	l.used += bytes
	return make([]float64, n)
}

// Free releases the most recent n float64 slots (stack discipline).
func (l *LDM) Free(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.used -= n * 8
	if l.used < 0 {
		l.used = 0
	}
}

// Used returns the currently allocated scratch bytes.
func (l *LDM) Used() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

// LDMOf returns CPE cpeID's scratch LDM.
func (rt *Runtime) LDMOf(cpeID int) *LDM { return rt.ldm[cpeID] }

// Omnicopy copies src into dst. In the simulated Sunway environment the
// caller passes an LDM-allocated destination and the copy models a DMA
// transfer; anywhere else it behaves exactly like memcpy (§3.3.2's
// cross-platform contract). It returns the number of elements copied.
func Omnicopy(dst, src []float64) int {
	return copy(dst, src)
}

// OmnicopyToLDM stages a main-memory slice into a CPE's LDM scratch via
// the modeled DMA engine and returns the LDM buffer. The caller should
// Free the slots when the kernel finishes.
func OmnicopyToLDM(l *LDM, src []float64) []float64 {
	buf := l.Alloc(len(src))
	Omnicopy(buf, src)
	return buf
}

// ParallelReduceSum evaluates body(i) for i in [0, n) across the team
// and returns the sum of all results — the OpenMP reduction(+) clause.
// Each CPE accumulates a private partial (no false sharing), and the
// team head combines them.
func (t *Team) ParallelReduceSum(n int, body func(iter, cpeID int) float64) float64 {
	ncpe := sunway.CPEsPerCG
	partials := make([]float64, ncpe)
	t.ParallelDo(n, func(i, cpeID int) {
		partials[cpeID] += body(i, cpeID)
	})
	var sum float64
	for _, p := range partials {
		sum += p
	}
	return sum
}

// ParallelReduceMax is the reduction(max) clause.
func (t *Team) ParallelReduceMax(n int, body func(iter, cpeID int) float64) float64 {
	ncpe := sunway.CPEsPerCG
	partials := make([]float64, ncpe)
	for i := range partials {
		partials[i] = -maxFloat
	}
	t.ParallelDo(n, func(i, cpeID int) {
		if v := body(i, cpeID); v > partials[cpeID] {
			partials[cpeID] = v
		}
	})
	best := -maxFloat
	for _, p := range partials {
		if p > best {
			best = p
		}
	}
	return best
}

const maxFloat = 1.797693134862315708145274237317043567981e308
