// Package nn is a small from-scratch neural-network library (stdlib only)
// that powers the ML physics suite: dense and 1-D convolutional layers,
// ReLU, residual blocks, mean-squared-error loss, reverse-mode
// differentiation and an Adam optimizer. It provides exactly the two
// architectures of §3.2.3: an 11-layer 1-D CNN built from five ResUnits
// for the Q1/Q2 tendency module, and a 7-layer residual MLP for the
// radiation diagnostic module.
//
// Modules are stateful (they cache activations for the backward pass) and
// therefore not safe for concurrent use; clone per goroutine instead.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is a learnable tensor with its gradient and Adam moments.
type Param struct {
	Name string
	W    []float64 // weights
	G    []float64 // gradient accumulator
	m, v []float64 // Adam first/second moments
}

func newParam(name string, n int) *Param {
	return &Param{
		Name: name,
		W:    make([]float64, n),
		G:    make([]float64, n),
		m:    make([]float64, n),
		v:    make([]float64, n),
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Module is a differentiable computation node.
type Module interface {
	// Forward maps an input vector to an output vector, caching whatever
	// the backward pass needs.
	Forward(x []float64) []float64
	// Backward consumes dLoss/dOutput and returns dLoss/dInput,
	// accumulating parameter gradients.
	Backward(grad []float64) []float64
	// Params returns the learnable parameters.
	Params() []*Param
}

// ---------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------

// Dense is a fully-connected layer: y = W x + b.
type Dense struct {
	In, Out int
	Weight  *Param // Out x In, row-major
	Bias    *Param

	x []float64 // cached input
}

// NewDense constructs a dense layer with He-uniform initialization.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		Weight: newParam(fmt.Sprintf("dense_w_%dx%d", out, in), in*out),
		Bias:   newParam(fmt.Sprintf("dense_b_%d", out), out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	for i := range d.Weight.W {
		d.Weight.W[i] = (2*rng.Float64() - 1) * bound
	}
	return d
}

// Forward implements Module.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Dense expected %d inputs, got %d", d.In, len(x)))
	}
	d.x = append(d.x[:0], x...)
	y := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		s := d.Bias.W[o]
		row := d.Weight.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		y[o] = s
	}
	return y
}

// Backward implements Module.
func (d *Dense) Backward(grad []float64) []float64 {
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := grad[o]
		d.Bias.G[o] += g
		row := d.Weight.W[o*d.In : (o+1)*d.In]
		grow := d.Weight.G[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += g * d.x[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Module.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// ---------------------------------------------------------------------
// Conv1D
// ---------------------------------------------------------------------

// Conv1D is a same-padded 1-D convolution over channel-major input
// x[ch*L + pos], capturing the vertical structure of atmospheric columns
// (§3.2.3).
type Conv1D struct {
	InCh, OutCh, K, L int
	Weight            *Param // [out][in][k]
	Bias              *Param // [out]

	x []float64
}

// NewConv1D constructs the layer; K must be odd (same padding).
func NewConv1D(inCh, outCh, k, l int, rng *rand.Rand) *Conv1D {
	if k%2 == 0 {
		panic(fmt.Sprintf("nn: Conv1D kernel must be odd, got K=%d", k))
	}
	c := &Conv1D{
		InCh: inCh, OutCh: outCh, K: k, L: l,
		Weight: newParam(fmt.Sprintf("conv_w_%dx%dx%d", outCh, inCh, k), inCh*outCh*k),
		Bias:   newParam(fmt.Sprintf("conv_b_%d", outCh), outCh),
	}
	bound := math.Sqrt(6.0 / float64(inCh*k))
	for i := range c.Weight.W {
		c.Weight.W[i] = (2*rng.Float64() - 1) * bound
	}
	return c
}

func (c *Conv1D) widx(o, i, k int) int { return (o*c.InCh+i)*c.K + k }

// Forward implements Module.
func (c *Conv1D) Forward(x []float64) []float64 {
	if len(x) != c.InCh*c.L {
		panic(fmt.Sprintf("nn: Conv1D expected %d inputs, got %d", c.InCh*c.L, len(x)))
	}
	c.x = append(c.x[:0], x...)
	y := make([]float64, c.OutCh*c.L)
	half := c.K / 2
	for o := 0; o < c.OutCh; o++ {
		for p := 0; p < c.L; p++ {
			s := c.Bias.W[o]
			for i := 0; i < c.InCh; i++ {
				for k := 0; k < c.K; k++ {
					q := p + k - half
					if q < 0 || q >= c.L {
						continue
					}
					s += c.Weight.W[c.widx(o, i, k)] * x[i*c.L+q]
				}
			}
			y[o*c.L+p] = s
		}
	}
	return y
}

// Backward implements Module.
func (c *Conv1D) Backward(grad []float64) []float64 {
	dx := make([]float64, c.InCh*c.L)
	half := c.K / 2
	for o := 0; o < c.OutCh; o++ {
		for p := 0; p < c.L; p++ {
			g := grad[o*c.L+p]
			c.Bias.G[o] += g
			for i := 0; i < c.InCh; i++ {
				for k := 0; k < c.K; k++ {
					q := p + k - half
					if q < 0 || q >= c.L {
						continue
					}
					c.Weight.G[c.widx(o, i, k)] += g * c.x[i*c.L+q]
					dx[i*c.L+q] += g * c.Weight.W[c.widx(o, i, k)]
				}
			}
		}
	}
	return dx
}

// Params implements Module.
func (c *Conv1D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// ---------------------------------------------------------------------
// ReLU, Sequential, Residual
// ---------------------------------------------------------------------

// ReLU is the rectified linear activation.
type ReLU struct{ mask []bool }

// Forward implements Module.
func (r *ReLU) Forward(x []float64) []float64 {
	y := make([]float64, len(x))
	if cap(r.mask) < len(x) {
		r.mask = make([]bool, len(x))
	}
	r.mask = r.mask[:len(x)]
	for i, v := range x {
		if v > 0 {
			y[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return y
}

// Backward implements Module.
func (r *ReLU) Backward(grad []float64) []float64 {
	dx := make([]float64, len(grad))
	for i, g := range grad {
		if r.mask[i] {
			dx[i] = g
		}
	}
	return dx
}

// Params implements Module.
func (r *ReLU) Params() []*Param { return nil }

// Sequential chains modules.
type Sequential struct{ Layers []Module }

// Forward implements Module.
func (s *Sequential) Forward(x []float64) []float64 {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Module.
func (s *Sequential) Backward(grad []float64) []float64 {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Module.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Residual computes y = x + Body(x) — the ResUnit skip connection that
// keeps the deep tendency CNN stable and accurate (§3.2.3, citing Han et
// al. 2020).
type Residual struct{ Body Module }

// Forward implements Module.
func (r *Residual) Forward(x []float64) []float64 {
	y := r.Body.Forward(x)
	if len(y) != len(x) {
		panic("nn: Residual body changed shape")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// Backward implements Module.
func (r *Residual) Backward(grad []float64) []float64 {
	dBody := r.Body.Backward(grad)
	dx := make([]float64, len(grad))
	for i := range grad {
		dx[i] = grad[i] + dBody[i]
	}
	return dx
}

// Params implements Module.
func (r *Residual) Params() []*Param { return r.Body.Params() }

// NumParams counts the learnable scalars of a module.
func NumParams(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.W)
	}
	return n
}
