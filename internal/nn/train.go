package nn

import "math"

// Adam is the Adam optimizer (Kingma & Ba 2015).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int // step counter
}

// NewAdam returns Adam with the conventional defaults and the given
// learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one update to every parameter from its accumulated
// gradient (averaged over batchSize samples), then zeroes the gradients.
func (a *Adam) Step(params []*Param, batchSize int) {
	a.t++
	inv := 1.0 / float64(batchSize)
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		for i := range p.W {
			g := p.G[i] * inv
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mh := p.m[i] / bc1
			vh := p.v[i] / bc2
			p.W[i] -= a.LR * mh / (math.Sqrt(vh) + a.Epsilon)
		}
		p.ZeroGrad()
	}
}

// MSELoss returns 0.5*mean((pred-target)^2) and writes dLoss/dPred into
// grad (which must have the same length).
func MSELoss(pred, target, grad []float64) float64 {
	if len(pred) != len(target) || len(grad) != len(pred) {
		panic("nn: MSELoss length mismatch")
	}
	var loss float64
	inv := 1.0 / float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += 0.5 * d * d * inv
		grad[i] = d * inv
	}
	return loss
}

// Dataset is a set of (input, target) sample pairs.
type Dataset struct {
	X [][]float64
	Y [][]float64
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Add appends a sample (slices are retained, not copied).
func (d *Dataset) Add(x, y []float64) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// TrainEpoch runs one epoch of minibatch SGD over the dataset in the
// given index order and returns the mean sample loss.
func TrainEpoch(m Module, opt *Adam, data *Dataset, order []int, batch int) float64 {
	params := m.Params()
	var total float64
	n := 0
	for start := 0; start < len(order); start += batch {
		end := start + batch
		if end > len(order) {
			end = len(order)
		}
		for _, idx := range order[start:end] {
			pred := m.Forward(data.X[idx])
			grad := make([]float64, len(pred))
			total += MSELoss(pred, data.Y[idx], grad)
			m.Backward(grad)
			n++
		}
		opt.Step(params, end-start)
	}
	return total / float64(n)
}

// Evaluate returns the mean MSE loss of the module over the dataset
// without updating parameters.
func Evaluate(m Module, data *Dataset) float64 {
	var total float64
	for i := range data.X {
		pred := m.Forward(data.X[i])
		grad := make([]float64, len(pred))
		total += MSELoss(pred, data.Y[i], grad)
	}
	return total / float64(data.Len())
}
