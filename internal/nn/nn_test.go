package nn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// numericalGrad estimates dLoss/dW[i] by central differences.
func numericalGrad(m Module, x, y []float64, p *Param, i int) float64 {
	const h = 1e-6
	orig := p.W[i]
	eval := func(w float64) float64 {
		p.W[i] = w
		pred := m.Forward(x)
		grad := make([]float64, len(pred))
		return MSELoss(pred, y, grad)
	}
	plus := eval(orig + h)
	minus := eval(orig - h)
	p.W[i] = orig
	return (plus - minus) / (2 * h)
}

// checkGradients verifies analytic vs numerical gradients for a module.
func checkGradients(t *testing.T, m Module, in, out int, rng *rand.Rand) {
	t.Helper()
	x := make([]float64, in)
	y := make([]float64, out)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	pred := m.Forward(x)
	grad := make([]float64, len(pred))
	MSELoss(pred, y, grad)
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	m.Backward(grad)

	for _, p := range m.Params() {
		// Spot-check a handful of indices per parameter.
		for trial := 0; trial < 5; trial++ {
			i := rng.Intn(len(p.W))
			want := numericalGrad(m, x, y, p, i)
			got := p.G[i]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Errorf("%s[%d]: analytic %g vs numerical %g", p.Name, i, got, want)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	checkGradients(t, NewDense(7, 5, rng), 7, 5, rng)
}

func TestConv1DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	checkGradients(t, NewConv1D(3, 4, 3, 10, rng), 30, 40, rng)
}

func TestResMLPGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewResMLP(6, 16, 2, 7, rng)
	checkGradients(t, m, 6, 2, rng)
}

func TestResCNNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewResUnitCNN(4, 8, 2, 12, 2, 3, rng)
	checkGradients(t, m, 4*12, 2*12, rng)
}

func TestReLUForwardBackward(t *testing.T) {
	r := &ReLU{}
	y := r.Forward([]float64{-1, 0, 2.5})
	if y[0] != 0 || y[1] != 0 || y[2] != 2.5 {
		t.Fatalf("relu forward: %v", y)
	}
	dx := r.Backward([]float64{1, 1, 1})
	if dx[0] != 0 || dx[1] != 0 || dx[2] != 1 {
		t.Fatalf("relu backward: %v", dx)
	}
}

func TestResidualIdentityAtZeroBody(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense(4, 4, rng)
	for i := range d.Weight.W {
		d.Weight.W[i] = 0
	}
	r := &Residual{Body: d}
	x := []float64{1, -2, 3, 0.5}
	y := r.Forward(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("residual with zero body not identity: %v", y)
		}
	}
}

func TestCNNArchitectureShapeAndDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	levels := 30
	m := NewResUnitCNN(7, 32, 2, levels, 5, 3, rng)
	// 11 deep (kernel>1) conv layers: input + 5 units x 2; the kernel-1
	// output projection is a channel mixer, not a deep layer.
	convs := 0
	var count func(mod Module)
	count = func(mod Module) {
		switch v := mod.(type) {
		case *Sequential:
			for _, l := range v.Layers {
				count(l)
			}
		case *Residual:
			count(v.Body)
		case *Conv1D:
			if v.K > 1 {
				convs++
			}
		}
	}
	count(m)
	if convs != 11 {
		t.Errorf("conv layers = %d, want 11 (the paper's 11-layer CNN)", convs)
	}
	// Parameter count near half a million (paper: ~0.5M at width 40).
	m2 := NewResUnitCNN(7, 100, 2, levels, 5, 3, rng)
	n := NumParams(m2)
	if n < 250_000 || n > 750_000 {
		t.Errorf("parameter count %d not near half a million", n)
	}
	// Shape check.
	out := m.Forward(make([]float64, 7*levels))
	if len(out) != 2*levels {
		t.Errorf("output length %d, want %d", len(out), 2*levels)
	}
}

func TestMLPDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewResMLP(9, 64, 2, 7, rng)
	dense := 0
	var count func(mod Module)
	count = func(mod Module) {
		switch v := mod.(type) {
		case *Sequential:
			for _, l := range v.Layers {
				count(l)
			}
		case *Residual:
			count(v.Body)
		case *Dense:
			dense++
		}
	}
	count(m)
	if dense != 7 {
		t.Errorf("dense layers = %d, want 7", dense)
	}
}

func TestTrainingLearnsLinearMap(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewResMLP(3, 16, 2, 4, rng)
	data := &Dataset{}
	for i := 0; i < 256; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y := []float64{0.5*x[0] - x[1], 0.3 * x[2]}
		data.Add(x, y)
	}
	opt := NewAdam(3e-3)
	order := rng.Perm(data.Len())
	first := Evaluate(m, data)
	for epoch := 0; epoch < 60; epoch++ {
		TrainEpoch(m, opt, data, order, 32)
	}
	last := Evaluate(m, data)
	if last > first/20 {
		t.Errorf("training did not converge: %g -> %g", first, last)
	}
}

func TestTrainingLearnsNonlinearColumnFunction(t *testing.T) {
	// CNN learns a vertical-stencil nonlinear map, the shape of the
	// Q1/Q2 problem.
	rng := rand.New(rand.NewSource(9))
	const levels = 8
	m := NewResUnitCNN(1, 8, 1, levels, 2, 3, rng)
	data := &Dataset{}
	for i := 0; i < 200; i++ {
		x := make([]float64, levels)
		for k := range x {
			x[k] = rng.NormFloat64()
		}
		y := make([]float64, levels)
		for k := 1; k < levels-1; k++ {
			y[k] = math.Tanh(x[k-1] - x[k+1])
		}
		data.Add(x, y)
	}
	opt := NewAdam(2e-3)
	order := rng.Perm(data.Len())
	first := Evaluate(m, data)
	for epoch := 0; epoch < 80; epoch++ {
		TrainEpoch(m, opt, data, order, 25)
	}
	last := Evaluate(m, data)
	if last > first/5 {
		t.Errorf("CNN training did not converge: %g -> %g", first, last)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m1 := NewResMLP(4, 8, 2, 4, rng)
	m2 := NewResMLP(4, 8, 2, 4, rand.New(rand.NewSource(99)))

	var buf bytes.Buffer
	if err := Save(&buf, m1); err != nil {
		t.Fatal(err)
	}
	if err := Load(&buf, m2); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.4, 2, 0.7}
	y1 := m1.Forward(x)
	y2 := m2.Forward(x)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("loaded model differs: %v vs %v", y1, y2)
		}
	}
}

func TestLoadRejectsWrongShape(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m1 := NewResMLP(4, 8, 2, 4, rng)
	m2 := NewResMLP(5, 8, 2, 4, rng)
	var buf bytes.Buffer
	if err := Save(&buf, m1); err != nil {
		t.Fatal(err)
	}
	if err := Load(&buf, m2); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestMSELossProperties(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e100 || math.Abs(b) > 1e100 {
			return true
		}
		grad := make([]float64, 1)
		loss := MSELoss([]float64{a}, []float64{b}, grad)
		return loss >= 0 && math.Abs(grad[0]-(a-b)) < 1e-12*(1+math.Abs(a-b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdamReducesLossMonotonicallyOnQuadratic(t *testing.T) {
	// One-parameter sanity: minimize (w-3)^2 via the module machinery.
	rng := rand.New(rand.NewSource(12))
	d := NewDense(1, 1, rng)
	d.Weight.W[0] = -1
	d.Bias.W[0] = 0
	opt := NewAdam(0.05)
	x := []float64{1}
	y := []float64{3}
	prev := math.Inf(1)
	for i := 0; i < 300; i++ {
		pred := d.Forward(x)
		grad := make([]float64, 1)
		loss := MSELoss(pred, y, grad)
		d.Backward(grad)
		opt.Step(d.Params(), 1)
		if i > 250 && loss > prev+1e-9 && loss > 1e-6 {
			t.Fatalf("loss rising late in optimization: %g -> %g", prev, loss)
		}
		prev = loss
	}
	if prev > 1e-4 {
		t.Errorf("final loss %g", prev)
	}
}

func TestDenseShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	d := NewDense(3, 2, rng)
	defer func() {
		if recover() == nil {
			t.Error("wrong input length accepted")
		}
	}()
	d.Forward([]float64{1, 2})
}

func TestConv1DEvenKernelPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("even kernel accepted")
		}
		// The message must name the offending kernel width.
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "K=2") {
			t.Errorf("panic message %v does not name K=2", r)
		}
	}()
	NewConv1D(1, 1, 2, 4, rng)
}

// TestConv1DEvenLengthGradients: gradient/forward consistency with an
// even column length, where the same-padding window straddles the
// boundary asymmetrically relative to the midpoint.
func TestConv1DEvenLengthGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, l := range []int{2, 4, 8} {
		checkGradients(t, NewConv1D(2, 3, 3, l, rng), 2*l, 3*l, rng)
		checkGradients(t, NewConv1D(1, 2, 5, l, rng), l, 2*l, rng)
	}
}

// TestConv1DBoundaryForward hand-computes the same-padded convolution at
// the first and last positions of an even-length input, where the kernel
// hangs over the edge and the out-of-range taps must contribute nothing.
func TestConv1DBoundaryForward(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	const l = 4
	c := NewConv1D(1, 1, 3, l, rng)
	c.Weight.W = []float64{0.5, -1.0, 2.0} // taps at q-1, q, q+1
	c.Bias.W = []float64{0.25}
	x := []float64{1, 2, 3, 4}
	y := c.Forward(x)
	want := []float64{
		0.25 + /* left pad */ -1.0*1 + 2.0*2, // p=0: q=-1 dropped
		0.25 + 0.5*1 - 1.0*2 + 2.0*3,
		0.25 + 0.5*2 - 1.0*3 + 2.0*4,
		0.25 + 0.5*3 - 1.0*4, // p=3: q=4 dropped
	}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-15 {
			t.Errorf("p=%d: got %g want %g", i, y[i], want[i])
		}
	}
}

func TestNumParamsCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := NewDense(3, 2, rng)
	if NumParams(d) != 3*2+2 {
		t.Errorf("NumParams = %d", NumParams(d))
	}
}

func TestDatasetLen(t *testing.T) {
	var d Dataset
	d.Add([]float64{1}, []float64{2})
	if d.Len() != 1 {
		t.Error("dataset length")
	}
}
