package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
)

// NewResUnitCNN builds the ML physical tendency architecture of §3.2.3:
// an input 1-D convolution lifting inCh channels to hidden channels and
// five ResUnits (each: Conv-ReLU-Conv with a skip connection) — the
// paper's 11-layer deep CNN — followed by a kernel-1 channel projection
// to outCh. The parameter count lands near half a million at the paper's
// hidden width.
func NewResUnitCNN(inCh, hidden, outCh, levels, units, kernel int, rng *rand.Rand) *Sequential {
	s := &Sequential{}
	s.Layers = append(s.Layers, NewConv1D(inCh, hidden, kernel, levels, rng), &ReLU{})
	for u := 0; u < units; u++ {
		body := &Sequential{Layers: []Module{
			NewConv1D(hidden, hidden, kernel, levels, rng),
			&ReLU{},
			NewConv1D(hidden, hidden, kernel, levels, rng),
		}}
		s.Layers = append(s.Layers, &Residual{Body: body}, &ReLU{})
	}
	// Output head: per-level channel projection (kernel 1), not counted
	// among the 11 deep layers.
	s.Layers = append(s.Layers, NewConv1D(hidden, outCh, 1, levels, rng))
	return s
}

// NewResMLP builds the ML radiation diagnostic architecture of §3.2.3: a
// 7-layer multilayer perceptron with residual connections over the
// hidden width, mapping a one-dimensional input vector (column state +
// tskin + coszr) to surface radiation scalars (gsw, glw).
func NewResMLP(in, hidden, out, layers int, rng *rand.Rand) *Sequential {
	if layers < 3 {
		panic("nn: ResMLP needs at least 3 layers")
	}
	s := &Sequential{}
	s.Layers = append(s.Layers, NewDense(in, hidden, rng), &ReLU{})
	for l := 0; l < layers-2; l++ {
		body := &Sequential{Layers: []Module{
			NewDense(hidden, hidden, rng),
			&ReLU{},
		}}
		s.Layers = append(s.Layers, &Residual{Body: body})
	}
	s.Layers = append(s.Layers, NewDense(hidden, out, rng))
	return s
}

// Save serializes the parameters of a module (architecture is not
// stored; the loader must construct the same shape first).
func Save(w io.Writer, m Module) error {
	enc := gob.NewEncoder(w)
	params := m.Params()
	if err := enc.Encode(len(params)); err != nil {
		return err
	}
	for _, p := range params {
		if err := enc.Encode(p.W); err != nil {
			return fmt.Errorf("nn: saving %s: %w", p.Name, err)
		}
	}
	return nil
}

// Load restores parameters saved by Save into a module of identical
// architecture.
func Load(r io.Reader, m Module) error {
	dec := gob.NewDecoder(r)
	var n int
	if err := dec.Decode(&n); err != nil {
		return err
	}
	params := m.Params()
	if n != len(params) {
		return fmt.Errorf("nn: snapshot has %d params, module has %d", n, len(params))
	}
	for _, p := range params {
		var w []float64
		if err := dec.Decode(&w); err != nil {
			return fmt.Errorf("nn: loading %s: %w", p.Name, err)
		}
		if len(w) != len(p.W) {
			return fmt.Errorf("nn: %s length %d != %d", p.Name, len(w), len(p.W))
		}
		copy(p.W, w)
	}
	return nil
}
