// Package synthclim generates the synthetic climate forcing and
// verification data that substitute for the paper's proprietary inputs
// (repro substitution, see DESIGN.md): ERA5-like initial fields,
// prescribed SST / sea-ice boundary conditions, a land mask, the Table 1
// training periods with their ENSO (Oceanic Niño Index) and MJO
// (real-time multivariate index) characteristics, and the CMPA-like
// observed-rainfall field used to score the Typhoon Doksuri case.
package synthclim

import (
	"math"

	"gristgo/internal/mesh"
)

// Period is one of the paper's Table 1 training windows.
type Period struct {
	Label     string
	StartYear int
	StartMon  int
	StartDay  int
	Days      int
	ONI       float64 // Oceanic Niño Index
	ENSOPhase string  // El Niño / neutral / La Niña
	RMMMin    float64 // real-time multivariate MJO index range
	RMMMax    float64
}

// Table1 returns the paper's four 20-day training periods covering the
// four seasons and varying ENSO and MJO states.
func Table1() []Period {
	return []Period{
		{Label: "1-20 January 1998", StartYear: 1998, StartMon: 1, StartDay: 1, Days: 20,
			ONI: 2.2, ENSOPhase: "El Niño", RMMMin: 0.69, RMMMax: 1.98},
		{Label: "1-20 April 2005", StartYear: 2005, StartMon: 4, StartDay: 1, Days: 20,
			ONI: 0.4, ENSOPhase: "neutral", RMMMin: 2.72, RMMMax: 3.71},
		{Label: "10-29 July 2015", StartYear: 2015, StartMon: 7, StartDay: 10, Days: 20,
			ONI: -0.4, ENSOPhase: "neutral", RMMMin: 0.17, RMMMax: 1.05},
		{Label: "1-20 October 1988", StartYear: 1988, StartMon: 10, StartDay: 1, Days: 20,
			ONI: -1.5, ENSOPhase: "La Niña", RMMMin: 0.67, RMMMax: 2.98},
	}
}

// TotalDays returns the summed length of the Table 1 periods (the
// paper's 80 days).
func TotalDays() int {
	n := 0
	for _, p := range Table1() {
		n += p.Days
	}
	return n
}

// Climate evaluates the synthetic climatology: smooth, seasonally and
// ENSO/MJO-modulated surface fields from which initial and boundary
// conditions are drawn.
type Climate struct {
	ONI      float64 // ENSO state
	RMM      float64 // MJO amplitude
	MJOPhase float64 // MJO longitude phase, radians
	Season   float64 // day-of-year angle, radians (0 = Jan 1)
}

// ForPeriod builds the climate state of a Table 1 period at the given
// day offset (0-based) within the period.
func ForPeriod(p Period, day int) Climate {
	doy := dayOfYear(p.StartMon, p.StartDay) + day
	rmm := p.RMMMin + (p.RMMMax-p.RMMMin)*float64(day)/float64(maxInt(p.Days-1, 1))
	return Climate{
		ONI:      p.ONI,
		RMM:      rmm,
		MJOPhase: 2 * math.Pi * float64(day) / 45.0, // ~45-day eastward cycle
		Season:   2 * math.Pi * float64(doy) / 365.0,
	}
}

func dayOfYear(mon, day int) int {
	cum := [...]int{0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334}
	return cum[mon-1] + day - 1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SST returns the sea-surface temperature (K) at a location: a zonal
// structure with seasonal tilt, an ENSO anomaly in the equatorial
// Pacific, and an MJO moisture-convergence warm pool anomaly.
func (cl Climate) SST(lat, lon float64) float64 {
	base := 300.5 - 30*math.Pow(math.Sin(lat), 2)
	seasonal := 2 * math.Sin(lat) * math.Cos(cl.Season-0.2) // hemispheric seasonality
	// ENSO: Niño-3.4-like anomaly centered near (0, 190E).
	dLon := angleDiff(lon, deg2rad(190))
	enso := cl.ONI * math.Exp(-(lat*lat)/(0.12)) * math.Exp(-(dLon*dLon)/0.5)
	// MJO: eastward-propagating equatorial anomaly.
	mjo := 0.4 * cl.RMM * math.Cos(lon-cl.MJOPhase) * math.Exp(-(lat*lat)/0.08)
	return base + seasonal + enso + mjo
}

// LandFraction returns a smooth synthetic land mask: a few continent
// blobs in the northern and southern hemispheres.
func LandFraction(lat, lon float64) float64 {
	type blob struct{ lat, lon, rad float64 }
	continents := []blob{
		{deg2rad(45), deg2rad(100), 0.55},  // Eurasia
		{deg2rad(45), deg2rad(-100), 0.40}, // North America
		{deg2rad(-10), deg2rad(-60), 0.30}, // South America
		{deg2rad(5), deg2rad(20), 0.40},    // Africa
		{deg2rad(-25), deg2rad(135), 0.25}, // Australia
	}
	p := mesh.FromLatLon(lat, lon)
	land := 0.0
	for _, b := range continents {
		d := mesh.ArcLength(p, mesh.FromLatLon(b.lat, b.lon))
		land += math.Exp(-(d * d) / (b.rad * b.rad / 2))
	}
	if land > 1 {
		land = 1
	}
	return land
}

// SurfaceTemperature returns an ERA5-like screen temperature: SST over
// ocean, a land-modified value over continents.
func (cl Climate) SurfaceTemperature(lat, lon float64) float64 {
	sst := cl.SST(lat, lon)
	land := LandFraction(lat, lon)
	// Land is more extreme: colder winter poles, warmer summer interiors.
	landT := sst + 4*math.Sin(lat)*math.Cos(cl.Season-0.2) - 3*math.Pow(math.Sin(lat), 2)
	return (1-land)*sst + land*landT
}

// SurfaceHumidity returns the near-surface relative humidity, with an
// ITCZ moisture band displaced seasonally and MJO modulation.
func (cl Climate) SurfaceHumidity(lat, lon float64) float64 {
	itczLat := deg2rad(8) * math.Cos(cl.Season-0.2)
	band := math.Exp(-math.Pow((lat-itczLat)/deg2rad(14), 2))
	mjo := 0.06 * cl.RMM * math.Cos(lon-cl.MJOPhase) * math.Exp(-(lat*lat)/0.08)
	rh := 0.55 + 0.3*band + mjo
	if rh > 0.98 {
		rh = 0.98
	}
	if rh < 0.2 {
		rh = 0.2
	}
	return rh
}

// SeaIce returns the sea-ice concentration (0..1), a polar cap keyed to
// the season.
func (cl Climate) SeaIce(lat float64) float64 {
	edgeNorth := deg2rad(68 - 8*math.Cos(cl.Season-0.2))
	edgeSouth := -deg2rad(62 + 6*math.Cos(cl.Season-0.2))
	switch {
	case lat > edgeNorth:
		return clamp01((lat - edgeNorth) / deg2rad(8))
	case lat < edgeSouth:
		return clamp01((edgeSouth - lat) / deg2rad(8))
	}
	return 0
}

// ZonalWind returns an ERA5-like zonal-mean zonal wind (m/s) at a sigma
// level (1 at surface, 0 at top): subtropical westerly jets with easterly
// trades, strengthening aloft.
func (cl Climate) ZonalWind(lat, sigma float64) float64 {
	jet := 35 * math.Exp(-math.Pow((math.Abs(lat)-deg2rad(40))/deg2rad(15), 2))
	trades := -6 * math.Exp(-math.Pow(lat/deg2rad(15), 2))
	height := 1 - sigma // 0 at surface, 1 at top
	return (jet*height + trades*(1-height)) * signNonzero(1.0)
}

func signNonzero(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }

func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b+3*math.Pi, 2*math.Pi) - math.Pi
	return d
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Terrain returns the surface elevation (meters) of the synthetic
// orography: smooth continental plateaus plus the Taihang-like ridge
// west of the North China plain that pins the "23.7" extreme rainfall
// (Fig. 7). Ridges are narrow, so finer meshes resolve steeper slopes.
func Terrain(lat, lon float64) float64 {
	land := LandFraction(lat, lon)
	if land < 0.05 {
		return 0
	}
	// Broad continental elevation.
	h := 350 * land

	// Taihang-like ridge: elongated NNE-SSW barrier near (38N, 113.5E).
	ridgeLat, ridgeLon := deg2rad(38.5), deg2rad(113.5)
	dLat := lat - ridgeLat
	dLon := (lon - ridgeLon) * math.Cos(ridgeLat)
	along := dLat*math.Cos(0.3) + dLon*math.Sin(0.3)
	cross := -dLat*math.Sin(0.3) + dLon*math.Cos(0.3)
	h += 1800 * math.Exp(-math.Pow(along/deg2rad(4.0), 2)-math.Pow(cross/deg2rad(1.1), 2))

	// Tibetan-plateau-like bulk to the west.
	dTP := mesh.ArcLength(mesh.FromLatLon(lat, lon), mesh.FromLatLon(deg2rad(33), deg2rad(88)))
	h += 4200 * math.Exp(-math.Pow(dTP/deg2rad(14), 2))
	return h
}
