package synthclim

import (
	"math"

	"gristgo/internal/mesh"
)

// DoksuriCase describes the "23.7" extreme-rainfall verification case of
// Fig. 7: super Typhoon Doksuri moving northward and feeding an extreme
// rainstorm over North China in late July 2023.
type DoksuriCase struct {
	// Typhoon center at verification time (radians).
	StormLat, StormLon float64
	// Extreme-rainfall center over North China (radians).
	RainLat, RainLon float64
	// Radius of maximum wind (radians of arc).
	Rmax float64
	// Peak tangential wind, m/s.
	Vmax float64
}

// NewDoksuriCase returns the case geometry: the storm near the Fujian
// coast moving north, and the rainfall maximum against the Taihang
// mountains west of Beijing.
func NewDoksuriCase() DoksuriCase {
	return DoksuriCase{
		StormLat: deg2rad(30.0), StormLon: deg2rad(118.0),
		RainLat: deg2rad(39.5), RainLon: deg2rad(115.5),
		Rmax: deg2rad(1.2), Vmax: 42,
	}
}

// ObservedRainfall evaluates the CMPA-substitute observed 24-h mean
// rainfall rate (mm/day) at a location. The field has fine-scale
// structure — a spiral typhoon rain band plus an orographically pinned
// extreme maximum — so that a higher-resolution simulation, which
// resolves the band, correlates better with it (the paper's Fig. 7
// claim).
func (d DoksuriCase) ObservedRainfall(lat, lon float64) float64 {
	p := mesh.FromLatLon(lat, lon)

	// Typhoon spiral rain band.
	storm := mesh.FromLatLon(d.StormLat, d.StormLon)
	r := mesh.ArcLength(p, storm)
	var band float64
	if r < 10*d.Rmax {
		// Azimuth around the storm for the spiral phase.
		az := math.Atan2(lat-d.StormLat, (lon-d.StormLon)*math.Cos(d.StormLat))
		spiral := math.Cos(2*az - 6*r/d.Rmax)
		radial := math.Exp(-math.Pow((r-1.5*d.Rmax)/(1.2*d.Rmax), 2))
		band = 90 * radial * (0.65 + 0.35*spiral)
		// Eyewall maximum.
		band += 160 * math.Exp(-math.Pow((r-0.8*d.Rmax)/(0.35*d.Rmax), 2))
	}

	// Orographic extreme-rainfall core over North China: narrow,
	// intense, elongated along the mountain range (NNE-SSW).
	dLat := lat - d.RainLat
	dLon := (lon - d.RainLon) * math.Cos(d.RainLat)
	along := dLat*math.Cos(0.3) + dLon*math.Sin(0.3)
	cross := -dLat*math.Sin(0.3) + dLon*math.Cos(0.3)
	core := 320 * math.Exp(-math.Pow(along/deg2rad(2.2), 2)-math.Pow(cross/deg2rad(0.7), 2))

	// Background monsoon rain.
	bg := 6 * math.Exp(-math.Pow((lat-deg2rad(32))/deg2rad(10), 2))

	return band + core + bg
}

// RainfallOnMesh samples the observed rainfall at every cell of a mesh,
// smoothed to the mesh's own resolution by area-weighted neighbor
// averaging (mimicking how CMPA analyses are gridded).
func (d DoksuriCase) RainfallOnMesh(m *mesh.Mesh) []float64 {
	raw := make([]float64, m.NCells)
	for c := 0; c < m.NCells; c++ {
		raw[c] = d.ObservedRainfall(m.CellLat[c], m.CellLon[c])
	}
	// One smoothing pass at the mesh scale.
	out := make([]float64, m.NCells)
	for c := int32(0); c < int32(m.NCells); c++ {
		sum := raw[c] * m.CellArea[c]
		wsum := m.CellArea[c]
		for _, nb := range m.CellCells(c) {
			sum += raw[nb] * m.CellArea[nb]
			wsum += m.CellArea[nb]
		}
		out[c] = sum / wsum
	}
	return out
}

// SpatialCorrelation returns the area-weighted Pearson correlation of two
// cell fields over the cells selected by mask (nil = all) — the metric
// the paper uses to show G12L30 beats G11L60 on this case.
func SpatialCorrelation(m *mesh.Mesh, a, b []float64, mask []bool) float64 {
	var wsum, am, bm float64
	for c := 0; c < m.NCells; c++ {
		if mask != nil && !mask[c] {
			continue
		}
		w := m.CellArea[c]
		wsum += w
		am += w * a[c]
		bm += w * b[c]
	}
	am /= wsum
	bm /= wsum
	var cov, va, vb float64
	for c := 0; c < m.NCells; c++ {
		if mask != nil && !mask[c] {
			continue
		}
		w := m.CellArea[c]
		cov += w * (a[c] - am) * (b[c] - bm)
		va += w * (a[c] - am) * (a[c] - am)
		vb += w * (b[c] - bm) * (b[c] - bm)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// RegionMask selects the cells within radius (radians) of a center — the
// North China verification box.
func RegionMask(m *mesh.Mesh, lat, lon, radius float64) []bool {
	center := mesh.FromLatLon(lat, lon)
	mask := make([]bool, m.NCells)
	for c := 0; c < m.NCells; c++ {
		mask[c] = mesh.ArcLength(m.CellPos[c], center) < radius
	}
	return mask
}
