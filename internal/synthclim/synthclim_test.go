package synthclim

import (
	"math"
	"testing"
	"testing/quick"

	"gristgo/internal/mesh"
)

func TestTable1MatchesPaper(t *testing.T) {
	ps := Table1()
	if len(ps) != 4 {
		t.Fatalf("periods = %d", len(ps))
	}
	if TotalDays() != 80 {
		t.Errorf("total days = %d, want 80", TotalDays())
	}
	if ps[0].ONI != 2.2 || ps[0].ENSOPhase != "El Niño" {
		t.Errorf("period 1: %+v", ps[0])
	}
	if ps[3].ONI != -1.5 || ps[3].ENSOPhase != "La Niña" {
		t.Errorf("period 4: %+v", ps[3])
	}
	// Seasons covered: Jan, Apr, Jul, Oct.
	months := map[int]bool{}
	for _, p := range ps {
		months[p.StartMon] = true
	}
	for _, m := range []int{1, 4, 7, 10} {
		if !months[m] {
			t.Errorf("month %d missing", m)
		}
	}
}

func TestSSTPhysicallyPlausible(t *testing.T) {
	f := func(latRaw, lonRaw float64) bool {
		lat := math.Mod(math.Abs(latRaw), math.Pi/2)
		lon := math.Mod(lonRaw, math.Pi)
		for _, p := range Table1() {
			cl := ForPeriod(p, 5)
			sst := cl.SST(lat, lon)
			if sst < 260 || sst > 310 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSSTWarmerAtEquator(t *testing.T) {
	cl := ForPeriod(Table1()[1], 0)
	if cl.SST(0, 2) <= cl.SST(1.2, 2) {
		t.Error("equator not warmer than high latitudes")
	}
}

func TestENSOAnomalySign(t *testing.T) {
	nino := ForPeriod(Table1()[0], 0) // ONI +2.2
	nina := ForPeriod(Table1()[3], 0) // ONI -1.5
	lon := 190 * math.Pi / 180        // Niño-3.4 region
	base := Climate{ONI: 0, RMM: nino.RMM, MJOPhase: nino.MJOPhase, Season: nino.Season}
	if nino.SST(0, lon) <= base.SST(0, lon) {
		t.Error("El Niño does not warm the equatorial Pacific")
	}
	base.Season = nina.Season
	base.RMM, base.MJOPhase = nina.RMM, nina.MJOPhase
	if nina.SST(0, lon) >= base.SST(0, lon) {
		t.Error("La Niña does not cool the equatorial Pacific")
	}
}

func TestMJOPropagatesEast(t *testing.T) {
	p := Table1()[1]
	lon := 1.5
	c0 := ForPeriod(p, 0)
	// The phase longitude shifts east with time; the anomaly at a fixed
	// longitude must change over days.
	c5 := ForPeriod(p, 5)
	if c0.MJOPhase >= c5.MJOPhase {
		t.Error("MJO phase not advancing")
	}
	if math.Abs(c0.SurfaceHumidity(0, lon)-c5.SurfaceHumidity(0, lon)) < 1e-4 {
		t.Error("MJO has no humidity signal")
	}
}

func TestLandFractionRange(t *testing.T) {
	f := func(lat, lon float64) bool {
		la := math.Mod(lat, math.Pi/2)
		lo := math.Mod(lon, math.Pi)
		l := LandFraction(la, lo)
		return l >= 0 && l <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Eurasia is land, central Pacific is ocean.
	if LandFraction(45*math.Pi/180, 100*math.Pi/180) < 0.5 {
		t.Error("Eurasia not land")
	}
	if LandFraction(0, -160*math.Pi/180) > 0.2 {
		t.Error("central Pacific not ocean")
	}
}

func TestSeaIcePolarOnly(t *testing.T) {
	cl := ForPeriod(Table1()[0], 0)
	if cl.SeaIce(0) != 0 {
		t.Error("sea ice at the equator")
	}
	if cl.SeaIce(85*math.Pi/180) <= 0.5 {
		t.Error("no sea ice near the pole")
	}
}

func TestHumidityITCZBand(t *testing.T) {
	cl := ForPeriod(Table1()[2], 0) // July: ITCZ north of equator
	itcz := cl.SurfaceHumidity(8*math.Pi/180, 0)
	subtrop := cl.SurfaceHumidity(-30*math.Pi/180, 0)
	if itcz <= subtrop {
		t.Errorf("ITCZ humidity %v <= subtropics %v", itcz, subtrop)
	}
}

func TestDoksuriObservedStructure(t *testing.T) {
	d := NewDoksuriCase()
	// Rainfall maximum near the North China core.
	core := d.ObservedRainfall(d.RainLat, d.RainLon)
	far := d.ObservedRainfall(d.RainLat, d.RainLon+0.3)
	if core < 100 {
		t.Errorf("extreme core only %v mm/day", core)
	}
	if core < 3*far {
		t.Errorf("core %v not much larger than far field %v", core, far)
	}
	// Eyewall band near the storm.
	eye := d.ObservedRainfall(d.StormLat+0.8*d.Rmax, d.StormLon)
	if eye < 50 {
		t.Errorf("eyewall rain only %v", eye)
	}
	// Nonnegative everywhere.
	for lat := -1.4; lat < 1.4; lat += 0.2 {
		for lon := -3.0; lon < 3.0; lon += 0.3 {
			if d.ObservedRainfall(lat, lon) < 0 {
				t.Fatalf("negative rainfall at (%v,%v)", lat, lon)
			}
		}
	}
}

func TestRainfallOnMeshResolutionSensitivity(t *testing.T) {
	// The coarse mesh must lose variance relative to the finer mesh —
	// the mechanism behind Fig. 7's resolution sensitivity.
	d := NewDoksuriCase()
	coarse := mesh.New(4)
	fine := mesh.New(5)
	mask := RegionMask(fine, d.RainLat, d.RainLon, 0.25)
	rc := d.RainfallOnMesh(coarse)
	rf := d.RainfallOnMesh(fine)

	peak := func(m *mesh.Mesh, r []float64, lat, lon float64) float64 {
		center := mesh.FromLatLon(lat, lon)
		best := 0.0
		for c := 0; c < m.NCells; c++ {
			if mesh.ArcLength(m.CellPos[c], center) < 0.15 && r[c] > best {
				best = r[c]
			}
		}
		return best
	}
	if pf, pc := peak(fine, rf, d.RainLat, d.RainLon), peak(coarse, rc, d.RainLat, d.RainLon); pf <= pc {
		t.Errorf("fine mesh peak %v <= coarse peak %v", pf, pc)
	}
	_ = mask
}

func TestSpatialCorrelationProperties(t *testing.T) {
	m := mesh.New(3)
	a := make([]float64, m.NCells)
	for c := range a {
		a[c] = math.Sin(3 * m.CellLat[c])
	}
	// Perfect self-correlation.
	if r := SpatialCorrelation(m, a, a, nil); math.Abs(r-1) > 1e-12 {
		t.Errorf("self-correlation = %v", r)
	}
	// Anti-correlation with the negative.
	b := make([]float64, m.NCells)
	for c := range b {
		b[c] = -a[c]
	}
	if r := SpatialCorrelation(m, a, b, nil); math.Abs(r+1) > 1e-12 {
		t.Errorf("anti-correlation = %v", r)
	}
}

func TestZonalWindJetStructure(t *testing.T) {
	cl := ForPeriod(Table1()[0], 0)
	jet := cl.ZonalWind(40*math.Pi/180, 0.3)
	eq := cl.ZonalWind(0, 0.9)
	if jet < 10 {
		t.Errorf("midlatitude jet too weak: %v", jet)
	}
	if eq > 0 {
		t.Errorf("no easterly trades at the surface equator: %v", eq)
	}
}

func TestTerrainStructure(t *testing.T) {
	// Ocean is flat.
	if h := Terrain(0, -160*math.Pi/180); h != 0 {
		t.Errorf("mid-Pacific terrain %v", h)
	}
	// The Taihang-like ridge rises over its surroundings.
	ridge := Terrain(38.5*math.Pi/180, 113.5*math.Pi/180)
	plain := Terrain(38.5*math.Pi/180, 120.0*math.Pi/180)
	if ridge < plain+800 {
		t.Errorf("ridge %v not prominent over plain %v", ridge, plain)
	}
	// Tibetan-plateau-like bulk is the highest feature.
	tp := Terrain(33*math.Pi/180, 88*math.Pi/180)
	if tp < 3000 {
		t.Errorf("plateau only %v m", tp)
	}
	// Terrain is nonnegative and bounded.
	for lat := -1.5; lat <= 1.5; lat += 0.1 {
		for lon := -3.1; lon <= 3.1; lon += 0.2 {
			h := Terrain(lat, lon)
			if h < 0 || h > 9000 {
				t.Fatalf("terrain %v at (%v,%v)", h, lat, lon)
			}
		}
	}
}

func TestTerrainContinuity(t *testing.T) {
	// No cliffs: adjacent samples at ~20 km spacing differ by < 600 m.
	const step = 0.003
	for lat := 0.3; lat < 0.9; lat += step {
		h1 := Terrain(lat, 2.0)
		h2 := Terrain(lat+step, 2.0)
		if math.Abs(h2-h1) > 600 {
			t.Fatalf("terrain jump %v m at lat %v", h2-h1, lat)
		}
	}
}
