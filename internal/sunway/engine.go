package sunway

// Ctx is the execution context a kernel body sees: loads and stores pass
// through the memory model, arithmetic advances the cycle count. The
// same body runs on the MPE (serial, weak memory) or on a CPE (LDCache +
// shared DRAM bandwidth), which is what makes the Fig. 9 comparisons
// mechanistic rather than curve-fit.
type Ctx interface {
	// Load returns element i of the array, charging the memory model.
	Load(a *Array, i int) float64
	// Store writes element i of the array, charging the memory model.
	Store(a *Array, i int, v float64)
	// Flop charges n ordinary floating-point operations.
	Flop(n int)
	// Div charges n divisions (or square roots) at the word size of the
	// kernel's working precision.
	Div(n int, word int)
	// Elem charges n elementary-function evaluations (exp, log, pow).
	Elem(n int, word int)
}

// mpeCtx executes on the management processing element.
type mpeCtx struct {
	cycles uint64
	flops  uint64
	bytes  uint64
}

func (m *mpeCtx) Load(a *Array, i int) float64 {
	m.cycles += mpeMemCycles
	m.bytes += uint64(a.Word)
	return a.Data[i]
}

func (m *mpeCtx) Store(a *Array, i int, v float64) {
	m.cycles += mpeMemCycles
	m.bytes += uint64(a.Word)
	a.Data[i] = v
}

func (m *mpeCtx) Flop(n int) {
	m.cycles += uint64(n * flopCycles)
	m.flops += uint64(n)
}

// Div on the MPE: the paper notes mixed precision yields no significant
// speedup on the MPE side (§4.6) — its divider costs the same either way.
func (m *mpeCtx) Div(n int, word int) {
	m.cycles += uint64(n * mpeDivCycles)
	m.flops += uint64(n)
}

func (m *mpeCtx) Elem(n int, word int) {
	m.cycles += uint64(n * mpeElemCycles)
	m.flops += uint64(n * 8) // an elementary call is ~8 flops of useful work
}

// cpeCtx executes on one computing processing element.
type cpeCtx struct {
	cache  LDCache
	cycles uint64
	flops  uint64
	bytes  uint64 // DRAM traffic from misses
}

func (c *cpeCtx) touch(a *Array, i int) {
	if c.cache.Access(a.addr(i)) {
		c.cycles += cpeHitCycles
	} else {
		c.cycles += cpeMissCycles
		c.bytes += CacheLineBytes
	}
}

func (c *cpeCtx) Load(a *Array, i int) float64 {
	c.touch(a, i)
	return a.Data[i]
}

func (c *cpeCtx) Store(a *Array, i int, v float64) {
	c.touch(a, i)
	a.Data[i] = v
}

func (c *cpeCtx) Flop(n int) {
	c.cycles += uint64(n * flopCycles)
	c.flops += uint64(n)
}

func (c *cpeCtx) Div(n int, word int) {
	cost := divCyclesFP64
	if word == FP32 {
		cost = divCyclesFP32
	}
	c.cycles += uint64(n * cost)
	c.flops += uint64(n)
}

func (c *cpeCtx) Elem(n int, word int) {
	cost := elemCyclesFP64
	if word == FP32 {
		cost = elemCyclesFP32
	}
	c.cycles += uint64(n * cost)
	c.flops += uint64(n * 8)
}

// KernelBody is one iteration of a parallel loop: it receives the
// context and the iteration index.
type KernelBody func(ctx Ctx, iter int)

// RunMPE executes iterations [0, n) serially on the MPE and returns the
// modeled statistics — the MPE-DP baseline of Fig. 9.
func RunMPE(n int, body KernelBody) Stats {
	ctx := &mpeCtx{}
	for i := 0; i < n; i++ {
		body(ctx, i)
	}
	return Stats{
		Cycles:    ctx.cycles,
		Flops:     ctx.flops,
		BytesDRAM: ctx.bytes,
		Seconds:   float64(ctx.cycles) / ClockHz,
	}
}

// RunCPEs executes iterations [0, n) across the 64 CPEs of one core
// group with static block distribution (the "!$omp do" schedule of the
// SWGOMP example in Fig. 4). The modeled wall time is the maximum of the
// slowest CPE's critical path and the shared-DRAM bandwidth bound, plus
// the job-server spawn overhead.
func RunCPEs(n int, body KernelBody) Stats {
	var total Stats
	chunk := (n + CPEsPerCG - 1) / CPEsPerCG
	var maxCycles uint64
	for cpe := 0; cpe < CPEsPerCG; cpe++ {
		lo := cpe * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		ctx := &cpeCtx{}
		for i := lo; i < hi; i++ {
			body(ctx, i)
		}
		if ctx.cycles > maxCycles {
			maxCycles = ctx.cycles
		}
		total.Flops += ctx.flops
		total.BytesDRAM += ctx.bytes
		total.Hits += ctx.cache.Hits
		total.Misses += ctx.cache.Misses
	}
	// Spawn overhead: MPE -> team head, team head -> 63 members.
	overhead := uint64(spawnTeamCycles + (CPEsPerCG-1)*spawnChildCycles)
	total.Cycles = maxCycles + overhead

	critical := float64(total.Cycles) / ClockHz
	bandwidth := float64(total.BytesDRAM) / MemBandwidthBytesPerSec
	if bandwidth > critical {
		total.Seconds = bandwidth
	} else {
		total.Seconds = critical
	}
	return total
}

// AchievedFlops returns the fraction of the core group's peak FLOP rate
// a kernel achieved — the metric behind the paper's RRTMG (6%) vs ML
// radiation (74-84%) comparison in §4.7. Peak: 64 CPEs x 8 flops/cycle.
func (s Stats) AchievedFlops() float64 {
	if s.Seconds == 0 {
		return 0
	}
	peak := float64(CPEsPerCG) * 8 * ClockHz
	return float64(s.Flops) / s.Seconds / peak
}
