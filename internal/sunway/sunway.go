// Package sunway models the SW26010P processor of the next-generation
// Sunway supercomputer (§3.3, §4.1 of the paper) closely enough to
// reproduce the mechanisms behind the paper's Fig. 9 kernel study:
//
//   - a core group (CG) holds one management processing element (MPE)
//     and 64 computing processing elements (CPEs) in an 8x8 array;
//   - each CPE has 256 KB of local device memory (LDM), half of which is
//     configured as a 4-way set-associative cache (LDCache) with the
//     other half available as user-programmable scratch;
//   - each CG shares a DDR4 channel with 51.2 GB/s of bandwidth;
//   - CPE kernels are bandwidth-sensitive: single-precision data halves
//     the traffic, and the address-distributing pool allocator defeats
//     LDCache set aliasing (cache thrashing) when a loop touches more
//     arrays than the cache has ways (§3.3.3, Fig. 6).
//
// The model is trace-driven: kernels execute real Go code against Array
// handles, and every load/store passes through the simulated LDCache
// while arithmetic advances a per-CPE cycle counter. It is a
// cycle-approximate performance model, not an ISA emulator.
package sunway

// Architecture constants of the SW26010P.
const (
	CGsPerNode     = 6
	CPEsPerCG      = 64
	LDMBytes       = 256 * 1024
	LDCacheBytes   = 128 * 1024 // half the LDM configured as cache
	LDCacheWays    = 4
	CacheLineBytes = 256
	CacheSets      = LDCacheBytes / LDCacheWays / CacheLineBytes

	// Per-CG DDR4 channel: 16 GB at 51.2 GB/s.
	MemBandwidthBytesPerSec = 51.2e9
	ClockHz                 = 2.1e9

	// Cost model (cycles). The MPE is modeled as a weak scalar core with
	// high average memory access cost (no deep prefetching on indirect
	// unstructured accesses); CPEs hit their LDCache in a few cycles and
	// pay a long-latency DDR access per miss.
	mpeMemCycles     = 6
	mpeDivCycles     = 15 // MPE has a hardware divider; FP32 no faster (§4.6)
	mpeElemCycles    = 40
	cpeHitCycles     = 2
	cpeMissCycles    = 180
	flopCycles       = 1
	divCyclesFP64    = 22 // CPE divisions are slow and halve in FP32 (§4.6)
	divCyclesFP32    = 13
	elemCyclesFP64   = 60 // exp/log/pow
	elemCyclesFP32   = 35
	spawnTeamCycles  = 2000 // MPE -> team head launch via the job server
	spawnChildCycles = 200  // team head -> team member
)

// Word sizes.
const (
	FP32 = 4
	FP64 = 8
)

// cacheLine is one LDCache line.
type cacheLine struct {
	tag   uint64
	valid bool
	lru   uint64
}

// LDCache is the 4-way group-associative cache of one CPE.
type LDCache struct {
	sets   [CacheSets][LDCacheWays]cacheLine
	clock  uint64
	Hits   uint64
	Misses uint64
}

// Reset clears the cache contents and counters.
func (c *LDCache) Reset() {
	*c = LDCache{}
}

// Access touches the line containing addr and reports whether it hit.
func (c *LDCache) Access(addr uint64) bool {
	c.clock++
	lineAddr := addr / CacheLineBytes
	set := lineAddr % CacheSets
	tag := lineAddr / CacheSets
	ways := &c.sets[set]
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			ways[w].lru = c.clock
			c.Hits++
			return true
		}
	}
	// Miss: evict LRU.
	victim := 0
	for w := 1; w < LDCacheWays; w++ {
		if !ways[w].valid {
			victim = w
			break
		}
		if ways[w].lru < ways[victim].lru {
			victim = w
		}
	}
	ways[victim] = cacheLine{tag: tag, valid: true, lru: c.clock}
	c.Misses++
	return false
}

// AccessRange touches every line in [addr, addr+size) and returns the
// number of misses.
func (c *LDCache) AccessRange(addr uint64, size int) int {
	first := addr / CacheLineBytes
	last := (addr + uint64(size) - 1) / CacheLineBytes
	misses := 0
	for l := first; l <= last; l++ {
		if !c.Access(l * CacheLineBytes) {
			misses++
		}
	}
	return misses
}

// Array is a simulated main-memory array with a base address assigned by
// an Allocator. Data is held as float64 regardless of the simulated
// element width; Word selects the traffic cost.
type Array struct {
	Name string
	Base uint64
	Word int // FP32 or FP64
	Data []float64
}

// At reads element i without touching the cache model (for verification).
func (a *Array) At(i int) float64 { return a.Data[i] }

// addr returns the simulated address of element i.
func (a *Array) addr(i int) uint64 { return a.Base + uint64(i*a.Word) }

// Allocator assigns simulated base addresses, optionally applying the
// memory-address-distribution strategy of §3.3.3: without distribution,
// arrays start cache-way aligned (the worst case the paper diagnoses —
// same-index accesses to k arrays map to the same set and thrash a
// 4-way cache when k > 4); with distribution, starting addresses are
// staggered across sets so concurrent streams land in different lanes.
type Allocator struct {
	Distribute bool
	next       uint64
	count      int
}

// NewAllocator returns an allocator; distribute selects the
// address-distributing pool strategy (the "DST" variants of Fig. 9).
func NewAllocator(distribute bool) *Allocator {
	// Base far from zero so address arithmetic stays positive.
	return &Allocator{Distribute: distribute, next: 1 << 20}
}

// Alloc creates an array of n elements with the given word size.
func (a *Allocator) Alloc(name string, n, word int) *Array {
	size := uint64(n * word)
	// Round the raw allocation to a cache-way stride so that without
	// distribution every array begins at set 0 (maximal aliasing).
	wayStride := uint64(LDCacheBytes / LDCacheWays)
	base := (a.next + wayStride - 1) / wayStride * wayStride
	if a.Distribute {
		// Stagger successive arrays across the sets.
		base += uint64(a.count%LDCacheWays*4+a.count%CacheSets) * CacheLineBytes
	}
	a.count++
	a.next = base + size
	return &Array{Name: name, Base: base, Word: word, Data: make([]float64, n)}
}

// Stats aggregates a kernel execution on one engine.
type Stats struct {
	Cycles       uint64  // critical-path cycles (max over CPEs, or MPE total)
	Flops        uint64  // floating-point operations executed
	BytesDRAM    uint64  // bytes moved between DRAM and the cores
	Hits, Misses uint64  // LDCache statistics (CPE runs)
	Seconds      float64 // modeled wall time
}

// HitRate returns the LDCache hit fraction.
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}
