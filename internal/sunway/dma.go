package sunway

// DMA models the per-CPE direct-memory-access engine used by omnicopy
// (§3.3.2): bulk transfers between main memory and the LDM bypass the
// LDCache, paying a setup latency plus streaming bandwidth, after which
// accesses hit the LDM at register-like cost.
const (
	dmaSetupCycles = 400 // descriptor setup + engine start
	// Streaming DMA reaches a high fraction of the DDR channel; the
	// per-CPE share assumes concurrent transfers from the whole array.
	dmaBytesPerCycle = 8.0 // per CPE when the channel is not saturated
	ldmAccessCycles  = 1   // LDM scratch access after staging
)

// DMACycles returns the modeled cycle cost of staging n bytes into LDM.
func DMACycles(bytes int) float64 {
	return dmaSetupCycles + float64(bytes)/dmaBytesPerCycle
}

// StagedAccessCycles returns the total cost of staging an array slice of
// the given size into LDM once and then accessing each element the given
// number of times — the omnicopy strategy of §3.3.4.
func StagedAccessCycles(bytes, accesses int) float64 {
	return DMACycles(bytes) + float64(accesses*ldmAccessCycles)
}

// CachedAccessCycles returns the cost of the same accesses through the
// LDCache at a given hit rate.
func CachedAccessCycles(accesses int, hitRate float64) float64 {
	h := float64(accesses) * hitRate
	m := float64(accesses) - h
	return h*cpeHitCycles + m*cpeMissCycles
}

// OmnicopyWins reports whether staging an array slice through DMA beats
// reading it through a cache achieving the given hit rate. DMA streaming
// beats demand-miss streaming almost always (that is why it exists); the
// binding constraint is the 128 KB LDM scratch, handled by ChooseStaged.
func OmnicopyWins(bytes, accesses int, cacheHitRate float64) bool {
	return StagedAccessCycles(bytes, accesses) < CachedAccessCycles(accesses, cacheHitRate)
}

// StagedArray describes one candidate array slice for LDM staging.
type StagedArray struct {
	Name     string
	Bytes    int // per-CPE slice size
	Accesses int // element accesses per kernel invocation
}

// ChooseStaged implements the §3.3.4 procedure: given the kernel's
// arrays and the LDM scratch budget, stage the most access-intensive
// arrays into LDM until either the scratch is full or the number left
// going through the LDCache no longer exceeds its associativity (the
// thrashing condition of Fig. 6). Returns the names chosen, in order.
func ChooseStaged(arrays []StagedArray, scratchBytes int) []string {
	// Order by access density (accesses per byte), highest first —
	// simple selection sort keeps this dependency-free and stable.
	idx := make([]int, len(arrays))
	for i := range idx {
		idx[i] = i
	}
	density := func(a StagedArray) float64 {
		if a.Bytes == 0 {
			return 0
		}
		return float64(a.Accesses) / float64(a.Bytes)
	}
	for i := 0; i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if density(arrays[idx[j]]) > density(arrays[idx[best]]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}

	var chosen []string
	used := 0
	remaining := len(arrays)
	for _, i := range idx {
		if remaining <= LDCacheWays {
			break // cache can hold the rest without thrashing
		}
		if used+arrays[i].Bytes > scratchBytes {
			continue
		}
		chosen = append(chosen, arrays[i].Name)
		used += arrays[i].Bytes
		remaining--
	}
	return chosen
}
