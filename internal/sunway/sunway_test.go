package sunway

import (
	"math"
	"testing"
	"testing/quick"

	"gristgo/internal/mesh"
)

func TestLDCacheBasics(t *testing.T) {
	var c LDCache
	// First touch misses, second hits.
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("warm access missed")
	}
	if !c.Access(0x1000 + CacheLineBytes - 1) {
		t.Error("same-line access missed")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLDCacheInvariantHitsPlusMisses(t *testing.T) {
	f := func(seed int64) bool {
		var c LDCache
		n := uint64(0)
		x := uint64(seed)
		for i := 0; i < 2000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			c.Access(x % (1 << 24))
			n++
		}
		return c.Hits+c.Misses == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLDCacheAssociativityThrashing(t *testing.T) {
	// Access way-stride-aligned addresses: k streams alias to the same
	// set. With k <= ways they all fit; with k > ways LRU thrashes.
	wayStride := uint64(LDCacheBytes / LDCacheWays)

	rate := func(streams int) float64 {
		var c LDCache
		for round := 0; round < 4; round++ {
			for i := 0; i < 512; i++ {
				for s := 0; s < streams; s++ {
					c.Access(uint64(s)*wayStride + uint64(i)) // same line per round
				}
			}
		}
		return float64(c.Hits) / float64(c.Hits+c.Misses)
	}
	if r := rate(4); r < 0.9 {
		t.Errorf("4 aliased streams should fit a 4-way cache: hit rate %.3f", r)
	}
	if r := rate(8); r > 0.5 {
		t.Errorf("8 aliased streams should thrash a 4-way cache: hit rate %.3f", r)
	}
}

func TestAllocatorDistributionDefeatsAliasing(t *testing.T) {
	// Eight same-index streams: without distribution they alias; with
	// distribution they spread over sets and mostly hit after the cold
	// pass.
	measure := func(distribute bool) float64 {
		al := NewAllocator(distribute)
		arrays := make([]*Array, 8)
		for i := range arrays {
			arrays[i] = al.Alloc("a", 4096, FP64)
		}
		var c LDCache
		for i := 0; i < 4096; i++ {
			for _, a := range arrays {
				c.Access(a.addr(i))
			}
		}
		return float64(c.Hits) / float64(c.Hits+c.Misses)
	}
	plain := measure(false)
	dst := measure(true)
	if dst <= plain+0.2 {
		t.Errorf("address distribution did not help: plain=%.3f dst=%.3f", plain, dst)
	}
	if plain > 0.3 {
		t.Errorf("aliased layout unexpectedly cached well: %.3f", plain)
	}
}

func TestMPECPEProduceSameResults(t *testing.T) {
	m := mesh.New(3)
	nlev := 8
	for _, k := range Kernels() {
		_, sumMPE := k.Run(Variant{OnCPE: false}, m, nlev)
		_, sumCPE := k.Run(Variant{OnCPE: true}, m, nlev)
		if math.Abs(sumMPE-sumCPE) > 1e-9*(1+math.Abs(sumMPE)) {
			t.Errorf("%s: MPE %g vs CPE %g", k.Name, sumMPE, sumCPE)
		}
	}
}

func TestMixedPrecisionResultsWithinTolerance(t *testing.T) {
	m := mesh.New(3)
	nlev := 8
	for _, k := range Kernels() {
		if !k.HasMixed {
			continue
		}
		_, dp := k.Run(Variant{OnCPE: true}, m, nlev)
		_, mx := k.Run(Variant{OnCPE: true, Mixed: true}, m, nlev)
		if rel := math.Abs(dp-mx) / (1 + math.Abs(dp)); rel > 1e-3 {
			t.Errorf("%s: mixed checksum deviates %g", k.Name, rel)
		}
	}
}

func TestFig9SpeedupShape(t *testing.T) {
	// The headline claims of Fig. 9 / the artifact appendix:
	// 1. CPE variants beat MPE-DP by roughly 20-70x at the best variant.
	// 2. Mixed precision helps bandwidth-bound CPE kernels.
	// 3. calc_coriolis_term (no mixed precision, few arrays) benefits
	//    least from MIX/DST.
	m := mesh.New(4)
	nlev := 16

	best := map[string]float64{}
	mixGain := map[string]float64{}
	for _, k := range Kernels() {
		base, _ := k.Run(Variant{OnCPE: false}, m, nlev)
		var bestSpeedup float64
		cpeDP, _ := k.Run(Variant{OnCPE: true, Distribute: true}, m, nlev)
		cpeMX, _ := k.Run(Variant{OnCPE: true, Mixed: true, Distribute: true}, m, nlev)
		for _, s := range []Stats{cpeDP, cpeMX} {
			if sp := base.Seconds / s.Seconds; sp > bestSpeedup {
				bestSpeedup = sp
			}
		}
		best[k.Name] = bestSpeedup
		mixGain[k.Name] = cpeDP.Seconds / cpeMX.Seconds
	}

	for name, sp := range best {
		if sp < 18 || sp > 80 {
			t.Errorf("%s: best CPE speedup %.1fx outside the paper's ~20-70x band", name, sp)
		}
	}
	// Mixed precision must help the flagged kernels...
	for _, name := range []string{"tracer_transport_hori_flux_limiter", "compute_rrr", "primal_normal_flux_edge"} {
		if mixGain[name] < 1.2 {
			t.Errorf("%s: mixed precision gain only %.2fx", name, mixGain[name])
		}
	}
	// ...and calc_coriolis_term least of all.
	for _, name := range []string{"tracer_transport_hori_flux_limiter", "compute_rrr", "primal_normal_flux_edge"} {
		if mixGain["calc_coriolis_term"] > mixGain[name] {
			t.Errorf("calc_coriolis_term gains more than %s (%.2f vs %.2f)",
				name, mixGain["calc_coriolis_term"], mixGain[name])
		}
	}
}

func TestDSTHelpsManyArrayKernel(t *testing.T) {
	m := mesh.New(4)
	nlev := 16
	var limiter Kernel
	for _, k := range Kernels() {
		if k.Name == "tracer_transport_hori_flux_limiter" {
			limiter = k
		}
	}
	plain, _ := limiter.Run(Variant{OnCPE: true}, m, nlev)
	dst, _ := limiter.Run(Variant{OnCPE: true, Distribute: true}, m, nlev)
	if dst.HitRate() <= plain.HitRate() {
		t.Errorf("DST did not raise hit rate: %.3f vs %.3f", dst.HitRate(), plain.HitRate())
	}
	if dst.Seconds >= plain.Seconds {
		t.Errorf("DST did not speed up the limiter: %.3g vs %.3g s", dst.Seconds, plain.Seconds)
	}
}

func TestAchievedFlopsFractionSane(t *testing.T) {
	m := mesh.New(3)
	for _, k := range Kernels() {
		s, _ := k.Run(Variant{OnCPE: true, Mixed: true, Distribute: true}, m, 8)
		f := s.AchievedFlops()
		if f <= 0 || f > 1 {
			t.Errorf("%s: achieved flops fraction %v", k.Name, f)
		}
	}
}

func TestStatsHitRate(t *testing.T) {
	s := Stats{Hits: 75, Misses: 25}
	if s.HitRate() != 0.75 {
		t.Errorf("hit rate %v", s.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty stats hit rate")
	}
}

func TestVariantLabels(t *testing.T) {
	cases := map[string]Variant{
		"MPE-DP":      {},
		"CPE-DP":      {OnCPE: true},
		"CPE-DP+DST":  {OnCPE: true, Distribute: true},
		"CPE-MIX":     {OnCPE: true, Mixed: true},
		"CPE-MIX+DST": {OnCPE: true, Mixed: true, Distribute: true},
	}
	for want, v := range cases {
		if v.Label() != want {
			t.Errorf("label = %q, want %q", v.Label(), want)
		}
	}
}

func TestAccessRangeCountsLines(t *testing.T) {
	var c LDCache
	// 4 lines cold.
	if m := c.AccessRange(0, 4*CacheLineBytes); m != 4 {
		t.Errorf("misses = %d", m)
	}
	// Same range again: all warm.
	if m := c.AccessRange(0, 4*CacheLineBytes); m != 0 {
		t.Errorf("warm misses = %d", m)
	}
}

func TestFP32ArrayRoundsOnFill(t *testing.T) {
	al := NewAllocator(false)
	a := al.Alloc("x", 4, FP32)
	fill(a, func(i int) float64 { return 1.0000000001 })
	if a.At(0) != float64(float32(1.0000000001)) {
		t.Error("FP32 array did not round stored values")
	}
}
