package sunway

import (
	"math"

	"gristgo/internal/mesh"
	"gristgo/internal/precision"
)

// Variant selects one bar of the paper's Fig. 9: where the kernel runs,
// whether insensitive arrays are demoted to FP32 (MIX), and whether the
// address-distributing pool allocator is active (DST).
type Variant struct {
	OnCPE      bool
	Mixed      bool
	Distribute bool
}

// Label renders the Fig. 9 bar name.
func (v Variant) Label() string {
	s := "MPE-DP"
	if v.OnCPE {
		if v.Mixed {
			s = "CPE-MIX"
		} else {
			s = "CPE-DP"
		}
		if v.Distribute {
			s += "+DST"
		}
	}
	return s
}

// Fig9Variants lists the bars of Fig. 9 in presentation order.
func Fig9Variants() []Variant {
	return []Variant{
		{OnCPE: false},
		{OnCPE: true},
		{OnCPE: true, Distribute: true},
		{OnCPE: true, Mixed: true},
		{OnCPE: true, Mixed: true, Distribute: true},
	}
}

// Kernel is one of the major kernels studied in Fig. 9.
type Kernel struct {
	Name string
	// HasMixed reports whether the kernel has a mixed-precision
	// implementation (calc_coriolis_term does not — §4.6).
	HasMixed bool
	// Run executes the kernel under the variant on the given mesh
	// workload and returns the modeled stats plus a result checksum for
	// correctness comparisons.
	Run func(v Variant, m *mesh.Mesh, nlev int) (Stats, float64)
}

// word returns the simulated element width of insensitive arrays under
// the variant.
func word(v Variant, hasMixed bool) int {
	if v.Mixed && hasMixed {
		return FP32
	}
	return FP64
}

// run dispatches to the right engine.
func run(v Variant, n int, body KernelBody) Stats {
	if v.OnCPE {
		return RunCPEs(n, body)
	}
	return RunMPE(n, body)
}

// storeRounded models FP32 storage rounding for demoted arrays.
func storeRounded(ctx Ctx, a *Array, i int, val float64) {
	if a.Word == FP32 {
		val = precision.Round32(val)
	}
	ctx.Store(a, i, val)
}

// checksum sums an array for cross-variant correctness checks.
func checksum(a *Array) float64 {
	var s float64
	for _, x := range a.Data {
		s += x
	}
	return s
}

// fill initializes array data deterministically.
func fill(a *Array, f func(i int) float64) {
	for i := range a.Data {
		v := f(i)
		if a.Word == FP32 {
			v = precision.Round32(v)
		}
		a.Data[i] = v
	}
}

// Kernels returns the Fig. 9 kernel set.
func Kernels() []Kernel {
	return []Kernel{
		{Name: "tracer_transport_hori_flux_limiter", HasMixed: true, Run: tracerFluxLimiter},
		{Name: "compute_rrr", HasMixed: true, Run: computeRRR},
		{Name: "primal_normal_flux_edge", HasMixed: true, Run: primalNormalFluxEdge},
		{Name: "grad_kinetic_energy", HasMixed: true, Run: gradKineticEnergy},
		{Name: "div_mass_flux", HasMixed: true, Run: divMassFlux},
		{Name: "calc_coriolis_term", HasMixed: false, Run: calcCoriolisTerm},
	}
}

// tracerFluxLimiter models the Zalesak limiter application: per edge and
// level it touches eight working arrays with the same index plus the
// double-precision mass flux — the many-array access pattern that
// thrashes a 4-way LDCache without address distribution (§3.3.3).
func tracerFluxLimiter(v Variant, m *mesh.Mesh, nlev int) (Stats, float64) {
	w := word(v, true)
	al := NewAllocator(v.Distribute)
	ne := m.NEdges
	n := ne * nlev

	massFlux := al.Alloc("massflux", n, FP64) // always FP64 (§3.4.2)
	fluxLo := al.Alloc("fluxlo", n, w)
	fluxA := al.Alloc("fluxa", n, w)
	qtd0 := al.Alloc("qtd0", n, w)
	qtd1 := al.Alloc("qtd1", n, w)
	rp0 := al.Alloc("rplus0", n, w)
	rp1 := al.Alloc("rplus1", n, w)
	rm0 := al.Alloc("rminus0", n, w)
	rm1 := al.Alloc("rminus1", n, w)
	out := al.Alloc("limited", n, w)

	fill(massFlux, func(i int) float64 { return math.Sin(float64(i)) * 500 })
	fill(fluxA, func(i int) float64 { return math.Cos(float64(i)) })
	fill(fluxLo, func(i int) float64 { return math.Sin(float64(i) * 0.7) })
	for _, a := range []*Array{qtd0, qtd1, rp0, rp1, rm0, rm1} {
		fill(a, func(i int) float64 { return 0.5 + 0.4*math.Sin(float64(i)*0.3) })
	}

	stats := run(v, ne, func(ctx Ctx, e int) {
		for k := 0; k < nlev; k++ {
			i := e*nlev + k
			mf := ctx.Load(massFlux, i)
			a := ctx.Load(fluxA, i)
			lo := ctx.Load(fluxLo, i)
			q0 := ctx.Load(qtd0, i)
			q1 := ctx.Load(qtd1, i)
			var c float64
			if a >= 0 {
				c = math.Min(ctx.Load(rm0, i), ctx.Load(rp1, i))
			} else {
				c = math.Min(ctx.Load(rp0, i), ctx.Load(rm1, i))
			}
			ctx.Flop(6)
			ctx.Div(1, FP64) // ratio against new mass
			val := lo + c*a + 1e-6*mf*(q0-q1)
			storeRounded(ctx, out, i, val)
		}
	})
	return stats, checksum(out)
}

// computeRRR models the reciprocal-density diagnostic: seven arrays per
// (cell, level) plus pow/divide-heavy equation-of-state work.
func computeRRR(v Variant, m *mesh.Mesh, nlev int) (Stats, float64) {
	w := word(v, true)
	al := NewAllocator(v.Distribute)
	nc := m.NCells
	n := nc * nlev

	phiU := al.Alloc("phi_up", n, w)
	phiD := al.Alloc("phi_dn", n, w)
	dpi := al.Alloc("dpi", n, FP64)
	thm := al.Alloc("thetam", n, FP64)
	rrr := al.Alloc("rrr", n, w)
	pres := al.Alloc("pres", n, FP64)
	exner := al.Alloc("exner", n, FP64)

	fill(phiU, func(i int) float64 { return 2.0e4 + 100*float64(i%nlev) })
	fill(phiD, func(i int) float64 { return 1.9e4 + 100*float64(i%nlev) })
	fill(dpi, func(i int) float64 { return 3000 + 10*math.Sin(float64(i)) })
	fill(thm, func(i int) float64 { return 3000 * (300 + float64(i%nlev)) })

	stats := run(v, nc, func(ctx Ctx, c int) {
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			dphi := ctx.Load(phiU, i) - ctx.Load(phiD, i)
			dp := ctx.Load(dpi, i)
			th := ctx.Load(thm, i)
			ctx.Flop(4)
			ctx.Div(2, word(v, true)) // dphi/dpi and theta = thm/dpi
			r := dphi / dp
			theta := th / dp
			// The EOS pow runs in working precision; only its stored
			// pressure/Exner outputs stay FP64 for the PGF (§3.4.2).
			ctx.Elem(2, word(v, true))
			p := 1e5 * math.Pow(287.04*(dp/dphi)*theta/1e5, 1.4)
			storeRounded(ctx, rrr, i, r)
			ctx.Store(pres, i, p)
			ctx.Store(exner, i, math.Pow(p/1e5, 0.2857))
		}
	})
	return stats, checksum(rrr) + checksum(pres)*1e-9
}

// primalNormalFluxEdge models the edge reconstruction: indirect
// cell-indexed loads plus division/power-heavy blending — the kernel the
// paper singles out for its large mixed-precision gain (§4.6).
func primalNormalFluxEdge(v Variant, m *mesh.Mesh, nlev int) (Stats, float64) {
	w := word(v, true)
	al := NewAllocator(v.Distribute)
	ne := m.NEdges
	nc := m.NCells

	dpiC := al.Alloc("dpi_cell", nc*nlev, w)
	thC := al.Alloc("theta_cell", nc*nlev, w)
	u := al.Alloc("u_edge", ne*nlev, w)
	massE := al.Alloc("mass_edge", ne*nlev, w)
	thE := al.Alloc("theta_edge", ne*nlev, w)
	flux := al.Alloc("flux_edge", ne*nlev, FP64) // accumulated in DP

	fill(dpiC, func(i int) float64 { return 3000 + 20*math.Sin(float64(i)*0.11) })
	fill(thC, func(i int) float64 { return 300 + 30*math.Cos(float64(i)*0.07) })
	fill(u, func(i int) float64 { return 25 * math.Sin(float64(i)*0.13) })

	stats := run(v, ne, func(ctx Ctx, e int) {
		c0 := int(m.EdgeCell[e][0])
		c1 := int(m.EdgeCell[e][1])
		for k := 0; k < nlev; k++ {
			i0 := c0*nlev + k
			i1 := c1*nlev + k
			ie := e*nlev + k
			m0 := ctx.Load(dpiC, i0)
			m1 := ctx.Load(dpiC, i1)
			t0 := ctx.Load(thC, i0)
			t1 := ctx.Load(thC, i1)
			ue := ctx.Load(u, ie)
			au := math.Abs(ue)
			ctx.Flop(10)
			ctx.Div(3, w) // |u| blend weight, harmonic mean, theta blend
			ctx.Elem(1, w)
			wUp := au / (au + 10)
			hm := 2 * m0 * m1 / (m0 + m1)
			me := (1-wUp)*hm + wUp*m0
			te := (1-wUp)*0.5*(t0+t1) + wUp*t0*math.Exp(-1e-4*au)
			storeRounded(ctx, massE, ie, me)
			storeRounded(ctx, thE, ie, te)
			ctx.Store(flux, ie, me*ue)
		}
	})
	return stats, checksum(flux)
}

// gradKineticEnergy models the Fig. 4 example kernel: the kinetic-energy
// gradient tendency at edges.
func gradKineticEnergy(v Variant, m *mesh.Mesh, nlev int) (Stats, float64) {
	w := word(v, true)
	al := NewAllocator(v.Distribute)
	ne := m.NEdges
	nc := m.NCells

	ke := al.Alloc("kinetic_energy", nc*nlev, w)
	leng := al.Alloc("edt_leng", ne, FP64)
	tend := al.Alloc("tend_grad_ke", ne*nlev, w)

	fill(ke, func(i int) float64 { return 100 + 50*math.Sin(float64(i)*0.19) })
	fill(leng, func(i int) float64 { return 1e5 + 1e3*math.Cos(float64(i)) })

	stats := run(v, ne, func(ctx Ctx, e int) {
		c0 := int(m.EdgeCell[e][0])
		c1 := int(m.EdgeCell[e][1])
		l := ctx.Load(leng, e)
		for k := 0; k < nlev; k++ {
			k0 := ctx.Load(ke, c0*nlev+k)
			k1 := ctx.Load(ke, c1*nlev+k)
			ctx.Flop(3)
			ctx.Div(1, w)
			storeRounded(ctx, tend, e*nlev+k, -(k1-k0)/(6.37122e6*l))
		}
	})
	return stats, checksum(tend)
}

// divMassFlux models the cell divergence of the edge mass flux through
// the indirect CSR connectivity.
func divMassFlux(v Variant, m *mesh.Mesh, nlev int) (Stats, float64) {
	w := word(v, true)
	al := NewAllocator(v.Distribute)
	nc := m.NCells
	ne := m.NEdges

	flux := al.Alloc("flux", ne*nlev, w)
	dv := al.Alloc("dv_edge", ne, FP64)
	area := al.Alloc("cell_area", nc, FP64)
	div := al.Alloc("div", nc*nlev, w)

	fill(flux, func(i int) float64 { return 400 * math.Sin(float64(i)*0.23) })
	fill(dv, func(i int) float64 { return 9e4 })
	fill(area, func(i int) float64 { return 7e9 })

	stats := run(v, nc, func(ctx Ctx, c int) {
		inv := 1.0 / ctx.Load(area, c)
		ctx.Div(1, FP64)
		for kk := m.CellOff[c]; kk < m.CellOff[c+1]; kk++ {
			e := int(m.CellEdge[kk])
			sgn := float64(m.CellEdgeSign[kk])
			l := ctx.Load(dv, e)
			for k := 0; k < nlev; k++ {
				i := c*nlev + k
				f := ctx.Load(flux, e*nlev+k)
				cur := ctx.Load(div, i)
				ctx.Flop(4)
				storeRounded(ctx, div, i, cur-sgn*f*l*inv)
			}
		}
	})
	return stats, checksum(div)
}

// calcCoriolisTerm models the Coriolis tendency: few arrays, cheap
// arithmetic, no mixed-precision implementation — the kernel the paper
// shows benefiting least (§4.6).
func calcCoriolisTerm(v Variant, m *mesh.Mesh, nlev int) (Stats, float64) {
	al := NewAllocator(v.Distribute)
	ne := m.NEdges
	nv := m.NVerts

	zeta := al.Alloc("zeta", nv*nlev, FP64)
	vtan := al.Alloc("vtan", ne*nlev, FP64)
	tend := al.Alloc("tend_cor", ne*nlev, FP64)

	fill(zeta, func(i int) float64 { return 1e-5 * math.Sin(float64(i)*0.31) })
	fill(vtan, func(i int) float64 { return 15 * math.Cos(float64(i)*0.17) })

	stats := run(v, ne, func(ctx Ctx, e int) {
		v0 := int(m.EdgeVert[e][0])
		v1 := int(m.EdgeVert[e][1])
		f := 1.0e-4
		for k := 0; k < nlev; k++ {
			z := 0.5 * (ctx.Load(zeta, v0*nlev+k) + ctx.Load(zeta, v1*nlev+k))
			vt := ctx.Load(vtan, e*nlev+k)
			ctx.Flop(4)
			ctx.Store(tend, e*nlev+k, (f+z)*vt)
		}
	})
	return stats, checksum(tend)
}
