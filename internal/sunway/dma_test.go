package sunway

import "testing"

func TestDMACostMonotone(t *testing.T) {
	if DMACycles(0) <= 0 {
		t.Error("setup cost missing")
	}
	if DMACycles(1<<16) <= DMACycles(1<<10) {
		t.Error("cost not monotone in size")
	}
}

func TestOmnicopyDecisionMatchesPaper(t *testing.T) {
	// A thrashing cache (hit rate ~0, as the aliased limiter arrays see)
	// makes DMA staging clearly worthwhile.
	bytes := 8 * 1024 // one array's per-CPE slice
	accesses := 4096  // repeated passes over it
	if !OmnicopyWins(bytes, accesses, 0.05) {
		t.Error("omnicopy should win against a thrashing cache")
	}
	// Data touched once and never re-read gains little: the DMA setup
	// plus transfer approaches the cost of perfect-cache streaming.
	few := OmnicopyWins(1024, 8, 1.0)
	if few {
		t.Error("staging a barely-touched slice should not pay off against a perfect cache")
	}
}

func TestChooseStagedUntilNoThrashing(t *testing.T) {
	// Ten same-index arrays thrash a 4-way cache; staging should pick
	// the densest six so only four remain cached (§3.3.4).
	arrays := make([]StagedArray, 10)
	for i := range arrays {
		arrays[i] = StagedArray{
			Name:     string(rune('a' + i)),
			Bytes:    4 * 1024,
			Accesses: 4096 * (i + 1), // increasing density
		}
	}
	chosen := ChooseStaged(arrays, LDMBytes/2)
	if len(chosen) != 6 {
		t.Fatalf("chose %d arrays, want 6 (leaving 4 = associativity)", len(chosen))
	}
	// Densest first: the last (highest-access) arrays are picked.
	if chosen[0] != "j" || chosen[1] != "i" {
		t.Errorf("choice not by access density: %v", chosen)
	}
}

func TestChooseStagedRespectsCapacity(t *testing.T) {
	arrays := []StagedArray{
		{Name: "big", Bytes: 200 * 1024, Accesses: 1 << 20},
		{Name: "a", Bytes: 8 * 1024, Accesses: 4096},
		{Name: "b", Bytes: 8 * 1024, Accesses: 4096},
		{Name: "c", Bytes: 8 * 1024, Accesses: 4096},
		{Name: "d", Bytes: 8 * 1024, Accesses: 4096},
		{Name: "e", Bytes: 8 * 1024, Accesses: 4096},
	}
	chosen := ChooseStaged(arrays, LDMBytes/2)
	for _, n := range chosen {
		if n == "big" {
			t.Error("staged an array larger than the scratch")
		}
	}
	// 6 arrays, associativity 4: staging stops after 2.
	if len(chosen) != 2 {
		t.Errorf("chose %d, want 2", len(chosen))
	}
}
