package serve

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"gristgo/internal/mesh"
)

// Error is a query-plane failure with its HTTP status. Engine methods
// return *Error so the transport layer maps causes to codes without
// string matching; everything here is a client error (4xx) except the
// single breaker-shed 503, which is scoped to one tile key and carries
// a Retry-After.
type Error struct {
	Code int    `json:"code"`
	Msg  string `json:"error"`

	// RetryAfter, when positive, is the Retry-After header value in
	// seconds (set on breaker-shed 503s only).
	RetryAfter int `json:"-"`
}

func (e *Error) Error() string { return e.Msg }

func badRequest(format string, args ...any) *Error {
	return &Error{Code: 400, Msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) *Error {
	return &Error{Code: 404, Msg: fmt.Sprintf(format, args...)}
}

// unavailable is the one 5xx the engine can produce: a tile build
// breaker is open for the requested key. RetryAfter carries the
// remaining cooldown for the Retry-After header.
func unavailable(retryAfter time.Duration, format string, args ...any) *Error {
	secs := int(retryAfter/time.Second) + 1
	return &Error{Code: 503, Msg: fmt.Sprintf(format, args...), RetryAfter: secs}
}

// Cache-status values reported per query (the X-Grist-Cache header).
const (
	CacheHit       = "hit"       // served from the tile cache
	CacheCoalesced = "coalesced" // joined another request's build
	CacheBuild     = "build"     // led a tile materialization
	CacheBreaker   = "breaker"   // shed: the build breaker is open for this key
)

// Engine answers point, region and time-range queries over the
// retained snapshots: locate -> tile -> cached value. All methods are
// safe for arbitrary concurrency and never mutate snapshot state.
type Engine struct {
	store   *SnapshotStore
	tiler   *Tiler
	cache   *TileCache
	flight  *flightGroup
	breaker *buildBreaker

	builds atomic.Int64
}

// NewEngine assembles an engine over store with ntiles spatial tiles
// and a capTiles-entry cache. The build breaker starts at the default
// threshold/cooldown; SetBreaker tunes it.
func NewEngine(m *mesh.Mesh, store *SnapshotStore, ntiles, capTiles int, seed int64) *Engine {
	return &Engine{
		store:   store,
		tiler:   NewTiler(m, ntiles, seed),
		cache:   NewTileCache(capTiles),
		flight:  newFlightGroup(),
		breaker: newBuildBreaker(DefaultBreakerThreshold, DefaultBreakerCooldown),
	}
}

// Default build-breaker tuning: three consecutive failures open a
// key's breaker for half a second.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 500 * time.Millisecond
)

// SetBreaker replaces the build breaker's tuning. Call before serving
// traffic; it resets accumulated failure state.
func (e *Engine) SetBreaker(threshold int, cooldown time.Duration) {
	e.breaker = newBuildBreaker(threshold, cooldown)
}

// Store returns the engine's snapshot store (the publish side).
func (e *Engine) Store() *SnapshotStore { return e.store }

// Tiler returns the engine's tiler (shared, read-only).
func (e *Engine) Tiler() *Tiler { return e.tiler }

// tile returns the materialized tile for (snap.Epoch, tile, field),
// from cache when possible, coalescing concurrent builds of the same
// key into one. A build that errors or panics feeds the per-key
// breaker; once it opens, requests for that key are shed with a 503 +
// Retry-After while every other key keeps serving. A non-nil qt gets
// the per-tile outcome counted and a build's wall time recorded as a
// phase; the goroutine materializing a tile carries a
// grist_phase=tile_build pprof label so CPU profiles split build time
// from lookup time.
func (e *Engine) tile(snap *Snapshot, tile int32, field int, qt *QueryTrace) (*Tile, string, *Error) {
	k := TileKey{Epoch: int32(snap.Epoch), Tile: tile, Field: uint8(field)}
	if t := e.cache.Get(k); t != nil {
		qt.countTile(CacheHit)
		return t, CacheHit, nil
	}
	if wait, ok := e.breaker.allow(k); !ok {
		qt.countTile(CacheBreaker)
		return nil, CacheBreaker, unavailable(wait, "tile build for epoch %d tile %d field %d is shedding (breaker open)", k.Epoch, k.Tile, k.Field)
	}
	for {
		if c := e.flight.join(k); c != nil {
			<-c.done
			if c.err != nil {
				qt.countTile(CacheBreaker)
				return nil, CacheBreaker, unavailable(e.breaker.cooldown, "tile build for epoch %d tile %d field %d failed: %v", k.Epoch, k.Tile, k.Field, c.err)
			}
			qt.countTile(CacheCoalesced)
			return c.tile, CacheCoalesced, nil
		}
		c, leader := e.flight.lead(k)
		if !leader {
			<-c.done
			if c.err != nil {
				qt.countTile(CacheBreaker)
				return nil, CacheBreaker, unavailable(e.breaker.cooldown, "tile build for epoch %d tile %d field %d failed: %v", k.Epoch, k.Tile, k.Field, c.err)
			}
			qt.countTile(CacheCoalesced)
			return c.tile, CacheCoalesced, nil
		}
		t0 := time.Now()
		t, buildErr := e.buildTile(k, snap, tile)
		if buildErr != nil {
			e.breaker.failure(k)
			e.flight.finish(k, c, nil, buildErr)
			qt.countTile(CacheBreaker)
			return nil, CacheBreaker, unavailable(e.breaker.cooldown, "tile build for epoch %d tile %d field %d failed: %v", k.Epoch, k.Tile, k.Field, buildErr)
		}
		e.breaker.success(k)
		e.builds.Add(1)
		e.cache.Add(t)
		e.flight.finish(k, c, t, nil)
		qt.countTile(CacheBuild)
		qt.phase("tile_build", time.Since(t0))
		return t, CacheBuild, nil
	}
}

// buildTile materializes one tile, converting a panic (a malformed
// snapshot indexing out of range) into an error so one poisoned key
// cannot take the process down.
func (e *Engine) buildTile(k TileKey, snap *Snapshot, tile int32) (t *Tile, err error) {
	defer func() {
		if r := recover(); r != nil {
			t, err = nil, fmt.Errorf("build panic: %v", r)
		}
	}()
	pprof.Do(context.Background(), pprof.Labels("grist_phase", "tile_build"), func(context.Context) {
		t = NewTile(k, snap, e.tiler.TileCells(tile))
	})
	return t, nil
}

// snapshotAt resolves an epoch argument: negative means latest.
func (e *Engine) snapshotAt(epoch int) (*Snapshot, *Error) {
	if epoch < 0 {
		if s := e.store.Latest(); s != nil {
			return s, nil
		}
		return nil, notFound("no snapshot published yet")
	}
	if s, ok := e.store.At(epoch); ok {
		return s, nil
	}
	return nil, notFound("epoch %d is not retained (have %v)", epoch, e.store.Epochs())
}

// checkLatLon validates degree coordinates and converts to radians,
// normalizing longitude into [-180, 180).
func checkLatLon(latDeg, lonDeg float64) (lat, lon float64, err *Error) {
	if math.IsNaN(latDeg) || latDeg < -90 || latDeg > 90 {
		return 0, 0, badRequest("lat %v out of range [-90, 90]", latDeg)
	}
	if math.IsNaN(lonDeg) || lonDeg < -360 || lonDeg > 360 {
		return 0, 0, badRequest("lon %v out of range [-360, 360]", lonDeg)
	}
	for lonDeg >= 180 {
		lonDeg -= 360
	}
	for lonDeg < -180 {
		lonDeg += 360
	}
	return latDeg * math.Pi / 180, lonDeg * math.Pi / 180, nil
}

// PointResult is one point query's answer: the value of one field at
// the mesh cell nearest the query coordinates.
type PointResult struct {
	Epoch  int     `json:"epoch"`
	Step   int     `json:"step"`
	Field  string  `json:"field"`
	Cell   int32   `json:"cell"`
	LatDeg float64 `json:"lat_deg"` // cell-center coordinates
	LonDeg float64 `json:"lon_deg"`
	Value  float64 `json:"value"`
}

// Point answers a point query at degree coordinates; epoch < 0 means
// the latest snapshot. The returned cache status is one of the
// Cache* constants.
func (e *Engine) Point(epoch int, field string, latDeg, lonDeg float64) (PointResult, string, *Error) {
	return e.PointT(nil, epoch, field, latDeg, lonDeg)
}

// PointT is Point with request-scoped tracing: a non-nil qt collects
// the tile outcomes and build phases of this query.
func (e *Engine) PointT(qt *QueryTrace, epoch int, field string, latDeg, lonDeg float64) (PointResult, string, *Error) {
	f, ok := FieldID(field)
	if !ok {
		return PointResult{}, "", badRequest("unknown field %q (have %v)", field, FieldNames)
	}
	lat, lon, perr := checkLatLon(latDeg, lonDeg)
	if perr != nil {
		return PointResult{}, "", perr
	}
	snap, serr := e.snapshotAt(epoch)
	if serr != nil {
		return PointResult{}, "", serr
	}
	c := e.tiler.Locate(lat, lon)
	t, status, terr := e.tile(snap, e.tiler.TileOfCell(c), f, qt)
	if terr != nil {
		return PointResult{}, status, terr
	}
	m := e.tiler.m
	return PointResult{
		Epoch:  snap.Epoch,
		Step:   snap.Step,
		Field:  field,
		Cell:   c,
		LatDeg: m.CellLat[c] * 180 / math.Pi,
		LonDeg: m.CellLon[c] * 180 / math.Pi,
		Value:  t.Value(e.tiler.LocalIndex(c)),
	}, status, nil
}

// RegionResult is one region query's answer: every cell inside the
// bounding box (up to Limit), with its coordinates and value. All
// slices are freshly allocated copies.
type RegionResult struct {
	Epoch     int       `json:"epoch"`
	Step      int       `json:"step"`
	Field     string    `json:"field"`
	Cells     []int32   `json:"cells"`
	LatDeg    []float64 `json:"lat_deg"`
	LonDeg    []float64 `json:"lon_deg"`
	Values    []float64 `json:"values"`
	Truncated bool      `json:"truncated"`
}

// DefaultRegionLimit bounds a region response when the client does not
// pass an explicit limit.
const DefaultRegionLimit = 4096

// Region answers a bounding-box query in degrees (minLon <= maxLon;
// dateline-crossing boxes must be split by the client). The cache
// status is CacheHit only when every touched tile was cached.
func (e *Engine) Region(epoch int, field string, minLatDeg, maxLatDeg, minLonDeg, maxLonDeg float64, limit int) (RegionResult, string, *Error) {
	return e.RegionT(nil, epoch, field, minLatDeg, maxLatDeg, minLonDeg, maxLonDeg, limit)
}

// RegionT is Region with request-scoped tracing.
func (e *Engine) RegionT(qt *QueryTrace, epoch int, field string, minLatDeg, maxLatDeg, minLonDeg, maxLonDeg float64, limit int) (RegionResult, string, *Error) {
	f, ok := FieldID(field)
	if !ok {
		return RegionResult{}, "", badRequest("unknown field %q (have %v)", field, FieldNames)
	}
	if minLatDeg > maxLatDeg || minLonDeg > maxLonDeg {
		return RegionResult{}, "", badRequest("empty box: min corner (%v, %v) beyond max corner (%v, %v)",
			minLatDeg, minLonDeg, maxLatDeg, maxLonDeg)
	}
	lo, ll, perr := checkLatLon(minLatDeg, minLonDeg)
	if perr != nil {
		return RegionResult{}, "", perr
	}
	hi, hl, perr := checkLatLon(maxLatDeg, maxLonDeg)
	if perr != nil {
		return RegionResult{}, "", perr
	}
	if hl < ll || maxLonDeg >= 180 { // max lon normalized across the seam
		hl = math.Pi
	}
	if limit <= 0 {
		limit = DefaultRegionLimit
	}
	snap, serr := e.snapshotAt(epoch)
	if serr != nil {
		return RegionResult{}, "", serr
	}
	res := RegionResult{Epoch: snap.Epoch, Step: snap.Step, Field: field}
	status := CacheHit
	m := e.tiler.m
	for tile := int32(0); tile < int32(e.tiler.NTiles); tile++ {
		if !e.tiler.Overlaps(tile, lo, hi, ll, hl) {
			continue
		}
		t, st, terr := e.tile(snap, tile, f, qt)
		if terr != nil {
			return RegionResult{}, st, terr
		}
		if st != CacheHit {
			status = st
		}
		for i, c := range e.tiler.TileCells(tile) {
			lat, lon := m.CellLat[c], m.CellLon[c]
			if lat < lo || lat > hi || lon < ll || lon > hl {
				continue
			}
			if len(res.Cells) >= limit {
				res.Truncated = true
				return res, status, nil
			}
			res.Cells = append(res.Cells, c)
			res.LatDeg = append(res.LatDeg, lat*180/math.Pi)
			res.LonDeg = append(res.LonDeg, lon*180/math.Pi)
			res.Values = append(res.Values, t.Value(int32(i)))
		}
	}
	return res, status, nil
}

// RangePoint is one epoch's sample of a time-range query.
type RangePoint struct {
	Epoch int     `json:"epoch"`
	Step  int     `json:"step"`
	Value float64 `json:"value"`
}

// RangeResult is one time-range query's answer: the field at one point
// across every retained epoch within [from, to].
type RangeResult struct {
	Field  string       `json:"field"`
	Cell   int32        `json:"cell"`
	LatDeg float64      `json:"lat_deg"`
	LonDeg float64      `json:"lon_deg"`
	Series []RangePoint `json:"series"`
}

// Range answers a time-range query over epochs [from, to] (to < 0
// means the newest retained epoch) at degree coordinates.
func (e *Engine) Range(field string, latDeg, lonDeg float64, from, to int) (RangeResult, string, *Error) {
	return e.RangeT(nil, field, latDeg, lonDeg, from, to)
}

// RangeT is Range with request-scoped tracing.
func (e *Engine) RangeT(qt *QueryTrace, field string, latDeg, lonDeg float64, from, to int) (RangeResult, string, *Error) {
	f, ok := FieldID(field)
	if !ok {
		return RangeResult{}, "", badRequest("unknown field %q (have %v)", field, FieldNames)
	}
	lat, lon, perr := checkLatLon(latDeg, lonDeg)
	if perr != nil {
		return RangeResult{}, "", perr
	}
	epochs := e.store.Epochs()
	if len(epochs) == 0 {
		return RangeResult{}, "", notFound("no snapshot published yet")
	}
	if to < 0 {
		to = epochs[len(epochs)-1]
	}
	if from > to {
		return RangeResult{}, "", badRequest("empty range: from %d > to %d", from, to)
	}
	c := e.tiler.Locate(lat, lon)
	tile := e.tiler.TileOfCell(c)
	local := e.tiler.LocalIndex(c)
	m := e.tiler.m
	res := RangeResult{
		Field:  field,
		Cell:   c,
		LatDeg: m.CellLat[c] * 180 / math.Pi,
		LonDeg: m.CellLon[c] * 180 / math.Pi,
	}
	status := CacheHit
	for _, ep := range epochs {
		if ep < from || ep > to {
			continue
		}
		snap, ok := e.store.At(ep)
		if !ok {
			continue // evicted between Epochs() and At()
		}
		t, st, terr := e.tile(snap, tile, f, qt)
		if terr != nil {
			return RangeResult{}, st, terr
		}
		if st != CacheHit {
			status = st
		}
		res.Series = append(res.Series, RangePoint{Epoch: snap.Epoch, Step: snap.Step, Value: t.Value(local)})
	}
	if len(res.Series) == 0 {
		return RangeResult{}, "", notFound("no retained epoch in [%d, %d] (have %v)", from, to, epochs)
	}
	return res, status, nil
}

// EngineStats is a snapshot of the engine's cache and coalescing
// counters.
type EngineStats struct {
	Hits         int64 `json:"tile_hits"`
	Misses       int64 `json:"tile_misses"`
	Builds       int64 `json:"tile_builds"`
	Coalesced    int64 `json:"coalesced"`
	Evictions    int64 `json:"evictions"`
	Cached       int   `json:"tiles_cached"`
	BreakerTrips int64 `json:"breaker_trips"`
	BreakerShed  int64 `json:"breaker_shed"`
}

// Stats returns the cumulative engine counters.
func (e *Engine) Stats() EngineStats {
	h, m, ev := e.cache.Stats()
	trips, shed := e.breaker.Stats()
	return EngineStats{
		Hits:         h,
		Misses:       m,
		Builds:       e.builds.Load(),
		Coalesced:    e.flight.Coalesced(),
		Evictions:    ev,
		Cached:       e.cache.Len(),
		BreakerTrips: trips,
		BreakerShed:  shed,
	}
}

// HitRate returns the cache hit fraction (0 when idle).
func (s EngineStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// CoalesceRatio returns the fraction of cache misses that joined an
// in-flight build instead of starting their own.
func (s EngineStats) CoalesceRatio() float64 {
	if s.Misses == 0 {
		return 0
	}
	return float64(s.Coalesced) / float64(s.Misses)
}
