package serve

import (
	"testing"

	"gristgo/internal/core"
	"gristgo/internal/dycore"
)

// writeEpoch commits one single-rank epoch into st from a fresh state.
func writeEpoch(t *testing.T, st *core.ShardStore, epoch, step int) *dycore.State {
	t.Helper()
	s := testState(st.Plan().NLev)
	// Perturb so each epoch is distinguishable.
	for i := range s.DryMass {
		s.DryMass[i] *= 1 + 1e-6*float64(epoch)
	}
	if err := st.WriteShard(epoch, 0, step, s); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(epoch, step); err != nil {
		t.Fatal(err)
	}
	return s
}

// The poller bridges committed checkpoint epochs to published
// snapshots: backfilling history on the first poll, then following
// the head incrementally.
func TestShardPollerFollowsCommits(t *testing.T) {
	pl := core.NewDistPlan(testMesh, 3, 1, 12345)
	st, err := core.NewShardStore(t.TempDir(), pl)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewSnapshotStore(4)
	p := NewShardPoller(st, dst)
	if p.Mesh() != testMesh {
		t.Fatal("poller mesh is not the plan mesh")
	}

	// Nothing committed yet: a poll is a no-op, not an error.
	if n, err := p.Poll(); err != nil || n != 0 {
		t.Fatalf("empty poll = (%d, %v), want (0, nil)", n, err)
	}

	// Three epochs committed before the first real poll: all published
	// (the replay-directory case).
	states := map[int]*dycore.State{}
	for e := 0; e < 3; e++ {
		states[e] = writeEpoch(t, st, e, e*10)
	}
	n, err := p.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("first poll published %d snapshots, want 3", n)
	}
	for e := 0; e < 3; e++ {
		snap, ok := dst.At(e)
		if !ok {
			t.Fatalf("epoch %d not published", e)
		}
		if snap.Step != e*10 {
			t.Fatalf("epoch %d published with step %d, want %d", e, snap.Step, e*10)
		}
		// The snapshot must reflect that epoch's state, not the head's.
		want := SnapshotFromState(e, e*10, states[e])
		if snap.Checksum() != want.Checksum() {
			t.Fatalf("epoch %d snapshot diverges from its committed state", e)
		}
	}

	// No news: no republish.
	if n, err := p.Poll(); err != nil || n != 0 {
		t.Fatalf("idle poll = (%d, %v), want (0, nil)", n, err)
	}

	// A new head is picked up incrementally.
	writeEpoch(t, st, 3, 30)
	if n, err := p.Poll(); err != nil || n != 1 {
		t.Fatalf("incremental poll = (%d, %v), want (1, nil)", n, err)
	}
	if dst.Latest().Epoch != 3 {
		t.Fatalf("Latest = %d, want 3", dst.Latest().Epoch)
	}
}
