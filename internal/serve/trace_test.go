package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gristgo/internal/telemetry"
)

// traceTestServer returns a warm server with the debug endpoints
// registered on the same mux as the query plane, plus its registry.
func traceTestServer(t *testing.T) (*Server, *telemetry.Registry, *http.ServeMux) {
	t.Helper()
	reg := telemetry.NewRegistry()
	s := NewServer(testMesh, Config{}, reg)
	s.Publish(testSnapshot(1))
	mux := s.Mux()
	s.RegisterDebug(mux)
	return s, reg, mux
}

// getTraced issues a GET carrying an explicit X-Grist-Trace ID.
func getTraced(t *testing.T, h http.Handler, path, traceID, tenant string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	req.Header.Set("X-Grist-Trace", traceID)
	if tenant != "" {
		req.Header.Set("X-Grist-Tenant", tenant)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestTraceIDEchoedAndRetained(t *testing.T) {
	_, _, mux := traceTestServer(t)

	rec := getTraced(t, mux, "/v1/point?lat=12&lon=34&field=ps", "cafe0001", "")
	if rec.Code != 200 {
		t.Fatalf("point = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Grist-Trace"); got != "cafe0001" {
		t.Fatalf("echoed trace ID = %q, want cafe0001", got)
	}

	// The completed trace is retrievable by ID with its phase timeline
	// and tile-path outcome.
	dbg := get(t, mux, "/debug/query/cafe0001", "")
	if dbg.Code != 200 {
		t.Fatalf("/debug/query/cafe0001 = %d: %s", dbg.Code, dbg.Body.String())
	}
	var qt QueryTrace
	if err := json.Unmarshal(dbg.Body.Bytes(), &qt); err != nil {
		t.Fatal(err)
	}
	if qt.ID != "cafe0001" || qt.Kind != "point" || qt.Status != 200 {
		t.Fatalf("trace = %+v, want id=cafe0001 kind=point status=200", qt)
	}
	var names []string
	for _, ph := range qt.Phases {
		names = append(names, ph.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"quota", "queue", "handler"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("phases %v missing %q", names, want)
		}
	}
	if qt.TileHits+qt.TileBuilds+qt.TileCoalesced == 0 {
		t.Fatalf("trace recorded no tile acquisitions: %+v", qt)
	}
}

func TestTraceIDMintedWhenAbsent(t *testing.T) {
	_, _, mux := traceTestServer(t)
	a := get(t, mux, "/v1/point?lat=12&lon=34&field=ps", "")
	b := get(t, mux, "/v1/point?lat=12&lon=34&field=ps", "")
	ida, idb := a.Header().Get("X-Grist-Trace"), b.Header().Get("X-Grist-Trace")
	if ida == "" || idb == "" {
		t.Fatalf("minted IDs empty: %q %q", ida, idb)
	}
	if ida == idb {
		t.Fatalf("two queries share trace ID %q", ida)
	}
}

func TestDebugQueryListNewestFirst(t *testing.T) {
	_, _, mux := traceTestServer(t)
	for i := 0; i < 3; i++ {
		get(t, mux, "/v1/point?lat=12&lon=34&field=ps", "")
	}
	rec := get(t, mux, "/debug/query?limit=2", "")
	if rec.Code != 200 {
		t.Fatalf("/debug/query = %d", rec.Code)
	}
	var list []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("limit=2 returned %d traces", len(list))
	}
	rec = get(t, mux, "/debug/query/no-such-id", "")
	if rec.Code != 404 {
		t.Fatalf("unknown trace ID = %d, want 404", rec.Code)
	}
}

func TestQuotaRejectionTraced(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewServer(testMesh, Config{QuotaRate: 0.001, QuotaBurst: 1}, reg)
	s.Publish(testSnapshot(1))
	mux := s.Mux()
	s.RegisterDebug(mux)
	get(t, mux, "/v1/point?lat=12&lon=34&field=ps", "greedy")
	rec := getTraced(t, mux, "/v1/point?lat=12&lon=34&field=ps", "throttled1", "greedy")
	if rec.Code != 429 {
		t.Fatalf("second query over burst = %d, want 429", rec.Code)
	}
	dbg := get(t, mux, "/debug/query/throttled1", "")
	var qt QueryTrace
	if err := json.Unmarshal(dbg.Body.Bytes(), &qt); err != nil {
		t.Fatal(err)
	}
	if qt.Status != 429 || qt.Err == "" {
		t.Fatalf("throttled trace = %+v, want status=429 with error", qt)
	}
}

func TestLatencyExemplarIsTraceID(t *testing.T) {
	_, reg, mux := traceTestServer(t)
	if rec := getTraced(t, mux, "/v1/point?lat=12&lon=34&field=ps", "exemplar1", ""); rec.Code != 200 {
		t.Fatalf("point = %d", rec.Code)
	}
	h := reg.Histogram("grist_serve_latency_seconds", "kind", "point")
	if ex := h.ExemplarNear(0.99); ex != "exemplar1" {
		t.Fatalf("latency exemplar = %q, want exemplar1", ex)
	}
	var buf strings.Builder
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"exemplar_p99":"exemplar1"`) {
		t.Fatal("metrics JSON export missing the p99 exemplar trace ID")
	}
}
