// Package serve is the forecast-as-a-service query plane: it turns a
// running (or replayed) model into a product surface that answers
// point, region and time-range queries over HTTP at web scale.
//
// The pipeline is
//
//	model / ShardStore ──► SnapshotStore (immutable per-epoch fields)
//	                          │
//	                      Tiler (fixed spatial tiles over the mesh)
//	                          │
//	                      TileCache (LRU, keyed by epoch/tile/field)
//	                          │            + singleflight coalescing
//	                      Engine ──► HTTP API (/v1/point, /v1/region,
//	                                 /v1/range) with per-tenant quotas
//	                                 and bounded-queue backpressure
//
// Snapshots are derived once per epoch and never mutated afterwards;
// every byte handed to a client is a copy, so no query handler can
// write model state.
package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"math"
	"sort"
	"strings"
	"sync"

	"gristgo/internal/core"
	"gristgo/internal/detrand"
	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
	"gristgo/internal/telemetry"
)

// The served field set: 2D per-cell diagnostics derived from the
// prognostic state at snapshot-build time. Indices are the compact
// field ids used in tile cache keys.
const (
	FieldPS   = iota // surface pressure, Pa
	FieldTSfc        // lowest-layer temperature, K
	FieldUSfc        // lowest-layer eastward wind, m/s
	FieldVSfc        // lowest-layer northward wind, m/s
	FieldWMax        // column-max |vertical velocity|, m/s
	NumFields
)

// FieldNames lists the served fields in id order (the wire names).
var FieldNames = [NumFields]string{"ps", "t_sfc", "u_sfc", "v_sfc", "w_max"}

// FieldID resolves a wire name to its field id.
func FieldID(name string) (int, bool) {
	for i, n := range FieldNames {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// Snapshot is one immutable epoch of served fields over the full mesh.
// The backing arrays are private and written only by the builder;
// readers get values or copies, never the slices.
type Snapshot struct {
	Epoch int
	Step  int
	data  [NumFields][]float64 // per field: per-cell values
}

// Value returns field f at cell c.
//
//grist:hotpath
func (s *Snapshot) Value(f int, c int32) float64 { return s.data[f][c] }

// NCells returns the cell count the snapshot spans.
func (s *Snapshot) NCells() int { return len(s.data[0]) }

// Checksum folds every field into one FNV-style hash — the mutation
// tests' witness that serving queries leaves snapshots untouched.
func (s *Snapshot) Checksum() uint64 {
	h := uint64(1469598103934665603)
	for f := 0; f < NumFields; f++ {
		for _, v := range s.data[f] {
			h ^= math.Float64bits(v)
			h *= 1099511628211
		}
	}
	return h
}

// SnapshotFromState derives the served fields from a full-mesh dynamics
// state. Every value is computed into freshly owned arrays; the state
// is only read.
func SnapshotFromState(epoch, step int, s *dycore.State) *Snapshot {
	m := s.M
	nlev := s.NLev
	snap := &Snapshot{Epoch: epoch, Step: step}
	for f := 0; f < NumFields; f++ {
		snap.data[f] = make([]float64, m.NCells)
	}
	uc, vc := core.CellWinds(m, s.U, nlev)
	kSfc := nlev - 1
	for c := 0; c < m.NCells; c++ {
		base := c * nlev
		var colMass float64
		for k := 0; k < nlev; k++ {
			colMass += s.DryMass[base+k]
		}
		ps := dycore.PTop + colMass
		snap.data[FieldPS][c] = ps
		dpi := s.DryMass[base+kSfc]
		p := ps - 0.5*dpi
		theta := s.ThetaM[base+kSfc] / dpi
		snap.data[FieldTSfc][c] = theta * math.Pow(p/dycore.P0, dycore.Rd/dycore.Cp)
		snap.data[FieldUSfc][c] = uc[base+kSfc]
		snap.data[FieldVSfc][c] = vc[base+kSfc]
		var wmax float64
		ibase := c * (nlev + 1)
		for k := 0; k <= nlev; k++ {
			if w := math.Abs(s.W[ibase+k]); w > wmax {
				wmax = w
			}
		}
		snap.data[FieldWMax][c] = wmax
	}
	return snap
}

// SnapshotStore publishes immutable snapshots and retains a bounded
// window of recent epochs for time-range queries. Safe for one
// publisher and any number of concurrent readers.
type SnapshotStore struct {
	mu      sync.RWMutex
	retain  int
	byEpoch map[int]*Snapshot
	epochs  []int // ascending
}

// NewSnapshotStore returns a store keeping the newest `retain` epochs
// (minimum 1).
func NewSnapshotStore(retain int) *SnapshotStore {
	if retain < 1 {
		retain = 1
	}
	return &SnapshotStore{retain: retain, byEpoch: map[int]*Snapshot{}}
}

// Publish installs snap, evicting the oldest epochs beyond the
// retention window. Re-publishing an existing epoch replaces it.
func (st *SnapshotStore) Publish(snap *Snapshot) {
	st.mu.Lock()
	if _, ok := st.byEpoch[snap.Epoch]; !ok {
		st.epochs = append(st.epochs, snap.Epoch)
		sort.Ints(st.epochs)
	}
	st.byEpoch[snap.Epoch] = snap
	for len(st.epochs) > st.retain {
		delete(st.byEpoch, st.epochs[0])
		st.epochs = st.epochs[1:]
	}
	st.mu.Unlock()
}

// Latest returns the newest snapshot (nil while empty).
func (st *SnapshotStore) Latest() *Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(st.epochs) == 0 {
		return nil
	}
	return st.byEpoch[st.epochs[len(st.epochs)-1]]
}

// At returns the snapshot of one epoch.
func (st *SnapshotStore) At(epoch int) (*Snapshot, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.byEpoch[epoch]
	return s, ok
}

// Epochs returns the retained epoch numbers, ascending (a copy).
func (st *SnapshotStore) Epochs() []int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return append([]int(nil), st.epochs...)
}

// Verification-failure classes for quarantined epochs: the reason
// label on grist_serve_quarantined_total.
const (
	FailMissing = "missing" // a shard file does not exist
	FailTorn    = "torn"    // shards disagree on the step (torn commit)
	FailCorrupt = "corrupt" // CRC / header / plan-match verification failed
	FailIO      = "io"      // the read itself errored (EIO, permissions)
)

// classifyLoadError maps a LoadEpochState failure onto a quarantine
// reason. The classification is textual of necessity — core returns
// wrapped fmt errors — but it only feeds the metric label and the
// retry log line, never control flow.
func classifyLoadError(err error) string {
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return FailMissing
	case strings.Contains(err.Error(), "disagree"):
		return FailTorn
	case strings.Contains(err.Error(), "corrupt"),
		strings.Contains(err.Error(), "truncated"),
		strings.Contains(err.Error(), "bad magic"),
		strings.Contains(err.Error(), "does not match the plan"),
		strings.Contains(err.Error(), "payload is"):
		return FailCorrupt
	default:
		return FailIO
	}
}

// quarantineEntry tracks one corrupt epoch: how often it has failed
// verification, when (in poll ticks) the next retry is due, and why it
// was quarantined last.
type quarantineEntry struct {
	Fails   int
	RetryAt int
	Reason  string
}

// ShardPoller watches a core.ShardStore for newly committed checkpoint
// epochs and publishes them as snapshots — the live bridge between a
// resilient run (or a replay directory) and the serving plane. Epochs
// that fail verification are quarantined: skipped, retried with
// jittered exponential backoff (in units of polls), and un-quarantined
// when a re-read verifies or when they age out of the retention
// window. Not safe for concurrent Poll calls; drive it from one
// goroutine (accessors are safe from others).
type ShardPoller struct {
	src     *core.ShardStore
	dst     *SnapshotStore
	scratch *dycore.State
	seed    int64

	mu         sync.Mutex
	last       int // scan frontier: highest epoch attempted (published OR quarantined); -1: none
	published  int // newest epoch actually published (-1: none)
	head       int // newest committed epoch seen on disk (-1: none)
	polls      int // Poll invocation counter — the backoff clock
	staleness  int // committed epochs the published head lags, as of last Poll
	quarantine map[int]*quarantineEntry

	log *slog.Logger

	quarantinedTotal   map[string]*telemetry.Counter // by reason
	unquarantinedTotal *telemetry.Counter
	quarantineSize     *telemetry.Gauge
	stalenessGauge     *telemetry.Gauge
}

// NewShardPoller builds a poller over src publishing into dst.
func NewShardPoller(src *core.ShardStore, dst *SnapshotStore) *ShardPoller {
	pl := src.Plan()
	return &ShardPoller{
		src:        src,
		dst:        dst,
		scratch:    dycore.NewState(pl.Mesh, pl.NLev),
		last:       -1,
		published:  -1,
		head:       -1,
		quarantine: map[int]*quarantineEntry{},
	}
}

// SetSeed fixes the jitter stream of the quarantine backoff (default 0:
// still deterministic, just the zero stream).
func (p *ShardPoller) SetSeed(seed int64) { p.seed = seed }

// SetLogger attaches a structured logger for quarantine transitions.
func (p *ShardPoller) SetLogger(lg *slog.Logger) { p.log = lg }

// SetMetrics registers the poller's quarantine and staleness series on
// reg: grist_serve_quarantined_total{reason}, un-quarantine count,
// live quarantine size, and the staleness gauge (committed epochs the
// serving head lags behind).
func (p *ShardPoller) SetMetrics(reg *telemetry.Registry) {
	p.quarantinedTotal = map[string]*telemetry.Counter{}
	for _, r := range []string{FailMissing, FailTorn, FailCorrupt, FailIO} {
		p.quarantinedTotal[r] = reg.Counter("grist_serve_quarantined_total", "reason", r)
	}
	p.unquarantinedTotal = reg.Counter("grist_serve_unquarantined_total")
	p.quarantineSize = reg.Gauge("grist_serve_quarantine_size")
	p.stalenessGauge = reg.Gauge("grist_serve_staleness_epochs")
}

// retryDelay returns the poll-tick backoff before the fails-th retry of
// an epoch: exponential (1, 2, 4, 8, 16 capped) plus a deterministic
// jitter of up to half the step, so a directory of quarantined epochs
// does not retry in lockstep.
func (p *ShardPoller) retryDelay(epoch, fails int) int {
	shift := fails - 1
	if shift > 4 {
		shift = 4
	}
	base := 1 << shift
	h := detrand.Fold(detrand.Step(uint64(p.seed)^0x71726E74), uint64(epoch))
	h = detrand.Fold(h, uint64(fails))
	return base + int(detrand.Unit(h)*float64(base)*0.5)
}

// Poll scans the committed-epoch list, publishes every new epoch that
// verifies, quarantines those that do not, and retries quarantined
// epochs whose backoff expired. Returns how many snapshots were
// published. The error reports a failure to make ANY forward progress
// this tick — the epoch list was unreadable, or the newest committed
// epoch failed verification on first attempt — so a caller can back
// off; quarantined epochs awaiting retry are not errors.
func (p *ShardPoller) Poll() (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.polls++
	epochs, err := p.src.CommittedEpochs()
	if err != nil {
		return 0, fmt.Errorf("serve: listing committed epochs: %w", err)
	}
	if len(epochs) == 0 {
		p.updateGaugesLocked(epochs)
		return 0, nil
	}
	p.head = epochs[len(epochs)-1].Epoch

	// The first poll backfills at most the retention window.
	floor := -1
	if p.last < 0 {
		floor = p.head - p.dst.retain
	}

	published := 0
	var headErr error
	for _, ei := range epochs {
		e := ei.Epoch
		if e <= floor {
			continue
		}
		q := p.quarantine[e]
		if e <= p.last && q == nil {
			continue // already published (or aged out) — never re-derive
		}
		if q != nil && p.polls < q.RetryAt {
			continue // quarantined, retry not due yet
		}
		step, err := p.src.LoadEpochState(e, p.scratch)
		if err != nil {
			reason := classifyLoadError(err)
			first := q == nil
			if first {
				q = &quarantineEntry{}
				p.quarantine[e] = q
			}
			q.Fails++
			q.Reason = reason
			q.RetryAt = p.polls + p.retryDelay(e, q.Fails)
			if first {
				if c := p.quarantinedTotal[reason]; c != nil {
					c.Inc()
				}
				if p.log != nil {
					p.log.Warn("epoch quarantined", "epoch", e, "reason", reason, "err", err)
				}
			}
			if e == p.head && first {
				headErr = fmt.Errorf("serve: loading committed epoch %d: %w", e, err)
			}
			if e > p.last {
				p.last = e
			}
			continue
		}
		p.dst.Publish(SnapshotFromState(e, step, p.scratch))
		published++
		if q != nil {
			delete(p.quarantine, e)
			if p.unquarantinedTotal != nil {
				p.unquarantinedTotal.Inc()
			}
			if p.log != nil {
				p.log.Info("epoch un-quarantined", "epoch", e, "fails", q.Fails)
			}
		}
		if e > p.last {
			p.last = e
		}
		if e > p.published {
			p.published = e
		}
	}

	// Quarantined epochs below the retention window can never be served
	// again; keeping them would retry (and leak) forever.
	for e := range p.quarantine {
		if e <= p.head-p.dst.retain {
			delete(p.quarantine, e)
			if p.log != nil {
				p.log.Info("quarantined epoch aged out", "epoch", e)
			}
		}
	}
	p.updateGaugesLocked(epochs)
	return published, headErr
}

// updateGaugesLocked refreshes the staleness and quarantine-size
// series. Caller holds p.mu.
func (p *ShardPoller) updateGaugesLocked(epochs []core.EpochInfo) {
	behind := 0
	for _, ei := range epochs {
		if ei.Epoch > p.published {
			behind++
		}
	}
	p.staleness = behind
	if p.stalenessGauge != nil {
		p.stalenessGauge.Set(float64(behind))
	}
	if p.quarantineSize != nil {
		p.quarantineSize.Set(float64(len(p.quarantine)))
	}
}

// Staleness returns how many committed epochs the newest published
// snapshot lags behind, as of the last Poll. Zero while fully caught
// up (or before anything is committed).
func (p *ShardPoller) Staleness() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.staleness
}

// Quarantined returns the quarantined epoch numbers, ascending.
func (p *ShardPoller) Quarantined() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, len(p.quarantine))
	for e := range p.quarantine {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// Mesh returns the mesh the poller's plan spans.
func (p *ShardPoller) Mesh() *mesh.Mesh { return p.src.Plan().Mesh }
