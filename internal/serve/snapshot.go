// Package serve is the forecast-as-a-service query plane: it turns a
// running (or replayed) model into a product surface that answers
// point, region and time-range queries over HTTP at web scale.
//
// The pipeline is
//
//	model / ShardStore ──► SnapshotStore (immutable per-epoch fields)
//	                          │
//	                      Tiler (fixed spatial tiles over the mesh)
//	                          │
//	                      TileCache (LRU, keyed by epoch/tile/field)
//	                          │            + singleflight coalescing
//	                      Engine ──► HTTP API (/v1/point, /v1/region,
//	                                 /v1/range) with per-tenant quotas
//	                                 and bounded-queue backpressure
//
// Snapshots are derived once per epoch and never mutated afterwards;
// every byte handed to a client is a copy, so no query handler can
// write model state.
package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"gristgo/internal/core"
	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
)

// The served field set: 2D per-cell diagnostics derived from the
// prognostic state at snapshot-build time. Indices are the compact
// field ids used in tile cache keys.
const (
	FieldPS   = iota // surface pressure, Pa
	FieldTSfc        // lowest-layer temperature, K
	FieldUSfc        // lowest-layer eastward wind, m/s
	FieldVSfc        // lowest-layer northward wind, m/s
	FieldWMax        // column-max |vertical velocity|, m/s
	NumFields
)

// FieldNames lists the served fields in id order (the wire names).
var FieldNames = [NumFields]string{"ps", "t_sfc", "u_sfc", "v_sfc", "w_max"}

// FieldID resolves a wire name to its field id.
func FieldID(name string) (int, bool) {
	for i, n := range FieldNames {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// Snapshot is one immutable epoch of served fields over the full mesh.
// The backing arrays are private and written only by the builder;
// readers get values or copies, never the slices.
type Snapshot struct {
	Epoch int
	Step  int
	data  [NumFields][]float64 // per field: per-cell values
}

// Value returns field f at cell c.
//
//grist:hotpath
func (s *Snapshot) Value(f int, c int32) float64 { return s.data[f][c] }

// NCells returns the cell count the snapshot spans.
func (s *Snapshot) NCells() int { return len(s.data[0]) }

// Checksum folds every field into one FNV-style hash — the mutation
// tests' witness that serving queries leaves snapshots untouched.
func (s *Snapshot) Checksum() uint64 {
	h := uint64(1469598103934665603)
	for f := 0; f < NumFields; f++ {
		for _, v := range s.data[f] {
			h ^= math.Float64bits(v)
			h *= 1099511628211
		}
	}
	return h
}

// SnapshotFromState derives the served fields from a full-mesh dynamics
// state. Every value is computed into freshly owned arrays; the state
// is only read.
func SnapshotFromState(epoch, step int, s *dycore.State) *Snapshot {
	m := s.M
	nlev := s.NLev
	snap := &Snapshot{Epoch: epoch, Step: step}
	for f := 0; f < NumFields; f++ {
		snap.data[f] = make([]float64, m.NCells)
	}
	uc, vc := core.CellWinds(m, s.U, nlev)
	kSfc := nlev - 1
	for c := 0; c < m.NCells; c++ {
		base := c * nlev
		var colMass float64
		for k := 0; k < nlev; k++ {
			colMass += s.DryMass[base+k]
		}
		ps := dycore.PTop + colMass
		snap.data[FieldPS][c] = ps
		dpi := s.DryMass[base+kSfc]
		p := ps - 0.5*dpi
		theta := s.ThetaM[base+kSfc] / dpi
		snap.data[FieldTSfc][c] = theta * math.Pow(p/dycore.P0, dycore.Rd/dycore.Cp)
		snap.data[FieldUSfc][c] = uc[base+kSfc]
		snap.data[FieldVSfc][c] = vc[base+kSfc]
		var wmax float64
		ibase := c * (nlev + 1)
		for k := 0; k <= nlev; k++ {
			if w := math.Abs(s.W[ibase+k]); w > wmax {
				wmax = w
			}
		}
		snap.data[FieldWMax][c] = wmax
	}
	return snap
}

// SnapshotStore publishes immutable snapshots and retains a bounded
// window of recent epochs for time-range queries. Safe for one
// publisher and any number of concurrent readers.
type SnapshotStore struct {
	mu      sync.RWMutex
	retain  int
	byEpoch map[int]*Snapshot
	epochs  []int // ascending
}

// NewSnapshotStore returns a store keeping the newest `retain` epochs
// (minimum 1).
func NewSnapshotStore(retain int) *SnapshotStore {
	if retain < 1 {
		retain = 1
	}
	return &SnapshotStore{retain: retain, byEpoch: map[int]*Snapshot{}}
}

// Publish installs snap, evicting the oldest epochs beyond the
// retention window. Re-publishing an existing epoch replaces it.
func (st *SnapshotStore) Publish(snap *Snapshot) {
	st.mu.Lock()
	if _, ok := st.byEpoch[snap.Epoch]; !ok {
		st.epochs = append(st.epochs, snap.Epoch)
		sort.Ints(st.epochs)
	}
	st.byEpoch[snap.Epoch] = snap
	for len(st.epochs) > st.retain {
		delete(st.byEpoch, st.epochs[0])
		st.epochs = st.epochs[1:]
	}
	st.mu.Unlock()
}

// Latest returns the newest snapshot (nil while empty).
func (st *SnapshotStore) Latest() *Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(st.epochs) == 0 {
		return nil
	}
	return st.byEpoch[st.epochs[len(st.epochs)-1]]
}

// At returns the snapshot of one epoch.
func (st *SnapshotStore) At(epoch int) (*Snapshot, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.byEpoch[epoch]
	return s, ok
}

// Epochs returns the retained epoch numbers, ascending (a copy).
func (st *SnapshotStore) Epochs() []int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return append([]int(nil), st.epochs...)
}

// ShardPoller watches a core.ShardStore for newly committed checkpoint
// epochs and publishes them as snapshots — the live bridge between a
// resilient run (or a replay directory) and the serving plane. Not
// safe for concurrent Poll calls; drive it from one goroutine.
type ShardPoller struct {
	src     *core.ShardStore
	dst     *SnapshotStore
	scratch *dycore.State
	last    int // newest epoch published so far (-1: none)
}

// NewShardPoller builds a poller over src publishing into dst.
func NewShardPoller(src *core.ShardStore, dst *SnapshotStore) *ShardPoller {
	pl := src.Plan()
	return &ShardPoller{
		src:     src,
		dst:     dst,
		scratch: dycore.NewState(pl.Mesh, pl.NLev),
		last:    -1,
	}
}

// Poll checks for committed epochs newer than the last published one
// and publishes each that still fully verifies. Epochs between the
// last poll and the head are backfilled — on the first poll back to
// the store's retention window — so range queries see the whole
// sequence. Returns how many snapshots were published.
func (p *ShardPoller) Poll() (int, error) {
	head, _, ok := p.src.LatestCommitted()
	if !ok || head <= p.last {
		return 0, nil
	}
	published := 0
	from := p.last + 1
	if p.last < 0 {
		if from = head - p.dst.retain + 1; from < 0 {
			from = 0
		}
	}
	for e := from; e <= head; e++ {
		step, err := p.src.LoadEpochState(e, p.scratch)
		if err != nil {
			if e == head {
				return published, fmt.Errorf("serve: loading committed epoch %d: %w", e, err)
			}
			continue // an intermediate epoch may have been torn by rollback
		}
		p.dst.Publish(SnapshotFromState(e, step, p.scratch))
		published++
	}
	p.last = head
	return published, nil
}

// Mesh returns the mesh the poller's plan spans.
func (p *ShardPoller) Mesh() *mesh.Mesh { return p.src.Plan().Mesh }
