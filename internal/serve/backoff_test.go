package serve

import (
	"testing"
	"time"
)

func TestBackoffExponentialGrowthAndCap(t *testing.T) {
	b := NewBackoff(time.Second, 16*time.Second, 7)
	prev := time.Duration(0)
	for i := 1; i <= 10; i++ {
		d := b.Next()
		if d > 16*time.Second {
			t.Fatalf("fail %d: delay %s exceeds cap", i, d)
		}
		// Base delay before jitter doubles: each step's floor is at least
		// the previous step's floor.
		floor := time.Second << uint(min(i-1, 4))
		if d < floor {
			t.Fatalf("fail %d: delay %s under exponential floor %s", i, d, floor)
		}
		if i >= 5 && d != 16*time.Second {
			// Once the doubled base hits the cap, jitter cannot push past
			// it — the schedule pins exactly at max.
			t.Fatalf("fail %d: delay %s, want pinned at cap", i, d)
		}
		if d < prev && i < 5 {
			t.Fatalf("fail %d: delay %s shrank from %s while ramping", i, d, prev)
		}
		prev = d
	}
	if b.Fails() != 10 {
		t.Fatalf("Fails = %d, want 10", b.Fails())
	}
	b.Reset()
	if b.Fails() != 0 {
		t.Fatalf("Fails after Reset = %d, want 0", b.Fails())
	}
	if d := b.Next(); d < time.Second || d > 1500*time.Millisecond {
		t.Fatalf("post-reset first delay = %s, want base + <=50%% jitter", d)
	}
}

func TestBackoffJitterDeterministicPerSeed(t *testing.T) {
	a := NewBackoff(time.Second, time.Minute, 3)
	b := NewBackoff(time.Second, time.Minute, 3)
	c := NewBackoff(time.Second, time.Minute, 4)
	sameAll, diffAny := true, false
	for i := 0; i < 6; i++ {
		da, db, dc := a.Next(), b.Next(), c.Next()
		if da != db {
			sameAll = false
		}
		if da != dc {
			diffAny = true
		}
	}
	if !sameAll {
		t.Fatal("same seed produced different schedules")
	}
	if !diffAny {
		t.Fatal("distinct seeds produced identical schedules (no de-synchronization)")
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	d := b.Next()
	if d < time.Second || d > 90*time.Second {
		t.Fatalf("default-tuned first delay = %s, implausible", d)
	}
	for i := 0; i < 20; i++ {
		if d := b.Next(); d > 60*time.Second {
			t.Fatalf("delay %s exceeds the default 60s cap", d)
		}
	}
}
