package serve

import (
	"time"

	"gristgo/internal/detrand"
)

// Backoff computes capped, jittered exponential retry delays for the
// gristd poll loop: each consecutive failure doubles the delay from
// Base up to Max, plus a deterministic jitter of up to half the
// current delay (seeded, so a fleet of daemons with distinct seeds
// de-synchronizes instead of hammering a recovering filesystem in
// lockstep). Zero value is unusable; use NewBackoff. Not safe for
// concurrent use — it belongs to the one poll goroutine.
type Backoff struct {
	base, max time.Duration
	seed      int64
	fails     int
}

// NewBackoff returns a backoff ramping from base to max (defaults
// 1s…60s for non-positive arguments).
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = time.Second
	}
	if max < base {
		max = 60 * time.Second
	}
	return &Backoff{base: base, max: max, seed: seed}
}

// Next records one more consecutive failure and returns how long to
// wait before the next attempt.
func (b *Backoff) Next() time.Duration {
	b.fails++
	d := b.base
	for i := 1; i < b.fails && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	h := detrand.Fold(detrand.Step(uint64(b.seed)^0x626b6f66), uint64(b.fails))
	jitter := time.Duration(detrand.Unit(h) * float64(d) * 0.5)
	if d+jitter > b.max {
		return b.max
	}
	return d + jitter
}

// Reset clears the failure streak after a success.
func (b *Backoff) Reset() { b.fails = 0 }

// Fails returns the current consecutive-failure count.
func (b *Backoff) Fails() int { return b.fails }
