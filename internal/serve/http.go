package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gristgo/internal/mesh"
	"gristgo/internal/telemetry"
)

// Config sizes one serving plane. The zero value of any field selects
// the default noted on it.
type Config struct {
	Tiles      int     // spatial tiles over the mesh (default 48)
	CacheTiles int     // tile-cache capacity in tiles (default 2x Tiles)
	Retain     int     // snapshot epochs retained (default 8)
	QueueDepth int     // max in-flight queries before 429 (default 256)
	QuotaRate  float64 // per-tenant tokens/second (default 0: unlimited)
	QuotaBurst float64 // per-tenant burst capacity (default 64)
	Seed       int64   // tile decomposition seed (default 12345)

	// MaxStale bounds silent staleness: when the newest published epoch
	// lags more than this many committed epochs behind, the plane enters
	// degraded mode — responses carry X-Grist-Stale and /healthz reports
	// "degraded" (still 200 for LB purposes). Default 4.
	MaxStale int

	// Build-breaker tuning: consecutive failures to open one tile key's
	// breaker, and how long it stays open. Defaults
	// DefaultBreakerThreshold / DefaultBreakerCooldown.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (c Config) withDefaults() Config {
	if c.Tiles <= 0 {
		c.Tiles = 48
	}
	if c.CacheTiles <= 0 {
		c.CacheTiles = 2 * c.Tiles
	}
	if c.Retain <= 0 {
		c.Retain = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.QuotaBurst <= 0 {
		c.QuotaBurst = 64
	}
	if c.Seed == 0 {
		c.Seed = 12345
	}
	if c.MaxStale <= 0 {
		c.MaxStale = 4
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	return c
}

// Server is the HTTP face of the query plane: engine + quotas +
// bounded-queue backpressure + metrics. Every overload answer is a
// 429 with Retry-After — the plane never turns pressure into 5xx.
type Server struct {
	Engine *Engine
	Quotas *Quotas

	queue  chan struct{}
	reg    *telemetry.Registry
	traces *traceRing

	// Degraded-serving state, fed by the poll loop (SetStaleness /
	// SetQuarantine) and read per request and by /healthz.
	maxStale    int
	staleness   atomic.Int64
	quarMu      sync.Mutex
	quarantined []int

	// Metric handles resolved once at construction (hot paths must not
	// take the registry lock per request).
	latency     map[string]*telemetry.Histogram
	hitLatency  *telemetry.Histogram
	queueDepth  *telemetry.Gauge
	queueReject *telemetry.Counter
	quotaReject *telemetry.Counter
	okCount     map[string]*telemetry.Counter
	badCount    map[string]*telemetry.Counter
	shedCount   map[string]*telemetry.Counter
	degradedGge *telemetry.Gauge
}

// queryKinds labels the served endpoints for metrics.
var queryKinds = []string{"point", "region", "range", "epochs"}

// NewServer assembles a serving plane over m, publishing its metrics
// into reg (required — pass a fresh registry if nothing scrapes it).
func NewServer(m *mesh.Mesh, cfg Config, reg *telemetry.Registry) *Server {
	cfg = cfg.withDefaults()
	store := NewSnapshotStore(cfg.Retain)
	s := &Server{
		Engine:      NewEngine(m, store, cfg.Tiles, cfg.CacheTiles, cfg.Seed),
		Quotas:      NewQuotas(cfg.QuotaRate, cfg.QuotaBurst),
		queue:       make(chan struct{}, cfg.QueueDepth),
		reg:         reg,
		traces:      newTraceRing(cfg.Seed),
		maxStale:    cfg.MaxStale,
		latency:     map[string]*telemetry.Histogram{},
		hitLatency:  reg.Histogram("grist_serve_latency_seconds", "cache", "hit"),
		queueDepth:  reg.Gauge("grist_serve_queue_depth"),
		queueReject: reg.Counter("grist_serve_rejected_total", "reason", "queue_full"),
		quotaReject: reg.Counter("grist_serve_rejected_total", "reason", "quota"),
		okCount:     map[string]*telemetry.Counter{},
		badCount:    map[string]*telemetry.Counter{},
		shedCount:   map[string]*telemetry.Counter{},
		degradedGge: reg.Gauge("grist_serve_degraded"),
	}
	s.Engine.SetBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	for _, kind := range queryKinds {
		s.latency[kind] = reg.Histogram("grist_serve_latency_seconds", "kind", kind)
		s.okCount[kind] = reg.Counter("grist_serve_requests_total", "kind", kind, "code", "2xx")
		s.badCount[kind] = reg.Counter("grist_serve_requests_total", "kind", kind, "code", "4xx")
		s.shedCount[kind] = reg.Counter("grist_serve_requests_total", "kind", kind, "code", "503")
	}
	return s
}

// SetStaleness feeds the degraded-mode machinery: n is how many
// committed epochs the newest published snapshot lags behind (the
// poller's Staleness()). Crossing MaxStale flips the plane into
// degraded serving.
func (s *Server) SetStaleness(n int) {
	s.staleness.Store(int64(n))
	if n > s.maxStale {
		s.degradedGge.Set(1)
	} else {
		s.degradedGge.Set(0)
	}
}

// SetQuarantine records the currently quarantined epochs for /healthz.
func (s *Server) SetQuarantine(epochs []int) {
	s.quarMu.Lock()
	s.quarantined = append(s.quarantined[:0], epochs...)
	s.quarMu.Unlock()
}

// Degraded reports whether staleness exceeds the configured bound.
func (s *Server) Degraded() bool { return int(s.staleness.Load()) > s.maxStale }

// Publish installs a snapshot and updates the epoch gauge — the
// producer-side entry point (poller or in-process model hook).
func (s *Server) Publish(snap *Snapshot) {
	s.Engine.Store().Publish(snap)
	s.reg.Gauge("grist_serve_snapshot_epoch").Set(float64(snap.Epoch))
	s.reg.Counter("grist_serve_snapshots_total").Inc()
}

// Register installs the query-plane endpoints onto mux (so gristd can
// merge them with the telemetry plane's /metrics and /trace).
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/point", s.wrap("point", s.handlePoint))
	mux.HandleFunc("/v1/region", s.wrap("region", s.handleRegion))
	mux.HandleFunc("/v1/range", s.wrap("range", s.handleRange))
	mux.HandleFunc("/v1/epochs", s.wrap("epochs", s.handleEpochs))
	mux.HandleFunc("/healthz", s.handleHealthz)
}

// Mux returns a fresh mux with just the query-plane endpoints.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	s.Register(mux)
	return mux
}

// Tenant extracts the requesting tenant: the X-Grist-Tenant header,
// else the tenant query parameter, else "anon".
func Tenant(r *http.Request) string {
	if t := r.Header.Get("X-Grist-Tenant"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "anon"
}

// wrap applies the admission pipeline around a query handler: trace
// start (an inbound X-Grist-Trace ID is honored, else one is minted and
// echoed), quota check, bounded-queue admission, latency and result
// accounting with the trace ID recorded as the latency histogram's
// exemplar, JSON encoding. Handlers return (payload, cacheStatus,
// *Error).
func (s *Server) wrap(kind string, fn func(*http.Request, *QueryTrace) (any, string, *Error)) http.HandlerFunc {
	lat := s.latency[kind]
	ok2xx, bad4xx := s.okCount[kind], s.badCount[kind]
	return func(w http.ResponseWriter, r *http.Request) {
		qt := &QueryTrace{ID: r.Header.Get("X-Grist-Trace"), Kind: kind, Tenant: Tenant(r), Start: time.Now()}
		if qt.ID == "" {
			qt.ID = s.traces.newID()
		}
		w.Header().Set("X-Grist-Trace", qt.ID)
		if stale := int(s.staleness.Load()); stale > s.maxStale {
			// Degraded mode is advertised, never hidden: clients see how
			// many committed epochs the answer lags behind.
			w.Header().Set("X-Grist-Stale", strconv.Itoa(stale))
		}
		t0 := time.Now()
		if !s.Quotas.Allow(qt.Tenant) {
			s.quotaReject.Inc()
			w.Header().Set("Retry-After", "1")
			w.Header().Set("X-Grist-Reject", "quota")
			qt.phase("quota", time.Since(t0))
			s.finishTrace(qt, 429, "", "tenant quota exceeded")
			writeJSON(w, 429, &Error{Code: 429, Msg: "tenant quota exceeded"})
			return
		}
		qt.phase("quota", time.Since(t0))
		tq := time.Now()
		select {
		case s.queue <- struct{}{}:
		default:
			s.queueReject.Inc()
			w.Header().Set("Retry-After", "1")
			w.Header().Set("X-Grist-Reject", "queue")
			qt.phase("queue", time.Since(tq))
			s.finishTrace(qt, 429, "", "server queue full")
			writeJSON(w, 429, &Error{Code: 429, Msg: "server queue full"})
			return
		}
		qt.phase("queue", time.Since(tq))
		s.queueDepth.Set(float64(len(s.queue)))
		t0 = time.Now()
		payload, status, qerr := fn(r, qt)
		dt := time.Since(t0).Seconds()
		qt.phase("handler", time.Since(t0))
		<-s.queue
		lat.ObserveExemplar(dt, qt.ID)
		if qerr != nil {
			if qerr.Code == 503 {
				// Breaker shed: scoped to one tile key, with the cooldown
				// as Retry-After — distinct from 429 backpressure.
				if qerr.RetryAfter > 0 {
					w.Header().Set("Retry-After", strconv.Itoa(qerr.RetryAfter))
				}
				w.Header().Set("X-Grist-Reject", "breaker")
				s.shedCount[kind].Inc()
			} else {
				bad4xx.Inc()
			}
			s.finishTrace(qt, qerr.Code, "", qerr.Msg)
			writeJSON(w, qerr.Code, qerr)
			return
		}
		if status != "" {
			w.Header().Set("X-Grist-Cache", status)
			if status == CacheHit {
				s.hitLatency.ObserveExemplar(dt, qt.ID)
			}
		}
		ok2xx.Inc()
		s.finishTrace(qt, 200, status, "")
		writeJSON(w, 200, payload)
	}
}

// finishTrace seals a query trace and retains a copy in the ring.
func (s *Server) finishTrace(qt *QueryTrace, code int, cache, errMsg string) {
	qt.Status = code
	qt.Cache = cache
	qt.Err = errMsg
	qt.DurNS = int64(time.Since(qt.Start))
	s.traces.add(*qt)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// floatArg parses a float query parameter; def is returned when the
// parameter is absent.
func floatArg(r *http.Request, name string, def float64) (float64, *Error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, badRequest("parameter %s=%q is not a number", name, raw)
	}
	return v, nil
}

// intArg parses an integer query parameter with a default.
func intArg(r *http.Request, name string, def int) (int, *Error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("parameter %s=%q is not an integer", name, raw)
	}
	return v, nil
}

func (s *Server) handlePoint(r *http.Request, qt *QueryTrace) (any, string, *Error) {
	lat, err := floatArg(r, "lat", 0)
	if err != nil {
		return nil, "", err
	}
	lon, err := floatArg(r, "lon", 0)
	if err != nil {
		return nil, "", err
	}
	epoch, err := intArg(r, "epoch", -1)
	if err != nil {
		return nil, "", err
	}
	field := r.URL.Query().Get("field")
	if field == "" {
		field = "ps"
	}
	res, status, qerr := s.Engine.PointT(qt, epoch, field, lat, lon)
	if qerr != nil {
		return nil, "", qerr
	}
	return res, status, nil
}

func (s *Server) handleRegion(r *http.Request, qt *QueryTrace) (any, string, *Error) {
	minLat, err := floatArg(r, "min_lat", -90)
	if err != nil {
		return nil, "", err
	}
	maxLat, err := floatArg(r, "max_lat", 90)
	if err != nil {
		return nil, "", err
	}
	minLon, err := floatArg(r, "min_lon", -180)
	if err != nil {
		return nil, "", err
	}
	maxLon, err := floatArg(r, "max_lon", 180)
	if err != nil {
		return nil, "", err
	}
	epoch, err := intArg(r, "epoch", -1)
	if err != nil {
		return nil, "", err
	}
	limit, err := intArg(r, "limit", 0)
	if err != nil {
		return nil, "", err
	}
	field := r.URL.Query().Get("field")
	if field == "" {
		field = "ps"
	}
	res, status, qerr := s.Engine.RegionT(qt, epoch, field, minLat, maxLat, minLon, maxLon, limit)
	if qerr != nil {
		return nil, "", qerr
	}
	return res, status, nil
}

func (s *Server) handleRange(r *http.Request, qt *QueryTrace) (any, string, *Error) {
	lat, err := floatArg(r, "lat", 0)
	if err != nil {
		return nil, "", err
	}
	lon, err := floatArg(r, "lon", 0)
	if err != nil {
		return nil, "", err
	}
	from, err := intArg(r, "from", 0)
	if err != nil {
		return nil, "", err
	}
	to, err := intArg(r, "to", -1)
	if err != nil {
		return nil, "", err
	}
	field := r.URL.Query().Get("field")
	if field == "" {
		field = "ps"
	}
	res, status, qerr := s.Engine.RangeT(qt, field, lat, lon, from, to)
	if qerr != nil {
		return nil, "", qerr
	}
	return res, status, nil
}

// epochsResult lists the retained epochs and the served fields — the
// discovery endpoint clients hit first.
type epochsResult struct {
	Epochs []int    `json:"epochs"`
	Fields []string `json:"fields"`
}

func (s *Server) handleEpochs(r *http.Request, qt *QueryTrace) (any, string, *Error) {
	return epochsResult{Epochs: s.Engine.Store().Epochs(), Fields: FieldNames[:]}, "", nil
}

// handleHealthz bypasses quotas and the queue: load balancers must see
// liveness even under full backpressure. 503 while warming up (no
// snapshot yet); 200 afterwards, including degraded mode — a stale
// plane still serves, so it must not flap out of the LB pool. The body
// is machine-readable: status ("ok" or "degraded"), the current
// staleness, the configured bound, and the quarantined epochs.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Engine.Store().Latest() == nil {
		writeJSON(w, 503, map[string]string{"status": "warming", "reason": "no snapshot published yet"})
		return
	}
	s.quarMu.Lock()
	quarantined := append([]int(nil), s.quarantined...)
	s.quarMu.Unlock()
	stale := int(s.staleness.Load())
	status := "ok"
	if stale > s.maxStale {
		status = "degraded"
	}
	writeJSON(w, 200, map[string]any{
		"status":       status,
		"stale_epochs": stale,
		"max_stale":    s.maxStale,
		"quarantined":  quarantined,
	})
}
