package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gristgo/internal/telemetry"
)

func newTestServer(cfg Config) *Server {
	s := NewServer(testMesh, cfg, telemetry.NewRegistry())
	return s
}

func get(t *testing.T, h http.Handler, path, tenant string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	if tenant != "" {
		req.Header.Set("X-Grist-Tenant", tenant)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestQuotasTokenBucket(t *testing.T) {
	q := NewQuotas(10, 3)
	clock := time.Unix(1000, 0)
	q.now = func() time.Time { return clock }
	for i := 0; i < 3; i++ {
		if !q.Allow("a") {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	if q.Allow("a") {
		t.Fatal("request beyond burst allowed")
	}
	// Another tenant has its own bucket.
	if !q.Allow("b") {
		t.Fatal("fresh tenant rejected")
	}
	// 10 tokens/s: 200ms buys two more requests.
	clock = clock.Add(200 * time.Millisecond)
	if !q.Allow("a") || !q.Allow("a") {
		t.Fatal("refilled tokens not granted")
	}
	if q.Allow("a") {
		t.Fatal("third request after 200ms refill allowed")
	}
	if q.Tenants() != 2 {
		t.Fatalf("Tenants = %d, want 2", q.Tenants())
	}
	// Rate 0 disables limiting entirely.
	open := NewQuotas(0, 1)
	for i := 0; i < 100; i++ {
		if !open.Allow("x") {
			t.Fatal("unlimited quota rejected a request")
		}
	}
}

func TestHealthzWarmingThenReady(t *testing.T) {
	s := newTestServer(Config{})
	mux := s.Mux()
	if rec := get(t, mux, "/healthz", ""); rec.Code != 503 {
		t.Fatalf("healthz before first snapshot = %d, want 503", rec.Code)
	}
	s.Publish(testSnapshot(1))
	if rec := get(t, mux, "/healthz", ""); rec.Code != 200 {
		t.Fatalf("healthz after snapshot = %d, want 200", rec.Code)
	}
}

func TestHTTPPointAndEpochs(t *testing.T) {
	s := newTestServer(Config{})
	mux := s.Mux()
	s.Publish(testSnapshot(1))
	s.Publish(testSnapshot(2))

	rec := get(t, mux, "/v1/point?lat=12&lon=34&field=t_sfc", "")
	if rec.Code != 200 {
		t.Fatalf("point = %d: %s", rec.Code, rec.Body.String())
	}
	if c := rec.Header().Get("X-Grist-Cache"); c != CacheBuild {
		t.Fatalf("first point X-Grist-Cache = %q, want %q", c, CacheBuild)
	}
	var pt PointResult
	if err := json.Unmarshal(rec.Body.Bytes(), &pt); err != nil {
		t.Fatal(err)
	}
	if pt.Epoch != 2 || pt.Field != "t_sfc" {
		t.Fatalf("point served (epoch=%d, field=%q), want latest epoch 2, t_sfc", pt.Epoch, pt.Field)
	}
	if pt.Value < 150 || pt.Value > 400 {
		t.Fatalf("implausible surface temperature %v", pt.Value)
	}

	rec = get(t, mux, "/v1/point?lat=12&lon=34&field=t_sfc", "")
	if c := rec.Header().Get("X-Grist-Cache"); c != CacheHit {
		t.Fatalf("second point X-Grist-Cache = %q, want %q", c, CacheHit)
	}

	// Explicit epoch selection.
	rec = get(t, mux, "/v1/point?lat=12&lon=34&epoch=1", "")
	if rec.Code != 200 {
		t.Fatalf("point@1 = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &pt); err != nil {
		t.Fatal(err)
	}
	if pt.Epoch != 1 || pt.Field != "ps" {
		t.Fatalf("point@1 served (epoch=%d, field=%q), want (1, ps default)", pt.Epoch, pt.Field)
	}

	// Discovery endpoint.
	rec = get(t, mux, "/v1/epochs", "")
	var eps epochsResult
	if err := json.Unmarshal(rec.Body.Bytes(), &eps); err != nil {
		t.Fatal(err)
	}
	if len(eps.Epochs) != 2 || len(eps.Fields) != NumFields {
		t.Fatalf("epochs = %+v", eps)
	}
}

func TestHTTPClientErrorsAre4xx(t *testing.T) {
	s := newTestServer(Config{})
	mux := s.Mux()
	s.Publish(testSnapshot(1))
	for _, path := range []string{
		"/v1/point?lat=banana",
		"/v1/point?lat=95",
		"/v1/point?field=vorticity",
		"/v1/point?epoch=banana",
		"/v1/point?epoch=99",
		"/v1/region?min_lat=40&max_lat=10",
		"/v1/range?from=9&to=2",
	} {
		rec := get(t, mux, path, "")
		if rec.Code < 400 || rec.Code >= 500 {
			t.Fatalf("%s = %d, want 4xx", path, rec.Code)
		}
		var e Error
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Msg == "" {
			t.Fatalf("%s: error body not JSON with message: %s", path, rec.Body.String())
		}
	}
}

// A tenant past its quota gets 429 with Retry-After and the reject
// header, and other tenants keep flowing.
func TestHTTPQuota429(t *testing.T) {
	s := newTestServer(Config{QuotaRate: 1, QuotaBurst: 3})
	mux := s.Mux()
	s.Publish(testSnapshot(1))
	path := "/v1/point?lat=0&lon=0"
	for i := 0; i < 3; i++ {
		if rec := get(t, mux, path, "greedy"); rec.Code != 200 {
			t.Fatalf("request %d within burst = %d", i, rec.Code)
		}
	}
	rec := get(t, mux, path, "greedy")
	if rec.Code != 429 {
		t.Fatalf("over-quota request = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	if r := rec.Header().Get("X-Grist-Reject"); r != "quota" {
		t.Fatalf("X-Grist-Reject = %q, want quota", r)
	}
	// A polite tenant is unaffected.
	if rec := get(t, mux, path, "polite"); rec.Code != 200 {
		t.Fatalf("other tenant = %d while greedy throttled", rec.Code)
	}
}

// With the admission queue full, requests bounce with 429/queue — the
// plane sheds load instead of erroring.
func TestHTTPQueueFull429(t *testing.T) {
	s := newTestServer(Config{QueueDepth: 2})
	mux := s.Mux()
	s.Publish(testSnapshot(1))
	// Occupy every queue slot as if that many requests were in flight.
	s.queue <- struct{}{}
	s.queue <- struct{}{}
	rec := get(t, mux, "/v1/point?lat=0&lon=0", "")
	if rec.Code != 429 {
		t.Fatalf("full-queue request = %d, want 429", rec.Code)
	}
	if r := rec.Header().Get("X-Grist-Reject"); r != "queue" {
		t.Fatalf("X-Grist-Reject = %q, want queue", r)
	}
	// Healthz still answers under full backpressure.
	if rec := get(t, mux, "/healthz", ""); rec.Code != 200 {
		t.Fatalf("healthz under backpressure = %d, want 200", rec.Code)
	}
	// Draining one slot readmits traffic.
	<-s.queue
	if rec := get(t, mux, "/v1/point?lat=0&lon=0", ""); rec.Code != 200 {
		t.Fatalf("after drain = %d, want 200", rec.Code)
	}
}

// The in-process load replay: a short storm must produce zero 5xx,
// a healthy hit rate, and quota rejections only for the greedy tenant.
func TestLoadReplayShortStorm(t *testing.T) {
	s := newTestServer(Config{QuotaRate: 50, QuotaBurst: 100})
	for e := 1; e <= 3; e++ {
		s.Publish(testSnapshot(e))
	}
	n := 20000
	if testing.Short() {
		n = 4000
	}
	rep := RunLoadInProcess(s.Mux(), s.Engine, LoadConfig{Queries: n, Workers: 4})
	if rep.Queries != int64(n) {
		t.Fatalf("fired %d queries, want %d", rep.Queries, n)
	}
	if rep.Server5xx != 0 {
		t.Fatalf("replay produced %d server 5xx", rep.Server5xx)
	}
	if rep.OK == 0 {
		t.Fatal("replay produced no successful queries")
	}
	if rep.Client4xx != 0 {
		t.Fatalf("well-formed replay produced %d 4xx", rep.Client4xx)
	}
	if rep.Quota429 == 0 {
		t.Fatal("greedy tenant was never throttled")
	}
	// Loose sanity bound: the short run is cold-start dominated (720
	// keys, 96-tile cache), so only assert the cache is clearly working.
	if rep.HitRate < 0.25 {
		t.Fatalf("hit rate %.2f implausibly low for a hotspot workload", rep.HitRate)
	}
	if rep.P99Sec <= 0 {
		t.Fatal("latency accounting empty")
	}
	if rep.TileBuilds == 0 {
		t.Fatal("no tile was ever built")
	}
}
