package serve

import (
	"math"
	"sync"
	"testing"

	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
)

// Shared test mesh: G3 is big enough (642 cells) for meaningful tiles
// yet cheap to build once.
var testMesh = mesh.New(3).ReorderBFS()

// testState builds a mildly structured full-mesh state so snapshot
// fields are non-trivial.
func testState(nlev int) *dycore.State {
	s := dycore.NewState(testMesh, nlev)
	s.IsothermalRest(295)
	s.AddThermalBubble(0.4, 1.2, 0.25, 4)
	s.AddSolidBodyWind(18)
	return s
}

// testSnapshot derives one snapshot from the shared state.
func testSnapshot(epoch int) *Snapshot {
	return SnapshotFromState(epoch, epoch*10, testState(3))
}

func TestFieldIDRoundTrip(t *testing.T) {
	for i, name := range FieldNames {
		id, ok := FieldID(name)
		if !ok || id != i {
			t.Fatalf("FieldID(%q) = (%d, %v), want (%d, true)", name, id, ok, i)
		}
	}
	if _, ok := FieldID("nope"); ok {
		t.Fatal("FieldID accepted an unknown field")
	}
}

func TestSnapshotFieldsPhysical(t *testing.T) {
	snap := testSnapshot(1)
	if snap.NCells() != testMesh.NCells {
		t.Fatalf("NCells = %d, want %d", snap.NCells(), testMesh.NCells)
	}
	for c := int32(0); c < int32(testMesh.NCells); c++ {
		ps := snap.Value(FieldPS, c)
		if ps < 5e4 || ps > 1.2e5 {
			t.Fatalf("cell %d: surface pressure %.0f Pa implausible", c, ps)
		}
		ts := snap.Value(FieldTSfc, c)
		if ts < 150 || ts > 400 {
			t.Fatalf("cell %d: surface temperature %.1f K implausible", c, ts)
		}
		if w := snap.Value(FieldWMax, c); w < 0 {
			t.Fatalf("cell %d: negative |w| max %v", c, w)
		}
	}
	// The solid-body wind must show up in the surface wind field.
	var maxU float64
	for c := int32(0); c < int32(testMesh.NCells); c++ {
		maxU = math.Max(maxU, math.Abs(snap.Value(FieldUSfc, c)))
	}
	if maxU < 1 {
		t.Fatalf("solid-body wind missing from u_sfc (max |u| = %v)", maxU)
	}
}

func TestSnapshotStoreRetention(t *testing.T) {
	st := NewSnapshotStore(3)
	if st.Latest() != nil {
		t.Fatal("empty store returned a snapshot")
	}
	for e := 1; e <= 5; e++ {
		st.Publish(&Snapshot{Epoch: e})
	}
	got := st.Epochs()
	want := []int{3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("Epochs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Epochs = %v, want %v", got, want)
		}
	}
	if st.Latest().Epoch != 5 {
		t.Fatalf("Latest().Epoch = %d, want 5", st.Latest().Epoch)
	}
	if _, ok := st.At(2); ok {
		t.Fatal("evicted epoch 2 still retrievable")
	}
	if s, ok := st.At(4); !ok || s.Epoch != 4 {
		t.Fatal("retained epoch 4 not retrievable")
	}
}

func TestTilerPartitionsAllCells(t *testing.T) {
	tl := NewTiler(testMesh, 12, 12345)
	seen := make([]bool, testMesh.NCells)
	for tile := int32(0); tile < int32(tl.NTiles); tile++ {
		cells := tl.TileCells(tile)
		if len(cells) == 0 {
			t.Fatalf("tile %d is empty", tile)
		}
		for i, c := range cells {
			if seen[c] {
				t.Fatalf("cell %d in two tiles", c)
			}
			seen[c] = true
			if tl.TileOfCell(c) != tile {
				t.Fatalf("TileOfCell(%d) = %d, want %d", c, tl.TileOfCell(c), tile)
			}
			if tl.LocalIndex(c) != int32(i) {
				t.Fatalf("LocalIndex(%d) = %d, want %d", c, tl.LocalIndex(c), i)
			}
		}
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("cell %d unassigned", c)
		}
	}
}

// Locate's greedy walk over the Delaunay dual must find the true
// nearest cell for arbitrary query points.
func TestTilerLocateMatchesBruteForce(t *testing.T) {
	tl := NewTiler(testMesh, 12, 12345)
	pts := []struct{ lat, lon float64 }{
		{0, 0}, {89.9, 10}, {-89.9, -120}, {45, 179.9}, {45, -179.9},
		{-33.86, 151.2}, {51.5, -0.12}, {12.3, -45.6}, {-60, 100},
	}
	for _, p := range pts {
		lat, lon := p.lat*math.Pi/180, p.lon*math.Pi/180
		got := tl.Locate(lat, lon)
		q := mesh.FromLatLon(lat, lon)
		best, bestD := int32(0), -2.0
		for c := 0; c < testMesh.NCells; c++ {
			if d := testMesh.CellPos[c].Dot(q); d > bestD {
				best, bestD = int32(c), d
			}
		}
		if got != best {
			t.Fatalf("Locate(%.1f, %.1f) = cell %d, brute force says %d", p.lat, p.lon, got, best)
		}
	}
}

func TestTilerOverlapsFindsContainingTile(t *testing.T) {
	tl := NewTiler(testMesh, 12, 12345)
	// Every cell's own lat/lon must fall inside a bbox its tile overlaps.
	for c := 0; c < testMesh.NCells; c++ {
		lat, lon := testMesh.CellLat[c], testMesh.CellLon[c]
		tile := tl.TileOfCell(int32(c))
		if !tl.Overlaps(tile, lat-0.01, lat+0.01, lon-0.01, lon+0.01) {
			t.Fatalf("tile %d does not overlap its own cell %d bbox", tile, c)
		}
	}
}

func TestTileCacheLRUAndStats(t *testing.T) {
	snap := testSnapshot(1)
	tl := NewTiler(testMesh, 8, 12345)
	cache := NewTileCache(2)
	mk := func(tile int32) *Tile {
		k := TileKey{Epoch: 1, Tile: tile, Field: FieldPS}
		return NewTile(k, snap, tl.TileCells(tile))
	}
	t0, t1, t2 := mk(0), mk(1), mk(2)
	cache.Add(t0)
	cache.Add(t1)
	if got := cache.Get(t0.key); got != t0 {
		t.Fatal("Get missed a resident tile")
	}
	// t0 is now MRU; adding t2 must evict t1.
	cache.Add(t2)
	if cache.Get(t1.key) != nil {
		t.Fatal("LRU kept the least-recently-used tile")
	}
	if cache.Get(t0.key) != t0 || cache.Get(t2.key) != t2 {
		t.Fatal("LRU evicted a recently used tile")
	}
	hits, misses, evictions := cache.Stats()
	if hits != 3 || misses != 1 || evictions != 1 {
		t.Fatalf("Stats = (%d, %d, %d), want (3, 1, 1)", hits, misses, evictions)
	}
	// First materialization wins on duplicate Add.
	dup := mk(0)
	cache.Add(dup)
	if cache.Get(t0.key) != t0 {
		t.Fatal("duplicate Add replaced the resident tile")
	}
}

// The tile-cache hit path is annotated //grist:hotpath — prove it is
// allocation-free.
func TestTileCacheGetAllocFree(t *testing.T) {
	snap := testSnapshot(1)
	tl := NewTiler(testMesh, 8, 12345)
	cache := NewTileCache(4)
	k := TileKey{Epoch: 1, Tile: 0, Field: FieldPS}
	cache.Add(NewTile(k, snap, tl.TileCells(0)))
	missed := false
	allocs := testing.AllocsPerRun(1000, func() {
		if cache.Get(k) == nil {
			missed = true
		}
	})
	if missed {
		t.Fatal("resident tile missed")
	}
	if allocs != 0 {
		t.Fatalf("TileCache.Get allocates %.1f per call, want 0", allocs)
	}
}

func TestTileValuesMatchSnapshot(t *testing.T) {
	snap := testSnapshot(2)
	tl := NewTiler(testMesh, 8, 12345)
	cells := tl.TileCells(3)
	tile := NewTile(TileKey{Epoch: 2, Tile: 3, Field: FieldTSfc}, snap, cells)
	if tile.Len() != len(cells) {
		t.Fatalf("tile Len = %d, want %d", tile.Len(), len(cells))
	}
	for i, c := range cells {
		if tile.Value(int32(i)) != snap.Value(FieldTSfc, c) {
			t.Fatalf("tile value %d diverges from snapshot cell %d", i, c)
		}
	}
	// AppendValues hands out a copy, not the internal slice.
	out := tile.AppendValues(nil)
	out[0] = -1e9
	if tile.Value(0) == -1e9 {
		t.Fatal("AppendValues leaked the internal slice")
	}
}

// flightGroup semantics, deterministically: joiners block until the
// leader finishes and then observe exactly its result.
func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	k := TileKey{Epoch: 1, Tile: 2, Field: 3}
	if c := g.join(k); c != nil {
		t.Fatal("join found a call before any leader")
	}
	lead, isLeader := g.lead(k)
	if !isLeader {
		t.Fatal("first lead was not the leader")
	}
	if c, again := g.lead(k); again || c != lead {
		t.Fatal("second lead did not coalesce onto the first")
	}
	const joiners = 8
	var wg sync.WaitGroup
	results := make([]*Tile, joiners)
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := g.join(k)
			if c == nil {
				return // leader already finished; that path is cache's job
			}
			<-c.done
			results[i] = c.tile
		}(i)
	}
	built := &Tile{key: k}
	g.finish(k, lead, built, nil)
	wg.Wait()
	for i, r := range results {
		if r != nil && r != built {
			t.Fatalf("joiner %d saw a different tile", i)
		}
	}
	if g.Coalesced() < 1 {
		t.Fatal("coalesced counter never moved")
	}
	if c := g.join(k); c != nil {
		t.Fatal("finished call still joinable")
	}
}

func newTestEngine(capTiles int) *Engine {
	store := NewSnapshotStore(8)
	return NewEngine(testMesh, store, 8, capTiles, 12345)
}

func TestEnginePointMatchesSnapshot(t *testing.T) {
	eng := newTestEngine(32)
	snap := testSnapshot(1)
	eng.Store().Publish(snap)

	res, status, qerr := eng.Point(-1, "ps", 12.0, 34.0)
	if qerr != nil {
		t.Fatalf("Point: %v", qerr)
	}
	if status != CacheBuild {
		t.Fatalf("first query status %q, want %q", status, CacheBuild)
	}
	if res.Epoch != 1 {
		t.Fatalf("Point served epoch %d, want 1", res.Epoch)
	}
	want := snap.Value(FieldPS, res.Cell)
	if res.Value != want {
		t.Fatalf("Point value %v, want %v", res.Value, want)
	}
	// Same query again: cache hit, same value.
	res2, status2, _ := eng.Point(-1, "ps", 12.0, 34.0)
	if status2 != CacheHit {
		t.Fatalf("second query status %q, want %q", status2, CacheHit)
	}
	if res2.Value != want || res2.Cell != res.Cell {
		t.Fatal("cached value diverged from built value")
	}
}

func TestEngineErrors(t *testing.T) {
	eng := newTestEngine(32)
	if _, _, qerr := eng.Point(-1, "ps", 0, 0); qerr == nil || qerr.Code != 404 {
		t.Fatalf("empty store: got %v, want 404", qerr)
	}
	eng.Store().Publish(testSnapshot(1))
	cases := []struct {
		name string
		code int
		run  func() *Error
	}{
		{"bad field", 400, func() *Error { _, _, e := eng.Point(-1, "vorticity", 0, 0); return e }},
		{"bad lat", 400, func() *Error { _, _, e := eng.Point(-1, "ps", 91, 0); return e }},
		{"missing epoch", 404, func() *Error { _, _, e := eng.Point(7, "ps", 0, 0); return e }},
		{"bad region bbox", 400, func() *Error { _, _, e := eng.Region(-1, "ps", 30, 10, 0, 20, 0); return e }},
		{"bad range order", 400, func() *Error { _, _, e := eng.Range("ps", 0, 0, 5, 2); return e }},
	}
	for _, tc := range cases {
		if e := tc.run(); e == nil || e.Code != tc.code {
			t.Fatalf("%s: got %v, want code %d", tc.name, e, tc.code)
		}
	}
}

func TestEngineRegion(t *testing.T) {
	eng := newTestEngine(64)
	snap := testSnapshot(1)
	eng.Store().Publish(snap)

	res, _, qerr := eng.Region(-1, "t_sfc", -30, 30, -60, 60, 0)
	if qerr != nil {
		t.Fatalf("Region: %v", qerr)
	}
	if len(res.Cells) == 0 {
		t.Fatal("region over a third of the globe returned no cells")
	}
	if len(res.Cells) != len(res.Values) || len(res.Cells) != len(res.LatDeg) || len(res.Cells) != len(res.LonDeg) {
		t.Fatal("region arrays disagree on length")
	}
	for i, c := range res.Cells {
		latD := testMesh.CellLat[c] * 180 / math.Pi
		lonD := testMesh.CellLon[c] * 180 / math.Pi
		if latD < -30.001 || latD > 30.001 || lonD < -60.001 || lonD > 60.001 {
			t.Fatalf("cell %d at (%.2f, %.2f) outside requested bbox", c, latD, lonD)
		}
		if res.Values[i] != snap.Value(FieldTSfc, c) {
			t.Fatalf("region value %d diverges from snapshot", i)
		}
	}

	// A limit truncates and reports it.
	lim, _, qerr := eng.Region(-1, "t_sfc", -30, 30, -60, 60, 5)
	if qerr != nil {
		t.Fatalf("limited Region: %v", qerr)
	}
	if len(lim.Cells) != 5 || !lim.Truncated {
		t.Fatalf("limit=5: got %d cells, truncated=%v", len(lim.Cells), lim.Truncated)
	}

	// Full-globe region returns every cell.
	all, _, qerr := eng.Region(-1, "ps", -90, 90, -180, 180, testMesh.NCells)
	if qerr != nil {
		t.Fatalf("global Region: %v", qerr)
	}
	if len(all.Cells) != testMesh.NCells {
		t.Fatalf("global region returned %d cells, want %d", len(all.Cells), testMesh.NCells)
	}
}

func TestEngineRange(t *testing.T) {
	eng := newTestEngine(64)
	for e := 1; e <= 4; e++ {
		eng.Store().Publish(testSnapshot(e))
	}
	res, _, qerr := eng.Range("ps", 10, 20, 0, -1)
	if qerr != nil {
		t.Fatalf("Range: %v", qerr)
	}
	if len(res.Series) != 4 {
		t.Fatalf("Range returned %d samples, want 4", len(res.Series))
	}
	for _, pt := range res.Series {
		snap, _ := eng.Store().At(pt.Epoch)
		if pt.Value != snap.Value(FieldPS, res.Cell) {
			t.Fatalf("range value for epoch %d diverges", pt.Epoch)
		}
		if pt.Step != snap.Step {
			t.Fatalf("range step for epoch %d diverges", pt.Epoch)
		}
	}
	// Bounded window.
	sub, _, qerr := eng.Range("ps", 10, 20, 2, 3)
	if qerr != nil {
		t.Fatalf("bounded Range: %v", qerr)
	}
	if len(sub.Series) != 2 || sub.Series[0].Epoch != 2 || sub.Series[1].Epoch != 3 {
		t.Fatalf("bounded Range series = %+v, want epochs [2 3]", sub.Series)
	}
	// An empty window inside valid bounds is a 404, not an error page.
	if _, _, qerr := eng.Range("ps", 10, 20, 90, 99); qerr == nil || qerr.Code != 404 {
		t.Fatalf("empty window: got %v, want 404", qerr)
	}
}

// Concurrent identical queries on a cold tile: every caller gets the
// same value and the miss accounting closes (each miss either led a
// build or coalesced onto one).
func TestEngineConcurrentPointCoalesces(t *testing.T) {
	eng := newTestEngine(64)
	eng.Store().Publish(testSnapshot(1))
	const n = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	vals := map[float64]int{}
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, _, qerr := eng.Point(-1, "w_max", 42.0, -71.0)
			if qerr != nil {
				t.Errorf("Point: %v", qerr)
				return
			}
			mu.Lock()
			vals[res.Value]++
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if len(vals) != 1 {
		t.Fatalf("coalesced queries returned %d distinct values", len(vals))
	}
	st := eng.Stats()
	if st.Hits+st.Misses != n {
		t.Fatalf("hits=%d misses=%d, want sum %d", st.Hits, st.Misses, n)
	}
	if st.Builds+st.Coalesced != st.Misses {
		t.Fatalf("miss accounting leaks: builds=%d coalesced=%d misses=%d",
			st.Builds, st.Coalesced, st.Misses)
	}
	if st.Builds < 1 || st.Builds > st.Misses {
		t.Fatalf("builds=%d out of range [1, %d]", st.Builds, st.Misses)
	}
}

// The immutability contract: a query storm (with evictions forcing
// rebuilds) must leave the published snapshots bit-identical, and
// mutating data handed to clients must not write back.
func TestServingNeverMutatesSnapshots(t *testing.T) {
	eng := newTestEngine(4) // tiny cache: constant eviction + rebuild
	snaps := []*Snapshot{testSnapshot(1), testSnapshot(2)}
	sums := make([]uint64, len(snaps))
	for i, s := range snaps {
		eng.Store().Publish(s)
		sums[i] = s.Checksum()
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				epoch := 1 + (i+w)%2
				field := FieldNames[(i+w)%NumFields]
				lat := float64((i*13+w*7)%170 - 85)
				lon := float64((i*29+w*11)%358 - 179)
				res, _, qerr := eng.Region(epoch, field, lat-5, lat+5, lon-5, lon+5, 64)
				if qerr != nil {
					continue
				}
				// Scribble on everything the engine handed back.
				for j := range res.Values {
					res.Values[j] = math.NaN()
					res.LatDeg[j], res.LonDeg[j] = -1e9, -1e9
				}
				if _, _, qerr := eng.Point(epoch, field, lat, lon); qerr != nil {
					t.Errorf("point during storm: %v", qerr)
				}
			}
		}(w)
	}
	wg.Wait()
	for i, s := range snaps {
		if s.Checksum() != sums[i] {
			t.Fatalf("snapshot epoch %d mutated by serving", s.Epoch)
		}
	}
	// A rebuilt tile must serve the original values.
	res, _, qerr := eng.Point(1, "ps", 12, 34)
	if qerr != nil {
		t.Fatalf("Point after storm: %v", qerr)
	}
	if want := snaps[0].Value(FieldPS, res.Cell); res.Value != want {
		t.Fatalf("post-storm value %v, want %v", res.Value, want)
	}
}
