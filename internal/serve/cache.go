package serve

import (
	"sync"
	"sync/atomic"
)

// TileKey identifies one cached tile: the field of one tile of one
// snapshot epoch. Compact and comparable — the map key of the cache
// and the coalescing group.
type TileKey struct {
	Epoch int32
	Tile  int32
	Field uint8
}

// Tile is one immutable materialized cache entry: the values of one
// field over one tile's cells (aligned with Tiler.TileCells order).
// The value slice is private; readers use Value or AppendValues.
type Tile struct {
	key  TileKey
	vals []float64

	// LRU intrusive list links, owned by TileCache.
	prev, next *Tile
}

// NewTile materializes a tile by copying the field values of the given
// cells out of snap.
func NewTile(k TileKey, snap *Snapshot, cells []int32) *Tile {
	t := &Tile{key: k, vals: make([]float64, len(cells))}
	for i, c := range cells {
		t.vals[i] = snap.Value(int(k.Field), c)
	}
	return t
}

// Value returns the tile value at local cell index i.
//
//grist:hotpath
func (t *Tile) Value(i int32) float64 { return t.vals[i] }

// Len returns the tile's cell count.
func (t *Tile) Len() int { return len(t.vals) }

// AppendValues appends a copy of the tile's values to dst — the only
// way bulk data leaves a tile, so callers can never alias the cache.
func (t *Tile) AppendValues(dst []float64) []float64 {
	return append(dst, t.vals...)
}

// TileCache is a bounded LRU cache of materialized tiles keyed by
// (epoch, tile, field). Lookup is the serving hot path: one short
// critical section moving the entry to the front of an intrusive
// list — no allocation, no rehashing.
type TileCache struct {
	mu      sync.Mutex
	cap     int
	entries map[TileKey]*Tile
	head    *Tile // most recent
	tail    *Tile // eviction candidate

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewTileCache returns a cache bounded to capTiles entries (min 1).
func NewTileCache(capTiles int) *TileCache {
	if capTiles < 1 {
		capTiles = 1
	}
	return &TileCache{cap: capTiles, entries: make(map[TileKey]*Tile, capTiles+1)}
}

// Get returns the cached tile under k, or nil on a miss, promoting a
// hit to most-recently-used.
//
//grist:hotpath
func (c *TileCache) Get(k TileKey) *Tile {
	c.mu.Lock()
	t := c.entries[k]
	if t != nil {
		c.unlink(t)
		c.pushFront(t)
	}
	c.mu.Unlock()
	if t != nil {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return t
}

// Add installs t as most-recently-used, evicting from the tail beyond
// capacity. Adding an already-present key keeps the existing entry
// (the first materialization wins; both are immutable and equal).
func (c *TileCache) Add(t *Tile) {
	c.mu.Lock()
	if _, ok := c.entries[t.key]; ok {
		c.mu.Unlock()
		return
	}
	c.entries[t.key] = t
	c.pushFront(t)
	for len(c.entries) > c.cap {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.evictions.Add(1)
	}
	c.mu.Unlock()
}

// unlink removes t from the LRU list. Caller holds mu.
//
//grist:hotpath
func (c *TileCache) unlink(t *Tile) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		c.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		c.tail = t.prev
	}
	t.prev, t.next = nil, nil
}

// pushFront makes t the most-recently-used entry. Caller holds mu.
//
//grist:hotpath
func (c *TileCache) pushFront(t *Tile) {
	t.next = c.head
	if c.head != nil {
		c.head.prev = t
	}
	c.head = t
	if c.tail == nil {
		c.tail = t
	}
}

// Len returns the number of cached tiles.
func (c *TileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns cumulative hit/miss/eviction counts.
func (c *TileCache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// flightCall is one in-flight tile materialization; joiners wait on
// done and read tile/err afterwards.
type flightCall struct {
	done chan struct{}
	tile *Tile
	err  error
}

// flightGroup coalesces concurrent materializations of the same tile
// key into one build (singleflight): the first caller becomes the
// leader, everyone else joins and waits for its result.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[TileKey]*flightCall

	coalesced atomic.Int64
}

func newFlightGroup() *flightGroup {
	return &flightGroup{inflight: make(map[TileKey]*flightCall)}
}

// join returns the in-flight call for k, or nil when the caller should
// try to lead. The coalesce fast path: one map read under the lock.
//
//grist:hotpath
func (g *flightGroup) join(k TileKey) *flightCall {
	g.mu.Lock()
	c := g.inflight[k]
	g.mu.Unlock()
	if c != nil {
		g.coalesced.Add(1)
	}
	return c
}

// lead registers a new call for k and reports whether the caller is
// the leader; a concurrent leader wins the race and the caller gets
// its call to join instead.
func (g *flightGroup) lead(k TileKey) (*flightCall, bool) {
	g.mu.Lock()
	if c, ok := g.inflight[k]; ok {
		g.mu.Unlock()
		g.coalesced.Add(1)
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.inflight[k] = c
	g.mu.Unlock()
	return c, true
}

// finish publishes the leader's result and releases the joiners.
func (g *flightGroup) finish(k TileKey, c *flightCall, t *Tile, err error) {
	c.tile, c.err = t, err
	g.mu.Lock()
	delete(g.inflight, k)
	g.mu.Unlock()
	close(c.done)
}

// Coalesced returns how many requests joined an in-flight build
// instead of starting their own.
func (g *flightGroup) Coalesced() int64 { return g.coalesced.Load() }
