package serve

import (
	"encoding/json"
	"testing"
	"time"
)

// Bounded-staleness degraded mode over HTTP: within the bound the
// plane is silent about lag; past it, responses carry X-Grist-Stale
// and /healthz reports "degraded" while still returning 200 (the
// daemon is up and serving — just behind).
func TestHTTPDegradedModeBoundedStaleness(t *testing.T) {
	s := newTestServer(Config{MaxStale: 2})
	mux := s.Mux()
	s.Publish(testSnapshot(1))

	s.SetStaleness(2)
	if s.Degraded() {
		t.Fatal("Degraded at the bound, want degraded only beyond it")
	}
	rec := get(t, mux, "/v1/point?lat=12&lon=34&field=t_sfc", "")
	if rec.Code != 200 {
		t.Fatalf("point while fresh = %d", rec.Code)
	}
	if h := rec.Header().Get("X-Grist-Stale"); h != "" {
		t.Fatalf("X-Grist-Stale = %q within the bound, want unset", h)
	}

	s.SetStaleness(5)
	s.SetQuarantine([]int{3, 4})
	if !s.Degraded() {
		t.Fatal("not Degraded past the staleness bound")
	}
	rec = get(t, mux, "/v1/point?lat=12&lon=34&field=t_sfc", "")
	if rec.Code != 200 {
		t.Fatalf("degraded point = %d, want 200 (stale answers still serve)", rec.Code)
	}
	if h := rec.Header().Get("X-Grist-Stale"); h != "5" {
		t.Fatalf("X-Grist-Stale = %q, want \"5\"", h)
	}

	rec = get(t, mux, "/healthz", "")
	if rec.Code != 200 {
		t.Fatalf("degraded healthz = %d, want 200", rec.Code)
	}
	var hz struct {
		Status      string `json:"status"`
		StaleEpochs int    `json:"stale_epochs"`
		MaxStale    int    `json:"max_stale"`
		Quarantined []int  `json:"quarantined"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" || hz.StaleEpochs != 5 || hz.MaxStale != 2 {
		t.Fatalf("healthz = %+v, want degraded/5/2", hz)
	}
	if len(hz.Quarantined) != 2 || hz.Quarantined[0] != 3 || hz.Quarantined[1] != 4 {
		t.Fatalf("healthz quarantined = %v, want [3 4]", hz.Quarantined)
	}

	// Recovery clears the flag and the header.
	s.SetStaleness(0)
	s.SetQuarantine(nil)
	rec = get(t, mux, "/healthz", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || s.Degraded() {
		t.Fatalf("healthz after recovery = %+v (Degraded=%v), want ok", hz, s.Degraded())
	}
}

// Breaker-shed 503s travel over HTTP with Retry-After and the
// X-Grist-Reject: breaker tag so clients (and the load generator) can
// tell intentional degradation from an unexplained 5xx.
func TestHTTPBreakerShedCarriesRetryAfter(t *testing.T) {
	s := newTestServer(Config{BreakerThreshold: 1, BreakerCooldown: time.Minute})
	mux := s.Mux()
	s.Publish(malformedSnapshot(1))

	rec := get(t, mux, "/v1/point?lat=12&lon=34&field=t_sfc", "")
	if rec.Code != 503 {
		t.Fatalf("poisoned point = %d, want 503", rec.Code)
	}
	// The breaker is now open for that key: the next request is a shed
	// with full degradation headers.
	rec = get(t, mux, "/v1/point?lat=12&lon=34&field=t_sfc", "")
	if rec.Code != 503 {
		t.Fatalf("shed point = %d, want 503", rec.Code)
	}
	if rec.Header().Get("X-Grist-Reject") != "breaker" {
		t.Fatalf("X-Grist-Reject = %q, want breaker", rec.Header().Get("X-Grist-Reject"))
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed 503 missing Retry-After")
	}
	var e Error
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != 503 || e.Msg == "" {
		t.Fatalf("shed body = %+v, want a machine-readable 503", e)
	}
}
