package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// buildBreaker is a per-tile-key circuit breaker over tile builds: a
// key whose materialization keeps panicking or failing (a corrupt
// snapshot slipped past verification, a tiler bug on one tile) is shed
// with 503 + Retry-After for that key only — the rest of the plane
// keeps serving. After the cooldown one probe build is allowed
// through (half-open); success closes the breaker, another failure
// re-opens it for a full cooldown immediately.
type buildBreaker struct {
	threshold int           // consecutive failures to open
	cooldown  time.Duration // open duration before the probe

	mu      sync.Mutex
	entries map[TileKey]*breakerEntry

	trips atomic.Int64 // times any key transitioned to open
	shed  atomic.Int64 // requests rejected by an open breaker
}

type breakerEntry struct {
	fails     int
	openUntil time.Time
}

func newBuildBreaker(threshold int, cooldown time.Duration) *buildBreaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 500 * time.Millisecond
	}
	return &buildBreaker{threshold: threshold, cooldown: cooldown, entries: map[TileKey]*breakerEntry{}}
}

// allow reports whether a build of k may proceed; when the breaker is
// open it returns the remaining cooldown for the Retry-After header.
func (b *buildBreaker) allow(k TileKey) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[k]
	if e == nil || e.fails < b.threshold {
		return 0, true
	}
	if wait := time.Until(e.openUntil); wait > 0 {
		b.shed.Add(1)
		return wait, false
	}
	// Half-open: let this caller probe. Re-arm the window so a stampede
	// during the probe is still shed rather than piling onto a key that
	// keeps failing.
	e.openUntil = time.Now().Add(b.cooldown)
	return 0, true
}

// success closes the breaker for k.
func (b *buildBreaker) success(k TileKey) {
	b.mu.Lock()
	delete(b.entries, k)
	b.mu.Unlock()
}

// failure records a failed or panicked build of k, opening the breaker
// once the threshold is reached.
func (b *buildBreaker) failure(k TileKey) {
	b.mu.Lock()
	e := b.entries[k]
	if e == nil {
		e = &breakerEntry{}
		b.entries[k] = e
	}
	e.fails++
	if e.fails >= b.threshold {
		if e.fails == b.threshold {
			b.trips.Add(1)
		}
		e.openUntil = time.Now().Add(b.cooldown)
	}
	b.mu.Unlock()
}

// Stats returns cumulative trip and shed counts.
func (b *buildBreaker) Stats() (trips, shed int64) {
	return b.trips.Load(), b.shed.Load()
}
