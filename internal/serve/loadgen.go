package serve

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"
)

// LoadConfig drives the synthetic traffic generator: a replay of point
// (plus a sprinkle of region and time-range) queries with a zipf-like
// hotspot structure, spread over tenants, one of which is greedy
// enough to exhaust its quota.
type LoadConfig struct {
	Queries  int     // total queries to fire
	Workers  int     // concurrent clients (default 8)
	Tenants  int     // well-behaved tenants (default 4)
	Greedy   float64 // fraction of traffic from the "greedy" tenant (default 0.05)
	HotFrac  float64 // fraction of point queries aimed at hotspots (default 0.8)
	Hotspots int     // distinct hot locations (default 16)
	Region   float64 // fraction of region queries (default 0.01)
	Range    float64 // fraction of time-range queries (default 0.02)
	Seed     int64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Greedy == 0 {
		c.Greedy = 0.05
	}
	if c.HotFrac == 0 {
		c.HotFrac = 0.8
	}
	if c.Hotspots <= 0 {
		c.Hotspots = 16
	}
	if c.Region == 0 {
		c.Region = 0.01
	}
	if c.Range == 0 {
		c.Range = 0.02
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LoadReport summarizes one replay: status breakdown, exact latency
// percentiles (overall and cache-hit-only), and the engine's cache and
// coalescing counters.
type LoadReport struct {
	Queries     int64   `json:"queries"`
	DurationSec float64 `json:"duration_sec"`
	QPS         float64 `json:"qps"`

	OK         int64 `json:"ok_2xx"`
	Client4xx  int64 `json:"client_4xx"`
	Quota429   int64 `json:"quota_429"`
	Busy429    int64 `json:"busy_429"`
	Breaker503 int64 `json:"breaker_503"`
	Server5xx  int64 `json:"server_5xx"`

	P50Sec  float64 `json:"latency_p50_s"`
	P99Sec  float64 `json:"latency_p99_s"`
	MeanSec float64 `json:"latency_mean_s"`

	HitP50Sec float64 `json:"cached_latency_p50_s"`
	HitP99Sec float64 `json:"cached_latency_p99_s"`

	HitRate       float64 `json:"cache_hit_rate"`
	CoalesceRatio float64 `json:"coalesce_ratio"`
	TileBuilds    int64   `json:"tile_builds"`
}

// Rows renders the report as aligned summary lines.
func (r LoadReport) Rows() []string {
	return []string{
		fmt.Sprintf("queries=%d in %.2fs -> %.0f qps", r.Queries, r.DurationSec, r.QPS),
		fmt.Sprintf("status: 2xx=%d 4xx=%d quota429=%d busy429=%d breaker503=%d 5xx=%d",
			r.OK, r.Client4xx, r.Quota429, r.Busy429, r.Breaker503, r.Server5xx),
		fmt.Sprintf("latency: p50=%.3fms p99=%.3fms mean=%.3fms (cached p50=%.3fms p99=%.3fms)",
			r.P50Sec*1e3, r.P99Sec*1e3, r.MeanSec*1e3, r.HitP50Sec*1e3, r.HitP99Sec*1e3),
		fmt.Sprintf("tiles: hit rate=%.1f%%  coalesce ratio=%.2f  builds=%d",
			r.HitRate*100, r.CoalesceRatio, r.TileBuilds),
	}
}

// doer fires one prepared query and reports (HTTP status, X-Grist-Cache).
type doer func(path, tenant string) (int, string)

// genQuery renders one query path from the workload mix.
func genQuery(rng *rand.Rand, cfg LoadConfig, hotLat, hotLon []float64, epochs []int) string {
	epochArg := ""
	if len(epochs) > 0 && rng.Float64() < 0.3 {
		epochArg = fmt.Sprintf("&epoch=%d", epochs[rng.Intn(len(epochs))])
	}
	field := FieldNames[rng.Intn(NumFields)]
	r := rng.Float64()
	switch {
	case r < cfg.Region:
		lat := rng.Float64()*120 - 60
		lon := rng.Float64()*300 - 150
		return fmt.Sprintf("/v1/region?min_lat=%.2f&max_lat=%.2f&min_lon=%.2f&max_lon=%.2f&field=%s&limit=256%s",
			lat, lat+10, lon, lon+10, field, epochArg)
	case r < cfg.Region+cfg.Range:
		i := rng.Intn(len(hotLat))
		return fmt.Sprintf("/v1/range?lat=%.4f&lon=%.4f&field=%s", hotLat[i], hotLon[i], field)
	default:
		var lat, lon float64
		if rng.Float64() < cfg.HotFrac {
			i := rng.Intn(len(hotLat))
			lat, lon = hotLat[i]+rng.Float64()*0.2, hotLon[i]+rng.Float64()*0.2
		} else {
			lat, lon = rng.Float64()*170-85, rng.Float64()*358-179
		}
		return fmt.Sprintf("/v1/point?lat=%.4f&lon=%.4f&field=%s%s", lat, lon, field, epochArg)
	}
}

// runLoad is the shared replay core: cfg.Queries calls through do,
// split over cfg.Workers goroutines, with exact latency accounting.
// eng may be nil (remote target) — cache counters then stay zero.
func runLoad(cfg LoadConfig, epochs []int, eng *Engine, do func(worker int) doer) LoadReport {
	cfg = cfg.withDefaults()
	hotLat := make([]float64, cfg.Hotspots)
	hotLon := make([]float64, cfg.Hotspots)
	hrng := rand.New(rand.NewSource(cfg.Seed))
	for i := range hotLat {
		hotLat[i] = hrng.Float64()*140 - 70
		hotLon[i] = hrng.Float64()*358 - 179
	}

	var statsBefore EngineStats
	if eng != nil {
		statsBefore = eng.Stats()
	}

	type workerOut struct {
		lats, hitLats                                      []float64
		ok, c4, quota429, busy429, breaker503, s5xx, fired int64
	}
	outs := make([]workerOut, cfg.Workers)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		n := cfg.Queries / cfg.Workers
		if w < cfg.Queries%cfg.Workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			fire := do(w)
			out := &outs[w]
			out.lats = make([]float64, 0, n)
			for i := 0; i < n; i++ {
				path := genQuery(rng, cfg, hotLat, hotLon, epochs)
				tenant := fmt.Sprintf("tenant-%d", rng.Intn(cfg.Tenants))
				if rng.Float64() < cfg.Greedy {
					tenant = "greedy"
				}
				q0 := time.Now()
				status, cache := fire(path, tenant)
				dt := time.Since(q0).Seconds()
				out.fired++
				switch {
				case status >= 200 && status < 300:
					out.ok++
					out.lats = append(out.lats, dt)
					if cache == CacheHit {
						out.hitLats = append(out.hitLats, dt)
					}
				case status == 429:
					// quota vs queue: the server tags the reason.
					if cache == "quota" {
						out.quota429++
					} else {
						out.busy429++
					}
				case status >= 400 && status < 500:
					out.c4++
				case status == 503 && cache == "breaker":
					// Breaker-keyed shedding is intentional degradation,
					// not an unexplained 5xx.
					out.breaker503++
				default:
					out.s5xx++
				}
			}
		}(w, n)
	}
	wg.Wait()
	dur := time.Since(t0).Seconds()

	rep := LoadReport{DurationSec: dur}
	var lats, hitLats []float64
	for i := range outs {
		o := &outs[i]
		rep.Queries += o.fired
		rep.OK += o.ok
		rep.Client4xx += o.c4
		rep.Quota429 += o.quota429
		rep.Busy429 += o.busy429
		rep.Breaker503 += o.breaker503
		rep.Server5xx += o.s5xx
		lats = append(lats, o.lats...)
		hitLats = append(hitLats, o.hitLats...)
	}
	if dur > 0 {
		rep.QPS = float64(rep.Queries) / dur
	}
	rep.P50Sec, rep.P99Sec, rep.MeanSec = latencySummary(lats)
	rep.HitP50Sec, rep.HitP99Sec, _ = latencySummary(hitLats)
	if eng != nil {
		after := eng.Stats()
		window := EngineStats{
			Hits:      after.Hits - statsBefore.Hits,
			Misses:    after.Misses - statsBefore.Misses,
			Builds:    after.Builds - statsBefore.Builds,
			Coalesced: after.Coalesced - statsBefore.Coalesced,
		}
		rep.HitRate = window.HitRate()
		rep.CoalesceRatio = window.CoalesceRatio()
		rep.TileBuilds = window.Builds
	}
	return rep
}

// latencySummary sorts and summarizes a latency sample.
func latencySummary(lats []float64) (p50, p99, mean float64) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(lats)
	var sum float64
	for _, v := range lats {
		sum += v
	}
	pick := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	return pick(0.5), pick(0.99), sum / float64(len(lats))
}

// nullRecorder is a reusable allocation-light http.ResponseWriter for
// the in-process replay: it keeps status and headers, discards bodies.
type nullRecorder struct {
	hdr    http.Header
	status int
}

func (r *nullRecorder) Header() http.Header { return r.hdr }

func (r *nullRecorder) Write(b []byte) (int, error) { return len(b), nil }

func (r *nullRecorder) WriteHeader(c int) { r.status = c }

func (r *nullRecorder) reset() {
	r.status = 200
	clear(r.hdr)
}

// RunLoadInProcess replays the workload directly against a handler —
// no sockets, so millions of queries complete in seconds while still
// exercising the full admission/quota/cache pipeline.
func RunLoadInProcess(h http.Handler, eng *Engine, cfg LoadConfig) LoadReport {
	epochs := eng.Store().Epochs()
	return runLoad(cfg, epochs, eng, func(worker int) doer {
		rec := &nullRecorder{hdr: http.Header{}}
		req := &http.Request{Method: "GET", URL: &url.URL{}, Header: http.Header{}}
		return func(path, tenant string) (int, string) {
			u, err := url.Parse(path)
			if err != nil {
				return 400, ""
			}
			*req.URL = *u
			req.Header.Set("X-Grist-Tenant", tenant)
			rec.reset()
			h.ServeHTTP(rec, req)
			return rec.status, rejectOrCache(rec.hdr)
		}
	})
}

// RunLoadHTTP replays the workload over real HTTP against baseURL.
// eng may be nil when the server runs in another process.
func RunLoadHTTP(baseURL string, eng *Engine, epochs []int, cfg LoadConfig) LoadReport {
	if eng != nil && epochs == nil {
		epochs = eng.Store().Epochs()
	}
	return runLoad(cfg, epochs, eng, func(worker int) doer {
		client := &http.Client{Timeout: 30 * time.Second}
		return func(path, tenant string) (int, string) {
			req, err := http.NewRequest("GET", baseURL+path, nil)
			if err != nil {
				return 400, ""
			}
			req.Header.Set("X-Grist-Tenant", tenant)
			resp, err := client.Do(req)
			if err != nil {
				return 599, "" // transport failure counts as a 5xx
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return resp.StatusCode, rejectOrCache(resp.Header)
		}
	})
}

// rejectOrCache extracts the response's cache status, or the reject
// reason on 429s (both travel in headers so the replay never has to
// parse bodies).
func rejectOrCache(h http.Header) string {
	if r := h.Get("X-Grist-Reject"); r != "" {
		return r
	}
	return h.Get("X-Grist-Cache")
}
