package serve

import (
	"sync"
	"testing"

	"gristgo/internal/detrand"
)

// raceSnapshot is a cheap snapshot for store-contention tests — no
// physics, just a distinctive value per epoch so readers can verify
// they never observe a half-published snapshot.
func raceSnapshot(epoch int) *Snapshot {
	s := &Snapshot{Epoch: epoch, Step: epoch}
	for f := 0; f < NumFields; f++ {
		s.data[f] = make([]float64, 4)
		for i := range s.data[f] {
			s.data[f][i] = float64(epoch)
		}
	}
	return s
}

// One publisher racing many Latest/At/Epochs readers while retention
// evicts continuously. Run under -race this is the satellite's main
// assertion; the invariant checks make it a functional test too.
func TestSnapshotStoreConcurrentPublishAndRead(t *testing.T) {
	const (
		retain  = 4
		nepochs = 200
		readers = 8
	)
	st := NewSnapshotStore(retain)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := detrand.Step(uint64(r) ^ 0x72616365)
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch h = detrand.Step(h); h % 3 {
				case 0:
					if s := st.Latest(); s != nil {
						// A published snapshot is complete: every cell
						// carries the epoch's value.
						if got := s.Value(0, 0); got != float64(s.Epoch) {
							t.Errorf("Latest epoch %d carries value %v", s.Epoch, got)
							return
						}
					}
				case 1:
					epochs := st.Epochs()
					for i := 1; i < len(epochs); i++ {
						if epochs[i] <= epochs[i-1] {
							t.Errorf("Epochs not strictly ascending: %v", epochs)
							return
						}
					}
					if len(epochs) > retain {
						t.Errorf("Epochs %v exceeds retention %d", epochs, retain)
						return
					}
				case 2:
					epochs := st.Epochs()
					if len(epochs) == 0 {
						continue
					}
					e := epochs[int(detrand.Step(h)%uint64(len(epochs)))]
					if s, ok := st.At(e); ok && s.Epoch != e {
						t.Errorf("At(%d) returned epoch %d", e, s.Epoch)
						return
					}
					// !ok is fine: evicted between Epochs() and At().
				}
			}
		}(r)
	}

	for e := 0; e < nepochs; e++ {
		st.Publish(raceSnapshot(e))
	}
	close(stop)
	wg.Wait()

	epochs := st.Epochs()
	if len(epochs) != retain {
		t.Fatalf("retained %v, want %d epochs", epochs, retain)
	}
	if epochs[len(epochs)-1] != nepochs-1 {
		t.Fatalf("newest retained epoch = %d, want %d", epochs[len(epochs)-1], nepochs-1)
	}
	if st.Latest().Epoch != nepochs-1 {
		t.Fatalf("Latest = %d, want %d", st.Latest().Epoch, nepochs-1)
	}
}

// Property test: under any deterministic interleaving of publishes
// (including out-of-order and duplicate epochs), Epochs() is strictly
// ascending, bounded by the retention window, and At() agrees with it.
func TestSnapshotStoreRetentionProperties(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		retain := 1 + int(detrand.Step(seed)%6)
		st := NewSnapshotStore(retain)
		h := detrand.Step(seed ^ 0x70726f70)
		published := map[int]bool{}
		for i := 0; i < 100; i++ {
			h = detrand.Step(h)
			e := int(h % 40)
			st.Publish(raceSnapshot(e))
			published[e] = true

			epochs := st.Epochs()
			if len(epochs) == 0 || len(epochs) > retain {
				t.Fatalf("seed %d: %d epochs retained, want 1..%d", seed, len(epochs), retain)
			}
			for j := 1; j < len(epochs); j++ {
				if epochs[j] <= epochs[j-1] {
					t.Fatalf("seed %d: Epochs not strictly ascending: %v", seed, epochs)
				}
			}
			for _, ep := range epochs {
				if !published[ep] {
					t.Fatalf("seed %d: retained epoch %d was never published", seed, ep)
				}
				s, ok := st.At(ep)
				if !ok || s.Epoch != ep {
					t.Fatalf("seed %d: At(%d) = (%v, %v)", seed, ep, s, ok)
				}
			}
			if st.Latest().Epoch != epochs[len(epochs)-1] {
				t.Fatalf("seed %d: Latest %d != newest retained %d",
					seed, st.Latest().Epoch, epochs[len(epochs)-1])
			}
		}
	}
}
