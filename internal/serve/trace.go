package serve

// Request-scoped query tracing: every admitted query gets a trace ID
// (client-provided X-Grist-Trace or server-generated), a phase timeline
// through the admission pipeline (quota -> queue -> handler) and the
// engine's tile path (hit / coalesced / build counts, build time), and
// a slot in a fixed ring of recent traces served at /debug/query.
// The latency histograms record the trace ID as an exemplar, so a p99
// outlier on the dashboard resolves to a concrete inspectable query.

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gristgo/internal/detrand"
)

// TracePhase is one timed segment of a query's lifecycle.
type TracePhase struct {
	Name  string `json:"name"`
	DurNS int64  `json:"dur_ns"`
}

// QueryTrace is the record of one query through the serve plane. It is
// written by the handling goroutine only; the debug endpoints read the
// copies stored in the trace ring at completion.
type QueryTrace struct {
	ID     string       `json:"id"`
	Kind   string       `json:"kind"`
	Tenant string       `json:"tenant"`
	Start  time.Time    `json:"start"`
	DurNS  int64        `json:"dur_ns"`
	Status int          `json:"status"`
	Cache  string       `json:"cache,omitempty"`
	Phases []TracePhase `json:"phases,omitempty"`

	// Tile-path outcome counts for the query, split by how each touched
	// tile was obtained.
	TileHits      int `json:"tile_hits"`
	TileBuilds    int `json:"tile_builds"`
	TileCoalesced int `json:"tile_coalesced"`

	Err string `json:"error,omitempty"`
}

// phase appends a named duration. Nil-safe so untraced engine calls
// (Engine.Point and friends without a T) cost one predictable check.
func (qt *QueryTrace) phase(name string, dur time.Duration) {
	if qt == nil {
		return
	}
	qt.Phases = append(qt.Phases, TracePhase{Name: name, DurNS: int64(dur)})
}

// countTile records one tile acquisition by cache status.
func (qt *QueryTrace) countTile(status string) {
	if qt == nil {
		return
	}
	switch status {
	case CacheHit:
		qt.TileHits++
	case CacheCoalesced:
		qt.TileCoalesced++
	case CacheBuild:
		qt.TileBuilds++
	}
}

// traceRing retains the last N completed query traces for /debug/query.
type traceRing struct {
	mu   sync.Mutex
	buf  []QueryTrace
	next uint64
	seq  atomic.Uint64
	seed uint64
}

// traceRingSize bounds the retained traces; old entries are overwritten.
const traceRingSize = 256

func newTraceRing(seed int64) *traceRing {
	return &traceRing{buf: make([]QueryTrace, traceRingSize), seed: uint64(seed)}
}

// newID mints a server-generated trace ID: a monotone sequence number
// mixed through the sanctioned splitmix64 stream, rendered as 16 hex
// digits. Unique per server instance; no wall clock involved.
func (tr *traceRing) newID() string {
	n := tr.seq.Add(1)
	return strconv.FormatUint(detrand.Fold(detrand.Step(tr.seed^0x747263), n), 16)
}

// add stores a completed trace (by value: the ring owns its copy).
func (tr *traceRing) add(qt QueryTrace) {
	tr.mu.Lock()
	tr.buf[int(tr.next%uint64(len(tr.buf)))] = qt
	tr.next++
	tr.mu.Unlock()
}

// byID returns the retained trace with the given ID.
func (tr *traceRing) byID(id string) (QueryTrace, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := tr.next
	if n > uint64(len(tr.buf)) {
		n = uint64(len(tr.buf))
	}
	for i := 0; i < int(n); i++ {
		if tr.buf[i].ID == id {
			return tr.buf[i], true
		}
	}
	return QueryTrace{}, false
}

// recent returns up to limit most-recent traces, newest first.
func (tr *traceRing) recent(limit int) []QueryTrace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if limit <= 0 || limit > len(tr.buf) {
		limit = len(tr.buf)
	}
	var out []QueryTrace
	for i := int64(tr.next) - 1; i >= 0 && i >= int64(tr.next)-int64(len(tr.buf)) && len(out) < limit; i-- {
		out = append(out, tr.buf[int(uint64(i)%uint64(len(tr.buf)))])
	}
	return out
}

// traceSummary is the list form served by /debug/query: enough to spot
// the outlier, follow the ID for the full phase timeline.
type traceSummary struct {
	ID     string  `json:"id"`
	Kind   string  `json:"kind"`
	Status int     `json:"status"`
	Cache  string  `json:"cache,omitempty"`
	DurMS  float64 `json:"dur_ms"`
}

// RegisterDebug installs the query-trace debug endpoints onto mux:
//
//	GET /debug/query          recent traces, newest first (?limit=N)
//	GET /debug/query/{id}     one full trace by X-Grist-Trace ID
func (s *Server) RegisterDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/query", func(w http.ResponseWriter, r *http.Request) {
		limit, _ := intArg(r, "limit", 32)
		traces := s.traces.recent(limit)
		out := make([]traceSummary, 0, len(traces))
		for _, qt := range traces {
			out = append(out, traceSummary{
				ID: qt.ID, Kind: qt.Kind, Status: qt.Status, Cache: qt.Cache,
				DurMS: float64(qt.DurNS) / 1e6,
			})
		}
		writeJSON(w, 200, out)
	})
	mux.HandleFunc("/debug/query/{id}", func(w http.ResponseWriter, r *http.Request) {
		qt, ok := s.traces.byID(r.PathValue("id"))
		if !ok {
			writeJSON(w, 404, &Error{Code: 404, Msg: "trace not retained (ring keeps the last " +
				strconv.Itoa(traceRingSize) + " queries)"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(qt)
	})
}
