package serve

import (
	"math"

	"gristgo/internal/mesh"
	"gristgo/internal/partition"
)

// Tiler cuts the icosahedral mesh into a fixed set of spatial tiles —
// the cache granule of the serving plane. Tiles are the cell-ownership
// sets of a k-way graph decomposition (reusing internal/partition), so
// they are contiguous, balanced, and identical across processes for
// the same (mesh, ntiles, seed). The tiler also owns point lookup: a
// coarse lat/lon seed grid plus a greedy descent over the cell
// adjacency (the Delaunay walk on cell centers), which terminates at
// the nearest cell.
type Tiler struct {
	m      *mesh.Mesh
	NTiles int

	tileOf []int32   // cell -> tile
	cells  [][]int32 // tile -> owned cells, ascending
	local  []int32   // cell -> index within its tile's cell list

	// Per-tile lat/lon bounds for region pruning. A tile whose cells
	// straddle the dateline gets seam=true and matches every lon range.
	minLat, maxLat []float64
	minLon, maxLon []float64
	seam           []bool

	// Point-lookup seed grid: binOf(lat,lon) -> a cell near that bin,
	// the starting point of the greedy walk.
	nLat, nLon int
	seeds      []int32
}

// NewTiler partitions the mesh into ntiles tiles (clamped to NCells).
func NewTiler(m *mesh.Mesh, ntiles int, seed int64) *Tiler {
	if ntiles < 1 {
		ntiles = 1
	}
	if ntiles > m.NCells {
		ntiles = m.NCells
	}
	// Collapse to fewer tiles when the partitioner cannot fill the
	// requested count on a tiny mesh (Decompose rejects empty parts).
	d, err := partition.Decompose(m, ntiles, seed)
	for err != nil && ntiles > 1 {
		ntiles--
		d, err = partition.Decompose(m, ntiles, seed)
	}
	if err != nil {
		panic(err) // ntiles == 1 cannot fail on a non-empty mesh
	}
	t := &Tiler{
		m:      m,
		NTiles: ntiles,
		tileOf: d.Part,
		cells:  make([][]int32, ntiles),
		local:  make([]int32, m.NCells),
		minLat: make([]float64, ntiles),
		maxLat: make([]float64, ntiles),
		minLon: make([]float64, ntiles),
		maxLon: make([]float64, ntiles),
		seam:   make([]bool, ntiles),
	}
	for p := 0; p < ntiles; p++ {
		// Decompose emits owned cells in ascending order (cells are
		// scanned in id order), which is the stable tile layout.
		t.cells[p] = d.Owned[p]
		t.minLat[p], t.minLon[p] = math.Inf(1), math.Inf(1)
		t.maxLat[p], t.maxLon[p] = math.Inf(-1), math.Inf(-1)
		for i, c := range t.cells[p] {
			t.local[c] = int32(i)
			lat, lon := m.CellLat[c], m.CellLon[c]
			t.minLat[p] = math.Min(t.minLat[p], lat)
			t.maxLat[p] = math.Max(t.maxLat[p], lat)
			t.minLon[p] = math.Min(t.minLon[p], lon)
			t.maxLon[p] = math.Max(t.maxLon[p], lon)
		}
		// A lon span over pi radians means the tile wraps the +-pi seam
		// (tiles are compact, so a genuine span that wide only happens
		// at the poles, where all longitudes are close anyway).
		if t.maxLon[p]-t.minLon[p] > math.Pi {
			t.seam[p] = true
		}
	}
	t.buildSeedGrid()
	return t
}

// buildSeedGrid assigns one representative cell to each lat/lon bin,
// then floods the assignment into empty bins.
func (t *Tiler) buildSeedGrid() {
	m := t.m
	t.nLat = int(math.Sqrt(float64(m.NCells) / 8))
	if t.nLat < 4 {
		t.nLat = 4
	}
	t.nLon = 2 * t.nLat
	t.seeds = make([]int32, t.nLat*t.nLon)
	for i := range t.seeds {
		t.seeds[i] = -1
	}
	for c := int32(0); c < int32(m.NCells); c++ {
		t.seeds[t.binOf(m.CellLat[c], m.CellLon[c])] = c
	}
	// Flood-fill: copy from any filled neighbor until no bin is empty.
	for {
		progress, empty := false, false
		for i := 0; i < t.nLat; i++ {
			for j := 0; j < t.nLon; j++ {
				b := i*t.nLon + j
				if t.seeds[b] >= 0 {
					continue
				}
				for _, nb := range [4]int{
					i*t.nLon + (j+1)%t.nLon,
					i*t.nLon + (j+t.nLon-1)%t.nLon,
					max(i-1, 0)*t.nLon + j,
					min(i+1, t.nLat-1)*t.nLon + j,
				} {
					if t.seeds[nb] >= 0 {
						t.seeds[b] = t.seeds[nb]
						progress = true
						break
					}
				}
				if t.seeds[b] < 0 {
					empty = true
				}
			}
		}
		if !empty || !progress {
			return
		}
	}
}

// binOf maps a lat/lon to its seed-grid bin.
//
//grist:hotpath
func (t *Tiler) binOf(lat, lon float64) int {
	i := int((lat + math.Pi/2) / math.Pi * float64(t.nLat))
	if i < 0 {
		i = 0
	}
	if i >= t.nLat {
		i = t.nLat - 1
	}
	j := int((lon + math.Pi) / (2 * math.Pi) * float64(t.nLon))
	if j < 0 {
		j = 0
	}
	if j >= t.nLon {
		j = t.nLon - 1
	}
	return i*t.nLon + j
}

// Locate returns the mesh cell nearest to (lat, lon), in radians: a
// greedy walk over the cell adjacency from the seed-grid start, moving
// to whichever neighbor is closer to the query until no neighbor
// improves. Cell centers with their adjacency form the Delaunay dual
// of the Voronoi-like mesh, so the walk terminates at the global
// nearest cell, in O(1) hops from a seed.
//
//grist:hotpath
func (t *Tiler) Locate(lat, lon float64) int32 {
	q := mesh.FromLatLon(lat, lon)
	c := t.seeds[t.binOf(lat, lon)]
	best := t.m.CellPos[c].Dot(q)
	for {
		improved := false
		for _, nb := range t.m.CellCells(c) {
			if d := t.m.CellPos[nb].Dot(q); d > best {
				best, c = d, nb
				improved = true
			}
		}
		if !improved {
			return c
		}
	}
}

// TileOfCell returns the tile owning cell c.
//
//grist:hotpath
func (t *Tiler) TileOfCell(c int32) int32 { return t.tileOf[c] }

// LocalIndex returns c's position within its tile's cell list.
//
//grist:hotpath
func (t *Tiler) LocalIndex(c int32) int32 { return t.local[c] }

// TileCells returns the cells of one tile, ascending. The slice is the
// tiler's own — callers must treat it as read-only.
func (t *Tiler) TileCells(tile int32) []int32 { return t.cells[tile] }

// Overlaps reports whether tile's bounding box intersects the query
// box [minLat,maxLat]x[minLon,maxLon] (radians, minLon <= maxLon;
// dateline-crossing queries are split by the caller).
func (t *Tiler) Overlaps(tile int32, minLat, maxLat, minLon, maxLon float64) bool {
	if t.maxLat[tile] < minLat || t.minLat[tile] > maxLat {
		return false
	}
	if t.seam[tile] {
		return true
	}
	return t.maxLon[tile] >= minLon && t.minLon[tile] <= maxLon
}
