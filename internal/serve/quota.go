package serve

import (
	"sync"
	"time"
)

// Quotas is a per-tenant token-bucket rate limiter: each tenant holds
// up to Burst tokens, refilled at Rate tokens per second; a request
// spends one. A tenant out of tokens is rejected (the transport turns
// that into 429, never an error). Rate <= 0 disables limiting.
type Quotas struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewQuotas returns a limiter granting rate tokens/second with the
// given burst capacity per tenant.
func NewQuotas(rate, burst float64) *Quotas {
	if burst < 1 {
		burst = 1
	}
	return &Quotas{rate: rate, burst: burst, buckets: map[string]*bucket{}, now: time.Now}
}

// Allow spends one token of tenant's bucket, reporting whether the
// request may proceed.
func (q *Quotas) Allow(tenant string) bool {
	if q.rate <= 0 {
		return true
	}
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tenants returns how many distinct tenants have been seen.
func (q *Quotas) Tenants() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}
