package serve

import (
	"os"
	"path/filepath"
	"testing"

	"gristgo/internal/core"
	"gristgo/internal/telemetry"
)

// corruptShard flips one payload byte of an epoch's rank-0 shard file.
func corruptShard(t *testing.T, dir string, epoch int) {
	t.Helper()
	path := filepath.Join(dir, shardName(epoch))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func shardName(epoch int) string {
	return filepath.Join("", "shard-e"+pad6(epoch)+"-r0000.grist")
}

func pad6(n int) string {
	s := "000000"
	d := []byte(s)
	for i := 5; i >= 0 && n > 0; i-- {
		d[i] = byte('0' + n%10)
		n /= 10
	}
	return string(d)
}

// pollUntil drives p until cond holds or maxPolls is exhausted,
// returning how many polls it took.
func pollUntil(t *testing.T, p *ShardPoller, maxPolls int, cond func() bool) int {
	t.Helper()
	for i := 1; i <= maxPolls; i++ {
		p.Poll()
		if cond() {
			return i
		}
	}
	t.Fatalf("condition not reached within %d polls", maxPolls)
	return 0
}

// A corrupt epoch is quarantined (counted, skipped), newer epochs keep
// publishing past it, and when the corruption is repaired a backoff
// retry verifies and un-quarantines it.
func TestShardPollerQuarantineLifecycle(t *testing.T) {
	pl := core.NewDistPlan(testMesh, 3, 1, 12345)
	dir := t.TempDir()
	st, err := core.NewShardStore(dir, pl)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewSnapshotStore(8)
	p := NewShardPoller(st, dst)
	p.SetSeed(99)
	reg := telemetry.NewRegistry()
	p.SetMetrics(reg)

	writeEpoch(t, st, 0, 0)
	writeEpoch(t, st, 1, 10)
	corruptShard(t, dir, 1)

	// First poll: epoch 0 publishes, epoch 1 quarantines, and because 1
	// is the head the poll reports the failure (once).
	n, perr := p.Poll()
	if n != 1 || perr == nil {
		t.Fatalf("first poll = (%d, %v), want (1, head error)", n, perr)
	}
	if q := p.Quarantined(); len(q) != 1 || q[0] != 1 {
		t.Fatalf("Quarantined = %v, want [1]", q)
	}
	if got := reg.Counter("grist_serve_quarantined_total", "reason", FailCorrupt).Value(); got != 1 {
		t.Fatalf("quarantined_total{corrupt} = %d, want 1", got)
	}
	if p.Staleness() != 1 {
		t.Fatalf("Staleness = %d, want 1 (epoch 1 committed but unpublished)", p.Staleness())
	}

	// While quarantined and awaiting retry: no error spam, no republish.
	if n, perr := p.Poll(); n != 0 || perr != nil {
		t.Fatalf("quiet poll = (%d, %v), want (0, nil)", n, perr)
	}

	// Production continues past the corrupt epoch.
	writeEpoch(t, st, 2, 20)
	if n, _ := p.Poll(); n != 1 {
		t.Fatal("epoch 2 not published past the quarantined epoch 1")
	}
	if dst.Latest().Epoch != 2 {
		t.Fatalf("Latest = %d, want 2", dst.Latest().Epoch)
	}

	// Repair epoch 1 (rewrite shard + manifest); a due retry verifies it.
	writeEpoch(t, st, 1, 10)
	polls := pollUntil(t, p, 40, func() bool { return len(p.Quarantined()) == 0 })
	t.Logf("un-quarantined after %d polls", polls)
	if _, ok := dst.At(1); !ok {
		t.Fatal("repaired epoch 1 was never published")
	}
	if got := reg.Counter("grist_serve_unquarantined_total").Value(); got != 1 {
		t.Fatalf("unquarantined_total = %d, want 1", got)
	}
	if p.Staleness() != 0 {
		t.Fatalf("Staleness = %d, want 0 after full recovery", p.Staleness())
	}
}

// Regression for the re-derivation bug: when loading the head epoch
// fails, the epochs that WERE published must not be rebuilt on every
// subsequent poll.
func TestShardPollerDoesNotRederivePublishedEpochs(t *testing.T) {
	pl := core.NewDistPlan(testMesh, 3, 1, 12345)
	dir := t.TempDir()
	st, err := core.NewShardStore(dir, pl)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewSnapshotStore(8)
	p := NewShardPoller(st, dst)

	writeEpoch(t, st, 0, 0)
	writeEpoch(t, st, 1, 10)
	writeEpoch(t, st, 2, 20)
	corruptShard(t, dir, 2)

	n, perr := p.Poll()
	if n != 2 || perr == nil {
		t.Fatalf("first poll = (%d, %v), want (2 published, head error)", n, perr)
	}
	// The buggy poller left `last` behind and re-derived epochs 0 and 1
	// here, every poll, forever.
	for i := 0; i < 5; i++ {
		if n, _ := p.Poll(); n != 0 {
			t.Fatalf("poll %d republished %d already-published epochs", i+2, n)
		}
	}
}

// A quarantined epoch that falls below the retention window is evicted
// from the quarantine set (it can never be served again), so permanent
// corruption converges to an empty quarantine instead of retrying
// forever.
func TestShardPollerQuarantineAgesOut(t *testing.T) {
	pl := core.NewDistPlan(testMesh, 3, 1, 12345)
	dir := t.TempDir()
	st, err := core.NewShardStore(dir, pl)
	if err != nil {
		t.Fatal(err)
	}
	retain := 3
	dst := NewSnapshotStore(retain)
	p := NewShardPoller(st, dst)

	writeEpoch(t, st, 0, 0)
	writeEpoch(t, st, 1, 10)
	corruptShard(t, dir, 1)
	p.Poll()
	if len(p.Quarantined()) != 1 {
		t.Fatal("epoch 1 not quarantined")
	}

	// Produce until epoch 1 drops below head-retain (head 4: 4-3 >= 1).
	for e := 2; e <= 4; e++ {
		writeEpoch(t, st, e, e*10)
		p.Poll()
	}
	if q := p.Quarantined(); len(q) != 0 {
		t.Fatalf("Quarantined = %v, want empty after aging out", q)
	}
	if p.Staleness() != 0 {
		t.Fatalf("Staleness = %d, want 0 (everything in-window is published)", p.Staleness())
	}
}

// Crash-restart: a brand-new poller + store + snapshot store over the
// same directory (fresh process state) must reconstruct the snapshot
// window, quarantine set and staleness purely from disk.
func TestShardPollerCrashRestartReconstructs(t *testing.T) {
	pl := core.NewDistPlan(testMesh, 3, 1, 12345)
	dir := t.TempDir()
	st, err := core.NewShardStore(dir, pl)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewSnapshotStore(8)
	p := NewShardPoller(st, dst)
	for e := 0; e <= 3; e++ {
		writeEpoch(t, st, e, e*10)
	}
	corruptShard(t, dir, 2)
	p.Poll()
	beforeEpochs := dst.Epochs()
	beforeQuar := p.Quarantined()
	beforeStale := p.Staleness()
	if len(beforeQuar) != 1 || beforeQuar[0] != 2 {
		t.Fatalf("pre-crash Quarantined = %v, want [2]", beforeQuar)
	}

	// "kill -9": drop every in-memory structure, rebuild from the plan
	// and the directory alone.
	st2, err := core.NewShardStore(dir, core.NewDistPlan(testMesh, 3, 1, 12345))
	if err != nil {
		t.Fatal(err)
	}
	dst2 := NewSnapshotStore(8)
	p2 := NewShardPoller(st2, dst2)
	p2.Poll()

	afterEpochs := dst2.Epochs()
	if len(afterEpochs) != len(beforeEpochs) {
		t.Fatalf("restart epochs = %v, want %v", afterEpochs, beforeEpochs)
	}
	for i := range beforeEpochs {
		if afterEpochs[i] != beforeEpochs[i] {
			t.Fatalf("restart epochs = %v, want %v", afterEpochs, beforeEpochs)
		}
	}
	if q := p2.Quarantined(); len(q) != 1 || q[0] != 2 {
		t.Fatalf("restart Quarantined = %v, want [2]", q)
	}
	if p2.Staleness() != beforeStale {
		t.Fatalf("restart Staleness = %d, want %d", p2.Staleness(), beforeStale)
	}
	// The reconstructed snapshots are bitwise the same.
	for _, e := range beforeEpochs {
		a, _ := dst.At(e)
		b, _ := dst2.At(e)
		if a.Checksum() != b.Checksum() {
			t.Fatalf("epoch %d snapshot differs across restart", e)
		}
	}
}
