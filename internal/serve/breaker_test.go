package serve

import (
	"testing"
	"time"
)

// malformedSnapshot builds a snapshot whose data arrays are shorter
// than the mesh — any tile build over it indexes out of range and
// panics, which is exactly the poison the breaker exists to contain.
func malformedSnapshot(epoch int) *Snapshot {
	s := &Snapshot{Epoch: epoch, Step: epoch * 10}
	for f := 0; f < NumFields; f++ {
		s.data[f] = make([]float64, 1)
	}
	return s
}

// A poisoned tile key trips its breaker after `threshold` failed
// builds, sheds with 503 + Retry-After while open, leaves every other
// key serving, and recovers once a healthy snapshot replaces the bad
// epoch and the cooldown elapses.
func TestBuildBreakerTripsShedsAndRecovers(t *testing.T) {
	store := NewSnapshotStore(4)
	eng := NewEngine(testMesh, store, 8, 64, 1)
	eng.SetBreaker(3, 50*time.Millisecond)

	store.Publish(malformedSnapshot(0))

	// Three build attempts, each a recovered panic surfaced as 503.
	for i := 0; i < 3; i++ {
		_, status, terr := eng.Point(0, "ps", 40.7, -74.0)
		if terr == nil || terr.Code != 503 {
			t.Fatalf("attempt %d: err = %v, want 503", i+1, terr)
		}
		if status != CacheBreaker {
			t.Fatalf("attempt %d: status = %q, want %q", i+1, status, CacheBreaker)
		}
	}
	st := eng.Stats()
	if st.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1 after threshold failures", st.BreakerTrips)
	}
	if st.BreakerShed != 0 {
		t.Fatalf("BreakerShed = %d before the breaker was consulted open", st.BreakerShed)
	}

	// Open breaker: shed without attempting the build, with Retry-After.
	_, status, terr := eng.Point(0, "ps", 40.7, -74.0)
	if terr == nil || terr.Code != 503 || status != CacheBreaker {
		t.Fatalf("open-breaker query = (%q, %v), want breaker 503", status, terr)
	}
	if terr.RetryAfter < 1 {
		t.Fatalf("RetryAfter = %d, want >= 1 second", terr.RetryAfter)
	}
	if shed := eng.Stats().BreakerShed; shed != 1 {
		t.Fatalf("BreakerShed = %d, want 1", shed)
	}

	// Per-key isolation: a healthy epoch serves while epoch 0 is open.
	store.Publish(testSnapshot(1))
	if _, _, terr := eng.Point(1, "ps", 40.7, -74.0); terr != nil {
		t.Fatalf("healthy epoch shed alongside the poisoned one: %v", terr)
	}

	// Repair epoch 0 and let the cooldown elapse: the half-open probe
	// succeeds and the key serves again.
	store.Publish(testSnapshot(0))
	time.Sleep(60 * time.Millisecond)
	res, status, terr := eng.Point(0, "ps", 40.7, -74.0)
	if terr != nil {
		t.Fatalf("post-recovery query failed: %v", terr)
	}
	if status != CacheBuild {
		t.Fatalf("post-recovery status = %q, want %q", status, CacheBuild)
	}
	if res.Value < 5e4 || res.Value > 1.2e5 {
		t.Fatalf("post-recovery ps = %v, implausible", res.Value)
	}
	// And a repeat is a plain cache hit — the breaker holds no state for
	// the key anymore.
	if _, status, _ := eng.Point(0, "ps", 40.7, -74.0); status != CacheHit {
		t.Fatalf("repeat status = %q, want %q", status, CacheHit)
	}
}

// While still poisoned, the half-open probe fails and re-arms the
// window instead of letting the full query stream through.
func TestBuildBreakerHalfOpenReArms(t *testing.T) {
	store := NewSnapshotStore(4)
	eng := NewEngine(testMesh, store, 8, 64, 1)
	eng.SetBreaker(2, 30*time.Millisecond)
	store.Publish(malformedSnapshot(0))

	for i := 0; i < 2; i++ {
		eng.Point(0, "t_sfc", 10, 10)
	}
	time.Sleep(40 * time.Millisecond)
	// Probe: attempted (not shed) but still failing.
	_, status, terr := eng.Point(0, "t_sfc", 10, 10)
	if terr == nil || terr.Code != 503 || status != CacheBreaker {
		t.Fatalf("half-open probe = (%q, %v), want failing 503", status, terr)
	}
	shedBefore := eng.Stats().BreakerShed
	// Immediately after the failed probe the window is re-armed: shed.
	eng.Point(0, "t_sfc", 10, 10)
	if shed := eng.Stats().BreakerShed; shed != shedBefore+1 {
		t.Fatalf("BreakerShed = %d, want %d (re-armed window sheds)", shed, shedBefore+1)
	}
}

// Range queries touching an open key degrade with 503 rather than
// serving a partial series.
func TestBreakerShedsRangeQueries(t *testing.T) {
	store := NewSnapshotStore(4)
	eng := NewEngine(testMesh, store, 8, 64, 1)
	eng.SetBreaker(1, time.Minute)
	store.Publish(testSnapshot(0))
	store.Publish(malformedSnapshot(1))

	_, _, terr := eng.Range("ps", 40.7, -74.0, 0, -1)
	if terr == nil || terr.Code != 503 {
		t.Fatalf("range over a poisoned epoch = %v, want 503", terr)
	}
	// Scoped: a range over only the healthy epoch still works.
	res, _, terr := eng.Range("ps", 40.7, -74.0, 0, 0)
	if terr != nil || len(res.Series) != 1 {
		t.Fatalf("healthy-only range = (%v, %v), want one sample", res.Series, terr)
	}
}
