// Package detrand is the repo's single sanctioned source of
// deterministic pseudo-randomness: the splitmix64 mixing function and
// the derivations built on it. Every subsystem that needs a seeded,
// coordinate-addressable random draw — the fault injector's per-message
// verdicts, the partitioner's per-epoch seeds — goes through this
// package, so the determinism analyzer can whitelist exactly one
// randomness source and flag everything else (global math/rand,
// wall-clock entropy) in bitwise-critical code.
//
// Determinism here is load-bearing, not stylistic: the 34M-core scaling
// argument requires every rank to derive identical decisions from
// (seed, coordinates) alone, with no communication and no dependence on
// scheduling order. splitmix64 (Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014) is chosen because it is
// a pure 64-bit value function: stateless at the call site, trivially
// reproducible in any language a cross-implementation needs to agree
// with, and strong enough to decorrelate adjacent coordinates.
package detrand

// Gamma is the splitmix64 sequence increment (the odd integer nearest
// 2^64/phi). Streams advance by adding Gamma to their state; unrelated
// draws are decorrelated by the Mix finalizer.
const Gamma = 0x9e3779b97f4a7c15

// Mix is the splitmix64 finalizer: a bijective avalanche over 64 bits.
// Equal inputs give equal outputs on every platform, and a single-bit
// input change flips each output bit with probability ~1/2.
func Mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Step advances one splitmix64 state and finalizes it — the canonical
// next() of the reference generator. Iterating Step over x, x+Gamma,
// x+2*Gamma, ... reproduces the published test vectors.
func Step(x uint64) uint64 {
	return Mix(x + Gamma)
}

// Fold mixes a salt into a running hash — the building block for
// folding message or entity coordinates into one deterministic draw:
//
//	h := detrand.Step(seed)
//	h = detrand.Fold(h, uint64(from))
//	h = detrand.Fold(h, uint64(to))
func Fold(h, salt uint64) uint64 {
	return Step(h ^ salt)
}

// Unit maps a draw to the unit interval [0, 1) with 53 uniform bits —
// the float64 mantissa width, so the conversion is exact.
func Unit(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

// SeedAt derives the seed of sequence index i (an epoch, a member
// generation, a retry round) from a base seed: state advances i steps
// along the splitmix64 stream, then finalizes. Successive indices yield
// decorrelated seeds while staying reproducible from (seed, i) alone.
func SeedAt(seed int64, i int) int64 {
	return int64(Mix(uint64(seed) + uint64(i)*Gamma))
}
