package detrand

import "testing"

// TestReferenceVectors pins Step to the published splitmix64 sequence
// for seed 0 (Steele, Lea & Flood; the same vectors ship with the
// xoshiro reference implementation). A platform, compiler, or
// refactoring change that perturbs a single bit of the generator fails
// here before it silently forks a distributed run.
func TestReferenceVectors(t *testing.T) {
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	state := uint64(0)
	for i, w := range want {
		state += Gamma
		if got := Mix(state); got != w {
			t.Errorf("vector %d: Mix = %#x, want %#x", i, got, w)
		}
	}
	// Step is the same advance-and-finalize in one call.
	if got := Step(0); got != want[0] {
		t.Errorf("Step(0) = %#x, want %#x", got, want[0])
	}
	if got := Step(Gamma); got != want[1] {
		t.Errorf("Step(Gamma) = %#x, want %#x", got, want[1])
	}
}

// TestSeedAtCompat pins SeedAt to the values partition.EpochSeed
// produced before the deduplication into this package: elastic-run
// checkpoints committed under the old derivation must repartition
// identically under the new one.
func TestSeedAtCompat(t *testing.T) {
	want := map[int]uint64{
		0: 0xa759ea27d4727622,
		1: 0xbdd732262feb6e95,
		2: 0x28efe333b266f103,
		7: 0x37e9671c45376d5d,
	}
	for epoch, w := range want {
		if got := uint64(SeedAt(42, epoch)); got != w {
			t.Errorf("SeedAt(42, %d) = %#x, want %#x", epoch, got, w)
		}
	}
}

// TestFoldMatchesManualChain cross-checks Fold against the spelled-out
// step the fault injector's per-coordinate hash uses.
func TestFoldMatchesManualChain(t *testing.T) {
	h := Step(12345)
	manual := Mix((h ^ 77) + Gamma)
	if got := Fold(h, 77); got != manual {
		t.Errorf("Fold = %#x, want %#x", got, manual)
	}
}

func TestUnitRange(t *testing.T) {
	state := uint64(99)
	for i := 0; i < 1000; i++ {
		state += Gamma
		u := Unit(Mix(state))
		if u < 0 || u >= 1 {
			t.Fatalf("Unit out of [0,1): %v", u)
		}
	}
	// Exactness at the extremes: all-zero and all-one mantissa bits.
	if Unit(0) != 0 {
		t.Errorf("Unit(0) = %v, want 0", Unit(0))
	}
	if got := Unit(^uint64(0)); got >= 1 {
		t.Errorf("Unit(max) = %v, want < 1", got)
	}
}
