// Package netsim models the interconnect of the next-generation Sunway
// supercomputer (§4.1 of the paper): every node connects to a 304-port
// leaf switch — 256 ports down to nodes, 48 up to second-level switches —
// so each 256-node group forms a "supernode" with full bandwidth inside
// and a 16:3 oversubscribed multilayer fat tree between supernodes.
package netsim

import "math"

// Topology constants from §4.1.
const (
	NodesPerSupernode = 256
	LeafPorts         = 304
	UplinkPorts       = 48
	// Oversubscription = downlinks / uplinks = 256/48 = 16/3.
	Oversubscription = float64(NodesPerSupernode) / float64(UplinkPorts)
	CGsPerNode       = 6
)

// Network carries the link parameters.
type Network struct {
	LinkBandwidth float64 // bytes/s per node link
	LinkLatency   float64 // seconds per message
}

// New returns the network with typical HDR-class link parameters.
func New() *Network {
	return &Network{
		LinkBandwidth: 25.0e9, // 200 Gb/s
		LinkLatency:   2.0e-6,
	}
}

// Supernodes returns how many supernodes nNodes span.
func Supernodes(nNodes int) int {
	return (nNodes + NodesPerSupernode - 1) / NodesPerSupernode
}

// SupernodeOf returns the supernode index of a node under the natural
// linear placement.
func SupernodeOf(node int) int { return node / NodesPerSupernode }

// CrossFraction estimates the fraction of halo-exchange traffic that
// leaves its source supernode when a locality-preserving (partition-
// order) placement maps neighboring subdomains to neighboring ranks. A
// supernode holds S = 256*6 CGs covering a contiguous patch of the
// sphere; the off-supernode traffic is the patch-perimeter share of the
// subdomain neighbors, which scales like 1/sqrt(S patch size) but grows
// toward a plateau as the machine fills and patches stop being compact.
func CrossFraction(nNodes int) float64 {
	sn := Supernodes(nNodes)
	if sn <= 1 {
		return 0
	}
	// Perimeter/area of a compact patch of 1536 cells-worth of
	// subdomains: ~4/sqrt(1536) per side, times the share of neighbors
	// pointing outward; saturates as patches wrap the sphere.
	f := 0.09 * math.Sqrt(float64(sn-1))
	if f > 0.62 {
		f = 0.62
	}
	return f
}

// PointToPoint returns the time to move one message of the given size
// between two nodes, charging the oversubscription factor when the
// endpoints sit in different supernodes and the fabric is loaded.
func (n *Network) PointToPoint(bytes int64, crossSupernode, loaded bool) float64 {
	bw := n.LinkBandwidth
	if crossSupernode && loaded {
		bw /= Oversubscription
	}
	return n.LinkLatency + float64(bytes)/bw
}

// HaloExchange returns the per-step halo-exchange time of one node that
// sends totalBytes spread over nPeers messages, with crossFrac of the
// bytes crossing supernode boundaries while every node communicates at
// once (the loaded all-exchange of a timestep).
func (n *Network) HaloExchange(totalBytes int64, nPeers int, crossFrac float64) float64 {
	if nPeers <= 0 || totalBytes <= 0 {
		return 0
	}
	local := float64(totalBytes) * (1 - crossFrac) / n.LinkBandwidth
	cross := float64(totalBytes) * crossFrac * Oversubscription / n.LinkBandwidth
	return float64(nPeers)*n.LinkLatency + local + cross
}

// Reduction returns the time of a small global reduction over nNodes
// (tree depth times per-hop latency) — used sparingly: the solver needs
// no global communication (§3.1.2), but timing collection does.
func (n *Network) Reduction(nNodes int) float64 {
	if nNodes <= 1 {
		return 0
	}
	depth := math.Ceil(math.Log2(float64(nNodes)))
	return depth * 2 * n.LinkLatency
}

// Hops returns the switch hops between two nodes under the two-level
// fat tree: 1 leaf switch inside a supernode, 3 hops (leaf, spine, leaf)
// across supernodes.
func Hops(a, b int) int {
	if a == b {
		return 0
	}
	if SupernodeOf(a) == SupernodeOf(b) {
		return 1
	}
	return 3
}

// HopLatency returns the modeled wire+switch latency for a path of the
// given hop count.
func (n *Network) HopLatency(hops int) float64 {
	const perHop = 150e-9 // switch traversal
	return n.LinkLatency + float64(hops)*perHop
}
