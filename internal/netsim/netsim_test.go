package netsim

import (
	"testing"
	"testing/quick"
)

func TestOversubscriptionRatio(t *testing.T) {
	if Oversubscription < 5.33 || Oversubscription > 5.34 {
		t.Errorf("oversubscription = %v, want 16/3", Oversubscription)
	}
	if LeafPorts != NodesPerSupernode+UplinkPorts {
		t.Errorf("leaf ports %d != %d + %d", LeafPorts, NodesPerSupernode, UplinkPorts)
	}
}

func TestSupernodeAccounting(t *testing.T) {
	if Supernodes(1) != 1 || Supernodes(256) != 1 || Supernodes(257) != 2 {
		t.Error("supernode counting wrong")
	}
	if SupernodeOf(255) != 0 || SupernodeOf(256) != 1 {
		t.Error("supernode-of wrong")
	}
}

func TestCrossFractionMonotoneAndBounded(t *testing.T) {
	f := func(a, b uint16) bool {
		na, nb := int(a)+1, int(b)+1
		if na > nb {
			na, nb = nb, na
		}
		fa, fb := CrossFraction(na*NodesPerSupernode), CrossFraction(nb*NodesPerSupernode)
		return fa <= fb+1e-12 && fb <= 0.62 && fa >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if CrossFraction(100) != 0 {
		t.Error("single supernode should have no cross traffic")
	}
}

func TestPointToPointCosts(t *testing.T) {
	n := New()
	local := n.PointToPoint(1<<20, false, true)
	cross := n.PointToPoint(1<<20, true, true)
	if cross <= local {
		t.Error("cross-supernode message not slower under load")
	}
	// Latency floor.
	if tiny := n.PointToPoint(1, false, false); tiny < n.LinkLatency {
		t.Error("latency floor violated")
	}
}

func TestHaloExchangeScalesWithCrossFraction(t *testing.T) {
	n := New()
	t0 := n.HaloExchange(1<<20, 6, 0)
	t1 := n.HaloExchange(1<<20, 6, 0.5)
	if t1 <= t0 {
		t.Error("cross traffic should cost more")
	}
	if n.HaloExchange(0, 0, 0) != 0 {
		t.Error("empty exchange should be free")
	}
}

func TestReductionLogDepth(t *testing.T) {
	n := New()
	if n.Reduction(1) != 0 {
		t.Error("single node reduction should be free")
	}
	if n.Reduction(1024) <= n.Reduction(4) {
		t.Error("reduction should grow with node count")
	}
}

func TestHops(t *testing.T) {
	if Hops(3, 3) != 0 {
		t.Error("self hops")
	}
	if Hops(0, 255) != 1 {
		t.Error("intra-supernode should be 1 hop")
	}
	if Hops(0, 256) != 3 {
		t.Error("inter-supernode should be 3 hops")
	}
}

func TestHopLatencyGrows(t *testing.T) {
	n := New()
	if n.HopLatency(3) <= n.HopLatency(1) {
		t.Error("latency must grow with hops")
	}
}
