package mlphysics

import (
	"math"
	"testing"
	"time"

	"gristgo/internal/physics"
	"gristgo/internal/precision"
)

// trainedSuite trains a small suite on the synthetic dataset, shared by
// the engine-integration tests.
func trainedSuite(t *testing.T, nlev int, seed int64) *Suite {
	t.Helper()
	samples := syntheticSamples(200, nlev, seed)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	suite, _, _ := Train(samples, nil, nlev, cfg)
	return suite
}

// physInput builds a deterministic multi-column physics state.
func physInput(ncol, nlev int) *physics.Input {
	in := physics.NewInput(ncol, nlev)
	for c := 0; c < ncol; c++ {
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			p := 22500 + float64(k)/float64(nlev-1)*75000
			in.P[i] = p
			in.Dpi[i] = 97750.0 / float64(nlev)
			in.T[i] = 295 + 2*math.Sin(float64(c)) - 55*math.Log(1e5/p)
			in.Qv[i] = 0.012 * math.Pow(p/1e5, 3) * (1 + 0.1*math.Cos(float64(i)))
			in.U[i] = 8 * math.Sin(float64(i))
			in.V[i] = 4 * math.Cos(float64(i))
		}
		in.Tskin[c] = 300 + math.Sin(float64(c))
		in.CosZ[c] = math.Max(0, math.Sin(float64(c)*0.7))
		in.Land[c] = float64(c % 2)
	}
	return in
}

// TestBatchedMatchesScalarOracle: the FP64 engine path must reproduce
// the per-column scalar path bit for bit, at any worker count.
func TestBatchedMatchesScalarOracle(t *testing.T) {
	nlev := 8
	suite := trainedSuite(t, nlev, 11)
	const ncol = 37
	in := physInput(ncol, nlev)
	tskin0 := append([]float64(nil), in.Tskin...)

	ref := physics.NewOutput(ncol, nlev)
	suite.SetScalarOracle(true)
	suite.Compute(in, ref, 600)

	for _, workers := range []int{1, 3} {
		copy(in.Tskin, tskin0) // surface slab advanced Tskin; rewind
		got := physics.NewOutput(ncol, nlev)
		suite.SetScalarOracle(false)
		suite.SetWorkers(workers)
		suite.Compute(in, got, 600)
		for i := range ref.Q1 {
			if got.Q1[i] != ref.Q1[i] || got.Q2[i] != ref.Q2[i] {
				t.Fatalf("workers=%d: tendency diverges from oracle at %d", workers, i)
			}
		}
		for c := range ref.Gsw {
			if got.Gsw[c] != ref.Gsw[c] || got.Glw[c] != ref.Glw[c] || got.Precip[c] != ref.Precip[c] {
				t.Fatalf("workers=%d: radiation diverges from oracle at col %d", workers, c)
			}
		}
	}
}

// TestFP32SuiteWithinThreshold validates the quantized plan the same way
// the mixed-precision dycore is validated: relative-L2 of Q1/Q2/gsw/glw
// against the FP64 reference under the 5% threshold — and checks it is a
// genuinely different computation.
func TestFP32SuiteWithinThreshold(t *testing.T) {
	nlev := 8
	suite := trainedSuite(t, nlev, 13)
	const ncol = 40
	in := physInput(ncol, nlev)
	tskin0 := append([]float64(nil), in.Tskin...)

	o64 := physics.NewOutput(ncol, nlev)
	suite.Compute(in, o64, 600)

	copy(in.Tskin, tskin0)
	o32 := physics.NewOutput(ncol, nlev)
	suite.SetPrecision(precision.Mixed)
	suite.Compute(in, o32, 600)
	suite.SetPrecision(precision.DP)

	for _, f := range []struct {
		name    string
		lo, ref []float64
	}{
		{"Q1", o32.Q1, o64.Q1},
		{"Q2", o32.Q2, o64.Q2},
		{"gsw", o32.Gsw, o64.Gsw},
		{"glw", o32.Glw, o64.Glw},
	} {
		if dev := precision.RelL2(f.lo, f.ref); dev > precision.ErrorThreshold {
			t.Errorf("FP32 %s deviates %g > %g", f.name, dev, precision.ErrorThreshold)
		}
	}
	identical := true
	for i := range o64.Q1 {
		if o32.Q1[i] != o64.Q1[i] {
			identical = false
			break
		}
	}
	if identical {
		t.Error("FP32 suite output bitwise equals FP64 — quantized plan not in use")
	}
}

// TestOracleInputPathAllocationFree: the satellite fix — the reference
// path's input assembly and normalizer apply/invert must not allocate in
// steady state.
func TestOracleInputPathAllocationFree(t *testing.T) {
	nlev := 8
	suite := trainedSuite(t, nlev, 17)
	in := physInput(4, nlev)
	suite.orc.ensure(nlev)
	allocs := testing.AllocsPerRun(50, func() {
		for c := 0; c < 4; c++ {
			tendencyInputInto(suite.orc.tendIn, in, c, nlev)
			suite.TendIn.ApplyInto(suite.orc.tendZ, suite.orc.tendIn)
			radiationInputInto(suite.orc.radIn, in, c, nlev)
			suite.RadIn.ApplyInto(suite.orc.radZ, suite.orc.radIn)
			suite.TendOut.InvertInto(suite.orc.pred, suite.orc.tendZ[:TendencyOutputs*nlev])
		}
	})
	if allocs != 0 {
		t.Errorf("oracle input path allocates %v per run, want 0", allocs)
	}
}

// TestBatchedSteadyStateAllocationFree: after warmup, the batched path's
// matrix fill and engine execution should allocate at most incidentally
// (pool churn), far below one slice per column.
func TestBatchedSteadyStateAllocationFree(t *testing.T) {
	nlev := 8
	suite := trainedSuite(t, nlev, 19)
	const ncol = 64
	in := physInput(ncol, nlev)
	out := physics.NewOutput(ncol, nlev)
	suite.SetWorkers(1)
	suite.Compute(in, out, 600) // warmup: compiles plans, sizes matrices
	allocs := testing.AllocsPerRun(20, func() {
		suite.Compute(in, out, 600)
	})
	// The surface scheme constructor and pool churn allow a few small
	// allocations; the per-column garbage of the old path (hundreds of
	// slices per call) must be gone.
	if allocs > 20 {
		t.Errorf("batched Compute allocates %v per run", allocs)
	}
}

// TestDrainTimings: engines accumulate call counts and wall time, and
// draining resets them.
func TestDrainTimings(t *testing.T) {
	nlev := 6
	suite := trainedSuite(t, nlev, 23)
	in := physInput(8, nlev)
	out := physics.NewOutput(8, nlev)
	suite.Compute(in, out, 600)
	suite.Compute(in, out, 600)

	got := map[string]int{}
	var elapsed time.Duration
	suite.DrainTimings(func(name string, d time.Duration, calls int) {
		got[name] += calls
		elapsed += d
	})
	if got["ml_tendency_infer"] != 2 || got["ml_radiation_infer"] != 2 {
		t.Errorf("timings = %v, want 2 calls each", got)
	}
	if elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
	suite.DrainTimings(func(name string, d time.Duration, calls int) {
		t.Errorf("drain did not reset: %s has %d calls", name, calls)
	})

	// The scalar oracle bypasses the engines entirely.
	suite.SetScalarOracle(true)
	suite.Compute(in, out, 600)
	suite.DrainTimings(func(name string, d time.Duration, calls int) {
		t.Errorf("scalar path recorded engine timing %s", name)
	})
}

// TestEnsemblePropagation: knob setters reach every member, and the
// ensemble output matches averaging oracle members exactly when run in
// FP64.
func TestEnsemblePropagation(t *testing.T) {
	nlev := 6
	a := trainedSuite(t, nlev, 29)
	b := trainedSuite(t, nlev, 31)
	ens := NewEnsemble(a, b)

	ens.SetWorkers(3)
	if a.inf.workers != 3 || b.inf.workers != 3 {
		t.Error("SetWorkers did not propagate")
	}
	ens.SetPrecision(precision.Mixed)
	if a.inf.mode != precision.Mixed || b.inf.mode != precision.Mixed {
		t.Error("SetPrecision did not propagate")
	}
	ens.SetPrecision(precision.DP)
	ens.SetScalarOracle(true)
	if !a.inf.scalar || !b.inf.scalar {
		t.Error("SetScalarOracle did not propagate")
	}

	in := physInput(5, nlev)
	tskin0 := append([]float64(nil), in.Tskin...)
	ref := physics.NewOutput(5, nlev)
	ens.Compute(in, ref, 600)

	ens.SetScalarOracle(false)
	copy(in.Tskin, tskin0)
	got := physics.NewOutput(5, nlev)
	ens.Compute(in, got, 600)
	for i := range ref.Q1 {
		if got.Q1[i] != ref.Q1[i] {
			t.Fatalf("ensemble batched diverges from oracle at %d", i)
		}
	}

	n := 0
	ens.DrainTimings(func(string, time.Duration, int) { n++ })
	if n == 0 {
		t.Error("ensemble drained no engine timings")
	}
}
