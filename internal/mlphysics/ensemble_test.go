package mlphysics

import (
	"math"
	"testing"

	"gristgo/internal/physics"
)

func ensembleTestInput(nlev int) *physics.Input {
	in := physics.NewInput(3, nlev)
	for c := 0; c < 3; c++ {
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			p := 22500 + float64(k)/float64(nlev-1)*75000
			in.P[i] = p
			in.Dpi[i] = 97750.0 / float64(nlev)
			in.T[i] = 295 + float64(c) - 55*math.Log(1e5/p)
			in.Qv[i] = 0.012 * math.Pow(p/1e5, 3)
		}
		in.Tskin[c] = 300
		in.CosZ[c] = 0.5
	}
	return in
}

func TestEnsembleAveragesMembers(t *testing.T) {
	nlev := 6
	samples := syntheticSamples(150, nlev, 11)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 8
	ens, lt, lr := TrainEnsemble(samples, nil, nlev, 3, cfg)
	if len(ens.Members) != 3 {
		t.Fatalf("members = %d", len(ens.Members))
	}
	if !math.IsNaN(lt) || !math.IsNaN(lr) {
		// No test set was given, so losses are NaN by contract.
		t.Errorf("losses without test set: %v %v", lt, lr)
	}

	in := ensembleTestInput(nlev)
	outE := physics.NewOutput(3, nlev)
	tskin0 := append([]float64(nil), in.Tskin...)
	ens.Compute(in, outE, 600)

	// Hand-average the members for one (cell, level).
	var q1Mean float64
	for _, mem := range ens.Members {
		copy(in.Tskin, tskin0)
		o := physics.NewOutput(3, nlev)
		mem.Compute(in, o, 600)
		q1Mean += o.Q1[7] / 3
	}
	if math.Abs(outE.Q1[7]-q1Mean) > 1e-15*(1+math.Abs(q1Mean)) {
		t.Errorf("ensemble Q1 %g != member mean %g", outE.Q1[7], q1Mean)
	}
}

func TestEnsembleMembersDiffer(t *testing.T) {
	nlev := 6
	samples := syntheticSamples(150, nlev, 12)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 8
	ens, _, _ := TrainEnsemble(samples, nil, nlev, 2, cfg)
	in := ensembleTestInput(nlev)
	tskin0 := append([]float64(nil), in.Tskin...)
	o1 := physics.NewOutput(3, nlev)
	o2 := physics.NewOutput(3, nlev)
	ens.Members[0].Compute(in, o1, 600)
	copy(in.Tskin, tskin0)
	ens.Members[1].Compute(in, o2, 600)
	same := true
	for i := range o1.Q1 {
		if o1.Q1[i] != o2.Q1[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("differently seeded members are identical")
	}
}

func TestEnsembleTskinSingleUpdate(t *testing.T) {
	// The ensemble must advance the skin temperature once, not once per
	// member.
	nlev := 6
	samples := syntheticSamples(150, nlev, 13)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 8
	ens, _, _ := TrainEnsemble(samples, nil, nlev, 4, cfg)

	in := ensembleTestInput(nlev)
	t0 := in.Tskin[0]
	out := physics.NewOutput(3, nlev)
	ens.Compute(in, out, 600)
	dEns := in.Tskin[0] - t0

	// A single member with the same (ensemble-mean-ish) radiation moves
	// Tskin by a comparable amount; 4 compounded updates would be ~4x.
	in2 := ensembleTestInput(nlev)
	o2 := physics.NewOutput(3, nlev)
	ens.Members[0].Compute(in2, o2, 600)
	dOne := in2.Tskin[0] - t0
	if math.Abs(dEns) > 2.5*math.Abs(dOne)+1e-9 {
		t.Errorf("ensemble Tskin step %g vs single member %g: looks compounded", dEns, dOne)
	}
}

func TestEnsembleRejectsMismatchedMembers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for mismatched NLev")
		}
	}()
	a := &Suite{NLev: 4}
	b := &Suite{NLev: 6}
	NewEnsemble(a, b)
}
