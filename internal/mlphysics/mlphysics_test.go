package mlphysics

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"gristgo/internal/coarse"
	"gristgo/internal/physics"
)

// syntheticSamples fabricates physically-shaped training samples with a
// learnable relationship: Q1/Q2 and gsw/glw are smooth functions of the
// column state plus small noise.
func syntheticSamples(n, nlev int, seed int64) []*coarse.Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []*coarse.Sample
	for i := 0; i < n; i++ {
		s := &coarse.Sample{
			U: make([]float64, nlev), V: make([]float64, nlev),
			T: make([]float64, nlev), Q: make([]float64, nlev),
			P: make([]float64, nlev), Q1: make([]float64, nlev), Q2: make([]float64, nlev),
			Day: i % 4, StepOfDay: i % 24,
		}
		tSfc := 285 + 20*rng.Float64()
		moist := rng.Float64()
		for k := 0; k < nlev; k++ {
			p := 22500 + float64(k)/float64(nlev-1)*75000
			s.P[k] = p
			s.T[k] = tSfc - 55*math.Log(1e5/p)
			s.Q[k] = moist * 0.02 * math.Pow(p/1e5, 3)
			s.U[k] = 10 * rng.NormFloat64()
			s.V[k] = 5 * rng.NormFloat64()
			// Target: heating proportional to moisture and instability.
			s.Q1[k] = 2e-5 * moist * math.Sin(math.Pi*float64(k)/float64(nlev-1))
			s.Q2[k] = -1e-8 * moist * s.Q[k] / 0.02 * 1e3
		}
		s.Tskin = tSfc + 2*rng.NormFloat64()
		s.CosZ = rng.Float64()
		s.Gsw = 1000 * s.CosZ * (1 - 0.3*moist)
		s.Glw = 300 + 150*moist + 2*(s.Tskin-290)
		s.Precip = 20 * moist * moist
		out = append(out, s)
	}
	return out
}

func TestTrainAndPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("full training run (~30 s)")
	}
	nlev := 10
	samples := syntheticSamples(300, nlev, 1)
	train, test := coarse.Split(samples, 24, rand.New(rand.NewSource(2)))
	cfg := DefaultTrainConfig()
	cfg.Epochs = 30
	suite, lossT, lossR := Train(train, test, nlev, cfg)

	// Normalized MSE well below the variance (==0.5 in the 0.5*d^2
	// convention) means the modules learned real structure.
	if lossT > 0.25 {
		t.Errorf("tendency test loss %g too high", lossT)
	}
	if lossR > 0.25 {
		t.Errorf("radiation test loss %g too high", lossR)
	}
	if suite.Name() != "ML-physics" {
		t.Errorf("name %q", suite.Name())
	}
}

func TestSuiteImplementsSchemePhysically(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a full suite (~20 s)")
	}
	nlev := 8
	samples := syntheticSamples(200, nlev, 3)
	suite, _, _ := Train(samples, nil, nlev, DefaultTrainConfig())

	in := physics.NewInput(4, nlev)
	for c := 0; c < 4; c++ {
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			p := 22500 + float64(k)/float64(nlev-1)*75000
			in.P[i] = p
			in.Dpi[i] = 97750.0 / float64(nlev)
			in.T[i] = 300 - 55*math.Log(1e5/p)
			in.Qv[i] = 0.015 * math.Pow(p/1e5, 3)
		}
		in.Tskin[c] = 302
		in.CosZ[c] = float64(c) * 0.3
	}
	out := physics.NewOutput(4, nlev)
	var scheme physics.Scheme = suite
	scheme.Compute(in, out, 600)

	for c := 0; c < 4; c++ {
		if out.Precip[c] < 0 {
			t.Errorf("negative precip %v", out.Precip[c])
		}
		if out.Gsw[c] < 0 || out.Glw[c] < 0 {
			t.Error("negative radiation")
		}
		if math.IsNaN(out.Gsw[c]) || math.IsNaN(out.Glw[c]) {
			t.Error("NaN radiation")
		}
	}
	// Night column gets no shortwave.
	if out.Gsw[0] != 0 {
		t.Errorf("night column gsw = %v", out.Gsw[0])
	}
	// Q2 never dries below zero vapor.
	for i := range out.Q2 {
		if in.Qv[i]+out.Q2[i]*600 < -1e-15 {
			t.Errorf("Q2 overshoots vapor at %d", i)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	nlev := 6
	samples := syntheticSamples(120, nlev, 5)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 5
	suite, _, _ := Train(samples, nil, nlev, cfg)

	var buf bytes.Buffer
	if err := suite.Save(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSuite(&buf)
	if err != nil {
		t.Fatal(err)
	}

	in := physics.NewInput(2, nlev)
	for c := 0; c < 2; c++ {
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			p := 30000 + float64(k)*10000
			in.P[i] = p
			in.Dpi[i] = 1e4
			in.T[i] = 280 + float64(k)
			in.Qv[i] = 0.001 * float64(k+1)
		}
		in.Tskin[c] = 295
		in.CosZ[c] = 0.4
	}
	o1 := physics.NewOutput(2, nlev)
	o2 := physics.NewOutput(2, nlev)
	suite.Compute(in, o1, 600)
	// Surface scheme mutates Tskin; reset for identical comparison.
	in.Tskin[0], in.Tskin[1] = 295, 295
	loaded.Compute(in, o2, 600)
	for i := range o1.Q1 {
		if o1.Q1[i] != o2.Q1[i] || o1.Q2[i] != o2.Q2[i] {
			t.Fatalf("loaded suite differs at %d", i)
		}
	}
	for c := range o1.Gsw {
		if o1.Gsw[c] != o2.Gsw[c] || o1.Glw[c] != o2.Glw[c] {
			t.Fatalf("loaded radiation differs at %d", c)
		}
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	rows := [][]float64{{1, 100}, {3, 300}, {5, 200}}
	nm := NewNormalizer(rows)
	x := []float64{2.5, 250}
	y := nm.Invert(nm.Apply(x))
	for i := range x {
		if math.Abs(y[i]-x[i]) > 1e-12 {
			t.Fatalf("round trip failed: %v -> %v", x, y)
		}
	}
	// Normalized training rows have ~zero mean, unit variance.
	var mean float64
	for _, r := range rows {
		mean += nm.Apply(r)[0]
	}
	if math.Abs(mean) > 1e-12 {
		t.Errorf("normalized mean %g", mean)
	}
}

func TestParameterCountPaperScale(t *testing.T) {
	nlev := 30
	samples := syntheticSamples(30, nlev, 8)
	cfg := PaperScaleConfig()
	cfg.Epochs = 1
	suite, _, _ := Train(samples, nil, nlev, cfg)
	// Paper: CNN parameter count close to half a million.
	n := 0
	for _, p := range suite.Tend.Params() {
		n += len(p.W)
	}
	if n < 250_000 || n > 750_000 {
		t.Errorf("CNN params = %d, want ~0.5M", n)
	}
}
