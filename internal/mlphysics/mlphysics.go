// Package mlphysics implements the resolution-adaptive ML-based physics
// suite of §3.2: the ML physical tendency module (an 11-layer 1-D CNN
// with five ResUnits predicting the apparent heat source Q1 and moisture
// sink Q2 from the column state), the ML radiation diagnostic module (a
// 7-layer residual MLP predicting surface downward shortwave and
// longwave radiation gsw/glw, with skin temperature and the cosine of
// the solar zenith angle as extra physical inputs), and the conventional
// physics diagnostic module (surface precipitation from the column
// moisture budget). Together they implement the physics.Scheme coupling
// contract, so the dynamical core drives them exactly as it drives the
// conventional suite (§3.2.4).
package mlphysics

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"gristgo/internal/coarse"
	"gristgo/internal/nn"
	"gristgo/internal/physics"
)

// TendencyChannels are the CNN input channels: U, V, T, Q, P (§3.2.4).
const TendencyChannels = 5

// TendencyOutputs are the CNN output channels: Q1 and Q2.
const TendencyOutputs = 2

// RadiationOutputs are the diagnostic-MLP targets: gsw, glw, precip.
const RadiationOutputs = 3

// maxOutSigma caps network outputs at +/-6 standard deviations of the
// training targets (§3.2.3 stability engineering): the coupled model
// must never receive tendencies outside the envelope the residual data
// ever contained.
const maxOutSigma = 6.0

// clampAbs limits v to [-lim, lim].
func clampAbs(v, lim float64) float64 {
	if v > lim {
		return lim
	}
	if v < -lim {
		return -lim
	}
	return v
}

// Normalizer holds per-feature mean and standard deviation. Features
// with (numerically) zero variance in the training data are "dead":
// they normalize to zero and always invert to their training mean, so
// network noise on a constant target (e.g. the moisture tendency at the
// model top) can never re-enter the model at unit scale.
type Normalizer struct {
	Mean, Std []float64
	Dead      []bool
}

// NewNormalizer computes stats over rows of features.
func NewNormalizer(rows [][]float64) *Normalizer {
	if len(rows) == 0 {
		panic("mlphysics: no rows for normalizer")
	}
	n := len(rows[0])
	nm := &Normalizer{Mean: make([]float64, n), Std: make([]float64, n)}
	for _, r := range rows {
		for i, v := range r {
			nm.Mean[i] += v
		}
	}
	for i := range nm.Mean {
		nm.Mean[i] /= float64(len(rows))
	}
	for _, r := range rows {
		for i, v := range r {
			d := v - nm.Mean[i]
			nm.Std[i] += d * d
		}
	}
	var maxStd float64
	for i := range nm.Std {
		nm.Std[i] = math.Sqrt(nm.Std[i] / float64(len(rows)))
		if nm.Std[i] > maxStd {
			maxStd = nm.Std[i]
		}
	}
	nm.Dead = make([]bool, n)
	for i := range nm.Std {
		if nm.Std[i] < 1e-9*maxStd || nm.Std[i] == 0 {
			nm.Dead[i] = true
			nm.Std[i] = 1 // keep Apply/Invert arithmetic finite
		}
	}
	return nm
}

// inputClip bounds normalized inputs at +/-5 standard deviations
// (§3.2.3 stability engineering): out-of-distribution inputs possible
// during coupled integration must not drive the networks into
// extrapolation regimes.
const inputClip = 5.0

// Apply returns the normalized copy of x, clipped to +/-5 standard
// deviations.
func (nm *Normalizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	nm.ApplyInto(out, x)
	return out
}

// ApplyInto normalizes x into dst (len(dst) must equal len(x)) without
// allocating — the steady-state path of the per-column oracle.
func (nm *Normalizer) ApplyInto(dst, x []float64) {
	if len(dst) != len(x) {
		panic("mlphysics: ApplyInto length mismatch")
	}
	for i, v := range x {
		if nm.Dead[i] {
			dst[i] = 0
			continue
		}
		z := (v - nm.Mean[i]) / nm.Std[i]
		if z > inputClip {
			z = inputClip
		} else if z < -inputClip {
			z = -inputClip
		}
		dst[i] = z
	}
}

// Invert maps a normalized vector back to physical units; dead features
// return their training mean regardless of the network output.
func (nm *Normalizer) Invert(x []float64) []float64 {
	out := make([]float64, len(x))
	nm.InvertInto(out, x)
	return out
}

// InvertInto is the allocation-free Invert (len(dst) must equal len(x)).
func (nm *Normalizer) InvertInto(dst, x []float64) {
	if len(dst) != len(x) {
		panic("mlphysics: InvertInto length mismatch")
	}
	for i, v := range x {
		if nm.Dead[i] {
			dst[i] = nm.Mean[i]
			continue
		}
		dst[i] = v*nm.Std[i] + nm.Mean[i]
	}
}

// Suite is the trained ML physics suite.
type Suite struct {
	NLev int

	Tend *nn.Sequential // tendency CNN
	Rad  *nn.Sequential // radiation MLP

	TendIn  *Normalizer // over 5*nlev channel-major features
	TendOut *Normalizer // over 2*nlev targets
	RadIn   *Normalizer // over 2*nlev + 2 features
	RadOut  *Normalizer // over RadiationOutputs targets

	// inf carries the batched inference-engine state (infer.go); orc
	// carries the scalar oracle's reusable scratch buffers.
	inf engineState
	orc oracleScratch
}

// Name implements physics.Scheme.
func (s *Suite) Name() string { return "ML-physics" }

// oracleScratch holds the scalar reference path's per-column buffers so
// steady-state oracle inference stays allocation-free outside nn itself.
type oracleScratch struct {
	tendIn, tendZ, pred []float64
	radIn, radZ, radOut []float64
}

func (o *oracleScratch) ensure(nlev int) {
	if len(o.tendIn) == TendencyChannels*nlev {
		return
	}
	o.tendIn = make([]float64, TendencyChannels*nlev)
	o.tendZ = make([]float64, TendencyChannels*nlev)
	o.pred = make([]float64, TendencyOutputs*nlev)
	o.radIn = make([]float64, 2*nlev+2)
	o.radZ = make([]float64, 2*nlev+2)
	o.radOut = make([]float64, RadiationOutputs)
}

// tendencyInputInto fills x with the channel-major CNN input for column
// c of in (x must hold TendencyChannels*nlev values).
func tendencyInputInto(x []float64, in *physics.Input, c, nlev int) {
	base := c * nlev
	for k := 0; k < nlev; k++ {
		x[0*nlev+k] = in.U[base+k]
		x[1*nlev+k] = in.V[base+k]
		x[2*nlev+k] = in.T[base+k]
		x[3*nlev+k] = in.Qv[base+k]
		x[4*nlev+k] = in.P[base+k]
	}
}

// radiationInputInto fills x with the diagnostic-MLP input: T and Q
// columns plus tskin and coszr (§3.2.3).
func radiationInputInto(x []float64, in *physics.Input, c, nlev int) {
	base := c * nlev
	for k := 0; k < nlev; k++ {
		x[k] = in.T[base+k]
		x[nlev+k] = in.Qv[base+k]
	}
	x[2*nlev] = in.Tskin[c]
	x[2*nlev+1] = in.CosZ[c]
}

// Compute implements physics.Scheme: the tendency CNN emits Q1/Q2, the
// radiation MLP emits gsw/glw, and the conventional diagnostic module
// closes the surface water budget. By default the columns run batched
// through the internal/infer engine (FP64 or FP32 per SetPrecision,
// sharded across SetWorkers goroutines); SetScalarOracle(true) routes
// through the per-column nn.Forward reference path instead, which the
// engine's FP64 plan matches bit for bit.
//
// The batched path is guarded: a NaN or Inf in the raw engine outputs
// discards the batch and recomputes the step through the scalar oracle
// (see fallback.go), so non-finite inference output never reaches the
// prognostic state. DegradeFor routes whole steps the same way.
func (s *Suite) Compute(in *physics.Input, out *physics.Output, dt float64) {
	out.Reset()
	switch {
	case s.inf.scalar:
		s.computeScalar(in, out, dt)
	case s.inf.degradeLeft > 0:
		s.inf.degradeLeft--
		s.noteFallback("sentinel")
		s.computeScalar(in, out, dt)
	case !s.computeBatched(in, out, dt):
		out.Reset()
		s.noteFallback("nonfinite")
		s.computeScalar(in, out, dt)
	}
	// The land surface stays prognostic: reuse the conventional surface
	// scheme's slab update with the ML radiation diagnostics (the
	// coupling of §3.2.3: gsw/glw are provided to the land surface
	// model and surface layer scheme).
	sfc := physics.NewSurface()
	sfc.Compute(in, out, dt)
}

// computeScalar is the per-column reference path (the parity oracle for
// the batched engine): normalize, nn.Forward, clamp, invert, guard.
func (s *Suite) computeScalar(in *physics.Input, out *physics.Output, dt float64) {
	nlev := s.NLev
	s.orc.ensure(nlev)
	for c := 0; c < in.NCol; c++ {
		tendencyInputInto(s.orc.tendIn, in, c, nlev)
		s.TendIn.ApplyInto(s.orc.tendZ, s.orc.tendIn)
		raw := s.Tend.Forward(s.orc.tendZ)
		for i, v := range raw {
			raw[i] = clampAbs(v, maxOutSigma)
		}
		s.TendOut.InvertInto(s.orc.pred, raw)
		s.applyTendencies(in, out, s.orc.pred, c, dt)

		// The diagnostic module (7-layer residual MLP) returns the
		// surface radiation for the land model plus the precipitation
		// rate (the apparent moisture sink alone would be net of
		// surface evaporation).
		radiationInputInto(s.orc.radIn, in, c, nlev)
		s.RadIn.ApplyInto(s.orc.radZ, s.orc.radIn)
		s.RadOut.InvertInto(s.orc.radOut, s.Rad.Forward(s.orc.radZ))
		s.applyRadiation(in, out, s.orc.radOut, c)
	}
}

// applyTendencies writes one column's inverted CNN outputs into Q1/Q2
// with the physical guard rails (do not dry below zero vapor).
func (s *Suite) applyTendencies(in *physics.Input, out *physics.Output, pred []float64, c int, dt float64) {
	nlev := s.NLev
	base := c * nlev
	for k := 0; k < nlev; k++ {
		q1 := pred[k]
		q2 := pred[nlev+k]
		if in.Qv[base+k]+q2*dt < 0 {
			q2 = -in.Qv[base+k] / dt
		}
		out.Q1[base+k] = q1
		out.Q2[base+k] = q2
	}
}

// applyRadiation writes one column's diagnostic-MLP outputs (gsw, glw,
// precip) with the physical guards of §3.2.3.
func (s *Suite) applyRadiation(in *physics.Input, out *physics.Output, r []float64, c int) {
	gsw, glw := r[0], r[1]
	if p := r[2]; p > 0 {
		out.Precip[c] = p
	}
	if gsw < 0 {
		gsw = 0
	}
	if in.CosZ[c] <= 0 {
		gsw = 0 // no insolation at night, regardless of the net
	}
	if glw < 0 {
		glw = 0
	}
	out.Gsw[c] = gsw
	out.Glw[c] = glw
}

// TrainConfig sets the training hyperparameters.
type TrainConfig struct {
	HiddenCNN int
	HiddenMLP int
	Kernel    int
	Epochs    int
	Batch     int
	LR        float64
	Seed      int64
}

// DefaultTrainConfig returns a configuration that trains in seconds on
// test-size data while keeping the paper's architecture shape.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{HiddenCNN: 16, HiddenMLP: 48, Kernel: 3, Epochs: 40, Batch: 32, LR: 2e-3, Seed: 7}
}

// PaperScaleConfig returns the paper-scale architecture (~0.5M CNN
// parameters).
func PaperScaleConfig() TrainConfig {
	c := DefaultTrainConfig()
	c.HiddenCNN = 100
	c.HiddenMLP = 128
	return c
}

// datasetsFromSamples converts coarse training samples into the two
// module datasets.
func datasetsFromSamples(samples []*coarse.Sample, nlev int) (tend, rad *nn.Dataset, tIn, tOut, rIn, rOut [][]float64) {
	tend = &nn.Dataset{}
	rad = &nn.Dataset{}
	for _, s := range samples {
		x := make([]float64, TendencyChannels*nlev)
		copy(x[0*nlev:], s.U)
		copy(x[1*nlev:], s.V)
		copy(x[2*nlev:], s.T)
		copy(x[3*nlev:], s.Q)
		copy(x[4*nlev:], s.P)
		y := make([]float64, TendencyOutputs*nlev)
		copy(y[:nlev], s.Q1)
		copy(y[nlev:], s.Q2)
		tend.Add(x, y)
		tIn = append(tIn, x)
		tOut = append(tOut, y)

		rx := make([]float64, 2*nlev+2)
		copy(rx[:nlev], s.T)
		copy(rx[nlev:], s.Q)
		rx[2*nlev] = s.Tskin
		rx[2*nlev+1] = s.CosZ
		ry := []float64{s.Gsw, s.Glw, s.Precip}
		rad.Add(rx, ry)
		rIn = append(rIn, rx)
		rOut = append(rOut, ry)
	}
	return tend, rad, tIn, tOut, rIn, rOut
}

// Train fits the ML physics suite to training samples and reports the
// final test losses (normalized MSE) of both modules.
func Train(samples, testSamples []*coarse.Sample, nlev int, cfg TrainConfig) (*Suite, float64, float64) {
	if len(samples) == 0 {
		panic("mlphysics: no training samples")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	tendData, radData, tIn, tOut, rIn, rOut := datasetsFromSamples(samples, nlev)
	s := &Suite{
		NLev:    nlev,
		Tend:    nn.NewResUnitCNN(TendencyChannels, cfg.HiddenCNN, TendencyOutputs, nlev, 5, cfg.Kernel, rng),
		Rad:     nn.NewResMLP(2*nlev+2, cfg.HiddenMLP, 3, 7, rng),
		TendIn:  NewNormalizer(tIn),
		TendOut: NewNormalizer(tOut),
		RadIn:   NewNormalizer(rIn),
		RadOut:  NewNormalizer(rOut),
	}
	normalizeDataset(tendData, s.TendIn, s.TendOut)
	normalizeDataset(radData, s.RadIn, s.RadOut)

	optT := nn.NewAdam(cfg.LR)
	optR := nn.NewAdam(cfg.LR)
	for e := 0; e < cfg.Epochs; e++ {
		order := rng.Perm(tendData.Len())
		nn.TrainEpoch(s.Tend, optT, tendData, order, cfg.Batch)
		order = rng.Perm(radData.Len())
		nn.TrainEpoch(s.Rad, optR, radData, order, cfg.Batch)
	}

	testTend, testRad, _, _, _, _ := datasetsFromSamples(testSamples, nlev)
	if testTend.Len() > 0 {
		normalizeDataset(testTend, s.TendIn, s.TendOut)
		normalizeDataset(testRad, s.RadIn, s.RadOut)
		return s, nn.Evaluate(s.Tend, testTend), nn.Evaluate(s.Rad, testRad)
	}
	return s, math.NaN(), math.NaN()
}

func normalizeDataset(d *nn.Dataset, in, out *Normalizer) {
	for i := range d.X {
		d.X[i] = in.Apply(d.X[i])
		d.Y[i] = out.Apply(d.Y[i])
	}
}

// archSpec is the serialized architecture descriptor.
type archSpec struct {
	NLev, HiddenCNN, HiddenMLP, Kernel int
}

// Save writes the suite (architecture, normalizers, weights).
func (s *Suite) Save(w io.Writer, cfg TrainConfig) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(archSpec{s.NLev, cfg.HiddenCNN, cfg.HiddenMLP, cfg.Kernel}); err != nil {
		return err
	}
	for _, nm := range []*Normalizer{s.TendIn, s.TendOut, s.RadIn, s.RadOut} {
		if err := enc.Encode(nm); err != nil {
			return err
		}
	}
	// A single gob encoder must carry the whole stream (decoders read
	// ahead), so parameters are encoded here rather than via nn.Save.
	for _, mod := range []nn.Module{s.Tend, s.Rad} {
		for _, p := range mod.Params() {
			if err := enc.Encode(p.W); err != nil {
				return fmt.Errorf("mlphysics: saving %s: %w", p.Name, err)
			}
		}
	}
	return nil
}

// LoadSuite restores a suite saved by Save.
func LoadSuite(r io.Reader) (*Suite, error) {
	dec := gob.NewDecoder(r)
	var spec archSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("mlphysics: reading arch: %w", err)
	}
	rng := rand.New(rand.NewSource(0))
	s := &Suite{
		NLev: spec.NLev,
		Tend: nn.NewResUnitCNN(TendencyChannels, spec.HiddenCNN, TendencyOutputs, spec.NLev, 5, spec.Kernel, rng),
		Rad:  nn.NewResMLP(2*spec.NLev+2, spec.HiddenMLP, 3, 7, rng),
	}
	for _, nm := range []**Normalizer{&s.TendIn, &s.TendOut, &s.RadIn, &s.RadOut} {
		*nm = &Normalizer{}
		if err := dec.Decode(*nm); err != nil {
			return nil, err
		}
	}
	for _, mod := range []nn.Module{s.Tend, s.Rad} {
		for _, p := range mod.Params() {
			var w []float64
			if err := dec.Decode(&w); err != nil {
				return nil, fmt.Errorf("mlphysics: loading %s: %w", p.Name, err)
			}
			if len(w) != len(p.W) {
				return nil, fmt.Errorf("mlphysics: %s length %d != %d", p.Name, len(w), len(p.W))
			}
			copy(p.W, w)
		}
	}
	return s, nil
}
