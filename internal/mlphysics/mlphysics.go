// Package mlphysics implements the resolution-adaptive ML-based physics
// suite of §3.2: the ML physical tendency module (an 11-layer 1-D CNN
// with five ResUnits predicting the apparent heat source Q1 and moisture
// sink Q2 from the column state), the ML radiation diagnostic module (a
// 7-layer residual MLP predicting surface downward shortwave and
// longwave radiation gsw/glw, with skin temperature and the cosine of
// the solar zenith angle as extra physical inputs), and the conventional
// physics diagnostic module (surface precipitation from the column
// moisture budget). Together they implement the physics.Scheme coupling
// contract, so the dynamical core drives them exactly as it drives the
// conventional suite (§3.2.4).
package mlphysics

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"gristgo/internal/coarse"
	"gristgo/internal/nn"
	"gristgo/internal/physics"
)

// TendencyChannels are the CNN input channels: U, V, T, Q, P (§3.2.4).
const TendencyChannels = 5

// TendencyOutputs are the CNN output channels: Q1 and Q2.
const TendencyOutputs = 2

// maxOutSigma caps network outputs at +/-6 standard deviations of the
// training targets (§3.2.3 stability engineering): the coupled model
// must never receive tendencies outside the envelope the residual data
// ever contained.
const maxOutSigma = 6.0

// clampAbs limits v to [-lim, lim].
func clampAbs(v, lim float64) float64 {
	if v > lim {
		return lim
	}
	if v < -lim {
		return -lim
	}
	return v
}

// Normalizer holds per-feature mean and standard deviation. Features
// with (numerically) zero variance in the training data are "dead":
// they normalize to zero and always invert to their training mean, so
// network noise on a constant target (e.g. the moisture tendency at the
// model top) can never re-enter the model at unit scale.
type Normalizer struct {
	Mean, Std []float64
	Dead      []bool
}

// NewNormalizer computes stats over rows of features.
func NewNormalizer(rows [][]float64) *Normalizer {
	if len(rows) == 0 {
		panic("mlphysics: no rows for normalizer")
	}
	n := len(rows[0])
	nm := &Normalizer{Mean: make([]float64, n), Std: make([]float64, n)}
	for _, r := range rows {
		for i, v := range r {
			nm.Mean[i] += v
		}
	}
	for i := range nm.Mean {
		nm.Mean[i] /= float64(len(rows))
	}
	for _, r := range rows {
		for i, v := range r {
			d := v - nm.Mean[i]
			nm.Std[i] += d * d
		}
	}
	var maxStd float64
	for i := range nm.Std {
		nm.Std[i] = math.Sqrt(nm.Std[i] / float64(len(rows)))
		if nm.Std[i] > maxStd {
			maxStd = nm.Std[i]
		}
	}
	nm.Dead = make([]bool, n)
	for i := range nm.Std {
		if nm.Std[i] < 1e-9*maxStd || nm.Std[i] == 0 {
			nm.Dead[i] = true
			nm.Std[i] = 1 // keep Apply/Invert arithmetic finite
		}
	}
	return nm
}

// Apply returns the normalized copy of x, clipped to +/-5 standard
// deviations: out-of-distribution inputs (possible during coupled
// integration) must not drive the networks into extrapolation regimes —
// part of the stability engineering of §3.2.3.
func (nm *Normalizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if nm.Dead[i] {
			continue // stays 0
		}
		z := (v - nm.Mean[i]) / nm.Std[i]
		if z > 5 {
			z = 5
		} else if z < -5 {
			z = -5
		}
		out[i] = z
	}
	return out
}

// Invert maps a normalized vector back to physical units; dead features
// return their training mean regardless of the network output.
func (nm *Normalizer) Invert(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if nm.Dead[i] {
			out[i] = nm.Mean[i]
			continue
		}
		out[i] = v*nm.Std[i] + nm.Mean[i]
	}
	return out
}

// Suite is the trained ML physics suite.
type Suite struct {
	NLev int

	Tend *nn.Sequential // tendency CNN
	Rad  *nn.Sequential // radiation MLP

	TendIn  *Normalizer // over 5*nlev channel-major features
	TendOut *Normalizer // over 2*nlev targets
	RadIn   *Normalizer // over 2*nlev + 2 features
	RadOut  *Normalizer // over 2 targets
}

// Name implements physics.Scheme.
func (s *Suite) Name() string { return "ML-physics" }

// tendencyInput builds the channel-major CNN input for column c of in.
func tendencyInput(in *physics.Input, c, nlev int) []float64 {
	x := make([]float64, TendencyChannels*nlev)
	base := c * nlev
	for k := 0; k < nlev; k++ {
		x[0*nlev+k] = in.U[base+k]
		x[1*nlev+k] = in.V[base+k]
		x[2*nlev+k] = in.T[base+k]
		x[3*nlev+k] = in.Qv[base+k]
		x[4*nlev+k] = in.P[base+k]
	}
	return x
}

// radiationInput builds the diagnostic-MLP input: T and Q columns plus
// tskin and coszr (§3.2.3).
func radiationInput(in *physics.Input, c, nlev int) []float64 {
	x := make([]float64, 2*nlev+2)
	base := c * nlev
	for k := 0; k < nlev; k++ {
		x[k] = in.T[base+k]
		x[nlev+k] = in.Qv[base+k]
	}
	x[2*nlev] = in.Tskin[c]
	x[2*nlev+1] = in.CosZ[c]
	return x
}

// Compute implements physics.Scheme: per column, the tendency CNN emits
// Q1/Q2, the radiation MLP emits gsw/glw, and the conventional
// diagnostic module closes the surface water budget (precipitation =
// column-integrated apparent drying, floored at zero).
func (s *Suite) Compute(in *physics.Input, out *physics.Output, dt float64) {
	out.Reset()
	nlev := s.NLev
	for c := 0; c < in.NCol; c++ {
		x := s.TendIn.Apply(tendencyInput(in, c, nlev))
		raw := s.Tend.Forward(x)
		for i, v := range raw {
			raw[i] = clampAbs(v, maxOutSigma)
		}
		pred := s.TendOut.Invert(raw)
		base := c * nlev
		var rain float64
		for k := 0; k < nlev; k++ {
			q1 := pred[k]
			q2 := pred[nlev+k]
			// Physical guard rails: do not dry below zero vapor.
			if in.Qv[base+k]+q2*dt < 0 {
				q2 = -in.Qv[base+k] / dt
			}
			out.Q1[base+k] = q1
			out.Q2[base+k] = q2
			rain += -q2 * in.Dpi[base+k]
		}
		_ = rain

		// The diagnostic module (7-layer residual MLP) returns the
		// surface radiation for the land model plus the precipitation
		// rate (the apparent moisture sink alone would be net of
		// surface evaporation).
		r := s.RadOut.Invert(s.Rad.Forward(s.RadIn.Apply(radiationInput(in, c, nlev))))
		gsw, glw := r[0], r[1]
		if p := r[2]; p > 0 {
			out.Precip[c] = p
		}
		if gsw < 0 {
			gsw = 0
		}
		if in.CosZ[c] <= 0 {
			gsw = 0 // no insolation at night, regardless of the net
		}
		if glw < 0 {
			glw = 0
		}
		out.Gsw[c] = gsw
		out.Glw[c] = glw
	}
	// The land surface stays prognostic: reuse the conventional surface
	// scheme's slab update with the ML radiation diagnostics (the
	// coupling of §3.2.3: gsw/glw are provided to the land surface
	// model and surface layer scheme).
	sfc := physics.NewSurface()
	sfc.Compute(in, out, dt)
}

// TrainConfig sets the training hyperparameters.
type TrainConfig struct {
	HiddenCNN int
	HiddenMLP int
	Kernel    int
	Epochs    int
	Batch     int
	LR        float64
	Seed      int64
}

// DefaultTrainConfig returns a configuration that trains in seconds on
// test-size data while keeping the paper's architecture shape.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{HiddenCNN: 16, HiddenMLP: 48, Kernel: 3, Epochs: 40, Batch: 32, LR: 2e-3, Seed: 7}
}

// PaperScaleConfig returns the paper-scale architecture (~0.5M CNN
// parameters).
func PaperScaleConfig() TrainConfig {
	c := DefaultTrainConfig()
	c.HiddenCNN = 100
	c.HiddenMLP = 128
	return c
}

// datasetsFromSamples converts coarse training samples into the two
// module datasets.
func datasetsFromSamples(samples []*coarse.Sample, nlev int) (tend, rad *nn.Dataset, tIn, tOut, rIn, rOut [][]float64) {
	tend = &nn.Dataset{}
	rad = &nn.Dataset{}
	for _, s := range samples {
		x := make([]float64, TendencyChannels*nlev)
		copy(x[0*nlev:], s.U)
		copy(x[1*nlev:], s.V)
		copy(x[2*nlev:], s.T)
		copy(x[3*nlev:], s.Q)
		copy(x[4*nlev:], s.P)
		y := make([]float64, TendencyOutputs*nlev)
		copy(y[:nlev], s.Q1)
		copy(y[nlev:], s.Q2)
		tend.Add(x, y)
		tIn = append(tIn, x)
		tOut = append(tOut, y)

		rx := make([]float64, 2*nlev+2)
		copy(rx[:nlev], s.T)
		copy(rx[nlev:], s.Q)
		rx[2*nlev] = s.Tskin
		rx[2*nlev+1] = s.CosZ
		ry := []float64{s.Gsw, s.Glw, s.Precip}
		rad.Add(rx, ry)
		rIn = append(rIn, rx)
		rOut = append(rOut, ry)
	}
	return tend, rad, tIn, tOut, rIn, rOut
}

// Train fits the ML physics suite to training samples and reports the
// final test losses (normalized MSE) of both modules.
func Train(samples, testSamples []*coarse.Sample, nlev int, cfg TrainConfig) (*Suite, float64, float64) {
	if len(samples) == 0 {
		panic("mlphysics: no training samples")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	tendData, radData, tIn, tOut, rIn, rOut := datasetsFromSamples(samples, nlev)
	s := &Suite{
		NLev:    nlev,
		Tend:    nn.NewResUnitCNN(TendencyChannels, cfg.HiddenCNN, TendencyOutputs, nlev, 5, cfg.Kernel, rng),
		Rad:     nn.NewResMLP(2*nlev+2, cfg.HiddenMLP, 3, 7, rng),
		TendIn:  NewNormalizer(tIn),
		TendOut: NewNormalizer(tOut),
		RadIn:   NewNormalizer(rIn),
		RadOut:  NewNormalizer(rOut),
	}
	normalizeDataset(tendData, s.TendIn, s.TendOut)
	normalizeDataset(radData, s.RadIn, s.RadOut)

	optT := nn.NewAdam(cfg.LR)
	optR := nn.NewAdam(cfg.LR)
	for e := 0; e < cfg.Epochs; e++ {
		order := rng.Perm(tendData.Len())
		nn.TrainEpoch(s.Tend, optT, tendData, order, cfg.Batch)
		order = rng.Perm(radData.Len())
		nn.TrainEpoch(s.Rad, optR, radData, order, cfg.Batch)
	}

	testTend, testRad, _, _, _, _ := datasetsFromSamples(testSamples, nlev)
	if testTend.Len() > 0 {
		normalizeDataset(testTend, s.TendIn, s.TendOut)
		normalizeDataset(testRad, s.RadIn, s.RadOut)
		return s, nn.Evaluate(s.Tend, testTend), nn.Evaluate(s.Rad, testRad)
	}
	return s, math.NaN(), math.NaN()
}

func normalizeDataset(d *nn.Dataset, in, out *Normalizer) {
	for i := range d.X {
		d.X[i] = in.Apply(d.X[i])
		d.Y[i] = out.Apply(d.Y[i])
	}
}

// archSpec is the serialized architecture descriptor.
type archSpec struct {
	NLev, HiddenCNN, HiddenMLP, Kernel int
}

// Save writes the suite (architecture, normalizers, weights).
func (s *Suite) Save(w io.Writer, cfg TrainConfig) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(archSpec{s.NLev, cfg.HiddenCNN, cfg.HiddenMLP, cfg.Kernel}); err != nil {
		return err
	}
	for _, nm := range []*Normalizer{s.TendIn, s.TendOut, s.RadIn, s.RadOut} {
		if err := enc.Encode(nm); err != nil {
			return err
		}
	}
	// A single gob encoder must carry the whole stream (decoders read
	// ahead), so parameters are encoded here rather than via nn.Save.
	for _, mod := range []nn.Module{s.Tend, s.Rad} {
		for _, p := range mod.Params() {
			if err := enc.Encode(p.W); err != nil {
				return fmt.Errorf("mlphysics: saving %s: %w", p.Name, err)
			}
		}
	}
	return nil
}

// LoadSuite restores a suite saved by Save.
func LoadSuite(r io.Reader) (*Suite, error) {
	dec := gob.NewDecoder(r)
	var spec archSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("mlphysics: reading arch: %w", err)
	}
	rng := rand.New(rand.NewSource(0))
	s := &Suite{
		NLev: spec.NLev,
		Tend: nn.NewResUnitCNN(TendencyChannels, spec.HiddenCNN, TendencyOutputs, spec.NLev, 5, spec.Kernel, rng),
		Rad:  nn.NewResMLP(2*spec.NLev+2, spec.HiddenMLP, 3, 7, rng),
	}
	for _, nm := range []**Normalizer{&s.TendIn, &s.TendOut, &s.RadIn, &s.RadOut} {
		*nm = &Normalizer{}
		if err := dec.Decode(*nm); err != nil {
			return nil, err
		}
	}
	for _, mod := range []nn.Module{s.Tend, s.Rad} {
		for _, p := range mod.Params() {
			var w []float64
			if err := dec.Decode(&w); err != nil {
				return nil, fmt.Errorf("mlphysics: loading %s: %w", p.Name, err)
			}
			if len(w) != len(p.W) {
				return nil, fmt.Errorf("mlphysics: %s length %d != %d", p.Name, len(w), len(p.W))
			}
			copy(p.W, w)
		}
	}
	return s, nil
}
