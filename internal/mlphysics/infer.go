package mlphysics

// Batched inference path: Suite.Compute routes its columns through the
// internal/infer engine (plan compilation, im2col + blocked GEMM, arena
// buffers, worker sharding) instead of the per-column nn.Forward loop.
// The scalar loop survives as the parity oracle behind SetScalarOracle.

import (
	"time"

	"gristgo/internal/infer"
	"gristgo/internal/physics"
	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// engineState holds a Suite's compiled inference engines and the batched
// I/O matrices. Engines compile lazily on the first batched Compute so
// that freshly trained or loaded suites pay nothing until used, and the
// FP32 pair is only built when mixed precision is requested.
type engineState struct {
	workers int
	mode    precision.Mode
	scalar  bool

	// Telemetry passthrough, applied to engines as they are built.
	rec *telemetry.Recorder
	reg *telemetry.Registry

	tend64, rad64 *infer.Engine[float64]
	tend32, rad32 *infer.Engine[float32]

	xT, yT []float64 // tendency batch: NCol x (5*nlev) in, NCol x (2*nlev) out
	xR, yR []float64 // radiation batch: NCol x (2*nlev+2) in, NCol x 3 out

	// Degradation state (fallback.go): an injected output corruption
	// hook, the number of Compute calls still forced onto the scalar
	// oracle, and the lifetime fallback count.
	faultFn     func(tend, rad []float64)
	degradeLeft int
	fallbacks   int64
}

// SetWorkers sets the inference worker-pool width (0 or 1 serial,
// negative = GOMAXPROCS), the mlphysics end of core.Config.HostWorkers.
func (s *Suite) SetWorkers(n int) {
	s.inf.workers = n
	for _, e := range []*infer.Engine[float64]{s.inf.tend64, s.inf.rad64} {
		if e != nil {
			e.SetWorkers(n)
		}
	}
	for _, e := range []*infer.Engine[float32]{s.inf.tend32, s.inf.rad32} {
		if e != nil {
			e.SetWorkers(n)
		}
	}
}

// SetTelemetry attaches observability to the suite's inference engines
// (spans into rec, batch metrics into reg — see infer.SetTelemetry).
// Applies to engines already compiled and to any compiled later.
func (s *Suite) SetTelemetry(rec *telemetry.Recorder, reg *telemetry.Registry) {
	s.inf.rec, s.inf.reg = rec, reg
	s.applyTelemetry()
}

// applyTelemetry pushes the stored telemetry sinks onto every existing
// engine.
func (s *Suite) applyTelemetry() {
	if s.inf.tend64 != nil {
		s.inf.tend64.SetTelemetry(s.inf.rec, s.inf.reg, "tendency")
		s.inf.rad64.SetTelemetry(s.inf.rec, s.inf.reg, "radiation")
	}
	if s.inf.tend32 != nil {
		s.inf.tend32.SetTelemetry(s.inf.rec, s.inf.reg, "tendency")
		s.inf.rad32.SetTelemetry(s.inf.rec, s.inf.reg, "radiation")
	}
}

// SetPrecision selects the inference plan: precision.DP runs the FP64
// plan (bit-identical to the scalar oracle), precision.Mixed runs the
// FP32 plan with weights quantized once at compile time (§3.4 applied to
// the NN stack; validated by relative-L2 under the 5% threshold).
func (s *Suite) SetPrecision(m precision.Mode) { s.inf.mode = m }

// SetScalarOracle routes Compute through the per-column nn.Forward
// reference path (true) or the batched engine (false, the default).
func (s *Suite) SetScalarOracle(on bool) { s.inf.scalar = on }

// normSpec adapts a Normalizer to the infer package (which cannot import
// mlphysics) as plain statistic slices.
func normSpec(nm *Normalizer) *infer.NormSpec {
	return &infer.NormSpec{Mean: nm.Mean, Std: nm.Std, Dead: nm.Dead}
}

// ensureEngines compiles the plans for the active precision mode and
// sizes the batch matrices for ncol columns.
func (s *Suite) ensureEngines(ncol int) {
	nlev := s.NLev
	tendOpt := infer.Options{
		In: normSpec(s.TendIn), InClip: inputClip,
		Out: normSpec(s.TendOut), OutClamp: maxOutSigma,
	}
	// No OutClamp here: the scalar oracle only clamps the tendency CNN's
	// raw outputs, and the plans must match it bit for bit.
	radOpt := infer.Options{
		In: normSpec(s.RadIn), InClip: inputClip,
		Out: normSpec(s.RadOut),
	}
	if s.inf.mode == precision.Mixed {
		if s.inf.tend32 == nil {
			s.inf.tend32 = infer.NewEngine(infer.MustCompile[float32](s.Tend, tendOpt), s.inf.workers)
			s.inf.rad32 = infer.NewEngine(infer.MustCompile[float32](s.Rad, radOpt), s.inf.workers)
			s.applyTelemetry()
		}
	} else if s.inf.tend64 == nil {
		s.inf.tend64 = infer.NewEngine(infer.MustCompile[float64](s.Tend, tendOpt), s.inf.workers)
		s.inf.rad64 = infer.NewEngine(infer.MustCompile[float64](s.Rad, radOpt), s.inf.workers)
		s.applyTelemetry()
	}
	if n := ncol * TendencyChannels * nlev; len(s.inf.xT) < n {
		s.inf.xT = make([]float64, n)
	}
	if n := ncol * TendencyOutputs * nlev; len(s.inf.yT) < n {
		s.inf.yT = make([]float64, n)
	}
	if n := ncol * (2*nlev + 2); len(s.inf.xR) < n {
		s.inf.xR = make([]float64, n)
	}
	if n := ncol * RadiationOutputs; len(s.inf.yR) < n {
		s.inf.yR = make([]float64, n)
	}
}

// computeBatched fills the batch matrices from the physics input, runs
// both engines over all columns at once, and applies the identical
// per-column postprocessing (vapor guard, radiation clamps) as the
// scalar oracle. It reports whether the raw engine outputs were all
// finite; on false nothing has been written to out and the caller must
// recompute through the scalar oracle (fallback.go).
func (s *Suite) computeBatched(in *physics.Input, out *physics.Output, dt float64) bool {
	nlev := s.NLev
	ncol := in.NCol
	if ncol == 0 {
		return true
	}
	s.ensureEngines(ncol)

	tin := TendencyChannels * nlev
	rin := 2*nlev + 2
	for c := 0; c < ncol; c++ {
		tendencyInputInto(s.inf.xT[c*tin:(c+1)*tin], in, c, nlev)
		radiationInputInto(s.inf.xR[c*rin:(c+1)*rin], in, c, nlev)
	}
	if s.inf.mode == precision.Mixed {
		s.inf.tend32.Forward(s.inf.yT, s.inf.xT, ncol)
		s.inf.rad32.Forward(s.inf.yR, s.inf.xR, ncol)
	} else {
		s.inf.tend64.Forward(s.inf.yT, s.inf.xT, ncol)
		s.inf.rad64.Forward(s.inf.yR, s.inf.xR, ncol)
	}

	tout := TendencyOutputs * nlev
	yT, yR := s.inf.yT[:ncol*tout], s.inf.yR[:ncol*RadiationOutputs]
	if s.inf.faultFn != nil {
		s.inf.faultFn(yT, yR)
	}
	if !allFinite(yT) || !allFinite(yR) {
		return false
	}
	for c := 0; c < ncol; c++ {
		s.applyTendencies(in, out, yT[c*tout:(c+1)*tout], c, dt)
		s.applyRadiation(in, out, yR[c*RadiationOutputs:(c+1)*RadiationOutputs], c)
	}
	return true
}

// DrainTimings reports and resets the engines' accumulated inference
// timings via emit (component name, wall time, call count). core's
// timing report collects these through its ComponentTimer interface, and
// perfmodel.MLEffFromThroughput turns the same numbers into a measured
// ML-suite efficiency.
func (s *Suite) DrainTimings(emit func(name string, d time.Duration, calls int)) {
	drain64 := func(name string, e *infer.Engine[float64]) {
		if e == nil {
			return
		}
		if st := e.DrainStats(); st.Calls > 0 {
			emit(name, st.Elapsed, st.Calls)
		}
	}
	drain32 := func(name string, e *infer.Engine[float32]) {
		if e == nil {
			return
		}
		if st := e.DrainStats(); st.Calls > 0 {
			emit(name, st.Elapsed, st.Calls)
		}
	}
	drain64("ml_tendency_infer", s.inf.tend64)
	drain64("ml_radiation_infer", s.inf.rad64)
	drain32("ml_tendency_infer_fp32", s.inf.tend32)
	drain32("ml_radiation_infer_fp32", s.inf.rad32)
}
