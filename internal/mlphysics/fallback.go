package mlphysics

// Sentinel-driven graceful degradation (the resilience layer's answer
// to a misbehaving accelerator): every batched Compute scans the raw
// engine outputs for NaN/Inf before they touch the physics output, and
// a poisoned batch is discarded and recomputed through the per-column
// FP64 scalar oracle — the slow-but-trusted path. A health monitor
// that trips (mass budget, non-finite prognostics) can additionally
// force whole steps onto the oracle via DegradeFor. Both degradations
// are counted in grist_physics_fallback_total{reason}, so a run that
// quietly limps on conventional arithmetic is visible in telemetry
// rather than just slow.

import "math"

// SetOutputFault installs a hook that may corrupt the raw batched
// inference outputs (tendency and radiation batch matrices) before the
// non-finite guard sees them. It exists for fault injection — see
// fault.MLOutputFault — and is never set in production. A nil hook
// removes it.
func (s *Suite) SetOutputFault(f func(tend, rad []float64)) { s.inf.faultFn = f }

// DegradeFor forces the next n Compute calls through the scalar FP64
// oracle regardless of the configured engine path, counting each as a
// "sentinel" fallback. Drivers call this when a health sentinel trips:
// the suspect accelerator path is benched for a step while the trusted
// path keeps the simulation moving.
func (s *Suite) DegradeFor(n int) {
	if n > s.inf.degradeLeft {
		s.inf.degradeLeft = n
	}
}

// FallbackCount returns how many Compute calls fell back to the scalar
// oracle (for any reason) over the suite's lifetime.
func (s *Suite) FallbackCount() int64 { return s.inf.fallbacks }

// noteFallback counts one scalar-oracle fallback locally and, when a
// registry is attached, in grist_physics_fallback_total{reason}.
func (s *Suite) noteFallback(reason string) {
	s.inf.fallbacks++
	if s.inf.reg != nil {
		s.inf.reg.Counter("grist_physics_fallback_total", "reason", reason).Inc()
	}
}

// allFinite reports whether xs is free of NaN and Inf.
func allFinite(xs []float64) bool {
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
