package mlphysics

import (
	"math"
	"testing"

	"gristgo/internal/fault"
	"gristgo/internal/physics"
	"gristgo/internal/telemetry"
)

// outputFinite asserts no NaN/Inf in any field the dynamics consumes.
func outputFinite(t *testing.T, out *physics.Output) {
	t.Helper()
	for name, xs := range map[string][]float64{
		"Q1": out.Q1, "Q2": out.Q2, "Gsw": out.Gsw, "Glw": out.Glw, "Precip": out.Precip,
	} {
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s[%d] = %v reached the physics output", name, i, v)
			}
		}
	}
}

// TestNaNOutputFallsBackToScalar: an injected NaN in the raw batched
// inference output must trigger the scalar-oracle fallback — the
// corrupted batch never reaches the prognostic state, the step matches
// the oracle bitwise, and the fallback is counted with reason
// "nonfinite".
func TestNaNOutputFallsBackToScalar(t *testing.T) {
	nlev := 6
	suite := trainedSuite(t, nlev, 41)
	reg := telemetry.NewRegistry()
	suite.SetTelemetry(nil, reg)
	const ncol = 19
	in := physInput(ncol, nlev)
	tskin0 := append([]float64(nil), in.Tskin...)

	ref := physics.NewOutput(ncol, nlev)
	suite.SetScalarOracle(true)
	suite.Compute(in, ref, 600)
	suite.SetScalarOracle(false)

	// Corrupt the second batched Compute call.
	suite.SetOutputFault(fault.MLOutputFault(5, 2))
	for call := 1; call <= 3; call++ {
		copy(in.Tskin, tskin0)
		got := physics.NewOutput(ncol, nlev)
		suite.Compute(in, got, 600)
		outputFinite(t, got)
		for i := range ref.Q1 {
			if got.Q1[i] != ref.Q1[i] || got.Q2[i] != ref.Q2[i] {
				t.Fatalf("call %d: output diverges from oracle at %d", call, i)
			}
		}
	}
	if n := suite.FallbackCount(); n != 1 {
		t.Fatalf("FallbackCount = %d, want 1 (only the corrupted call)", n)
	}
	if n := reg.Counter("grist_physics_fallback_total", "reason", "nonfinite").Value(); n != 1 {
		t.Fatalf("grist_physics_fallback_total{reason=nonfinite} = %d, want 1", n)
	}
	suite.SetOutputFault(nil)
}

// TestDegradeForForcesScalar: DegradeFor(n) benches the batched engine
// for exactly n Compute calls, each counted as a "sentinel" fallback.
func TestDegradeForForcesScalar(t *testing.T) {
	nlev := 6
	suite := trainedSuite(t, nlev, 43)
	reg := telemetry.NewRegistry()
	suite.SetTelemetry(nil, reg)
	const ncol = 7
	in := physInput(ncol, nlev)
	tskin0 := append([]float64(nil), in.Tskin...)

	// Poison every batched call: if the degraded steps ever touched the
	// engine, the fault hook would fire and the nonfinite counter would
	// move.
	suite.SetOutputFault(func(tend, rad []float64) { tend[0] = math.NaN() })

	suite.DegradeFor(2)
	for call := 0; call < 2; call++ {
		copy(in.Tskin, tskin0)
		out := physics.NewOutput(ncol, nlev)
		suite.Compute(in, out, 600)
		outputFinite(t, out)
	}
	if n := reg.Counter("grist_physics_fallback_total", "reason", "sentinel").Value(); n != 2 {
		t.Fatalf("sentinel fallbacks = %d, want 2", n)
	}
	if n := reg.Counter("grist_physics_fallback_total", "reason", "nonfinite").Value(); n != 0 {
		t.Fatalf("degraded steps ran the batched engine (%d nonfinite fallbacks)", n)
	}

	// Degradation expired: the next call runs batched again and hits the
	// poisoned hook.
	copy(in.Tskin, tskin0)
	out := physics.NewOutput(ncol, nlev)
	suite.Compute(in, out, 600)
	outputFinite(t, out)
	if n := reg.Counter("grist_physics_fallback_total", "reason", "nonfinite").Value(); n != 1 {
		t.Fatalf("post-degradation call did not run batched (nonfinite = %d, want 1)", n)
	}
	if n := suite.FallbackCount(); n != 3 {
		t.Fatalf("FallbackCount = %d, want 3", n)
	}
}
