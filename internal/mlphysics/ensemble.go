package mlphysics

import (
	"time"

	"gristgo/internal/coarse"
	"gristgo/internal/physics"
	"gristgo/internal/precision"
)

// Ensemble averages the outputs of several independently trained ML
// suites. The paper builds on Han et al. (2023), "An ensemble of neural
// networks for moist physics processes, its generalizability and stable
// integration": averaging decorrelated network errors damps the coupled
// feedback loops that destabilize single-network parameterizations.
type Ensemble struct {
	Members []*Suite
	scratch *physics.Output
}

// NewEnsemble wraps trained member suites (all must share NLev).
func NewEnsemble(members ...*Suite) *Ensemble {
	if len(members) == 0 {
		panic("mlphysics: empty ensemble")
	}
	for _, m := range members[1:] {
		if m.NLev != members[0].NLev {
			panic("mlphysics: ensemble members disagree on NLev")
		}
	}
	return &Ensemble{Members: members}
}

// Name implements physics.Scheme.
func (e *Ensemble) Name() string { return "ML-physics-ensemble" }

// NLev returns the members' layer count.
func (e *Ensemble) NLev() int { return e.Members[0].NLev }

// SetWorkers propagates the inference worker-pool width to every member.
func (e *Ensemble) SetWorkers(n int) {
	for _, m := range e.Members {
		m.SetWorkers(n)
	}
}

// SetPrecision propagates the inference precision mode to every member.
func (e *Ensemble) SetPrecision(mode precision.Mode) {
	for _, m := range e.Members {
		m.SetPrecision(mode)
	}
}

// SetScalarOracle propagates the scalar-oracle switch to every member.
func (e *Ensemble) SetScalarOracle(on bool) {
	for _, m := range e.Members {
		m.SetScalarOracle(on)
	}
}

// DrainTimings drains every member's inference timings through emit.
func (e *Ensemble) DrainTimings(emit func(name string, d time.Duration, calls int)) {
	for _, m := range e.Members {
		m.DrainTimings(emit)
	}
}

// Compute implements physics.Scheme by averaging member outputs. The
// members' own surface-slab updates are suppressed (they would each
// advance Tskin); the slab runs once on the averaged radiation.
func (e *Ensemble) Compute(in *physics.Input, out *physics.Output, dt float64) {
	out.Reset()
	if e.scratch == nil || len(e.scratch.Q1) != len(out.Q1) {
		e.scratch = physics.NewOutput(in.NCol, in.NLev)
	}
	// Preserve the skin temperature across member calls: each member's
	// Compute runs the slab update, which must not compound.
	tskin0 := append([]float64(nil), in.Tskin...)
	inv := 1.0 / float64(len(e.Members))
	for _, mem := range e.Members {
		copy(in.Tskin, tskin0)
		mem.Compute(in, e.scratch, dt)
		for i := range out.Q1 {
			out.Q1[i] += inv * e.scratch.Q1[i]
			out.Q2[i] += inv * e.scratch.Q2[i]
		}
		for c := range out.Gsw {
			out.Gsw[c] += inv * e.scratch.Gsw[c]
			out.Glw[c] += inv * e.scratch.Glw[c]
			out.Precip[c] += inv * e.scratch.Precip[c]
		}
	}
	// One slab update with the ensemble-mean radiation. The members'
	// averaged Q1/Q2 already include the surface fluxes, so the update
	// runs on a scratch output: only the Tskin side effect is kept.
	copy(in.Tskin, tskin0)
	e.scratch.Reset()
	copy(e.scratch.Gsw, out.Gsw)
	copy(e.scratch.Glw, out.Glw)
	physics.NewSurface().Compute(in, e.scratch, dt)
}

// TrainEnsemble trains size members on the same data with different
// initialization/shuffling seeds and returns the ensemble plus the mean
// member test losses.
func TrainEnsemble(samples, testSamples []*coarse.Sample, nlev, size int, cfg TrainConfig) (*Ensemble, float64, float64) {
	var members []*Suite
	var sumT, sumR float64
	for i := 0; i < size; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1009
		s, lt, lr := Train(samples, testSamples, nlev, c)
		members = append(members, s)
		sumT += lt
		sumR += lr
	}
	return NewEnsemble(members...), sumT / float64(size), sumR / float64(size)
}
