package dycore

import (
	"testing"

	"gristgo/internal/mesh"
	"gristgo/internal/precision"
)

// ringOwned builds a plausible OwnedSets from a cell predicate: owned
// cells, their one-ring diagnostic halo, the edges of the diagnostic
// region, and owned edges (lower-id adjacent cell owns the edge) — the
// same shape core.DistPlan produces, without importing core.
func ringOwned(m *mesh.Mesh, pick func(c int32) bool) *OwnedSets {
	o := &OwnedSets{}
	owned := make([]bool, m.NCells)
	for c := int32(0); c < int32(m.NCells); c++ {
		if pick(c) {
			o.TendCells = append(o.TendCells, c)
			owned[c] = true
		}
	}
	diag := make([]bool, m.NCells)
	for _, c := range o.TendCells {
		diag[c] = true
		for k := m.CellOff[c]; k < m.CellOff[c+1]; k++ {
			if n := m.CellCell[k]; n >= 0 {
				diag[n] = true
			}
		}
	}
	for c := int32(0); c < int32(m.NCells); c++ {
		if diag[c] {
			o.DiagCells = append(o.DiagCells, c)
		}
	}
	edgeIn := make([]bool, m.NEdges)
	for _, c := range o.DiagCells {
		for k := m.CellOff[c]; k < m.CellOff[c+1]; k++ {
			edgeIn[m.CellEdge[k]] = true
		}
	}
	for e := int32(0); e < int32(m.NEdges); e++ {
		if edgeIn[e] {
			o.FluxEdges = append(o.FluxEdges, e)
		}
		a, b := m.EdgeCell[e][0], m.EdgeCell[e][1]
		own := a
		if b >= 0 && b < a {
			own = b
		}
		if owned[own] {
			o.UEdges = append(o.UEdges, e)
		}
	}
	return o
}

func sameIDs(t *testing.T, name string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d ids, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
}

// Re-invoking SetOwned must rebuild the interior/boundary split sets
// for the NEW ownership, identically to a fresh engine constructed with
// that ownership — the property the elastic runners lean on when they
// rebind a live engine to a repartitioned decomposition.
func TestSetOwnedRebuildsSplitSets(t *testing.T) {
	m := testMesh(t, 3)
	nlev := 3

	oA := ringOwned(m, func(c int32) bool { return c < int32(m.NCells)/2 })
	oB := ringOwned(m, func(c int32) bool { return c%3 == 0 })

	rebound := New(m, nlev, precision.DP).(*engine[float64])
	rebound.SetOwned(oA)
	if rebound.split == nil {
		t.Fatal("SetOwned(A) built no split sets")
	}
	rebound.SetOwned(oB)

	fresh := New(m, nlev, precision.DP).(*engine[float64])
	fresh.SetOwned(oB)

	got, want := rebound.split, fresh.split
	if got == nil || want == nil {
		t.Fatal("split sets missing after SetOwned(B)")
	}
	sameIDs(t, "diagInt", got.diagInt, want.diagInt)
	sameIDs(t, "diagBnd", got.diagBnd, want.diagBnd)
	sameIDs(t, "fluxInt", got.fluxInt, want.fluxInt)
	sameIDs(t, "fluxBnd", got.fluxBnd, want.fluxBnd)
	sameIDs(t, "vertInt", got.vertInt, want.vertInt)
	sameIDs(t, "vertBnd", got.vertBnd, want.vertBnd)
	sameIDs(t, "vtanInt", got.vtanInt, want.vtanInt)
	sameIDs(t, "vtanBnd", got.vtanBnd, want.vtanBnd)
	sameIDs(t, "tendInt", got.tendInt, want.tendInt)
	sameIDs(t, "tendBnd", got.tendBnd, want.tendBnd)
	sameIDs(t, "uInt", got.uInt, want.uInt)
	sameIDs(t, "uBnd", got.uBnd, want.uBnd)

	// And the split must actually have changed shape between A and B —
	// otherwise the rebind test is vacuous.
	reboundA := New(m, nlev, precision.DP).(*engine[float64])
	reboundA.SetOwned(oA)
	if len(reboundA.split.tendInt) == len(got.tendInt) && len(reboundA.split.tendBnd) == len(got.tendBnd) {
		t.Fatal("ownership A and B produced identical split shapes; pick different predicates")
	}

	// Clearing ownership drops the split entirely (serial mode).
	rebound.SetOwned(nil)
	if rebound.split != nil || rebound.owned != nil {
		t.Fatal("SetOwned(nil) did not clear the ownership split")
	}
}
