package dycore

import (
	"math"

	"gristgo/internal/mesh"
)

// This file provides the idealized initial states of the paper's §3.4.2
// mixed-precision test hierarchy: "idealized tropical cyclone, supercell,
// baroclinic waves" — each a standard dynamical-core test case reduced to
// the ingredients that exercise the corresponding terms of the solver.

// IdealizedCase names one member of the §3.4.2 hierarchy.
type IdealizedCase int

const (
	// CaseTropicalCyclone is a warm-core vortex on an f-plane-like
	// background (exercises the rotational terms and vortex dynamics).
	CaseTropicalCyclone IdealizedCase = iota
	// CaseSupercell is a strong low-level thermal in shear (exercises
	// the nonhydrostatic vertical solver and buoyant updrafts).
	CaseSupercell
	// CaseBaroclinicWave is a mid-latitude jet with a small upstream
	// perturbation that grows baroclinically (exercises the pressure
	// gradient and thermal-wind balance).
	CaseBaroclinicWave
)

var idealizedNames = map[IdealizedCase]string{
	CaseTropicalCyclone: "tropical_cyclone",
	CaseSupercell:       "supercell",
	CaseBaroclinicWave:  "baroclinic_wave",
}

func (c IdealizedCase) String() string { return idealizedNames[c] }

// AllIdealizedCases lists the §3.4.2 hierarchy.
func AllIdealizedCases() []IdealizedCase {
	return []IdealizedCase{CaseTropicalCyclone, CaseSupercell, CaseBaroclinicWave}
}

// InitIdealized fills the state with the chosen idealized case.
func (s *State) InitIdealized(c IdealizedCase) {
	switch c {
	case CaseTropicalCyclone:
		s.IsothermalRest(300)
		s.AddVortex(0.35, 2.0, 35, 0.06)
	case CaseSupercell:
		s.IsothermalRest(300)
		// Strong near-surface thermal plus unidirectional shear.
		s.AddThermalBubble(0.1, 1.0, 0.12, 12)
		s.addShearWind(5, 25)
	case CaseBaroclinicWave:
		s.initBaroclinicWave()
	}
}

// addShearWind adds a zonal wind increasing linearly from uBot at the
// surface to uTop at the model top.
func (s *State) addShearWind(uBot, uTop float64) {
	m := s.M
	for e := 0; e < m.NEdges; e++ {
		lat, _ := m.EdgePos[e].LatLon()
		east, _ := mesh.TangentBasis(m.EdgePos[e])
		for k := 0; k < s.NLev; k++ {
			frac := 1 - (float64(k)+0.5)/float64(s.NLev) // 1 at top
			u := uBot + (uTop-uBot)*frac
			s.U[e*s.NLev+k] += east.Scale(u * math.Cos(lat)).Dot(m.EdgeNormal[e])
		}
	}
}

// initBaroclinicWave builds a zonally symmetric mid-latitude state in
// approximate thermal-wind balance (a reduced Jablonowski-Williamson
// setup) and adds the standard small Gaussian zonal-wind perturbation
// that seeds the growing wave.
func (s *State) initBaroclinicWave() {
	m := s.M
	nlev := s.NLev
	const psfc = 1.0e5
	dpi := (psfc - PTop) / float64(nlev)

	// Meridional temperature structure: warm tropics, cold poles, with
	// the gradient concentrated in mid-latitudes.
	surfT := func(lat float64) float64 {
		return 305 - 35*math.Pow(math.Sin(lat), 2)
	}
	for c := 0; c < m.NCells; c++ {
		lat := m.CellLat[c]
		t0 := surfT(lat)
		s.PhiSurf[c] = 0
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			p := PTop + (float64(k)+0.5)*dpi
			tK := t0 - 48.75*math.Log(psfc/p) // ~6.5 K/km
			if tK < 200 {
				tK = 200
			}
			s.DryMass[i] = dpi
			s.ThetaM[i] = dpi * tK * math.Pow(P0/p, Rd/Cp)
		}
	}
	HydrostaticRebalance(s)

	// Zonal jet in approximate balance with the temperature field.
	for e := 0; e < m.NEdges; e++ {
		lat, lon := m.EdgePos[e].LatLon()
		east, _ := mesh.TangentBasis(m.EdgePos[e])
		jet := 38 * math.Exp(-math.Pow((math.Abs(lat)-0.78)/0.25, 2)) // ~45 deg
		for k := 0; k < nlev; k++ {
			height := 1 - (float64(k)+0.5)/float64(nlev)
			u := jet * height
			// Perturbation: small Gaussian bump upstream (JW06-style).
			d := mesh.ArcLength(m.EdgePos[e], mesh.FromLatLon(0.70, 0.35))
			u += 1.5 * math.Exp(-math.Pow(d/0.1, 2))
			_ = lon
			s.U[e*nlev+k] += east.Scale(u * math.Cos(lat)).Dot(m.EdgeNormal[e])
		}
	}
}

// TotalEnergy returns the (dry) total energy integral: internal +
// potential + kinetic, J. Conserved approximately by the adiabatic
// solver; a useful regression diagnostic.
func (s *State) TotalEnergy() float64 {
	m := s.M
	nlev := s.NLev
	var total float64

	// Kinetic energy from the TRiSK cell formula.
	ke := make([]float64, m.NCells*nlev)
	for c := int32(0); c < int32(m.NCells); c++ {
		inv := 1.0 / m.CellArea[c]
		for kk := m.CellOff[c]; kk < m.CellOff[c+1]; kk++ {
			e := m.CellEdge[kk]
			w := 0.25 * m.DvEdge[e] * m.DcEdge[e] * inv
			for k := 0; k < nlev; k++ {
				u := s.U[int(e)*nlev+k]
				ke[int(c)*nlev+k] += w * u * u
			}
		}
	}
	for c := 0; c < m.NCells; c++ {
		area := m.CellArea[c]
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			mass := s.DryMass[i] / Gravity // kg/m^2
			theta := s.ThetaM[i] / s.DryMass[i]
			pMid := s.LayerPressureFromPhi(c, k)
			tK := theta * math.Pow(pMid/P0, Rd/Cp)
			phiMid := 0.5 * (s.Phi[c*(nlev+1)+k] + s.Phi[c*(nlev+1)+k+1])
			wMid := 0.5 * (s.W[c*(nlev+1)+k] + s.W[c*(nlev+1)+k+1])
			total += area * mass * (Cv*tK + phiMid + ke[i] + 0.5*wMid*wMid)
		}
	}
	return total
}

// MaxWind returns the maximum |u| over all edges and levels.
func (s *State) MaxWind() float64 {
	var m float64
	for _, u := range s.U {
		if a := math.Abs(u); a > m {
			m = a
		}
	}
	return m
}
