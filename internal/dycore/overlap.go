package dycore

import "gristgo/internal/mesh"

// splitSets partitions one rank's entity sets into an exchange-
// independent interior and an exchange-dependent boundary, so a stage
// can run Start() → interior compute → Finish() → boundary compute and
// overlap the halo round-trip with useful work.
//
// An entity is "boundary" when the dependency cone of its tendency
// touches data refreshed by the halo exchange: state at halo cells, or
// normal winds at ghost edges. The cone is at most two hops deep (a
// tendency reads diagnostic intermediates, which read state one ring
// out), so the classification follows from OwnedSets plus the mesh
// one-ring, computed once at SetOwned time.
type splitSets struct {
	diagAll, diagInt, diagBnd []int32 // cells of diagnostic kernels (rrr, ke)
	fluxAll, fluxInt, fluxBnd []int32 // edges of the mass-flux kernel
	vertAll, vertInt, vertBnd []int32 // dual vertices of the vorticity kernel
	vtanAll, vtanInt, vtanBnd []int32 // edges of the TRiSK tangential kernel
	tendAll, tendInt, tendBnd []int32 // cells of continuity/thermo tendencies
	uAll, uInt, uBnd          []int32 // edges of the momentum tendency
}

// nonNil maps a nil id list to an empty one: in split mode every kernel
// iterates an explicit list, and nil means "every entity" to the
// iteration helpers.
func nonNil(ids []int32) []int32 {
	if ids == nil {
		return []int32{}
	}
	return ids
}

// partition splits ids by the taint predicate into (interior, boundary).
func partition(ids []int32, tainted func(int32) bool) (in, bnd []int32) {
	in = make([]int32, 0, len(ids))
	bnd = make([]int32, 0, len(ids))
	for _, id := range ids {
		if tainted(id) {
			bnd = append(bnd, id)
		} else {
			in = append(in, id)
		}
	}
	return in, bnd
}

// buildSplit derives the interior/boundary partition of every stage
// loop from the ownership sets.
func buildSplit(m *mesh.Mesh, o *OwnedSets) *splitSets {
	owned := make([]bool, m.NCells)
	for _, c := range o.TendCells {
		owned[c] = true
	}
	// Halo cells: diagnostic region cells owned by peers — their state
	// arrives via the exchange.
	halo := make([]bool, m.NCells)
	for _, c := range o.DiagCells {
		if !owned[c] {
			halo[c] = true
		}
	}
	ownedEdge := make([]bool, m.NEdges)
	for _, e := range o.UEdges {
		ownedEdge[e] = true
	}
	// Ghost edges: edges of the diagnostic region whose normal wind
	// arrives via the exchange.
	ghost := make([]bool, m.NEdges)
	for _, c := range o.DiagCells {
		for _, e := range m.CellEdges(c) {
			if !ownedEdge[e] {
				ghost[e] = true
			}
		}
	}

	// Taint predicates: does the entity's kernel read exchanged data,
	// directly or through a diagnostic intermediate?
	cellTaint := func(c int32) bool {
		// rrr/pressure read state at c; kinetic energy reads U at the
		// cell's edges; divAt (diffusion) likewise.
		if halo[c] {
			return true
		}
		for _, e := range m.CellEdges(c) {
			if ghost[e] {
				return true
			}
		}
		return false
	}
	fluxTaint := func(ed int32) bool {
		// Edge reconstruction reads state at both adjacent cells and U
		// at the edge itself.
		return ghost[ed] || halo[m.EdgeCell[ed][0]] || halo[m.EdgeCell[ed][1]]
	}
	vertTaint := func(v int32) bool {
		for j := 0; j < 3; j++ {
			if ghost[m.VertEdge[v][j]] {
				return true
			}
		}
		return false
	}
	vtanTaint := func(ed int32) bool {
		for j := m.TrskOff[ed]; j < m.TrskOff[ed+1]; j++ {
			if ghost[m.TrskEdge[j]] {
				return true
			}
		}
		return false
	}

	sp := &splitSets{
		diagAll: nonNil(o.DiagCells),
		fluxAll: nonNil(o.FluxEdges),
		tendAll: nonNil(o.TendCells),
		uAll:    nonNil(o.UEdges),
	}
	// Vorticity and tangential winds are consumed only at the owned
	// momentum edges, so their loops run over the verts of those edges
	// and the edges themselves (the full-mesh sweep of the serial
	// engine would read stale winds far from this rank's domain).
	sp.vtanAll = sp.uAll
	vertSeen := make([]bool, m.NVerts)
	for _, ed := range sp.uAll {
		for j := 0; j < 2; j++ {
			if v := m.EdgeVert[ed][j]; !vertSeen[v] {
				vertSeen[v] = true
				sp.vertAll = append(sp.vertAll, v)
			}
		}
	}
	sp.vertAll = nonNil(sp.vertAll)

	sp.diagInt, sp.diagBnd = partition(sp.diagAll, cellTaint)
	sp.fluxInt, sp.fluxBnd = partition(sp.fluxAll, fluxTaint)
	sp.vertInt, sp.vertBnd = partition(sp.vertAll, vertTaint)
	sp.vtanInt, sp.vtanBnd = partition(sp.vtanAll, vtanTaint)
	// Continuity at an owned cell reads flux and theta at its edges.
	sp.tendInt, sp.tendBnd = partition(sp.tendAll, func(c int32) bool {
		for _, e := range m.CellEdges(c) {
			if fluxTaint(e) {
				return true
			}
		}
		return false
	})
	// Momentum at an owned edge reads diagnostics at both adjacent
	// cells, vorticity at both end vertices, and its tangential wind.
	sp.uInt, sp.uBnd = partition(sp.uAll, func(ed int32) bool {
		return cellTaint(m.EdgeCell[ed][0]) || cellTaint(m.EdgeCell[ed][1]) ||
			vertTaint(m.EdgeVert[ed][0]) || vertTaint(m.EdgeVert[ed][1]) ||
			vtanTaint(ed)
	})
	return sp
}

// stencilRegistry is the audit trail tying every adjacency-walking
// function of this package to the taint class it was classified against
// in buildSplit (or the reason it is exempt from the interior/boundary
// partition). gristlint's stencilsafety analyzer fails the build when a
// function touches mesh adjacency without an entry here — the guard that
// keeps new stencils from silently reading stale halo data during an
// overlapped Start → interior → Finish → boundary round.
var stencilRegistry = map[string]string{
	"engine.primalNormalFluxEdge": "split:flux — one-ring cell reads, boundary = edges of tainted cells",
	"engine.computeKineticEnergy": "split:diag — cell-of-edges sum, boundary = cells with tainted edges",
	"engine.computeVorticity":     "split:vert — vertex-of-edges curl, boundary = vertices with tainted edges",
	"tangentialVelocityLevels":    "split:vtan — TRiSK neighborhood, boundary = edges with tainted TRiSK stencil",
	"engine.continuityAndThermo":  "split:tend — flux divergence, boundary = cells with tainted fluxes",
	"engine.momentum":             "split:u — widest stencil, boundary = edges with any tainted input",
	"engine.divAt":                "covered by callers' split sets (momentum, vectorLaplacian)",
	"engine.lapOfField":           "exempt: del^4 hyperdiffusion, serial full-mesh engines only",
	"engine.vectorLaplacian":      "exempt: del^4 hyperdiffusion, serial full-mesh engines only",
	"engine.VorticityAtLevel":     "exempt: serial diagnostic over the full mesh, no overlap window",
	"State.TotalEnergy":           "exempt: serial diagnostic over the full mesh, no overlap window",
	"buildSplit":                  "exempt: the taint machinery itself, runs once at SetOwned",
}
